// Package timr is a reproduction of "Temporal Analytics on Big Data for
// Web Advertising" (Chandramouli, Goldstein, Duan; ICDE 2012): the TiMR
// framework — declarative temporal continuous queries compiled onto
// map-reduce with an embedded single-node temporal engine — together with
// the paper's end-to-end behavioral-targeting (BT) pipeline, the
// baselines it is evaluated against, and a synthetic ad-log workload
// generator standing in for the paper's proprietary logs.
//
// The package is a facade over the implementation packages:
//
//   - internal/temporal — the temporal DSMS engine and query builder;
//   - internal/mapreduce — the simulated DFS + map-reduce cluster;
//   - internal/core — TiMR itself: plan annotation, fragmentation,
//     temporal partitioning and the cost-based optimizer;
//   - internal/bt — the BT pipeline's temporal queries;
//   - internal/baseline — SCOPE strawman, custom reducers, F-Ex, KE-pop;
//   - internal/ml, internal/stats, internal/workload — supporting
//     substrates.
//
// # Quick start
//
// Build a temporal query with the fluent builder, annotate it with a
// partitioning key, and run it over a cluster:
//
//	schema := timr.NewSchema(
//		timr.Field{Name: "Time", Kind: timr.KindInt},
//		timr.Field{Name: "UserId", Kind: timr.KindInt},
//		timr.Field{Name: "AdId", Kind: timr.KindInt},
//	)
//	plan := timr.Scan("clicks", schema).
//		Exchange(timr.PartitionBy{Cols: []string{"AdId"}}).
//		GroupApply([]string{"AdId"}, func(g *timr.Plan) *timr.Plan {
//			return g.WithWindow(6 * timr.Hour).Count("ClickCount")
//		})
//
//	cluster := timr.NewCluster(timr.ClusterConfig{Machines: 150})
//	cluster.FS.Write("ds.clicks", timr.SinglePartition(schema, rows))
//	t := timr.New(cluster, timr.DefaultTiMRConfig())
//	if _, err := t.Run(plan, map[string]string{"clicks": "ds.clicks"}, "out"); err != nil {
//		log.Fatal(err)
//	}
//	events, _ := t.ResultEvents("out")
//
// The same plan runs unmodified over a live feed with an Engine — the
// paper's real-time-readiness property (see examples/realtime).
package timr

import (
	"timr/internal/baseline"
	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/ml"
	"timr/internal/obs"
	"timr/internal/stats"
	"timr/internal/temporal"
	"timr/internal/tsql"
	"timr/internal/workload"
)

// ---- Observability ----

// Metric types (see internal/obs). A MetricScope attached to
// ClusterConfig.Obs or TiMRConfig.Obs collects per-stage and per-operator
// counters while a job runs; Snapshot/Table read them back.
type (
	// MetricScope is a named tree of counters, gauges and histograms.
	MetricScope = obs.Scope
	// MetricPoint is one entry of a MetricScope snapshot.
	MetricPoint = obs.Point
)

// NewMetricScope creates a metric scope root.
var NewMetricScope = obs.New

// ---- StreamSQL surface ----

// SQLCatalog maps stream names to schemas for CompileSQL.
type SQLCatalog = tsql.Catalog

// CompileSQL compiles a StreamSQL query (the paper's second user surface,
// §III-A) into the same logical plan the builder produces.
var CompileSQL = tsql.Compile

// ---- Temporal engine (StreamInsight stand-in) ----

// Core data-model types of the temporal engine.
type (
	// Time is application time in milliseconds.
	Time = temporal.Time
	// Value is a tagged-union column value.
	Value = temporal.Value
	// Kind enumerates value kinds.
	Kind = temporal.Kind
	// Field is a named, typed column.
	Field = temporal.Field
	// Schema describes a stream's payload columns.
	Schema = temporal.Schema
	// Row is one tuple of values.
	Row = temporal.Row
	// Event is a payload with validity lifetime [LE, RE).
	Event = temporal.Event
	// SourceEvent pairs an event with its source stream name.
	SourceEvent = temporal.SourceEvent
	// Sink is the push interface of physical operators and result consumers.
	Sink = temporal.Sink
	// Batch is a run of events plus an optional trailing CTI — the unit of
	// the batched dataflow contract.
	Batch = temporal.Batch
	// BatchSink is the batch-granularity push interface.
	BatchSink = temporal.BatchSink
	// EventAdapter presents a per-event Sink as a BatchSink.
	EventAdapter = temporal.EventAdapter
	// BatchAdapter presents a BatchSink as a per-event Sink.
	BatchAdapter = temporal.BatchAdapter
	// EngineOption configures NewEngine (WithSink, WithObs, WithCTIPeriod).
	EngineOption = temporal.Option
	// Collector is a Sink accumulating results.
	Collector = temporal.Collector
	// FuncSink adapts callbacks to Sink.
	FuncSink = temporal.FuncSink
	// Plan is a logical continuous-query plan node.
	Plan = temporal.Plan
	// Predicate filters rows declaratively.
	Predicate = temporal.Predicate
	// Projection defines one output column of a Project.
	Projection = temporal.Projection
	// JoinPred is a residual join condition.
	JoinPred = temporal.JoinPred
	// UDOSpec configures a windowed user-defined operator.
	UDOSpec = temporal.UDOSpec
	// PartitionBy annotates logical exchange operators.
	PartitionBy = temporal.PartitionBy
	// Engine hosts a compiled query (single node / real time).
	Engine = temporal.Engine
	// CompiledQuery is a compiled physical pipeline.
	CompiledQuery = temporal.Pipeline
)

// Value kinds.
const (
	KindNull   = temporal.KindNull
	KindInt    = temporal.KindInt
	KindFloat  = temporal.KindFloat
	KindString = temporal.KindString
	KindBool   = temporal.KindBool
)

// Time units.
const (
	Tick   = temporal.Tick
	Second = temporal.Second
	Minute = temporal.Minute
	Hour   = temporal.Hour
	Day    = temporal.Day
)

// Constructors and helpers re-exported from the engine.
var (
	Int           = temporal.Int
	Float         = temporal.Float
	String        = temporal.String
	Bool          = temporal.Bool
	NewSchema     = temporal.NewSchema
	Scan          = temporal.Scan
	PointEvent    = temporal.PointEvent
	SortEvents    = temporal.SortEvents
	EventsEqual   = temporal.EventsEqual
	Coalesce      = temporal.Coalesce
	NewEngine     = temporal.NewEngine
	RestoreEngine = temporal.RestoreEngine
	WithSink      = temporal.WithSink
	WithObs       = temporal.WithObs
	WithCTIPeriod = temporal.WithCTIPeriod
	AsBatchSink   = temporal.AsBatchSink
	// Deprecated: use NewEngine(plan, WithSink(out)).
	NewEngineTo = temporal.NewEngineTo
	// Deprecated: use NewEngine(plan, WithObs(scope)).
	NewEngineObserved = temporal.NewEngineObserved
	RunPlan           = temporal.RunPlan
	RowsToPointEvents = temporal.RowsToPointEvents
	ColEqInt          = temporal.ColEqInt
	ColEqString       = temporal.ColEqString
	ColGtInt          = temporal.ColGtInt
	ColLtInt          = temporal.ColLtInt
	ColGeFloat        = temporal.ColGeFloat
	AbsGeFloat        = temporal.AbsGeFloat
	FnPred            = temporal.FnPred
	And               = temporal.And
	Or                = temporal.Or
	Not               = temporal.Not
	Keep              = temporal.Keep
	Rename            = temporal.Rename
	ConstInt          = temporal.ConstInt
	Compute           = temporal.Compute
)

// ---- Map-reduce substrate ----

// Cluster-side types.
type (
	// Cluster is the simulated map-reduce cluster.
	Cluster = mapreduce.Cluster
	// ClusterConfig sizes and seeds the cluster.
	ClusterConfig = mapreduce.Config
	// FS is the simulated distributed file system.
	FS = mapreduce.FS
	// DFSDataset is a partitioned dataset.
	DFSDataset = mapreduce.Dataset
	// Stage is one map-reduce stage.
	Stage = mapreduce.Stage
	// Reducer is a per-partition computation.
	Reducer = mapreduce.Reducer
	// JobStat aggregates job accounting.
	JobStat = mapreduce.JobStat
	// StageStat aggregates stage accounting.
	StageStat = mapreduce.StageStat
)

// Cluster constructors.
var (
	NewCluster      = mapreduce.NewCluster
	NewFS           = mapreduce.NewFS
	SinglePartition = mapreduce.SinglePartition
	PartitionByCols = mapreduce.PartitionByCols
)

// ---- TiMR framework ----

// Framework types.
type (
	// TiMR binds a cluster to the framework (paper §III).
	TiMR = core.TiMR
	// TiMRConfig tunes the runtime.
	TiMRConfig = core.Config
	// Fragment is a maximal exchange-free subplan.
	Fragment = core.Fragment
	// SpanSpec is a temporal-partitioning span layout.
	SpanSpec = core.SpanSpec
	// Optimizer annotates plans cost-based (paper §VI).
	Optimizer = core.Optimizer
	// OptimizerStats feeds the optimizer's cost model.
	OptimizerStats = core.Stats
	// StreamingJob runs a fragmented plan as a live pipelined dataflow
	// (the paper's §VII "MapReduce Online" direction).
	StreamingJob = core.StreamingJob
	// CrashConfig enables deterministic partition crash injection in
	// streaming jobs; recovery restores checkpoints and replays logs.
	CrashConfig = core.CrashConfig
	// StreamOption configures NewStreamingJob (WithMachines,
	// WithStreamConfig, WithOnEvent, WithCrash, WithIntake, WithRebalance).
	StreamOption = core.StreamOption
	// Feeder is the per-source ingest handle returned by
	// StreamingJob.Source: Feed/FeedBatch/FeedColBatch plus the
	// non-blocking TryFeed admission path.
	Feeder = core.Feeder
	// RebalanceConfig tunes the elastic worker split/merge policy of a
	// streaming job.
	RebalanceConfig = core.RebalanceConfig
	// Migration records one live shard transfer between workers.
	Migration = core.Migration
)

// Framework constructors.
var (
	New               = core.New
	DefaultTiMRConfig = core.DefaultConfig
	MakeFragments     = core.MakeFragments
	NewSpanSpec       = core.NewSpanSpec
	NewOptimizer      = core.NewOptimizer
	DefaultStats      = core.DefaultStats
	EventsToRows      = core.EventsToRows
	RowsToEvents      = core.RowsToEvents
	NewStreamingJob   = core.NewStreamingJob
	// Streaming-job options.
	WithMachines     = core.WithMachines
	WithStreamConfig = core.WithConfig
	WithOnEvent      = core.WithOnEvent
	WithCrash        = core.WithCrash
	WithIntake       = core.WithIntake
	WithRebalance    = core.WithRebalance
	// Deprecated: use NewStreamingJob(plan, sources, WithMachines(n), ...).
	NewStreamingJobLegacy = core.NewStreamingJobLegacy
)

// Streaming admission errors.
var (
	// ErrStreamFlushed is returned by feed paths after Flush.
	ErrStreamFlushed = core.ErrFlushed
	// ErrBacklogged is returned by Feeder.TryFeed when the source's
	// per-wave intake budget is exhausted (the event was not admitted).
	ErrBacklogged = core.ErrBacklogged
)

// ---- Behavioral targeting ----

// BT types.
type (
	// BTParams are the pipeline knobs (paper §IV).
	BTParams = bt.Params
	// BTPipeline chains the BT phases over TiMR.
	BTPipeline = bt.Pipeline
)

// BT constructors and plans.
var (
	DefaultBTParams   = bt.DefaultParams
	NewBTPipeline     = bt.NewPipeline
	RunBTSingleNode   = bt.RunSingleNode
	BotElimPlan       = bt.BotElimPlan
	LabelPlan         = bt.LabelPlan
	TrainDataPlan     = bt.TrainDataPlan
	FeatureSelectPlan = bt.FeatureSelectPlan
	ReducePlan        = bt.ReducePlan
	ModelPlan         = bt.ModelPlan
)

// ---- Workload, ML, stats, baselines ----

// Supporting types.
type (
	// WorkloadConfig parameterizes the synthetic ad-log generator.
	WorkloadConfig = workload.Config
	// Workload is a generated log with ground truth.
	Workload = workload.Dataset
	// AdClass is one ad class with planted correlations.
	AdClass = workload.AdClass
	// LRModel is a trained logistic-regression scorer.
	LRModel = ml.Model
	// LRExample is one training observation.
	LRExample = ml.Example
	// LiftPoint is one point of a lift/coverage curve.
	LiftPoint = ml.LiftPoint
	// ReductionScheme is a data-reduction strategy (KE-z, KE-pop, F-Ex).
	ReductionScheme = baseline.Scheme
)

// Workload stream ids (paper Figure 9).
const (
	StreamImpression = workload.StreamImpression
	StreamClick      = workload.StreamClick
	StreamKeyword    = workload.StreamKeyword
)

// SpillAll is the ClusterConfig.MemoryBudget sentinel that forces every
// shuffle bucket and stage output to spill (useful for out-of-core
// testing; 0 keeps everything resident).
const SpillAll = mapreduce.SpillAll

// Supporting constructors.
var (
	GenerateWorkload       = workload.Generate
	DefaultWorkloadConfig  = workload.DefaultConfig
	UnifiedSchema          = workload.UnifiedSchema
	TrainLR                = ml.TrainLR
	LiftCoverageCurve      = ml.LiftCoverageCurve
	TwoProportionZ         = stats.TwoProportionZ
	ZForConfidence         = stats.ZForConfidence
	NewKEZ                 = baseline.NewKEZ
	NewKEPop               = baseline.NewKEPop
	NewFEx                 = baseline.NewFEx
	IdentityScheme         = baseline.Identity
	ScopeRunningClickCount = baseline.ScopeRunningClickCount
	SliceRowSource         = baseline.SliceSource
)
