// Package serve is the elastic serving tier behind `timr serve`: a
// long-running scoring service that joins arriving ad impressions
// against the trained BT models through the streaming execution of
// ScorePlan (the paper's M3 loop — "we can generate a prediction
// whenever a new UBP is fed on its left input", §IV-B.4).
//
// Prepare trains the models offline: it generates a synthetic log,
// runs the full BT pipeline over the training half, and lodges the
// resulting per-ad models in the right synopsis of the serving join.
// Run then drives an open-loop, Zipf-skewed load (workload.LoadGen)
// into the left input, measuring per-impression scoring latency —
// arrival to incremental delivery — on an obs histogram, and reporting
// p50/p99 together with sustained events/s per partition. The serving
// job is an ordinary StreamingJob, so admission control (WithIntake),
// crash chaos (WithCrash) and elastic placement (WithRebalance) all
// compose with serving unchanged.
package serve

import (
	"fmt"
	"time"

	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/dur"
	"timr/internal/obs"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// Config parameterizes a serving run. Zero fields take defaults.
type Config struct {
	// Workload generates the synthetic log the models are trained on;
	// its ground truth also drives the load generator.
	Workload workload.Config
	// Params tunes the BT pipeline. TrainPeriod defaults to half the
	// generated horizon, so the models trained on the first half are
	// valid over the serving window (the second half).
	Params *bt.Params

	// Load shapes the serving arrivals (user skew, search fraction).
	// Start defaults to the training period — the first instant the
	// models are valid.
	Load workload.LoadConfig
	// Requests is the total number of arrivals to generate (default
	// 4000). The schedule must fit the model validity window
	// [TrainPeriod, 2·TrainPeriod); Prepare rejects overruns.
	Requests int

	// Machines is the partition fan-out of the serving job (default 4).
	Machines int
	// WaveEvery is the event time between punctuation waves (default:
	// 1/64 of the request schedule's span, so a run sees ~64 waves).
	// Shorter waves deliver scores — and run the rebalance policy —
	// more often.
	WaveEvery temporal.Time

	// Rate, when positive, paces arrivals at this many per wall-clock
	// second through a bounded queue (open loop: the schedule never
	// slows down because the server lags, so queueing delay lands in
	// the measured latency). Zero feeds as fast as the job admits.
	Rate float64
	// Queue is the bounded intake queue depth in paced mode (default
	// 256). A full queue blocks the generator goroutine — the blocking
	// face of backpressure, complementing the non-blocking TryFeed.
	Queue int

	// Rebalance, when set, enables elastic placement (see
	// core.WithRebalance).
	Rebalance *core.RebalanceConfig
	// Intake, when positive, bounds per-source admission per wave (see
	// core.WithIntake).
	Intake int

	// Obs receives serving metrics (latency histogram, streaming stage
	// counters). Defaults to a fresh "serve" scope.
	Obs *obs.Scope

	// DurDir, when set, makes the serving job durable: every wave commits
	// a checkpoint generation to this directory (see internal/dur), and a
	// restarted process resumes from the newest intact generation — Run
	// detects recovered state and replays the deterministic schedule from
	// the recovered wave onward, delivering bit-identical output.
	DurDir string
	// DurFS overrides the filesystem the durable store writes through
	// (default the real OS; tests substitute dur.NewFaultFS).
	DurFS dur.FS
}

func (c Config) withDefaults() Config {
	if c.Requests <= 0 {
		c.Requests = 4000
	}
	if c.Machines <= 0 {
		c.Machines = 4
	}
	if c.Queue <= 0 {
		c.Queue = 256
	}
	if c.Obs == nil {
		c.Obs = obs.New("serve")
	}
	return c
}

// Report summarizes one serving run.
type Report struct {
	Requests    int
	Searches    int // profile updates (no score request)
	Impressions int // score requests issued
	Scored      int // impressions whose score was delivered
	RowsFed     int // feature rows fed to the join

	Duration     time.Duration
	P50, P99     time.Duration
	MaxLatency   time.Duration
	EventsPerSec float64 // impressions scored per wall-clock second
	Partitions   int     // shards of the scoring stage
	PerPartition float64 // EventsPerSec / Partitions

	Workers    map[string]int // final worker count per stage
	Migrations int            // shard transfers performed by the policy
	Deferred   int64          // events admitted over the intake budget

	// Planted-ground-truth sanity: a model that learned anything scores
	// clicked impressions above unclicked ones on average.
	MeanScoreClicked   float64
	MeanScoreUnclicked float64

	// Resumed reports that this run recovered a durable generation and
	// replayed the schedule from the recovered wave instead of starting
	// clean. Requests then counts only the re-fed tail of the schedule.
	Resumed bool
}

// Server is a prepared serving tier: trained models plus the dataset
// ground truth, ready to Run any number of times.
type Server struct {
	cfg    Config
	params bt.Params
	data   *workload.Dataset
	models []temporal.Event
}

// Prepare generates the log, trains the models on its first half, and
// validates that the configured load schedule fits the models' validity.
func Prepare(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	d := workload.Generate(cfg.Workload)

	p := bt.DefaultParams()
	if cfg.Params != nil {
		p = *cfg.Params
	} else {
		p.TrainPeriod = d.Horizon / 2
	}
	if cfg.Load.Start <= 0 {
		cfg.Load.Start = p.TrainPeriod
	}
	tick := cfg.Load.TickEvery
	if tick <= 0 {
		tick = 1
	}
	if cfg.WaveEvery <= 0 {
		cfg.WaveEvery = temporal.Time(cfg.Requests) * tick / 64
		if cfg.WaveEvery <= 0 {
			cfg.WaveEvery = 1
		}
	}
	end := cfg.Load.Start + temporal.Time(cfg.Requests)*tick
	if valid := 2 * p.TrainPeriod; end > valid {
		return nil, fmt.Errorf("serve: schedule ends at %d, past model validity %d — fewer requests or a smaller TickEvery", end, valid)
	}

	train, _ := d.SplitHalves()
	phases, err := bt.RunSingleNode(p, temporal.RowsToPointEvents(train, 0))
	if err != nil {
		return nil, fmt.Errorf("serve: training pipeline: %w", err)
	}
	models := phases[bt.DSModels]
	if len(models) == 0 {
		return nil, fmt.Errorf("serve: training produced no models")
	}
	return &Server{cfg: cfg, params: p, data: d, models: models}, nil
}

// Dataset exposes the generated log (diagnostics, tests).
func (s *Server) Dataset() *workload.Dataset { return s.data }

// Models exposes the trained model events (diagnostics, tests).
func (s *Server) Models() []temporal.Event {
	return append([]temporal.Event(nil), s.models...)
}

// timedReq is one scheduled arrival in the paced intake queue.
type timedReq struct {
	req   workload.Request
	sched time.Time
}

// Run drives one serving session and returns its report plus the
// coalesced score events (for differential tests: the delivered scores
// are deterministic in the dataset and load config, whatever the
// pacing, placement, or chaos). With DurDir set, Run is also the
// restart path: if the directory holds a committed generation from an
// earlier (killed) process, the job resumes from it.
func (s *Server) Run() (*Report, []temporal.Event, error) {
	return s.run(-1)
}

// RunKilled processes only the first `after` schedule entries and then
// returns without flushing or collecting results — the restart drill's
// stand-in for kill -9 mid-run. Only the durable store's committed
// generations survive; a subsequent Run on the same DurDir resumes from
// them.
func (s *Server) RunKilled(after int) (*Report, error) {
	rep, _, err := s.run(after)
	return rep, err
}

func (s *Server) run(killAfter int) (*Report, []temporal.Event, error) {
	cfg := s.cfg
	lat := cfg.Obs.Histogram("latency")

	rep := &Report{}
	pending := make(map[temporal.Time]time.Time, cfg.Queue)
	var sumClicked, sumUnclicked float64
	var nClicked, nUnclicked int
	seen := make(map[temporal.Time]bool)
	onEvent := func(e temporal.Event) {
		t := temporal.Time(e.Payload[0].AsInt())
		if sent, ok := pending[t]; ok {
			lat.Observe(time.Since(sent))
			delete(pending, t)
			rep.Scored++
		}
		if !seen[t] {
			seen[t] = true
			score := e.Payload[4].AsFloat()
			if e.Payload[3].AsInt() == 1 {
				sumClicked += score
				nClicked++
			} else {
				sumUnclicked += score
				nUnclicked++
			}
		}
	}

	streamCfg := core.DefaultConfig()
	streamCfg.Obs = cfg.Obs
	opts := []core.StreamOption{
		core.WithMachines(cfg.Machines),
		core.WithConfig(streamCfg),
		core.WithOnEvent(onEvent),
	}
	if cfg.Rebalance != nil {
		opts = append(opts, core.WithRebalance(*cfg.Rebalance))
	}
	if cfg.Intake > 0 {
		opts = append(opts, core.WithIntake(cfg.Intake))
	}
	plan := bt.ScorePlan(s.params, true)
	schemas := map[string]*temporal.Schema{
		bt.SourceReduced: bt.TrainSchema,
		bt.SourceModels:  bt.ModelSchema,
	}
	var job *core.StreamingJob
	var rec *dur.Recovery
	var err error
	if cfg.DurDir != "" {
		store, oerr := dur.OpenStore(cfg.DurDir, dur.Options{FS: cfg.DurFS, Obs: cfg.Obs.Child("dur")})
		if oerr != nil {
			return nil, nil, oerr
		}
		job, rec, err = core.RestoreFromDir(plan, schemas, store, opts...)
	} else {
		job, err = core.NewStreamingJob(plan, schemas, opts...)
	}
	if err != nil {
		return nil, nil, err
	}
	reduced, err := job.Source(bt.SourceReduced)
	if err != nil {
		return nil, nil, err
	}
	if rec == nil {
		// Lodge the models in the join's right synopsis before any wave.
		// A resumed job skips this: the recovered checkpoints carry the
		// synopsis, models included, and re-feeding would duplicate them.
		modelSrc, err := job.Source(bt.SourceModels)
		if err != nil {
			return nil, nil, err
		}
		if err := modelSrc.FeedBatch(s.models); err != nil {
			return nil, nil, err
		}
	}

	gen := workload.NewLoadGen(s.data, cfg.Load)
	lastWave := cfg.Load.Start

	// On resume, the recovered generation usually carries the source's
	// committed input offset — the schedule index of the request that
	// triggered its wave. The driver then *seeks*: the load generator
	// skips straight past the committed prefix (same RNG draws, no row
	// materialization, nothing fed) and ingestion restarts with the
	// wave-triggering request — exactly the tail the dead process never
	// durably committed. Generations written before offsets existed fall
	// back to the legacy re-walk: the schedule is walked from its
	// deterministic beginning, tracking the same wave-fire points but
	// feeding nothing, until the fire at (or, after a generation
	// fallback, past) the recovered wave.
	var recWave temporal.Time
	skipping := false
	startIdx := 0
	if rec != nil {
		rep.Resumed = true
		recWave = rec.Snap.Wave
		if pos, ok := reduced.Position(); ok {
			gen.Skip(int(pos))
			startIdx = int(pos)
			lastWave = recWave
		} else {
			skipping = true
		}
	}

	// In paced mode a generator goroutine emits requests on the fixed
	// open-loop schedule into a bounded queue; a full queue blocks it
	// (committed-path backpressure), but the schedule's timestamps keep
	// marching, so the wait surfaces as measured latency.
	var intake chan timedReq
	if cfg.Rate > 0 {
		intake = make(chan timedReq, cfg.Queue)
		go func() {
			defer close(intake)
			start := time.Now()
			gap := time.Duration(float64(time.Second) / cfg.Rate)
			for i := startIdx; i < cfg.Requests; i++ {
				sched := start.Add(time.Duration(i-startIdx) * gap)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				intake <- timedReq{req: gen.Next(), sched: sched}
			}
		}()
	}

	ingest := func(tr timedReq) error {
		req := tr.req
		rep.Requests++
		if req.Search {
			rep.Searches++
			return nil
		}
		rep.Impressions++
		rep.RowsFed += len(req.Rows)
		pending[req.Time] = tr.sched
		return reduced.FeedBatch(temporal.RowsToPointEvents(req.Rows, 0))
	}

	start := time.Now()

	processed, killed := 0, false
	step := func(tr timedReq) error {
		if t := tr.req.Time; t-lastWave >= cfg.WaveEvery {
			lastWave = t
			if skipping {
				if t >= recWave {
					skipping = false
				}
			} else {
				// Publish the input offset the wave's generation will carry:
				// the schedule index of the request triggering this wave —
				// everything before it is admitted and about to be durable.
				reduced.SetPosition(int64(tr.req.Seq))
				if err := job.Advance(t); err != nil {
					return err
				}
			}
		}
		if !skipping {
			if err := ingest(tr); err != nil {
				return err
			}
		}
		processed++
		return nil
	}
	var feedErr error
	if intake != nil {
		for tr := range intake {
			if feedErr = step(tr); feedErr != nil {
				break
			}
			if killAfter >= 0 && processed >= killAfter {
				killed = true
				break
			}
		}
		if killed {
			// Unblock the paced generator so it can run to completion.
			go func() {
				for range intake {
				}
			}()
		}
	} else {
		for i := startIdx; i < cfg.Requests; i++ {
			if feedErr = step(timedReq{req: gen.Next(), sched: time.Now()}); feedErr != nil {
				break
			}
			if killAfter >= 0 && processed >= killAfter {
				killed = true
				break
			}
		}
	}
	if feedErr != nil {
		return nil, nil, feedErr
	}
	if killed {
		// kill -9: no flush, no graceful teardown. Whatever the durable
		// store committed is all the next process gets.
		rep.Duration = time.Since(start)
		return rep, nil, nil
	}
	job.Flush()
	rep.Duration = time.Since(start)
	results, err := job.Results()
	if err != nil {
		return nil, nil, err
	}

	rep.P50, rep.P99, rep.MaxLatency = lat.Quantile(0.50), lat.Quantile(0.99), lat.Max()
	if secs := rep.Duration.Seconds(); secs > 0 {
		rep.EventsPerSec = float64(rep.Scored) / secs
	}
	rep.Workers = job.Workers()
	for _, n := range job.Partitions() {
		if n > rep.Partitions {
			rep.Partitions = n
		}
	}
	if rep.Partitions > 0 {
		rep.PerPartition = rep.EventsPerSec / float64(rep.Partitions)
	}
	rep.Migrations = len(job.Migrations())
	for _, p := range cfg.Obs.Snapshot() {
		if p.Name == "deferred_events" {
			rep.Deferred += p.Value
		}
	}
	if nClicked > 0 {
		rep.MeanScoreClicked = sumClicked / float64(nClicked)
	}
	if nUnclicked > 0 {
		rep.MeanScoreUnclicked = sumUnclicked / float64(nUnclicked)
	}
	return rep, results, nil
}

// String renders the report in the BENCH-friendly key=value shape the
// bench-json harness parses.
func (r *Report) String() string {
	return fmt.Sprintf(
		"serve: requests=%d impressions=%d scored=%d rows=%d duration=%s\n"+
			"serve: p50_us=%d p99_us=%d max_us=%d\n"+
			"serve: events_per_sec=%.1f partitions=%d events_per_sec_per_partition=%.1f migrations=%d deferred=%d\n"+
			"serve: mean_score_clicked=%.4f mean_score_unclicked=%.4f",
		r.Requests, r.Impressions, r.Scored, r.RowsFed, r.Duration.Round(time.Millisecond),
		r.P50.Microseconds(), r.P99.Microseconds(), r.MaxLatency.Microseconds(),
		r.EventsPerSec, r.Partitions, r.PerPartition, r.Migrations, r.Deferred,
		r.MeanScoreClicked, r.MeanScoreUnclicked,
	)
}
