package serve

import (
	"strings"
	"testing"

	"timr/internal/core"
	"timr/internal/temporal"
	"timr/internal/workload"
)

func testConfig() Config {
	return Config{
		Workload: workload.Config{
			Users: 200, Keywords: 300, AdClasses: 4, Days: 2, Seed: 9,
			BotFraction: 0.01,
		},
		Load:     workload.LoadConfig{Seed: 5},
		Requests: 1500,
		Machines: 4,
	}
}

func TestServeScoresArrivals(t *testing.T) {
	srv, err := Prepare(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, results, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 1500 {
		t.Fatalf("requests = %d, want 1500", rep.Requests)
	}
	if rep.Impressions == 0 || rep.Searches == 0 {
		t.Fatalf("degenerate mix: %d impressions, %d searches", rep.Impressions, rep.Searches)
	}
	// Every impression carries feature rows and the models cover every
	// ad, so every impression must come back scored.
	if rep.Scored != rep.Impressions {
		t.Fatalf("scored %d of %d impressions", rep.Scored, rep.Impressions)
	}
	if len(results) == 0 {
		t.Fatal("no score events delivered")
	}
	for _, e := range results[:10] {
		s := e.Payload[4].AsFloat()
		if s < 0 || s > 1 {
			t.Fatalf("score %f outside [0,1]", s)
		}
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("latency quantiles broken: p50=%s p99=%s", rep.P50, rep.P99)
	}
	if rep.EventsPerSec <= 0 || rep.Partitions <= 0 || rep.PerPartition <= 0 {
		t.Fatalf("throughput report broken: %+v", rep)
	}
	// The model learned the planted correlations: clicked impressions
	// score higher on average.
	if rep.MeanScoreClicked <= rep.MeanScoreUnclicked {
		t.Fatalf("model separation inverted: clicked %.4f <= unclicked %.4f",
			rep.MeanScoreClicked, rep.MeanScoreUnclicked)
	}
	if !strings.Contains(rep.String(), "events_per_sec_per_partition=") {
		t.Fatalf("report misses the per-partition metric:\n%s", rep.String())
	}
}

func TestServeDeterministicAcrossPlacementAndChaos(t *testing.T) {
	// The delivered scores are a pure function of dataset + load config:
	// pacing, elastic placement, and admission bounds must not change a
	// byte of output.
	srv, err := Prepare(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, static, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	cfg.Rebalance = &core.RebalanceConfig{SplitAbove: 50, MergeBelow: 4, MaxWorkers: 4}
	cfg.Intake = 64
	elastic, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, got, err := elastic.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(got, static) {
		t.Fatalf("elastic serving diverges: %d vs %d events", len(got), len(static))
	}
	if rep.Migrations == 0 {
		t.Log("note: rebalance policy performed no migrations at this load")
	}
}

func TestServePacedMode(t *testing.T) {
	cfg := testConfig()
	cfg.Requests = 300
	cfg.Rate = 50_000 // fast enough to finish promptly, still paced
	cfg.Queue = 32
	srv, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := srv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 300 {
		t.Fatalf("paced run processed %d of 300 requests", rep.Requests)
	}
	if rep.Scored != rep.Impressions {
		t.Fatalf("paced run scored %d of %d impressions", rep.Scored, rep.Impressions)
	}
}

func TestPrepareRejectsScheduleOverrun(t *testing.T) {
	cfg := testConfig()
	cfg.Requests = 1 << 30
	if _, err := Prepare(cfg); err == nil {
		t.Fatal("Prepare must reject a schedule past the model validity window")
	}
}

func BenchmarkServeOpenLoop(b *testing.B) {
	cfg := testConfig()
	cfg.Requests = 2000
	srv, err := Prepare(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last *Report
	for i := 0; i < b.N; i++ {
		rep, _, err := srv.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.ReportMetric(float64(last.P50.Microseconds()), "p50_us")
	b.ReportMetric(float64(last.P99.Microseconds()), "p99_us")
	b.ReportMetric(last.EventsPerSec, "events/s")
	b.ReportMetric(last.PerPartition, "events/s/part")
}
