package serve

import (
	"testing"

	"timr/internal/dur"
	"timr/internal/temporal"
)

// prepared builds a Server over the baseline config with the durable
// store rooted at dir. Prepare is deterministic in the config seeds, so
// two calls model two OS processes over the same dataset — exactly what
// a kill -9 restart looks like.
func prepared(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := testConfig()
	if mut != nil {
		mut(&cfg)
	}
	srv, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestDurableServeRestartBitIdentity(t *testing.T) {
	// Reference: one uninterrupted run without durability.
	_, want, err := prepared(t, nil).Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	durable := func(c *Config) { c.DurDir = dir }

	// Process one: killed mid-run, well past the first committed waves.
	if _, err := prepared(t, durable).RunKilled(700); err != nil {
		t.Fatal(err)
	}

	// Process two: same Prepare, same DurDir — resumes and finishes.
	rep, got, err := prepared(t, durable).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Resumed {
		t.Fatal("restarted run did not recover the durable generation")
	}
	// The resume re-feeds from the last committed wave (just before the
	// kill at 700) to the end; the committed prefix must be skipped.
	if rep.Requests >= 1500 || rep.Requests < 1500-700 {
		t.Fatalf("resume re-fed %d of 1500 requests; want the post-wave tail only", rep.Requests)
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("restarted serving diverges: %d vs %d events", len(got), len(want))
	}
}

func TestDurableServeKillBeforeAnyWave(t *testing.T) {
	// A kill before the first wave leaves the store empty: the restart
	// is a clean start (nothing to resume) and still bit-identical.
	_, want, err := prepared(t, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	durable := func(c *Config) { c.DurDir = dir }
	if _, err := prepared(t, durable).RunKilled(3); err != nil {
		t.Fatal(err)
	}
	rep, got, err := prepared(t, durable).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed {
		t.Fatal("no generation was committed, yet the run claims a resume")
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("clean restart diverges: %d vs %d events", len(got), len(want))
	}
}

func TestDurableServeRestartUnderInjectedFaults(t *testing.T) {
	// The same drill through a faulty disk. Commit failures cost only
	// recovery freshness (an older generation, a longer replay — or a
	// clean start if nothing committed), never output fidelity.
	_, want, err := prepared(t, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	faulty := func(seed int64) func(*Config) {
		return func(c *Config) {
			c.DurDir = dir
			c.DurFS = dur.NewFaultFS(dur.OS{}, dur.FaultConfig{Rate: 0.2, Seed: seed})
		}
	}
	if _, err := prepared(t, faulty(11)).RunKilled(700); err != nil {
		t.Fatal(err)
	}
	_, got, err := prepared(t, faulty(12)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("faulty-disk restart diverges: %d vs %d events", len(got), len(want))
	}
}

func TestDurableServePacedKillAndResume(t *testing.T) {
	// Kill -9 in paced mode must not wedge the generator goroutine, and
	// the paced resume walks the same schedule to the same bytes.
	paced := func(c *Config) {
		c.Requests = 300
		c.Rate = 50_000
		c.Queue = 32
	}
	_, want, err := prepared(t, paced).Run()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	durable := func(c *Config) { paced(c); c.DurDir = dir }
	if _, err := prepared(t, durable).RunKilled(150); err != nil {
		t.Fatal(err)
	}
	_, got, err := prepared(t, durable).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("paced restart diverges: %d vs %d events", len(got), len(want))
	}
}
