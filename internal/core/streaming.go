package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"timr/internal/dur"
	"timr/internal/obs"
	"timr/internal/temporal"
)

// StreamingJob executes a fragmented TiMR plan as a live dataflow — the
// paper's §VII direction: "MapReduce Online and SOPA allow efficient data
// pipelining in M-R across stages... We can transparently take advantage
// of the above proposals to directly support real-time CQ processing at
// scale." Instead of materializing intermediate datasets between stages,
// every fragment partition hosts a long-running embedded engine, and
// fragment outputs are routed (by the fragment key's hash, or by time
// span) straight into the downstream fragments' engines.
//
// Ordering across the boundary is restored with punctuation barriers: a
// downstream partition buffers arrivals from its many upstream partitions
// and releases them in LE order when the punctuation wave — propagated
// through the fragment DAG in topological order — guarantees that nothing
// earlier can still arrive. The same temporal algebra that makes TiMR's
// batch execution repeatable makes this streaming execution produce
// exactly the batch results (enforced by tests).
type StreamingJob struct {
	frags  []Fragment
	stages []*streamStage
	// bySource lists, for each raw source name, the stages consuming it
	// (with per-stage input index).
	bySource map[string][]stageInput
	feeders  map[string]*Feeder
	out      *streamBuffer
	results  []temporal.Event
	cfg      Config
	machines int
	rebal    RebalanceConfig
	autoRbl  bool // run the rebalance policy at every wave
	migs     []Migration
	waves    int // completed punctuation waves (crash-draw input)
	flushed  bool

	// Durable checkpointing (WithDurable): at the end of every wave the
	// job commits its full recovery state — each partition's checkpoint
	// and replay log, plus the delivered-output record — as one store
	// generation. durErr remembers the last commit failure for
	// inspection; a failed commit never fails the wave (availability over
	// durability — the previous generation stays the recovery line).
	durStore *dur.Store
	durErr   error
}

// ErrFlushed is returned by Feed, FeedBatch and Advance on a job whose
// Flush has already drained the dataflow: its engines are spent, so any
// further input would be silently lost.
var ErrFlushed = errors.New("timr: streaming job already flushed")

// CrashConfig enables deterministic partition crash injection in a
// streaming job — the streaming counterpart of Config.FailureRate for the
// batch cluster. Rate is the per-partition, per-wave probability that the
// partition is killed at a pseudo-random point of the following feed
// interval; the draw is a pure function of (fragment, partition, wave,
// Seed), mirroring Cluster.injectedFailure, so a chaotic run is exactly
// reproducible. A killed partition loses its engine and barrier buffer and
// recovers from its last checkpoint plus the replay log.
type CrashConfig struct {
	Rate float64
	Seed int64
}

type stageInput struct {
	stage *streamStage
	src   int
}

// StreamOption configures NewStreamingJob, mirroring NewEngine's
// functional options.
type StreamOption func(*streamOptions)

type streamOptions struct {
	machines int
	cfg      Config
	onEvent  func(temporal.Event)
	crash    *CrashConfig
	intake   int64
	rebal    *RebalanceConfig
	store    *dur.Store
}

// WithMachines sets the partition fan-out of hash-keyed fragments (the
// streaming counterpart of the batch cluster size). Defaults to 1.
func WithMachines(n int) StreamOption {
	return func(o *streamOptions) { o.machines = n }
}

// WithConfig replaces the whole runtime Config (defaults to
// DefaultConfig). Options applied after it — WithCrash — still win.
func WithConfig(cfg Config) StreamOption {
	return func(o *streamOptions) { o.cfg = cfg }
}

// WithOnEvent registers an incremental output callback: every result
// event is delivered as its punctuation wave releases it, in addition to
// accumulating for Results.
func WithOnEvent(f func(temporal.Event)) StreamOption {
	return func(o *streamOptions) { o.onEvent = f }
}

// WithCrash enables deterministic partition crash injection (overrides
// any Config.Crash set via WithConfig, regardless of option order).
func WithCrash(cc CrashConfig) StreamOption {
	return func(o *streamOptions) { o.crash = &cc }
}

// WithIntake bounds per-source admission to perWave events between
// punctuation waves: TryFeed refuses (ErrBacklogged) beyond the budget,
// while the committed Feed paths still admit but count the overflow as
// deferred load. Zero (the default) leaves intake unbounded.
func WithIntake(perWave int) StreamOption {
	return func(o *streamOptions) { o.intake = int64(perWave) }
}

// WithDurable attaches a durable checkpoint store: every punctuation
// wave commits the job's full recovery state as one store generation,
// and shard migrations route their checkpoint bytes through the store.
// A job killed between commits restarts via RestoreFromDir and replays
// forward bit-identically (see internal/dur).
func WithDurable(store *dur.Store) StreamOption {
	return func(o *streamOptions) { o.store = store }
}

// WithRebalance enables the elastic placement policy: at every
// punctuation wave each stage may split its hottest worker or merge its
// coldest one (see RebalanceConfig). Without this option workers stay
// static unless ForceSplit/ForceMerge is called.
func WithRebalance(rc RebalanceConfig) StreamOption {
	return func(o *streamOptions) { o.rebal = &rc }
}

// NewStreamingJob fragments an annotated plan and wires the live DAG.
// sources maps scan names to their schemas; output events are delivered
// to Results after Flush (coalesced), and incrementally to the
// WithOnEvent callback if set. Remaining knobs arrive as functional
// options: WithMachines, WithConfig, WithCrash, WithIntake,
// WithRebalance.
func NewStreamingJob(plan *temporal.Plan, sources map[string]*temporal.Schema, opts ...StreamOption) (*StreamingJob, error) {
	o := streamOptions{machines: 1, cfg: DefaultConfig()}
	for _, opt := range opts {
		opt(&o)
	}
	if o.crash != nil {
		o.cfg.Crash = *o.crash
	}
	cfg, onEvent := o.cfg, o.onEvent
	// MakeFragments wants dataset bindings; in streaming mode the
	// "dataset" names are just the source names.
	bind := make(map[string]string, len(sources))
	for name := range sources {
		bind[name] = name
	}
	frags, err := MakeFragments(plan, bind, "out")
	if err != nil {
		return nil, err
	}
	machines := o.machines
	if machines < 1 {
		machines = 1
	}
	j := &StreamingJob{
		frags:    frags,
		bySource: make(map[string][]stageInput),
		feeders:  make(map[string]*Feeder),
		cfg:      cfg,
		machines: machines,
		rebal:    defaultRebalance(o.rebal, machines),
		autoRbl:  o.rebal != nil,
		durStore: o.store,
	}
	outScope := cfg.Obs.Child("stream.out")
	j.out = &streamBuffer{
		depth:    outScope.Gauge("buffer_depth"),
		released: outScope.Counter("barrier_releases"),
		deliver: func(e temporal.Event) {
			j.results = append(j.results, e)
			if onEvent != nil {
				onEvent(e)
			}
		},
	}

	// Build stages bottom-up so downstream wiring exists... fragments are
	// already in execution (bottom-up) order; build all, then wire.
	byOutput := make(map[string]*streamStage)
	for i := range frags {
		st, err := j.newStage(&frags[i])
		if err != nil {
			return nil, err
		}
		j.stages = append(j.stages, st)
		byOutput[frags[i].Output] = st
	}
	for _, st := range j.stages {
		for srcIdx, in := range st.frag.Inputs {
			if up, ok := byOutput[in.Dataset]; ok {
				up.consumers = append(up.consumers, stageInput{stage: st, src: srcIdx})
				st.intermediate[srcIdx] = true
				continue
			}
			if _, ok := sources[in.ScanName]; !ok {
				return nil, fmt.Errorf("timr: streaming job has no source %q", in.ScanName)
			}
			j.bySource[in.ScanName] = append(j.bySource[in.ScanName], stageInput{stage: st, src: srcIdx})
		}
	}
	for name, ins := range j.bySource {
		j.feeders[name] = newFeeder(j, name, ins, o.intake)
	}
	return j, nil
}

// NewStreamingJobLegacy is the pre-options positional constructor.
//
// Deprecated: use NewStreamingJob(plan, sources, WithMachines(machines),
// WithConfig(cfg), WithOnEvent(onEvent)).
func NewStreamingJobLegacy(plan *temporal.Plan, sources map[string]*temporal.Schema, machines int, cfg Config, onEvent func(temporal.Event)) (*StreamingJob, error) {
	return NewStreamingJob(plan, sources, WithMachines(machines), WithConfig(cfg), WithOnEvent(onEvent))
}

// Feed pushes one source event into the dataflow.
//
// Deprecated: resolve the source once with job.Source(source) and use
// Feeder.Feed — the per-call map lookup disappears and admission
// accounting attaches there.
func (j *StreamingJob) Feed(source string, ev temporal.Event) error {
	f, err := j.Source(source)
	if err != nil {
		return err
	}
	return f.Feed(ev)
}

// FeedBatch pushes a run of source events into the dataflow.
//
// Deprecated: use job.Source(source) and Feeder.FeedBatch.
func (j *StreamingJob) FeedBatch(source string, events []temporal.Event) error {
	f, err := j.Source(source)
	if err != nil {
		return err
	}
	return f.FeedBatch(events)
}

// FeedColBatch pushes a columnar source batch into the dataflow.
//
// Deprecated: use job.Source(source) and Feeder.FeedColBatch.
func (j *StreamingJob) FeedColBatch(source string, cb *temporal.ColBatch) error {
	f, err := j.Source(source)
	if err != nil {
		return err
	}
	return f.FeedColBatch(cb)
}

// Advance propagates a punctuation wave through the DAG: stage by stage
// in topological order, each stage first releases everything the wave
// guarantees complete, then punctuates its engines, whose flushed output
// cascades into the next stage before that stage's own barrier runs.
// After the wave, every partition checkpoints its engine and resets its
// replay log — the recovery line a crashed partition rolls back to.
func (j *StreamingJob) Advance(t temporal.Time) error {
	if j.flushed {
		return ErrFlushed
	}
	for _, st := range j.stages {
		st.advance(t)
	}
	j.out.advance(t)
	j.waves++
	if j.autoRbl {
		for _, st := range j.stages {
			st.rebalance()
		}
	}
	for _, f := range j.feeders {
		f.resetWave()
	}
	if j.durStore != nil {
		j.commitDurable(t)
	}
	return nil
}

// Flush ends all inputs and drains the DAG. Flushing twice is a no-op.
func (j *StreamingJob) Flush() {
	if j.flushed {
		return
	}
	for _, st := range j.stages {
		st.flush()
	}
	j.out.flush()
	j.flushed = true
}

// Results returns the coalesced output events. Calling it before Flush is
// an error: the dataflow still holds buffered state, so any result would
// be silently partial.
func (j *StreamingJob) Results() ([]temporal.Event, error) {
	if !j.flushed {
		return nil, errors.New("timr: Results before Flush: the dataflow is still live; Flush first")
	}
	return temporal.Coalesce(append([]temporal.Event(nil), j.results...)), nil
}

// ---- stage ----

type streamStage struct {
	frag         *Fragment
	consumers    []stageInput // downstream stages reading this stage's output
	intermediate []bool       // per input: fed by an upstream stage?
	job          *StreamingJob

	// Partition engines. Column-keyed fragments use a fixed modulo table;
	// time-keyed fragments grow one partition per span lazily.
	parts   map[int]*streamPartition
	nparts  int // 0 for temporal fragments (unbounded spans)
	spans   *SpanSpec
	keyCols [][]int // per input, payload positions of the key columns
	// minSpan tracks the earliest span partition in existence: it owns
	// everything before its start (mirroring SpanSpec.Owned for span 0 in
	// batch mode), wherever the data's time origin lies.
	minSpan int
	hasSpan bool

	// Elastic placement: partitions (shards) are assigned to workers, and
	// the rebalance policy moves shards between workers by checkpoint
	// transfer + replay (see migrate.go). The shard space itself — hash
	// modulo or span id — never changes, so routing is placement-blind.
	workers    []*streamWorker
	assign     map[int]int // shard (partition id) → worker id
	nextWorker int
	lastLoad   map[int]int // per shard: events admitted in the last wave

	// Routing scratch, reused across runs (barrier buffers copy event
	// structs on push, so recycling these is safe).
	one      [1]temporal.Event
	routeBuf []temporal.Event
	hashBuf  []uint64

	// Observability (nil-safe handles; see Config.Obs).
	scope      *obs.Scope   // per-operator engine metrics for this stage
	depth      *obs.Gauge   // barrier buffer depth high-watermark
	released   *obs.Counter // events released through the barrier
	clipped    *obs.Counter // output events dropped entirely at span edges
	trimmed    *obs.Counter // output events shortened to their owned span
	truncated  *obs.Counter // events whose span fan-out hit maxSpanFanout
	crashes    *obs.Counter // injected partition crashes
	recoveries *obs.Counter // partitions rebuilt from checkpoint + replay
	ckptBytes  *obs.Counter // checkpoint bytes written at waves
	replayed   *obs.Counter // events replayed from the log after a crash

	migrations *obs.Counter // shards moved between workers
	migBytes   *obs.Counter // checkpoint bytes transferred by migrations
	workersG   *obs.Gauge   // current worker count
}

// maxSpanFanout bounds how many lazy span partitions one event may be
// replicated into (overlap regions of adjacent spans plus the reach of
// its own lifetime). 4096 spans at the default 4h width covers a lifetime
// of nearly two years — beyond any sane window — while keeping a single
// corrupt timestamp from materializing millions of engines.
const maxSpanFanout = 4096

type streamPartition struct {
	id  int
	eng *temporal.Engine
	buf *streamBuffer // order-restoring barrier in front of the engine

	// Recovery state. ckpt is the engine snapshot taken at the last wave
	// (nil before the first); log replays every event admitted since —
	// bounded, because it resets at each wave. Between waves the engine
	// never consumes input (the barrier only releases during advance), so
	// ckpt+log reconstruct the partition exactly at any moment.
	ckpt    []byte
	log     []temporal.Event
	pushes  int // events admitted since the last wave
	crashAt int // crash when pushes reaches this; -1 = disarmed
}

func (j *StreamingJob) newStage(frag *Fragment) (*streamStage, error) {
	sc := j.cfg.Obs.Child("stream." + frag.Name)
	st := &streamStage{
		frag:         frag,
		job:          j,
		parts:        make(map[int]*streamPartition),
		intermediate: make([]bool, len(frag.Inputs)),
		keyCols:      make([][]int, len(frag.Inputs)),
		scope:        sc,
		depth:        sc.Gauge("buffer_depth"),
		released:     sc.Counter("barrier_releases"),
		clipped:      sc.Counter("events_clipped"),
		trimmed:      sc.Counter("events_trimmed"),
		truncated:    sc.Counter("route_truncated"),
		crashes:      sc.Counter("crashes"),
		recoveries:   sc.Counter("recoveries"),
		ckptBytes:    sc.Counter("checkpoint_bytes"),
		replayed:     sc.Counter("replayed_events"),
		migrations:   sc.Counter("migrations"),
		migBytes:     sc.Counter("migrated_bytes"),
		workersG:     sc.Gauge("workers"),
		assign:       make(map[int]int),
		lastLoad:     make(map[int]int),
	}
	// Validate the fragment root up front: partitions compile engines
	// lazily (possibly mid-feed, on the first event into a new span), and
	// a compile error must surface here as an error, not there as a panic.
	if _, err := temporal.Compile(frag.Root, discardSink{}); err != nil {
		return nil, fmt.Errorf("timr: fragment %s: %w", frag.Name, err)
	}
	switch {
	case frag.Part.Temporal:
		width := frag.Part.SpanWidth
		if width <= 0 {
			width = 4 * temporal.Hour
		}
		st.spans = &SpanSpec{Origin: 0, Width: width, Overlap: frag.Root.MaxWindow(), N: 1 << 30}
	case len(frag.Part.Cols) == 0:
		st.nparts = 1
	default:
		st.nparts = j.machines
		for i, in := range frag.Inputs {
			st.keyCols[i] = in.Schema.Indexes(in.Part.Cols...)
		}
	}
	return st, nil
}

func (st *streamStage) newEngine(id int) *temporal.Engine {
	eng, err := temporal.NewEngine(st.frag.Root,
		temporal.WithSink(&stageOutput{stage: st, span: id}),
		temporal.WithObs(st.scope),
		temporal.WithCTIPeriod(0)) // punctuation comes from the wave, not per-feed
	if err != nil {
		panic(err) // unreachable: fragment roots are compile-validated in newStage
	}
	return eng
}

func (st *streamStage) partition(id int) *streamPartition {
	if p, ok := st.parts[id]; ok {
		return p
	}
	p := &streamPartition{id: id, eng: st.newEngine(id), crashAt: -1}
	p.buf = &streamBuffer{
		depth:    st.depth,
		released: st.released,
		deliver: func(e temporal.Event) {
			src := int(e.Payload[len(e.Payload)-1].AsInt()) // routing tag
			e.Payload = e.Payload[:len(e.Payload)-1]
			// Through p, not a captured engine: recovery swaps p.eng.
			p.eng.Feed(st.frag.Inputs[src].ScanName, e)
		},
	}
	st.parts[id] = p
	st.place(id)
	st.arm(p)
	if st.spans != nil && (!st.hasSpan || id < st.minSpan) {
		// New earliest span: it inherits ownership of everything before
		// it. Safe to move while the job runs: a span earlier than all
		// existing ones can only be created by an event below every
		// existing span's start, and the punctuation waves that release
		// output never run past the earliest pending input (§VII barrier
		// contract), so no output in the re-assigned region has been
		// emitted yet.
		st.minSpan = id
		st.hasSpan = true
	}
	return p
}

// route delivers one event for input src to the partition(s) that own it.
func (st *streamStage) route(src int, ev temporal.Event) {
	st.one[0] = ev
	st.routeBatch(src, st.one[:])
}

// routeBatch delivers a run of events for input src. Routing tags (the
// input index appended to each payload, so the barrier can feed the right
// engine source after reordering) are carved from one slab per run, and
// single-partition stages admit the whole run with one buffer append.
func (st *streamStage) routeBatch(src int, events []temporal.Event) {
	if len(events) == 0 {
		return
	}
	// Tag payloads in one slab: [payload..., Int(src)] per event. The
	// slab's lifetime matches the barrier buffer entries that reference it.
	total := 0
	for i := range events {
		total += len(events[i].Payload) + 1
	}
	slab := make(temporal.Row, total)
	tag := temporal.Int(int64(src))
	tagged := append(st.routeBuf[:0], events...)
	for i := range tagged {
		n := len(tagged[i].Payload) + 1
		row := slab[:n:n]
		slab = slab[n:]
		copy(row, tagged[i].Payload)
		row[n-1] = tag
		tagged[i].Payload = row
	}
	st.dispatch(src, tagged, nil)
	st.routeBuf = tagged[:0]
}

// routeColBatch delivers a columnar run for input src. The tagged rows
// routeBatch builds from event payloads are instead materialized straight
// from the columns — MaterializeRowsPad leaves the tag cell in place, so
// the transpose and the tag copy collapse into one pass — and hash
// partitioning runs column-at-a-time over the batch (HashRows matches
// HashRow cell for cell, so partition assignment is identical).
func (st *streamStage) routeColBatch(src int, cb *temporal.ColBatch) {
	if !cb.HasLifetimes() {
		panic("timr: streaming FeedColBatch on a lifetime-free batch")
	}
	n := cb.Len()
	rows := cb.MaterializeRowsPad(1)
	tag := temporal.Int(int64(src))
	tagged := st.routeBuf[:0]
	le, re := cb.LE, cb.RE
	for i := 0; i < n; i++ {
		row := rows[i]
		row[len(row)-1] = tag
		tagged = append(tagged, temporal.Event{LE: le[i], RE: re[i], Payload: row})
	}
	var hashes []uint64
	if st.spans == nil && st.nparts > 1 {
		st.hashBuf = cb.HashRows(st.keyCols[src], st.hashBuf)
		hashes = st.hashBuf
	}
	st.dispatch(src, tagged, hashes)
	st.routeBuf = tagged[:0]
}

// dispatch admits a tagged run to the owning partition(s). hashes, when
// non-nil, holds precomputed partition hashes for hash-keyed stages (the
// columnar path computes them vectorized); otherwise they are computed
// row-wise here.
func (st *streamStage) dispatch(src int, tagged []temporal.Event, hashes []uint64) {
	switch {
	case st.spans != nil:
		for i := range tagged {
			ev := &tagged[i]
			// Route by the full lifetime [LE, RE), not LE alone: a window
			// the event opens contributes to snapshots up to RE+overlap, so
			// every span up to there must see it (mirrors SpansForInterval
			// in batch).
			re := ev.RE
			if re < ev.LE+1 {
				re = ev.LE + 1
			}
			first := int(floorDivT(ev.LE, st.spans.Width))
			last := int(floorDivT(re-1+st.spans.Overlap, st.spans.Width))
			// Spans are lazy (N is effectively unbounded), so a pathological
			// lifetime could fan one event out to millions of partitions;
			// cap the fan-out and count what was cut so it is observable.
			if last-first+1 > maxSpanFanout {
				last = first + maxSpanFanout - 1
				st.truncated.Inc()
			}
			for p := first; p <= last; p++ {
				st.admit(st.partition(p), *ev)
			}
		}
	case st.nparts == 1:
		st.admitAll(st.partition(0), tagged)
	default:
		for i := range tagged {
			var h uint64
			if hashes != nil {
				h = hashes[i]
			} else {
				h = temporal.HashRow(tagged[i].Payload, st.keyCols[src])
			}
			st.admit(st.partition(int(h%uint64(st.nparts))), tagged[i])
		}
	}
}

// ---- crash injection and recovery ----

// admit pushes one event into a partition's barrier and replay log,
// firing an armed crash first when its push count comes due — so the
// partition dies mid-feed and the event lands on the recovered one.
func (st *streamStage) admit(p *streamPartition, e temporal.Event) {
	if p.crashAt >= 0 && p.pushes >= p.crashAt {
		st.crash(p)
	}
	p.buf.push(e)
	p.log = append(p.log, e)
	p.pushes++
}

// admitAll admits a whole run, splitting it when an armed crash lands
// inside: the head is admitted, the partition dies and recovers, and the
// tail is admitted to the rebuilt partition.
func (st *streamStage) admitAll(p *streamPartition, evs []temporal.Event) {
	if p.crashAt >= 0 && p.pushes+len(evs) > p.crashAt {
		k := p.crashAt - p.pushes
		if k < 0 {
			k = 0
		}
		p.buf.pushAll(evs[:k])
		p.log = append(p.log, evs[:k]...)
		p.pushes += k
		st.crash(p)
		evs = evs[k:]
	}
	p.buf.pushAll(evs)
	p.log = append(p.log, evs...)
	p.pushes += len(evs)
}

// crash kills a partition and immediately recovers it: the engine and
// barrier buffer are discarded, a fresh engine is restored from the last
// wave's checkpoint, and the replay log repopulates the barrier. Because
// engines consume input only during waves (the barrier releases nothing
// between them), the checkpoint plus the log reconstruct the partition
// exactly, at whatever moment the crash fires.
func (st *streamStage) crash(p *streamPartition) {
	st.crashes.Inc()
	p.crashAt = -1 // disarmed until the next wave re-arms
	p.eng = st.newEngine(p.id)
	if p.ckpt != nil {
		if err := p.eng.Restore(p.ckpt); err != nil {
			// Unreachable short of memory corruption: the checkpoint came
			// from an engine compiled from this same fragment root.
			panic(fmt.Sprintf("timr: partition recovery failed: %v", err))
		}
	}
	p.buf.pending = append(p.buf.pending[:0], p.log...)
	st.replayed.Add(int64(len(p.log)))
	st.recoveries.Inc()
}

// arm draws the partition's fate for the coming feed interval. The draw
// is a pure function of (fragment, partition, wave, seed) — mirroring
// Cluster.injectedFailure — so chaotic runs are exactly reproducible.
func (st *streamStage) arm(p *streamPartition) {
	cc := st.job.cfg.Crash
	if cc.Rate <= 0 {
		p.crashAt = -1
		return
	}
	h := temporal.HashSeed
	h = temporal.String(st.frag.Name).Hash(h)
	h = temporal.Int(int64(p.id)).Hash(h)
	h = temporal.Int(int64(st.job.waves)).Hash(h)
	h = temporal.Int(cc.Seed).Hash(h)
	r := rand.New(rand.NewSource(int64(h)))
	if r.Float64() < cc.Rate {
		p.crashAt = r.Intn(64) // die this many admissions into the interval
	} else {
		p.crashAt = -1
	}
}

// advance runs this stage's barrier at time t: release buffered events
// below t into the engines, then punctuate the engines (flushing their
// output into downstream buffers before those stages' barriers run).
// Afterwards each partition checkpoints its engine, resets its replay log
// to the events still pending, and draws its fate for the next interval.
func (st *streamStage) advance(t temporal.Time) {
	// Sorted order: per-partition work is independent, but the rebalance
	// policy reads the per-shard loads this loop records, so the walk must
	// not depend on map iteration order.
	for _, id := range st.sortedParts() {
		p := st.parts[id]
		if p.crashAt >= 0 {
			// Armed crash no feed reached: fire it at the wave boundary so
			// quiet partitions crash too.
			st.crash(p)
		}
		p.buf.advance(t)
		p.eng.Advance(t)
		p.ckpt = p.eng.Checkpoint()
		st.ckptBytes.Add(int64(len(p.ckpt)))
		p.log = append(p.log[:0], p.buf.pending...)
		st.lastLoad[p.id] = p.pushes
		p.pushes = 0
		st.arm(p)
	}
}

func (st *streamStage) sortedParts() []int {
	ids := make([]int, 0, len(st.parts))
	for id := range st.parts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (st *streamStage) flush() {
	for _, p := range st.parts {
		if p.crashAt >= 0 {
			st.crash(p) // last chance for an armed crash to matter
		}
		p.buf.flush()
		p.eng.Flush()
	}
}

// discardSink swallows output; newStage compiles a throwaway pipeline
// into it to validate fragment roots up front.
type discardSink struct{}

func (discardSink) OnEvent(temporal.Event) {}
func (discardSink) OnCTI(temporal.Time)    {}
func (discardSink) OnFlush()               {}

// stageOutput forwards a partition engine's output downstream, clipping
// temporal partitions to their owned span.
type stageOutput struct {
	stage *streamStage
	span  int
}

func (o *stageOutput) OnEvent(e temporal.Event) {
	st := o.stage
	if st.spans != nil {
		start := temporal.Time(o.span) * st.spans.Width
		end := start + st.spans.Width
		if o.span == st.minSpan {
			// The earliest *existing* span owns everything before it
			// (shifted lifetimes can reach below the data's origin) —
			// matching SpanSpec.Owned, where batch span 0 takes MinTime.
			// Keying on the actual earliest span rather than id <= 0
			// matters when the data starts at a large positive time: the
			// earliest lazy span id is then far above zero, and gating on
			// the id would silently discard output below its span start.
			start = temporal.MinTime
		}
		le, re := maxT(e.LE, start), minT(e.RE, end)
		if le >= re {
			st.clipped.Inc()
			return
		}
		if le != e.LE || re != e.RE {
			st.trimmed.Inc()
		}
		e.LE, e.RE = le, re
	}
	if st.frag.Final {
		st.job.out.push(e)
		return
	}
	for _, c := range st.consumers {
		c.stage.route(c.src, e)
	}
}

func (o *stageOutput) OnCTI(temporal.Time) {}
func (o *stageOutput) OnFlush()            {}

func floorDivT(a, b temporal.Time) temporal.Time {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ---- order-restoring barrier ----

// streamBuffer holds events arriving from many ordered producers and
// releases them in LE order once a punctuation guarantees completeness.
type streamBuffer struct {
	pending  []temporal.Event
	deliver  func(temporal.Event)
	depth    *obs.Gauge   // high-watermark of pending (nil-safe)
	released *obs.Counter // events delivered through the barrier
}

func (b *streamBuffer) push(e temporal.Event) {
	b.pending = append(b.pending, e)
	b.depth.SetMax(int64(len(b.pending)))
}

// pushAll admits a whole run with one append and one gauge update.
func (b *streamBuffer) pushAll(evs []temporal.Event) {
	b.pending = append(b.pending, evs...)
	b.depth.SetMax(int64(len(b.pending)))
}

// advance releases events with LE < t in sorted order (events at or
// beyond t may still gain earlier-arriving siblings from other upstream
// partitions, so they stay buffered).
func (b *streamBuffer) advance(t temporal.Time) {
	if len(b.pending) == 0 {
		return
	}
	// Full (LE, RE, payload) ordering keeps release order deterministic
	// regardless of the arrival interleaving across upstream partitions.
	temporal.SortEvents(b.pending)
	n := sort.Search(len(b.pending), func(i int) bool { return b.pending[i].LE >= t })
	b.released.Add(int64(n))
	for _, e := range b.pending[:n] {
		b.deliver(e)
	}
	b.pending = append(b.pending[:0], b.pending[n:]...)
}

func (b *streamBuffer) flush() {
	b.advance(temporal.MaxTime)
}
