package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"timr/internal/mapreduce"
	"timr/internal/temporal"
)

// mergeTestRows builds rows with LE in column 0 and a unique id in
// column 1, so merge order can be checked by id sequence.
func mergeTestRows(les []temporal.Time, idBase int) []mapreduce.Row {
	rows := make([]mapreduce.Row, len(les))
	for i, le := range les {
		rows[i] = mapreduce.Row{temporal.Int(le), temporal.Int(int64(idBase + i))}
	}
	return rows
}

func mergeTestToEvent(r mapreduce.Row) temporal.Event {
	return temporal.PointEvent(r[0].AsInt(), r)
}

// collectMergeIDs drains mergeEventRuns and returns the emitted id column.
func collectMergeIDs(t *testing.T, runs []*eventRun) []int64 {
	t.Helper()
	var ids []int64
	if err := mergeEventRuns(runs, func(er *eventRun) error {
		ids = append(ids, er.cur.Payload[1].AsInt())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ids
}

// mergeRefIDs is the reference order: a stable LE sort of the runs
// concatenated in ordinal order — exactly what the pre-streaming
// reducer produced via mergeRunOrder.
func mergeRefIDs(runRows [][]mapreduce.Row) []int64 {
	type ev struct{ le, id int64 }
	var all []ev
	for _, rows := range runRows {
		for _, r := range rows {
			all = append(all, ev{r[0].AsInt(), r[1].AsInt()})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].le < all[j].le })
	ids := make([]int64, 0, len(all))
	for _, e := range all {
		ids = append(ids, e.id)
	}
	return ids
}

func TestMergeEventRunsMixedResidentAndSpilled(t *testing.T) {
	// Randomized k-way merges where roughly half the sorted runs live in
	// spill files: the streamed order must equal the stable-sort
	// reference regardless of where each run resides. A small LE domain
	// forces cross-run ties, where ordinal tie-breaking would show any
	// asymmetry between resident and spilled cursors.
	r := rand.New(rand.NewSource(53))
	dir := t.TempDir()
	for trial := 0; trial < 50; trial++ {
		nruns := 1 + r.Intn(8)
		var runRows [][]mapreduce.Row
		var runs []*eventRun
		id := 0
		for ord := 0; ord < nruns; ord++ {
			n := r.Intn(60) // zero-length runs included
			les := make([]temporal.Time, n)
			le := temporal.Time(r.Intn(5))
			for i := range les {
				les[i] = le
				le += temporal.Time(r.Intn(3)) // ties within the run too
			}
			rows := mergeTestRows(les, id)
			id += n
			runRows = append(runRows, rows)
			var seg mapreduce.Segment
			if r.Intn(2) == 0 {
				spilled, release, err := mapreduce.SpillRows(dir, rows, true)
				if err != nil {
					t.Fatal(err)
				}
				defer release()
				seg = spilled
			} else {
				seg = mapreduce.ResidentSegment(rows, true)
			}
			er, err := newEventRun(&seg, ord, 0, mergeTestToEvent, func() {
				t.Error("sorted run must not fall back")
			})
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, er)
		}
		got := collectMergeIDs(t, runs)
		want := mergeRefIDs(runRows)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged order diverges\ngot:  %v\nwant: %v", trial, got, want)
		}
	}
}

func TestMergeEventRunsSingleSpilledRun(t *testing.T) {
	// One sorted spilled run takes the no-heap fast path and must stream
	// back in file order.
	rows := mergeTestRows([]temporal.Time{1, 3, 3, 7, 9}, 0)
	seg, release, err := mapreduce.SpillRows(t.TempDir(), rows, true)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	er, err := newEventRun(&seg, 0, 0, mergeTestToEvent, func() {
		t.Error("sorted spilled run must not fall back")
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collectMergeIDs(t, []*eventRun{er})
	if want := []int64{0, 1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("single spilled run order = %v, want %v", got, want)
	}
}

func TestMergeEventRunsEmpty(t *testing.T) {
	// No runs at all, and runs that are all empty (resident and spilled),
	// must emit nothing.
	if err := mergeEventRuns(nil, func(*eventRun) error {
		t.Error("emit called with no runs")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	emptySpilled, release, err := mapreduce.SpillRows(t.TempDir(), nil, true)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	var runs []*eventRun
	for ord, seg := range []mapreduce.Segment{
		mapreduce.ResidentSegment(nil, true),
		emptySpilled,
	} {
		seg := seg
		er, err := newEventRun(&seg, ord, 0, mergeTestToEvent, nil)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, er)
	}
	if got := collectMergeIDs(t, runs); len(got) != 0 {
		t.Fatalf("empty runs emitted %v", got)
	}
}

func TestMergeEventRunsEqualKeysAcrossSpillBoundary(t *testing.T) {
	// All events share one LE, split across resident and spilled runs:
	// the tie-break must be run ordinal alone, so the output is exactly
	// run 0's rows, then run 1's, then run 2's — no matter which runs
	// sit on disk.
	dir := t.TempDir()
	runRows := [][]mapreduce.Row{
		mergeTestRows([]temporal.Time{5, 5, 5}, 0),
		mergeTestRows([]temporal.Time{5, 5}, 3),
		mergeTestRows([]temporal.Time{5}, 5),
	}
	var runs []*eventRun
	for ord, rows := range runRows {
		var seg mapreduce.Segment
		if ord == 1 { // middle run spilled, neighbours resident
			spilled, release, err := mapreduce.SpillRows(dir, rows, true)
			if err != nil {
				t.Fatal(err)
			}
			defer release()
			seg = spilled
		} else {
			seg = mapreduce.ResidentSegment(rows, true)
		}
		er, err := newEventRun(&seg, ord, 0, mergeTestToEvent, nil)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, er)
	}
	got := collectMergeIDs(t, runs)
	if want := []int64{0, 1, 2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("equal-key order across spill boundary = %v, want %v", got, want)
	}
}

func TestMergeEventRunsUnsortedSpilledFallsBack(t *testing.T) {
	// A spilled run without the RunKey sortedness mark must materialize,
	// stable-sort, and announce the fallback — and still merge into the
	// reference order.
	unsorted := mergeTestRows([]temporal.Time{9, 2, 2, 4}, 0)
	sorted := mergeTestRows([]temporal.Time{1, 3, 4}, 4)
	seg, release, err := mapreduce.SpillRows(t.TempDir(), unsorted, false)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	fallbacks := 0
	er0, err := newEventRun(&seg, 0, 0, mergeTestToEvent, func() { fallbacks++ })
	if err != nil {
		t.Fatal(err)
	}
	resident := mapreduce.ResidentSegment(sorted, true)
	er1, err := newEventRun(&resident, 1, 0, mergeTestToEvent, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := collectMergeIDs(t, []*eventRun{er0, er1})
	want := mergeRefIDs([][]mapreduce.Row{unsorted, sorted})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback merge order = %v, want %v", got, want)
	}
	if fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", fallbacks)
	}
}

func TestSpillBudgetEquivalence(t *testing.T) {
	// The out-of-core acceptance bar: a chained two-fragment temporal
	// plan produces bit-identical results whether nothing, some, or
	// every dataset spills — and the resident reference itself matches
	// the single-node engine.
	r := rand.New(rand.NewSource(7))
	rows := clickRows(r, 3000, 40, 6)
	mk := func() *temporal.Plan {
		return temporal.Scan("clicks", clickSchema()).
			Exchange(temporal.PartitionBy{Cols: []string{"UserId"}}).
			GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
				return g.WithWindow(10).Count("C1")
			}).
			ToPoint().
			Exchange(temporal.PartitionBy{Cols: []string{"UserId"}}).
			GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
				return g.WithWindow(100).Max("C1", "M")
			})
	}
	run := func(budget int64) []temporal.Event {
		cl := mapreduce.NewCluster(mapreduce.Config{
			Machines: 8, MemoryBudget: budget, SpillDir: t.TempDir(),
		})
		defer func() {
			if err := cl.Close(); err != nil {
				t.Fatal(err)
			}
		}()
		tm := New(cl, DefaultConfig())
		cl.FS.Write("ds.clicks", mapreduce.SinglePartition(clickSchema(), rows))
		stat, err := tm.Run(mk(), map[string]string{"clicks": "ds.clicks"}, "out")
		if err != nil {
			t.Fatal(err)
		}
		spilled := 0
		for _, st := range stat.Stages {
			spilled += st.SpillSegments
		}
		if budget == mapreduce.SpillAll && spilled == 0 {
			t.Fatal("SpillAll run recorded no spill activity")
		}
		if budget == 0 && spilled != 0 {
			t.Fatalf("unlimited budget spilled %d segments", spilled)
		}
		got, err := tm.ResultEvents("out")
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	want := run(0)
	if len(want) == 0 {
		t.Fatal("empty reference result")
	}
	for _, budget := range []int64{mapreduce.SpillAll, 256, 4 << 10} {
		if got := run(budget); !temporal.EventsEqual(got, want) {
			t.Fatalf("budget=%d diverges from the resident run", budget)
		}
	}
	if single := singleNode(t, mk(), "clicks", rows, 0); !temporal.EventsEqual(want, single) {
		t.Fatal("resident run diverges from single-node reference")
	}
}
