package core_test

// Chaos equivalence: a streaming job with deterministic crash injection
// must produce exactly the crash-free (and batch) results, because every
// partition recovers from its wave checkpoint plus the replay log. The
// tests live in an external package so they can drive the real BotElim
// plan from the bt package (which itself imports core).

import (
	"testing"

	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/obs"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// driveStream feeds one source's events in LE order with a punctuation
// wave every period ticks, then flushes and returns coalesced results.
func driveStream(t *testing.T, plan *temporal.Plan, schemas map[string]*temporal.Schema,
	source string, events []temporal.Event, machines int, cfg core.Config, period temporal.Time) []temporal.Event {
	t.Helper()
	job, err := core.NewStreamingJob(plan, schemas, core.WithMachines(machines), core.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	src, err := job.Source(source)
	if err != nil {
		t.Fatal(err)
	}
	last := temporal.Time(temporal.MinTime)
	for _, e := range events {
		if last == temporal.MinTime {
			last = e.LE
		} else if e.LE-last >= period {
			if err := job.Advance(e.LE); err != nil {
				t.Fatal(err)
			}
			last = e.LE
		}
		if err := src.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	job.Flush()
	res, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// driveStreamCol mirrors driveStream but ingests through the columnar
// path: events accumulated since the last punctuation are flushed as
// ColBatch chunks via FeedColBatch, before each Advance and at the end.
// Crash injection therefore lands mid-wave inside a columnar feed, and
// recovery must replay exactly what the batch carried.
func driveStreamCol(t *testing.T, plan *temporal.Plan, schemas map[string]*temporal.Schema,
	source string, events []temporal.Event, machines int, cfg core.Config, period temporal.Time) []temporal.Event {
	t.Helper()
	job, err := core.NewStreamingJob(plan, schemas, core.WithMachines(machines), core.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	src, err := job.Source(source)
	if err != nil {
		t.Fatal(err)
	}
	ncols := schemas[source].Len()
	var buf []temporal.Event
	feed := func() {
		for lo := 0; lo < len(buf); lo += 64 {
			hi := lo + 64
			if hi > len(buf) {
				hi = len(buf)
			}
			if err := src.FeedColBatch(temporal.ColBatchFromEvents(buf[lo:hi], ncols)); err != nil {
				t.Fatal(err)
			}
		}
		buf = buf[:0]
	}
	last := temporal.Time(temporal.MinTime)
	for _, e := range events {
		if last == temporal.MinTime {
			last = e.LE
		} else if e.LE-last >= period {
			feed()
			if err := job.Advance(e.LE); err != nil {
				t.Fatal(err)
			}
			last = e.LE
		}
		buf = append(buf, e)
	}
	feed()
	job.Flush()
	res, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// counterTotal sums every counter named `name` across the scope tree.
func counterTotal(sc *obs.Scope, name string) int64 {
	var n int64
	for _, p := range sc.Snapshot() {
		if p.Name == name {
			n += p.Value
		}
	}
	return n
}

func TestStreamingChaosBotElim(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Users = 250
	cfg.Days = 1
	data := workload.Generate(cfg)
	events := temporal.RowsToPointEvents(data.Rows, 0)
	p := bt.DefaultParams()
	schemas := map[string]*temporal.Schema{bt.SourceEvents: workload.UnifiedSchema()}
	period := 15 * temporal.Minute

	batch, err := temporal.RunPlan(bt.BotElimPlan(p, false),
		map[string][]temporal.Event{bt.SourceEvents: events})
	if err != nil {
		t.Fatal(err)
	}
	clean := driveStream(t, bt.BotElimPlan(p, true), schemas, bt.SourceEvents,
		events, 4, core.DefaultConfig(), period)
	if !temporal.EventsEqual(clean, batch) {
		t.Fatalf("crash-free streaming diverges from batch: %d vs %d events", len(clean), len(batch))
	}

	for _, seed := range []int64{1, 2, 3} {
		scope := obs.New("chaos")
		ccfg := core.DefaultConfig()
		ccfg.Obs = scope
		ccfg.Crash = core.CrashConfig{Rate: 0.3, Seed: seed}
		got := driveStream(t, bt.BotElimPlan(p, true), schemas, bt.SourceEvents,
			events, 4, ccfg, period)
		if !temporal.EventsEqual(got, clean) {
			t.Fatalf("seed %d: chaotic run diverges: %d vs %d events", seed, len(got), len(clean))
		}
		crashes := counterTotal(scope, "crashes")
		if crashes == 0 {
			t.Fatalf("seed %d: rate 0.3 injected no crashes; the test is vacuous", seed)
		}
		if rec := counterTotal(scope, "recoveries"); rec != crashes {
			t.Fatalf("seed %d: %d crashes but %d recoveries", seed, crashes, rec)
		}
		if counterTotal(scope, "checkpoint_bytes") == 0 {
			t.Fatalf("seed %d: no checkpoint bytes accounted", seed)
		}
	}
}

func TestStreamingChaosChainedFragments(t *testing.T) {
	sch := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
	mk := func(annotate bool) *temporal.Plan {
		src := temporal.Scan("clicks", sch)
		s := src
		if annotate {
			s = src.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
		}
		perUser := s.GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(30).Count("C")
		}).ToPoint()
		if annotate {
			perUser = perUser.Exchange(temporal.PartitionBy{Cols: []string{"C"}})
		}
		return perUser.GroupApply([]string{"C"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(50).Count("N")
		})
	}
	var events []temporal.Event
	tm := temporal.Time(0)
	for i := 0; i < 900; i++ {
		tm += temporal.Time(i % 3)
		events = append(events, temporal.PointEvent(tm, temporal.Row{
			temporal.Int(int64(tm)), temporal.Int(int64(i % 17)), temporal.Int(int64(i % 5)),
		}))
	}
	schemas := map[string]*temporal.Schema{"clicks": sch}

	batch, err := temporal.RunPlan(mk(false), map[string][]temporal.Event{"clicks": events})
	if err != nil {
		t.Fatal(err)
	}
	clean := driveStream(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), 20)
	if !temporal.EventsEqual(clean, batch) {
		t.Fatalf("crash-free chained run diverges from batch: %d vs %d events", len(clean), len(batch))
	}
	for _, seed := range []int64{1, 2, 3} {
		scope := obs.New("chaos")
		ccfg := core.DefaultConfig()
		ccfg.Obs = scope
		ccfg.Crash = core.CrashConfig{Rate: 0.3, Seed: seed}
		got := driveStream(t, mk(true), schemas, "clicks", events, 3, ccfg, 20)
		if !temporal.EventsEqual(got, clean) {
			t.Fatalf("seed %d: chaotic chained run diverges: %d vs %d events", seed, len(got), len(clean))
		}
		if counterTotal(scope, "crashes") == 0 {
			t.Fatalf("seed %d: no crashes injected; the test is vacuous", seed)
		}
		if counterTotal(scope, "replayed_events") == 0 {
			t.Fatalf("seed %d: crashes recovered without replaying any events", seed)
		}
	}
}

func TestFusedStreamingColumnarChaos(t *testing.T) {
	// Satellite of the fusion PR: partitions fed via FeedColBatch crash
	// mid-wave and recover bit-identically. The chained plan carries a
	// stateless filter at the first fragment head, so crash-free runs
	// (no Obs) execute it as a fused kernel while chaotic runs (Obs set)
	// interpret it — agreement here is also a fused-vs-interpreted
	// differential across the streaming columnar ingest path.
	sch := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
	mk := func(annotate bool) *temporal.Plan {
		src := temporal.Scan("clicks", sch)
		s := src
		if annotate {
			s = src.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
		}
		perUser := s.Where(temporal.ColGtInt("AdId", 0)).
			GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
				return g.WithWindow(30).Count("C")
			}).ToPoint()
		if annotate {
			perUser = perUser.Exchange(temporal.PartitionBy{Cols: []string{"C"}})
		}
		return perUser.GroupApply([]string{"C"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(50).Count("N")
		})
	}
	var events []temporal.Event
	tm := temporal.Time(0)
	for i := 0; i < 900; i++ {
		tm += temporal.Time(i % 3)
		events = append(events, temporal.PointEvent(tm, temporal.Row{
			temporal.Int(int64(tm)), temporal.Int(int64(i % 17)), temporal.Int(int64(i % 5)),
		}))
	}
	schemas := map[string]*temporal.Schema{"clicks": sch}

	batch, err := temporal.RunPlan(mk(false), map[string][]temporal.Event{"clicks": events})
	if err != nil {
		t.Fatal(err)
	}
	cleanRow := driveStream(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), 20)
	cleanCol := driveStreamCol(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), 20)
	if !temporal.EventsEqual(cleanCol, cleanRow) {
		t.Fatalf("columnar ingest diverges from per-event ingest: %d vs %d events", len(cleanCol), len(cleanRow))
	}
	if !temporal.EventsEqual(cleanCol, batch) {
		t.Fatalf("crash-free columnar run diverges from batch: %d vs %d events", len(cleanCol), len(batch))
	}
	for _, seed := range []int64{1, 2, 3} {
		scope := obs.New("chaos")
		ccfg := core.DefaultConfig()
		ccfg.Obs = scope
		ccfg.Crash = core.CrashConfig{Rate: 0.3, Seed: seed}
		got := driveStreamCol(t, mk(true), schemas, "clicks", events, 3, ccfg, 20)
		if !temporal.EventsEqual(got, cleanCol) {
			t.Fatalf("seed %d: chaotic columnar run diverges: %d vs %d events", seed, len(got), len(cleanCol))
		}
		crashes := counterTotal(scope, "crashes")
		if crashes == 0 {
			t.Fatalf("seed %d: rate 0.3 injected no crashes; the test is vacuous", seed)
		}
		if rec := counterTotal(scope, "recoveries"); rec != crashes {
			t.Fatalf("seed %d: %d crashes but %d recoveries", seed, crashes, rec)
		}
		if counterTotal(scope, "replayed_events") == 0 {
			t.Fatalf("seed %d: crashes recovered without replaying any events", seed)
		}
	}
}

func TestStreamingChaosDeterministic(t *testing.T) {
	// Same seed → same injected crash count: the draw is a pure function
	// of (fragment, partition, wave, seed), like Cluster.injectedFailure.
	sch := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "K", Kind: temporal.KindInt},
	)
	plan := func() *temporal.Plan {
		return temporal.Scan("in", sch).
			Exchange(temporal.PartitionBy{Cols: []string{"K"}}).
			GroupApply([]string{"K"}, func(g *temporal.Plan) *temporal.Plan {
				return g.WithWindow(25).Count("C")
			})
	}
	var events []temporal.Event
	for i := 0; i < 400; i++ {
		events = append(events, temporal.PointEvent(temporal.Time(i), temporal.Row{
			temporal.Int(int64(i)), temporal.Int(int64(i % 7)),
		}))
	}
	crashesFor := func() int64 {
		scope := obs.New("chaos")
		cfg := core.DefaultConfig()
		cfg.Obs = scope
		cfg.Crash = core.CrashConfig{Rate: 0.5, Seed: 42}
		driveStream(t, plan(), map[string]*temporal.Schema{"in": sch}, "in", events, 4, cfg, 10)
		return counterTotal(scope, "crashes")
	}
	a, b := crashesFor(), crashesFor()
	if a == 0 || a != b {
		t.Fatalf("crash injection not deterministic: %d vs %d", a, b)
	}
}
