package core

import (
	"errors"
	"strings"
	"testing"

	"timr/internal/obs"
	"timr/internal/temporal"
)

func feederJob(t *testing.T, opts ...StreamOption) (*StreamingJob, *Feeder) {
	t.Helper()
	plan := temporal.Scan("clicks", clickSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(10).Count("C")
		})
	job, err := NewStreamingJob(plan,
		map[string]*temporal.Schema{"clicks": clickSchema()}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	f, err := job.Source("clicks")
	if err != nil {
		t.Fatal(err)
	}
	return job, f
}

func clickEv(i int) temporal.Event {
	return temporal.PointEvent(temporal.Time(i), temporal.Row{
		temporal.Int(int64(i)), temporal.Int(int64(i % 3)), temporal.Int(int64(i % 2)),
	})
}

func TestFeederUnknownSource(t *testing.T) {
	job, _ := feederJob(t, WithMachines(2))
	if _, err := job.Source("ghost"); err == nil {
		t.Fatal("Source on an unknown name must error")
	}
}

func TestFeederFlushedErrors(t *testing.T) {
	job, f := feederJob(t, WithMachines(2))
	if err := f.Feed(clickEv(1)); err != nil {
		t.Fatal(err)
	}
	job.Flush()
	if err := f.Feed(clickEv(2)); !errors.Is(err, ErrFlushed) {
		t.Fatalf("Feed after Flush: err = %v, want ErrFlushed", err)
	}
	if err := f.TryFeed(clickEv(2)); !errors.Is(err, ErrFlushed) {
		t.Fatalf("TryFeed after Flush: err = %v, want ErrFlushed", err)
	}
	if err := f.FeedBatch([]temporal.Event{clickEv(2)}); !errors.Is(err, ErrFlushed) {
		t.Fatalf("FeedBatch after Flush: err = %v, want ErrFlushed", err)
	}
	if err := f.FeedColBatch(temporal.ColBatchFromEvents([]temporal.Event{clickEv(2)}, 3)); !errors.Is(err, ErrFlushed) {
		t.Fatalf("FeedColBatch after Flush: err = %v, want ErrFlushed", err)
	}
	if err := f.FeedColBatch(nil); !errors.Is(err, ErrFlushed) {
		t.Fatalf("empty FeedColBatch after Flush: err = %v, want ErrFlushed", err)
	}
}

func TestFeederBackpressure(t *testing.T) {
	scope := obs.New("t")
	cfg := DefaultConfig()
	cfg.Obs = scope
	job, f := feederJob(t, WithMachines(2), WithConfig(cfg), WithIntake(5))

	// TryFeed admits up to the budget, then refuses without admitting.
	for i := 0; i < 5; i++ {
		if err := f.TryFeed(clickEv(i)); err != nil {
			t.Fatalf("TryFeed %d under budget: %v", i, err)
		}
	}
	if !f.Backlogged() {
		t.Fatal("budget spent but Backlogged() is false")
	}
	for i := 0; i < 3; i++ {
		if err := f.TryFeed(clickEv(5)); !errors.Is(err, ErrBacklogged) {
			t.Fatalf("TryFeed over budget: err = %v, want ErrBacklogged", err)
		}
	}

	// The committed path still admits over budget, counted as deferred.
	if err := f.Feed(clickEv(6)); err != nil {
		t.Fatalf("committed Feed over budget must admit: %v", err)
	}
	if err := f.FeedBatch([]temporal.Event{clickEv(7), clickEv(8)}); err != nil {
		t.Fatalf("committed FeedBatch over budget must admit: %v", err)
	}

	snap := map[string]int64{}
	var backlog int64
	for _, p := range scope.Snapshot() {
		if p.Scope == "t.stream.source.clicks" {
			if p.Name == "intake_backlog" {
				backlog = p.Value
			} else {
				snap[p.Name] = p.Value
			}
		}
	}
	if snap["events_in"] != 8 { // 5 tried + 1 fed + 2 batch
		t.Fatalf("events_in = %d, want 8", snap["events_in"])
	}
	if snap["shed_events"] != 3 {
		t.Fatalf("shed_events = %d, want 3", snap["shed_events"])
	}
	if snap["deferred_events"] != 3 {
		t.Fatalf("deferred_events = %d, want 3 (1 fed + 2 batch over budget)", snap["deferred_events"])
	}
	if backlog != 3 {
		t.Fatalf("intake_backlog = %d, want high-watermark 3", backlog)
	}

	// A punctuation wave drains the interval and restores the budget.
	if err := job.Advance(100); err != nil {
		t.Fatal(err)
	}
	if f.Backlogged() {
		t.Fatal("budget not restored by the wave")
	}
	if err := f.TryFeed(clickEv(101)); err != nil {
		t.Fatalf("TryFeed after wave reset: %v", err)
	}
}

func TestFeederBackloggedWrappedWithSource(t *testing.T) {
	// Regression: the refusal carries the source name for multi-source
	// drivers, but must still satisfy errors.Is(err, ErrBacklogged) —
	// callers branch on the sentinel, not the message.
	_, f := feederJob(t, WithMachines(2), WithIntake(1))
	if err := f.TryFeed(clickEv(1)); err != nil {
		t.Fatal(err)
	}
	err := f.TryFeed(clickEv(2))
	if !errors.Is(err, ErrBacklogged) {
		t.Fatalf("wrapped refusal lost the sentinel: %v", err)
	}
	if !strings.Contains(err.Error(), `"clicks"`) {
		t.Fatalf("refusal does not name the source: %v", err)
	}
}

func TestFeederBudgetCountsAllPaths(t *testing.T) {
	// FeedColBatch charges the batch length against the same budget.
	_, f := feederJob(t, WithMachines(2), WithIntake(4))
	evs := []temporal.Event{clickEv(1), clickEv(2), clickEv(3), clickEv(4)}
	if err := f.FeedColBatch(temporal.ColBatchFromEvents(evs, 3)); err != nil {
		t.Fatal(err)
	}
	if err := f.TryFeed(clickEv(5)); !errors.Is(err, ErrBacklogged) {
		t.Fatalf("columnar feed did not charge the budget: err = %v", err)
	}
}

func TestFeederMatchesDirectRouting(t *testing.T) {
	// The Feeder paths must produce the same output as the pre-redesign
	// direct job methods (which now delegate to it) — one plan, three
	// ingest shapes, identical results.
	var events []temporal.Event
	for i := 0; i < 300; i++ {
		events = append(events, clickEv(i/2))
	}
	run := func(mode int) []temporal.Event {
		job, f := feederJob(t, WithMachines(3))
		for lo := 0; lo < len(events); lo += 50 {
			hi := lo + 50
			if hi > len(events) {
				hi = len(events)
			}
			var err error
			switch mode {
			case 0:
				for _, e := range events[lo:hi] {
					if err = f.Feed(e); err != nil {
						break
					}
				}
			case 1:
				err = f.FeedBatch(events[lo:hi])
			case 2:
				err = f.FeedColBatch(temporal.ColBatchFromEvents(events[lo:hi], 3))
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := job.Advance(events[hi-1].LE); err != nil {
				t.Fatal(err)
			}
		}
		job.Flush()
		res, err := job.Results()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(0)
	if len(ref) == 0 {
		t.Fatal("no output; test is vacuous")
	}
	for mode := 1; mode <= 2; mode++ {
		if got := run(mode); !temporal.EventsEqual(got, ref) {
			t.Fatalf("mode %d diverges: %d vs %d events", mode, len(got), len(ref))
		}
	}
}
