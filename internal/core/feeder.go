package core

import (
	"errors"
	"fmt"

	"timr/internal/obs"
	"timr/internal/temporal"
)

// ErrBacklogged is returned by Feeder.TryFeed when the source's per-wave
// intake budget (WithIntake) is exhausted: the event was NOT admitted,
// and the caller owns the retry/shed decision. The committed Feed paths
// never return it — they admit over budget and account the overflow as
// deferred load instead.
var ErrBacklogged = errors.New("timr: source intake backlogged")

// Feeder is the per-source ingest handle of a StreamingJob, resolved
// once by Source instead of per call: the source-name lookup, the
// consuming-stage fan-out list, and the admission state all live here.
// Admission control is wave-scoped — WithIntake grants each source a
// budget of events per punctuation interval; TryFeed refuses beyond it
// (non-blocking backpressure), while Feed/FeedBatch/FeedColBatch remain
// the committed path that always admits but makes the overflow visible
// as deferred_events and the intake_backlog gauge. Feeders are not safe
// for concurrent use, matching the job's single-threaded feed contract.
type Feeder struct {
	job  *StreamingJob
	name string
	ins  []stageInput

	budget int64 // per-wave admission credits; 0 = unbounded
	used   int64 // events admitted since the last wave
	pos    int64 // driver-published input position; -1 = never set

	events   *obs.Counter // events admitted into the dataflow
	shed     *obs.Counter // TryFeed refusals (events not admitted)
	deferred *obs.Counter // committed events admitted over budget
	backlog  *obs.Gauge   // high-watermark of over-budget depth
}

func newFeeder(j *StreamingJob, name string, ins []stageInput, budget int64) *Feeder {
	sc := j.cfg.Obs.Child("stream.source." + name)
	return &Feeder{
		job: j, name: name, ins: ins, budget: budget, pos: -1,
		events:   sc.Counter("events_in"),
		shed:     sc.Counter("shed_events"),
		deferred: sc.Counter("deferred_events"),
		backlog:  sc.Gauge("intake_backlog"),
	}
}

// Source returns the Feeder for a raw source name. The handle stays
// valid for the job's lifetime; feeding through it after Flush returns
// ErrFlushed like every other ingest path.
func (j *StreamingJob) Source(name string) (*Feeder, error) {
	f, ok := j.feeders[name]
	if !ok {
		return nil, fmt.Errorf("timr: unknown streaming source %q", name)
	}
	return f, nil
}

// Name returns the source name this feeder ingests.
func (f *Feeder) Name() string { return f.name }

// SetPosition publishes the source's current input position — an opaque,
// driver-owned cursor into its schedule (typically "entries consumed so
// far"). The position is committed with every durable generation, so a
// restarted driver can seek its input to the recovered cursor instead of
// re-walking the schedule from the start. The job never interprets it.
func (f *Feeder) SetPosition(pos int64) { f.pos = pos }

// Position returns the last published input position and whether one was
// ever set (restored positions from a recovered generation count).
func (f *Feeder) Position() (int64, bool) { return f.pos, f.pos >= 0 }

// Backlogged reports whether the current wave's intake budget is already
// exhausted — the state in which TryFeed would refuse.
func (f *Feeder) Backlogged() bool {
	return f.budget > 0 && f.used >= f.budget
}

// admit charges n events against the wave budget. Committed admissions
// always succeed (overflow is counted as deferred load); uncommitted
// ones refuse with ErrBacklogged once the budget is spent.
func (f *Feeder) admit(n int64, committed bool) error {
	if f.job.flushed {
		return ErrFlushed
	}
	if f.budget > 0 && f.used+n > f.budget {
		if !committed {
			f.shed.Add(n)
			// Wrap with the source so multi-source drivers can log which
			// intake refused; errors.Is(err, ErrBacklogged) still holds.
			return fmt.Errorf("timr: source %q: %w", f.name, ErrBacklogged)
		}
		over := f.used + n - f.budget
		if over > n {
			over = n
		}
		f.deferred.Add(over)
		f.backlog.SetMax(f.used + n - f.budget)
	}
	f.used += n
	f.events.Add(n)
	return nil
}

// resetWave restores the intake budget at a punctuation wave: the
// engines just consumed the interval's input, so the backlog drained.
func (f *Feeder) resetWave() { f.used = 0 }

// Feed pushes one source event into the dataflow. Events must arrive in
// nondecreasing LE order per source (a live feed's natural order).
func (f *Feeder) Feed(ev temporal.Event) error {
	if err := f.admit(1, true); err != nil {
		return err
	}
	for _, in := range f.ins {
		in.stage.route(in.src, ev)
	}
	return nil
}

// TryFeed pushes one event if the wave's intake budget allows, returning
// ErrBacklogged (event not admitted) otherwise — the non-blocking
// backpressure path for callers that can shed or retry after the next
// wave.
func (f *Feeder) TryFeed(ev temporal.Event) error {
	if err := f.admit(1, false); err != nil {
		return err
	}
	for _, in := range f.ins {
		in.stage.route(in.src, ev)
	}
	return nil
}

// FeedBatch pushes a run of source events (nondecreasing LE) into the
// dataflow, routing the whole run per consuming stage in one call: the
// routing tags are carved from one slab and single-partition stages
// admit the run with one buffer append.
func (f *Feeder) FeedBatch(events []temporal.Event) error {
	if err := f.admit(int64(len(events)), true); err != nil {
		return err
	}
	for _, in := range f.ins {
		in.stage.routeBatch(in.src, events)
	}
	return nil
}

// FeedColBatch pushes a columnar source batch into the dataflow. Each
// consuming stage materializes the rows directly into its tagged routing
// slab (the column→row transpose and the routing-tag copy are one pass),
// and hash-partitioned stages compute partition hashes column-at-a-time,
// so decode-once ingest and per-event ingest produce identical downstream
// output without an intermediate event materialization.
func (f *Feeder) FeedColBatch(cb *temporal.ColBatch) error {
	if cb == nil || cb.Len() == 0 {
		if f.job.flushed {
			return ErrFlushed
		}
		return nil
	}
	if err := f.admit(int64(cb.Len()), true); err != nil {
		return err
	}
	for _, in := range f.ins {
		in.stage.routeColBatch(in.src, cb)
	}
	return nil
}
