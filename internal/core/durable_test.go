package core_test

// Durable restart drill: a streaming job committing wave generations to
// a durable store is killed (kill -9 style: no flush, no shutdown hook,
// the process state simply dropped) at an arbitrary point, restarted via
// RestoreFromDir, re-fed everything its sources admitted after the
// recovered wave, and must produce bit-identical results — including
// under injected I/O faults, with generation fallback, composed with
// crash chaos, and with live shard migration routed through the store.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"timr/internal/core"
	"timr/internal/dur"
	"timr/internal/obs"
	"timr/internal/temporal"
)

func durablePlan() (func(annotate bool) *temporal.Plan, *temporal.Schema) {
	sch := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
	mk := func(annotate bool) *temporal.Plan {
		src := temporal.Scan("clicks", sch)
		s := src
		if annotate {
			s = src.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
		}
		perUser := s.GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(30).Count("C")
		}).ToPoint()
		if annotate {
			perUser = perUser.Exchange(temporal.PartitionBy{Cols: []string{"C"}})
		}
		return perUser.GroupApply([]string{"C"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(50).Count("N")
		})
	}
	return mk, sch
}

func durableEvents(n int) []temporal.Event {
	var events []temporal.Event
	tm := temporal.Time(0)
	for i := 0; i < n; i++ {
		tm += temporal.Time(i % 3)
		events = append(events, temporal.PointEvent(tm, temporal.Row{
			temporal.Int(int64(tm)), temporal.Int(int64(i % 17)), temporal.Int(int64(i % 5)),
		}))
	}
	return events
}

// runKilled drives a durable streaming job and "kills" it after
// killAfter feeds: the function simply returns, dropping all in-memory
// state — exactly what the disk sees after a kill -9.
func runKilled(t *testing.T, plan *temporal.Plan, schemas map[string]*temporal.Schema,
	source string, events []temporal.Event, machines int, cfg core.Config,
	period temporal.Time, store *dur.Store, killAfter int) {
	t.Helper()
	sj, err := core.NewStreamingJob(plan, schemas,
		core.WithMachines(machines), core.WithConfig(cfg), core.WithDurable(store))
	if err != nil {
		t.Fatal(err)
	}
	src, err := sj.Source(source)
	if err != nil {
		t.Fatal(err)
	}
	last := temporal.Time(temporal.MinTime)
	for i, e := range events {
		if i >= killAfter {
			return
		}
		if last == temporal.MinTime {
			last = e.LE
		} else if e.LE-last >= period {
			if err := sj.Advance(e.LE); err != nil {
				t.Fatal(err)
			}
			last = e.LE
		}
		if err := src.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
}

// resumeAndFinish restarts from the store and completes the run: the
// deterministic wave schedule is replayed, feeding is skipped up to and
// including the recovered wave (that state is inside the generation),
// and everything admitted after it is re-fed.
func resumeAndFinish(t *testing.T, plan *temporal.Plan, schemas map[string]*temporal.Schema,
	source string, events []temporal.Event, machines int, cfg core.Config,
	period temporal.Time, store *dur.Store) []temporal.Event {
	t.Helper()
	sj, rec, err := core.RestoreFromDir(plan, schemas, store,
		core.WithMachines(machines), core.WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	src, err := sj.Source(source)
	if err != nil {
		t.Fatal(err)
	}
	skipping := rec != nil
	var recWave temporal.Time
	if rec != nil {
		recWave = rec.Snap.Wave
	}
	last := temporal.Time(temporal.MinTime)
	for _, e := range events {
		fire, ft := false, temporal.Time(0)
		if last == temporal.MinTime {
			last = e.LE
		} else if e.LE-last >= period {
			fire, ft = true, e.LE
			last = e.LE
		}
		if skipping {
			if fire && ft >= recWave {
				// Reached the recovered wave: its Advance is already applied
				// inside the generation, so do not re-fire it; resume feeding
				// with its triggering event.
				skipping = false
			} else {
				continue
			}
		} else if fire {
			if err := sj.Advance(ft); err != nil {
				t.Fatal(err)
			}
		}
		if err := src.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	sj.Flush()
	res, err := sj.Results()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDurableRestartBitIdentity(t *testing.T) {
	mk, sch := durablePlan()
	events := durableEvents(900)
	schemas := map[string]*temporal.Schema{"clicks": sch}
	period := temporal.Time(20)

	clean := driveStream(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period)

	// Kill points: mid-first-interval (before any commit), mid-run, just
	// after a wave boundary, and one event before the end.
	for _, killAfter := range []int{5, 333, 601, 899} {
		killAfter := killAfter
		t.Run(fmt.Sprintf("kill%d", killAfter), func(t *testing.T) {
			dir := t.TempDir()
			store, err := dur.OpenStore(dir, dur.Options{})
			if err != nil {
				t.Fatal(err)
			}
			runKilled(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period, store, killAfter)

			// A new process opens the same directory fresh.
			store2, err := dur.OpenStore(dir, dur.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := resumeAndFinish(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period, store2)
			if !temporal.EventsEqual(got, clean) {
				t.Fatalf("restart after %d feeds diverges: %d vs %d events", killAfter, len(got), len(clean))
			}
		})
	}
}

// runKilledPublishingOffsets is runKilled with the driver additionally
// publishing its schedule position (the index of the wave-triggering
// event, not yet fed) before every Advance — the contract `timr serve`
// uses so recovery can seek instead of re-walking the schedule.
func runKilledPublishingOffsets(t *testing.T, plan *temporal.Plan, schemas map[string]*temporal.Schema,
	source string, events []temporal.Event, machines int, cfg core.Config,
	period temporal.Time, store *dur.Store, killAfter int) {
	t.Helper()
	sj, err := core.NewStreamingJob(plan, schemas,
		core.WithMachines(machines), core.WithConfig(cfg), core.WithDurable(store))
	if err != nil {
		t.Fatal(err)
	}
	src, err := sj.Source(source)
	if err != nil {
		t.Fatal(err)
	}
	last := temporal.Time(temporal.MinTime)
	for i, e := range events {
		if i >= killAfter {
			return
		}
		if last == temporal.MinTime {
			last = e.LE
		} else if e.LE-last >= period {
			src.SetPosition(int64(i))
			if err := sj.Advance(e.LE); err != nil {
				t.Fatal(err)
			}
			last = e.LE
		}
		if err := src.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDurableOffsetSeekResume(t *testing.T) {
	// The seek-based resume: instead of re-walking the whole schedule
	// tracking wave-fire points (resumeAndFinish), the restarted driver
	// reads the recovered input offset and starts the loop there. Output
	// must stay bit-identical to the uninterrupted run.
	mk, sch := durablePlan()
	events := durableEvents(900)
	schemas := map[string]*temporal.Schema{"clicks": sch}
	period := temporal.Time(20)

	clean := driveStream(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period)

	for _, killAfter := range []int{5, 333, 601, 899} {
		killAfter := killAfter
		t.Run(fmt.Sprintf("kill%d", killAfter), func(t *testing.T) {
			dir := t.TempDir()
			store, err := dur.OpenStore(dir, dur.Options{})
			if err != nil {
				t.Fatal(err)
			}
			runKilledPublishingOffsets(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period, store, killAfter)

			store2, err := dur.OpenStore(dir, dur.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sj, rec, err := core.RestoreFromDir(mk(true), schemas, store2,
				core.WithMachines(3), core.WithConfig(core.DefaultConfig()))
			if err != nil {
				t.Fatal(err)
			}
			src, err := sj.Source("clicks")
			if err != nil {
				t.Fatal(err)
			}
			start, last := 0, temporal.Time(temporal.MinTime)
			if rec != nil {
				// The committed offset is the index of the event that
				// triggered the recovered wave; its Advance is inside the
				// generation, so feeding restarts exactly there.
				pos, ok := src.Position()
				if !ok {
					t.Fatal("recovered generation carries no input offset")
				}
				if snapPos, snapOK := rec.Snap.Offset("clicks"); !snapOK || snapPos != pos {
					t.Fatalf("snapshot offset %d/%v disagrees with restored feeder position %d", snapPos, snapOK, pos)
				}
				start, last = int(pos), rec.Snap.Wave
			}
			for _, e := range events[start:] {
				if last == temporal.MinTime {
					last = e.LE
				} else if e.LE-last >= period {
					src.SetPosition(int64(start))
					if err := sj.Advance(e.LE); err != nil {
						t.Fatal(err)
					}
					last = e.LE
				}
				if err := src.Feed(e); err != nil {
					t.Fatal(err)
				}
				start++
			}
			sj.Flush()
			got, err := sj.Results()
			if err != nil {
				t.Fatal(err)
			}
			if !temporal.EventsEqual(got, clean) {
				t.Fatalf("seek resume after %d feeds diverges: %d vs %d events", killAfter, len(got), len(clean))
			}
		})
	}
}

func TestDurableRestartUnderInjectedFaults(t *testing.T) {
	mk, sch := durablePlan()
	events := durableEvents(900)
	schemas := map[string]*temporal.Schema{"clicks": sch}
	period := temporal.Time(20)

	clean := driveStream(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period)

	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			scope := obs.New("dur")
			ffs := dur.NewFaultFS(dur.OS{}, dur.FaultConfig{Rate: 0.3, Seed: seed})
			store, err := dur.OpenStore(dir, dur.Options{FS: ffs, Obs: scope, Retries: 16})
			if err != nil {
				t.Fatal(err)
			}
			runKilled(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period, store, 700)

			// The restarted process sees the same fault-ridden disk, under a
			// different fault sequence.
			ffs2 := dur.NewFaultFS(dur.OS{}, dur.FaultConfig{Rate: 0.3, Seed: seed + 100})
			store2, err := dur.OpenStore(dir, dur.Options{FS: ffs2, Obs: scope, Retries: 16})
			if err != nil {
				t.Fatal(err)
			}
			got := resumeAndFinish(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period, store2)
			if !temporal.EventsEqual(got, clean) {
				t.Fatalf("seed %d: faulty restart diverges: %d vs %d events", seed, len(got), len(clean))
			}
			if ffs.Injected()+ffs2.Injected() == 0 {
				t.Fatalf("seed %d: no faults injected; the test is vacuous", seed)
			}
			if scope.Counter("retries").Value() == 0 {
				t.Fatalf("seed %d: retry supervisor never engaged", seed)
			}
		})
	}
}

func TestDurableGenerationFallback(t *testing.T) {
	mk, sch := durablePlan()
	events := durableEvents(900)
	schemas := map[string]*temporal.Schema{"clicks": sch}
	period := temporal.Time(20)

	clean := driveStream(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period)

	dir := t.TempDir()
	store, err := dur.OpenStore(dir, dur.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runKilled(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period, store, 700)

	// Rot the newest generation's checkpoint file: recovery must fall
	// back to the previous generation and extend the replay, still
	// reaching bit-identical results.
	ckpts, err := filepath.Glob(filepath.Join(dir, "gen-*.ckpt"))
	if err != nil || len(ckpts) < 2 {
		t.Fatalf("want ≥ 2 generations on disk, have %v (%v)", ckpts, err)
	}
	sort.Strings(ckpts)
	newest := ckpts[len(ckpts)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x08
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	scope := obs.New("dur")
	store2, err := dur.OpenStore(dir, dur.Options{Obs: scope})
	if err != nil {
		t.Fatal(err)
	}
	got := resumeAndFinish(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period, store2)
	if !temporal.EventsEqual(got, clean) {
		t.Fatalf("fallback restart diverges: %d vs %d events", len(got), len(clean))
	}
	if n := scope.Counter("corrupt_detected").Value(); n != 1 {
		t.Fatalf("corrupt_detected = %d, want 1", n)
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "corrupt-*"))
	if len(quarantined) == 0 {
		t.Fatal("corrupt generation not quarantined")
	}
}

func TestDurableRestartComposesWithChaos(t *testing.T) {
	mk, sch := durablePlan()
	events := durableEvents(900)
	schemas := map[string]*temporal.Schema{"clicks": sch}
	period := temporal.Time(20)

	clean := driveStream(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period)

	ccfg := core.DefaultConfig()
	ccfg.Crash = core.CrashConfig{Rate: 0.3, Seed: 2}
	dir := t.TempDir()
	store, err := dur.OpenStore(dir, dur.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runKilled(t, mk(true), schemas, "clicks", events, 3, ccfg, period, store, 500)
	store2, err := dur.OpenStore(dir, dur.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := resumeAndFinish(t, mk(true), schemas, "clicks", events, 3, ccfg, period, store2)
	if !temporal.EventsEqual(got, clean) {
		t.Fatalf("chaos + durable restart diverges: %d vs %d events", len(got), len(clean))
	}
}

func TestDurableMigrationThroughStore(t *testing.T) {
	mk, sch := durablePlan()
	events := durableEvents(900)
	schemas := map[string]*temporal.Schema{"clicks": sch}
	period := temporal.Time(20)

	clean := driveStream(t, mk(true), schemas, "clicks", events, 3, core.DefaultConfig(), period)

	dir := t.TempDir()
	scope := obs.New("dur")
	store, err := dur.OpenStore(dir, dur.Options{Obs: scope})
	if err != nil {
		t.Fatal(err)
	}
	sj, err := core.NewStreamingJob(mk(true), schemas,
		core.WithMachines(3), core.WithConfig(core.DefaultConfig()), core.WithDurable(store))
	if err != nil {
		t.Fatal(err)
	}
	src, err := sj.Source("clicks")
	if err != nil {
		t.Fatal(err)
	}
	last := temporal.Time(temporal.MinTime)
	split := false
	for i, e := range events {
		if last == temporal.MinTime {
			last = e.LE
		} else if e.LE-last >= period {
			if err := sj.Advance(e.LE); err != nil {
				t.Fatal(err)
			}
			last = e.LE
			if !split && i > len(events)/2 {
				// Mid-run live migration: with a durable store attached, the
				// shard checkpoint must round-trip through the disk.
				if err := sj.ForceSplit("frag0"); err == nil {
					split = true
				}
			}
		}
		if err := src.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	sj.Flush()
	got, err := sj.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(got, clean) {
		t.Fatalf("store-routed migration diverges: %d vs %d events", len(got), len(clean))
	}
	if !split {
		t.Fatal("ForceSplit never succeeded; migration path not exercised")
	}
	if scope.Counter("transfer_bytes").Value() == 0 {
		t.Fatal("migration did not route checkpoint bytes through the store")
	}
	if sj.DurableErr() != nil {
		t.Fatalf("unexpected durable commit error: %v", sj.DurableErr())
	}
	if scope.Counter("generations").Value() == 0 {
		t.Fatal("no generations committed")
	}
}
