// Package core implements TiMR (paper §III): a framework that runs
// declarative temporal continuous queries over large offline datasets by
// compiling annotated CQ plans into map-reduce stages, embedding an
// unmodified single-node temporal engine (internal/temporal) inside each
// reducer. Neither the map-reduce simulator nor the temporal engine is
// modified — TiMR is purely the plumbing between them, as in the paper.
//
// The pipeline mirrors the paper's Figure 5:
//
//	Parse query  → a temporal.Plan built with the fluent builder
//	Annotate     → exchange operators, via explicit hints (Plan.Exchange)
//	               or the cost-based Optimizer (§VI)
//	Make frags   → MakeFragments cuts the plan at exchanges
//	Convert      → Job builds one mapreduce.Stage per fragment, whose
//	               reducer P feeds rows as events to the embedded engine
package core

import (
	"fmt"

	"timr/internal/temporal"
)

// FragmentInput describes one input edge of a fragment.
type FragmentInput struct {
	// Dataset is the FS dataset name the stage reads.
	Dataset string
	// ScanName is the name the fragment's plan scans this input under.
	ScanName string
	// Intermediate marks TiMR-produced datasets whose rows carry
	// [__LE, __RE, payload...]; raw sources instead carry a Time column
	// (paper footnote 2).
	Intermediate bool
	// Schema is the event payload schema.
	Schema *temporal.Schema
	// Part is how the stage partitions this input.
	Part temporal.PartitionBy
}

// Fragment is a maximal exchange-free subplan (paper §III-A step 3),
// executable by one embedded engine instance per partition.
type Fragment struct {
	Name   string
	Root   *temporal.Plan
	Inputs []FragmentInput
	Output string
	// Final marks the job's last fragment (its output is the query
	// result); intermediate outputs feed downstream fragments.
	Final bool
	// Part is the fragment's partitioning key: the common key of the
	// exchange operators at its input boundary.
	Part temporal.PartitionBy
}

// MakeFragments cuts an annotated plan into fragments at exchange
// operators, top-down (paper §III-A step 3). sourceDatasets maps scan
// names to FS dataset names; output is the FS name for the final result.
// Fragments are returned in execution (bottom-up) order.
func MakeFragments(plan *temporal.Plan, sourceDatasets map[string]string, output string) ([]Fragment, error) {
	f := &fragmenter{sources: sourceDatasets}
	if _, err := f.build(plan, output, true); err != nil {
		return nil, err
	}
	// build appends parents before children; reverse for execution order.
	for i, j := 0, len(f.frags)-1; i < j; i, j = i+1, j-1 {
		f.frags[i], f.frags[j] = f.frags[j], f.frags[i]
	}
	return f.frags, nil
}

type fragmenter struct {
	sources map[string]string
	frags   []Fragment
	n       int
}

// build creates the fragment whose root is `root` and output dataset is
// `out`, recursing below each exchange encountered. It returns the index
// of the created fragment.
func (f *fragmenter) build(root *temporal.Plan, out string, final bool) (int, error) {
	idx := len(f.frags)
	frag := Fragment{Name: fmt.Sprintf("frag%d", f.n), Output: out, Final: final}
	f.n++
	f.frags = append(f.frags, frag) // placeholder; filled below (children appended after)

	memo := make(map[*temporal.Plan]*temporal.Plan)
	var inputs []FragmentInput
	var firstErr error
	seenScan := make(map[string]bool)

	var clone func(n *temporal.Plan) *temporal.Plan
	clone = func(n *temporal.Plan) *temporal.Plan {
		if c, ok := memo[n]; ok {
			return c
		}
		var c *temporal.Plan
		switch n.Kind {
		case temporal.OpExchange:
			below := n.Inputs[0]
			var in FragmentInput
			if below.Kind == temporal.OpScan {
				ds, ok := f.sources[below.Source]
				if !ok {
					if firstErr == nil {
						firstErr = fmt.Errorf("timr: no dataset bound to source %q", below.Source)
					}
					ds = below.Source
				}
				in = FragmentInput{
					Dataset: ds, ScanName: below.Source,
					Schema: below.Out, Part: n.Part,
				}
				c = temporal.Scan(below.Source, below.Out)
			} else {
				childOut := fmt.Sprintf("%s.x%d", out, f.n)
				if _, err := f.build(below, childOut, false); err != nil && firstErr == nil {
					firstErr = err
				}
				scanName := childOut
				in = FragmentInput{
					Dataset: childOut, ScanName: scanName, Intermediate: true,
					Schema: n.Out, Part: n.Part,
				}
				c = temporal.Scan(scanName, n.Out)
			}
			inputs = append(inputs, in)
			if seenScan[in.ScanName] {
				// Two exchanges over the same source within one fragment:
				// legal only with identical partitioning.
				for _, prev := range inputs[:len(inputs)-1] {
					if prev.ScanName == in.ScanName && prev.Part.String() != in.Part.String() {
						if firstErr == nil {
							firstErr = fmt.Errorf("timr: source %q enters fragment with conflicting partitionings %s vs %s",
								in.ScanName, prev.Part, in.Part)
						}
					}
				}
				inputs = inputs[:len(inputs)-1] // deduplicate
			}
			seenScan[in.ScanName] = true
		case temporal.OpScan:
			// Raw scan without an explicit exchange above it: the stage
			// still has to ship these rows somewhere, so it inherits the
			// fragment's key (an implicit exchange). Recorded with an
			// empty Part and resolved in finalize().
			ds, ok := f.sources[n.Source]
			if !ok {
				if firstErr == nil {
					firstErr = fmt.Errorf("timr: no dataset bound to source %q", n.Source)
				}
				ds = n.Source
			}
			if !seenScan[n.Source] {
				seenScan[n.Source] = true
				inputs = append(inputs, FragmentInput{
					Dataset: ds, ScanName: n.Source, Schema: n.Out,
				})
			}
			c = n // scans are immutable; safe to share
		default:
			cp := *n
			cp.Inputs = make([]*temporal.Plan, len(n.Inputs))
			for i, in := range n.Inputs {
				cp.Inputs[i] = clone(in)
			}
			c = &cp
		}
		memo[n] = c
		return c
	}

	newRoot := clone(root)
	if firstErr != nil {
		return idx, firstErr
	}
	frag.Root = newRoot
	frag.Inputs = inputs
	if err := frag.finalize(); err != nil {
		return idx, err
	}
	f.frags[idx] = frag
	return idx, nil
}

// finalize derives the fragment's key from its input boundary and fills
// implicit partitionings.
func (frag *Fragment) finalize() error {
	var key *temporal.PartitionBy
	for i := range frag.Inputs {
		p := frag.Inputs[i].Part
		if len(p.Cols) == 0 && !p.Temporal {
			continue // implicit; filled below
		}
		if key == nil {
			key = &frag.Inputs[i].Part
			continue
		}
		// Multi-input operators require identically partitioned inputs
		// (paper footnote 1). Keys may name different columns on each
		// side of a join but must agree in kind and arity.
		if key.Temporal != p.Temporal || len(key.Cols) != len(p.Cols) {
			return fmt.Errorf("timr: fragment %s inputs have incompatible partitionings %s vs %s",
				frag.Name, key, p)
		}
	}
	if key == nil {
		// No exchange anywhere below: the fragment is not partitionable;
		// it runs as a single task (Part zero value = random/none).
		frag.Part = temporal.PartitionBy{}
		return nil
	}
	frag.Part = *key
	for i := range frag.Inputs {
		p := &frag.Inputs[i].Part
		if len(p.Cols) == 0 && !p.Temporal {
			// Implicit exchange: partition this input by the fragment key.
			// Its columns must exist in the input's schema.
			if !key.Temporal {
				for _, c := range key.Cols {
					if !frag.Inputs[i].Schema.Has(c) {
						return fmt.Errorf("timr: fragment %s key %s not available on input %s",
							frag.Name, key, frag.Inputs[i].ScanName)
					}
				}
			}
			*p = *key
		}
	}
	return nil
}
