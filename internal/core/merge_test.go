package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"timr/internal/temporal"
)

// stableOrder is the reference the merge must reproduce exactly: a stable
// sort of feed indexes by LE.
func stableOrder(les []temporal.Time) []int32 {
	order := make([]int32, len(les))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool { return les[order[i]] < les[order[j]] })
	return order
}

func TestMergeRunOrderMatchesStableSort(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(200)
		les := make([]temporal.Time, n)
		// Small LE domain forces plenty of ties, which is where stability
		// bugs would show.
		for i := range les {
			les[i] = temporal.Time(r.Intn(20))
		}
		// Random partition into runs; sort most of them (the shuffle
		// normally delivers sorted runs) but leave some unsorted to
		// exercise the fallback path.
		var runs []runRange
		fallbacks := 0
		for start := 0; start < n; {
			end := start + 1 + r.Intn(40)
			if end > n {
				end = n
			}
			if r.Intn(4) > 0 {
				seg := les[start:end]
				sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
			}
			runs = append(runs, runRange{start, end})
			start = end
		}
		got := mergeRunOrder(les, runs, func() { fallbacks++ })
		want := stableOrder(les)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merge order != stable sort\nles: %v\nruns: %v\ngot:  %v\nwant: %v",
				trial, les, runs, got, want)
		}
	}
}

func TestMergeRunOrderSingleRunFastPath(t *testing.T) {
	les := []temporal.Time{1, 2, 2, 3, 7}
	got := mergeRunOrder(les, []runRange{{0, 5}}, func() { t.Error("sorted run must not fall back") })
	if !reflect.DeepEqual(got, []int32{0, 1, 2, 3, 4}) {
		t.Fatalf("single sorted run order = %v", got)
	}
}

func TestMergeRunOrderUnsortedRunFallsBack(t *testing.T) {
	les := []temporal.Time{5, 1, 3}
	fallbacks := 0
	got := mergeRunOrder(les, []runRange{{0, 3}}, func() { fallbacks++ })
	if !reflect.DeepEqual(got, []int32{1, 2, 0}) {
		t.Fatalf("order = %v", got)
	}
	if fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", fallbacks)
	}
}

func TestMergeRunOrderEmpty(t *testing.T) {
	if got := mergeRunOrder(nil, nil, nil); len(got) != 0 {
		t.Fatalf("empty merge = %v", got)
	}
}

// benchRuns builds n LEs arranged as k individually-sorted runs — the
// shape the shuffle delivers to a reducer.
func benchRuns(n, k int) ([]temporal.Time, []runRange) {
	r := rand.New(rand.NewSource(41))
	les := make([]temporal.Time, 0, n)
	var runs []runRange
	per := n / k
	for i := 0; i < k; i++ {
		start := len(les)
		t := temporal.Time(r.Intn(1000))
		for j := 0; j < per; j++ {
			t += temporal.Time(r.Intn(5))
			les = append(les, t)
		}
		runs = append(runs, runRange{start, len(les)})
	}
	return les, runs
}

func BenchmarkMergeRuns_1M(b *testing.B) {
	les, runs := benchRuns(1<<20, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mergeRunOrder(les, runs, nil)
	}
	b.ReportMetric(float64(len(les))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkMergeStableSortReference_1M(b *testing.B) {
	les, _ := benchRuns(1<<20, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stableOrder(les)
	}
	b.ReportMetric(float64(len(les))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func TestSpansForIntervalCoversLifetime(t *testing.T) {
	s := &SpanSpec{Origin: 0, Width: 100, Overlap: 50, N: 20}
	// A point event routes exactly as SpansFor always did.
	if got, want := s.SpansForInterval(120, 121), s.SpansFor(120); !reflect.DeepEqual(got, want) {
		t.Fatalf("point interval = %v, SpansFor = %v", got, want)
	}
	// A wide event reaches every span intersecting [LE, RE+overlap).
	got := s.SpansForInterval(120, 450) // [120, 500) with overlap
	want := []int{1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("wide interval spans = %v, want %v", got, want)
	}
	// Degenerate lifetimes (RE <= LE) route like points.
	if got, want := s.SpansForInterval(120, 100), s.SpansFor(120); !reflect.DeepEqual(got, want) {
		t.Fatalf("degenerate interval = %v, want %v", got, want)
	}
	// Clamping at both ends.
	if got := s.SpansForInterval(-500, -400); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("below-origin spans = %v", got)
	}
	if got := s.SpansForInterval(5000, 5100); !reflect.DeepEqual(got, []int{19}) {
		t.Fatalf("beyond-range spans = %v", got)
	}
}
