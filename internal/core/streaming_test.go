package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"timr/internal/mapreduce"
	"timr/internal/obs"
	"timr/internal/temporal"
)

// runStreaming drives a StreamingJob with interleaved source events and a
// punctuation wave every `period` ticks.
func runStreaming(t *testing.T, plan *temporal.Plan, sources map[string]*temporal.Schema,
	feeds map[string][]temporal.Event, machines int, period temporal.Time) []temporal.Event {
	t.Helper()
	job, err := NewStreamingJob(plan, sources, WithMachines(machines))
	if err != nil {
		t.Fatal(err)
	}
	feeders := make(map[string]*Feeder, len(feeds))
	for src := range feeds {
		f, err := job.Source(src)
		if err != nil {
			t.Fatal(err)
		}
		feeders[src] = f
	}
	var all []temporal.SourceEvent
	for src, evs := range feeds {
		for _, e := range evs {
			all = append(all, temporal.SourceEvent{Source: src, Event: e})
		}
	}
	// Global LE order with deterministic tie-break by source name.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			a, b := all[j-1], all[j]
			if b.Event.LE < a.Event.LE || (b.Event.LE == a.Event.LE && b.Source < a.Source) {
				all[j-1], all[j] = b, a
			} else {
				break
			}
		}
	}
	last := temporal.Time(temporal.MinTime)
	for _, se := range all {
		if last != temporal.MinTime && se.Event.LE-last >= period {
			if err := job.Advance(se.Event.LE); err != nil {
				t.Fatal(err)
			}
			last = se.Event.LE
		} else if last == temporal.MinTime {
			last = se.Event.LE
		}
		if err := feeders[se.Source].Feed(se.Event); err != nil {
			t.Fatal(err)
		}
	}
	job.Flush()
	res, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStreamingMatchesSingleNodeGrouped(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rows := clickRows(r, 1500, 40, 6)
	plan := temporal.Scan("clicks", clickSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(60).Count("C")
		})
	events := temporal.RowsToPointEvents(rows, 0)
	got := runStreaming(t, plan,
		map[string]*temporal.Schema{"clicks": clickSchema()},
		map[string][]temporal.Event{"clicks": events}, 4, 25)
	want := singleNode(t, runningClickCount(60), "clicks", rows, 0)
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("streaming %d events != batch %d events", len(got), len(want))
	}
}

func TestStreamingRoutesWideIntervals(t *testing.T) {
	// Regression for LE-only span routing in streamStage.route: interval
	// events from a source must fan out to every span their lifetime
	// reaches (by RE, not just LE), or temporal partitions beyond the
	// event's first span undercount. Mirrors the batch test
	// TestChainedTemporalJobsRouteWideIntervals.
	r := rand.New(rand.NewSource(29))
	rows := clickRows(r, 1200, 20, 5)
	events := temporal.RowsToPointEvents(rows, 0)
	for i := range events {
		events[i].RE = events[i].LE + 250
	}
	plan := temporal.Scan("evs", clickSchema()).
		Exchange(temporal.PartitionBy{Temporal: true, SpanWidth: 100}).
		Count("C")
	got := runStreaming(t, plan,
		map[string]*temporal.Schema{"evs": clickSchema()},
		map[string][]temporal.Event{"evs": events}, 4, 50)
	want, err := temporal.RunPlan(
		temporal.Scan("evs", clickSchema()).Count("C"),
		map[string][]temporal.Event{"evs": events})
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("streaming interval routing diverges: %d vs %d events", len(got), len(want))
	}
}

func TestStreamingTwoStagePipeline(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	rows := clickRows(r, 800, 15, 4)
	mk := func(annotate bool) *temporal.Plan {
		src := temporal.Scan("clicks", clickSchema())
		s := src
		if annotate {
			s = src.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
		}
		perUser := s.GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(30).Count("C")
		}).ToPoint()
		if annotate {
			perUser = perUser.Exchange(temporal.PartitionBy{Cols: []string{"C"}})
		}
		return perUser.GroupApply([]string{"C"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(50).Count("N")
		})
	}
	events := temporal.RowsToPointEvents(rows, 0)
	got := runStreaming(t, mk(true),
		map[string]*temporal.Schema{"clicks": clickSchema()},
		map[string][]temporal.Event{"clicks": events}, 3, 20)
	want := singleNode(t, mk(false), "clicks", rows, 0)
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("streaming two-stage diverges: %d vs %d events", len(got), len(want))
	}
}

func TestStreamingMultiSourceJoin(t *testing.T) {
	imp := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
	kw := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "Keyword", Kind: temporal.KindInt},
	)
	mk := func(annotate bool) *temporal.Plan {
		l := temporal.Scan("imp", imp)
		rr := temporal.Scan("kw", kw)
		var lp, rp *temporal.Plan = l, rr
		if annotate {
			lp = l.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
			rp = rr.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
		}
		return lp.Join(rp.WithWindow(25), []string{"UserId"}, []string{"UserId"}, nil)
	}
	r := rand.New(rand.NewSource(31))
	impRows := clickRows(r, 400, 12, 4)
	kwRows := clickRows(r, 400, 12, 5)
	got := runStreaming(t, mk(true),
		map[string]*temporal.Schema{"imp": imp, "kw": kw},
		map[string][]temporal.Event{
			"imp": temporal.RowsToPointEvents(impRows, 0),
			"kw":  temporal.RowsToPointEvents(kwRows, 0),
		}, 4, 15)
	want, err := temporal.RunPlan(mk(false), map[string][]temporal.Event{
		"imp": temporal.RowsToPointEvents(impRows, 0),
		"kw":  temporal.RowsToPointEvents(kwRows, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("streaming join diverges: %d vs %d events", len(got), len(want))
	}
}

func TestStreamingTemporalPartitioning(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	rows := clickRows(r, 2000, 30, 5)
	mk := func(annotate bool) *temporal.Plan {
		src := temporal.Scan("clicks", clickSchema())
		s := src
		if annotate {
			s = src.Exchange(temporal.PartitionBy{Temporal: true, SpanWidth: 400})
		}
		return s.WithWindow(90).Count("C")
	}
	events := temporal.RowsToPointEvents(rows, 0)
	got := runStreaming(t, mk(true),
		map[string]*temporal.Schema{"clicks": clickSchema()},
		map[string][]temporal.Event{"clicks": events}, 4, 50)
	want := singleNode(t, mk(false), "clicks", rows, 0)
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("streaming temporal partitioning diverges: %d vs %d events", len(got), len(want))
	}
}

func TestStreamingPunctuationRateInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	rows := clickRows(r, 600, 10, 3)
	plan := func() *temporal.Plan {
		return temporal.Scan("clicks", clickSchema()).
			Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
			GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
				return g.WithWindow(40).Count("C")
			})
	}
	events := temporal.RowsToPointEvents(rows, 0)
	var ref []temporal.Event
	for _, period := range []temporal.Time{5, 33, 1000} {
		got := runStreaming(t, plan(),
			map[string]*temporal.Schema{"clicks": clickSchema()},
			map[string][]temporal.Event{"clicks": events}, 4, period)
		if ref == nil {
			ref = got
		} else if !temporal.EventsEqual(got, ref) {
			t.Fatalf("punctuation period %d changed results", period)
		}
	}
}

func TestStreamingIncrementalDelivery(t *testing.T) {
	// onEvent must fire before Flush when punctuation allows release.
	plan := temporal.Scan("clicks", clickSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(10).Count("C")
		})
	delivered := 0
	job, err := NewStreamingJob(plan,
		map[string]*temporal.Schema{"clicks": clickSchema()},
		WithMachines(2),
		WithOnEvent(func(temporal.Event) { delivered++ }))
	if err != nil {
		t.Fatal(err)
	}
	clicks, err := job.Source("clicks")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ev := temporal.PointEvent(temporal.Time(i*5), temporal.Row{
			temporal.Int(int64(i * 5)), temporal.Int(int64(i % 3)), temporal.Int(int64(i % 2)),
		})
		if err := clicks.Feed(ev); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := job.Advance(temporal.Time(i * 5)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no incremental delivery before flush")
	}
	if _, err := job.Results(); err == nil {
		t.Fatal("Results before Flush must error")
	}
	job.Flush()
	res, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results after flush")
	}
}

// Regression for span-ownership at far-from-zero time origins. The
// workload lives entirely inside one span whose id is large (time origin
// 5,000,000 with span width 400 → earliest lazy span id 12500), and the
// negative lifetime shift produces output below that span's start. The
// earliest *existing* span must own everything before it — keying the
// MinTime rule on span id 0 (which never materialises here) silently
// drops that output.
func TestStreamingTemporalPartitioningFarOrigin(t *testing.T) {
	const origin = 5_000_000 // divisible by the span width of 400
	var rows []mapreduce.Row
	for i := 0; i < 200; i++ {
		tm := int64(origin + (i*7)%350)
		rows = append(rows, mapreduce.Row{
			temporal.Int(tm), temporal.Int(int64(i % 10)), temporal.Int(int64(i % 3)),
		})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a][0].AsInt() < rows[b][0].AsInt() })

	mk := func(annotate bool) *temporal.Plan {
		s := temporal.Scan("clicks", clickSchema())
		if annotate {
			s = s.Exchange(temporal.PartitionBy{Temporal: true, SpanWidth: 400})
		}
		// Shift reaches 150 ticks below each event; the earliest events sit
		// at the span start, so correct output extends below origin.
		return s.ShiftLifetime(-150).WithWindow(90).Count("C")
	}
	events := temporal.RowsToPointEvents(rows, 0)
	got := runStreaming(t, mk(true),
		map[string]*temporal.Schema{"clicks": clickSchema()},
		map[string][]temporal.Event{"clicks": events}, 4, 50)
	want := singleNode(t, mk(false), "clicks", rows, 0)
	if len(want) == 0 || want[0].LE >= origin {
		t.Fatalf("reference run produced no output below the origin; test is vacuous")
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("far-origin streaming diverges: %d vs %d events", len(got), len(want))
	}
}

func TestStreamingMaxSpanFanoutTruncation(t *testing.T) {
	// An event with a pathological lifetime must be capped at maxSpanFanout
	// spans, increment route_truncated, and still yield correct output in
	// every span that exists — i.e. the batch reference clipped at the cap.
	scope := obs.New("test")
	cfg := DefaultConfig()
	cfg.Obs = scope
	const width = 100
	plan := temporal.Scan("evs", clickSchema()).
		Exchange(temporal.PartitionBy{Temporal: true, SpanWidth: width}).
		Count("C")
	job, err := NewStreamingJob(plan,
		map[string]*temporal.Schema{"evs": clickSchema()},
		WithMachines(4), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	evsSrc, err := job.Source("evs")
	if err != nil {
		t.Fatal(err)
	}
	var events []temporal.Event
	for i := 0; i < 60; i++ {
		ev := temporal.PointEvent(temporal.Time(i*5), temporal.Row{
			temporal.Int(int64(i * 5)), temporal.Int(int64(i % 4)), temporal.Int(int64(i % 3)),
		})
		ev.RE = ev.LE + 40
		events = append(events, ev)
		if i == 2 {
			// The poison pill: a lifetime reaching ~1e9 would fan out to ten
			// million span partitions without the cap.
			events = append(events, temporal.Event{
				LE: ev.LE, RE: 1_000_000_000,
				Payload: temporal.Row{temporal.Int(int64(i * 5)), temporal.Int(99), temporal.Int(99)},
			})
		}
	}
	for i, e := range events {
		if err := evsSrc.Feed(e); err != nil {
			t.Fatal(err)
		}
		if i%15 == 14 {
			if err := job.Advance(e.LE); err != nil {
				t.Fatal(err)
			}
		}
	}
	job.Flush()
	got, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}

	var truncated int64
	for _, p := range scope.Snapshot() {
		if p.Name == "route_truncated" {
			truncated += p.Value
		}
	}
	if truncated == 0 {
		t.Fatal("route_truncated not incremented by the pathological lifetime")
	}

	ref, err := temporal.RunPlan(
		temporal.Scan("evs", clickSchema()).Count("C"),
		map[string][]temporal.Event{"evs": events})
	if err != nil {
		t.Fatal(err)
	}
	// Owned spans end where the fan-out cap cut routing off; beyond that
	// no partition exists, so output is clipped there — but must be exact
	// everywhere below.
	capEnd := temporal.Time(maxSpanFanout) * width
	var want []temporal.Event
	beyond := false
	for _, e := range ref {
		if e.RE > capEnd {
			beyond = true
		}
		if e.LE >= capEnd {
			continue
		}
		if e.RE > capEnd {
			e.RE = capEnd
		}
		want = append(want, e)
	}
	want = temporal.Coalesce(want)
	if !beyond {
		t.Fatal("reference output never crosses the cap; test is vacuous")
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("truncated run not clipped-but-correct: %d vs %d events", len(got), len(want))
	}
}

func TestStreamingUseAfterFlush(t *testing.T) {
	plan := temporal.Scan("clicks", clickSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(10).Count("C")
		})
	job, err := NewStreamingJob(plan, map[string]*temporal.Schema{"clicks": clickSchema()}, WithMachines(2))
	if err != nil {
		t.Fatal(err)
	}
	clicks, err := job.Source("clicks")
	if err != nil {
		t.Fatal(err)
	}
	ev := temporal.PointEvent(1, temporal.Row{temporal.Int(1), temporal.Int(1), temporal.Int(1)})
	if err := clicks.Feed(ev); err != nil {
		t.Fatal(err)
	}
	job.Flush()
	if err := clicks.Feed(ev); !errors.Is(err, ErrFlushed) {
		t.Fatalf("Feed after Flush: err = %v, want ErrFlushed", err)
	}
	if err := clicks.FeedBatch([]temporal.Event{ev}); !errors.Is(err, ErrFlushed) {
		t.Fatalf("FeedBatch after Flush: err = %v, want ErrFlushed", err)
	}
	if err := job.Advance(5); !errors.Is(err, ErrFlushed) {
		t.Fatalf("Advance after Flush: err = %v, want ErrFlushed", err)
	}
	before, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	job.Flush() // idempotent: must not double-drain or panic
	after, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(before, after) {
		t.Fatal("second Flush changed results")
	}
}

func TestStreamingJobValidatesFragmentsUpFront(t *testing.T) {
	// A fragment root that cannot compile (one source scanned with two
	// conflicting schemas) must fail NewStreamingJob, not panic mid-feed
	// when the first lazy partition spins up.
	schA := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "K", Kind: temporal.KindInt},
	)
	schB := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "K", Kind: temporal.KindInt},
		temporal.Field{Name: "X", Kind: temporal.KindInt},
	)
	plan := temporal.Scan("s", schA).
		Join(temporal.Scan("s", schB).WithWindow(5), []string{"K"}, []string{"K"}, nil)
	if _, err := NewStreamingJob(plan, map[string]*temporal.Schema{"s": schA}, WithMachines(2)); err == nil {
		t.Fatal("conflicting scan schemas must fail NewStreamingJob up front")
	}
}

func TestStreamingUnknownSource(t *testing.T) {
	plan := temporal.Scan("clicks", clickSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(10).Count("C")
		})
	job, err := NewStreamingJob(plan, map[string]*temporal.Schema{"clicks": clickSchema()}, WithMachines(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Source("ghost"); err == nil {
		t.Fatal("unknown source must error")
	}
	if _, err := NewStreamingJob(plan, map[string]*temporal.Schema{}, WithMachines(2)); err == nil {
		t.Fatal("missing source binding must error")
	}
}
