package core

// Compatibility coverage for the deprecated streaming surface: the
// positional NewStreamingJobLegacy constructor and the job-level Feed*
// methods must keep working, delegating to the options/Feeder paths.
// This file is the one sanctioned caller of the deprecated names — the
// `make check` deprecations gate excludes it by name.

import (
	"testing"

	"timr/internal/temporal"
)

func TestLegacyStreamingSurfaceDelegates(t *testing.T) {
	plan := func() *temporal.Plan {
		return temporal.Scan("clicks", clickSchema()).
			Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
			GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
				return g.WithWindow(10).Count("C")
			})
	}
	var events []temporal.Event
	for i := 0; i < 200; i++ {
		events = append(events, temporal.PointEvent(temporal.Time(i), temporal.Row{
			temporal.Int(int64(i)), temporal.Int(int64(i % 3)), temporal.Int(int64(i % 2)),
		}))
	}
	schemas := map[string]*temporal.Schema{"clicks": clickSchema()}

	delivered := 0
	legacy, err := NewStreamingJobLegacy(plan(), schemas, 3, DefaultConfig(),
		func(temporal.Event) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Feed("clicks", events[0]); err != nil {
		t.Fatal(err)
	}
	if err := legacy.FeedBatch("clicks", events[1:100]); err != nil {
		t.Fatal(err)
	}
	if err := legacy.FeedColBatch("clicks", temporal.ColBatchFromEvents(events[100:], 3)); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Feed("ghost", events[0]); err == nil {
		t.Fatal("legacy Feed on unknown source must error")
	}
	if err := legacy.Advance(150); err != nil {
		t.Fatal(err)
	}
	legacy.Flush()
	got, err := legacy.Results()
	if err != nil {
		t.Fatal(err)
	}
	if delivered == 0 {
		t.Fatal("legacy onEvent positional arg was dropped")
	}

	job, err := NewStreamingJob(plan(), schemas, WithMachines(3))
	if err != nil {
		t.Fatal(err)
	}
	f, err := job.Source("clicks")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FeedBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := job.Advance(150); err != nil {
		t.Fatal(err)
	}
	job.Flush()
	want, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("legacy surface diverges from Feeder surface: %d vs %d events", len(got), len(want))
	}
}
