package core

import (
	"strings"
	"testing"

	"timr/internal/mapreduce"
	"timr/internal/temporal"
)

func trainSchema() *temporal.Schema {
	return temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "Keyword", Kind: temporal.KindInt},
	)
}

// example3Plan is the shape of paper Example 3 / GenTrainData: O1 is a
// GroupApply keyed {UserId, Keyword} (UBP counting), O2 a TemporalJoin
// keyed {UserId}.
func example3Plan() *temporal.Plan {
	src := temporal.Scan("events", trainSchema())
	ubp := src.GroupApply([]string{"UserId", "Keyword"}, func(g *temporal.Plan) *temporal.Plan {
		return g.WithWindow(6 * temporal.Hour).Count("KwCount")
	})
	clicks := temporal.Scan("clicks", trainSchema())
	return clicks.Join(ubp, []string{"UserId"}, []string{"UserId"}, nil)
}

func example3Stats() *Stats {
	st := DefaultStats()
	st.SourceRows["events"] = 10_000_000
	st.SourceRows["clicks"] = 1_000_000
	st.Distinct["UserId"] = 250_000_000
	st.Distinct["Keyword"] = 50_000_000
	st.Distinct["Keyword,UserId"] = 500_000_000
	return st
}

func exchangeKeys(plan *temporal.Plan) []string {
	var keys []string
	plan.Walk(func(n *temporal.Plan) {
		if n.Kind == temporal.OpExchange {
			keys = append(keys, n.Part.String())
		}
	})
	return keys
}

func TestOptimizerExample3PicksSingleUserIdPartitioning(t *testing.T) {
	// Paper Example 3: partitioning once by {UserId} dominates the naive
	// {UserId,Keyword}-then-{UserId} plan, because a {UserId} partitioning
	// already implies a {UserId,Keyword} partitioning.
	opt := NewOptimizer(example3Stats())
	annotated, cost, err := opt.Optimize(example3Plan())
	if err != nil {
		t.Fatal(err)
	}
	keys := exchangeKeys(annotated)
	if len(keys) != 2 {
		t.Fatalf("want exactly 2 exchanges (one per source), got %v", keys)
	}
	for _, k := range keys {
		if k != "{UserId}" {
			t.Errorf("exchange key %s, want {UserId}", k)
		}
	}
	if cost <= 0 {
		t.Errorf("cost = %v", cost)
	}
}

func TestOptimizerExample3CostOrdering(t *testing.T) {
	// Price the naive annotated plan and verify it costs more than the
	// optimizer's choice — the quantitative claim behind the 2.27x.
	stats := example3Stats()
	opt := NewOptimizer(stats)
	_, bestCost, err := opt.Optimize(example3Plan())
	if err != nil {
		t.Fatal(err)
	}

	// Naive plan: UBP generation partitioned {UserId,Keyword}, then
	// repartition {UserId} for the join.
	src := temporal.Scan("events", trainSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"UserId", "Keyword"}})
	ubp := src.GroupApply([]string{"UserId", "Keyword"}, func(g *temporal.Plan) *temporal.Plan {
		return g.WithWindow(6 * temporal.Hour).Count("KwCount")
	}).Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
	clicks := temporal.Scan("clicks", trainSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
	naive := clicks.Join(ubp, []string{"UserId"}, []string{"UserId"}, nil)

	naiveCost := NewOptimizer(stats).EstimateCost(naive)
	if naiveCost <= bestCost {
		t.Fatalf("naive plan (%.0f) should cost more than optimized (%.0f)", naiveCost, bestCost)
	}
	if ratio := naiveCost / bestCost; ratio < 1.1 {
		t.Errorf("speedup ratio %.2f implausibly small", ratio)
	}
}

func TestOptimizerGroupApplySimple(t *testing.T) {
	plan := temporal.Scan("clicks", clickSchema()).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(100).Count("C")
		})
	opt := NewOptimizer(nil)
	annotated, _, err := opt.Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	keys := exchangeKeys(annotated)
	if len(keys) != 1 || keys[0] != "{AdId}" {
		t.Fatalf("keys = %v, want single {AdId}", keys)
	}
	// The annotated plan must survive fragmentation.
	frags, err := MakeFragments(annotated, map[string]string{"clicks": "ds"}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[0].Part.String() != "{AdId}" {
		t.Fatalf("frags = %v", frags)
	}
}

func TestOptimizerUnkeyedWindowedQueryUsesTime(t *testing.T) {
	// A global sliding-window aggregate has no payload key; the optimizer
	// must fall back to temporal partitioning rather than a single task
	// when the cluster is large (paper §III-B, Figure 16).
	plan := temporal.Scan("clicks", clickSchema()).
		WithWindow(30 * temporal.Minute).
		Count("C")
	st := DefaultStats()
	st.SourceRows["clicks"] = 100_000_000
	st.TimeSpans = 256
	opt := NewOptimizer(st)
	annotated, _, err := opt.Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	keys := exchangeKeys(annotated)
	if len(keys) != 1 || !strings.HasPrefix(keys[0], "time") {
		t.Fatalf("keys = %v, want temporal partitioning", keys)
	}
}

func TestOptimizerStatelessPlanNeedsNoExchange(t *testing.T) {
	plan := temporal.Scan("clicks", clickSchema()).Where(temporal.ColGtInt("AdId", 3))
	opt := NewOptimizer(nil)
	annotated, cost, err := opt.Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(exchangeKeys(annotated)); n != 0 {
		t.Fatalf("stateless plan got %d exchanges", n)
	}
	if cost <= 0 {
		t.Error("cost must still account for operator work")
	}
}

func TestOptimizerRejectsPreAnnotatedPlan(t *testing.T) {
	plan := temporal.Scan("clicks", clickSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		Where(temporal.ColGtInt("AdId", 0))
	if _, _, err := NewOptimizer(nil).Optimize(plan); err == nil {
		t.Fatal("pre-annotated plans must be rejected")
	}
}

func TestOptimizedPlanExecutesCorrectly(t *testing.T) {
	// End-to-end: optimize, fragment, run on TiMR, compare to single node.
	plan := example3Plan()
	stats := example3Stats()
	annotated, _, err := NewOptimizer(stats).Optimize(plan)
	if err != nil {
		t.Fatal(err)
	}

	// Small synthetic data for both sources.
	var events, clicks []temporal.Row
	for i := 0; i < 300; i++ {
		events = append(events, temporal.Row{
			temporal.Int(int64(i * 10)), temporal.Int(int64(i % 7)), temporal.Int(int64(i % 5)),
		})
		if i%3 == 0 {
			clicks = append(clicks, temporal.Row{
				temporal.Int(int64(i*10 + 5)), temporal.Int(int64(i % 7)), temporal.Int(int64(i % 4)),
			})
		}
	}
	tm := newTestTiMR(4)
	tm.Cluster.FS.Write("ds.events", mapreduce.SinglePartition(trainSchema(), events))
	tm.Cluster.FS.Write("ds.clicks", mapreduce.SinglePartition(trainSchema(), clicks))
	if _, err := tm.Run(annotated, map[string]string{"events": "ds.events", "clicks": "ds.clicks"}, "out"); err != nil {
		t.Fatal(err)
	}
	got, err := tm.ResultEvents("out")
	if err != nil {
		t.Fatal(err)
	}
	want, err := temporal.RunPlan(example3Plan(), map[string][]temporal.Event{
		"events": temporal.RowsToPointEvents(events, 0),
		"clicks": temporal.RowsToPointEvents(clicks, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("optimized plan diverges: %d vs %d events", len(got), len(want))
	}
}

func TestPartitionByString(t *testing.T) {
	p := temporal.PartitionBy{Cols: []string{"A", "B"}}
	if p.String() != "{A,B}" {
		t.Errorf("String = %s", p.String())
	}
	tp := temporal.PartitionBy{Temporal: true, SpanWidth: 10}
	if !strings.HasPrefix(tp.String(), "time") {
		t.Errorf("String = %s", tp.String())
	}
}
