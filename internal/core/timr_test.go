package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"timr/internal/mapreduce"
	"timr/internal/temporal"
)

// clickSchema is the paper's click-log shape (Figure 1b) with AdId as int.
func clickSchema() *temporal.Schema {
	return temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
}

func clickRows(r *rand.Rand, n, users, ads int) []mapreduce.Row {
	rows := make([]mapreduce.Row, n)
	t := int64(0)
	for i := range rows {
		t += int64(r.Intn(10))
		rows[i] = mapreduce.Row{
			temporal.Int(t),
			temporal.Int(int64(r.Intn(users))),
			temporal.Int(int64(r.Intn(ads))),
		}
	}
	return rows
}

// runningClickCount is Example 1: per-ad click count over a sliding window.
func runningClickCount(window temporal.Time) *temporal.Plan {
	return temporal.Scan("clicks", clickSchema()).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(window).Count("ClickCount")
		})
}

func newTestTiMR(machines int) *TiMR {
	cl := mapreduce.NewCluster(mapreduce.Config{Machines: machines})
	return New(cl, DefaultConfig())
}

// singleNode runs the same plan on one embedded engine — the reference.
func singleNode(t *testing.T, plan *temporal.Plan, source string, rows []mapreduce.Row, timeCol int) []temporal.Event {
	t.Helper()
	events := temporal.RowsToPointEvents(rows, timeCol)
	out, err := temporal.RunPlan(plan, map[string][]temporal.Event{source: events})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMakeFragmentsSingle(t *testing.T) {
	// RunningClickCount with one exchange on AdId → one fragment keyed AdId.
	plan := runningClickCount(6 * temporal.Hour)
	annotated := plan // exchange at scan boundary comes from rewriting below
	scan := temporal.Scan("clicks", clickSchema())
	annotated = scan.Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(6 * temporal.Hour).Count("ClickCount")
		})
	frags, err := MakeFragments(annotated, map[string]string{"clicks": "ds.clicks"}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 {
		t.Fatalf("fragments = %d", len(frags))
	}
	f := frags[0]
	if f.Part.String() != "{AdId}" || !f.Final || f.Output != "out" {
		t.Errorf("fragment = %s final=%v", f.String(), f.Final)
	}
	if len(f.Inputs) != 1 || f.Inputs[0].Dataset != "ds.clicks" || f.Inputs[0].Intermediate {
		t.Errorf("inputs = %+v", f.Inputs)
	}
}

func TestMakeFragmentsTwoStage(t *testing.T) {
	// GroupApply(AdId) over an exchange over GroupApply(UserId) over an
	// exchange: two fragments, executed bottom-up.
	plan := temporal.Scan("clicks", clickSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"UserId"}}).
		GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(10).Count("C1")
		}).
		ToPoint().
		Exchange(temporal.PartitionBy{Cols: []string{"UserId"}}).
		GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(100).Max("C1", "M")
		})
	frags, err := MakeFragments(plan, map[string]string{"clicks": "ds.clicks"}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 2 {
		t.Fatalf("fragments = %d", len(frags))
	}
	if frags[0].Final || !frags[1].Final {
		t.Error("execution order must be bottom-up")
	}
	if !frags[1].Inputs[0].Intermediate {
		t.Error("second fragment must read intermediate data")
	}
	if frags[0].Output != frags[1].Inputs[0].Dataset {
		t.Error("fragment wiring broken")
	}
}

func TestMakeFragmentsMissingSource(t *testing.T) {
	plan := runningClickCount(10)
	if _, err := MakeFragments(plan, map[string]string{}, "out"); err == nil {
		t.Fatal("unbound source must error")
	}
}

func TestTiMRMatchesSingleNode(t *testing.T) {
	// The central claim (§III-C.1): the temporal algebra guarantees that
	// TiMR's distributed execution produces exactly the single-node result.
	r := rand.New(rand.NewSource(42))
	rows := clickRows(r, 2000, 50, 10)
	plan := temporal.Scan("clicks", clickSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(50).Count("ClickCount")
		})

	tm := newTestTiMR(8)
	tm.Cluster.FS.Write("ds.clicks", mapreduce.SinglePartition(clickSchema(), rows))
	if _, err := tm.Run(plan, map[string]string{"clicks": "ds.clicks"}, "out"); err != nil {
		t.Fatal(err)
	}
	got, err := tm.ResultEvents("out")
	if err != nil {
		t.Fatal(err)
	}
	want := singleNode(t, runningClickCount(50), "clicks", rows, 0)
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("TiMR %d events != single-node %d events", len(got), len(want))
	}
}

func TestTiMRTwoStagePipeline(t *testing.T) {
	// A two-fragment job: per-user windowed count, then per-count
	// global aggregation, checked against single-node execution.
	r := rand.New(rand.NewSource(7))
	rows := clickRows(r, 1000, 20, 5)

	build := func(annotate bool) *temporal.Plan {
		src := temporal.Scan("clicks", clickSchema())
		var s *temporal.Plan = src
		if annotate {
			s = src.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
		}
		perUser := s.GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(30).Count("C")
		}).ToPoint()
		if annotate {
			perUser = perUser.Exchange(temporal.PartitionBy{Cols: []string{"C"}})
		}
		return perUser.GroupApply([]string{"C"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(60).Count("N")
		})
	}

	tm := newTestTiMR(4)
	tm.Cluster.FS.Write("ds.clicks", mapreduce.SinglePartition(clickSchema(), rows))
	if _, err := tm.Run(build(true), map[string]string{"clicks": "ds.clicks"}, "out"); err != nil {
		t.Fatal(err)
	}
	got, err := tm.ResultEvents("out")
	if err != nil {
		t.Fatal(err)
	}
	want := singleNode(t, build(false), "clicks", rows, 0)
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("two-stage TiMR diverges from single node: %d vs %d events", len(got), len(want))
	}
}

func TestTiMRTemporalPartitioning(t *testing.T) {
	// A global windowed count has no payload key; temporal partitioning
	// (§III-B) must still reproduce the single-node result exactly.
	r := rand.New(rand.NewSource(13))
	rows := clickRows(r, 3000, 50, 10)

	mk := func(annotate bool) *temporal.Plan {
		src := temporal.Scan("clicks", clickSchema())
		s := src
		if annotate {
			s = src.Exchange(temporal.PartitionBy{Temporal: true, SpanWidth: 500})
		}
		return s.WithWindow(100).Count("C")
	}

	tm := newTestTiMR(8)
	tm.Cluster.FS.Write("ds.clicks", mapreduce.SinglePartition(clickSchema(), rows))
	stat, err := tm.Run(mk(true), map[string]string{"clicks": "ds.clicks"}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Stages[0].Partitions < 2 {
		t.Fatalf("expected multiple spans, got %d", stat.Stages[0].Partitions)
	}
	got, err := tm.ResultEvents("out")
	if err != nil {
		t.Fatal(err)
	}
	want := singleNode(t, mk(false), "clicks", rows, 0)
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("temporal partitioning diverges: %d vs %d events", len(got), len(want))
	}
}

func TestChainedTemporalJobsRouteWideIntervals(t *testing.T) {
	// Regression for LE-only span routing: job 1 emits 300-wide interval
	// events; job 2 counts them under temporal partitioning with 100-wide
	// spans and no window of its own (overlap 0). An event's lifetime
	// crosses several spans, and every one of them owns snapshots the
	// event contributes to — routing by LE alone starves the later spans
	// and silently undercounts.
	r := rand.New(rand.NewSource(17))
	rows := clickRows(r, 1500, 20, 5)

	tm := newTestTiMR(8)
	tm.Cluster.FS.Write("ds.clicks", mapreduce.SinglePartition(clickSchema(), rows))
	widen := temporal.Scan("clicks", clickSchema()).WithWindow(300)
	if _, err := tm.Run(widen, map[string]string{"clicks": "ds.clicks"}, "mid"); err != nil {
		t.Fatal(err)
	}
	count := temporal.Scan("mid", clickSchema()).
		Exchange(temporal.PartitionBy{Temporal: true, SpanWidth: 100}).
		Count("C")
	stat, err := tm.Run(count, map[string]string{"mid": "mid"}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Stages[0].Partitions < 2 {
		t.Fatalf("expected multiple spans, got %d", stat.Stages[0].Partitions)
	}
	got, err := tm.ResultEvents("out")
	if err != nil {
		t.Fatal(err)
	}
	want := singleNode(t,
		temporal.Scan("clicks", clickSchema()).WithWindow(300).Count("C"),
		"clicks", rows, 0)
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("chained temporal jobs diverge: %d vs %d events", len(got), len(want))
	}
}

func TestTiMRNonPartitionableFallsBackToSingleTask(t *testing.T) {
	rows := clickRows(rand.New(rand.NewSource(3)), 100, 5, 3)
	plan := temporal.Scan("clicks", clickSchema()).WithWindow(10).Count("C")
	tm := newTestTiMR(8)
	tm.Cluster.FS.Write("ds.clicks", mapreduce.SinglePartition(clickSchema(), rows))
	stat, err := tm.Run(plan, map[string]string{"clicks": "ds.clicks"}, "out")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Stages[0].Partitions != 1 {
		t.Fatalf("unkeyed fragment must run as one task, got %d", stat.Stages[0].Partitions)
	}
	got, _ := tm.ResultEvents("out")
	want := singleNode(t, plan, "clicks", rows, 0)
	if !temporal.EventsEqual(got, want) {
		t.Fatal("single-task fallback diverges")
	}
}

func TestTiMRRepeatableUnderFailures(t *testing.T) {
	// §III-C.1: "TiMR works well with M-R's failure handling strategy of
	// restarting failed reducers — the newly generated output is
	// guaranteed to be identical."
	r := rand.New(rand.NewSource(99))
	rows := clickRows(r, 1500, 30, 8)
	plan := func() *temporal.Plan {
		return temporal.Scan("clicks", clickSchema()).
			Exchange(temporal.PartitionBy{Cols: []string{"UserId"}}).
			GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
				return g.WithWindow(40).Count("C")
			})
	}

	var ref []temporal.Event
	for seed := int64(0); seed < 4; seed++ {
		cl := mapreduce.NewCluster(mapreduce.Config{
			Machines: 6, FailureRate: 0.4, MaxAttempts: 50, Seed: seed,
		})
		tm := New(cl, DefaultConfig())
		tm.Cluster.FS.Write("ds.clicks", mapreduce.SinglePartition(clickSchema(), rows))
		stat, err := tm.Run(plan(), map[string]string{"clicks": "ds.clicks"}, "out")
		if err != nil {
			t.Fatal(err)
		}
		if seed > 0 {
			failures := 0
			for _, s := range stat.Stages {
				failures += s.Failures
			}
			if failures == 0 {
				t.Log("note: no failures injected for seed", seed)
			}
		}
		got, err := tm.ResultEvents("out")
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
		} else if !temporal.EventsEqual(ref, got) {
			t.Fatalf("seed %d: output diverged under failure injection", seed)
		}
	}
}

func TestIntermediateSchemaRoundTrip(t *testing.T) {
	payload := temporal.NewSchema(temporal.Field{Name: "X", Kind: temporal.KindInt})
	s := IntermediateSchema(payload)
	if s.Field(0).Name != ColLE || s.Field(1).Name != ColRE || s.Field(2).Name != "X" {
		t.Fatalf("schema = %s", s)
	}
	evs := []temporal.Event{{LE: 3, RE: 9, Payload: temporal.Row{temporal.Int(5)}}}
	rows := EventsToRows(evs)
	back := RowsToEvents(rows)
	if !temporal.EventsEqual(evs, back) {
		t.Fatal("round trip failed")
	}
}

func TestPropertyTiMREquivalence(t *testing.T) {
	// For random data, machine counts and window widths, TiMR == engine.
	err := quick.Check(func(seed int64, machRaw, winRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		machines := int(machRaw%7) + 1
		w := temporal.Time(winRaw%40) + 1
		rows := clickRows(r, 400, 10, 4)

		annotated := temporal.Scan("clicks", clickSchema()).
			Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
			GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
				return g.WithWindow(w).Count("C")
			})
		tm := newTestTiMR(machines)
		tm.Cluster.FS.Write("ds", mapreduce.SinglePartition(clickSchema(), rows))
		if _, err := tm.Run(annotated, map[string]string{"clicks": "ds"}, "out"); err != nil {
			return false
		}
		got, err := tm.ResultEvents("out")
		if err != nil {
			return false
		}
		events := temporal.RowsToPointEvents(rows, 0)
		want, err := temporal.RunPlan(runningClickCount(w), map[string][]temporal.Event{"clicks": events})
		if err != nil {
			return false
		}
		return temporal.EventsEqual(got, want)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyTemporalPartitioningSpanWidthInvariance(t *testing.T) {
	// Any span width must give identical results (only performance varies).
	r := rand.New(rand.NewSource(5))
	rows := clickRows(r, 1000, 10, 4)
	ref := singleNode(t,
		temporal.Scan("clicks", clickSchema()).WithWindow(77).Count("C"),
		"clicks", rows, 0)
	for _, width := range []temporal.Time{50, 123, 500, 5000} {
		plan := temporal.Scan("clicks", clickSchema()).
			Exchange(temporal.PartitionBy{Temporal: true, SpanWidth: width}).
			WithWindow(77).Count("C")
		tm := newTestTiMR(8)
		tm.Cluster.FS.Write("ds", mapreduce.SinglePartition(clickSchema(), rows))
		if _, err := tm.Run(plan, map[string]string{"clicks": "ds"}, "out"); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		got, err := tm.ResultEvents("out")
		if err != nil {
			t.Fatal(err)
		}
		if !temporal.EventsEqual(got, ref) {
			t.Fatalf("width %d diverges from single-node (%d vs %d events)", width, len(got), len(ref))
		}
	}
}

func TestFragmentString(t *testing.T) {
	f := Fragment{Name: "frag0", Part: temporal.PartitionBy{Cols: []string{"AdId"}}, Output: "out"}
	if s := f.String(); s == "" || s[:5] != "frag0" {
		t.Errorf("String = %q", s)
	}
}

func TestStageUnknownDatasetFails(t *testing.T) {
	plan := temporal.Scan("clicks", clickSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(10).Count("C")
		})
	tm := newTestTiMR(2)
	// dataset "missing" never written
	if _, err := tm.Run(plan, map[string]string{"clicks": "missing"}, "out"); err == nil {
		t.Fatal("missing dataset must fail the job")
	}
}

func TestTiMRMultiSourceJoin(t *testing.T) {
	// Impressions joined with per-user keyword window — two raw sources
	// entering one fragment under compatible keys.
	imp := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
	kw := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "Keyword", Kind: temporal.KindInt},
	)
	mk := func(annotate bool) *temporal.Plan {
		l := temporal.Scan("imp", imp)
		rr := temporal.Scan("kw", kw)
		var lp, rp *temporal.Plan = l, rr
		if annotate {
			lp = l.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
			rp = rr.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
		}
		return lp.Join(rp.WithWindow(20), []string{"UserId"}, []string{"UserId"}, nil)
	}
	r := rand.New(rand.NewSource(21))
	impRows := clickRows(r, 300, 10, 4)
	kwRows := clickRows(r, 300, 10, 6)

	tm := newTestTiMR(4)
	tm.Cluster.FS.Write("ds.imp", mapreduce.SinglePartition(imp, impRows))
	tm.Cluster.FS.Write("ds.kw", mapreduce.SinglePartition(kw, kwRows))
	if _, err := tm.Run(mk(true), map[string]string{"imp": "ds.imp", "kw": "ds.kw"}, "out"); err != nil {
		t.Fatal(err)
	}
	got, err := tm.ResultEvents("out")
	if err != nil {
		t.Fatal(err)
	}
	want, err := temporal.RunPlan(mk(false), map[string][]temporal.Event{
		"imp": temporal.RowsToPointEvents(impRows, 0),
		"kw":  temporal.RowsToPointEvents(kwRows, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.EventsEqual(got, want) {
		t.Fatalf("multi-source join diverges: %d vs %d events", len(got), len(want))
	}
}

func BenchmarkTiMRRunningClickCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rows := clickRows(r, 20000, 100, 10)
	plan := temporal.Scan("clicks", clickSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(100).Count("C")
		})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := newTestTiMR(8)
		tm.Cluster.FS.Write("ds", mapreduce.SinglePartition(clickSchema(), rows))
		if _, err := tm.Run(plan, map[string]string{"clicks": "ds"}, fmt.Sprintf("out%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}
