package core

import (
	"fmt"
	"sort"
	"strings"

	"timr/internal/temporal"
)

// Stats feeds the optimizer's cost model (paper §VI "Cost Estimation"):
// exchange cost covers writing, repartitioning over the network and
// re-reading rows; operator cost shrinks with the parallelism its
// partitioning key admits.
type Stats struct {
	// SourceRows estimates the row count of each scan source.
	SourceRows map[string]int64
	// Distinct estimates the number of distinct values of a column set;
	// nil entries fall back to DefaultDistinct.
	Distinct map[string]int64
	// DefaultDistinct is used for unknown column sets (default 1024).
	DefaultDistinct int64
	// TimeSpans estimates the parallelism of temporal partitioning
	// (default: Machines).
	TimeSpans int64
	// Machines is the cluster size (default 150).
	Machines int64
	// ExchangePerRow and CPUPerRow weight shuffle vs compute (defaults
	// 3.0 and 1.0 — an exchange is a disk write + transfer + read).
	ExchangePerRow float64
	CPUPerRow      float64
}

// DefaultStats returns a usable baseline cost model.
func DefaultStats() *Stats {
	return &Stats{
		SourceRows:      map[string]int64{},
		Distinct:        map[string]int64{},
		DefaultDistinct: 1024,
		Machines:        150,
		ExchangePerRow:  3.0,
		CPUPerRow:       1.0,
	}
}

func (s *Stats) distinct(cols []string) int64 {
	key := strings.Join(cols, ",")
	if v, ok := s.Distinct[key]; ok {
		return v
	}
	// A superset of columns has at least the max of its parts.
	var best int64
	for _, c := range cols {
		if v, ok := s.Distinct[c]; ok && v > best {
			best = v
		}
	}
	if best > 0 {
		return best
	}
	if s.DefaultDistinct > 0 {
		return s.DefaultDistinct
	}
	return 1024
}

func (s *Stats) parallelism(k pkey) float64 {
	switch {
	case k.time:
		n := s.TimeSpans
		if n <= 0 {
			n = s.Machines
		}
		if n > s.Machines {
			n = s.Machines
		}
		if n < 1 {
			n = 1
		}
		return float64(n)
	case len(k.cols) == 0:
		return 1
	default:
		d := s.distinct(k.cols)
		if d > s.Machines {
			d = s.Machines
		}
		if d < 1 {
			d = 1
		}
		return float64(d)
	}
}

// pkey is a partitioning property during optimization: a column set, time
// partitioning, the empty key (single partition), or "any".
type pkey struct {
	cols []string // sorted
	time bool
	any  bool
}

var (
	anyKey  = pkey{any: true}
	noneKey = pkey{}
	timeKey = pkey{time: true}
)

func colsKey(cols []string) pkey {
	c := append([]string(nil), cols...)
	sort.Strings(c)
	return pkey{cols: c}
}

func (k pkey) String() string {
	switch {
	case k.any:
		return "any"
	case k.time:
		return "time"
	case len(k.cols) == 0:
		return "none"
	default:
		return "{" + strings.Join(k.cols, ",") + "}"
	}
}

func (k pkey) isSpecificCols() bool { return !k.any && !k.time && len(k.cols) > 0 }

// subsetOf reports whether k's columns are a subset of set.
func (k pkey) subsetOf(set []string) bool {
	for _, c := range k.cols {
		found := false
		for _, s := range set {
			if s == c {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (k pkey) equal(o pkey) bool {
	if k.any != o.any || k.time != o.time || len(k.cols) != len(o.cols) {
		return false
	}
	for i := range k.cols {
		if k.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

func (k pkey) toPartitionBy() temporal.PartitionBy {
	if k.time {
		return temporal.PartitionBy{Temporal: true}
	}
	return temporal.PartitionBy{Cols: append([]string(nil), k.cols...)}
}

// Optimizer annotates CQ plans with exchange operators using a top-down,
// memoized search in the style of Cascades (paper Algorithm 1): each node
// is optimized under a required partitioning property; candidate
// transformations either run the node under a compatible key (recursively
// requiring it from children) or insert an exchange.
type Optimizer struct {
	Stats *Stats
	memo  map[memoKey]*optResult
	cards map[*temporal.Plan]float64
}

type memoKey struct {
	node *temporal.Plan
	req  string
}

type optResult struct {
	plan      *temporal.Plan
	cost      float64
	delivered pkey
	err       error
}

// NewOptimizer builds an optimizer over the given statistics.
func NewOptimizer(stats *Stats) *Optimizer {
	if stats == nil {
		stats = DefaultStats()
	}
	return &Optimizer{Stats: stats, memo: make(map[memoKey]*optResult), cards: make(map[*temporal.Plan]float64)}
}

// Optimize returns the cheapest annotated plan, its estimated cost and the
// delivered partitioning.
func (o *Optimizer) Optimize(plan *temporal.Plan) (*temporal.Plan, float64, error) {
	res := o.opt(plan, anyKey)
	if res.err != nil {
		return nil, 0, res.err
	}
	return res.plan, res.cost, nil
}

// EstimateCost prices an already-annotated plan under the same cost model
// (used by tests and the Example-3 experiment to compare plans).
func (o *Optimizer) EstimateCost(plan *temporal.Plan) float64 {
	return o.costAnnotated(plan, make(map[*temporal.Plan]bool))
}

func (o *Optimizer) costAnnotated(n *temporal.Plan, seen map[*temporal.Plan]bool) float64 {
	if seen[n] {
		return 0
	}
	seen[n] = true
	var c float64
	for _, in := range n.Inputs {
		c += o.costAnnotated(in, seen)
	}
	switch n.Kind {
	case temporal.OpScan, temporal.OpGroupInput:
		return c
	case temporal.OpExchange:
		return c + o.Stats.ExchangePerRow*o.card(n.Inputs[0])
	default:
		k := o.annotatedKeyBelow(n)
		return c + o.opCost(n, k)
	}
}

// annotatedKeyBelow finds the partitioning in force at node n in an
// explicitly annotated plan: the nearest exchange at or below n.
func (o *Optimizer) annotatedKeyBelow(n *temporal.Plan) pkey {
	for cur := n; ; {
		if cur.Kind == temporal.OpExchange {
			if cur.Part.Temporal {
				return timeKey
			}
			return colsKey(cur.Part.Cols)
		}
		if len(cur.Inputs) == 0 {
			return noneKey
		}
		cur = cur.Inputs[0]
	}
}

// card estimates output rows of a node with simple selectivity heuristics.
func (o *Optimizer) card(n *temporal.Plan) float64 {
	if v, ok := o.cards[n]; ok {
		return v
	}
	var v float64
	switch n.Kind {
	case temporal.OpScan:
		v = float64(o.Stats.SourceRows[n.Source])
		if v == 0 {
			v = 1_000_000
		}
	case temporal.OpGroupInput:
		v = 1_000_000
	case temporal.OpSelect:
		v = 0.5 * o.card(n.Inputs[0])
	case temporal.OpAggregate:
		v = o.card(n.Inputs[0])
	case temporal.OpUnion:
		v = o.card(n.Inputs[0]) + o.card(n.Inputs[1])
	case temporal.OpTemporalJoin:
		l, r := o.card(n.Inputs[0]), o.card(n.Inputs[1])
		v = l + r
	case temporal.OpAntiSemiJoin:
		v = 0.8 * o.card(n.Inputs[0])
	case temporal.OpUDO:
		v = o.card(n.Inputs[0]) / 10
	default:
		v = o.card(n.Inputs[0])
	}
	if v < 1 {
		v = 1
	}
	o.cards[n] = v
	return v
}

func opFactor(k temporal.OpKind) float64 {
	switch k {
	case temporal.OpSelect, temporal.OpProject, temporal.OpAlterLifetime:
		return 0.2
	case temporal.OpTemporalJoin, temporal.OpAntiSemiJoin:
		return 2.0
	case temporal.OpGroupApply:
		return 1.5
	case temporal.OpUDO:
		return 5.0
	default:
		return 1.0
	}
}

func (o *Optimizer) opCost(n *temporal.Plan, k pkey) float64 {
	var in float64
	for _, c := range n.Inputs {
		in += o.card(c)
	}
	return o.Stats.CPUPerRow * in * opFactor(n.Kind) / o.Stats.parallelism(k)
}

func (o *Optimizer) exchangeCost(n *temporal.Plan) float64 {
	return o.Stats.ExchangePerRow * o.card(n)
}

// candidateKeys enumerates the interesting partitioning keys of a plan:
// the key sets of GroupApply/Join operators and their single columns,
// plus Time when the plan is windowed (paper §VI "Deriving Required
// Properties": partitioning on X serves any superset requirement, and any
// windowed stream can be partitioned by Time).
func candidateKeys(plan *temporal.Plan) []pkey {
	var keys []pkey
	add := func(k pkey) {
		for _, e := range keys {
			if e.equal(k) {
				return
			}
		}
		keys = append(keys, k)
	}
	plan.Walk(func(n *temporal.Plan) {
		switch n.Kind {
		case temporal.OpGroupApply, temporal.OpTemporalJoin, temporal.OpAntiSemiJoin:
			if len(n.Keys) > 0 {
				add(colsKey(n.Keys))
				for _, c := range n.Keys {
					add(colsKey([]string{c}))
				}
			}
		}
	})
	if plan.MaxWindow() > 0 {
		add(timeKey)
	}
	add(noneKey)
	return keys
}

func (o *Optimizer) opt(n *temporal.Plan, req pkey) *optResult {
	mk := memoKey{node: n, req: req.String()}
	if r, ok := o.memo[mk]; ok {
		return r
	}
	r := o.optimizeNode(n, req)
	o.memo[mk] = r
	return r
}

func fail(format string, args ...interface{}) *optResult {
	return &optResult{err: fmt.Errorf(format, args...)}
}

func (o *Optimizer) optimizeNode(n *temporal.Plan, req pkey) *optResult {
	switch n.Kind {
	case temporal.OpScan:
		// Every stage pays the initial map-side read+shuffle of its raw
		// input once, whether it lands on one reducer (none) or many —
		// so the scan cost is uniform and plans are compared on their
		// *inter-fragment* exchanges and per-operator parallelism.
		if req.any || req.equal(noneKey) {
			return &optResult{plan: n, cost: o.exchangeCost(n), delivered: noneKey}
		}
		if req.isSpecificCols() {
			for _, c := range req.cols {
				if !n.Out.Has(c) {
					return fail("timr: source %s lacks column %s", n.Source, c)
				}
			}
		}
		return &optResult{
			plan:      n.Exchange(req.toPartitionBy()),
			cost:      o.exchangeCost(n),
			delivered: req,
		}
	case temporal.OpExchange:
		return fail("timr: optimizer input must not be pre-annotated")
	}

	// Runnable keys for this node.
	var runnable []pkey
	windowed := n.MaxWindow() > 0
	addRunnable := func(k pkey) {
		for _, e := range runnable {
			if e.equal(k) {
				return
			}
		}
		runnable = append(runnable, k)
	}
	cands := o.candidates(n)
	switch n.Kind {
	case temporal.OpGroupApply, temporal.OpTemporalJoin, temporal.OpAntiSemiJoin:
		for _, k := range cands {
			if k.isSpecificCols() && k.subsetOf(n.Keys) {
				addRunnable(k)
			}
		}
		if windowed {
			addRunnable(timeKey)
		}
		addRunnable(noneKey)
	case temporal.OpAggregate, temporal.OpUDO:
		if windowed {
			addRunnable(timeKey)
		}
		addRunnable(noneKey)
	default: // stateless + union: any key works
		if req.any {
			for _, k := range cands {
				addRunnable(k)
			}
			addRunnable(noneKey)
		} else {
			addRunnable(req)
			addRunnable(noneKey)
		}
	}

	var best *optResult
	for _, k := range runnable {
		res := o.tryKey(n, k, req)
		if res.err != nil {
			continue
		}
		if best == nil || res.cost < best.cost {
			best = res
		}
	}
	if best == nil {
		return fail("timr: no valid annotation for %s under %s", n.Kind, req)
	}
	return best
}

// candidates caches the global candidate set (computed from the root the
// first time any node asks).
func (o *Optimizer) candidates(n *temporal.Plan) []pkey {
	// Candidate keys are global to the query; derive them from this
	// subtree (sufficient: keys referenced above n cannot partition n's
	// subtree unless its own operators expose them).
	return candidateKeys(n)
}

// tryKey prices running node n under key k, repartitioning to req above
// if needed.
func (o *Optimizer) tryKey(n *temporal.Plan, k, req pkey) *optResult {
	// Children requirements under k.
	childReqs, ok := o.childRequirements(n, k)
	if !ok {
		return fail("timr: key %s not derivable through %s", k, n.Kind)
	}
	cost := o.opCost(n, k)
	newInputs := make([]*temporal.Plan, len(n.Inputs))
	for i, c := range n.Inputs {
		cr := o.opt(c, childReqs[i])
		if cr.err != nil {
			return cr
		}
		cost += cr.cost
		newInputs[i] = cr.plan
	}
	cp := *n
	cp.Inputs = newInputs
	out := &optResult{plan: &cp, cost: cost, delivered: k}

	if !req.any && !req.equal(k) {
		// The key k does not satisfy req: check implication first —
		// partitioning by a subset implies partitioning by the superset.
		if req.isSpecificCols() && k.isSpecificCols() && k.subsetOf(req.cols) {
			out.delivered = k // still partitioned by k, which implies req
			return out
		}
		if !keySurvives(n.Out, req) {
			return fail("timr: required key %s not present in output of %s", req, n.Kind)
		}
		out.plan = out.plan.Exchange(req.toPartitionBy())
		out.cost += o.exchangeCost(n)
		out.delivered = req
	}
	return out
}

func keySurvives(schema *temporal.Schema, k pkey) bool {
	if !k.isSpecificCols() {
		return true
	}
	for _, c := range k.cols {
		if !schema.Has(c) {
			return false
		}
	}
	return true
}

// childRequirements derives the per-child partitioning requirement for
// running n under key k (paper §VI "Deriving Required Properties").
func (o *Optimizer) childRequirements(n *temporal.Plan, k pkey) ([]pkey, bool) {
	reqs := make([]pkey, len(n.Inputs))
	switch n.Kind {
	case temporal.OpTemporalJoin, temporal.OpAntiSemiJoin:
		if k.time || !k.isSpecificCols() {
			for i := range reqs {
				reqs[i] = k
			}
			return reqs, true
		}
		// Map each left key column to the corresponding right column.
		var rightCols []string
		for _, c := range k.cols {
			pos := -1
			for i, lk := range n.Keys {
				if lk == c {
					pos = i
					break
				}
			}
			if pos < 0 {
				return nil, false
			}
			rightCols = append(rightCols, n.RightKeys[pos])
		}
		reqs[0] = k
		reqs[1] = colsKey(rightCols)
		return reqs, true
	case temporal.OpProject:
		if !k.isSpecificCols() {
			reqs[0] = k
			return reqs, true
		}
		// Map output columns back through direct projections.
		var srcCols []string
		for _, c := range k.cols {
			mapped := ""
			for _, pr := range n.Projs {
				if pr.Name == c && pr.Source != "" {
					mapped = pr.Source
					break
				}
			}
			if mapped == "" {
				return nil, false // computed column: cannot push the key down
			}
			srcCols = append(srcCols, mapped)
		}
		reqs[0] = colsKey(srcCols)
		return reqs, true
	default:
		// GroupApply keys, select/alter-lifetime/aggregate/UDO inputs and
		// union branches share the node's column names.
		for i := range reqs {
			reqs[i] = k
		}
		if k.isSpecificCols() {
			for i, c := range n.Inputs {
				_ = i
				if !keySurvives(c.Out, k) {
					return nil, false
				}
			}
		}
		return reqs, true
	}
}
