package core

import (
	"fmt"
	"sort"
)

// Elastic placement for streaming jobs.
//
// The shard space is fixed at plan time — hash modulo for column-keyed
// fragments, span ids for temporal ones — so routing never changes (the
// Flink key-group idea). What moves is *placement*: each stage assigns
// its shards to workers, and the rebalance policy splits a hot worker or
// merges a cold one by migrating shards between them. A migration is a
// checkpoint transfer: the shard's engine snapshot makes a real byte
// round-trip and the engine is rebuilt from the copy plus the replay
// log — exactly the crash-recovery reconstruction of PR 4, whose
// wave-alignment argument (engines consume input only during Advance, so
// checkpoint+log reconstruct a shard exactly at any moment) therefore
// guarantees a migrated shard resumes bit-identically, even mid-wave and
// even interleaved with injected crashes.

// streamWorker is one placement slot of a stage: a set of shards served
// together. Workers carry no execution state of their own — shards own
// their engines — so worker membership is pure bookkeeping, which is
// precisely what makes migration cheap to reason about.
type streamWorker struct {
	id     int
	shards []int // sorted shard ids
}

// RebalanceConfig tunes the per-wave elastic placement policy enabled by
// WithRebalance. The thresholds are capacities — events admitted per
// punctuation wave per worker — so the policy scales workers to the
// offered load: splits absorb hot partitions, merges retire idle ones.
// Zero fields take the documented defaults.
type RebalanceConfig struct {
	// SplitAbove splits a worker that admitted more than this many
	// events in the last wave (and has ≥ 2 shards to give away).
	// Default 4096.
	SplitAbove int
	// MergeBelow retires a worker that admitted fewer than this many
	// events in the last wave, moving its shards to the least loaded
	// sibling — but only when the combined pair stays under SplitAbove,
	// so a merge cannot immediately re-trigger a split. Default
	// SplitAbove/8.
	MergeBelow int
	// MaxWorkers bounds workers per stage. Default: the job's machine
	// count.
	MaxWorkers int
}

func defaultRebalance(rc *RebalanceConfig, machines int) RebalanceConfig {
	out := RebalanceConfig{}
	if rc != nil {
		out = *rc
	}
	if out.SplitAbove <= 0 {
		out.SplitAbove = 4096
	}
	if out.MergeBelow <= 0 {
		out.MergeBelow = out.SplitAbove / 8
	}
	if out.MaxWorkers <= 0 {
		out.MaxWorkers = machines
	}
	return out
}

// Migration records one completed shard transfer, for tests and serve
// reporting.
type Migration struct {
	Frag   string // stage (fragment) name
	Kind   string // "split", "merge", or "force"
	From   int    // source worker id
	To     int    // destination worker id
	Shards []int  // shard ids moved
	Bytes  int    // checkpoint bytes transferred
}

// Migrations returns every shard transfer performed so far, in order.
func (j *StreamingJob) Migrations() []Migration {
	return append([]Migration(nil), j.migs...)
}

// Workers reports the current worker count per stage.
func (j *StreamingJob) Workers() map[string]int {
	out := make(map[string]int, len(j.stages))
	for _, st := range j.stages {
		out[st.frag.Name] = len(st.workers)
	}
	return out
}

// Partitions reports the current shard count per stage.
func (j *StreamingJob) Partitions() map[string]int {
	out := make(map[string]int, len(j.stages))
	for _, st := range j.stages {
		out[st.frag.Name] = len(st.parts)
	}
	return out
}

// ForceSplit immediately splits the named stage's most loaded worker,
// regardless of policy thresholds (tests and operational tooling). It is
// legal at any moment — mid-wave, between waves, with crashes armed.
func (j *StreamingJob) ForceSplit(frag string) error {
	if j.flushed {
		return ErrFlushed
	}
	st, err := j.stageByName(frag)
	if err != nil {
		return err
	}
	w := st.hottestWorker()
	if w == nil || len(w.shards) < 2 {
		return fmt.Errorf("timr: stage %s has no splittable worker", frag)
	}
	st.split(w, "force")
	return nil
}

// ForceMerge immediately retires the named stage's least loaded worker,
// moving its shards to the lightest sibling.
func (j *StreamingJob) ForceMerge(frag string) error {
	if j.flushed {
		return ErrFlushed
	}
	st, err := j.stageByName(frag)
	if err != nil {
		return err
	}
	if len(st.workers) < 2 {
		return fmt.Errorf("timr: stage %s has a single worker, nothing to merge", frag)
	}
	st.merge(st.coldestWorker(), "force")
	return nil
}

func (j *StreamingJob) stageByName(frag string) (*streamStage, error) {
	for _, st := range j.stages {
		if st.frag.Name == frag {
			return st, nil
		}
	}
	return nil, fmt.Errorf("timr: no streaming stage %q", frag)
}

// ---- placement ----

// place assigns a freshly created shard to the least loaded existing
// worker (fewest shards, ties to the lowest id) — deterministic, so two
// runs of the same feed sequence build identical placements.
func (st *streamStage) place(shard int) {
	if len(st.workers) == 0 {
		st.workers = append(st.workers, &streamWorker{id: st.nextWorker})
		st.nextWorker++
	}
	w := st.workers[0]
	for _, c := range st.workers[1:] {
		if len(c.shards) < len(w.shards) || (len(c.shards) == len(w.shards) && c.id < w.id) {
			w = c
		}
	}
	w.shards = insertSorted(w.shards, shard)
	st.assign[shard] = w.id
	st.workersG.Set(int64(len(st.workers)))
}

// shardLoad is the shard's events admitted since the last load capture:
// the last full wave plus the current interval so far — live enough for
// ForceSplit before the first wave, stable enough for the policy.
func (st *streamStage) shardLoad(id int) int {
	return st.lastLoad[id] + st.parts[id].pushes
}

func (st *streamStage) workerLoad(w *streamWorker) int {
	n := 0
	for _, s := range w.shards {
		n += st.shardLoad(s)
	}
	return n
}

func (st *streamStage) hottestWorker() *streamWorker {
	var best *streamWorker
	bestLoad := -1
	for _, w := range st.workers {
		if len(w.shards) < 2 {
			continue
		}
		if l := st.workerLoad(w); l > bestLoad || (l == bestLoad && best != nil && w.id < best.id) {
			best, bestLoad = w, l
		}
	}
	return best
}

func (st *streamStage) coldestWorker() *streamWorker {
	best := st.workers[0]
	bestLoad := st.workerLoad(best)
	for _, w := range st.workers[1:] {
		if l := st.workerLoad(w); l < bestLoad || (l == bestLoad && w.id < best.id) {
			best, bestLoad = w, l
		}
	}
	return best
}

// ---- migration mechanics ----

// migrate transfers a set of shards from one worker to another. Each
// shard's engine state makes a genuine byte round-trip: the checkpoint
// is copied (the "transfer"), a fresh engine is restored from the copy,
// and the replay log repopulates the barrier buffer — the same
// reconstruction a crash performs, so correctness rides on the PR 4
// invariant rather than on new machinery. Armed crash draws and push
// counts survive the move untouched: chaos and migration compose.
func (st *streamStage) migrate(from, to *streamWorker, shards []int, kind string) {
	rec := Migration{Frag: st.frag.Name, Kind: kind, From: from.id, To: to.id}
	for _, id := range shards {
		p := st.parts[id]
		ckpt := append([]byte(nil), p.ckpt...)
		if s := st.job.durStore; s != nil && len(p.ckpt) > 0 {
			// With a durable store attached, the transfer is a genuine
			// framed, checksummed disk round-trip (with the store's retry
			// supervisor). Persistent failure falls back to the in-memory
			// copy — byte-identical, so determinism is unaffected; only the
			// durability exercise is lost.
			if moved, err := s.Transfer(st.frag.Name, p.id, p.ckpt); err == nil {
				ckpt = moved
			}
		}
		p.eng = st.newEngine(p.id)
		if len(ckpt) > 0 {
			if err := p.eng.Restore(ckpt); err != nil {
				// Unreachable short of memory corruption: the checkpoint
				// came from an engine compiled from this same fragment root.
				panic(fmt.Sprintf("timr: shard migration failed: %v", err))
			}
			p.ckpt = ckpt
		}
		p.buf.pending = append(p.buf.pending[:0], p.log...)
		from.shards = removeSorted(from.shards, id)
		to.shards = insertSorted(to.shards, id)
		st.assign[id] = to.id
		st.migrations.Inc()
		st.migBytes.Add(int64(len(ckpt)))
		rec.Shards = append(rec.Shards, id)
		rec.Bytes += len(ckpt)
	}
	st.job.migs = append(st.job.migs, rec)
	st.workersG.Set(int64(len(st.workers)))
}

// split peels the hot half of w's shards onto a brand-new worker:
// shards are taken hottest-first until roughly half of w's load has
// moved (at least one moves, at least one stays).
func (st *streamStage) split(w *streamWorker, kind string) {
	nw := &streamWorker{id: st.nextWorker}
	st.nextWorker++
	st.workers = append(st.workers, nw)

	order := append([]int(nil), w.shards...)
	sort.Slice(order, func(a, b int) bool {
		la, lb := st.shardLoad(order[a]), st.shardLoad(order[b])
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	half, moved := st.workerLoad(w)/2, 0
	var take []int
	for _, id := range order {
		if len(take) > 0 && (moved >= half || len(take) == len(order)-1) {
			break
		}
		take = append(take, id)
		moved += st.shardLoad(id)
	}
	st.migrate(w, nw, take, kind)
}

// merge retires worker w, moving all its shards to the least loaded
// sibling.
func (st *streamStage) merge(w *streamWorker, kind string) {
	into, _ := st.lightestSibling(w)
	st.migrate(w, into, append([]int(nil), w.shards...), kind)
	for i, c := range st.workers {
		if c == w {
			st.workers = append(st.workers[:i], st.workers[i+1:]...)
			break
		}
	}
	st.workersG.Set(int64(len(st.workers)))
}

// rebalance runs the policy once, after a wave: split a worker over
// capacity, else retire one idling below the merge floor. One action per
// stage per wave keeps placement churn bounded and every step
// observable.
func (st *streamStage) rebalance() {
	rc := st.job.rebal
	if hot := st.hottestWorker(); hot != nil && len(st.workers) < rc.MaxWorkers &&
		st.workerLoad(hot) > rc.SplitAbove {
		st.split(hot, "split")
		return
	}
	if len(st.workers) < 2 {
		return
	}
	cold := st.coldestWorker()
	if st.workerLoad(cold) >= rc.MergeBelow {
		return
	}
	// Guard against oscillation: only merge when the combined pair stays
	// under the split threshold.
	lightest, load := st.lightestSibling(cold)
	if lightest != nil && st.workerLoad(cold)+load <= rc.SplitAbove {
		st.merge(cold, "merge")
	}
}

// lightestSibling returns the least loaded worker other than w (ties to
// the lowest id) — the merge destination.
func (st *streamStage) lightestSibling(w *streamWorker) (*streamWorker, int) {
	var into *streamWorker
	intoLoad := 0
	for _, c := range st.workers {
		if c == w {
			continue
		}
		if l := st.workerLoad(c); into == nil || l < intoLoad || (l == intoLoad && c.id < into.id) {
			into, intoLoad = c, l
		}
	}
	return into, intoLoad
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
