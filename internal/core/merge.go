package core

import (
	"container/heap"
	"sort"

	"timr/internal/temporal"
)

// runRange marks one run inside the reducer's feed: the half-open index
// interval [start, end) of consecutive feed entries that arrived as one
// shuffle run (a contiguous chunk of one upstream partition, in its
// original order).
type runRange struct{ start, end int }

// mergeRunOrder returns the feed order that a stable sort by LE would
// produce, computed as a k-way merge of the runs instead of a global
// re-sort. Runs must be disjoint, in ascending index order, and cover
// [0, len(les)) — which the reducer guarantees by construction.
//
// Equivalence to sort.SliceStable on LE: a stable sort orders equal-LE
// entries by original index. Runs are contiguous ascending index blocks,
// so "by original index" is exactly "by (run ordinal, position in run)" —
// the merge's tie-break. A run that is not itself LE-sorted (an upstream
// partition without time order) is stable-sorted in place first, which
// restores the same (LE, index) order within the run; onFallback is
// called once per such run so the slow path is observable.
func mergeRunOrder(les []temporal.Time, runs []runRange, onFallback func()) []int32 {
	order := make([]int32, len(les))
	for i := range order {
		order[i] = int32(i)
	}
	live := make([]runRange, 0, len(runs))
	for _, r := range runs {
		if r.end > r.start {
			live = append(live, r)
		}
	}
	for _, r := range live {
		if !sortedRange(les, r) {
			if onFallback != nil {
				onFallback()
			}
			w := order[r.start:r.end]
			sort.SliceStable(w, func(i, j int) bool { return les[w[i]] < les[w[j]] })
		}
	}
	if len(live) <= 1 {
		// Zero or one run: order is already sorted in place.
		return order
	}
	h := &mergeHeap{les: les, order: order}
	h.items = make([]mergeItem, 0, len(live))
	for ord, r := range live {
		h.items = append(h.items, mergeItem{pos: r.start, end: r.end, ord: ord})
	}
	heap.Init(h)
	out := make([]int32, 0, len(les))
	for h.Len() > 0 {
		it := h.items[0]
		out = append(out, order[it.pos])
		it.pos++
		if it.pos < it.end {
			h.items[0] = it
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}

// sortedRange reports whether les is nondecreasing over [r.start, r.end).
func sortedRange(les []temporal.Time, r runRange) bool {
	for i := r.start + 1; i < r.end; i++ {
		if les[i] < les[i-1] {
			return false
		}
	}
	return true
}

// mergeItem is one run's cursor in the merge heap.
type mergeItem struct{ pos, end, ord int }

type mergeHeap struct {
	les   []temporal.Time
	order []int32
	items []mergeItem
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	la, lb := h.les[h.order[a.pos]], h.les[h.order[b.pos]]
	if la != lb {
		return la < lb
	}
	return a.ord < b.ord
}
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
