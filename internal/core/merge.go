package core

import (
	"container/heap"
	"sort"

	"timr/internal/mapreduce"
	"timr/internal/temporal"
)

// runRange marks one run inside the reducer's feed: the half-open index
// interval [start, end) of consecutive feed entries that arrived as one
// shuffle run (a contiguous chunk of one upstream partition, in its
// original order).
type runRange struct{ start, end int }

// mergeRunOrder returns the feed order that a stable sort by LE would
// produce, computed as a k-way merge of the runs instead of a global
// re-sort. Runs must be disjoint, in ascending index order, and cover
// [0, len(les)) — which the reducer guarantees by construction.
//
// Equivalence to sort.SliceStable on LE: a stable sort orders equal-LE
// entries by original index. Runs are contiguous ascending index blocks,
// so "by original index" is exactly "by (run ordinal, position in run)" —
// the merge's tie-break. A run that is not itself LE-sorted (an upstream
// partition without time order) is stable-sorted in place first, which
// restores the same (LE, index) order within the run; onFallback is
// called once per such run so the slow path is observable.
func mergeRunOrder(les []temporal.Time, runs []runRange, onFallback func()) []int32 {
	order := make([]int32, len(les))
	for i := range order {
		order[i] = int32(i)
	}
	live := make([]runRange, 0, len(runs))
	for _, r := range runs {
		if r.end > r.start {
			live = append(live, r)
		}
	}
	for _, r := range live {
		if !sortedRange(les, r) {
			if onFallback != nil {
				onFallback()
			}
			w := order[r.start:r.end]
			sort.SliceStable(w, func(i, j int) bool { return les[w[i]] < les[w[j]] })
		}
	}
	if len(live) <= 1 {
		// Zero or one run: order is already sorted in place.
		return order
	}
	h := &mergeHeap{les: les, order: order}
	h.items = make([]mergeItem, 0, len(live))
	for ord, r := range live {
		h.items = append(h.items, mergeItem{pos: r.start, end: r.end, ord: ord})
	}
	heap.Init(h)
	out := make([]int32, 0, len(les))
	for h.Len() > 0 {
		it := h.items[0]
		out = append(out, order[it.pos])
		it.pos++
		if it.pos < it.end {
			h.items[0] = it
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}

// sortedRange reports whether les is nondecreasing over [r.start, r.end).
func sortedRange(les []temporal.Time, r runRange) bool {
	for i := r.start + 1; i < r.end; i++ {
		if les[i] < les[i-1] {
			return false
		}
	}
	return true
}

// eventRun is one shuffle run's streaming cursor in the k-way event
// merge: a resident row slice, a pre-sorted materialized event slice
// (the fallback for runs without RunKey order), or a spilled segment
// decoding one row frame at a time. cur holds the run's next event
// after a successful advance.
type eventRun struct {
	ord int // global run ordinal — the merge's stability tie-break
	src int // stage input the run came from (selects the scan name)
	cur temporal.Event

	toEvent func(mapreduce.Row) temporal.Event
	rows    []mapreduce.Row      // sorted resident run …
	evs     []temporal.Event     // … or pre-sorted materialized events …
	rd      *mapreduce.RowReader // … or a sorted spilled stream
	i       int
}

// newEventRun builds a cursor over one segment. Runs without RunKey
// order are materialized and stable-sorted by LE (onFallback observes
// the slow path, mirroring mergeRunOrder); sorted runs stream — spilled
// ones straight off disk, resident ones in place with zero copies.
func newEventRun(seg *mapreduce.Segment, ord, src int, toEvent func(mapreduce.Row) temporal.Event, onFallback func()) (*eventRun, error) {
	er := &eventRun{ord: ord, src: src, toEvent: toEvent}
	switch {
	case seg.Sorted() && !seg.Spilled():
		if cb := seg.ResidentColumnar(); cb != nil {
			// Columnar shuffle runs decode to a slab-backed row view
			// once, here, at the single consumer that needs rows.
			er.rows = cb.MaterializeRows()
		} else {
			er.rows = seg.Resident()
		}
	case seg.Sorted():
		// Spilled runs stream; a spilled columnar block is decoded and
		// materialized per segment by the RowReader.
		er.rd = seg.Open()
	default:
		rows, err := seg.Materialize()
		if err != nil {
			return nil, err
		}
		evs := make([]temporal.Event, len(rows))
		for i, r := range rows {
			evs[i] = toEvent(r)
		}
		// A stable sort restores the same (LE, original index) order the
		// resident merge path would produce.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].LE < evs[j].LE })
		if onFallback != nil {
			onFallback()
		}
		er.evs = evs
	}
	return er, nil
}

// advance loads the run's next event into cur.
func (er *eventRun) advance() (bool, error) {
	switch {
	case er.rows != nil:
		if er.i >= len(er.rows) {
			return false, nil
		}
		er.cur = er.toEvent(er.rows[er.i])
		er.i++
		return true, nil
	case er.evs != nil:
		if er.i >= len(er.evs) {
			return false, nil
		}
		er.cur = er.evs[er.i]
		er.i++
		return true, nil
	case er.rd != nil:
		r, ok, err := er.rd.Next()
		if err != nil || !ok {
			return false, err
		}
		er.cur = er.toEvent(r)
		return true, nil
	default:
		return false, nil
	}
}

// mergeEventRuns streams the k-way merge of runs into emit in
// nondecreasing LE order, breaking LE ties by run ordinal — the same
// order mergeRunOrder materializes (and so the same order as a stable
// LE sort of the concatenated runs), but pulled one event at a time, so
// spilled runs never need to be resident at once.
func mergeEventRuns(runs []*eventRun, emit func(*eventRun) error) error {
	live := make([]*eventRun, 0, len(runs))
	for _, er := range runs {
		ok, err := er.advance()
		if err != nil {
			return err
		}
		if ok {
			live = append(live, er)
		}
	}
	if len(live) == 1 {
		// Single run: drain straight through, no heap.
		er := live[0]
		for {
			if err := emit(er); err != nil {
				return err
			}
			ok, err := er.advance()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}
	h := &eventRunHeap{runs: live}
	heap.Init(h)
	for h.Len() > 0 {
		er := h.runs[0]
		if err := emit(er); err != nil {
			return err
		}
		ok, err := er.advance()
		if err != nil {
			return err
		}
		if ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return nil
}

type eventRunHeap struct{ runs []*eventRun }

func (h *eventRunHeap) Len() int { return len(h.runs) }
func (h *eventRunHeap) Less(i, j int) bool {
	a, b := h.runs[i], h.runs[j]
	if a.cur.LE != b.cur.LE {
		return a.cur.LE < b.cur.LE
	}
	return a.ord < b.ord
}
func (h *eventRunHeap) Swap(i, j int)      { h.runs[i], h.runs[j] = h.runs[j], h.runs[i] }
func (h *eventRunHeap) Push(x interface{}) { h.runs = append(h.runs, x.(*eventRun)) }
func (h *eventRunHeap) Pop() interface{} {
	old := h.runs
	n := len(old)
	er := old[n-1]
	h.runs = old[:n-1]
	return er
}

// mergeItem is one run's cursor in the merge heap.
type mergeItem struct{ pos, end, ord int }

type mergeHeap struct {
	les   []temporal.Time
	order []int32
	items []mergeItem
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	la, lb := h.les[h.order[a.pos]], h.les[h.order[b.pos]]
	if la != lb {
		return la < lb
	}
	return a.ord < b.ord
}
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
