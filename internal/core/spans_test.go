package core

import (
	"testing"
	"testing/quick"

	"timr/internal/temporal"
)

func TestSpanSpecBasics(t *testing.T) {
	s := NewSpanSpec(0, 99, 25, 10)
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	// Span 1 owns [25,50) and receives [15,50).
	start, end := s.Owned(1)
	if start != 25 || end != 50 {
		t.Errorf("Owned(1) = [%d,%d)", start, end)
	}
	// First span owns everything before the origin; last owns the tail.
	if st, _ := s.Owned(0); st != temporal.MinTime {
		t.Error("span 0 must own the prefix")
	}
	if _, e := s.Owned(3); e != temporal.MaxTime {
		t.Error("last span must own the tail")
	}
}

func TestSpansForOverlap(t *testing.T) {
	s := NewSpanSpec(0, 99, 25, 10)
	cases := []struct {
		t    temporal.Time
		want []int
	}{
		{0, []int{0}},
		{14, []int{0}},
		{15, []int{0, 1}}, // in span 1's overlap region [15,25)
		{24, []int{0, 1}},
		{25, []int{1}},
		{40, []int{1, 2}}, // 40 >= 50-10
		{99, []int{3}},
	}
	for _, c := range cases {
		got := s.SpansFor(c.t)
		if len(got) != len(c.want) {
			t.Errorf("SpansFor(%d) = %v, want %v", c.t, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SpansFor(%d) = %v, want %v", c.t, got, c.want)
			}
		}
	}
}

func TestSpansForClamping(t *testing.T) {
	s := NewSpanSpec(100, 199, 50, 500) // overlap far larger than range
	for _, tm := range []temporal.Time{100, 150, 199} {
		for _, i := range s.SpansFor(tm) {
			if i < 0 || i >= s.N {
				t.Fatalf("span index %d out of range", i)
			}
		}
	}
}

func TestPropertySpanCoverage(t *testing.T) {
	// Every timestamp in range is received by its owning span, and every
	// span receiving t either owns t or owns an interval starting within
	// overlap after t.
	err := quick.Check(func(loRaw, widthRaw, overlapRaw uint16, tRaw uint32) bool {
		lo := temporal.Time(loRaw)
		width := temporal.Time(widthRaw%500) + 1
		overlap := temporal.Time(overlapRaw % 1000)
		hi := lo + 10_000
		s := NewSpanSpec(lo, hi, width, overlap)
		tm := lo + temporal.Time(tRaw)%(hi-lo+1)
		spans := s.SpansFor(tm)
		if len(spans) == 0 {
			return false
		}
		ownSeen := false
		for _, i := range spans {
			start := s.Origin + s.Width*temporal.Time(i)
			end := start + s.Width
			if start <= tm && tm < end {
				ownSeen = true
			}
			// A non-owning receiving span must need t for warm-up:
			// t in [start-overlap, start).
			if tm < start && tm < start-overlap {
				return false
			}
			if tm >= end {
				return false
			}
		}
		return ownSeen
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
