package core

import (
	"fmt"

	"timr/internal/mapreduce"
	"timr/internal/obs"
	"timr/internal/temporal"
)

// Intermediate datasets carry event lifetimes in two leading columns
// (paper footnote 2 extends the Time-column convention to interval
// events; we adopt the extension for all TiMR-produced data).
const (
	ColLE = "__LE"
	ColRE = "__RE"
)

// TimeColumn is the mandated first column of raw source datasets
// (paper §III-A step 4).
const TimeColumn = "Time"

// IntermediateSchema wraps a payload schema with lifetime columns.
func IntermediateSchema(payload *temporal.Schema) *temporal.Schema {
	fields := []temporal.Field{
		{Name: ColLE, Kind: temporal.KindInt},
		{Name: ColRE, Kind: temporal.KindInt},
	}
	return temporal.NewSchema(append(fields, payload.Fields()...)...)
}

// EventsToRows converts engine output events into intermediate rows. All
// rows are carved from one backing slab: reducer outputs are written to
// the FS wholesale, so slab lifetime matches row lifetime.
func EventsToRows(events []temporal.Event) []mapreduce.Row {
	total := 0
	for _, e := range events {
		total += 2 + len(e.Payload)
	}
	slab := make(temporal.Row, total)
	rows := make([]mapreduce.Row, len(events))
	for i, e := range events {
		n := 2 + len(e.Payload)
		row := slab[:n:n]
		slab = slab[n:]
		row[0], row[1] = temporal.Int(e.LE), temporal.Int(e.RE)
		copy(row[2:], e.Payload)
		rows[i] = row
	}
	return rows
}

// RowsToEvents converts intermediate rows back into events.
func RowsToEvents(rows []mapreduce.Row) []temporal.Event {
	events := make([]temporal.Event, len(rows))
	for i, r := range rows {
		events[i] = temporal.Event{LE: r[0].AsInt(), RE: r[1].AsInt(), Payload: r[2:]}
	}
	return events
}

// Config tunes the TiMR runtime.
type Config struct {
	// CTIPeriod is the application-time interval between punctuations
	// injected by reducers; it bounds engine state during a partition run.
	CTIPeriod temporal.Time
	// SpanWidth overrides the output-span width for temporal
	// partitioning (§III-B). Zero (the default) auto-sizes spans to give
	// the cluster about two tasks per machine, floored at twice the
	// fragment's window so overlap duplication stays below ~50%.
	SpanWidth temporal.Time
	// Coalesce canonicalizes fragment output (merging events fragmented
	// at CTI boundaries) before it is written back to the FS.
	Coalesce bool
	// Obs, when set, receives per-operator engine metrics under a
	// "frag.<name>" child scope per fragment (batch reducers) or
	// "stream.<name>" (streaming stages). Engines of all partitions of a
	// fragment share the scope, so counts aggregate across the cluster.
	// Nil disables instrumentation.
	Obs *obs.Scope
	// Crash configures deterministic partition crash injection in
	// streaming jobs (see CrashConfig). The zero value disables it.
	Crash CrashConfig
}

// DefaultConfig mirrors the defaults used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		CTIPeriod: 15 * temporal.Minute,
		Coalesce:  true,
	}
}

// TiMR binds a cluster to the framework configuration.
type TiMR struct {
	Cluster *mapreduce.Cluster
	Cfg     Config
}

// New builds a TiMR instance over a cluster.
func New(cluster *mapreduce.Cluster, cfg Config) *TiMR {
	if cfg.CTIPeriod <= 0 {
		cfg.CTIPeriod = DefaultConfig().CTIPeriod
	}
	return &TiMR{Cluster: cluster, Cfg: cfg}
}

// Run executes an annotated temporal plan over the cluster: it fragments
// the plan, converts each fragment to an M-R stage (paper §III-A step 4)
// and runs the stages in order. sources maps scan names to FS datasets;
// output names the result dataset, which carries IntermediateSchema rows.
func (t *TiMR) Run(plan *temporal.Plan, sources map[string]string, output string) (*mapreduce.JobStat, error) {
	frags, err := MakeFragments(plan, sources, output)
	if err != nil {
		return nil, err
	}
	stages := make([]mapreduce.Stage, 0, len(frags))
	for i := range frags {
		st, err := t.Stage(&frags[i])
		if err != nil {
			return nil, err
		}
		stages = append(stages, st)
	}
	return t.Cluster.Run(stages...)
}

// ResultEvents reads a TiMR output dataset back as coalesced events.
func (t *TiMR) ResultEvents(name string) ([]temporal.Event, error) {
	ds, err := t.Cluster.FS.Read(name)
	if err != nil {
		return nil, err
	}
	return temporal.Coalesce(RowsToEvents(ds.Flatten())), nil
}

// Stage converts one fragment into a map-reduce stage whose reducer is
// the generated method P of the paper: it converts partition rows to
// events, feeds them in batches to an embedded engine instance running
// the fragment plan (the generated method P'), and emits result events
// back as rows directly from the engine's batched output (the paper's
// blocking-queue bridge of §III-C.2 collapses to a synchronous sink when
// reducer and engine share one thread).
func (t *TiMR) Stage(frag *Fragment) (mapreduce.Stage, error) {
	// A raw source may itself be the output of an earlier TiMR job, in
	// which case its rows carry interval lifetimes; detect that from the
	// stored schema so chained jobs compose (the BT pipeline runs one job
	// per phase).
	for i := range frag.Inputs {
		in := &frag.Inputs[i]
		if in.Intermediate {
			continue
		}
		if ds, err := t.Cluster.FS.Read(in.Dataset); err == nil && hasLifetimeColumns(ds.Schema) {
			in.Intermediate = true
		}
	}
	inputs := make([]string, len(frag.Inputs))
	for i, in := range frag.Inputs {
		inputs[i] = in.Dataset
	}
	outSchema := IntermediateSchema(frag.Root.Schema())

	st := mapreduce.Stage{
		Name:      frag.Name,
		Inputs:    inputs,
		Output:    frag.Output,
		OutSchema: outSchema,
	}
	// Every TiMR reducer merges its input runs by event LE; declaring the
	// run key lets the map phase annotate each shuffle run's sortedness
	// inline, so spilled runs can stream through the merge without a
	// re-read (and unsorted ones fall back to materialize+sort).
	st.RunKey = runKeyFn(frag)
	// The same key, declared positionally so the columnar map fast path
	// can read it straight off an int64 column without building rows.
	st.RunKeyCols = runKeyCols(frag)

	if frag.Part.Temporal {
		if err := t.temporalStage(&st, frag); err != nil {
			return st, err
		}
		return st, nil
	}

	if len(frag.Part.Cols) == 0 {
		// Non-partitionable fragment: single task.
		st.NumPartitions = 1
		st.Partition = func(mapreduce.Row, int) uint64 { return 0 }
	} else {
		// hash(key) mod #machines (§III-C.3): one engine instance serves
		// a whole hash bucket of logical groups.
		cols := make([][]int, len(frag.Inputs))
		for i, in := range frag.Inputs {
			cols[i] = partitionCols(in, frag.Inputs[i].Part.Cols)
		}
		// Declared positionally (not as a Partition closure) so columnar
		// map input hashes whole columns without materializing rows.
		st.PartitionCols = cols
	}

	st.ReduceSegments = t.reducer(frag, nil)
	return st, nil
}

// runKeyFn builds the stage's RunKey: the event left endpoint — the
// lifetime LE column for intermediate inputs, the Time column for raw
// sources. It is exactly the key the reducer's k-way merge orders by.
func runKeyFn(frag *Fragment) func(mapreduce.Row, int) int64 {
	timeCols := make([]int, len(frag.Inputs))
	intermediate := make([]bool, len(frag.Inputs))
	for i, in := range frag.Inputs {
		if in.Intermediate {
			intermediate[i] = true
		} else {
			timeCols[i] = in.Schema.MustIndex(TimeColumn)
		}
	}
	return func(r mapreduce.Row, src int) int64 {
		if intermediate[src] {
			return r[0].AsInt()
		}
		return r[timeCols[src]].AsInt()
	}
}

// runKeyCols is runKeyFn expressed positionally: the int64 column each
// input's run key lives in (the LE lifetime column for intermediate
// inputs, the Time column for raw sources). Keeping the two in lockstep
// is what lets the columnar fast path skip row materialization while
// producing the same run annotations as runKeyFn.
func runKeyCols(frag *Fragment) []int {
	cols := make([]int, len(frag.Inputs))
	for i, in := range frag.Inputs {
		if in.Intermediate {
			cols[i] = 0 // __LE leads intermediate schemas
		} else {
			cols[i] = in.Schema.MustIndex(TimeColumn)
		}
	}
	return cols
}

// hasLifetimeColumns reports whether a stored dataset schema leads with
// the __LE/__RE interval columns of TiMR intermediate data.
func hasLifetimeColumns(s *temporal.Schema) bool {
	return s != nil && s.Len() >= 2 && s.Field(0).Name == ColLE && s.Field(1).Name == ColRE
}

// partitionCols resolves partition column positions, accounting for the
// two lifetime columns of intermediate datasets.
func partitionCols(in FragmentInput, cols []string) []int {
	idx := in.Schema.Indexes(cols...)
	if in.Intermediate {
		for i := range idx {
			idx[i] += 2
		}
	}
	return idx
}

// reducer builds the method P for a fragment. If spans is non-nil, output
// events are clipped to the owned interval (temporal partitioning). The
// returned function has the out-of-core signature
// (mapreduce.Stage.ReduceSegments): each input arrives as a list of
// shuffle-run segments, resident or spilled, and P streams them through
// a k-way merge into the engine instead of materializing the partition
// — its working set is the merge frontier plus one feed batch.
func (t *TiMR) reducer(frag *Fragment, spans *SpanSpec) func(int, [][]mapreduce.Segment, func(mapreduce.Row)) error {
	// Capture per-input conversion metadata once.
	type inMeta struct {
		scan         string
		intermediate bool
		timeCol      int
	}
	metas := make([]inMeta, len(frag.Inputs))
	for i, in := range frag.Inputs {
		m := inMeta{scan: in.ScanName, intermediate: in.Intermediate}
		if !in.Intermediate {
			m.timeCol = in.Schema.MustIndex(TimeColumn)
		}
		metas[i] = m
	}
	root := frag.Root
	cfg := t.Cfg
	// One scope per fragment, shared by every partition's engine (and by
	// retried attempts): obs handles are atomics, so parallel reducers on
	// the worker pool aggregate into the same per-operator counters.
	scope := cfg.Obs.Child("frag." + frag.Name)
	mergeRuns := scope.Counter("merge_runs")
	mergeFallbacks := scope.Counter("merge_fallback_sorts")
	colFeeds := scope.Counter("columnar_feeds")

	return func(part int, in [][]mapreduce.Segment, emit func(mapreduce.Row)) error {
		// The paper's deployment bridges the DSMS's asynchronous push to
		// M-R's synchronous pull with a blocking queue (§III-C.2). Here
		// both sides live in one goroutine, so the engine's batched output
		// lands directly in the result sink — no channel, no per-event
		// handoff — and rows flow to emit after the final coalesce.
		sink := &reduceSink{clip: spans != nil}
		if spans != nil {
			sink.start, sink.end = spans.Owned(part)
		}
		eng, err := temporal.NewEngine(root,
			temporal.WithSink(sink),
			temporal.WithObs(scope),
			temporal.WithCTIPeriod(cfg.CTIPeriod))
		if err != nil {
			return err
		}
		// The engine's output lands in sink whichever feed path runs;
		// finish drains it and ships coalesced rows to emit.
		finish := func() error {
			eng.Flush()
			out := sink.out
			if cfg.Coalesce {
				out = temporal.Coalesce(out)
			}
			for _, r := range EventsToRows(out) {
				emit(r)
			}
			return nil
		}

		// Columnar fast path: a partition that is exactly one sorted
		// resident columnar run needs no merge (single-run order IS the
		// merged order) and no row materialization here — slice views of
		// the shuffle block feed the engine's columnar entry directly, and
		// a fused plan head defers the column→row transpose past its
		// stateless prefix. Falls through to the merge when the block's
		// lifetime/time columns are not pure int vectors.
		if cb, src := soleColumnarRun(in); cb != nil {
			m := metas[src]
			var view *temporal.ColBatch
			if m.intermediate {
				view = cb.IntervalEventView()
			} else {
				view = cb.PointEventView(m.timeCol)
			}
			if view != nil {
				colFeeds.Inc()
				mergeRuns.Add(1)
				n := view.Len()
				for lo := 0; lo < n; lo += reduceFeedBatch {
					hi := lo + reduceFeedBatch
					if hi > n {
						hi = n
					}
					eng.FeedColBatch(m.scan, view.Slice(lo, hi))
				}
				return finish()
			}
		}

		// One streaming cursor per shuffle run, in (source, run) order —
		// the same global run ordinals the materialized merge used, so the
		// pop order is identical. Rows convert to events lazily (P reads
		// rows "and converts each row into an event using the predefined
		// Time column"); resident runs are walked in place, sorted spilled
		// runs decode one row frame at a time.
		runs := make([]*eventRun, 0, 8)
		for src := range in {
			m := metas[src]
			toEvent := func(r mapreduce.Row) temporal.Event {
				if m.intermediate {
					return temporal.Event{LE: r[0].AsInt(), RE: r[1].AsInt(), Payload: r[2:]}
				}
				return temporal.PointEvent(r[m.timeCol].AsInt(), r)
			}
			for i := range in[src] {
				er, err := newEventRun(&in[src][i], len(runs), src, toEvent, func() { mergeFallbacks.Add(1) })
				if err != nil {
					return err
				}
				runs = append(runs, er)
			}
		}
		// The engine requires nondecreasing LE; M-R partitions are not
		// time-sorted globally, so P establishes time order first (the
		// strawman's "pre-sorting of data", §II-C — here it is part of the
		// framework, written once). The shuffle delivers each partition as
		// a concatenation of runs that are individually time-sorted
		// whenever their upstream partition was, so instead of a global
		// O(n log n) re-sort, P k-way merges the runs — reproducing the
		// stable LE-sort order exactly (see mergeEventRuns).
		mergeRuns.Add(int64(len(runs)))

		// Feed the merged order in same-source batches: one pipeline entry
		// call per run instead of per event.
		batch := make([]temporal.Event, 0, reduceFeedBatch)
		cur := ""
		flush := func() {
			if len(batch) > 0 {
				eng.FeedBatch(cur, &temporal.Batch{Events: batch})
				batch = batch[:0]
			}
		}
		if err := mergeEventRuns(runs, func(er *eventRun) error {
			if scan := metas[er.src].scan; scan != cur || len(batch) >= reduceFeedBatch {
				flush()
				cur = scan
			}
			batch = append(batch, er.cur)
			return nil
		}); err != nil {
			return err
		}
		flush()
		return finish()
	}
}

// soleColumnarRun detects the reducer's columnar fast-path shape: the
// whole partition is one sorted, resident, columnar shuffle segment
// (empty segments are ignored). It returns that segment's batch and the
// stage input it belongs to, or (nil, -1).
func soleColumnarRun(in [][]mapreduce.Segment) (*temporal.ColBatch, int) {
	var cb *temporal.ColBatch
	src := -1
	for s := range in {
		for i := range in[s] {
			seg := &in[s][i]
			if seg.Len() == 0 {
				continue
			}
			if cb != nil || !seg.Sorted() || seg.Spilled() || seg.ResidentColumnar() == nil {
				return nil, -1
			}
			cb, src = seg.ResidentColumnar(), s
		}
	}
	return cb, src
}

// reduceFeedBatch sizes the reducer's engine-feed batches: large enough
// to amortize per-batch dispatch to noise, small enough to stay
// cache-resident.
const reduceFeedBatch = 1024

// reduceSink collects a partition engine's output for the reducer,
// clipping events to the partition's owned span under temporal
// partitioning. It implements BatchSink, so the engine's batched tail
// delivers whole runs in one call.
type reduceSink struct {
	clip       bool
	start, end temporal.Time
	out        []temporal.Event
}

func (s *reduceSink) add(e temporal.Event) {
	if s.clip {
		e.LE, e.RE = maxT(e.LE, s.start), minT(e.RE, s.end)
		if e.LE >= e.RE {
			return
		}
	}
	s.out = append(s.out, e)
}

func (s *reduceSink) OnEvent(e temporal.Event) { s.add(e) }

func (s *reduceSink) OnBatch(b *temporal.Batch) {
	if !s.clip {
		s.out = append(s.out, b.Events...)
		return
	}
	for _, e := range b.Events {
		s.add(e)
	}
}

func (s *reduceSink) OnCTI(temporal.Time) {}
func (s *reduceSink) OnFlush()            {}

func maxT(a, b temporal.Time) temporal.Time {
	if a > b {
		return a
	}
	return b
}

func minT(a, b temporal.Time) temporal.Time {
	if a < b {
		return a
	}
	return b
}

// temporalStage wires a time-partitioned fragment (§III-B): rows are
// routed to overlapping spans, each span's engine produces output only
// for its owned interval.
func (t *TiMR) temporalStage(st *mapreduce.Stage, frag *Fragment) error {
	width := frag.Part.SpanWidth
	if width <= 0 {
		width = t.Cfg.SpanWidth
	}
	overlap := frag.Root.MaxWindow()
	// Determine the data's time range to size the span set.
	lo, hi := temporal.MaxTime, temporal.MinTime
	for _, in := range frag.Inputs {
		ds, err := t.Cluster.FS.Read(in.Dataset)
		if err != nil {
			return err
		}
		timeCol := 0
		if !in.Intermediate {
			timeCol = in.Schema.MustIndex(TimeColumn)
		}
		for p := 0; p < ds.NumPartitions(); p++ {
			rd := ds.Reader(p)
			for {
				r, ok, err := rd.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				ts := r[timeCol].AsInt()
				if ts < lo {
					lo = ts
				}
				if ts > hi {
					hi = ts
				}
			}
		}
	}
	if lo > hi {
		lo, hi = 0, 0
	}
	if width <= 0 {
		// Auto-size: about two tasks per machine, but spans no narrower
		// than twice the fragment's window so the overlap duplication
		// stays below ~50% (the tradeoff of paper Figure 16).
		machines := temporal.Time(t.Cluster.Cfg.Machines)
		if machines < 1 {
			machines = 1
		}
		width = (hi - lo + 1) / (2 * machines)
		if min := 2 * overlap; width < min {
			width = min
		}
		if width <= 0 {
			width = 1
		}
	}
	spans := NewSpanSpec(lo, hi, width, overlap)
	st.NumPartitions = spans.N
	timeCols := make([]int, len(frag.Inputs))
	intermediate := make([]bool, len(frag.Inputs))
	for i, in := range frag.Inputs {
		if in.Intermediate {
			timeCols[i] = 0
			intermediate[i] = true
		} else {
			timeCols[i] = in.Schema.MustIndex(TimeColumn)
		}
	}
	st.MultiPartition = func(r mapreduce.Row, src, nparts int) []int {
		if intermediate[src] {
			// Interval events route by their full lifetime: every span
			// whose input region the lifetime reaches must see the event,
			// or chained temporal jobs drop contributions in later spans.
			return spans.SpansForInterval(r[0].AsInt(), r[1].AsInt())
		}
		return spans.SpansFor(r[timeCols[src]].AsInt())
	}
	st.ReduceSegments = t.reducer(frag, spans)
	return nil
}

// String renders a fragment summary ("DAG of {fragment, key} pairs").
func (frag *Fragment) String() string {
	return fmt.Sprintf("%s key=%s inputs=%d -> %s", frag.Name, frag.Part, len(frag.Inputs), frag.Output)
}
