package core

import "timr/internal/temporal"

// SpanSpec implements temporal partitioning (paper §III-B): the time axis
// is divided into spans of width s with overlap w between successive
// spans. Span i owns output in [origin + s·i, origin + s·(i+1)) and
// receives events with timestamps in [origin + s·i − w, origin + s·(i+1)).
type SpanSpec struct {
	Origin  temporal.Time
	Width   temporal.Time // s: span (output) width
	Overlap temporal.Time // w: max window of the fragment
	N       int
}

// NewSpanSpec sizes a span set covering timestamps [lo, hi].
func NewSpanSpec(lo, hi, width, overlap temporal.Time) *SpanSpec {
	if width <= 0 {
		width = 1
	}
	n := int((hi-lo)/width) + 1
	if n < 1 {
		n = 1
	}
	return &SpanSpec{Origin: lo, Width: width, Overlap: overlap, N: n}
}

// Owned returns the output interval owned by span i.
func (s *SpanSpec) Owned(i int) (start, end temporal.Time) {
	start = s.Origin + s.Width*temporal.Time(i)
	end = start + s.Width
	if i == 0 {
		// The first span also owns any output before the origin (windows
		// opened by the earliest events).
		start = temporal.MinTime
	}
	if i == s.N-1 {
		// The last span owns the tail beyond the data range.
		end = temporal.MaxTime
	}
	return start, end
}

// SpansFor returns the spans that must receive a point event at time t:
// its owning span plus any later spans whose overlap region covers t.
func (s *SpanSpec) SpansFor(t temporal.Time) []int {
	return s.SpansForInterval(t, t+1)
}

// SpansForInterval returns the spans that must receive an event with
// lifetime [le, re): every span whose input region [start−w, end)
// intersects the lifetime — equivalently, every span whose owned range
// intersects [le, re+w). Routing by LE alone would starve later spans
// that the event's lifetime reaches into: a window opened by the event
// contributes to snapshots up to re+w, and the span owning those
// snapshots must see the event (§III-B).
func (s *SpanSpec) SpansForInterval(le, re temporal.Time) []int {
	if re < le+1 {
		re = le + 1 // degenerate lifetimes route like point events
	}
	first := int((le - s.Origin) / s.Width)
	last := int((re - 1 + s.Overlap - s.Origin) / s.Width)
	if first < 0 {
		first = 0
	}
	if first >= s.N {
		first = s.N - 1
	}
	if last >= s.N {
		last = s.N - 1
	}
	if last < first {
		last = first
	}
	out := make([]int, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, i)
	}
	return out
}
