package core

// Cost-based full-vs-delta refresh planning.
//
// The incremental BT refresher (internal/bt) maintains the pipeline's
// back stages from mergeable summaries; every ingest it can either
// recompute a stage over full history or apply the day's delta and
// merge. Both are exact for the summary stages, so the choice is purely
// a cost call — and it reuses the optimizer's cost model: per-row rates
// come from recorded stage timings when the refresher has observed the
// stage before, falling back to the Stats CPU weights (scaled by the
// same operator factors Optimize uses) when it has not.

// StageObs is one recorded observation of a stage: how many rows it
// processed and how long it took. The refresher persists these with its
// state, so the chooser calibrates to the machine it actually runs on.
type StageObs struct {
	Rows int64
	Ns   int64
}

// PerRow returns the observed per-row cost in nanoseconds, or 0 when
// the observation is empty.
func (s StageObs) PerRow() float64 {
	if s.Rows <= 0 || s.Ns <= 0 {
		return 0
	}
	return float64(s.Ns) / float64(s.Rows)
}

// RefreshStage describes one stage's full-vs-delta alternatives for the
// chooser.
type RefreshStage struct {
	Name string

	// FullRows is the row count a full recompute of the stage would
	// process; DeltaRows the count the delta path would.
	FullRows  int64
	DeltaRows int64

	// MergeUnits counts the summary entries the delta path must merge on
	// top of its row work. Merging an entry is far cheaper than
	// producing a row (a map add vs a pipeline of temporal operators);
	// the model prices it at mergeUnitWeight of a row.
	MergeUnits int64

	// Observed is the stage's recorded per-row cost from a previous
	// refresh; zero-valued falls back to the Stats-derived rate.
	Observed StageObs

	// Factor scales the fallback per-row rate like the optimizer's
	// operator factors (0 means 1.0).
	Factor float64

	// ForceDelta marks stages whose full path is unavailable — e.g. the
	// refresher did not retain full raw history — making the choice
	// one-sided regardless of cost.
	ForceDelta bool
}

// RefreshChoice is the chooser's verdict for one stage.
type RefreshChoice struct {
	Stage     string
	Delta     bool
	Forced    bool
	FullCost  float64
	DeltaCost float64
	PerRow    float64 // rate used (ns/row when observed, model units otherwise)
}

// mergeUnitWeight prices merging one summary entry relative to
// processing one row through the stage.
const mergeUnitWeight = 0.05

// PlanRefresh prices every stage's full and delta alternatives and
// picks the cheaper one per stage. Stages priced from observations use
// real nanoseconds; unobserved stages use the Stats CPU weight scaled
// by the stage factor — the units only ever compare within one stage,
// so mixing calibrated and modeled stages is sound.
func (o *Optimizer) PlanRefresh(stages []RefreshStage) []RefreshChoice {
	out := make([]RefreshChoice, 0, len(stages))
	for _, st := range stages {
		perRow := st.Observed.PerRow()
		if perRow == 0 {
			f := st.Factor
			if f == 0 {
				f = 1.0
			}
			perRow = o.Stats.CPUPerRow * f
		}
		c := RefreshChoice{
			Stage:     st.Name,
			PerRow:    perRow,
			FullCost:  perRow * float64(st.FullRows),
			DeltaCost: perRow * (float64(st.DeltaRows) + mergeUnitWeight*float64(st.MergeUnits)),
		}
		switch {
		case st.ForceDelta:
			c.Delta, c.Forced = true, true
		default:
			c.Delta = c.DeltaCost < c.FullCost
		}
		out = append(out, c)
	}
	return out
}

// ChooseDelta aggregates per-stage verdicts into the refresher's single
// full-vs-delta decision: delta when any stage forces it (full history
// unavailable) or when the summed delta cost undercuts the summed full
// cost.
func ChooseDelta(choices []RefreshChoice) bool {
	var full, delta float64
	for _, c := range choices {
		if c.Forced {
			return true
		}
		full += c.FullCost
		delta += c.DeltaCost
	}
	return delta < full
}
