package core

import (
	"math"
	"testing"
)

func TestStageObsPerRow(t *testing.T) {
	if got := (StageObs{}).PerRow(); got != 0 {
		t.Fatalf("empty observation per-row = %v, want 0", got)
	}
	if got := (StageObs{Rows: 100, Ns: 0}).PerRow(); got != 0 {
		t.Fatalf("zero-ns observation per-row = %v, want 0", got)
	}
	if got := (StageObs{Rows: 200, Ns: 1000}).PerRow(); got != 5 {
		t.Fatalf("per-row = %v, want 5", got)
	}
}

func TestPlanRefreshObservedVsFallback(t *testing.T) {
	o := NewOptimizer(&Stats{CPUPerRow: 2.0})
	choices := o.PlanRefresh([]RefreshStage{
		// Observed stage: real nanoseconds override the model rate.
		{Name: "obs", FullRows: 1000, DeltaRows: 100, Observed: StageObs{Rows: 10, Ns: 50}, Factor: 9.0},
		// Unobserved stage: Stats.CPUPerRow scaled by the factor.
		{Name: "model", FullRows: 1000, DeltaRows: 100, Factor: 3.0},
		// Zero factor means 1.0, not a free stage.
		{Name: "plain", FullRows: 10, DeltaRows: 40},
	})
	if len(choices) != 3 {
		t.Fatalf("got %d choices, want 3", len(choices))
	}
	if c := choices[0]; c.PerRow != 5 || c.FullCost != 5000 || c.DeltaCost != 500 || !c.Delta {
		t.Fatalf("observed stage mispriced: %+v", c)
	}
	if c := choices[1]; c.PerRow != 6 || c.FullCost != 6000 || c.DeltaCost != 600 || !c.Delta {
		t.Fatalf("fallback stage mispriced: %+v", c)
	}
	if c := choices[2]; c.PerRow != 2 || c.FullCost != 20 || c.DeltaCost != 80 || c.Delta {
		t.Fatalf("zero-factor stage mispriced: %+v", c)
	}
}

func TestPlanRefreshMergeUnits(t *testing.T) {
	o := NewOptimizer(&Stats{CPUPerRow: 1.0})
	// Delta processes no rows but must merge summary entries: the merge
	// weight alone decides. 100 units at 0.05 = 5 > 4 full rows.
	c := o.PlanRefresh([]RefreshStage{
		{Name: "counts", FullRows: 4, DeltaRows: 0, MergeUnits: 100},
	})[0]
	if math.Abs(c.DeltaCost-5) > 1e-12 || c.Delta {
		t.Fatalf("merge-unit pricing wrong: %+v", c)
	}
}

func TestPlanRefreshForceDelta(t *testing.T) {
	o := NewOptimizer(nil)
	choices := o.PlanRefresh([]RefreshStage{
		// Full would be free, but the full path is unavailable.
		{Name: "front", FullRows: 0, DeltaRows: 1_000_000, ForceDelta: true},
	})
	if c := choices[0]; !c.Delta || !c.Forced {
		t.Fatalf("forced stage not delta: %+v", c)
	}
	if !ChooseDelta(choices) {
		t.Fatal("ChooseDelta ignored a forced stage")
	}
}

func TestChooseDeltaAggregates(t *testing.T) {
	// One stage prefers full, one prefers delta; the sums decide.
	cheapFull := RefreshChoice{Stage: "a", FullCost: 10, DeltaCost: 100}
	cheapDelta := RefreshChoice{Stage: "b", FullCost: 500, DeltaCost: 20}
	if !ChooseDelta([]RefreshChoice{cheapFull, cheapDelta}) {
		t.Fatal("summed delta (120) should beat summed full (510)")
	}
	if ChooseDelta([]RefreshChoice{cheapFull}) {
		t.Fatal("delta should lose when it costs more")
	}
	if ChooseDelta(nil) {
		t.Fatal("empty choice set should default to full")
	}
}
