package core

import (
	"fmt"
	"sort"

	"timr/internal/dur"
	"timr/internal/temporal"
)

// Durable restart for streaming jobs.
//
// The in-memory crash path (streaming.go crash()) already proves the
// core invariant: engines consume input only during Advance, so at the
// end of a wave every partition's checkpoint plus its replay log — which
// at that moment equals its barrier's pending events — reconstruct the
// partition exactly. Durability is that same cut, written down: one
// store generation per wave carries every partition's (checkpoint,
// log), the delivered results, and the output barrier's pending events.
// A process killed at any instant restarts from the newest intact
// generation, and the driver re-feeds everything its sources admitted
// after that wave (the replay log inside the generation covers the rest)
// — producing bit-identical output, including under injected I/O faults
// that force a fallback to an older generation with a longer replay.

// commitDurable snapshots the job at the end of the wave at time t and
// commits it as one generation. Called from Advance with the wave fully
// applied: every partition's ckpt/log are fresh, j.waves counts this
// wave, and j.results/j.out.pending reflect everything released. Commit
// failure is tolerated — counted by the store, remembered in durErr —
// because the previous generation remains a correct (if older) recovery
// line, costing only extended replay.
func (j *StreamingJob) commitDurable(t temporal.Time) {
	snap := &dur.Snapshot{
		Wave:    t,
		Waves:   j.waves,
		Results: j.results,
		Pending: j.out.pending,
	}
	for _, st := range j.stages {
		for _, id := range st.sortedParts() {
			p := st.parts[id]
			snap.Parts = append(snap.Parts, dur.PartitionState{
				Frag: st.frag.Name, Part: p.id, Ckpt: p.ckpt, Log: p.log,
			})
		}
	}
	var srcNames []string
	for name, f := range j.feeders {
		if _, ok := f.Position(); ok {
			srcNames = append(srcNames, name)
		}
	}
	sort.Strings(srcNames)
	for _, name := range srcNames {
		pos, _ := j.feeders[name].Position()
		snap.Offsets = append(snap.Offsets, dur.SourceOffset{Name: name, Pos: pos})
	}
	j.durErr = j.durStore.Commit(snap)
}

// DurableErr returns the most recent durable-commit error (nil after a
// successful wave commit). Commit failures never fail the wave; this is
// how callers observe that the recovery line has fallen behind.
func (j *StreamingJob) DurableErr() error { return j.durErr }

// RestoreFromDir reopens a streaming job from its durable store: the
// newest intact generation (corrupt ones are quarantined, with fallback)
// is loaded and applied to a freshly built job, which then continues
// committing to the same store. The returned Recovery is nil when the
// store holds no generation — the job starts clean and the caller feeds
// from the beginning. Otherwise the caller must re-feed every source
// event admitted after the recovered wave (Recovery.Snap.Wave); events
// admitted before it but not yet consumed are inside the generation's
// replay logs and need no re-feeding.
//
// The plan, sources, and options must match the crashed process's — the
// shard space (machines) in particular, since partition ids are recorded
// against it.
func RestoreFromDir(plan *temporal.Plan, sources map[string]*temporal.Schema, store *dur.Store, opts ...StreamOption) (*StreamingJob, *dur.Recovery, error) {
	rec, err := store.Load()
	if err != nil {
		return nil, nil, err
	}
	sj, err := NewStreamingJob(plan, sources, append(append([]StreamOption(nil), opts...), WithDurable(store))...)
	if err != nil {
		return nil, nil, err
	}
	if rec == nil {
		return sj, nil, nil
	}
	if err := sj.applySnapshot(rec.Snap); err != nil {
		return nil, nil, fmt.Errorf("timr: restore from %s (gen %d): %w", store.Dir(), rec.Gen, err)
	}
	return sj, rec, nil
}

// applySnapshot rebuilds the job's live state from a recovered
// generation — the durable analogue of crash(): for every recorded
// partition, a fresh engine restored from the checkpoint, the replay log
// repopulating the barrier; plus the job-level output record. j.waves is
// set before any partition is created so the crash-injection draws of
// the restored run are well-defined from the first arm.
func (j *StreamingJob) applySnapshot(snap *dur.Snapshot) error {
	j.waves = snap.Waves
	for _, ps := range snap.Parts {
		st, err := j.stageByName(ps.Frag)
		if err != nil {
			return err
		}
		p := st.partition(ps.Part)
		if len(ps.Ckpt) > 0 {
			eng := st.newEngine(p.id)
			if err := eng.Restore(ps.Ckpt); err != nil {
				return fmt.Errorf("partition %s/%d: %w", ps.Frag, ps.Part, err)
			}
			p.eng = eng
			p.ckpt = append([]byte(nil), ps.Ckpt...)
		}
		p.log = append(p.log[:0], ps.Log...)
		p.buf.pending = append(p.buf.pending[:0], ps.Log...)
		st.replayed.Add(int64(len(ps.Log)))
		st.recoveries.Inc()
	}
	j.results = append(j.results[:0], snap.Results...)
	j.out.pending = append(j.out.pending[:0], snap.Pending...)
	for _, o := range snap.Offsets {
		if f, ok := j.feeders[o.Name]; ok {
			f.SetPosition(o.Pos)
		}
	}
	return nil
}
