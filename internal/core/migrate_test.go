package core

// Migration differential gate (`make servegate`): a streaming job that
// splits and merges workers mid-stream — including under injected crash
// chaos — must produce output bit-identical to a static run, because a
// migration is the same checkpoint+replay reconstruction a crash
// recovery performs, aligned to the PR 4 wave invariant.

import (
	"errors"
	"testing"

	"timr/internal/obs"
	"timr/internal/temporal"
)

// chainedMigrPlan is a two-fragment chained plan (UserId exchange, then
// C exchange) so migrations exercise inter-stage routing, not just a
// single barrier.
func chainedMigrPlan(annotate bool) *temporal.Plan {
	src := temporal.Scan("clicks", clickSchema())
	s := src
	if annotate {
		s = src.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
	}
	perUser := s.GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
		return g.WithWindow(30).Count("C")
	}).ToPoint()
	if annotate {
		perUser = perUser.Exchange(temporal.PartitionBy{Cols: []string{"C"}})
	}
	return perUser.GroupApply([]string{"C"}, func(g *temporal.Plan) *temporal.Plan {
		return g.WithWindow(50).Count("N")
	})
}

func migrEvents() []temporal.Event {
	var events []temporal.Event
	tm := temporal.Time(0)
	for i := 0; i < 900; i++ {
		tm += temporal.Time(i % 3)
		events = append(events, temporal.PointEvent(tm, temporal.Row{
			temporal.Int(int64(tm)), temporal.Int(int64(i % 17)), temporal.Int(int64(i % 5)),
		}))
	}
	return events
}

// driveMigrating feeds events with a punctuation wave every period
// ticks, calling hook(job, waveNo) after each wave and also mid-interval
// (feedNo measured in events) via midHook — so migrations land both at
// wave boundaries and in the middle of a feed interval.
func driveMigrating(t *testing.T, cfg Config, hook func(*StreamingJob, int), midHook func(*StreamingJob, int), opts ...StreamOption) []temporal.Event {
	t.Helper()
	events := migrEvents()
	opts = append([]StreamOption{WithMachines(4), WithConfig(cfg)}, opts...)
	job, err := NewStreamingJob(chainedMigrPlan(true),
		map[string]*temporal.Schema{"clicks": clickSchema()}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	clicks, err := job.Source("clicks")
	if err != nil {
		t.Fatal(err)
	}
	const period = 20
	last, wave := temporal.Time(temporal.MinTime), 0
	for i, e := range events {
		if last == temporal.MinTime {
			last = e.LE
		} else if e.LE-last >= period {
			if err := job.Advance(e.LE); err != nil {
				t.Fatal(err)
			}
			last = e.LE
			wave++
			if hook != nil {
				hook(job, wave)
			}
		}
		if err := clicks.Feed(e); err != nil {
			t.Fatal(err)
		}
		if midHook != nil {
			midHook(job, i)
		}
	}
	job.Flush()
	res, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sumCounter(sc *obs.Scope, name string) int64 {
	var n int64
	for _, p := range sc.Snapshot() {
		if p.Name == name {
			n += p.Value
		}
	}
	return n
}

func TestMigrationSplitMergeBitIdentical(t *testing.T) {
	static := driveMigrating(t, DefaultConfig(), nil, nil)

	scope := obs.New("migr")
	cfg := DefaultConfig()
	cfg.Obs = scope
	split, merged := false, false
	migrated := driveMigrating(t, cfg, func(j *StreamingJob, wave int) {
		// Split both stages early, merge them back later — mid-stream,
		// with live state on every shard.
		if wave == 3 {
			for frag := range j.Partitions() {
				if err := j.ForceSplit(frag); err == nil {
					split = true
				}
			}
		}
		if wave == 9 {
			for frag := range j.Partitions() {
				if err := j.ForceMerge(frag); err == nil {
					merged = true
				}
			}
		}
	}, nil)
	if !split || !merged {
		t.Fatalf("forced split=%v merge=%v; the differential is vacuous", split, merged)
	}
	if !temporal.EventsEqual(migrated, static) {
		t.Fatalf("migrated run diverges from static: %d vs %d events", len(migrated), len(static))
	}
	if n := sumCounter(scope, "migrations"); n == 0 {
		t.Fatal("no migrations counted despite forced split+merge")
	}
	if sumCounter(scope, "migrated_bytes") == 0 {
		t.Fatal("migrations transferred no checkpoint bytes")
	}
}

func TestMigrationMidIntervalBitIdentical(t *testing.T) {
	// Migrations fired in the middle of a feed interval — between waves,
	// with a non-empty replay log — must still be invisible in the output.
	static := driveMigrating(t, DefaultConfig(), nil, nil)
	forced := 0
	migrated := driveMigrating(t, DefaultConfig(), nil, func(j *StreamingJob, feedNo int) {
		switch feedNo {
		case 137, 411: // mid-interval: 900 events / ~20-tick waves
			for frag := range j.Partitions() {
				if err := j.ForceSplit(frag); err == nil {
					forced++
				}
			}
		case 633:
			for frag := range j.Partitions() {
				if err := j.ForceMerge(frag); err == nil {
					forced++
				}
			}
		}
	})
	if forced == 0 {
		t.Fatal("no mid-interval migration happened; the differential is vacuous")
	}
	if !temporal.EventsEqual(migrated, static) {
		t.Fatalf("mid-interval migration diverges: %d vs %d events", len(migrated), len(static))
	}
}

func TestMigrationUnderChaosBitIdentical(t *testing.T) {
	// The full gate: forced split+merge while partitions crash at 30%
	// per wave. Crash recovery and migration share the reconstruction
	// path; composing them must not change a single byte of output.
	static := driveMigrating(t, DefaultConfig(), nil, nil)
	for _, seed := range []int64{1, 2, 3} {
		scope := obs.New("migr")
		cfg := DefaultConfig()
		cfg.Obs = scope
		got := driveMigrating(t, cfg, func(j *StreamingJob, wave int) {
			if wave == 3 || wave == 7 {
				for frag := range j.Partitions() {
					_ = j.ForceSplit(frag)
				}
			}
			if wave == 11 {
				for frag := range j.Partitions() {
					_ = j.ForceMerge(frag)
				}
			}
		}, nil, WithCrash(CrashConfig{Rate: 0.3, Seed: seed}))
		if !temporal.EventsEqual(got, static) {
			t.Fatalf("seed %d: chaos+migration diverges: %d vs %d events", seed, len(got), len(static))
		}
		if sumCounter(scope, "crashes") == 0 {
			t.Fatalf("seed %d: no crashes injected; gate is vacuous", seed)
		}
		if sumCounter(scope, "migrations") == 0 {
			t.Fatalf("seed %d: no migrations happened; gate is vacuous", seed)
		}
	}
}

func TestAutoRebalanceElasticity(t *testing.T) {
	// Capacity-driven policy: a hot interval should grow workers, a
	// quiet tail should shrink them back — and the output must match the
	// static run bit for bit.
	static := driveMigrating(t, DefaultConfig(), nil, nil)

	scope := obs.New("rebal")
	cfg := DefaultConfig()
	cfg.Obs = scope
	maxWorkers := 1
	got := driveMigrating(t, cfg, func(j *StreamingJob, wave int) {
		for _, n := range j.Workers() {
			if n > maxWorkers {
				maxWorkers = n
			}
		}
	}, nil, WithRebalance(RebalanceConfig{SplitAbove: 20, MergeBelow: 3, MaxWorkers: 4}))
	if !temporal.EventsEqual(got, static) {
		t.Fatalf("auto-rebalanced run diverges: %d vs %d events", len(got), len(static))
	}
	if maxWorkers < 2 {
		t.Fatalf("policy never split despite SplitAbove=20 (max workers seen: %d)", maxWorkers)
	}
	if sumCounter(scope, "migrations") == 0 {
		t.Fatal("policy performed no migrations")
	}
}

func TestForceSplitMergeErrors(t *testing.T) {
	job, err := NewStreamingJob(chainedMigrPlan(true),
		map[string]*temporal.Schema{"clicks": clickSchema()}, WithMachines(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.ForceSplit("nope"); err == nil {
		t.Fatal("ForceSplit on unknown stage must error")
	}
	frag := ""
	for f := range job.Partitions() {
		frag = f
		break
	}
	// No shards exist yet — nothing to split or merge.
	if err := job.ForceSplit(frag); err == nil {
		t.Fatal("ForceSplit with no splittable worker must error")
	}
	if err := job.ForceMerge(frag); err == nil {
		t.Fatal("ForceMerge with a single worker must error")
	}
	job.Flush()
	if err := job.ForceSplit(frag); !errors.Is(err, ErrFlushed) {
		t.Fatalf("ForceSplit after Flush: err = %v, want ErrFlushed", err)
	}
}
