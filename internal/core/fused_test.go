package core

// Fused-path coverage at the TiMR boundary: a columnar FS input must
// reach the reducer's columnar fast path (timr.go), feed the fragment
// engine through FeedColBatch slice views, and still produce exactly
// the single-node result. The fragment heads carry a stateless filter
// so the reducer engines compile a fused kernel and the batch lands on
// its columnar entry point rather than a row transpose.

import (
	"math/rand"
	"testing"

	"timr/internal/mapreduce"
	"timr/internal/obs"
	"timr/internal/temporal"
)

// fusedChainPlan is the chained two-fragment pipeline of
// TestTiMRTwoStagePipeline with a stateless filter at the first
// fragment's head, placed just above the exchange so it compiles into
// the reducer engine as a fused run.
func fusedChainPlan(annotate bool) *temporal.Plan {
	src := temporal.Scan("clicks", clickSchema())
	var s *temporal.Plan = src
	if annotate {
		s = src.Exchange(temporal.PartitionBy{Cols: []string{"UserId"}})
	}
	perUser := s.Where(temporal.ColGtInt("AdId", 0)).
		GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(30).Count("C")
		}).ToPoint()
	if annotate {
		perUser = perUser.Exchange(temporal.PartitionBy{Cols: []string{"C"}})
	}
	return perUser.GroupApply([]string{"C"}, func(g *temporal.Plan) *temporal.Plan {
		return g.WithWindow(60).Count("N")
	})
}

func TestFusedTiMRColumnarInput(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rows := clickRows(r, 3000, 25, 6)
	want := singleNode(t, fusedChainPlan(false), "clicks", rows, 0)

	run := func(cfg Config) []temporal.Event {
		t.Helper()
		tm := New(mapreduce.NewCluster(mapreduce.Config{Machines: 6}), cfg)
		cb := temporal.ColBatchFromRows(rows, clickSchema().Len())
		tm.Cluster.FS.Write("ds.clicks", mapreduce.SingleColumnarPartition(clickSchema(), cb, true))
		if _, err := tm.Run(fusedChainPlan(true), map[string]string{"clicks": "ds.clicks"}, "out"); err != nil {
			t.Fatal(err)
		}
		got, err := tm.ResultEvents("out")
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	if got := run(DefaultConfig()); !temporal.EventsEqual(got, want) {
		t.Fatalf("columnar-input TiMR %d events != single-node %d", len(got), len(want))
	}

	// Instrumented re-run: prove the reducer columnar fast path actually
	// fired. Observed engines compile interpreted, but the feed-path
	// detection and its counter are independent of fusion, so the same
	// input must take the same path and agree bit-for-bit.
	scope := obs.New("timr")
	cfg := DefaultConfig()
	cfg.Obs = scope
	if got := run(cfg); !temporal.EventsEqual(got, want) {
		t.Fatalf("instrumented columnar run diverges from single-node reference")
	}
	var feeds int64
	for _, p := range scope.Snapshot() {
		if p.Name == "columnar_feeds" {
			feeds += p.Value
		}
	}
	if feeds == 0 {
		t.Fatal("columnar input never hit the reducer columnar fast path; the test is vacuous")
	}
}
