// Package benchjson runs the repo's headline benchmarks (shuffle,
// spill, Fig. 15, Fig. 16, the engine feed path, the serving tier, the
// incremental-refresh delta-vs-full pair) and
// writes the results as machine-readable JSON — the perf trajectory
// file tracked across PRs. It shells out to `go test -bench` (stdlib
// only, no benchstat dependency) and parses the standard benchmark
// output format, keeping ns/op plus any custom metrics the benchmarks
// report (rows/s, events/sec, p99_us, ...).
//
// Both `timr bench-json` and the legacy cmd/benchjson front this
// package.
package benchjson

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Op      string             `json:"op"`                // benchmark name, GOMAXPROCS suffix stripped
	Package string             `json:"package"`           // Go package the benchmark lives in
	Iters   int64              `json:"iters"`             // b.N of the final run
	NsPerOp float64            `json:"ns_per_op"`         // wall time per op
	Metrics map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric values (rows/s, ...)
}

// benchLine matches e.g.
//
//	BenchmarkShuffle_1M_Parallel-8   3   152391505 ns/op   6880823 rows/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metricPair matches trailing "value unit" pairs after ns/op.
var metricPair = regexp.MustCompile(`([\d.eE+-]+) (\S+)`)

// Parse extracts benchmark results from `go test -bench` output.
func Parse(pkg string, out []byte, into *[]Result) {
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Op: strings.TrimPrefix(m[1], "Benchmark"), Package: pkg, Iters: iters, NsPerOp: ns}
		for _, mp := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(mp[1], 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[mp[2]] = v
		}
		*into = append(*into, r)
	}
}

// Run is one `go test -bench` invocation of the harness.
type Run struct {
	Pkg, Pattern, Benchtime string
}

// RunCLI is the bench-json entry point shared by the timr subcommand
// and the legacy cmd/benchjson wrapper. args are the flags after the
// command name.
func RunCLI(args []string) error {
	fs := flag.NewFlagSet("bench-json", flag.ContinueOnError)
	out := fs.String("out", "BENCH_pr10.json", "output JSON file")
	pattern := fs.String("bench", "Shuffle_1M|Spill_1M|FlattenResident|MergeRuns|MergeStableSort|Fig15|Fig16", "benchmark regexp")
	benchtime := fs.String("benchtime", "3x", "go test -benchtime value")
	feedtime := fs.String("feedbenchtime", "20x", "benchtime for the EngineFeed pair")
	servetime := fs.String("servebenchtime", "3x", "benchtime for the serving-tier benchmark")
	if err := fs.Parse(args); err != nil {
		return err
	}

	runs := []Run{
		{"./internal/mapreduce", *pattern, *benchtime},
		{"./internal/core", *pattern, *benchtime},
		{".", *pattern, *benchtime},
		// The engine feed-path pair finishes in microseconds per op; a
		// 3-iteration run is noise-dominated, so it gets more iterations.
		{".", "EngineFeed", *feedtime},
		// The serving tier: open-loop scoring latency and throughput.
		{"./internal/serve", "ServeOpenLoop", *servetime},
		// Incremental refresh: day 7 of the sliding window as a delta vs
		// a full recompute of the whole history.
		{"./internal/bt", "Refresh_", "3x"},
	}
	var results []Result
	for _, r := range runs {
		fmt.Fprintf(os.Stderr, "bench-json: %s -bench %q -benchtime %s\n", r.Pkg, r.Pattern, r.Benchtime)
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", r.Pattern, "-benchtime", r.Benchtime, r.Pkg)
		raw, err := cmd.CombinedOutput()
		if err != nil {
			return fmt.Errorf("bench-json: %s failed: %v\n%s", r.Pkg, err, raw)
		}
		Parse(r.Pkg, raw, &results)
	}
	if len(results) == 0 {
		return fmt.Errorf("bench-json: no benchmarks matched")
	}
	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench-json: wrote %d results to %s\n", len(results), *out)
	return nil
}
