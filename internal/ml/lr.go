// Package ml implements the model-building and scoring stage of the
// paper's BT pipeline (§IV-B.4): sparse logistic regression trained on
// balanced samples of (UBP, click) examples, CTR calibration against a
// validation set, and the CTR-lift / coverage evaluation used throughout
// the paper's Figures 21–23.
package ml

import (
	"math"
	"math/rand"
	"sort"

	"timr/internal/stats"
)

// Feature is one sparse dimension of a user behavior profile: the feature
// id (keyword/URL id after data reduction) and its weight (typically the
// count of occurrences within the profile window τ).
type Feature struct {
	ID  int64
	Val float64
}

// Example is one training observation: the UBP x_k at the time the ad was
// shown, and whether it was clicked (y_k). Features must be sorted by ID
// (SortFeatures normalizes).
type Example struct {
	Features []Feature
	Clicked  bool
}

// SortFeatures sorts a sparse vector by feature id, summing duplicates.
func SortFeatures(fs []Feature) []Feature {
	sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
	out := fs[:0]
	for _, f := range fs {
		if n := len(out); n > 0 && out[n-1].ID == f.ID {
			out[n-1].Val += f.Val
			continue
		}
		out = append(out, f)
	}
	return out
}

// LRConfig configures training.
type LRConfig struct {
	Epochs       int     // SGD passes (default 50)
	LearningRate float64 // initial step (default 0.1, decayed per epoch)
	L2           float64 // ridge penalty (default 1e-4)
	// Balance subsamples negatives to match the positive count before
	// training ("we create a balanced dataset by sampling the negative
	// examples", §IV-B.4). Calibrate afterwards to recover CTR estimates.
	Balance bool
	Seed    int64
}

// DefaultLRConfig mirrors the paper's setup.
func DefaultLRConfig() LRConfig {
	return LRConfig{Epochs: 50, LearningRate: 0.1, L2: 1e-4, Balance: true, Seed: 1}
}

// Model is a trained logistic-regression scorer: y = σ(w0 + wᵀx).
type Model struct {
	Bias    float64
	Weights map[int64]float64
	// Iterations actually run and final training loss, for diagnostics
	// and the learning-time experiment (§V-D).
	Epochs int
	Loss   float64
}

// TrainLR fits a logistic regression by SGD with per-epoch learning-rate
// decay. Training is deterministic for a fixed config and example order.
func TrainLR(examples []Example, cfg LRConfig) *Model {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	data := examples
	if cfg.Balance {
		data = BalanceExamples(examples, rng)
	}
	m := &Model{Weights: make(map[int64]float64)}
	if len(data) == 0 {
		return m
	}
	order := rng.Perm(len(data))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + 0.1*float64(epoch))
		var loss float64
		for _, i := range order {
			ex := data[i]
			p := m.score(ex.Features)
			y := 0.0
			if ex.Clicked {
				y = 1.0
			}
			g := p - y // d(logloss)/d(margin)
			m.Bias -= lr * g
			for _, f := range ex.Features {
				w := m.Weights[f.ID]
				m.Weights[f.ID] = w - lr*(g*f.Val+cfg.L2*w)
			}
			if ex.Clicked {
				loss -= math.Log(math.Max(p, 1e-12))
			} else {
				loss -= math.Log(math.Max(1-p, 1e-12))
			}
		}
		m.Loss = loss / float64(len(data))
		m.Epochs = epoch + 1
	}
	return m
}

// BalanceExamples keeps all positives and a uniform sample of negatives
// of equal size (all negatives if there are fewer).
func BalanceExamples(examples []Example, rng *rand.Rand) []Example {
	var pos, neg []Example
	for _, e := range examples {
		if e.Clicked {
			pos = append(pos, e)
		} else {
			neg = append(neg, e)
		}
	}
	if len(neg) > len(pos) && len(pos) > 0 {
		idx := rng.Perm(len(neg))[:len(pos)]
		sort.Ints(idx)
		sampled := make([]Example, len(idx))
		for i, j := range idx {
			sampled[i] = neg[j]
		}
		neg = sampled
	}
	return append(append([]Example(nil), pos...), neg...)
}

func (m *Model) score(fs []Feature) float64 {
	s := m.Bias
	for _, f := range fs {
		s += m.Weights[f.ID] * f.Val
	}
	return stats.Sigmoid(s)
}

// Predict returns σ(w0 + wᵀx): the model's click propensity for a UBP.
// On a balanced-trained model this is not the CTR — calibrate with
// Calibrator to compare across ads (§IV-B.4).
func (m *Model) Predict(fs []Feature) float64 { return m.score(fs) }

// NumWeights returns the model dimensionality (for the memory experiment).
func (m *Model) NumWeights() int { return len(m.Weights) }

// Calibrator maps raw balanced-model predictions to CTR estimates: "we
// compute predictions for a separate validation dataset, choose the k
// nearest validation examples with predictions closest to y, and estimate
// CTR as the fraction of positive examples in this set."
type Calibrator struct {
	preds  []float64 // sorted
	labels []bool    // aligned with preds
	k      int
}

// NewCalibrator indexes a validation set. k defaults to 100.
func NewCalibrator(preds []float64, labels []bool, k int) *Calibrator {
	if len(preds) != len(labels) {
		panic("ml: preds/labels length mismatch")
	}
	if k <= 0 {
		k = 100
	}
	idx := make([]int, len(preds))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return preds[idx[i]] < preds[idx[j]] })
	c := &Calibrator{k: k, preds: make([]float64, len(preds)), labels: make([]bool, len(labels))}
	for i, j := range idx {
		c.preds[i] = preds[j]
		c.labels[i] = labels[j]
	}
	return c
}

// CTR estimates the click-through rate at a raw prediction y via the k
// nearest validation predictions.
func (c *Calibrator) CTR(y float64) float64 {
	n := len(c.preds)
	if n == 0 {
		return 0
	}
	k := c.k
	if k > n {
		k = n
	}
	// Locate the insertion point, then expand a window of size k around it.
	pos := sort.SearchFloat64s(c.preds, y)
	lo, hi := pos, pos // window [lo, hi)
	for hi-lo < k {
		switch {
		case lo == 0:
			hi++
		case hi == n:
			lo--
		case y-c.preds[lo-1] <= c.preds[hi]-y:
			lo--
		default:
			hi++
		}
	}
	clicks := 0
	for i := lo; i < hi; i++ {
		if c.labels[i] {
			clicks++
		}
	}
	return float64(clicks) / float64(k)
}
