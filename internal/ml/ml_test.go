package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthExamples builds a linearly separable-ish task: clicking depends on
// feature 1 (positive) and feature 2 (negative).
func synthExamples(r *rand.Rand, n int) []Example {
	out := make([]Example, n)
	for i := range out {
		var fs []Feature
		score := -1.0
		if r.Intn(3) == 0 {
			fs = append(fs, Feature{ID: 1, Val: 1})
			score += 2.5
		}
		if r.Intn(3) == 0 {
			fs = append(fs, Feature{ID: 2, Val: 1})
			score -= 2.5
		}
		if r.Intn(2) == 0 {
			fs = append(fs, Feature{ID: 3, Val: 1}) // noise
		}
		p := 1 / (1 + math.Exp(-score))
		out[i] = Example{Features: SortFeatures(fs), Clicked: r.Float64() < p}
	}
	return out
}

func TestSortFeatures(t *testing.T) {
	fs := SortFeatures([]Feature{{ID: 3, Val: 1}, {ID: 1, Val: 2}, {ID: 3, Val: 4}})
	if len(fs) != 2 || fs[0].ID != 1 || fs[1].ID != 3 || fs[1].Val != 5 {
		t.Fatalf("fs = %v", fs)
	}
}

func TestTrainLRLearnsSigns(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := TrainLR(synthExamples(r, 4000), DefaultLRConfig())
	if m.Weights[1] <= 0 {
		t.Errorf("w1 = %v, want positive", m.Weights[1])
	}
	if m.Weights[2] >= 0 {
		t.Errorf("w2 = %v, want negative", m.Weights[2])
	}
	if math.Abs(m.Weights[3]) >= math.Abs(m.Weights[1]) {
		t.Errorf("noise weight %v should stay small vs %v", m.Weights[3], m.Weights[1])
	}
	if m.Epochs != 50 {
		t.Errorf("epochs = %d", m.Epochs)
	}
}

func TestTrainLRPredictOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := TrainLR(synthExamples(r, 4000), DefaultLRConfig())
	pPos := m.Predict([]Feature{{ID: 1, Val: 1}})
	pNeg := m.Predict([]Feature{{ID: 2, Val: 1}})
	pNone := m.Predict(nil)
	if !(pPos > pNone && pNone > pNeg) {
		t.Errorf("ordering violated: %v, %v, %v", pPos, pNone, pNeg)
	}
}

func TestTrainLRDeterministic(t *testing.T) {
	r1 := rand.New(rand.NewSource(3))
	r2 := rand.New(rand.NewSource(3))
	m1 := TrainLR(synthExamples(r1, 500), DefaultLRConfig())
	m2 := TrainLR(synthExamples(r2, 500), DefaultLRConfig())
	if m1.Bias != m2.Bias || len(m1.Weights) != len(m2.Weights) {
		t.Fatal("training is not deterministic")
	}
	for k, v := range m1.Weights {
		if m2.Weights[k] != v {
			t.Fatalf("weight %d differs", k)
		}
	}
}

func TestTrainLREmptyAndDegenerate(t *testing.T) {
	m := TrainLR(nil, DefaultLRConfig())
	if m.Predict(nil) != 0.5 {
		t.Error("empty model must predict 0.5")
	}
	// All negative: balanced set keeps them; model should predict low.
	var negs []Example
	for i := 0; i < 50; i++ {
		negs = append(negs, Example{Clicked: false})
	}
	m = TrainLR(negs, DefaultLRConfig())
	if m.Predict(nil) >= 0.5 {
		t.Errorf("all-negative model predicts %v", m.Predict(nil))
	}
}

func TestBalanceExamples(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var ex []Example
	for i := 0; i < 10; i++ {
		ex = append(ex, Example{Clicked: true})
	}
	for i := 0; i < 990; i++ {
		ex = append(ex, Example{Clicked: false})
	}
	b := BalanceExamples(ex, r)
	var pos, neg int
	for _, e := range b {
		if e.Clicked {
			pos++
		} else {
			neg++
		}
	}
	if pos != 10 || neg != 10 {
		t.Errorf("balance = %d pos, %d neg", pos, neg)
	}
	// Fewer negatives than positives: keep all.
	b2 := BalanceExamples(ex[:12], r) // 10 pos, 2 neg
	if len(b2) != 12 {
		t.Errorf("len = %d", len(b2))
	}
}

func TestCalibrator(t *testing.T) {
	// Validation: predictions 0.0..0.99; an example clicks iff pred>=0.5.
	var preds []float64
	var labels []bool
	for i := 0; i < 100; i++ {
		p := float64(i) / 100
		preds = append(preds, p)
		labels = append(labels, p >= 0.5)
	}
	c := NewCalibrator(preds, labels, 10)
	if ctr := c.CTR(0.95); ctr != 1.0 {
		t.Errorf("CTR(0.95) = %v", ctr)
	}
	if ctr := c.CTR(0.05); ctr != 0.0 {
		t.Errorf("CTR(0.05) = %v", ctr)
	}
	mid := c.CTR(0.5)
	if mid < 0.3 || mid > 0.7 {
		t.Errorf("CTR(0.5) = %v", mid)
	}
}

func TestCalibratorEdgeCases(t *testing.T) {
	c := NewCalibrator(nil, nil, 5)
	if c.CTR(0.5) != 0 {
		t.Error("empty calibrator")
	}
	c2 := NewCalibrator([]float64{0.3}, []bool{true}, 10)
	if c2.CTR(0.9) != 1.0 {
		t.Error("k larger than n must clamp")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths must panic")
		}
	}()
	NewCalibrator([]float64{1}, nil, 1)
}

func TestPropertyCalibratorMonotoneOnSeparableData(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var preds []float64
		var labels []bool
		for i := 0; i < 200; i++ {
			p := r.Float64()
			preds = append(preds, p)
			labels = append(labels, r.Float64() < p)
		}
		c := NewCalibrator(preds, labels, 50)
		// Calibrated CTR should roughly increase with prediction.
		return c.CTR(0.9) >= c.CTR(0.1)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestLiftCoverageCurve(t *testing.T) {
	// Perfect model: predictions equal to click indicator.
	preds := []float64{0.9, 0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}
	clicked := []bool{true, true, false, false, false, false, false, false, false, false}
	curve := LiftCoverageCurve(preds, clicked, 10)
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	last := curve[len(curve)-1]
	if last.Coverage != 1.0 || math.Abs(last.Lift) > 1e-9 {
		t.Errorf("full coverage must have zero lift: %+v", last)
	}
	first := curve[0]
	// At 20% coverage the CTR is 1.0 vs base 0.2 → lift 4.0.
	if first.Coverage > 0.21 && first.Lift < 3.9 {
		t.Errorf("first point = %+v", first)
	}
	if CurveArea(curve) <= 0 {
		t.Error("perfect model must have positive area")
	}
}

func TestLiftCoverageRandomModelNearZero(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var preds []float64
	var clicked []bool
	for i := 0; i < 5000; i++ {
		preds = append(preds, r.Float64())
		clicked = append(clicked, r.Float64() < 0.1)
	}
	curve := LiftCoverageCurve(preds, clicked, 20)
	if a := CurveArea(curve); math.Abs(a) > 0.25 {
		t.Errorf("random model area = %v, want ≈0", a)
	}
}

func TestLiftAtCoverage(t *testing.T) {
	curve := []LiftPoint{
		{Coverage: 0.1, Lift: 4},
		{Coverage: 0.5, Lift: 1},
		{Coverage: 1.0, Lift: 0},
	}
	if l := LiftAtCoverage(curve, 0.05); l != 4 {
		t.Errorf("below first = %v", l)
	}
	if l := LiftAtCoverage(curve, 0.3); math.Abs(l-2.5) > 1e-9 {
		t.Errorf("interp = %v", l)
	}
	if l := LiftAtCoverage(curve, 1.0); l != 0 {
		t.Errorf("full = %v", l)
	}
	if LiftAtCoverage(nil, 0.5) != 0 {
		t.Error("empty curve")
	}
}

func TestPropertyCurveLastPointZeroLift(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%100 + 5
		var preds []float64
		var clicked []bool
		anyClick := false
		for i := 0; i < n; i++ {
			preds = append(preds, r.Float64())
			c := r.Float64() < 0.3
			anyClick = anyClick || c
			clicked = append(clicked, c)
		}
		if !anyClick {
			clicked[0] = true
		}
		curve := LiftCoverageCurve(preds, clicked, 10)
		last := curve[len(curve)-1]
		return last.Coverage == 1.0 && math.Abs(last.Lift) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestNumWeights(t *testing.T) {
	m := TrainLR([]Example{
		{Features: []Feature{{ID: 1, Val: 1}}, Clicked: true},
		{Features: []Feature{{ID: 2, Val: 1}}, Clicked: false},
	}, LRConfig{Epochs: 1, LearningRate: 0.1})
	if m.NumWeights() != 2 {
		t.Errorf("NumWeights = %d", m.NumWeights())
	}
}
