package ml

import (
	"math"
	"math/rand"
	"sort"

	"timr/internal/temporal"
)

// Snapshots of trained model state, for the incremental-refresh store.
//
// A refresh generation persists every frozen-window model and its
// calibrator so the next day's delta ingest can reuse them without
// retraining. The encoding rides the temporal codec: floats travel as
// IEEE-754 bit patterns through Uvarint (the same framing Value uses
// for KindFloat), weights are emitted in sorted id order so identical
// models produce identical bytes, and each record opens with a tag byte
// so a truncated or mixed-up payload fails decode instead of producing
// a silently wrong model.

const (
	tagModel      byte = 0x4D
	tagCalibrator byte = 0x4E
)

func putFloat(w *temporal.Encoder, f float64) { w.Uvarint(math.Float64bits(f)) }
func getFloat(r *temporal.Decoder) float64    { return math.Float64frombits(r.Uvarint()) }

// Snapshot appends the model's canonical encoding. Weight ids are
// sorted, so two models with equal (Bias, Weights, Epochs, Loss)
// snapshot to identical bytes regardless of map history.
func (m *Model) Snapshot(w *temporal.Encoder) {
	w.Byte(tagModel)
	putFloat(w, m.Bias)
	putFloat(w, m.Loss)
	w.Uvarint(uint64(m.Epochs))
	ids := make([]int64, 0, len(m.Weights))
	for id := range m.Weights {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.Varint(id)
		putFloat(w, m.Weights[id])
	}
}

// RestoreModel decodes one model snapshot. The returned model is fully
// owned by the caller (fresh map, no aliasing into the decoder's data).
func RestoreModel(r *temporal.Decoder) (*Model, error) {
	if err := r.Expect(tagModel, "ml model snapshot"); err != nil {
		return nil, err
	}
	m := &Model{Weights: make(map[int64]float64)}
	m.Bias = getFloat(r)
	m.Loss = getFloat(r)
	m.Epochs = int(r.Uvarint())
	n := r.Count("model weights")
	for i := 0; i < n; i++ {
		id := r.Varint()
		wv := getFloat(r)
		if r.Err() != nil {
			break
		}
		m.Weights[id] = wv
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// Snapshot appends the calibrator's validation index: the sorted
// prediction array, the aligned labels, and k. Restore rebuilds the
// exact same index, so CTR(y) after a round-trip is bit-identical.
func (c *Calibrator) Snapshot(w *temporal.Encoder) {
	w.Byte(tagCalibrator)
	w.Uvarint(uint64(c.k))
	w.Uvarint(uint64(len(c.preds)))
	for i := range c.preds {
		putFloat(w, c.preds[i])
		w.Bool(c.labels[i])
	}
}

// RestoreCalibrator decodes one calibrator snapshot. The preds array is
// stored already sorted (NewCalibrator sorted it), so no re-sort runs —
// the restored index is byte-for-byte the snapshotted one.
func RestoreCalibrator(r *temporal.Decoder) (*Calibrator, error) {
	if err := r.Expect(tagCalibrator, "ml calibrator snapshot"); err != nil {
		return nil, err
	}
	c := &Calibrator{k: int(r.Uvarint())}
	n := r.Count("calibrator validation points")
	c.preds = make([]float64, 0, n)
	c.labels = make([]bool, 0, n)
	for i := 0; i < n; i++ {
		p := getFloat(r)
		l := r.Bool()
		if r.Err() != nil {
			break
		}
		c.preds = append(c.preds, p)
		c.labels = append(c.labels, l)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if c.k <= 0 {
		return nil, r.Failf("calibrator snapshot: non-positive k %d", c.k)
	}
	for i := 1; i < len(c.preds); i++ {
		if c.preds[i] < c.preds[i-1] {
			return nil, r.Failf("calibrator snapshot: preds not sorted at %d", i)
		}
	}
	return c, nil
}

// TrainLRWarm fits a logistic regression like TrainLR but starts SGD
// from a previous model's parameters instead of zero — the delta
// refresher's cheap path when a window's example set changed little
// between days. Deterministic for fixed (examples, cfg, init); init is
// not mutated. With init == nil it is exactly TrainLR.
func TrainLRWarm(examples []Example, cfg LRConfig, init *Model) *Model {
	if init == nil {
		return TrainLR(examples, cfg)
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	data := examples
	if cfg.Balance {
		data = BalanceExamples(examples, rng)
	}
	m := &Model{Bias: init.Bias, Weights: make(map[int64]float64, len(init.Weights))}
	for id, w := range init.Weights {
		m.Weights[id] = w
	}
	if len(data) == 0 {
		return m
	}
	order := rng.Perm(len(data))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LearningRate / (1 + 0.1*float64(epoch))
		var loss float64
		for _, i := range order {
			ex := data[i]
			p := m.score(ex.Features)
			y := 0.0
			if ex.Clicked {
				y = 1.0
			}
			g := p - y
			m.Bias -= lr * g
			for _, f := range ex.Features {
				w := m.Weights[f.ID]
				m.Weights[f.ID] = w - lr*(g*f.Val+cfg.L2*w)
			}
			if ex.Clicked {
				loss -= math.Log(math.Max(p, 1e-12))
			} else {
				loss -= math.Log(math.Max(1-p, 1e-12))
			}
		}
		m.Loss = loss / float64(len(data))
		m.Epochs = epoch + 1
	}
	return m
}
