package ml

import "sort"

// LiftPoint is one point of a CTR-lift vs coverage curve (paper §V-D):
// at a prediction threshold, Coverage is the fraction of test impressions
// above it, CTR their click-through rate, and Lift the relative
// improvement (V − V0)/V0 over the overall test CTR V0 (zero at full
// coverage by construction).
type LiftPoint struct {
	Threshold float64
	Coverage  float64
	CTR       float64
	Lift      float64
}

// LiftCoverageCurve sweeps thresholds over test predictions and returns
// the lift/coverage tradeoff, from smallest coverage to full coverage.
// "The bigger the area under this plot, the more effective the
// advertising strategy."
func LiftCoverageCurve(preds []float64, clicked []bool, points int) []LiftPoint {
	if len(preds) != len(clicked) {
		panic("ml: preds/clicked length mismatch")
	}
	n := len(preds)
	if n == 0 {
		return nil
	}
	if points <= 0 {
		points = 20
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by descending prediction; ties broken by index for determinism.
	sort.Slice(idx, func(i, j int) bool {
		if preds[idx[i]] != preds[idx[j]] {
			return preds[idx[i]] > preds[idx[j]]
		}
		return idx[i] < idx[j]
	})
	totalClicks := 0
	for _, c := range clicked {
		if c {
			totalClicks++
		}
	}
	v0 := float64(totalClicks) / float64(n)

	var curve []LiftPoint
	clicks := 0
	next := 1
	for rank, i := range idx {
		if clicked[i] {
			clicks++
		}
		// Emit `points` evenly spaced coverage levels plus the full set.
		if (rank+1)*points >= next*n || rank == n-1 {
			cov := float64(rank+1) / float64(n)
			ctr := float64(clicks) / float64(rank+1)
			lift := 0.0
			if v0 > 0 {
				lift = (ctr - v0) / v0
			}
			curve = append(curve, LiftPoint{
				Threshold: preds[i],
				Coverage:  cov,
				CTR:       ctr,
				Lift:      lift,
			})
			for (rank+1)*points >= next*n {
				next++
			}
		}
	}
	return curve
}

// CurveArea integrates lift over coverage (trapezoidal, from coverage 0).
// Larger is better; used to compare data-reduction schemes in the
// Figure 22/23 reproduction.
func CurveArea(curve []LiftPoint) float64 {
	var area float64
	prevCov, prevLift := 0.0, 0.0
	if len(curve) > 0 {
		prevLift = curve[0].Lift // extend the first lift back to coverage 0
	}
	for _, p := range curve {
		area += (p.Coverage - prevCov) * (p.Lift + prevLift) / 2
		prevCov, prevLift = p.Coverage, p.Lift
	}
	return area
}

// LiftAtCoverage interpolates the curve's lift at a coverage level.
func LiftAtCoverage(curve []LiftPoint, cov float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	if cov <= curve[0].Coverage {
		return curve[0].Lift
	}
	for i := 1; i < len(curve); i++ {
		if cov <= curve[i].Coverage {
			a, b := curve[i-1], curve[i]
			if b.Coverage == a.Coverage {
				return b.Lift
			}
			f := (cov - a.Coverage) / (b.Coverage - a.Coverage)
			return a.Lift + f*(b.Lift-a.Lift)
		}
	}
	return curve[len(curve)-1].Lift
}
