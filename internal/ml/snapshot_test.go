package ml

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"timr/internal/temporal"
)

func randomModel(rng *rand.Rand) *Model {
	m := &Model{
		Bias:    rng.NormFloat64(),
		Loss:    math.Abs(rng.NormFloat64()),
		Epochs:  rng.Intn(80),
		Weights: make(map[int64]float64),
	}
	for i, n := 0, rng.Intn(40); i < n; i++ {
		m.Weights[rng.Int63n(1<<20)-1<<10] = rng.NormFloat64() * 10
	}
	return m
}

func modelRoundtrip(t *testing.T, m *Model) *Model {
	t.Helper()
	var w temporal.Encoder
	m.Snapshot(&w)
	r := temporal.NewDecoder(w.Bytes())
	got, err := RestoreModel(r)
	if err != nil {
		t.Fatalf("RestoreModel: %v", err)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("trailing bytes after model: %v", err)
	}
	return got
}

// Property: Snapshot→Restore is the identity on models, the restored
// weights are NaN-free when the source's were, and re-snapshotting the
// restored model reproduces the exact bytes (canonical encoding).
func TestModelSnapshotRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m := randomModel(rng)
		got := modelRoundtrip(t, m)
		if got.Bias != m.Bias || got.Loss != m.Loss || got.Epochs != m.Epochs {
			t.Fatalf("trial %d: scalar mismatch: got %+v want %+v", trial, got, m)
		}
		if !reflect.DeepEqual(got.Weights, m.Weights) {
			t.Fatalf("trial %d: weights mismatch", trial)
		}
		for id, wv := range got.Weights {
			if math.IsNaN(wv) {
				t.Fatalf("trial %d: NaN weight restored for id %d", trial, id)
			}
		}
		var a, b temporal.Encoder
		m.Snapshot(&a)
		got.Snapshot(&b)
		if string(a.Bytes()) != string(b.Bytes()) {
			t.Fatalf("trial %d: snapshot not canonical after round-trip", trial)
		}
	}
}

func TestModelSnapshotEmpty(t *testing.T) {
	m := &Model{Weights: make(map[int64]float64)}
	got := modelRoundtrip(t, m)
	if got.Bias != 0 || got.Loss != 0 || got.Epochs != 0 || len(got.Weights) != 0 {
		t.Fatalf("empty model round-trip changed state: %+v", got)
	}
	if got.Weights == nil {
		t.Fatal("restored model must carry a usable (non-nil) weight map")
	}
}

// A model that actually came out of TrainLR must serialize-restore to a
// scorer with bit-identical predictions.
func TestModelSnapshotPreservesPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var exs []Example
	for i := 0; i < 400; i++ {
		fs := []Feature{{ID: rng.Int63n(30), Val: 1}, {ID: rng.Int63n(30), Val: float64(1 + rng.Intn(3))}}
		exs = append(exs, Example{Features: SortFeatures(fs), Clicked: rng.Float64() < 0.3})
	}
	m := TrainLR(exs, DefaultLRConfig())
	got := modelRoundtrip(t, m)
	for i := 0; i < 50; i++ {
		fs := []Feature{{ID: rng.Int63n(30), Val: 1}}
		if a, b := m.Predict(fs), got.Predict(fs); a != b {
			t.Fatalf("prediction drifted after round-trip: %v vs %v", a, b)
		}
	}
}

// Property: the calibrator round-trip preserves the sorted validation
// index exactly, so CTR(y) is bit-identical for arbitrary queries.
func TestCalibratorSnapshotRoundtrip(t *testing.T) {
	f := func(seed int64, n uint8, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		preds := make([]float64, int(n)+1)
		labels := make([]bool, len(preds))
		for i := range preds {
			preds[i] = rng.Float64()
			labels[i] = rng.Float64() < 0.25
		}
		c := NewCalibrator(preds, labels, int(kRaw%32))
		var w temporal.Encoder
		c.Snapshot(&w)
		r := temporal.NewDecoder(w.Bytes())
		got, err := RestoreCalibrator(r)
		if err != nil || r.Done() != nil {
			return false
		}
		if got.k != c.k || !reflect.DeepEqual(got.preds, c.preds) || !reflect.DeepEqual(got.labels, c.labels) {
			return false
		}
		for i := 0; i < 20; i++ {
			y := rng.Float64()*1.4 - 0.2
			if got.CTR(y) != c.CTR(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsMixedTags(t *testing.T) {
	var w temporal.Encoder
	(&Model{Weights: map[int64]float64{}}).Snapshot(&w)
	if _, err := RestoreCalibrator(temporal.NewDecoder(w.Bytes())); err == nil {
		t.Fatal("RestoreCalibrator accepted a model snapshot")
	}
	w.Reset()
	NewCalibrator([]float64{0.5}, []bool{true}, 1).Snapshot(&w)
	if _, err := RestoreModel(temporal.NewDecoder(w.Bytes())); err == nil {
		t.Fatal("RestoreModel accepted a calibrator snapshot")
	}
}

func TestRestoreCalibratorRejectsUnsortedPreds(t *testing.T) {
	var w temporal.Encoder
	w.Byte(0x4E) // tagCalibrator
	w.Uvarint(5) // k
	w.Uvarint(2)
	w.Uvarint(math.Float64bits(0.9))
	w.Bool(true)
	w.Uvarint(math.Float64bits(0.1)) // out of order
	w.Bool(false)
	if _, err := RestoreCalibrator(temporal.NewDecoder(w.Bytes())); err == nil {
		t.Fatal("unsorted preds accepted")
	}
}

// Warm start from nil equals cold TrainLR; warm start from a trained
// model is deterministic and returns an independent copy of the init
// parameters (init unmutated).
func TestTrainLRWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var exs []Example
	for i := 0; i < 300; i++ {
		exs = append(exs, Example{
			Features: SortFeatures([]Feature{{ID: rng.Int63n(20), Val: 1}}),
			Clicked:  rng.Float64() < 0.4,
		})
	}
	cfg := DefaultLRConfig()
	cold := TrainLR(exs, cfg)
	if got := TrainLRWarm(exs, cfg, nil); !reflect.DeepEqual(got, cold) {
		t.Fatal("TrainLRWarm(nil init) differs from TrainLR")
	}

	initCopy := modelRoundtrip(t, cold) // deep copy via codec
	warmCfg := cfg
	warmCfg.Epochs = 5
	a := TrainLRWarm(exs, warmCfg, cold)
	b := TrainLRWarm(exs, warmCfg, cold)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("TrainLRWarm not deterministic")
	}
	if !reflect.DeepEqual(cold, initCopy) {
		t.Fatal("TrainLRWarm mutated its init model")
	}
	if reflect.DeepEqual(a, cold) {
		t.Fatal("warm training with fresh epochs should move the parameters")
	}
}
