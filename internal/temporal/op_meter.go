package temporal

import (
	"fmt"

	"timr/internal/obs"
)

// Operator instrumentation. CompileObserved wraps every physical operator
// with two thin meter sinks — one on each entry, one on the output — that
// feed per-operator metrics into an obs.Scope:
//
//	events_in    events delivered to the operator (both sides for binaries)
//	events_out   events the operator emitted
//	ctis         punctuations the operator propagated downstream
//	state        high watermark of live state (synopsis entries, open
//	             aggregate lifetimes, reorder/merge buffers, group count)
//	wm_lag       worst observed punctuation lag: max over CTIs of
//	             (max input LE seen) − (CTI time)
//
// Metric handles are resolved once at compile time; per-event cost is one
// atomic add per meter. Handles are shared across engine instances that
// compile the same plan into the same scope (TiMR runs one engine per
// partition), so per-operator metrics aggregate across partitions, while
// the per-instance fields (maxLE) stay engine-local and single-threaded.

// stateSizer is implemented by stateful operators that can report their
// current live state size (number of retained events/entries/groups).
type stateSizer interface{ liveState() int }

// opMetrics is the per-compiled-operator metric bundle.
type opMetrics struct {
	eventsIn  *obs.Counter
	eventsOut *obs.Counter
	ctis      *obs.Counter
	state     *obs.Gauge
	wmLag     *obs.Gauge
	sizer     stateSizer // nil for stateless operators
	maxLE     Time       // engine-local input high watermark
}

func newOpMetrics(sc *obs.Scope) *opMetrics {
	return &opMetrics{
		eventsIn:  sc.Counter("events_in"),
		eventsOut: sc.Counter("events_out"),
		ctis:      sc.Counter("ctis"),
		state:     sc.Gauge("state"),
		wmLag:     sc.Gauge("wm_lag"),
		maxLE:     MinTime,
	}
}

func (m *opMetrics) pollState() {
	if m.sizer != nil {
		m.state.SetMax(int64(m.sizer.liveState()))
	}
}

// meterIn sits on an operator entry: counts arrivals, tracks the input
// high watermark against punctuations, and polls live state after the
// operator has absorbed each delivery.
type meterIn struct {
	m    *opMetrics
	out  Sink
	bout BatchSink // lazily resolved batch view of out
}

func (s *meterIn) OnEvent(e Event) {
	s.m.eventsIn.Inc()
	if e.LE > s.m.maxLE {
		s.m.maxLE = e.LE
	}
	s.out.OnEvent(e)
	s.m.pollState()
}

func (s *meterIn) OnCTI(t Time) {
	if s.m.maxLE != MinTime && s.m.maxLE > t {
		s.m.wmLag.SetMax(int64(s.m.maxLE - t))
	}
	s.out.OnCTI(t)
	s.m.pollState()
}

// OnBatch meters a whole run with one counter add, then forwards the
// batch intact. Input LE is nondecreasing, so the run's high watermark is
// its last event. Live state is polled once per batch rather than per
// event: the state gauge remains a high-watermark, sampled more coarsely.
func (s *meterIn) OnBatch(b *Batch) {
	if n := len(b.Events); n > 0 {
		s.m.eventsIn.Add(int64(n))
		if le := b.Events[n-1].LE; le > s.m.maxLE {
			s.m.maxLE = le
		}
	}
	if b.HasCTI && s.m.maxLE != MinTime && s.m.maxLE > b.CTI {
		s.m.wmLag.SetMax(int64(s.m.maxLE - b.CTI))
	}
	if s.bout == nil {
		s.bout = AsBatchSink(s.out)
	}
	s.bout.OnBatch(b)
	s.m.pollState()
}

func (s *meterIn) OnFlush() { s.out.OnFlush() }

// meterOut sits on an operator (or pipeline source) output: counts events
// and propagated punctuations.
type meterOut struct {
	events *obs.Counter
	ctis   *obs.Counter
	out    Sink
	bout   BatchSink // lazily resolved batch view of out
}

func (s *meterOut) OnEvent(e Event) {
	s.events.Inc()
	s.out.OnEvent(e)
}

func (s *meterOut) OnCTI(t Time) {
	s.ctis.Inc()
	s.out.OnCTI(t)
}

// OnBatch meters a whole run with one counter add per metric.
func (s *meterOut) OnBatch(b *Batch) {
	if n := len(b.Events); n > 0 {
		s.events.Add(int64(n))
	}
	if b.HasCTI {
		s.ctis.Inc()
	}
	if s.bout == nil {
		s.bout = AsBatchSink(s.out)
	}
	s.bout.OnBatch(b)
}

func (s *meterOut) OnFlush() { s.out.OnFlush() }

// opName returns the deterministic scope name for a plan node:
// "opNN.Kind", with NN assigned by pre-order DFS from the root (root is
// op00). Determinism matters: snapshots from different runs of the same
// plan must line up row for row.
func (c *compiler) opName(n *Plan) string {
	return fmt.Sprintf("op%02d.%s", c.ids[n], n.Kind.String())
}
