package temporal

import (
	"container/heap"
	"sort"
)

// aggState is the incremental state of one snapshot aggregate. Insert and
// Remove must be exact inverses so that the sweep over snapshot boundaries
// yields the same result regardless of event interleaving. snapshot and
// restore serialize the accumulator itself (not a re-derivation from live
// rows): float accumulators are order-sensitive, so re-inserting rows in
// a canonical order would perturb sums by an ULP and break the exactness
// of recovery.
type aggState interface {
	Insert(Row)
	Remove(Row)
	Result() Value
	snapshot(w *SnapshotWriter)
	restore(r *SnapshotReader)
}

// ---- Count ----

type countState struct{ n int64 }

func (s *countState) Insert(Row)    { s.n++ }
func (s *countState) Remove(Row)    { s.n-- }
func (s *countState) Result() Value { return Int(s.n) }

func (s *countState) snapshot(w *SnapshotWriter) { w.Varint(s.n) }
func (s *countState) restore(r *SnapshotReader)  { s.n = r.Varint() }

// ---- Sum / Avg ----

type sumState struct {
	col     int
	isFloat bool
	i       int64
	f       float64
}

func (s *sumState) Insert(r Row) {
	if s.isFloat {
		s.f += r[s.col].AsFloat()
	} else {
		s.i += r[s.col].AsInt()
	}
}
func (s *sumState) Remove(r Row) {
	if s.isFloat {
		s.f -= r[s.col].AsFloat()
	} else {
		s.i -= r[s.col].AsInt()
	}
}
func (s *sumState) Result() Value {
	if s.isFloat {
		return Float(s.f)
	}
	return Int(s.i)
}

func (s *sumState) snapshot(w *SnapshotWriter) {
	w.Varint(s.i)
	w.Value(Float(s.f))
}

func (s *sumState) restore(r *SnapshotReader) {
	s.i = r.Varint()
	if v := r.Value(); v.Kind() == KindFloat {
		s.f = v.AsFloat()
	}
}

type avgState struct {
	col int
	n   int64
	f   float64
}

func (s *avgState) Insert(r Row) { s.f += r[s.col].AsFloat(); s.n++ }
func (s *avgState) Remove(r Row) { s.f -= r[s.col].AsFloat(); s.n-- }
func (s *avgState) Result() Value {
	if s.n == 0 {
		return Float(0)
	}
	return Float(s.f / float64(s.n))
}

func (s *avgState) snapshot(w *SnapshotWriter) {
	w.Varint(s.n)
	w.Value(Float(s.f))
}

func (s *avgState) restore(r *SnapshotReader) {
	s.n = r.Varint()
	if v := r.Value(); v.Kind() == KindFloat {
		s.f = v.AsFloat()
	}
}

// ---- Min / Max ----
//
// Min/Max cannot be maintained by a single accumulator under removals; we
// keep a multiset (Value is comparable, so it keys a map directly) plus a
// lazily-cleaned heap of candidate extrema.

type valueHeap struct {
	vals []Value
	max  bool
}

func (h valueHeap) Len() int { return len(h.vals) }
func (h valueHeap) Less(i, j int) bool {
	c := h.vals[i].Compare(h.vals[j])
	if h.max {
		return c > 0
	}
	return c < 0
}
func (h valueHeap) Swap(i, j int)       { h.vals[i], h.vals[j] = h.vals[j], h.vals[i] }
func (h *valueHeap) Push(x interface{}) { h.vals = append(h.vals, x.(Value)) }
func (h *valueHeap) Pop() interface{} {
	old := h.vals
	n := len(old)
	v := old[n-1]
	h.vals = old[:n-1]
	return v
}

type minMaxState struct {
	col    int
	counts map[Value]int
	h      valueHeap
}

func newMinMaxState(col int, max bool) *minMaxState {
	return &minMaxState{col: col, counts: make(map[Value]int), h: valueHeap{max: max}}
}

func (s *minMaxState) Insert(r Row) {
	v := r[s.col]
	s.counts[v]++
	heap.Push(&s.h, v)
}

func (s *minMaxState) Remove(r Row) {
	v := r[s.col]
	if n := s.counts[v]; n <= 1 {
		delete(s.counts, v)
	} else {
		s.counts[v] = n - 1
	}
}

func (s *minMaxState) Result() Value {
	for s.h.Len() > 0 {
		top := s.h.vals[0]
		if s.counts[top] > 0 {
			return top
		}
		heap.Pop(&s.h) // stale entry from a removed event
	}
	return Null
}

// snapshot writes the live multiset in value order. The lazily-cleaned
// candidate heap is not serialized: it only ever holds a superset of the
// live values, so rebuilding it with exactly one entry per distinct live
// value is behaviorally equivalent (Result prunes stale entries lazily
// either way).
func (s *minMaxState) snapshot(w *SnapshotWriter) {
	vals := make([]Value, 0, len(s.counts))
	for v := range s.counts {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	w.Uvarint(uint64(len(vals)))
	for _, v := range vals {
		w.Value(v)
		w.Varint(int64(s.counts[v]))
	}
}

func (s *minMaxState) restore(r *SnapshotReader) {
	n := r.Count("min/max multiset")
	for i := 0; i < n && r.Err() == nil; i++ {
		v := r.Value()
		c := int(r.Varint())
		if r.Err() != nil {
			return
		}
		s.counts[v] = c
		s.h.vals = append(s.h.vals, v)
	}
	heap.Init(&s.h)
}

func newAggState(kind AggKind, col int, colKind Kind) aggState {
	switch kind {
	case AggCount:
		return &countState{}
	case AggSum:
		return &sumState{col: col, isFloat: colKind == KindFloat}
	case AggAvg:
		return &avgState{col: col}
	case AggMin:
		return newMinMaxState(col, false)
	case AggMax:
		return newMinMaxState(col, true)
	}
	panic("temporal: unknown aggregate")
}

// expiration orders active events by their right endpoint for the sweep.
type expiration struct {
	re  Time
	row Row
}

type expHeap []expiration

func (h expHeap) Len() int            { return len(h) }
func (h expHeap) Less(i, j int) bool  { return h[i].re < h[j].re }
func (h expHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expHeap) Push(x interface{}) { *h = append(*h, x.(expiration)) }
func (h *expHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// aggregateOp implements snapshot aggregation (paper §II-A.2): it sweeps
// the LE-ordered input, maintaining the set of active events (those whose
// lifetime contains the sweep position) and emits one output event per
// maximal interval over which the aggregate is constant and the active set
// is non-empty.
//
// On OnCTI(t) the operator force-closes the open segment at t. This
// fragments logically-contiguous output events at CTI boundaries — a
// semantically neutral transformation under snapshot semantics (see
// Coalesce) — and is what gives every operator the invariant
// "output watermark >= input watermark" that GroupApply's order-restoring
// merge relies on.
type aggregateOp struct {
	state  aggState
	exp    expHeap
	active int
	cur    Time // start of the open segment
	arena  rowArena
	out    Sink
}

func newAggregateOp(state aggState, out Sink) *aggregateOp {
	return &aggregateOp{state: state, cur: MinTime, out: out}
}

// liveState counts open lifetimes awaiting expiration — the sweep's
// working set.
func (a *aggregateOp) liveState() int { return len(a.exp) }

func (a *aggregateOp) emitSegment(upto Time) {
	if a.active > 0 && a.cur < upto {
		payload := a.arena.alloc(1)
		payload[0] = a.state.Result()
		a.out.OnEvent(Event{LE: a.cur, RE: upto, Payload: payload})
	}
	if upto > a.cur {
		a.cur = upto
	}
}

// advanceTo processes all expirations at or before t, emitting the
// segments they close.
func (a *aggregateOp) advanceTo(t Time) {
	for len(a.exp) > 0 && a.exp[0].re <= t {
		re := a.exp[0].re
		a.emitSegment(re)
		for len(a.exp) > 0 && a.exp[0].re == re {
			x := heap.Pop(&a.exp).(expiration)
			a.state.Remove(x.row)
			a.active--
		}
	}
}

func (a *aggregateOp) OnEvent(e Event) {
	a.advanceTo(e.LE)
	a.emitSegment(e.LE)
	a.state.Insert(e.Payload)
	heap.Push(&a.exp, expiration{re: e.RE, row: e.Payload})
	a.active++
	a.cur = maxTime(a.cur, e.LE)
}

// OnBatch consumes a whole run in one call; the sweep itself is
// inherently event-at-a-time (each arrival can close segments), so the
// batch win is the amortized upstream dispatch and metering.
func (a *aggregateOp) OnBatch(b *Batch) { loopBatch(a, b) }

func (a *aggregateOp) OnCTI(t Time) {
	a.advanceTo(t)
	a.emitSegment(t) // force-close so downstream watermark can advance
	a.out.OnCTI(t)
}

func (a *aggregateOp) OnFlush() {
	a.advanceTo(MaxTime)
	a.out.OnFlush()
}

// Snapshot serializes the sweep position, the open-lifetime heap (in
// canonical (re, row) order — a re-sorted expHeap is still a valid
// min-heap, and expirations at equal re are removed together, so the
// tie order is output-neutral) and the accumulator itself.
func (a *aggregateOp) Snapshot(w *SnapshotWriter) {
	w.Byte(ckAggregate)
	w.Varint(a.cur)
	exp := append(expHeap(nil), a.exp...)
	sort.Slice(exp, func(i, j int) bool {
		if exp[i].re != exp[j].re {
			return exp[i].re < exp[j].re
		}
		return compareRows(exp[i].row, exp[j].row) < 0
	})
	w.Uvarint(uint64(len(exp)))
	for _, x := range exp {
		w.Varint(x.re)
		w.Row(x.row)
	}
	a.state.snapshot(w)
}

func (a *aggregateOp) Restore(r *SnapshotReader) error {
	if err := r.Expect(ckAggregate, "aggregate"); err != nil {
		return err
	}
	a.cur = r.Varint()
	n := r.Count("aggregate expirations")
	for i := 0; i < n && r.Err() == nil; i++ {
		re := r.Varint()
		a.exp = append(a.exp, expiration{re: re, row: r.Row()})
	}
	a.active = len(a.exp) // every open lifetime is one active event
	a.state.restore(r)
	return r.Err()
}

func maxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

func minTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Coalesce merges abutting events with equal payloads ([a,b)+[b,c) with
// the same row become [a,c)). Snapshot aggregates fragmented by CTIs are
// restored to canonical form; the input must be sorted (SortEvents order).
func Coalesce(events []Event) []Event {
	if len(events) == 0 {
		return events
	}
	// Group by payload, then merge abutting lifetimes per payload. For the
	// common case (already mostly ordered), a single pass keyed on payload
	// via a pending map is enough: fragments of one logical event are
	// emitted in LE order.
	SortEvents(events)
	out := make([]Event, 0, len(events))
	pending := make(map[uint64][]int) // payload hash -> indexes in out still extendable
	for _, e := range events {
		h := HashSeed
		for _, v := range e.Payload {
			h = v.Hash(h)
		}
		// Input is LE-ordered, so a candidate whose RE already fell below
		// the current LE can never abut anything later — drop it while
		// scanning, keeping each hash bucket at its live size (the sweep
		// stays O(n) instead of O(n·k) on CTI-fragmented aggregates).
		merged := false
		cand := pending[h]
		live := cand[:0]
		for _, i := range cand {
			if out[i].RE < e.LE {
				continue
			}
			live = append(live, i)
			if !merged && out[i].RE == e.LE && out[i].Payload.Equal(e.Payload) {
				out[i].RE = e.RE
				merged = true
			}
		}
		if !merged {
			out = append(out, e)
			live = append(live, len(out)-1)
		}
		if len(live) > 0 {
			pending[h] = live
		} else {
			delete(pending, h)
		}
	}
	SortEvents(out)
	return out
}
