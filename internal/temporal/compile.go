package temporal

import (
	"fmt"

	"timr/internal/obs"
)

// Pipeline is a compiled physical query: one entry Sink per named source
// plus the caller-supplied output sink. Feeding events (nondecreasing LE
// per source), CTIs and a final flush drives the query to completion.
type Pipeline struct {
	inputs  map[string]Sink
	schemas map[string]*Schema
	out     *Schema
	binputs map[string]BatchSink    // batch views of inputs, resolved lazily
	cinputs map[string]ColBatchSink // columnar entries (nil = source has none)
	// ckpts lists the pipeline's stateful operators in deterministic
	// pre-order DFS plan order — the walk Engine.Checkpoint/Restore use, so
	// a snapshot taken from one compile of a plan restores into another.
	// Stateless operators simply never appear here.
	ckpts []Checkpointer
}

// Input returns the entry sink for the named source.
func (p *Pipeline) Input(source string) Sink {
	in, ok := p.inputs[source]
	if !ok {
		panic("temporal: pipeline has no source " + source)
	}
	return in
}

// BatchInput returns the batch-granularity entry for the named source,
// resolving (and caching) the batch view of the entry sink so repeated
// FeedBatch calls pay no per-call assertion or adapter allocation.
func (p *Pipeline) BatchInput(source string) BatchSink {
	if in, ok := p.binputs[source]; ok {
		return in
	}
	in := AsBatchSink(p.Input(source))
	if p.binputs == nil {
		p.binputs = make(map[string]BatchSink)
	}
	p.binputs[source] = in
	return in
}

// ColInput returns the columnar entry for the named source, or nil when
// the source's entry sink cannot consume ColBatches directly (the head
// operator is not a fused stateless run — e.g. a stateful operator, a
// multi-consumer fan-out, or an instrumented compile). The result is
// cached; callers treat nil as "materialize rows and use FeedBatch".
func (p *Pipeline) ColInput(source string) ColBatchSink {
	if cs, ok := p.cinputs[source]; ok {
		return cs
	}
	cs, _ := p.Input(source).(ColBatchSink)
	if p.cinputs == nil {
		p.cinputs = make(map[string]ColBatchSink)
	}
	p.cinputs[source] = cs
	return cs
}

// Sources lists the pipeline's source names.
func (p *Pipeline) Sources() []string {
	out := make([]string, 0, len(p.inputs))
	for s := range p.inputs {
		out = append(out, s)
	}
	return out
}

// SourceSchema returns the schema of a named source.
func (p *Pipeline) SourceSchema(source string) *Schema { return p.schemas[source] }

// OutSchema returns the schema of the pipeline's output events.
func (p *Pipeline) OutSchema() *Schema { return p.out }

// AdvanceAll broadcasts a CTI to every source entry. Callers use it to
// bound operator state and unblock merge operators between events.
func (p *Pipeline) AdvanceAll(t Time) {
	for _, in := range p.inputs {
		in.OnCTI(t)
	}
}

// FlushAll signals end-of-stream on every source entry.
func (p *Pipeline) FlushAll() {
	for _, in := range p.inputs {
		in.OnFlush()
	}
}

// Compile turns a logical plan into a physical pipeline delivering results
// to out. Plans may be DAGs; shared nodes become physical multicasts.
// Maximal runs of stateless operators are fused into single kernels with
// a columnar entry point (op_fused.go); checkpoint layout is unaffected.
func Compile(root *Plan, out Sink) (*Pipeline, error) {
	return CompileObserved(root, out, nil)
}

// CompileInterpreted is Compile with operator fusion disabled: every
// plan node becomes its own physical operator, exactly as before the
// fusion pass existed. The differential gate (make fusegate) runs fused
// and interpreted compiles of the same plan side by side and requires
// bit-identical output; checkpoints are interchangeable between the two.
func CompileInterpreted(root *Plan, out Sink) (*Pipeline, error) {
	return compile(root, out, nil, false)
}

// CompileObserved is Compile with per-operator instrumentation: every
// physical operator reports events in/out, propagated CTIs, live state
// size, and watermark lag into a child of scope named "opNN.Kind" (NN =
// pre-order DFS position; see opName), and each source reports fed
// events/CTIs under "source.<name>". A nil scope compiles with zero
// instrumentation, identical to Compile. A non-nil scope disables
// fusion: per-operator metering needs per-operator boundaries.
func CompileObserved(root *Plan, out Sink, scope *obs.Scope) (*Pipeline, error) {
	return compile(root, out, scope, scope == nil)
}

func compile(root *Plan, out Sink, scope *obs.Scope, fuse bool) (*Pipeline, error) {
	c := &compiler{
		parents: make(map[*Plan][]parentRef),
		ops:     make(map[*Plan][]Sink),
		insts:   make(map[*Plan]any),
		root:    root,
		rootOut: out,
		obs:     scope,
		fuse:    fuse,
	}
	c.collectParents(root, make(map[*Plan]bool))
	if scope != nil {
		// Operator ids come from a deterministic pre-order walk, not from
		// build order (map iteration below is randomized).
		c.ids = make(map[*Plan]int)
		walkInputs(root, func(n *Plan) { c.ids[n] = len(c.ids) })
	}
	pl := &Pipeline{inputs: make(map[string]Sink), schemas: make(map[string]*Schema), out: root.Out}
	// Group scan leaves by source: one feed may supply several leaves.
	// Only this plan's own DAG is walked; GroupApply sub-plans have their
	// own leaves and are compiled per group.
	bySource := make(map[string][]*Plan)
	walkInputs(root, func(n *Plan) {
		if n.Kind == OpScan {
			bySource[n.Source] = append(bySource[n.Source], n)
		}
		if n.Kind == OpGroupInput {
			panic("temporal: GroupInput leaf outside a GroupApply sub-plan")
		}
	})
	if len(bySource) == 0 {
		return nil, fmt.Errorf("temporal: plan has no scan leaves")
	}
	for source, leaves := range bySource {
		sinks := make([]Sink, len(leaves))
		for i, leaf := range leaves {
			sinks[i] = c.outputSink(leaf)
			if !leaf.Out.Equal(leaves[0].Out) {
				return nil, fmt.Errorf("temporal: source %s scanned with conflicting schemas", source)
			}
		}
		in := fanOut(sinks)
		if scope != nil {
			sc := scope.Child("source." + source)
			in = &meterOut{events: sc.Counter("events"), ctis: sc.Counter("ctis"), out: in}
		}
		pl.inputs[source] = in
		pl.schemas[source] = leaves[0].Out
	}
	// Collect stateful operators in pre-order DFS plan order (build order
	// above follows randomized map iteration and cannot be used).
	walkInputs(root, func(n *Plan) {
		if ck, ok := c.insts[n].(Checkpointer); ok {
			pl.ckpts = append(pl.ckpts, ck)
		}
	})
	return pl, nil
}

type parentRef struct {
	node *Plan
	idx  int
}

type compiler struct {
	parents map[*Plan][]parentRef
	ops     map[*Plan][]Sink // node -> entry sink per input position
	insts   map[*Plan]any    // node -> physical operator instance
	root    *Plan
	rootOut Sink
	obs     *obs.Scope    // nil = no instrumentation
	ids     map[*Plan]int // deterministic operator ids (obs only)
	fuse    bool          // collapse stateless runs into fused kernels
}

func (c *compiler) collectParents(n *Plan, seen map[*Plan]bool) {
	if seen[n] {
		return
	}
	seen[n] = true
	for i, in := range n.Inputs {
		c.parents[in] = append(c.parents[in], parentRef{node: n, idx: i})
		c.collectParents(in, seen)
	}
	// Sub-plans are compiled per group by the GroupApply factory, with
	// their own compiler; they are not visited here.
}

// outputSink returns the sink that consumes node n's output stream.
func (c *compiler) outputSink(n *Plan) Sink {
	var sinks []Sink
	if n == c.root {
		sinks = append(sinks, c.rootOut)
	}
	for _, p := range c.parents[n] {
		sinks = append(sinks, c.inputSink(p.node, p.idx))
	}
	if len(sinks) == 0 {
		panic("temporal: orphan plan node " + n.Kind.String())
	}
	return fanOut(sinks)
}

func fanOut(sinks []Sink) Sink {
	if len(sinks) == 1 {
		return sinks[0]
	}
	return &multicast{outs: sinks}
}

// inputSink returns the entry sink for the idx-th input of node n,
// building n's physical operator on first use.
func (c *compiler) inputSink(n *Plan, idx int) Sink {
	entries, ok := c.ops[n]
	if !ok {
		entries = c.build(n)
		c.ops[n] = entries
	}
	return entries[idx]
}

// build constructs the physical operator for n, wired to n's downstream,
// and returns the entry sink(s) for its input position(s).
func (c *compiler) build(n *Plan) []Sink {
	if run := c.fuseRun(n); run != nil {
		return c.buildFused(run)
	}
	out := c.outputSink(n)
	if n.Kind == OpExchange {
		// Logical annotation only; a single-node pipeline passes through,
		// and metering it would double-count its input's events.
		return []Sink{out}
	}
	var m *opMetrics
	if c.obs != nil {
		m = newOpMetrics(c.obs.Child(c.opName(n)))
		out = &meterOut{events: m.eventsOut, ctis: m.ctis, out: out}
	}
	entries, op := c.buildOp(n, out)
	c.insts[n] = op
	if m != nil {
		m.sizer, _ = op.(stateSizer)
		for i := range entries {
			entries[i] = &meterIn{m: m, out: entries[i]}
		}
	}
	return entries
}

// fusable reports whether n can join a fused stateless run. LifePoint
// alterLifetime is excluded: its continuation-suppression table makes it
// stateful (it checkpoints real state), so it stays an interpreted
// operator and breaks runs around it. OpExchange breaks runs too — it
// marks a distribution boundary.
func fusable(n *Plan) bool {
	switch n.Kind {
	case OpSelect, OpProject:
		return true
	case OpAlterLifetime:
		return n.Mode != LifePoint
	}
	return false
}

// fuseRun returns the maximal fused run headed at n, in dataflow order:
// n, then each sole consumer downstream while it is also fusable. Nil
// when fusion is off or n itself is not fusable. Demand-driven build
// order guarantees mid-run members are never built separately: their
// only consumer is inside the kernel, so no other node ever asks for
// their entry sink.
func (c *compiler) fuseRun(n *Plan) []*Plan {
	if !c.fuse || !fusable(n) {
		return nil
	}
	run := []*Plan{n}
	cur := n
	for cur != c.root && len(c.parents[cur]) == 1 {
		p := c.parents[cur][0].node
		if !fusable(p) {
			break
		}
		run = append(run, p)
		cur = p
	}
	return run
}

// buildFused compiles a fused run into one kernel wired to the run's
// downstream. Fused alterLifetime members register stand-in operator
// instances so the checkpoint walk (pipeline.ckpts, pre-order DFS over
// the logical plan) sees the same Checkpointer sequence as an unfused
// compile: non-LifePoint alters carry no state, so a stand-in snapshots
// and restores the identical empty section a live operator would —
// snapshots stay interchangeable between fused and interpreted engines.
func (c *compiler) buildFused(run []*Plan) []Sink {
	last := run[len(run)-1]
	out := c.outputSink(last)
	f := newFusedOp(run, out)
	entries := []Sink{f}
	for _, m := range run {
		if m.Kind == OpAlterLifetime {
			c.insts[m] = &alterLifetimeOp{mode: m.Mode, window: m.Window, hop: m.Hop, shift: m.Shift}
		} else {
			c.insts[m] = f
		}
		c.ops[m] = entries
	}
	return entries
}

// buildOp constructs the physical operator itself, returning its entry
// sink(s) plus the operator instance (for state-size instrumentation).
func (c *compiler) buildOp(n *Plan, out Sink) ([]Sink, any) {
	in := n.Inputs[0].Out // schema of the first input
	switch n.Kind {
	case OpSelect:
		f := &filterOp{pred: n.Pred.compile(in), out: out}
		return []Sink{f}, f
	case OpProject:
		fns := make([]func(Row) Value, len(n.Projs))
		for i, pr := range n.Projs {
			if pr.Source != "" {
				col := in.MustIndex(pr.Source)
				fns[i] = func(r Row) Value { return r[col] }
			} else {
				fns[i] = pr.Make(in.Indexes(pr.Cols...))
			}
		}
		p := &projectOp{fns: fns, out: out}
		return []Sink{p}, p
	case OpAlterLifetime:
		a := &alterLifetimeOp{mode: n.Mode, window: n.Window, hop: n.Hop, shift: n.Shift, out: out}
		return []Sink{a}, a
	case OpAggregate:
		col := -1
		var kind Kind
		if n.AggCol != "" {
			col = in.MustIndex(n.AggCol)
			kind = in.Field(col).Kind
		}
		a := newAggregateOp(newAggState(n.Agg, col, kind), out)
		return []Sink{a}, a
	case OpGroupApply:
		keys := in.Indexes(n.Keys...)
		sub := n.Sub
		factory := func(groupOut Sink) (Sink, []Checkpointer) {
			entry, cks, err := compileSub(sub, groupOut)
			if err != nil {
				panic(err) // sub-plan validated at first compile; cannot fail per group
			}
			return entry, cks
		}
		g := newGroupApplyOp(keys, factory, sub.MaxWindow(), out)
		return []Sink{g}, g
	case OpUnion:
		u := newUnionOp(out)
		return []Sink{u.m.input(sideLeft), u.m.input(sideRight)}, u
	case OpTemporalJoin:
		rin := n.Inputs[1].Out
		var cond func(l, r Row) bool
		if n.JoinCond != nil {
			cond = n.JoinCond.Make(in.Indexes(n.JoinCond.LeftCols...), rin.Indexes(n.JoinCond.RightCols...))
		}
		j := newTemporalJoinOp(in.Indexes(n.Keys...), rin.Indexes(n.RightKeys...), cond, out)
		return []Sink{j.m.input(sideLeft), j.m.input(sideRight)}, j
	case OpAntiSemiJoin:
		rin := n.Inputs[1].Out
		a := newAntiSemiJoinOp(in.Indexes(n.Keys...), rin.Indexes(n.RightKeys...), out)
		return []Sink{a.m.input(sideLeft), a.m.input(sideRight)}, a
	case OpUDO:
		u := newHoppingUDOOp(n.UDO, out)
		return []Sink{u}, u
	default:
		panic("temporal: cannot build operator for " + n.Kind.String())
	}
}

// walkInputs visits the plan DAG following only Inputs edges (not
// GroupApply sub-plans), each shared node once.
func walkInputs(root *Plan, visit func(*Plan)) {
	seen := make(map[*Plan]bool)
	var rec func(n *Plan)
	rec = func(n *Plan) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		visit(n)
		for _, c := range n.Inputs {
			rec(c)
		}
	}
	rec(root)
}

// compileSub compiles a GroupApply sub-plan (rooted above an OpGroupInput
// leaf) and returns the entry sink feeding the group's sub-stream plus the
// sub-pipeline's stateful operators in pre-order DFS plan order (the order
// groupApplyOp snapshots nest them in).
func compileSub(root *Plan, out Sink) (Sink, []Checkpointer, error) {
	c := &compiler{
		parents: make(map[*Plan][]parentRef),
		ops:     make(map[*Plan][]Sink),
		insts:   make(map[*Plan]any),
		root:    root,
		rootOut: out,
	}
	c.collectParents(root, make(map[*Plan]bool))
	var leaves []*Plan
	walkInputs(root, func(n *Plan) {
		if n.Kind == OpGroupInput {
			leaves = append(leaves, n)
		}
		if n.Kind == OpScan {
			panic("temporal: Scan leaf inside a GroupApply sub-plan")
		}
	})
	if len(leaves) == 0 {
		return nil, nil, fmt.Errorf("temporal: sub-plan has no GroupInput leaf")
	}
	sinks := make([]Sink, len(leaves))
	for i, leaf := range leaves {
		sinks[i] = c.outputSink(leaf)
	}
	var cks []Checkpointer
	walkInputs(root, func(n *Plan) {
		if ck, ok := c.insts[n].(Checkpointer); ok {
			cks = append(cks, ck)
		}
	})
	return fanOut(sinks), cks, nil
}
