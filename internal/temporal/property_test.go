package temporal

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// bruteSnapshotCount computes the canonical windowed-count output of a set
// of interval events by explicit snapshot enumeration: for every maximal
// interval between lifetime endpoints, count the events containing it.
// This is the oracle the incremental aggregateOp must match.
func bruteSnapshotCount(events []Event) []Event {
	if len(events) == 0 {
		return nil
	}
	var pts []Time
	for _, e := range events {
		pts = append(pts, e.LE, e.RE)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	uniq := pts[:0]
	for i, p := range pts {
		if i == 0 || p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	var out []Event
	for i := 0; i+1 < len(uniq); i++ {
		lo, hi := uniq[i], uniq[i+1]
		n := int64(0)
		for _, e := range events {
			if e.LE <= lo && hi <= e.RE {
				n++
			}
		}
		if n > 0 {
			out = append(out, Event{LE: lo, RE: hi, Payload: Row{Int(n)}})
		}
	}
	return Coalesce(out)
}

// genEvents builds a random batch of point events at small timestamps so
// windows overlap heavily.
func genEvents(r *rand.Rand, n int) []Event {
	sch := []Field{{Name: "Time", Kind: KindInt}, {Name: "V", Kind: KindInt}}
	_ = sch
	out := make([]Event, n)
	t := Time(0)
	for i := range out {
		t += Time(r.Intn(5))
		out[i] = PointEvent(t, Row{Int(t), Int(int64(r.Intn(10)))})
	}
	return out
}

func propSchema() *Schema {
	return NewSchema(Field{Name: "Time", Kind: KindInt}, Field{Name: "V", Kind: KindInt})
}

func TestPropertyWindowedCountMatchesOracle(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8, wRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		w := Time(wRaw%20) + 1
		events := genEvents(r, n)

		plan := Scan("in", propSchema()).WithWindow(w).Count("C")
		got, err := RunPlan(plan, map[string][]Event{"in": events})
		if err != nil {
			return false
		}
		// Oracle: widen the same events and enumerate snapshots.
		widened := make([]Event, len(events))
		for i, e := range events {
			widened[i] = Event{LE: e.LE, RE: e.LE + w, Payload: e.Payload}
		}
		want := bruteSnapshotCount(widened)
		return EventsEqual(got, want)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyCTIFrequencyInvariance(t *testing.T) {
	// The paper's repeatability guarantee (§III-C.1): results depend only
	// on application time. Punctuation frequency is a physical concern and
	// must not alter coalesced output.
	err := quick.Check(func(seed int64, nRaw, wRaw, periodRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 2
		w := Time(wRaw%15) + 1
		period := Time(periodRaw%7) + 1
		events := genEvents(r, n)
		mk := func() *Plan {
			return Scan("in", propSchema()).
				GroupApply([]string{"V"}, func(g *Plan) *Plan { return g.WithWindow(w).Count("C") })
		}

		// Run 1: no CTIs at all (flush-driven).
		e1, err := NewEngine(mk())
		if err != nil {
			return false
		}
		e1.CTIPeriod = 0
		for _, ev := range events {
			e1.Feed("in", ev)
		}
		e1.Flush()

		// Run 2: aggressive CTIs every `period` ticks.
		e2, err := NewEngine(mk())
		if err != nil {
			return false
		}
		e2.CTIPeriod = 0
		last := Time(MinTime)
		for _, ev := range events {
			e2.Feed("in", ev)
			if last == MinTime || ev.LE-last >= period {
				e2.Advance(ev.LE)
				last = ev.LE
			}
		}
		e2.Flush()

		return EventsEqual(e1.Results(), e2.Results())
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertySumMatchesCountTimesValue(t *testing.T) {
	// Feeding constant values, Sum == k * Count over every snapshot.
	err := quick.Check(func(seed int64, nRaw, wRaw uint8, k int16) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 1
		w := Time(wRaw%10) + 1
		kk := int64(k)
		events := genEvents(r, n)
		for i := range events {
			events[i].Payload[1] = Int(kk)
		}
		sumPlan := Scan("in", propSchema()).WithWindow(w).Sum("V", "S")
		cntPlan := Scan("in", propSchema()).WithWindow(w).Count("C")
		sums, err1 := RunPlan(sumPlan, map[string][]Event{"in": events})
		cnts, err2 := RunPlan(cntPlan, map[string][]Event{"in": events})
		if err1 != nil || err2 != nil {
			return false
		}
		if kk == 0 {
			// Sum of zeros coalesces into long runs of 0; just check all
			// payloads are zero.
			for _, e := range sums {
				if e.Payload[0].AsInt() != 0 {
					return false
				}
			}
			return true
		}
		if len(sums) != len(cnts) {
			return false
		}
		for i := range sums {
			if sums[i].LE != cnts[i].LE || sums[i].RE != cnts[i].RE {
				return false
			}
			if sums[i].Payload[0].AsInt() != kk*cnts[i].Payload[0].AsInt() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyMinMaxEnvelope(t *testing.T) {
	// Over every snapshot, Min <= Avg <= Max.
	err := quick.Check(func(seed int64, nRaw, wRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		w := Time(wRaw%12) + 1
		events := genEvents(r, n)
		src := propSchema()
		mins, _ := RunPlan(Scan("in", src).WithWindow(w).Min("V", "M"), map[string][]Event{"in": events})
		maxs, _ := RunPlan(Scan("in", src).WithWindow(w).Max("V", "M"), map[string][]Event{"in": events})
		avgs, _ := RunPlan(Scan("in", src).WithWindow(w).Avg("V", "A"), map[string][]Event{"in": events})
		at := func(evs []Event, t Time) (Value, bool) {
			for _, e := range evs {
				if e.Contains(t) {
					return e.Payload[0], true
				}
			}
			return Null, false
		}
		for _, e := range events {
			t0 := e.LE
			mn, ok1 := at(mins, t0)
			mx, ok2 := at(maxs, t0)
			av, ok3 := at(avgs, t0)
			if !ok1 || !ok2 || !ok3 {
				return false // every event's LE must be covered
			}
			if float64(mn.AsInt()) > av.AsFloat()+1e-9 || av.AsFloat() > float64(mx.AsInt())+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyUnionPreservesEvents(t *testing.T) {
	// Union output = multiset union of inputs (here: disjoint filters over
	// one source must reconstruct it exactly).
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 1
		events := genEvents(r, n)
		src := Scan("in", propSchema())
		plan := src.Where(ColGtInt("V", 4)).Union(src.Where(Not(ColGtInt("V", 4))))
		out, err := RunPlan(plan, map[string][]Event{"in": events})
		if err != nil {
			return false
		}
		in := Coalesce(append([]Event(nil), events...))
		return EventsEqual(out, in)
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyJoinMatchesNestedLoop(t *testing.T) {
	// TemporalJoin output must equal the nested-loop temporal join.
	err := quick.Check(func(seed int64, nRaw, wRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%25) + 1
		w := Time(wRaw%10) + 2
		le := genEvents(r, n)
		re := genEvents(r, n)
		// Key by V (values 0..9 → plenty of collisions).
		left := Scan("l", propSchema()).WithWindow(w)
		right := Scan("r", propSchema()).WithWindow(w)
		plan := left.Join(right, []string{"V"}, []string{"V"}, nil)
		got, err := RunPlan(plan, map[string][]Event{"l": le, "r": re})
		if err != nil {
			return false
		}
		var want []Event
		for _, a := range le {
			for _, b := range re {
				if !a.Payload[1].Equal(b.Payload[1]) {
					continue
				}
				lo := maxTime(a.LE, b.LE)
				hi := minTime(a.LE+w, b.LE+w)
				if lo < hi {
					want = append(want, Event{LE: lo, RE: hi, Payload: ConcatRows(a.Payload, b.Payload)})
				}
			}
		}
		want = Coalesce(want)
		return EventsEqual(got, want)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyAntiSemiJoinComplement(t *testing.T) {
	// ASJ(l, r) ∪ PointJoin-filtered(l, r) partitions l: every left point
	// either survives the ASJ or intersects a matching right interval.
	err := quick.Check(func(seed int64, nRaw, wRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 1
		w := Time(wRaw%8) + 1
		le := genEvents(r, n)
		re := genEvents(r, n/2+1)
		plan := Scan("l", propSchema()).
			AntiSemiJoin(Scan("r", propSchema()).WithWindow(w), []string{"V"}, []string{"V"})
		got, err := RunPlan(plan, map[string][]Event{"l": le, "r": re})
		if err != nil {
			return false
		}
		covered := func(p Event) bool {
			for _, b := range re {
				if b.Payload[1].Equal(p.Payload[1]) && b.LE <= p.LE && p.LE < b.LE+w {
					return true
				}
			}
			return false
		}
		var want []Event
		for _, p := range le {
			if !covered(p) {
				want = append(want, p)
			}
		}
		want = Coalesce(want)
		return EventsEqual(got, want)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}
