// Package temporal implements a single-node temporal data-stream engine
// (DSMS) in the style of Microsoft StreamInsight, as required by the TiMR
// framework (Chandramouli, Goldstein, Duan; ICDE 2012).
//
// The engine processes events carrying validity lifetimes [LE, RE) under
// snapshot semantics: operator output is defined purely in terms of the
// temporal relation of the input, independent of physical arrival time.
// This property — the "temporal algebra" of the paper — is what lets TiMR
// run the same continuous query over offline map-reduce partitions and over
// live feeds with identical results.
//
// The package has three layers:
//
//   - values and rows: a compact tagged-union Value, Schema, Row;
//   - logical plans: a Plan tree built with a fluent builder (see plan.go,
//     builder.go), the unit TiMR annotates, fragments and optimizes;
//   - physical operators: push-based incremental operators implementing
//     Sink (see operator files), compiled from plans by Compile.
package temporal

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// Value kinds. KindNull marks absent values (e.g. unmatched outer columns).
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union holding one column value. The zero Value
// is null. Using a concrete struct (rather than interface{}) keeps rows
// free of per-value heap allocations on the engine's hot paths.
type Value struct {
	kind Kind
	i    int64 // also carries bool (0/1)
	f    float64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Null is the null value.
var Null = Value{}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics if v is not an int; engine
// code paths validate kinds at plan-compile time, so a panic here indicates
// a schema bug, not a data error.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("temporal: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the float payload, widening ints.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic("temporal: AsFloat on " + v.kind.String())
	}
}

// AsString returns the string payload.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("temporal: AsString on " + v.kind.String())
	}
	return v.s
}

// AsBool returns the boolean payload.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("temporal: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// Equal reports deep equality of two values (kind and payload).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindFloat:
		return v.f == o.f
	case KindString:
		return v.s == o.s
	default:
		return v.i == o.i
	}
}

// Compare orders values of the same kind: -1, 0, +1. Nulls sort first;
// cross-kind comparison orders by kind (stable but arbitrary), which keeps
// sort-based operators total.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	default:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	}
}

// Hash mixes v into a 64-bit FNV-1a state. Used for partitioning and for
// hash synopses in joins and group-apply.
func (v Value) Hash(h uint64) uint64 {
	const prime = 1099511628211
	h ^= uint64(v.kind)
	h *= prime
	switch v.kind {
	case KindString:
		for i := 0; i < len(v.s); i++ {
			h ^= uint64(v.s[i])
			h *= prime
		}
	case KindFloat:
		h ^= math.Float64bits(v.f)
		h *= prime
	default:
		h ^= uint64(v.i)
		h *= prime
	}
	return h
}

// String renders the value for debugging and experiment tables.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', 6, 64)
	case KindString:
		return v.s
	case KindBool:
		return strconv.FormatBool(v.i != 0)
	}
	return "?"
}

// HashSeed is the initial state for Value.Hash chains.
const HashSeed uint64 = 14695981039346656037

// HashRow hashes the given columns of a row, for partitioning. It folds
// each value's self-contained hash (Value.Hash from HashSeed) into a
// running state with HashCombine rather than chaining one FNV state
// through all values: the fold is decomposable per value, which lets the
// columnar plane (ColBatch.HashRows) cache the hash of each dictionary
// entry once and still assign rows to the exact same partitions as the
// row-at-a-time path.
func HashRow(r Row, cols []int) uint64 {
	h := HashSeed
	for _, c := range cols {
		h = HashCombine(h, r[c].Hash(HashSeed))
	}
	return h
}

// HashCombine folds one value hash into a running row-hash state.
func HashCombine(h, x uint64) uint64 {
	const prime = 1099511628211
	return (h ^ x) * prime
}

// hashString is a convenience FNV-1a over a raw string.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
