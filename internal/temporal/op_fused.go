package temporal

// Operator fusion (TiLT-style, ROADMAP item 2). The compiler collapses a
// maximal run of stateless operators — filter / project / alterLifetime
// (except LifePoint, which keeps continuation state) — into one fusedOp.
// The kernel has two entry points:
//
//   - Row path: OnEvent/OnBatch/OnCTI/OnFlush are drop-in for the Batch
//     push contract. One tight loop applies every stage per event, so a
//     run of k operators costs one dispatch and at most one copy per
//     batch instead of k of each.
//   - Columnar path: OnColBatch consumes a ColBatch directly. Filters
//     evaluate as selection scans over the column vectors (ColPredicate,
//     pred.go), direct projections remap column views without touching
//     data, and lifetime transforms rewrite the LE/RE vectors; surviving
//     rows are materialized at most once, at the run's downstream
//     boundary (the first stateful operator). When the downstream is
//     itself columnar-capable (a ColBatchSink such as the engine's
//     Collector) and every row of a batch survives, the kernel passes
//     the column views straight through and no rows are built on the
//     feed path at all. This is what removes the column→row transpose
//     from the engine feed path.
//
// Correctness contract: for any input, both entry points produce the
// downstream call sequence the interpreted operator chain would —
// bit-identical events, identically shifted CTIs (TestFusedMatches
// Interpreted*, make fusegate). When a batch's column shapes fall
// outside what the vectorized predicates handle exactly (nulls, mixed
// columns, unvectorized predicates), OnColBatch falls back to
// materializing rows — into a fresh per-call slab, so a downstream
// operator that defers the batch never observes slab reuse — and runs
// the row path.
//
// Checkpoint contract: a fusedOp is stateless and never appears in
// pipeline.ckpts. Fused alterLifetime members register stand-in
// operator instances instead (see compiler.buildFused), keeping the
// checkpoint layout a pure function of the logical plan: snapshots move
// freely between fused and unfused (interpreted) engines.

type fuseKind uint8

const (
	fuseFilter fuseKind = iota
	fuseProject
	fuseAlter
)

// fusedStage is one collapsed operator. Filters carry both the row
// predicate and (when the Predicate vectorizes) its columnar twin;
// projects carry the row projection functions and, when every output
// column is a direct copy, the source-column remap; alters carry the
// lifetime transform parameters.
type fusedStage struct {
	kind fuseKind

	// filter
	pred    func(Row) bool
	colPred ColPredicate

	// project
	fns     []func(Row) Value
	srcCols []int // direct-copy remap; nil when any column is computed
	arena   rowArena

	// alterLifetime (mode != LifePoint)
	mode        LifetimeMode
	window, hop Time
	shift       Time
}

// fusedOp is the compiled kernel for one stateless run.
type fusedOp struct {
	stages []fusedStage
	out    Sink
	// colOut is non-nil when the run's downstream consumes columns
	// directly (e.g. the engine's Collector): batches that survive the
	// stages intact are handed through as column views and rows never
	// materialize on the feed path at all.
	colOut ColBatchSink
	bo     batchOut

	// pureFilter: every stage is a filter, enabling filterOp's zero-copy
	// all-pass forwarding on the row path.
	pureFilter bool
	// colOK: every stage vectorizes (filters have ColPredicates, projects
	// are all direct copies), so OnColBatch can run the columnar kernel.
	colOK bool
	// ctiShift is the composed punctuation translation: the sum of the
	// backward (negative) LifeShift amounts, exactly what chaining each
	// member's shiftCTI would apply.
	ctiShift Time

	// columnar scratch, reused across batches (single-goroutine)
	sel    []bool
	idx    []int32
	le, re []Time
}

// newFusedOp compiles the run's plan nodes into stages. run is in
// dataflow order (run[0] consumes the upstream, run[len-1] feeds out).
func newFusedOp(run []*Plan, out Sink) *fusedOp {
	f := &fusedOp{stages: make([]fusedStage, len(run)), out: out, pureFilter: true, colOK: true}
	f.colOut, _ = out.(ColBatchSink)
	for i, n := range run {
		in := n.Inputs[0].Out
		st := &f.stages[i]
		switch n.Kind {
		case OpSelect:
			st.kind = fuseFilter
			st.pred = n.Pred.compile(in)
			st.colPred = n.Pred.compileCol(in)
			if st.colPred == nil {
				f.colOK = false
			}
		case OpProject:
			f.pureFilter = false
			st.kind = fuseProject
			st.fns = make([]func(Row) Value, len(n.Projs))
			st.srcCols = make([]int, len(n.Projs))
			for j, pr := range n.Projs {
				if pr.Source != "" {
					col := in.MustIndex(pr.Source)
					st.srcCols[j] = col
					st.fns[j] = func(r Row) Value { return r[col] }
				} else {
					st.srcCols = nil
					st.fns[j] = pr.Make(in.Indexes(pr.Cols...))
				}
			}
			if st.srcCols == nil {
				f.colOK = false
			}
		case OpAlterLifetime:
			if n.Mode == LifePoint {
				panic("temporal: LifePoint in a fused run")
			}
			f.pureFilter = false
			st.kind = fuseAlter
			st.mode, st.window, st.hop, st.shift = n.Mode, n.Window, n.Hop, n.Shift
			if n.Mode == LifeShift && n.Shift < 0 {
				f.ctiShift += n.Shift
			}
		default:
			panic("temporal: cannot fuse operator " + n.Kind.String())
		}
	}
	return f
}

// applyRow runs every stage against one event in place; false drops it.
func (f *fusedOp) applyRow(e *Event) bool {
	for si := range f.stages {
		st := &f.stages[si]
		switch st.kind {
		case fuseFilter:
			if !st.pred(e.Payload) {
				return false
			}
		case fuseProject:
			row := st.arena.alloc(len(st.fns))
			for i, fn := range st.fns {
				row[i] = fn(e.Payload)
			}
			e.Payload = row
		case fuseAlter:
			switch st.mode {
			case LifeWindow:
				e.RE = e.LE + st.window
			case LifeHop:
				s := e.LE
				e.LE = floorDiv(s, st.hop)*st.hop + st.hop
				e.RE = floorDiv(s+st.window, st.hop)*st.hop + st.hop
			case LifeShift:
				e.LE += st.shift
				e.RE += st.shift
			}
			if e.RE <= e.LE {
				e.RE = e.LE + Tick
			}
		}
	}
	return true
}

func (f *fusedOp) OnEvent(e Event) {
	if f.applyRow(&e) {
		f.out.OnEvent(e)
	}
}

func (f *fusedOp) OnCTI(t Time) { f.out.OnCTI(t + f.ctiShift) }
func (f *fusedOp) OnFlush()     { f.out.OnFlush() }

func (f *fusedOp) OnBatch(b *Batch) {
	evs := b.Events
	if f.pureFilter {
		// Filter-only run: same zero-copy structure as filterOp.OnBatch —
		// nothing dropped in the prefix scan forwards the producer's batch
		// untouched (no CTI shift: a filter-only run has no alters).
		i := 0
		for i < len(evs) && f.passAll(evs[i].Payload) {
			i++
		}
		if i == len(evs) {
			if len(evs) > 0 || b.HasCTI {
				f.bo.resolve(f.out).OnBatch(b)
			}
			return
		}
		kept := append(f.bo.buf[:0], evs[:i]...)
		for i++; i < len(evs); i++ {
			if f.passAll(evs[i].Payload) {
				kept = append(kept, evs[i])
			}
		}
		f.bo.emit(f.out, kept, b.CTI, b.HasCTI)
		return
	}
	outEvs := f.bo.buf[:0]
	for i := range evs {
		e := evs[i]
		if f.applyRow(&e) {
			outEvs = append(outEvs, e)
		}
	}
	cti := b.CTI
	if b.HasCTI {
		cti += f.ctiShift
	}
	f.bo.emit(f.out, outEvs, cti, b.HasCTI)
}

func (f *fusedOp) passAll(r Row) bool {
	for si := range f.stages {
		if !f.stages[si].pred(r) {
			return false
		}
	}
	return true
}

// OnColBatch is the columnar entry point.
func (f *fusedOp) OnColBatch(cb *ColBatch) {
	n := cb.Len()
	if n == 0 {
		return
	}
	if !f.colOK {
		f.colFallback(cb)
		return
	}
	if cap(f.sel) < n {
		f.sel = make([]bool, n)
	}
	sel := f.sel[:n]
	for i := range sel {
		sel[i] = true
	}
	anyFilter := false
	lifetimesOwned := false
	cur := cb
	le, re := cb.LE, cb.RE
	for si := range f.stages {
		st := &f.stages[si]
		switch st.kind {
		case fuseFilter:
			if !st.colPred(cur, sel) {
				// A column shape the vectorized predicate does not handle
				// exactly: discard partial progress and run the row path.
				f.colFallback(cb)
				return
			}
			anyFilter = true
		case fuseProject:
			mapped := make([]ColVec, len(st.srcCols))
			for j, c := range st.srcCols {
				mapped[j] = cur.Cols[c]
			}
			cur = &ColBatch{Cols: mapped, n: n}
		case fuseAlter:
			if !lifetimesOwned {
				// First lifetime rewrite copies the (immutable) input
				// vectors into scratch; later stages mutate in place.
				f.le = append(f.le[:0], le...)
				f.re = append(f.re[:0], re...)
				le, re = f.le, f.re
				lifetimesOwned = true
			}
			alterVec(st, le, re)
		}
	}
	allPass := true
	if anyFilter {
		for _, keep := range sel {
			if !keep {
				allPass = false
				break
			}
		}
	}
	nc := len(cur.Cols)
	if allPass {
		if f.colOut != nil {
			// Full survival into a columnar consumer: hand the columns
			// through as views and never build rows on the feed path.
			// Lifetime vectors living in the kernel's reusable scratch are
			// copied out first — the consumer may retain the batch, and
			// everything it retains must be sealed storage.
			if lifetimesOwned {
				le = append([]Time(nil), le...)
				re = append([]Time(nil), re...)
			}
			f.colOut.OnColBatch(&ColBatch{LE: le, RE: re, Cols: cur.Cols, n: n})
			return
		}
		outEvs := f.materializeAll(f.bo.buf[:0], cur, le, re, n, nc)
		f.bo.emit(f.out, outEvs, 0, false)
		return
	}
	outEvs := f.bo.buf[:0]
	idx := f.idx[:0]
	for i, keep := range sel {
		if keep {
			idx = append(idx, int32(i))
		}
	}
	f.idx = idx
	if len(idx) > 0 {
		if nc == 0 {
			for _, i := range idx {
				outEvs = append(outEvs, Event{LE: le[i], RE: re[i]})
			}
		} else {
			slab := make([]Value, len(idx)*nc)
			for c := range cur.Cols {
				cur.Cols[c].fillIdx(slab[c:], nc, idx)
			}
			for j, i := range idx {
				outEvs = append(outEvs, Event{LE: le[i], RE: re[i], Payload: Row(slab[j*nc : (j+1)*nc : (j+1)*nc])})
			}
		}
	}
	f.bo.emit(f.out, outEvs, 0, false)
}

// materializeAll transposes all n rows of cur (no selection) into fresh
// event payloads appended to outEvs.
func (f *fusedOp) materializeAll(outEvs []Event, cur *ColBatch, le, re []Time, n, nc int) []Event {
	if nc == 0 {
		for i := 0; i < n; i++ {
			outEvs = append(outEvs, Event{LE: le[i], RE: re[i]})
		}
		return outEvs
	}
	slab := make([]Value, n*nc)
	for c := range cur.Cols {
		cur.Cols[c].fill(slab[c:], nc, n)
	}
	for i := 0; i < n; i++ {
		outEvs = append(outEvs, Event{LE: le[i], RE: re[i], Payload: Row(slab[i*nc : (i+1)*nc : (i+1)*nc])})
	}
	return outEvs
}

// colFallback materializes the batch into a fresh per-call slab and runs
// the row path. The fresh slab (never a shared reusable buffer) is what
// makes deferred retention by a downstream operator safe.
func (f *fusedOp) colFallback(cb *ColBatch) {
	b := Batch{Events: cb.MaterializeEvents(nil)}
	f.OnBatch(&b)
}

// alterVec applies one lifetime transform to the le/re vectors in place,
// including the per-operator RE<=LE clamp the interpreted path applies.
func alterVec(st *fusedStage, le, re []Time) {
	switch st.mode {
	case LifeWindow:
		w := st.window
		for i, s := range le {
			re[i] = s + w
		}
	case LifeHop:
		h, w := st.hop, st.window
		for i := range le {
			s := le[i]
			le[i] = floorDiv(s, h)*h + h
			re[i] = floorDiv(s+w, h)*h + h
		}
	case LifeShift:
		d := st.shift
		for i := range le {
			le[i] += d
			re[i] += d
		}
	}
	for i := range le {
		if re[i] <= le[i] {
			re[i] = le[i] + Tick
		}
	}
}

// ColBatchSink is the columnar-entry contract: a sink that can consume a
// ColBatch directly, without the caller materializing rows first. The
// batch is immutable and remains owned by the caller; implementations
// must not mutate its vectors and must finish reading before returning
// (views made with Slice may be retained — they share sealed storage).
type ColBatchSink interface {
	OnColBatch(cb *ColBatch)
}
