package temporal

import (
	"bytes"
	"math"
	"testing"
)

func codecSampleRows() []Row {
	return []Row{
		nil,
		{Int(0)},
		{Int(-1), Int(1), Int(math.MaxInt64), Int(math.MinInt64)},
		{Float(0), Float(-0.0), Float(math.Pi), Float(math.Inf(1)), Float(math.NaN())},
		{String(""), String("user-42"), String("héllo\x00world")},
		{Bool(true), Bool(false), Null},
		{Int(7), Float(2.5), String("mixed"), Bool(true), Null},
	}
}

func TestRowCodecRoundtrip(t *testing.T) {
	for _, want := range codecSampleRows() {
		var w Encoder
		w.Row(want)
		r := NewDecoder(w.Bytes())
		got := r.Row()
		if err := r.Done(); err != nil {
			t.Fatalf("decode %v: %v", want, err)
		}
		if len(got) != len(want) {
			t.Fatalf("row %v roundtripped to %v", want, got)
		}
		for i := range want {
			// NaN != NaN under Equal's float compare; compare bits.
			if want[i].Kind() == KindFloat {
				if math.Float64bits(want[i].AsFloat()) != math.Float64bits(got[i].AsFloat()) {
					t.Fatalf("col %d: float %v -> %v", i, want[i], got[i])
				}
			} else if !want[i].Equal(got[i]) {
				t.Fatalf("col %d: %v -> %v", i, want[i], got[i])
			}
		}
	}
}

func TestRowCodecDeterministic(t *testing.T) {
	rows := codecSampleRows()
	var a, b Encoder
	for _, r := range rows {
		a.Row(r)
		b.Row(r)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same rows encoded to different bytes")
	}
}

func TestEncoderReset(t *testing.T) {
	var w Encoder
	w.Row(Row{Int(1), String("abc")})
	first := append([]byte(nil), w.Bytes()...)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.Row(Row{Int(1), String("abc")})
	if !bytes.Equal(first, w.Bytes()) {
		t.Fatal("encoding changed after Reset")
	}
}

func TestDecoderReset(t *testing.T) {
	r := NewDecoder([]byte{0xff}) // bad: truncated uvarint-ish garbage row
	r.Row()
	if r.Err() == nil {
		t.Fatal("expected sticky error on garbage input")
	}
	var w Encoder
	w.Row(Row{Int(5)})
	r.Reset(w.Bytes())
	if r.Err() != nil {
		t.Fatalf("Reset did not clear error: %v", r.Err())
	}
	got := r.Row()
	if err := r.Done(); err != nil || len(got) != 1 || got[0].AsInt() != 5 {
		t.Fatalf("after Reset: got %v err %v", got, err)
	}
}

func TestDecoderCorruptInputsError(t *testing.T) {
	cases := map[string][]byte{
		"empty row read":     {},
		"huge row count":     {0xff, 0xff, 0xff, 0xff, 0x0f},
		"unknown kind":       {0x01, 0x7f},
		"truncated string":   {0x01, byte(KindString), 0x10, 'a'},
		"truncated varint":   {0x01, byte(KindInt), 0x80},
		"string count bomb":  {0x01, byte(KindString), 0xff, 0xff, 0xff, 0xff, 0x7f},
		"overlong uvarint":   bytes.Repeat([]byte{0x80}, 11),
		"trailing row bytes": {0x00, 0x00},
	}
	for name, data := range cases {
		r := NewDecoder(data)
		r.Row()
		if name == "trailing row bytes" {
			if err := r.Done(); err == nil {
				t.Errorf("%s: Done accepted trailing bytes", name)
			}
			continue
		}
		if r.Err() == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzRowCodecRoundtrip feeds arbitrary bytes to the row decoder:
// corrupt input must fail with a sticky error — never panic — and any
// input that does decode cleanly must re-encode to the identical bytes
// (the codec is deterministic and canonical).
func FuzzRowCodecRoundtrip(f *testing.F) {
	for _, r := range codecSampleRows() {
		var w Encoder
		w.Row(r)
		f.Add(w.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewDecoder(data)
		row := r.Row()
		if err := r.Done(); err != nil {
			return // corrupt input rejected cleanly, as required
		}
		// The input may use non-minimal varints, so it need not equal its
		// re-encoding byte-for-byte — but encode∘decode must be a fixed
		// point: the canonical encoding decodes to the same row and
		// re-encodes to the same bytes.
		var w Encoder
		w.Row(row)
		canon := append([]byte(nil), w.Bytes()...)
		r2 := NewDecoder(canon)
		row2 := r2.Row()
		if err := r2.Done(); err != nil {
			t.Fatalf("canonical re-encoding of %x failed to decode: %v", data, err)
		}
		var w2 Encoder
		w2.Row(row2)
		if !bytes.Equal(canon, w2.Bytes()) {
			t.Fatalf("encode∘decode not idempotent: %x -> %x", canon, w2.Bytes())
		}
	})
}
