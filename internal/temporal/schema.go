package temporal

import (
	"fmt"
	"strings"
)

// Field is one named, typed column of a schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema describes the payload columns of a stream. Schemas are immutable
// after construction; operators derive new schemas rather than mutate.
type Schema struct {
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from fields. Duplicate names panic: schemas are
// authored in code, so duplicates are programming errors.
func NewSchema(fields ...Field) *Schema {
	s := &Schema{fields: fields, index: make(map[string]int, len(fields))}
	for i, f := range fields {
		if _, dup := s.index[f.Name]; dup {
			panic("temporal: duplicate column " + f.Name)
		}
		s.index[f.Name] = i
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of the named column, panicking if absent.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic("temporal: no column " + name + " in " + s.String())
	}
	return i
}

// Indexes resolves several column names at once.
func (s *Schema) Indexes(names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = s.MustIndex(n)
	}
	return out
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool { _, ok := s.index[name]; return ok }

// Project returns a schema of the named columns, in order.
func (s *Schema) Project(names ...string) *Schema {
	fields := make([]Field, len(names))
	for i, n := range names {
		fields[i] = s.fields[s.MustIndex(n)]
	}
	return NewSchema(fields...)
}

// Concat returns the concatenation of two schemas. Name collisions on the
// right side are disambiguated with the given prefix (e.g. "right.").
func (s *Schema) Concat(o *Schema, rightPrefix string) *Schema {
	fields := append([]Field(nil), s.fields...)
	for _, f := range o.fields {
		name := f.Name
		if _, dup := s.index[name]; dup {
			name = rightPrefix + name
		}
		fields = append(fields, Field{Name: name, Kind: f.Kind})
	}
	return NewSchema(fields...)
}

// Equal reports whether two schemas have identical names and kinds.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}

// String renders "name:kind, ..." for diagnostics.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", f.Name, f.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Row is one tuple of payload values, positionally matching a Schema.
type Row []Value

// Clone returns a copy of the row (values are value types; the slice is
// what needs copying).
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Equal reports column-wise equality.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// ConcatRows returns l ++ r as a fresh row.
func ConcatRows(l, r Row) Row {
	out := make(Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

// String renders the row for debugging.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}
