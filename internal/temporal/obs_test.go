package temporal

import (
	"strings"
	"testing"

	"timr/internal/obs"
)

// End-to-end instrumentation check: run a known small plan through an
// observed engine and pin the exact per-operator in/out event counts.
//
// Plan (pre-order ids): op00.Aggregate ← op01.AlterLifetime ← op02.Select
// ← op03.Scan. Four point events are fed; one fails the predicate; the
// remaining three open 10-tick windows at t=0, 2, 5, whose count changes
// at t = 0, 2, 5, 10, 12 produce five snapshot segments.
func TestObservedOperatorCounts(t *testing.T) {
	schema := NewSchema(Field{Name: "Time", Kind: KindInt}, Field{Name: "V", Kind: KindInt})
	plan := Scan("s", schema).Where(ColGtInt("V", 0)).WithWindow(10).Count("C")

	root := obs.New("engine")
	eng, err := NewEngine(plan, WithObs(root))
	if err != nil {
		t.Fatal(err)
	}
	feed := []struct{ tm, v int64 }{{0, 1}, {1, -1}, {2, 1}, {5, 1}}
	for _, f := range feed {
		eng.Feed("s", PointEvent(Time(f.tm), Row{Int(f.tm), Int(f.v)}))
	}
	eng.Flush()
	if got := len(eng.Results()); got != 5 {
		t.Fatalf("results = %d events, want 5", got)
	}

	counts := func(op string) (in, out int64) {
		sc := root.Child(op)
		return sc.Counter("events_in").Value(), sc.Counter("events_out").Value()
	}
	for _, want := range []struct {
		op      string
		in, out int64
	}{
		{"op02.Select", 4, 3},
		{"op01.AlterLifetime", 3, 3},
		{"op00.Aggregate", 3, 5},
	} {
		in, out := counts(want.op)
		if in != want.in || out != want.out {
			t.Errorf("%s: in/out = %d/%d, want %d/%d", want.op, in, out, want.in, want.out)
		}
	}
	if got := root.Child("source.s").Counter("events").Value(); got != 4 {
		t.Errorf("source.s events = %d, want 4", got)
	}
	// The aggregate held three open lifetimes at its peak.
	if got := root.Child("op00.Aggregate").Gauge("state").Value(); got != 3 {
		t.Errorf("aggregate state high-watermark = %d, want 3", got)
	}
}

// Shared scopes across engine instances must aggregate (one engine per
// partition is TiMR's parallelism model) and stay race-clean; this is the
// single-threaded half of that contract — counts from two sequential
// engines simply add up.
func TestObservedScopeSharedAcrossEngines(t *testing.T) {
	schema := NewSchema(Field{Name: "Time", Kind: KindInt})
	plan := Scan("s", schema).WithWindow(5).Count("C")
	root := obs.New("shared")
	for i := 0; i < 2; i++ {
		eng, err := NewEngine(plan, WithObs(root))
		if err != nil {
			t.Fatal(err)
		}
		eng.Feed("s", PointEvent(0, Row{Int(0)}))
		eng.Flush()
	}
	if got := root.Child("source.s").Counter("events").Value(); got != 2 {
		t.Fatalf("shared source counter = %d, want 2", got)
	}
}

// The snapshot table for an observed run must name every operator.
func TestObservedTableNamesOperators(t *testing.T) {
	schema := NewSchema(Field{Name: "Time", Kind: KindInt}, Field{Name: "V", Kind: KindInt})
	plan := Scan("s", schema).Where(ColGtInt("V", 0)).WithWindow(10).Count("C")
	root := obs.New("engine")
	eng, err := NewEngine(plan, WithObs(root))
	if err != nil {
		t.Fatal(err)
	}
	eng.Feed("s", PointEvent(0, Row{Int(0), Int(1)}))
	eng.Flush()
	tab := root.Table()
	for _, want := range []string{"op00.Aggregate", "op01.AlterLifetime", "op02.Select", "source.s"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}

// An observed compile must produce identical results to a plain one:
// instrumentation may never change semantics.
func TestObservedMatchesUnobserved(t *testing.T) {
	schema := NewSchema(Field{Name: "Time", Kind: KindInt}, Field{Name: "V", Kind: KindInt})
	mk := func() *Plan {
		return Scan("s", schema).Where(ColGtInt("V", -5)).WithWindow(7).Sum("V", "S")
	}
	var evs []Event
	for i := int64(0); i < 50; i++ {
		evs = append(evs, PointEvent(Time(i*3%17), Row{Int(i * 3 % 17), Int(i - 25)}))
	}
	SortEvents(evs)

	plain, err := RunPlan(mk(), map[string][]Event{"s": evs})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(mk(), WithObs(obs.New("x")))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		eng.Feed("s", e)
	}
	eng.Flush()
	if !EventsEqual(plain, eng.Results()) {
		t.Fatalf("observed run diverged from plain run")
	}
}
