package temporal

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// colSampleRows exercises every column shape the builder can produce:
// pure typed columns, nullable columns, dictionary strings with
// repeats, and a kind-mismatch column that degrades to mixed storage.
func colSampleRows() []Row {
	return []Row{
		{Int(1), String("ad-a"), Float(0.25), Bool(true), Null, Int(10)},
		{Int(2), String("ad-b"), Float(math.NaN()), Bool(false), Null, String("mixed")},
		{Int(3), String("ad-a"), Float(math.Inf(-1)), Bool(true), Null, Float(2.5)},
		{Int(math.MinInt64), String(""), Float(-0.0), Bool(false), Null, Null},
		{Int(math.MaxInt64), String("héllo\x00world"), Float(math.Pi), Bool(true), Null, Bool(false)},
	}
}

// colRandomRows builds n random rows over ncols columns, mixing kinds
// and nulls per column with seeded randomness.
func colRandomRows(seed int64, n, ncols int) []Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		r := make(Row, ncols)
		for c := range r {
			// Column c leans toward one kind so typed vectors form, with a
			// small chance of nulls and kind mismatches (mixed degrade).
			switch roll := rng.Intn(20); {
			case roll == 0:
				r[c] = Null
			case roll == 1:
				r[c] = String("stray")
			default:
				switch c % 4 {
				case 0:
					r[c] = Int(rng.Int63n(1000) - 500)
				case 1:
					r[c] = String([]string{"alpha", "beta", "gamma", ""}[rng.Intn(4)])
				case 2:
					r[c] = Float(rng.NormFloat64())
				default:
					r[c] = Bool(rng.Intn(2) == 0)
				}
			}
		}
		rows[i] = r
	}
	return rows
}

func rowsEqualBits(t *testing.T, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d width %d, want %d", i, len(got[i]), len(want[i]))
		}
		for c := range want[i] {
			w, g := want[i][c], got[i][c]
			if w.Kind() == KindFloat && g.Kind() == KindFloat {
				if math.Float64bits(w.AsFloat()) != math.Float64bits(g.AsFloat()) {
					t.Fatalf("row %d col %d: float %v -> %v", i, c, w, g)
				}
			} else if !w.Equal(g) {
				t.Fatalf("row %d col %d: %v -> %v", i, c, w, g)
			}
		}
	}
}

func TestColBatchBuilderRoundtrip(t *testing.T) {
	rows := colSampleRows()
	cb := ColBatchFromRows(rows, len(rows[0]))
	if cb.Len() != len(rows) || cb.NumCols() != len(rows[0]) || cb.HasLifetimes() {
		t.Fatalf("batch shape: len=%d cols=%d lifetimes=%v", cb.Len(), cb.NumCols(), cb.HasLifetimes())
	}
	rowsEqualBits(t, cb.MaterializeRows(), rows)
	// Cell access agrees with the row view.
	for i := range rows {
		got := cb.Row(i)
		for c := range rows[i] {
			if v := cb.Value(i, c); v.Kind() != got[c].Kind() {
				t.Fatalf("Value(%d,%d) kind %v != Row kind %v", i, c, v.Kind(), got[c].Kind())
			}
		}
	}
}

func TestColBatchEventsRoundtrip(t *testing.T) {
	rows := colRandomRows(1, 300, 4)
	evs := make([]Event, len(rows))
	for i, r := range rows {
		evs[i] = Event{LE: Time(i * 10), RE: Time(i*10 + 5), Payload: r}
	}
	cb := ColBatchFromEvents(evs, 4)
	if !cb.HasLifetimes() {
		t.Fatal("event batch lost lifetimes")
	}
	back := cb.MaterializeEvents(nil)
	if len(back) != len(evs) {
		t.Fatalf("event count %d, want %d", len(back), len(evs))
	}
	for i := range evs {
		if back[i].LE != evs[i].LE || back[i].RE != evs[i].RE {
			t.Fatalf("event %d lifetime [%d,%d), want [%d,%d)", i, back[i].LE, back[i].RE, evs[i].LE, evs[i].RE)
		}
	}
	gotRows := make([]Row, len(back))
	for i := range back {
		gotRows[i] = back[i].Payload
	}
	rowsEqualBits(t, gotRows, rows)
}

// TestColBatchHashAndLenAgreeWithRowPath pins the bit-identity contract
// the mapreduce fast path depends on: vectorized per-row hashes and
// encoded lengths must equal the scalar row-at-a-time functions for
// every row, across typed, nullable, dictionary, and mixed columns.
func TestColBatchHashAndLenAgreeWithRowPath(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rows := append(colSampleRows(), colRandomRows(seed, 500, 6)...)
		cb := ColBatchFromRows(rows, 6)
		cols := []int{0, 1, 3, 5}
		hashes := cb.HashRows(cols, nil)
		lens := cb.EncodedRowLens(nil)
		for i, r := range rows {
			if want := HashRow(r, cols); hashes[i] != want {
				t.Fatalf("seed %d row %d: HashRows=%#x HashRow=%#x", seed, i, hashes[i], want)
			}
			if want := RowEncodedLen(r); int(lens[i]) != want {
				t.Fatalf("seed %d row %d: EncodedRowLens=%d RowEncodedLen=%d", seed, i, lens[i], want)
			}
		}
	}
}

func TestColBatchSliceAndGather(t *testing.T) {
	rows := colRandomRows(7, 200, 5)
	cb := ColBatchFromRows(rows, 5)
	sl := cb.Slice(50, 125)
	rowsEqualBits(t, sl.MaterializeRows(), rows[50:125])
	idx := []int32{199, 0, 42, 42, 7}
	g := cb.Gather(idx)
	want := make([]Row, len(idx))
	for i, j := range idx {
		want[i] = rows[j]
	}
	rowsEqualBits(t, g.MaterializeRows(), want)
	// Gathered and sliced views share the parent's dictionary.
	for c := range cb.Cols {
		if d := cb.Cols[c].Dict; d != nil {
			if g.Cols[c].Dict != d || sl.Cols[c].Dict != d {
				t.Fatalf("col %d: view does not share the parent dict", c)
			}
		}
	}
}

// TestColBatchSliceGatherBounds pins the view-bounds hardening: Slice
// and Gather validate against the VIEW's length, not the backing batch —
// a Go-style reslice past the view would silently expose backing rows
// the view's owner never granted (and, on a sliced string column, codes
// the compacted dictionary no longer covers).
func TestColBatchSliceGatherBounds(t *testing.T) {
	rows := colRandomRows(13, 64, 4)
	cb := ColBatchFromRows(rows, 4)
	n := cb.Len()
	mustPanic(t, func() { cb.Slice(-1, 10) })
	mustPanic(t, func() { cb.Slice(0, n+1) })
	mustPanic(t, func() { cb.Slice(12, 8) })
	mustPanic(t, func() { cb.Gather([]int32{0, -1}) })
	mustPanic(t, func() { cb.Gather([]int32{int32(n)}) })

	// A view of a view: bounds are the view's length, even though the
	// backing vectors extend beyond it.
	sl := cb.Slice(10, 20)
	if sl.Len() != 10 {
		t.Fatalf("slice len = %d", sl.Len())
	}
	mustPanic(t, func() { sl.Slice(0, 11) })
	mustPanic(t, func() { sl.Gather([]int32{10}) })
	// In-range operations on the view still work.
	rowsEqualBits(t, sl.Slice(2, 5).MaterializeRows(), rows[12:15])
	rowsEqualBits(t, sl.Gather([]int32{9, 0}).MaterializeRows(), []Row{rows[19], rows[10]})
}

// TestColBlockRoundtrip pins the columnar block codec: a batch decodes
// back to bit-identical rows (and lifetimes), and the encoding is
// deterministic.
func TestColBlockRoundtrip(t *testing.T) {
	check := func(t *testing.T, cb *ColBatch, wantRows []Row) {
		t.Helper()
		var w Encoder
		w.ColBatch(cb)
		r := NewDecoder(w.Bytes())
		got := r.ColBatch()
		if err := r.Done(); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Len() != cb.Len() || got.HasLifetimes() != cb.HasLifetimes() {
			t.Fatalf("shape: len=%d lifetimes=%v", got.Len(), got.HasLifetimes())
		}
		rowsEqualBits(t, got.MaterializeRows(), wantRows)
		for i := 0; i < cb.Len() && cb.HasLifetimes(); i++ {
			if got.LE[i] != cb.LE[i] || got.RE[i] != cb.RE[i] {
				t.Fatalf("row %d lifetime changed", i)
			}
		}
		var w2 Encoder
		w2.ColBatch(cb)
		if !bytes.Equal(w.Bytes(), w2.Bytes()) {
			t.Fatal("same batch encoded to different bytes")
		}
	}
	t.Run("rows", func(t *testing.T) {
		rows := append(colSampleRows(), colRandomRows(3, 400, 6)...)
		check(t, ColBatchFromRows(rows, 6), rows)
	})
	t.Run("events", func(t *testing.T) {
		rows := colRandomRows(4, 100, 3)
		evs := make([]Event, len(rows))
		for i, r := range rows {
			evs[i] = Event{LE: Time(i), RE: Time(i + 1), Payload: r}
		}
		check(t, ColBatchFromEvents(evs, 3), rows)
	})
	t.Run("empty", func(t *testing.T) {
		check(t, ColBatchFromRows(nil, 0), nil)
	})
}

// TestColBlockGatherCompactsDict pins encode-time dictionary
// compaction: a gathered bucket sharing a large ingest dict must encode
// only the strings it references, producing the same bytes as a batch
// built fresh from the same rows — deterministic output regardless of
// which dict a view happens to share.
func TestColBlockGatherCompactsDict(t *testing.T) {
	rows := make([]Row, 100)
	for i := range rows {
		rows[i] = Row{Int(int64(i)), String([]string{"keep-a", "drop-b", "keep-c", "drop-d"}[i%4])}
	}
	cb := ColBatchFromRows(rows, 2)
	idx := make([]int32, 0, 50)
	for i := 0; i < 100; i += 2 { // even rows: only keep-a / keep-c referenced
		idx = append(idx, int32(i))
	}
	g := cb.Gather(idx)
	var w Encoder
	w.ColBatch(g)
	fresh := ColBatchFromRows(g.MaterializeRows(), 2)
	var w2 Encoder
	w2.ColBatch(fresh)
	if !bytes.Equal(w.Bytes(), w2.Bytes()) {
		t.Fatal("gathered view and fresh batch of the same rows encoded differently")
	}
	// And the encoder scratch resets: a second, different batch on the
	// same encoder must be unaffected by the first compaction.
	var seq Encoder
	seq.ColBatch(g)
	seq.Reset()
	seq.ColBatch(fresh)
	if !bytes.Equal(seq.Bytes(), w2.Bytes()) {
		t.Fatal("encoder dict scratch leaked across ColBatch calls")
	}
}

// TestColBlockRowDecodeEquivalence pins the batched↔row-at-a-time
// equivalence: the rows a decoded block materializes are bit-identical
// to the rows the scalar row codec roundtrips, so the two spill formats
// are interchangeable downstream.
func TestColBlockRowDecodeEquivalence(t *testing.T) {
	rows := append(colSampleRows(), colRandomRows(9, 300, 6)...)
	var rw Encoder
	for _, r := range rows {
		rw.Row(r)
	}
	rd := NewDecoder(rw.Bytes())
	viaRows := make([]Row, len(rows))
	for i := range viaRows {
		viaRows[i] = rd.Row()
	}
	if err := rd.Done(); err != nil {
		t.Fatal(err)
	}
	var cw Encoder
	cw.ColBatch(ColBatchFromRows(rows, 6))
	cd := NewDecoder(cw.Bytes())
	viaBlock := cd.ColBatch()
	if err := cd.Done(); err != nil {
		t.Fatal(err)
	}
	rowsEqualBits(t, viaBlock.MaterializeRows(), viaRows)
}

func TestColBlockCorruptInputsError(t *testing.T) {
	var w Encoder
	w.ColBatch(ColBatchFromRows(colSampleRows(), 6))
	good := append([]byte(nil), w.Bytes()...)
	cases := map[string][]byte{
		"empty":             {},
		"wrong tag":         {0x00, 0x01},
		"huge row count":    {0xCB, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"zero-width rows":   {0xCB, 0x05, 0x00, 0x00}, // 5 rows, no lifetimes, 0 cols
		"truncated":         good[:len(good)/2],
		"bad column kind":   {0xCB, 0x01, 0x00, 0x01, 0x77, 0x00},
		"dict code too big": {0xCB, 0x01, 0x00, 0x01, byte(KindString), 0x00, 0x01, 0x01, 'x', 0x05},
		"dup dict entry":    {0xCB, 0x01, 0x00, 0x01, byte(KindString), 0x00, 0x02, 0x01, 'x', 0x01, 'x', 0x00},
	}
	for name, data := range cases {
		r := NewDecoder(data)
		r.ColBatch()
		if r.Err() == nil {
			t.Errorf("%s: decoder accepted corrupt block", name)
		}
	}
}

// FuzzColBlockRoundtrip feeds arbitrary bytes to the block decoder:
// corrupt input must fail with a sticky error — never panic, never
// over-allocate from a forged count — and any input that decodes
// cleanly must re-encode canonically to a fixed point.
func FuzzColBlockRoundtrip(f *testing.F) {
	seedBatches := []*ColBatch{
		ColBatchFromRows(colSampleRows(), 6),
		ColBatchFromRows(colRandomRows(11, 50, 4), 4),
		ColBatchFromRows(nil, 0),
	}
	evs := make([]Event, 20)
	for i := range evs {
		evs[i] = Event{LE: Time(i), RE: Time(i + 3), Payload: Row{Int(int64(i)), String("s")}}
	}
	seedBatches = append(seedBatches, ColBatchFromEvents(evs, 2))
	for _, cb := range seedBatches {
		var w Encoder
		w.ColBatch(cb)
		f.Add(append([]byte(nil), w.Bytes()...))
	}
	f.Add([]byte{0xCB})
	f.Add([]byte{0xCB, 0xff, 0xff, 0xff, 0xff, 0x0f, 0x01, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewDecoder(data)
		cb := r.ColBatch()
		if err := r.Done(); err != nil {
			return // rejected cleanly, as required
		}
		// Canonicalize through rows: encode∘decode must be a fixed point.
		var w Encoder
		w.ColBatch(cb)
		canon := append([]byte(nil), w.Bytes()...)
		r2 := NewDecoder(canon)
		cb2 := r2.ColBatch()
		if err := r2.Done(); err != nil {
			t.Fatalf("canonical re-encoding of %x failed to decode: %v", data, err)
		}
		var w2 Encoder
		w2.ColBatch(cb2)
		if !bytes.Equal(canon, w2.Bytes()) {
			t.Fatalf("encode∘decode not idempotent: %x -> %x", canon, w2.Bytes())
		}
		// Slice views of a cleanly decoded batch must themselves encode and
		// decode to the same logical rows (the encoder compacts the view's
		// dictionary; out-of-range codes would panic loudly, not silently
		// mis-encode).
		if n := cb.Len(); n > 1 {
			lo, hi := n/3, n-n/4
			if hi <= lo {
				lo, hi = 0, n
			}
			sl := cb.Slice(lo, hi)
			var ws Encoder
			ws.ColBatch(sl)
			rs := NewDecoder(ws.Bytes())
			back := rs.ColBatch()
			if err := rs.Done(); err != nil {
				t.Fatalf("slice view of a clean batch failed to roundtrip: %v", err)
			}
			rowsEqualBits(t, back.MaterializeRows(), sl.MaterializeRows())
			for i := 0; i < sl.Len() && sl.HasLifetimes(); i++ {
				if back.LE[i] != sl.LE[i] || back.RE[i] != sl.RE[i] {
					t.Fatalf("slice row %d lifetime changed in roundtrip", i)
				}
			}
		}
	})
}
