package temporal

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// The shared binary row codec: a compact, deterministic, stdlib-varint
// encoding of values, rows and events, used by two very different
// persistence layers —
//
//   - operator checkpoints (checkpoint.go): SnapshotWriter/SnapshotReader
//     are aliases of Encoder/Decoder, so every stateful operator's
//     Snapshot/Restore runs on this codec;
//   - the map-reduce spill files (internal/mapreduce/spill.go): shuffle
//     runs and output partitions evicted from memory are streams of
//     length-prefixed rows in this same encoding.
//
// The encoding is self-describing at the value level (a kind tag per
// value), carries no schema, and has two load-bearing properties:
//
//   - Determinism: encoding the same logical data twice yields identical
//     bytes, so checkpoint equality is byte equality and spilled
//     partitions compare bit-identically to resident ones.
//   - Robustness: every length and count a Decoder reads is
//     bounds-checked against the bytes actually remaining, so corrupt
//     (or fuzzed) input fails with an error — never a panic, never an
//     attacker-sized allocation (FuzzRowCodecRoundtrip enforces this).

// Encoder accumulates the codec byte stream. The zero value is ready to
// use; Reset recycles the buffer for the next record.
type Encoder struct {
	buf []byte

	// Scratch for columnar dictionary compaction (colcodec.go): the
	// source-dictionary→block-dictionary remap, kept -1 between blocks
	// and reset entry-by-entry via the used list, plus that list.
	dictRemap []int32
	dictUsed  []int32
}

// Bytes returns the accumulated encoding.
func (w *Encoder) Bytes() []byte { return w.buf }

// Len returns the number of bytes accumulated so far.
func (w *Encoder) Len() int { return len(w.buf) }

// Reset empties the encoder, keeping the buffer capacity.
func (w *Encoder) Reset() { w.buf = w.buf[:0] }

// Byte appends a raw byte (tags).
func (w *Encoder) Byte(b byte) { w.buf = append(w.buf, b) }

// Uvarint appends an unsigned varint.
func (w *Encoder) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a signed (zig-zag) varint; Time values use this.
func (w *Encoder) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Encoder) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// String appends a length-prefixed string.
func (w *Encoder) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Value appends one tagged value.
func (w *Encoder) Value(v Value) {
	w.Byte(byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindFloat:
		w.Uvarint(math.Float64bits(v.f))
	case KindString:
		w.String(v.s)
	default: // int, bool
		w.Varint(v.i)
	}
}

// uvarintLen returns the number of bytes Uvarint appends for v.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// varintLen returns the number of bytes Varint appends for v.
func varintLen(v int64) int {
	return uvarintLen(uint64(v<<1) ^ uint64(v>>63))
}

// EncodedLen returns the exact number of bytes Encoder.Value appends
// for v: one kind tag plus the payload encoding. MemoryBudget
// accounting (mapreduce.RowBytes) relies on this matching the encoder
// byte for byte, so a "4KB" partition really holds at most 4KB of
// spill-frame payload.
func (v Value) EncodedLen() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindFloat:
		return 1 + uvarintLen(math.Float64bits(v.f))
	case KindString:
		return 1 + uvarintLen(uint64(len(v.s))) + len(v.s)
	default: // int, bool
		return 1 + varintLen(v.i)
	}
}

// RowEncodedLen returns the exact number of bytes Encoder.Row appends
// for r: the count prefix plus every value.
func RowEncodedLen(r Row) int {
	n := uvarintLen(uint64(len(r)))
	for _, v := range r {
		n += v.EncodedLen()
	}
	return n
}

// Row appends a length-prefixed row.
func (w *Encoder) Row(r Row) {
	w.Uvarint(uint64(len(r)))
	for _, v := range r {
		w.Value(v)
	}
}

// Event appends one event (lifetime + payload).
func (w *Encoder) Event(e Event) {
	w.Varint(e.LE)
	w.Varint(e.RE)
	w.Row(e.Payload)
}

// Events appends a count-prefixed event slice in the given order.
func (w *Encoder) Events(evs []Event) {
	w.Uvarint(uint64(len(evs)))
	for _, e := range evs {
		w.Event(e)
	}
}

// Decoder decodes a codec byte stream. Errors are sticky: after the
// first failure every read returns zero values and Err reports the
// failure, so decode code can read straight through and check once.
type Decoder struct {
	data []byte
	pos  int
	err  error
}

// NewDecoder wraps a codec byte stream.
func NewDecoder(data []byte) *Decoder {
	return &Decoder{data: data}
}

// Reset points the decoder at a new byte stream, clearing any sticky
// error — spill readers reuse one Decoder across row frames.
func (r *Decoder) Reset(data []byte) {
	r.data, r.pos, r.err = data, 0, nil
}

// Err returns the first decode error, if any.
func (r *Decoder) Err() error { return r.err }

func (r *Decoder) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("temporal: codec: "+format, args...)
	}
}

func (r *Decoder) remaining() int { return len(r.data) - r.pos }

// Failf records and returns a decode error; callers use it for
// structural mismatches the byte-level reads cannot detect.
func (r *Decoder) Failf(format string, args ...any) error {
	r.fail(format, args...)
	return r.err
}

// Byte reads one raw byte.
func (r *Decoder) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail("unexpected end of input")
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// Expect reads one tag byte and fails unless it matches.
func (r *Decoder) Expect(tag byte, what string) error {
	if got := r.Byte(); r.err == nil && got != tag {
		r.fail("expected %s tag 0x%02x, found 0x%02x", what, tag, got)
	}
	return r.err
}

// Uvarint reads an unsigned varint.
func (r *Decoder) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a signed varint.
func (r *Decoder) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// Bool reads a one-byte boolean.
func (r *Decoder) Bool() bool { return r.Byte() != 0 }

// Count reads an element count and sanity-checks it against the bytes
// remaining (every element costs at least one byte), so a corrupt count
// cannot drive a huge allocation.
func (r *Decoder) Count(what string) int {
	n := r.Uvarint()
	if r.err == nil && n > uint64(r.remaining()) {
		r.fail("%s count %d exceeds remaining %d bytes", what, n, r.remaining())
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Decoder) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("string length %d exceeds remaining %d bytes", n, r.remaining())
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// Value reads one tagged value.
func (r *Decoder) Value() Value {
	kind := Kind(r.Byte())
	switch kind {
	case KindNull:
		return Null
	case KindFloat:
		return Float(math.Float64frombits(r.Uvarint()))
	case KindString:
		return Value{kind: KindString, s: r.String()}
	case KindInt, KindBool:
		return Value{kind: kind, i: r.Varint()}
	default:
		r.fail("unknown value kind %d", kind)
		return Null
	}
}

// Row reads a length-prefixed row.
func (r *Decoder) Row() Row {
	n := r.Count("row")
	if r.err != nil || n == 0 {
		return nil
	}
	row := make(Row, n)
	for i := range row {
		row[i] = r.Value()
	}
	return row
}

// Event reads one event.
func (r *Decoder) Event() Event {
	le := r.Varint()
	re := r.Varint()
	return Event{LE: le, RE: re, Payload: r.Row()}
}

// Events reads a count-prefixed event slice.
func (r *Decoder) Events() []Event {
	n := r.Count("events")
	if r.err != nil || n == 0 {
		return nil
	}
	evs := make([]Event, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		evs = append(evs, r.Event())
	}
	return evs
}

// Done fails unless the stream was consumed exactly.
func (r *Decoder) Done() error {
	if r.err == nil && r.pos != len(r.data) {
		r.fail("%d trailing bytes", len(r.data)-r.pos)
	}
	return r.err
}
