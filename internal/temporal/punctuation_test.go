package temporal

import (
	"testing"
)

// driveWithCTIs feeds events one at a time, punctuating after each, then
// flushes — the way a live DSMS deployment is driven.
func driveWithCTIs(t *testing.T, plan *Plan, inputs map[string][]Event) []Event {
	t.Helper()
	var all []SourceEvent
	for src, evs := range inputs {
		for _, e := range evs {
			all = append(all, SourceEvent{Source: src, Event: e})
		}
	}
	sortSourceEvents(all)
	eng, err := NewEngine(plan)
	if err != nil {
		t.Fatal(err)
	}
	eng.CTIPeriod = 0
	for _, se := range all {
		eng.Feed(se.Source, se.Event)
		eng.Advance(se.Event.LE) // aggressive punctuation after every event
	}
	eng.Flush()
	return eng.Results()
}

func sortSourceEvents(evs []SourceEvent) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Event.LE < evs[j-1].Event.LE; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

func TestCTIThroughJoin(t *testing.T) {
	sch := readingSchema()
	left := Scan("l", sch)
	right := Scan("r", sch).WithWindow(10)
	plan := left.Join(right, []string{"ID"}, []string{"ID"}, nil)
	inputs := map[string][]Event{
		"l": {reading(5, "m", 1), reading(12, "m", 2), reading(30, "m", 3)},
		"r": {reading(1, "m", 9), reading(25, "m", 8)},
	}
	want, err := RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got := driveWithCTIs(t, plan, inputs)
	if !EventsEqual(got, want) {
		t.Fatalf("punctuated run diverges: %v vs %v", got, want)
	}
}

func TestCTIThroughUnionAndUDO(t *testing.T) {
	sch := readingSchema()
	a := Scan("a", sch)
	b := Scan("b", sch)
	spec := UDOSpec{
		Name: "count", Window: 10, Hop: 5,
		Out: NewSchema(Field{Name: "N", Kind: KindInt}),
		Fn: func(ws, we Time, rows []Row) []Row {
			return []Row{{Int(int64(len(rows)))}}
		},
	}
	plan := a.Union(b).Apply(spec)
	inputs := map[string][]Event{
		"a": {reading(1, "m", 1), reading(8, "m", 1), reading(22, "m", 1)},
		"b": {reading(3, "m", 1), reading(15, "m", 1)},
	}
	want, err := RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got := driveWithCTIs(t, plan, inputs)
	if !EventsEqual(got, want) {
		t.Fatalf("punctuated run diverges: %v vs %v", got, want)
	}
}

func TestCTIThroughShiftAndFilter(t *testing.T) {
	// Negative shifts translate punctuations; the chain must still agree
	// with the unpunctuated run.
	sch := readingSchema()
	plan := Scan("in", sch).
		Where(ColGtInt("Power", 0)).
		WithWindow(5).
		ShiftLifetime(-3).
		Count("C")
	inputs := map[string][]Event{
		"in": {reading(10, "m", 1), reading(11, "m", 0), reading(14, "m", 2), reading(20, "m", 3)},
	}
	want, err := RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got := driveWithCTIs(t, plan, inputs)
	if !EventsEqual(got, want) {
		t.Fatalf("punctuated run diverges: %v vs %v", got, want)
	}
}

func TestToPointSuppressesContinuations(t *testing.T) {
	// ToPoint is event-identity-sensitive; the operator must treat
	// abutting equal-payload fragments (as produced by aggregates at CTI
	// boundaries) as one logical event and emit a single point.
	plan := Scan("in", readingSchema()).
		GroupApply([]string{"ID"}, func(g *Plan) *Plan {
			return g.WithWindow(100).Count("C")
		}).
		ToPoint()
	in := []Event{reading(10, "m", 1), reading(400, "m", 1)}
	want, err := RunPlan(plan, map[string][]Event{"in": in})
	if err != nil {
		t.Fatal(err)
	}
	got := driveWithCTIs(t, plan, map[string][]Event{"in": in})
	if !EventsEqual(got, want) {
		t.Fatalf("punctuated ToPoint diverges: %v vs %v", got, want)
	}
	// Two logical count segments (one per reading) → two points.
	if len(want) != 2 {
		t.Fatalf("want = %v", want)
	}
}

func TestCTIBoundsJoinSynopsis(t *testing.T) {
	// State cleanup: after punctuation passes an event's RE, the synopsis
	// must shrink (the engine's memory is bounded by the window, not the
	// stream length).
	col := &Collector{}
	j := newTemporalJoinOp([]int{1}, []int{1}, nil, col)
	left, right := j.m.input(sideLeft), j.m.input(sideRight)
	for i := 0; i < 100; i++ {
		tm := Time(i * 10)
		right.OnEvent(Event{LE: tm, RE: tm + 10, Payload: Row{Int(tm), String("k")}})
		left.OnEvent(PointEvent(tm+1, Row{Int(tm + 1), String("k")}))
		left.OnCTI(tm + 2)
		right.OnCTI(tm + 2)
	}
	if j.syn[sideRight].size > 4 {
		t.Errorf("right synopsis holds %d events after punctuation; state not bounded", j.syn[sideRight].size)
	}
	if j.syn[sideLeft].size > 4 {
		t.Errorf("left synopsis holds %d events; state not bounded", j.syn[sideLeft].size)
	}
	if len(col.Events) != 100 {
		t.Errorf("join produced %d results, want 100", len(col.Events))
	}
}

func TestMergerCompaction(t *testing.T) {
	// Feeding many events on one side with the other side's watermark
	// advancing must not retain the consumed prefix.
	u := newUnionOp(&Collector{})
	l, r := u.m.input(sideLeft), u.m.input(sideRight)
	for i := 0; i < 1000; i++ {
		l.OnEvent(PointEvent(Time(i), Row{Int(int64(i))}))
		r.OnCTI(Time(i + 1)) // releases the left head each time
	}
	if n := len(u.m.bufs[sideLeft]); n > 600 {
		t.Errorf("merger buffer holds %d events; compaction failed", n)
	}
}

// autoCTICount drives an engine over point events at the given times
// (period P) through one of the feed entry points and counts the CTIs
// the sink observes.
func autoCTICount(t *testing.T, P Time, drive func(eng *Engine)) int {
	t.Helper()
	var ctis int
	sink := &FuncSink{CTI: func(Time) { ctis++ }}
	eng, err := NewEngine(Scan("s", readingSchema()), WithSink(sink), WithCTIPeriod(P))
	if err != nil {
		t.Fatal(err)
	}
	drive(eng)
	return ctis
}

// ctiFeeds returns one driver per feed entry point (per-event, batched,
// columnar), all over the same point events; every entry must punctuate
// on the identical schedule.
func ctiFeeds(feed []Time) map[string]func(eng *Engine) {
	evs := make([]Event, len(feed))
	for i, tm := range feed {
		evs[i] = reading(tm, "m", 1)
	}
	return map[string]func(eng *Engine){
		"per-event": func(eng *Engine) {
			for _, e := range evs {
				eng.Feed("s", e)
			}
		},
		"batched": func(eng *Engine) {
			eng.FeedBatch("s", &Batch{Events: append([]Event(nil), evs...)})
		},
		"columnar": func(eng *Engine) {
			eng.FeedColBatch("s", ColBatchFromEvents(evs, len(evs[0].Payload)))
		},
	}
}

// The automatic CTI schedule is anchored at the last period boundary
// strictly before the first event and advances by whole periods. The old
// derivation (lastCTI = triggering event time) drifted the schedule
// toward sparse events and under-punctuated; the old anchor (lastCTI =
// first event time, no emission) additionally swallowed the boundary a
// first event landed exactly on. With period P and events at 0, 1.5P,
// 2.2P the schedule now fires at 0, 1.5P (boundary P passed) and 2.2P
// (boundary 2P passed).
func TestAutoCTIScheduleAnchored(t *testing.T) {
	const P = Time(100)
	feed := []Time{0, 3 * P / 2, 11 * P / 5} // 0, 1.5P, 2.2P
	for name, drive := range ctiFeeds(feed) {
		if got := autoCTICount(t, P, drive); got != 3 {
			t.Errorf("%s feed: %d auto CTIs, want 3 (schedule drifted)", name, got)
		}
	}
}

// A first event landing exactly on a period boundary must punctuate at
// that boundary; before the anchor fix it only seeded the schedule and
// the boundary was silently skipped.
func TestAutoCTIFirstEventOnBoundary(t *testing.T) {
	const P = Time(100)
	for name, drive := range ctiFeeds([]Time{P, P + 50}) {
		if got := autoCTICount(t, P, drive); got != 1 {
			t.Errorf("%s feed: %d auto CTIs, want 1 (boundary landing skipped)", name, got)
		}
	}
	// A wave strictly inside one period still has no boundary to fire at.
	for name, drive := range ctiFeeds([]Time{P + 30, P + 50}) {
		if got := autoCTICount(t, P, drive); got != 0 {
			t.Errorf("%s feed: %d auto CTIs, want 0", name, got)
		}
	}
}

// A sparse single wave starting on a boundary is punctuated at that
// boundary rather than ending the feed with no CTI at all.
func TestAutoCTISingleWavePunctuated(t *testing.T) {
	const P = Time(100)
	for name, drive := range ctiFeeds([]Time{2 * P, 2*P + 10, 3*P - 1}) {
		if got := autoCTICount(t, P, drive); got != 1 {
			t.Errorf("%s feed: %d auto CTIs, want 1 (single wave un-punctuated)", name, got)
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	sch := readingSchema()
	plan := Scan("in", sch).WithWindow(3).Count("C")
	eng, err := NewEngine(plan)
	if err != nil {
		t.Fatal(err)
	}
	p := eng.Pipeline()
	if got := p.Sources(); len(got) != 1 || got[0] != "in" {
		t.Errorf("Sources = %v", got)
	}
	if !p.SourceSchema("in").Equal(sch) {
		t.Error("SourceSchema mismatch")
	}
	if p.OutSchema().Field(0).Name != "C" {
		t.Errorf("OutSchema = %s", p.OutSchema())
	}
	mustPanic(t, func() { p.Input("nope") })

	eng.Feed("in", reading(1, "m", 1))
	eng.Advance(10)
	eng.Flush()
	raw := eng.RawResults()
	if len(raw) == 0 {
		t.Fatal("no raw results")
	}
	// Raw results may be fragmented; coalesced results must not be longer.
	if len(eng.Results()) > len(raw) {
		t.Error("coalesced longer than raw")
	}
}

func TestEventHelpers(t *testing.T) {
	a := Event{LE: 1, RE: 5, Payload: Row{Int(1)}}
	b := Event{LE: 4, RE: 9, Payload: Row{Int(2)}}
	c := Event{LE: 5, RE: 9, Payload: Row{Int(3)}}
	if !a.Overlaps(b) || a.Overlaps(c) || !b.Overlaps(a) {
		t.Error("Overlaps")
	}
	if a.String() == "" || a.IsPoint() {
		t.Error("String/IsPoint")
	}
	if !PointEvent(3, nil).IsPoint() {
		t.Error("PointEvent")
	}
	if EventsEqual([]Event{a}, []Event{b}) {
		t.Error("EventsEqual false positive")
	}
	if !EventsEqual([]Event{a}, []Event{{LE: 1, RE: 5, Payload: Row{Int(1)}}}) {
		t.Error("EventsEqual false negative")
	}
}

func TestMinMaxFloatAndStringValues(t *testing.T) {
	sch := NewSchema(
		Field{Name: "Time", Kind: KindInt},
		Field{Name: "Name", Kind: KindString},
	)
	plan := Scan("in", sch).WithWindow(10).Min("Name", "M")
	in := []Event{
		PointEvent(1, Row{Int(1), String("zebra")}),
		PointEvent(2, Row{Int(2), String("ant")}),
	}
	out, err := RunPlan(plan, map[string][]Event{"in": in})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out {
		if e.Contains(2) && e.Payload[0].AsString() != "ant" {
			t.Errorf("min@2 = %v", e.Payload[0])
		}
	}
	// Sum over floats.
	fsch := NewSchema(Field{Name: "Time", Kind: KindInt}, Field{Name: "X", Kind: KindFloat})
	fplan := Scan("in", fsch).WithWindow(10).Sum("X", "S")
	fin := []Event{
		PointEvent(1, Row{Int(1), Float(1.5)}),
		PointEvent(2, Row{Int(2), Float(2.25)}),
	}
	fout, err := RunPlan(fplan, map[string][]Event{"in": fin})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range fout {
		if e.Contains(2) {
			found = true
			if e.Payload[0].AsFloat() != 3.75 {
				t.Errorf("float sum = %v", e.Payload[0])
			}
		}
	}
	if !found {
		t.Error("no snapshot at t=2")
	}
}

func TestAvgEmptyAndPredicateCombinators(t *testing.T) {
	s := &avgState{col: 0}
	if s.Result().AsFloat() != 0 {
		t.Error("empty avg")
	}
	// Or / FnPred / ColLtInt / ColGeFloat / ColEqString coverage.
	sch := NewSchema(
		Field{Name: "Time", Kind: KindInt},
		Field{Name: "Name", Kind: KindString},
		Field{Name: "X", Kind: KindFloat},
	)
	plan := Scan("in", sch).Where(Or(
		ColEqString("Name", "keep"),
		And(ColLtInt("Time", 5), ColGeFloat("X", 2.0)),
	))
	in := []Event{
		PointEvent(1, Row{Int(1), String("keep"), Float(0)}),
		PointEvent(2, Row{Int(2), String("drop"), Float(3)}), // t<5 && x>=2
		PointEvent(9, Row{Int(9), String("drop"), Float(3)}), // fails both
	}
	out, err := RunPlan(plan, map[string][]Event{"in": in})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
}
