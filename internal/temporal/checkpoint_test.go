package temporal

import (
	"bytes"
	"math/rand"
	"testing"
)

// flattenSorted interleaves per-source feeds into one globally LE-ordered
// sequence (stable tie-break by source name), the order a checkpoint test
// drives an engine in.
func flattenSorted(feeds map[string][]Event) []SourceEvent {
	var all []SourceEvent
	for src, evs := range feeds {
		for _, e := range evs {
			all = append(all, SourceEvent{Source: src, Event: e})
		}
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			a, b := all[j-1], all[j]
			if b.Event.LE < a.Event.LE || (b.Event.LE == a.Event.LE && b.Source < a.Source) {
				all[j-1], all[j] = b, a
			} else {
				break
			}
		}
	}
	return all
}

// checkpointRoundtrip is the tentpole property: feed a prefix, snapshot,
// restore into a fresh engine, feed the suffix — combined output must
// match the uninterrupted run exactly. It also asserts the encoding's
// determinism (double-snapshot byte equality) and losslessness
// (snapshot ∘ restore ∘ snapshot is the identity on bytes).
func checkpointRoundtrip(t *testing.T, mk func() *Plan, feeds map[string][]Event, split, ctiEvery int) {
	t.Helper()
	all := flattenSorted(feeds)
	if split < 0 || split > len(all) {
		t.Fatalf("bad split %d for %d events", split, len(all))
	}
	drive := func(eng *Engine, evs []SourceEvent, base int) {
		for i, se := range evs {
			eng.Feed(se.Source, se.Event)
			if ctiEvery > 0 && (base+i+1)%ctiEvery == 0 {
				eng.Advance(se.Event.LE)
			}
		}
	}

	clean := &Collector{}
	e0, err := NewEngine(mk(), WithSink(clean), WithCTIPeriod(0))
	if err != nil {
		t.Fatal(err)
	}
	drive(e0, all, 0)
	e0.Flush()

	// Interrupted run: both engine incarnations share one sink, so the
	// combined emission stream is directly comparable.
	got := &Collector{}
	e1, err := NewEngine(mk(), WithSink(got), WithCTIPeriod(0))
	if err != nil {
		t.Fatal(err)
	}
	drive(e1, all[:split], 0)
	snap := e1.Checkpoint()
	if !bytes.Equal(snap, e1.Checkpoint()) {
		t.Fatal("checkpoint encoding is nondeterministic: two snapshots of one state differ")
	}
	e2, err := RestoreEngine(mk(), snap, WithSink(got), WithCTIPeriod(0))
	if err != nil {
		t.Fatalf("restore after %d of %d events: %v", split, len(all), err)
	}
	if resnap := e2.Checkpoint(); !bytes.Equal(resnap, snap) {
		t.Fatalf("restore is lossy: re-snapshot differs (%d vs %d bytes)", len(resnap), len(snap))
	}
	drive(e2, all[split:], split)
	e2.Flush()

	want := Coalesce(append([]Event(nil), clean.Events...))
	have := Coalesce(append([]Event(nil), got.Events...))
	if !EventsEqual(have, want) {
		t.Fatalf("split at %d/%d diverges: %d events, want %d", split, len(all), len(have), len(want))
	}
}

// sweepSplits exercises a plan across several prefix lengths and CTI
// cadences, including a checkpoint right after a punctuation (cadence
// divides the split) and one with no punctuation at all.
func sweepSplits(t *testing.T, mk func() *Plan, feeds map[string][]Event) {
	t.Helper()
	n := len(flattenSorted(feeds))
	for _, ctiEvery := range []int{0, 5, 7} {
		for _, split := range []int{0, 1, n / 3, n / 2, n - 1, n} {
			if split < 0 {
				continue
			}
			checkpointRoundtrip(t, mk, feeds, split, ctiEvery)
		}
	}
}

func TestCheckpointWindowedAggregates(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	events := genEvents(r, 60)
	aggs := map[string]func() *Plan{
		"count": func() *Plan { return Scan("in", propSchema()).WithWindow(9).Count("C") },
		"sum":   func() *Plan { return Scan("in", propSchema()).WithWindow(9).Sum("V", "S") },
		"avg":   func() *Plan { return Scan("in", propSchema()).WithWindow(9).Avg("V", "A") },
		"min":   func() *Plan { return Scan("in", propSchema()).WithWindow(9).Min("V", "M") },
		"max":   func() *Plan { return Scan("in", propSchema()).WithWindow(9).Max("V", "M") },
	}
	for name, mk := range aggs {
		t.Run(name, func(t *testing.T) {
			sweepSplits(t, mk, map[string][]Event{"in": events})
		})
	}
}

func TestCheckpointHoppingWindow(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	events := genEvents(r, 50)
	mk := func() *Plan { return Scan("in", propSchema()).WithHop(8, 3).Count("C") }
	sweepSplits(t, mk, map[string][]Event{"in": events})
}

func TestCheckpointGroupApply(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	events := genEvents(r, 70)
	mk := func() *Plan {
		return Scan("in", propSchema()).
			GroupApply([]string{"V"}, func(g *Plan) *Plan { return g.WithWindow(12).Count("C") })
	}
	sweepSplits(t, mk, map[string][]Event{"in": events})
}

func TestCheckpointTemporalJoin(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	feeds := map[string][]Event{
		"l": genEvents(r, 35),
		"r": genEvents(r, 35),
	}
	mk := func() *Plan {
		return Scan("l", propSchema()).WithWindow(7).
			Join(Scan("r", propSchema()).WithWindow(7), []string{"V"}, []string{"V"}, nil)
	}
	sweepSplits(t, mk, feeds)
}

func TestCheckpointAntiSemiJoin(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	feeds := map[string][]Event{
		"l": genEvents(r, 40),
		"r": genEvents(r, 20),
	}
	mk := func() *Plan {
		return Scan("l", propSchema()).
			AntiSemiJoin(Scan("r", propSchema()).WithWindow(6), []string{"V"}, []string{"V"})
	}
	sweepSplits(t, mk, feeds)
}

func TestCheckpointUnion(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	events := genEvents(r, 50)
	mk := func() *Plan {
		src := Scan("in", propSchema())
		return src.Where(ColGtInt("V", 4)).Union(src.Where(Not(ColGtInt("V", 4))))
	}
	sweepSplits(t, mk, map[string][]Event{"in": events})
}

func TestCheckpointUDO(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	events := genEvents(r, 45)
	mk := func() *Plan {
		return Scan("in", propSchema()).Apply(UDOSpec{
			Name: "sum", Window: 6, Hop: 3,
			Out: NewSchema(Field{Name: "S", Kind: KindInt}),
			Fn: func(ws, we Time, rows []Row) []Row {
				var s int64
				for _, row := range rows {
					s += row[1].AsInt()
				}
				return []Row{{Int(s)}}
			},
		})
	}
	sweepSplits(t, mk, map[string][]Event{"in": events})
}

func TestCheckpointRandomSplitsProperty(t *testing.T) {
	// The acceptance property at scale: random workloads, random splits,
	// the composite plan (GroupApply over windowed aggregates feeding a
	// second aggregate) that exercises nesting.
	mk := func() *Plan {
		return Scan("in", propSchema()).
			GroupApply([]string{"V"}, func(g *Plan) *Plan { return g.WithWindow(10).Sum("V", "S") }).
			ToPoint().
			WithWindow(15).Count("N")
	}
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		events := genEvents(r, 30+r.Intn(50))
		split := r.Intn(len(events) + 1)
		ctiEvery := r.Intn(9) // 0 = none
		checkpointRoundtrip(t, mk, map[string][]Event{"in": events}, split, ctiEvery)
	}
}

func TestCheckpointRestoresCTIClock(t *testing.T) {
	mk := func() *Plan { return Scan("in", propSchema()).WithWindow(5).Count("C") }
	e1, err := NewEngine(mk(), WithCTIPeriod(0))
	if err != nil {
		t.Fatal(err)
	}
	e1.Feed("in", PointEvent(3, Row{Int(3), Int(1)}))
	e1.Advance(50)
	snap := e1.Checkpoint()
	e2, err := RestoreEngine(mk(), snap, WithCTIPeriod(0))
	if err != nil {
		t.Fatal(err)
	}
	if e2.lastCTI != e1.lastCTI || e2.lastCTI != 50 {
		t.Fatalf("CTI clock not restored: got %d, want %d", e2.lastCTI, e1.lastCTI)
	}
}

func TestCheckpointReorderOp(t *testing.T) {
	// The reorder buffer is not plan-addressable, so roundtrip it directly:
	// disordered feed, snapshot mid-stream, restore, finish — output must
	// match the uninterrupted run.
	feed := []Event{
		PointEvent(10, Row{Int(10)}),
		PointEvent(7, Row{Int(7)}),
		PointEvent(12, Row{Int(12)}),
		PointEvent(9, Row{Int(9)}),
		PointEvent(15, Row{Int(15)}),
		PointEvent(13, Row{Int(13)}),
	}
	clean := &Collector{}
	r0 := newReorder(5, clean)
	for _, e := range feed {
		r0.OnEvent(e)
	}
	r0.OnFlush()

	for split := 0; split <= len(feed); split++ {
		got := &Collector{}
		r1 := newReorder(5, got)
		for _, e := range feed[:split] {
			r1.OnEvent(e)
		}
		var w SnapshotWriter
		r1.Snapshot(&w)
		snap := w.Bytes()
		r2 := newReorder(5, got)
		if err := r2.Restore(NewSnapshotReader(snap)); err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		var w2 SnapshotWriter
		r2.Snapshot(&w2)
		if !bytes.Equal(w2.Bytes(), snap) {
			t.Fatalf("split %d: reorder re-snapshot differs", split)
		}
		for _, e := range feed[split:] {
			r2.OnEvent(e)
		}
		r2.OnFlush()
		if !EventsEqual(Coalesce(append([]Event(nil), got.Events...)),
			Coalesce(append([]Event(nil), clean.Events...))) {
			t.Fatalf("split %d: reorder roundtrip diverges", split)
		}
	}
}

func TestCheckpointErrors(t *testing.T) {
	mkA := func() *Plan { return Scan("in", propSchema()).WithWindow(5).Count("C") }
	// Plan B has a different stateful-operator population.
	mkB := func() *Plan {
		return Scan("in", propSchema()).
			GroupApply([]string{"V"}, func(g *Plan) *Plan { return g.WithWindow(5).Count("C") })
	}
	e1, err := NewEngine(mkA(), WithCTIPeriod(0))
	if err != nil {
		t.Fatal(err)
	}
	e1.Feed("in", PointEvent(1, Row{Int(1), Int(2)}))
	snap := e1.Checkpoint()

	if _, err := RestoreEngine(mkB(), snap, WithCTIPeriod(0)); err == nil {
		t.Fatal("restoring into a mismatched plan must error")
	}
	if _, err := RestoreEngine(mkA(), snap[:len(snap)-1], WithCTIPeriod(0)); err == nil {
		t.Fatal("restoring a truncated snapshot must error")
	}
	if _, err := RestoreEngine(mkA(), append(append([]byte(nil), snap...), 0xFF), WithCTIPeriod(0)); err == nil {
		t.Fatal("restoring a snapshot with trailing bytes must error")
	}
	e2, err := NewEngine(mkA(), WithCTIPeriod(0))
	if err != nil {
		t.Fatal(err)
	}
	e2.Feed("in", PointEvent(1, Row{Int(1), Int(2)}))
	if err := e2.Restore(snap); err == nil {
		t.Fatal("Restore on an engine that has processed input must error")
	}
}

// FuzzCheckpointRoundtrip fuzzes two properties at once: (1) for states
// reached by feeding decoded events, snapshot → restore → snapshot is the
// byte identity; (2) arbitrary bytes fed to RestoreEngine never panic —
// they either restore cleanly or fail with an error.
func FuzzCheckpointRoundtrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xE7, 0x00, 0x00})
	f.Add([]byte{})
	mk := func() *Plan {
		return Scan("in", propSchema()).
			GroupApply([]string{"V"}, func(g *Plan) *Plan { return g.WithWindow(8).Sum("V", "S") })
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// (1) Roundtrip a state derived from the fuzz bytes.
		eng, err := NewEngine(mk(), WithCTIPeriod(0))
		if err != nil {
			t.Fatal(err)
		}
		tm := Time(0)
		for i, b := range data {
			if i >= 64 {
				break
			}
			tm += Time(b % 5)
			eng.Feed("in", PointEvent(tm, Row{Int(int64(tm)), Int(int64(b % 7))}))
			if b%11 == 0 {
				eng.Advance(tm)
			}
		}
		snap := eng.Checkpoint()
		e2, err := RestoreEngine(mk(), snap, WithCTIPeriod(0))
		if err != nil {
			t.Fatalf("restore of a live checkpoint failed: %v", err)
		}
		if !bytes.Equal(e2.Checkpoint(), snap) {
			t.Fatal("snapshot→restore→snapshot is not the byte identity")
		}
		// (2) Arbitrary bytes must never panic the decoder.
		if e3, err := RestoreEngine(mk(), data, WithCTIPeriod(0)); err == nil && e3 == nil {
			t.Fatal("nil engine without error")
		}
	})
}
