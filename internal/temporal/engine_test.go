package temporal

import (
	"fmt"
	"testing"
)

// readingSchema mimics the power-meter example of paper Figures 2-4.
func readingSchema() *Schema {
	return NewSchema(
		Field{Name: "Time", Kind: KindInt},
		Field{Name: "ID", Kind: KindString},
		Field{Name: "Power", Kind: KindInt},
	)
}

func reading(t Time, id string, power int64) Event {
	return PointEvent(t, Row{Int(t), String(id), Int(power)})
}

func run(t *testing.T, plan *Plan, inputs map[string][]Event) []Event {
	t.Helper()
	out, err := RunPlan(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSelect(t *testing.T) {
	// Paper Figure 2: detect non-zero power readings.
	plan := Scan("in", readingSchema()).Where(ColGtInt("Power", 0))
	in := []Event{reading(1, "m", 0), reading(2, "m", 5), reading(3, "m", 0), reading(4, "m", 9)}
	out := run(t, plan, map[string][]Event{"in": in})
	if len(out) != 2 || out[0].Payload[2].AsInt() != 5 || out[1].Payload[2].AsInt() != 9 {
		t.Fatalf("out = %v", out)
	}
}

func TestProject(t *testing.T) {
	plan := Scan("in", readingSchema()).Project(
		Keep("Time"),
		Rename("ID", "Meter"),
		Compute("Doubled", KindInt, func(v []Value) Value { return Int(v[0].AsInt() * 2) }, "Power"),
	)
	if plan.Out.String() != "(Time:int, Meter:string, Doubled:int)" {
		t.Fatalf("schema = %s", plan.Out)
	}
	out := run(t, plan, map[string][]Event{"in": {reading(5, "m1", 21)}})
	if len(out) != 1 || out[0].Payload[2].AsInt() != 42 || out[0].Payload[1].AsString() != "m1" {
		t.Fatalf("out = %v", out)
	}
}

func TestWindowedCount(t *testing.T) {
	// Paper Figure 3: count of non-zero readings in the last 3 seconds,
	// reported whenever the count changes.
	plan := Scan("in", readingSchema()).
		Where(ColGtInt("Power", 0)).
		WithWindow(3).
		Count("Cnt")
	in := []Event{reading(1, "m", 10), reading(2, "m", 0), reading(3, "m", 7)}
	out := run(t, plan, map[string][]Event{"in": in})
	// Active windows: event@1 alive [1,4), event@3 alive [3,6).
	// Snapshots: [1,3)=1, [3,4)=2, [4,6)=1.
	want := []Event{
		{LE: 1, RE: 3, Payload: Row{Int(1)}},
		{LE: 3, RE: 4, Payload: Row{Int(2)}},
		{LE: 4, RE: 6, Payload: Row{Int(1)}},
	}
	if !EventsEqual(out, want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

func TestCountEmptyGapsProduceNoOutput(t *testing.T) {
	plan := Scan("in", readingSchema()).WithWindow(2).Count("Cnt")
	in := []Event{reading(1, "m", 1), reading(10, "m", 1)}
	out := run(t, plan, map[string][]Event{"in": in})
	want := []Event{
		{LE: 1, RE: 3, Payload: Row{Int(1)}},
		{LE: 10, RE: 12, Payload: Row{Int(1)}},
	}
	if !EventsEqual(out, want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

func TestSumMinMaxAvg(t *testing.T) {
	sch := readingSchema()
	in := []Event{reading(1, "m", 10), reading(2, "m", 4), reading(3, "m", 7)}
	cases := []struct {
		name string
		plan *Plan
		// value of the snapshot [3,4) when all three events are active
		// (window 5 keeps them all alive through t=3).
		want Value
	}{
		{"sum", Scan("in", sch).WithWindow(5).Sum("Power", "S"), Int(21)},
		{"min", Scan("in", sch).WithWindow(5).Min("Power", "M"), Int(4)},
		{"max", Scan("in", sch).WithWindow(5).Max("Power", "M"), Int(10)},
		{"avg", Scan("in", sch).WithWindow(5).Avg("Power", "A"), Float(7)},
	}
	for _, c := range cases {
		out := run(t, c.plan, map[string][]Event{"in": in})
		found := false
		for _, e := range out {
			if e.Contains(3) {
				found = true
				if !e.Payload[0].Equal(c.want) {
					t.Errorf("%s: snapshot@3 = %v, want %v", c.name, e.Payload[0], c.want)
				}
			}
		}
		if !found {
			t.Errorf("%s: no snapshot covering t=3: %v", c.name, out)
		}
	}
}

func TestMinMaxUnderExpiry(t *testing.T) {
	// Min must recover the correct value after the minimum expires.
	plan := Scan("in", readingSchema()).WithWindow(2).Min("Power", "M")
	in := []Event{reading(1, "m", 3), reading(2, "m", 8)}
	out := run(t, plan, map[string][]Event{"in": in})
	want := []Event{
		{LE: 1, RE: 3, Payload: Row{Int(3)}}, // min 3 while event@1 alive
		{LE: 3, RE: 4, Payload: Row{Int(8)}}, // after expiry min is 8
	}
	if !EventsEqual(out, want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

func TestGroupApplyWindowedCount(t *testing.T) {
	// Paper Figure 4 (left): per-meter windowed count.
	plan := Scan("in", readingSchema()).GroupApply([]string{"ID"}, func(g *Plan) *Plan {
		return g.WithWindow(3).Count("Cnt")
	})
	if plan.Out.String() != "(ID:string, Cnt:int)" {
		t.Fatalf("schema = %s", plan.Out)
	}
	in := []Event{
		reading(1, "a", 1), reading(1, "b", 1),
		reading(2, "a", 1),
		reading(9, "b", 1),
	}
	out := run(t, plan, map[string][]Event{"in": in})
	// Group a: counts [1,2)=1 [2,4)=2 [4,5)=1 ; group b: [1,4)=1 [9,12)=1.
	var a, b []Event
	for _, e := range out {
		if e.Payload[0].AsString() == "a" {
			a = append(a, e)
		} else {
			b = append(b, e)
		}
	}
	wantA := []Event{
		{LE: 1, RE: 2, Payload: Row{String("a"), Int(1)}},
		{LE: 2, RE: 4, Payload: Row{String("a"), Int(2)}},
		{LE: 4, RE: 5, Payload: Row{String("a"), Int(1)}},
	}
	wantB := []Event{
		{LE: 1, RE: 4, Payload: Row{String("b"), Int(1)}},
		{LE: 9, RE: 12, Payload: Row{String("b"), Int(1)}},
	}
	if !EventsEqual(a, wantA) {
		t.Errorf("group a = %v, want %v", a, wantA)
	}
	if !EventsEqual(b, wantB) {
		t.Errorf("group b = %v, want %v", b, wantB)
	}
}

func TestGroupApplyOutputOrdered(t *testing.T) {
	// The downstream of a GroupApply must see nondecreasing LE even when
	// groups progress at different rates. Chain a second aggregate over
	// the group output to make order violations fatal.
	plan := Scan("in", readingSchema()).
		GroupApply([]string{"ID"}, func(g *Plan) *Plan {
			return g.WithWindow(5).Count("Cnt")
		}).
		ToPoint().
		WithWindow(10).
		Count("Total")
	var in []Event
	for i := 0; i < 50; i++ {
		in = append(in, reading(Time(i), fmt.Sprintf("m%d", i%5), 1))
	}
	out := run(t, plan, map[string][]Event{"in": in})
	if len(out) == 0 {
		t.Fatal("no output")
	}
	for i := 1; i < len(out); i++ {
		if out[i].LE < out[i-1].LE {
			t.Fatalf("output disordered at %d: %v after %v", i, out[i], out[i-1])
		}
	}
}

func TestUnion(t *testing.T) {
	sch := readingSchema()
	a := Scan("a", sch)
	b := Scan("b", sch)
	plan := a.Union(b)
	out := run(t, plan, map[string][]Event{
		"a": {reading(1, "x", 1), reading(5, "x", 2)},
		"b": {reading(2, "y", 3), reading(4, "y", 4)},
	})
	if len(out) != 4 {
		t.Fatalf("out = %v", out)
	}
	for i := 1; i < len(out); i++ {
		if out[i].LE < out[i-1].LE {
			t.Fatalf("union output disordered: %v", out)
		}
	}
}

func TestUnionSchemaMismatchPanics(t *testing.T) {
	a := Scan("a", readingSchema())
	b := Scan("b", NewSchema(Field{Name: "X", Kind: KindInt}))
	mustPanic(t, func() { a.Union(b) })
}

func TestTemporalJoinPowerIncrease(t *testing.T) {
	// Paper Figure 4 (right): periods when the reading increased by more
	// than 100 compared to 5 seconds back. Left = current readings with
	// window 5... the paper shifts one branch 5s forward and joins.
	sch := readingSchema()
	src := Scan("in", sch)
	shifted := src.WithWindow(5).ShiftLifetime(5)
	cur := src.WithWindow(5)
	cond := &JoinPred{
		LeftCols: []string{"Power"}, RightCols: []string{"Power"},
		Make: func(li, ri []int) func(l, r Row) bool {
			return func(l, r Row) bool { return l[li[0]].AsInt() > r[ri[0]].AsInt()+100 }
		},
		Desc: "left.Power > right.Power+100",
	}
	plan := cur.Join(shifted, []string{"ID"}, []string{"ID"}, cond)
	in := []Event{reading(0, "m", 50), reading(6, "m", 200)}
	out := run(t, plan, map[string][]Event{"in": in})
	// reading@0 shifted is alive [5,10); reading@6 (window 5) alive [6,11);
	// 200 > 50+100, so the join fires over [6,10).
	if len(out) != 1 || out[0].LE != 6 || out[0].RE != 10 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Payload[2].AsInt() != 200 || out[0].Payload[5].AsInt() != 50 {
		t.Fatalf("payload = %v", out[0].Payload)
	}
}

func TestTemporalJoinPointFilter(t *testing.T) {
	// "A common application of TemporalJoin is when the left input
	// consists of point events — it effectively filters out events on the
	// left that do not intersect any matching event in the right synopsis."
	sch := readingSchema()
	left := Scan("pts", sch)
	right := Scan("intervals", sch).WithWindow(10)
	plan := left.Join(right, []string{"ID"}, []string{"ID"}, nil)
	out := run(t, plan, map[string][]Event{
		"pts":       {reading(5, "m", 1), reading(50, "m", 2), reading(6, "other", 3)},
		"intervals": {reading(1, "m", 9)},
	})
	// Only the point@5 with ID "m" overlaps the interval [1,11).
	if len(out) != 1 || out[0].LE != 5 || !out[0].IsPoint() {
		t.Fatalf("out = %v", out)
	}
}

func TestAntiSemiJoin(t *testing.T) {
	sch := readingSchema()
	left := Scan("pts", sch)
	right := Scan("bad", sch).WithWindow(10)
	plan := left.AntiSemiJoin(right, []string{"ID"}, []string{"ID"})
	out := run(t, plan, map[string][]Event{
		"pts": {reading(2, "m", 1), reading(5, "m", 2), reading(15, "m", 3), reading(5, "z", 4)},
		"bad": {reading(4, "m", 0)}, // suppresses ID "m" during [4,14)
	})
	// Survivors: m@2 (before), m@15 (after), z@5 (different key).
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	var got []int64
	for _, e := range out {
		got = append(got, e.Payload[2].AsInt())
	}
	if got[0] != 1 || got[1] != 4 || got[2] != 3 {
		t.Fatalf("payloads = %v", got)
	}
}

func TestAntiSemiJoinTieRightFirst(t *testing.T) {
	// A suppressing interval that OPENS at exactly the left event's time
	// must win: bot elimination depends on it.
	sch := readingSchema()
	plan := Scan("pts", sch).AntiSemiJoin(Scan("bad", sch).WithWindow(10), []string{"ID"}, []string{"ID"})
	out := run(t, plan, map[string][]Event{
		"pts": {reading(4, "m", 1)},
		"bad": {reading(4, "m", 0)},
	})
	if len(out) != 0 {
		t.Fatalf("point at interval start should be suppressed, got %v", out)
	}
}

func TestMulticastDiamond(t *testing.T) {
	// One source feeding two branches that union back (the shape of the
	// paper's BotElim sub-query, Figure 11).
	sch := readingSchema()
	src := Scan("in", sch)
	high := src.Where(ColGtInt("Power", 100)).Project(Keep("Time"), Keep("ID"), ConstInt("Tag", 1))
	low := src.Where(Not(ColGtInt("Power", 100))).Project(Keep("Time"), Keep("ID"), ConstInt("Tag", 0))
	plan := high.Union(low)
	in := []Event{reading(1, "m", 200), reading(2, "m", 50), reading(3, "m", 300)}
	out := run(t, plan, map[string][]Event{"in": in})
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	tags := []int64{out[0].Payload[2].AsInt(), out[1].Payload[2].AsInt(), out[2].Payload[2].AsInt()}
	if tags[0] != 1 || tags[1] != 0 || tags[2] != 1 {
		t.Fatalf("tags = %v", tags)
	}
}

func TestHoppingWindowCount(t *testing.T) {
	// Hopping window w=4, h=2: result for the window ending at t is valid
	// for [t, t+2).
	plan := Scan("in", readingSchema()).WithHop(4, 2).Count("Cnt")
	in := []Event{reading(1, "m", 1), reading(2, "m", 1), reading(5, "m", 1)}
	out := run(t, plan, map[string][]Event{"in": in})
	// Windows (end -> members): 2->{1}, 4->{1,2}, 6->{2,5}, 8->{5}.
	// The windows ending at 4 and 6 both count 2, so their report events
	// coalesce into one [4,8) under canonical (coalesced) output.
	want := []Event{
		{LE: 2, RE: 4, Payload: Row{Int(1)}},
		{LE: 4, RE: 8, Payload: Row{Int(2)}},
		{LE: 8, RE: 10, Payload: Row{Int(1)}},
	}
	if !EventsEqual(out, want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

func TestUDOHoppingWindows(t *testing.T) {
	sch := readingSchema()
	outSchema := NewSchema(Field{Name: "WinSum", Kind: KindInt})
	spec := UDOSpec{
		Name: "sum", Window: 4, Hop: 2, Out: outSchema,
		Fn: func(ws, we Time, rows []Row) []Row {
			var s int64
			for _, r := range rows {
				s += r[2].AsInt()
			}
			return []Row{{Int(s)}}
		},
	}
	plan := Scan("in", sch).Apply(spec)
	in := []Event{reading(1, "m", 10), reading(2, "m", 20), reading(5, "m", 30)}
	out := run(t, plan, map[string][]Event{"in": in})
	want := []Event{
		{LE: 2, RE: 4, Payload: Row{Int(10)}},
		{LE: 4, RE: 6, Payload: Row{Int(30)}},
		{LE: 6, RE: 8, Payload: Row{Int(50)}},
		{LE: 8, RE: 10, Payload: Row{Int(30)}},
	}
	if !EventsEqual(out, want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
}

func TestUDOSkipsIdleGaps(t *testing.T) {
	calls := 0
	spec := UDOSpec{
		Name: "count", Window: 2, Hop: 2,
		Out: NewSchema(Field{Name: "N", Kind: KindInt}),
		Fn: func(ws, we Time, rows []Row) []Row {
			calls++
			return []Row{{Int(int64(len(rows)))}}
		},
	}
	plan := Scan("in", readingSchema()).Apply(spec)
	in := []Event{reading(1, "m", 1), reading(1000001, "m", 1)}
	out := run(t, plan, map[string][]Event{"in": in})
	if calls != 2 {
		t.Fatalf("UDO invoked %d times; idle windows must be skipped", calls)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestShiftLifetime(t *testing.T) {
	plan := Scan("in", readingSchema()).WithWindow(3).ShiftLifetime(-2)
	out := run(t, plan, map[string][]Event{"in": {reading(10, "m", 1)}})
	if len(out) != 1 || out[0].LE != 8 || out[0].RE != 11 {
		t.Fatalf("out = %v", out)
	}
}

func TestCoalesce(t *testing.T) {
	events := []Event{
		{LE: 1, RE: 3, Payload: Row{Int(7)}},
		{LE: 3, RE: 5, Payload: Row{Int(7)}},
		{LE: 5, RE: 6, Payload: Row{Int(8)}},
		{LE: 7, RE: 9, Payload: Row{Int(7)}}, // gap: not merged
	}
	got := Coalesce(events)
	want := []Event{
		{LE: 1, RE: 5, Payload: Row{Int(7)}},
		{LE: 5, RE: 6, Payload: Row{Int(8)}},
		{LE: 7, RE: 9, Payload: Row{Int(7)}},
	}
	if !EventsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestReorderOp(t *testing.T) {
	col := &Collector{}
	r := newReorder(5, col)
	r.OnEvent(PointEvent(10, Row{Int(10)}))
	r.OnEvent(PointEvent(7, Row{Int(7)})) // disordered within slack
	r.OnEvent(PointEvent(12, Row{Int(12)}))
	r.OnFlush()
	if len(col.Events) != 3 {
		t.Fatalf("events = %v", col.Events)
	}
	for i := 1; i < len(col.Events); i++ {
		if col.Events[i].LE < col.Events[i-1].LE {
			t.Fatalf("reorder failed: %v", col.Events)
		}
	}
}

func TestEngineIncrementalFeed(t *testing.T) {
	// Drive the engine event-by-event with explicit CTIs, as a real-time
	// deployment would, and check results match the batch run.
	plan := Scan("in", readingSchema()).WithWindow(3).Count("Cnt")
	in := []Event{reading(1, "m", 1), reading(2, "m", 1), reading(7, "m", 1)}

	batch, err := RunPlan(plan, map[string][]Event{"in": in})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range in {
		eng.Feed("in", e)
		eng.Advance(e.LE) // aggressive punctuation
	}
	eng.Flush()
	if !EventsEqual(eng.Results(), batch) {
		t.Fatalf("incremental %v != batch %v", eng.Results(), batch)
	}
}

func TestEngineToCallbackSink(t *testing.T) {
	var n int
	sink := &FuncSink{Event: func(Event) { n++ }}
	plan := Scan("in", readingSchema()).Where(ColGtInt("Power", 0))
	eng, err := NewEngine(plan, WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	eng.Feed("in", reading(1, "m", 5))
	eng.Feed("in", reading(2, "m", 0))
	eng.Flush()
	if n != 1 {
		t.Fatalf("callback fired %d times", n)
	}
}

func TestRunPlanUnknownSourceIgnored(t *testing.T) {
	plan := Scan("in", readingSchema())
	out, err := RunPlan(plan, map[string][]Event{
		"in":    {reading(1, "m", 1)},
		"other": {reading(2, "m", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestRowsToPointEvents(t *testing.T) {
	rows := []Row{{Int(5), String("u"), Int(0)}, {Int(9), String("v"), Int(1)}}
	evs := RowsToPointEvents(rows, 0)
	if evs[0].LE != 5 || evs[1].LE != 9 || !evs[0].IsPoint() {
		t.Fatalf("evs = %v", evs)
	}
}

func TestPlanValidationPanics(t *testing.T) {
	sch := readingSchema()
	mustPanic(t, func() { Scan("in", sch).Where(ColEqInt("Nope", 1)) })
	mustPanic(t, func() { Scan("in", sch).WithHop(0, 5) })
	mustPanic(t, func() { Scan("in", sch).GroupApply([]string{"Nope"}, func(g *Plan) *Plan { return g }) })
	mustPanic(t, func() {
		Scan("in", sch).Join(Scan("b", sch), []string{"ID", "Time"}, []string{"ID"}, nil)
	})
}

func TestPlanString(t *testing.T) {
	plan := Scan("in", readingSchema()).
		Where(ColGtInt("Power", 0)).
		GroupApply([]string{"ID"}, func(g *Plan) *Plan { return g.WithWindow(3).Count("Cnt") })
	s := plan.String()
	for _, want := range []string{"GroupApply[ID]", "Select[Power > 0]", "Scan(in)", "Count"} {
		if !contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
	if plan.OperatorCount() != 4 { // Select, GroupApply, AlterLifetime, Count
		t.Errorf("OperatorCount = %d", plan.OperatorCount())
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestMaxWindow(t *testing.T) {
	plan := Scan("in", readingSchema()).
		WithWindow(6 * Hour).
		Count("C")
	if plan.MaxWindow() != 6*Hour {
		t.Errorf("MaxWindow = %d", plan.MaxWindow())
	}
	p2 := Scan("in", readingSchema()).ShiftLifetime(-5 * Minute)
	if p2.MaxWindow() != 5*Minute {
		t.Errorf("MaxWindow(shift) = %d", p2.MaxWindow())
	}
}

func TestSourcesAndSharedScan(t *testing.T) {
	sch := readingSchema()
	src := Scan("in", sch)
	plan := src.Where(ColGtInt("Power", 0)).Union(src.Where(Not(ColGtInt("Power", 0))))
	srcs := plan.Sources()
	if len(srcs) != 1 || srcs[0] != "in" {
		t.Fatalf("sources = %v", srcs)
	}
}
