package temporal

import (
	"fmt"
	"strings"
)

// OpKind enumerates logical CQ-plan operators (paper §II-A.2).
type OpKind int

// Logical operator kinds.
const (
	OpScan       OpKind = iota // leaf: named input stream
	OpGroupInput               // leaf inside a GroupApply sub-plan: the group's sub-stream
	OpSelect
	OpProject
	OpAlterLifetime
	OpAggregate
	OpGroupApply
	OpUnion
	OpTemporalJoin
	OpAntiSemiJoin
	OpUDO
	OpExchange // logical repartitioning annotation inserted by TiMR (§III-A.2)
)

// String names the operator kind.
func (k OpKind) String() string {
	names := [...]string{"Scan", "GroupInput", "Select", "Project", "AlterLifetime",
		"Aggregate", "GroupApply", "Union", "TemporalJoin", "AntiSemiJoin", "UDO", "Exchange"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Op(%d)", int(k))
}

// LifetimeMode selects the AlterLifetime variant.
type LifetimeMode int

// AlterLifetime variants.
const (
	// LifeWindow sets RE = LE + Window: a sliding window of width Window.
	LifeWindow LifetimeMode = iota
	// LifeHop snaps events into hopping windows of width Window and hop
	// Hop: an event at time s contributes to every window ending at a
	// multiple of Hop in (s, s+Window], and each window's result is valid
	// for one hop. Implemented as LE' = Hop*floor(s/Hop)+Hop,
	// RE' = Hop*floor((s+Window)/Hop)+Hop.
	LifeHop
	// LifeShift translates the lifetime by Shift (possibly negative), as
	// in the paper's non-click detection where click lifetimes are moved
	// d = 5 minutes into the past.
	LifeShift
	// LifePoint truncates events to points: RE = LE + Tick.
	LifePoint
)

// AggKind enumerates snapshot aggregates.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String names the aggregate.
func (k AggKind) String() string {
	return [...]string{"Count", "Sum", "Min", "Max", "Avg"}[k]
}

// UDOSpec configures a user-defined operator over hopping windows
// (paper §II-A.2 "User-Defined Operators"; used for LR model fitting).
// For each window [end-Window, end) at hop boundaries, Fn receives the
// payload rows with LE inside the window, ordered by LE, and returns
// output rows valid for [end, end+Hop).
type UDOSpec struct {
	Name     string
	Window   Time
	Hop      Time
	Out      *Schema
	Fn       func(winStart, winEnd Time, rows []Row) []Row
	Stateful bool // documentation only: whether Fn keeps state across windows
}

// PartitionBy describes a logical exchange: repartition the stream by a
// set of payload columns, or by time spans (temporal partitioning, §III-B).
type PartitionBy struct {
	Cols     []string
	Temporal bool
	// SpanWidth is the output span width s for temporal partitioning; the
	// overlap is derived from the fragment's maximum window size.
	SpanWidth Time
}

func (p PartitionBy) String() string {
	if p.Temporal {
		return fmt.Sprintf("time(span=%d)", p.SpanWidth)
	}
	return "{" + strings.Join(p.Cols, ",") + "}"
}

// Plan is a node of a logical CQ plan. Plans form DAGs: a node may be the
// child of several parents, which compiles to a physical Multicast. All
// fields are exported so that TiMR (internal/core) can annotate, fragment
// and optimize plans.
type Plan struct {
	Kind   OpKind
	Inputs []*Plan
	Out    *Schema

	// OpScan
	Source string

	// OpSelect
	Pred Predicate

	// OpProject
	Projs []Projection

	// OpAlterLifetime
	Mode        LifetimeMode
	Window, Hop Time
	Shift       Time

	// OpAggregate
	Agg     AggKind
	AggCol  string // input column ("" for Count)
	AggName string // output column name

	// OpGroupApply / OpTemporalJoin / OpAntiSemiJoin
	Keys      []string // group keys; join keys on the left input
	RightKeys []string // join keys on the right input
	JoinCond  *JoinPred
	Sub       *Plan // GroupApply sub-plan rooted at an OpGroupInput leaf

	// OpUDO
	UDO *UDOSpec

	// OpExchange
	Part PartitionBy
}

// Schema returns the node's output schema.
func (p *Plan) Schema() *Schema { return p.Out }

// Scan starts a plan from a named source stream with the given schema.
func Scan(source string, schema *Schema) *Plan {
	return &Plan{Kind: OpScan, Source: source, Out: schema}
}

// GroupInput is the leaf of a GroupApply sub-plan. Application code
// receives it from the GroupApply builder; it is exported for the
// optimizer's benefit.
func GroupInput(schema *Schema) *Plan {
	return &Plan{Kind: OpGroupInput, Out: schema}
}

// Where appends a Select operator.
func (p *Plan) Where(pred Predicate) *Plan {
	pred.compile(p.Out) // validate column names eagerly
	return &Plan{Kind: OpSelect, Inputs: []*Plan{p}, Out: p.Out, Pred: pred}
}

// Project appends a projection; the output schema is derived from the
// projection list.
func (p *Plan) Project(projs ...Projection) *Plan {
	fields := make([]Field, len(projs))
	for i, pr := range projs {
		if pr.Source != "" {
			src := p.Out.Field(p.Out.MustIndex(pr.Source))
			fields[i] = Field{Name: pr.Name, Kind: src.Kind}
		} else {
			p.Out.Indexes(pr.Cols...) // validate
			fields[i] = Field{Name: pr.Name, Kind: pr.Kind}
		}
	}
	return &Plan{Kind: OpProject, Inputs: []*Plan{p}, Out: NewSchema(fields...), Projs: projs}
}

// WithWindow appends AlterLifetime RE = LE + w (sliding window).
func (p *Plan) WithWindow(w Time) *Plan {
	return &Plan{Kind: OpAlterLifetime, Inputs: []*Plan{p}, Out: p.Out, Mode: LifeWindow, Window: w}
}

// WithHop appends a hopping window of width w and hop h.
func (p *Plan) WithHop(w, h Time) *Plan {
	if h <= 0 || w <= 0 {
		panic("temporal: hopping window requires positive width and hop")
	}
	return &Plan{Kind: OpAlterLifetime, Inputs: []*Plan{p}, Out: p.Out, Mode: LifeHop, Window: w, Hop: h}
}

// ShiftLifetime appends AlterLifetime LE += d, RE += d.
func (p *Plan) ShiftLifetime(d Time) *Plan {
	return &Plan{Kind: OpAlterLifetime, Inputs: []*Plan{p}, Out: p.Out, Mode: LifeShift, Shift: d}
}

// ToPoint truncates lifetimes to points.
func (p *Plan) ToPoint() *Plan {
	return &Plan{Kind: OpAlterLifetime, Inputs: []*Plan{p}, Out: p.Out, Mode: LifePoint}
}

func (p *Plan) aggregate(kind AggKind, col, as string) *Plan {
	outKind := KindInt
	switch kind {
	case AggAvg:
		outKind = KindFloat
	case AggSum, AggMin, AggMax:
		outKind = p.Out.Field(p.Out.MustIndex(col)).Kind
	}
	return &Plan{
		Kind: OpAggregate, Inputs: []*Plan{p},
		Out: NewSchema(Field{Name: as, Kind: outKind}),
		Agg: kind, AggCol: col, AggName: as,
	}
}

// Count appends a snapshot Count aggregate; the output stream has a single
// column named as, carrying the count over each snapshot.
func (p *Plan) Count(as string) *Plan { return p.aggregate(AggCount, "", as) }

// Sum appends a snapshot Sum over col.
func (p *Plan) Sum(col, as string) *Plan { return p.aggregate(AggSum, col, as) }

// Min appends a snapshot Min over col.
func (p *Plan) Min(col, as string) *Plan { return p.aggregate(AggMin, col, as) }

// Max appends a snapshot Max over col.
func (p *Plan) Max(col, as string) *Plan { return p.aggregate(AggMax, col, as) }

// Avg appends a snapshot Avg over col.
func (p *Plan) Avg(col, as string) *Plan { return p.aggregate(AggAvg, col, as) }

// GroupApply groups the stream by keys and applies the sub-plan built by
// sub to each group's sub-stream (paper Figure 4). The output schema is
// the group keys followed by the sub-plan's output columns.
func (p *Plan) GroupApply(keys []string, sub func(group *Plan) *Plan) *Plan {
	p.Out.Indexes(keys...) // validate
	in := GroupInput(p.Out)
	subPlan := sub(in)
	fields := make([]Field, 0, len(keys)+subPlan.Out.Len())
	for _, k := range keys {
		fields = append(fields, p.Out.Field(p.Out.MustIndex(k)))
	}
	fields = append(fields, subPlan.Out.Fields()...)
	return &Plan{
		Kind: OpGroupApply, Inputs: []*Plan{p},
		Out:  NewSchema(fields...),
		Keys: append([]string(nil), keys...), Sub: subPlan,
	}
}

// Union merges two streams with identical schemas.
func (p *Plan) Union(o *Plan) *Plan {
	if !p.Out.Equal(o.Out) {
		panic(fmt.Sprintf("temporal: Union schema mismatch %s vs %s", p.Out, o.Out))
	}
	return &Plan{Kind: OpUnion, Inputs: []*Plan{p, o}, Out: p.Out}
}

// Join appends a TemporalJoin with equality keys and an optional residual
// condition. Output lifetime is the intersection of the joined lifetimes;
// the output schema is left ++ right (right collisions prefixed "r.").
func (p *Plan) Join(right *Plan, leftKeys, rightKeys []string, cond *JoinPred) *Plan {
	if len(leftKeys) != len(rightKeys) {
		panic("temporal: Join key arity mismatch")
	}
	p.Out.Indexes(leftKeys...)
	right.Out.Indexes(rightKeys...)
	return &Plan{
		Kind: OpTemporalJoin, Inputs: []*Plan{p, right},
		Out:  p.Out.Concat(right.Out, "r."),
		Keys: append([]string(nil), leftKeys...), RightKeys: append([]string(nil), rightKeys...),
		JoinCond: cond,
	}
}

// AntiSemiJoin emits left point events that do NOT intersect any matching
// right event (paper §II-A.2). The left input must consist of point
// events; the right input may carry arbitrary lifetimes. At equal
// timestamps the right side is applied first, so an interval opening at t
// suppresses a left event at t.
func (p *Plan) AntiSemiJoin(right *Plan, leftKeys, rightKeys []string) *Plan {
	if len(leftKeys) != len(rightKeys) {
		panic("temporal: AntiSemiJoin key arity mismatch")
	}
	p.Out.Indexes(leftKeys...)
	right.Out.Indexes(rightKeys...)
	return &Plan{
		Kind: OpAntiSemiJoin, Inputs: []*Plan{p, right},
		Out:  p.Out,
		Keys: append([]string(nil), leftKeys...), RightKeys: append([]string(nil), rightKeys...),
	}
}

// Apply appends a user-defined hopping-window operator.
func (p *Plan) Apply(spec UDOSpec) *Plan {
	if spec.Window <= 0 || spec.Hop <= 0 {
		panic("temporal: UDO requires positive window and hop")
	}
	s := spec
	return &Plan{Kind: OpUDO, Inputs: []*Plan{p}, Out: s.Out, UDO: &s}
}

// Exchange inserts a logical repartitioning annotation. TiMR's annotation
// step (and optimizer) adds these; they are no-ops for single-node
// execution.
func (p *Plan) Exchange(part PartitionBy) *Plan {
	if !part.Temporal {
		p.Out.Indexes(part.Cols...)
	}
	return &Plan{Kind: OpExchange, Inputs: []*Plan{p}, Out: p.Out, Part: part}
}

// Walk visits the plan DAG in depth-first order, visiting shared nodes
// once. GroupApply sub-plans are visited too.
func (p *Plan) Walk(visit func(*Plan)) {
	seen := make(map[*Plan]bool)
	var rec func(n *Plan)
	rec = func(n *Plan) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		visit(n)
		for _, c := range n.Inputs {
			rec(c)
		}
		if n.Sub != nil {
			rec(n.Sub)
		}
	}
	rec(p)
}

// Sources returns the distinct scan source names referenced by the plan.
func (p *Plan) Sources() []string {
	var out []string
	seen := make(map[string]bool)
	p.Walk(func(n *Plan) {
		if n.Kind == OpScan && !seen[n.Source] {
			seen[n.Source] = true
			out = append(out, n.Source)
		}
	})
	return out
}

// MaxWindow returns a conservative bound on the plan's temporal extent:
// the sum of every window/shift/hop extent anywhere in the plan
// (including sub-plans). Chained windows compose additively along a path,
// so summing over the whole plan is a safe over-estimate. TiMR's temporal
// partitioning uses this as the span overlap w (§III-B), and GroupApply
// uses it as the state-quiescence horizon.
func (p *Plan) MaxWindow() Time {
	var sum Time
	p.Walk(func(n *Plan) {
		var w Time
		switch n.Kind {
		case OpAlterLifetime:
			switch n.Mode {
			case LifeWindow:
				w = n.Window
			case LifeHop:
				// Hop snapping can extend an event's lifetime up to one
				// hop beyond its window.
				w = n.Window + n.Hop
			case LifeShift:
				w = n.Shift
				if w < 0 {
					w = -w
				}
			}
		case OpUDO:
			w = n.UDO.Window + n.UDO.Hop
		}
		sum += w
	})
	return sum
}

// OperatorCount returns the number of logical operators (excluding leaves
// and exchanges); used in the development-effort comparison.
func (p *Plan) OperatorCount() int {
	n := 0
	p.Walk(func(node *Plan) {
		switch node.Kind {
		case OpScan, OpGroupInput, OpExchange:
		default:
			n++
		}
	})
	return n
}

// String renders the plan as an indented tree for diagnostics.
func (p *Plan) String() string {
	var b strings.Builder
	var rec func(n *Plan, indent string)
	rec = func(n *Plan, indent string) {
		b.WriteString(indent)
		b.WriteString(n.Kind.String())
		switch n.Kind {
		case OpScan:
			fmt.Fprintf(&b, "(%s)", n.Source)
		case OpSelect:
			fmt.Fprintf(&b, "[%s]", n.Pred.Desc)
		case OpAlterLifetime:
			switch n.Mode {
			case LifeWindow:
				fmt.Fprintf(&b, "[w=%d]", n.Window)
			case LifeHop:
				fmt.Fprintf(&b, "[w=%d,h=%d]", n.Window, n.Hop)
			case LifeShift:
				fmt.Fprintf(&b, "[shift=%d]", n.Shift)
			case LifePoint:
				b.WriteString("[point]")
			}
		case OpAggregate:
			fmt.Fprintf(&b, "[%s(%s) as %s]", n.Agg, n.AggCol, n.AggName)
		case OpGroupApply, OpTemporalJoin, OpAntiSemiJoin:
			fmt.Fprintf(&b, "[%s]", strings.Join(n.Keys, ","))
		case OpUDO:
			fmt.Fprintf(&b, "[%s w=%d h=%d]", n.UDO.Name, n.UDO.Window, n.UDO.Hop)
		case OpExchange:
			fmt.Fprintf(&b, "[%s]", n.Part)
		}
		b.WriteByte('\n')
		for _, c := range n.Inputs {
			rec(c, indent+"  ")
		}
		if n.Sub != nil {
			b.WriteString(indent + "  sub:\n")
			rec(n.Sub, indent+"    ")
		}
	}
	rec(p, "")
	return b.String()
}
