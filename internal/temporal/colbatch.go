package temporal

import "math"

// Columnar batches. A ColBatch is the struct-of-arrays counterpart of a
// []Event / []Row batch: lifetimes live in two flat int64 vectors and
// each payload column lives in one typed vector, with a null flag slice
// and a string dictionary where needed. It is the carrier on the data
// plane's hot paths — workload ingest, shuffle buckets, spill blocks,
// sorted runs — where the row representation's per-cell tagged unions
// cost one 48-byte Value per cell per hop.
//
// Contract (see DESIGN.md §11):
//
//   - A ColBatch is immutable once built (sealed by ColBuilder.Batch or
//     decoded by Decoder.ColBatch). Views made by Slice and Gather share
//     the underlying vectors and the dictionary; nothing may mutate them.
//   - Batch/[]Event remain the operator-facing currency: MaterializeRows
//     and MaterializeEvents produce the row view, carving all rows from
//     one backing slab, and the engine/streaming FeedColBatch entry
//     points materialize exactly once per batch.
//   - Column-at-a-time derived vectors (HashRows, EncodedRowLens) agree
//     bit for bit with the row-at-a-time functions (HashRow,
//     RowEncodedLen), so partition assignment and MemoryBudget
//     accounting are identical whichever representation carries a row.

// ColBatch is a columnar batch of events (LE/RE set) or plain rows
// (LE/RE nil, as in map-reduce datasets without lifetimes).
type ColBatch struct {
	// LE and RE hold per-row lifetimes; both are nil for row-only data.
	LE, RE []Time
	// Cols holds one typed vector per payload column.
	Cols []ColVec
	n    int
}

// Len returns the number of rows in the batch.
func (cb *ColBatch) Len() int { return cb.n }

// NumCols returns the number of payload columns.
func (cb *ColBatch) NumCols() int { return len(cb.Cols) }

// HasLifetimes reports whether the batch carries event lifetimes.
func (cb *ColBatch) HasLifetimes() bool { return cb.LE != nil }

// ColVec is one typed column vector. Exactly one payload representation
// is populated: Ints (KindInt/KindBool), Floats (KindFloat), Codes+Dict
// (KindString), Mixed (heterogeneous fallback), or none (all-null
// column, Kind == KindNull). Null cells hold zero placeholders in the
// typed arrays and are flagged in Nulls.
type ColVec struct {
	Kind   Kind
	Nulls  []bool  // per-row null flags; nil when no cell is null
	Ints   []int64 // int and bool (0/1) payloads
	Floats []float64
	Codes  []int32 // dictionary codes for string payloads
	Dict   *Dict   // shared dictionary for Codes
	Mixed  []Value // rowwise fallback for kind-mixed columns
}

// Dict interns the distinct strings of a column in first-appearance
// order (deterministic, so encoding the same logical data twice yields
// identical bytes). Alongside each entry it stores the entry's value
// hash and encoded length, computed once at intern time — a sealed Dict
// is shared read-only by Slice/Gather views and parallel map workers,
// so no lazy per-read caching is allowed.
type Dict struct {
	strs []string
	idx  map[string]int32
	hash []uint64 // Value.Hash(HashSeed) of String(entry)
	enc  []int32  // Value.EncodedLen of String(entry)
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{idx: make(map[string]int32)}
}

// Len returns the number of distinct entries.
func (d *Dict) Len() int { return len(d.strs) }

// At returns entry code's string.
func (d *Dict) At(code int32) string { return d.strs[code] }

// Code interns s and returns its code.
func (d *Dict) Code(s string) int32 {
	if c, ok := d.idx[s]; ok {
		return c
	}
	c := int32(len(d.strs))
	d.strs = append(d.strs, s)
	d.idx[s] = c
	d.hash = append(d.hash, String(s).Hash(HashSeed))
	d.enc = append(d.enc, int32(String(s).EncodedLen()))
	return c
}

// ColBuilder accumulates rows into a ColBatch. Columns start all-null
// and adopt the kind of their first non-null cell; a later cell of a
// different kind degrades that column to the rowwise Mixed fallback.
type ColBuilder struct {
	cb        ColBatch
	lifetimes bool
}

// NewColBuilder returns a builder for ncols payload columns; lifetimes
// selects the event form (AppendEvent) over the plain-row form (Append).
func NewColBuilder(ncols int, lifetimes bool) *ColBuilder {
	b := &ColBuilder{lifetimes: lifetimes}
	b.cb.Cols = make([]ColVec, ncols)
	return b
}

// Append adds one plain row (no lifetime).
func (b *ColBuilder) Append(r Row) {
	if b.lifetimes {
		panic("temporal: ColBuilder.Append on an event builder")
	}
	b.appendRow(r)
}

// AppendEvent adds one event.
func (b *ColBuilder) AppendEvent(e Event) {
	if !b.lifetimes {
		panic("temporal: ColBuilder.AppendEvent on a row builder")
	}
	b.cb.LE = append(b.cb.LE, e.LE)
	b.cb.RE = append(b.cb.RE, e.RE)
	b.appendRow(e.Payload)
}

func (b *ColBuilder) appendRow(r Row) {
	if len(r) != len(b.cb.Cols) {
		panic("temporal: ColBuilder row width mismatch")
	}
	at := b.cb.n
	for c := range b.cb.Cols {
		b.cb.Cols[c].append(at, r[c])
	}
	b.cb.n++
}

// Batch seals and returns the accumulated batch. The builder must not
// be used afterwards.
func (b *ColBuilder) Batch() *ColBatch { return &b.cb }

// append adds val at row index at (the column's current length).
func (v *ColVec) append(at int, val Value) {
	if v.Mixed != nil {
		v.Mixed = append(v.Mixed, val)
		return
	}
	if val.kind == KindNull {
		if v.Nulls == nil {
			v.Nulls = make([]bool, at)
		}
		v.Nulls = append(v.Nulls, true)
		v.appendZero()
		return
	}
	if v.Kind == KindNull {
		// First non-null cell fixes the column kind; backfill zero
		// placeholders for the all-null prefix.
		v.Kind = val.kind
		switch val.kind {
		case KindInt, KindBool:
			v.Ints = make([]int64, at)
		case KindFloat:
			v.Floats = make([]float64, at)
		case KindString:
			v.Codes = make([]int32, at)
			v.Dict = NewDict()
		}
	} else if v.Kind != val.kind {
		v.degrade(at)
		v.Mixed = append(v.Mixed, val)
		return
	}
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, false)
	}
	switch v.Kind {
	case KindInt, KindBool:
		v.Ints = append(v.Ints, val.i)
	case KindFloat:
		v.Floats = append(v.Floats, val.f)
	case KindString:
		v.Codes = append(v.Codes, v.Dict.Code(val.s))
	}
}

// appendZero extends the typed payload with a placeholder for a null
// cell (no-op while the column is still all-null and untyped).
func (v *ColVec) appendZero() {
	switch v.Kind {
	case KindInt, KindBool:
		v.Ints = append(v.Ints, 0)
	case KindFloat:
		v.Floats = append(v.Floats, 0)
	case KindString:
		v.Codes = append(v.Codes, 0)
	}
}

// degrade converts the first n typed cells to the Mixed representation
// when a kind-mixed cell arrives.
func (v *ColVec) degrade(n int) {
	m := make([]Value, n, n+1)
	for i := 0; i < n; i++ {
		m[i] = v.cell(i)
	}
	*v = ColVec{Kind: v.Kind, Mixed: m}
}

// cell reconstructs the Value at row i.
func (v *ColVec) cell(i int) Value {
	if v.Mixed != nil {
		return v.Mixed[i]
	}
	if v.Nulls != nil && v.Nulls[i] {
		return Null
	}
	switch v.Kind {
	case KindNull:
		return Null
	case KindInt, KindBool:
		return Value{kind: v.Kind, i: v.Ints[i]}
	case KindFloat:
		return Value{kind: KindFloat, f: v.Floats[i]}
	default:
		return Value{kind: KindString, s: v.Dict.strs[v.Codes[i]]}
	}
}

// Value returns the cell at row i, column c.
func (cb *ColBatch) Value(i, c int) Value { return cb.Cols[c].cell(i) }

// Row materializes row i (a fresh allocation; tests and slow paths
// only — bulk consumers use MaterializeRows).
func (cb *ColBatch) Row(i int) Row {
	r := make(Row, len(cb.Cols))
	for c := range cb.Cols {
		r[c] = cb.Cols[c].cell(i)
	}
	return r
}

// Slice returns a zero-copy view of rows [lo, hi). The view shares the
// batch's vectors and dictionaries. Bounds are checked against the view
// length cb.Len(), not the backing storage: a slice of a slice must not
// be able to reach rows outside its parent view, even where Go's
// reslice-to-capacity rules would allow it.
func (cb *ColBatch) Slice(lo, hi int) *ColBatch {
	if lo < 0 || hi < lo || hi > cb.n {
		panic("temporal: ColBatch.Slice bounds out of range")
	}
	out := &ColBatch{Cols: make([]ColVec, len(cb.Cols)), n: hi - lo}
	if cb.LE != nil {
		out.LE, out.RE = cb.LE[lo:hi], cb.RE[lo:hi]
	}
	for c := range cb.Cols {
		v := &cb.Cols[c]
		o := &out.Cols[c]
		o.Kind, o.Dict = v.Kind, v.Dict
		if v.Nulls != nil {
			o.Nulls = v.Nulls[lo:hi]
		}
		switch {
		case v.Mixed != nil:
			o.Mixed = v.Mixed[lo:hi]
		case v.Ints != nil:
			o.Ints = v.Ints[lo:hi]
		case v.Floats != nil:
			o.Floats = v.Floats[lo:hi]
		case v.Codes != nil:
			o.Codes = v.Codes[lo:hi]
		}
	}
	return out
}

// Gather returns a new batch holding the rows selected by idx, in idx
// order. Typed payloads are gathered element-wise; string columns share
// the source dictionary (codes are copied, entries are not), which is
// what makes shuffle routing an index permutation instead of a Row copy.
// Every index is validated against the view length cb.Len() up front, so
// a gather on a Slice view can never reach rows of the backing batch
// that lie outside the view.
func (cb *ColBatch) Gather(idx []int32) *ColBatch {
	for _, i := range idx {
		if i < 0 || int(i) >= cb.n {
			panic("temporal: ColBatch.Gather index out of range")
		}
	}
	out := &ColBatch{Cols: make([]ColVec, len(cb.Cols)), n: len(idx)}
	if cb.LE != nil {
		out.LE = make([]Time, len(idx))
		out.RE = make([]Time, len(idx))
		for j, i := range idx {
			out.LE[j] = cb.LE[i]
			out.RE[j] = cb.RE[i]
		}
	}
	for c := range cb.Cols {
		v := &cb.Cols[c]
		o := &out.Cols[c]
		o.Kind, o.Dict = v.Kind, v.Dict
		if v.Nulls != nil {
			o.Nulls = make([]bool, len(idx))
			for j, i := range idx {
				o.Nulls[j] = v.Nulls[i]
			}
		}
		switch {
		case v.Mixed != nil:
			o.Mixed = make([]Value, len(idx))
			for j, i := range idx {
				o.Mixed[j] = v.Mixed[i]
			}
		case v.Ints != nil:
			o.Ints = make([]int64, len(idx))
			for j, i := range idx {
				o.Ints[j] = v.Ints[i]
			}
		case v.Floats != nil:
			o.Floats = make([]float64, len(idx))
			for j, i := range idx {
				o.Floats[j] = v.Floats[i]
			}
		case v.Codes != nil:
			o.Codes = make([]int32, len(idx))
			for j, i := range idx {
				o.Codes[j] = v.Codes[i]
			}
		}
	}
	return out
}

// MaterializeRows decodes the batch into the row representation once:
// all rows are carved from a single []Value slab (one allocation for
// cells, one for headers). The rows obey the usual shared-immutable
// payload contract.
func (cb *ColBatch) MaterializeRows() []Row {
	n, nc := cb.n, len(cb.Cols)
	if n == 0 {
		return nil
	}
	rows := make([]Row, n)
	if nc == 0 {
		return rows
	}
	slab := make([]Value, n*nc)
	for c := range cb.Cols {
		cb.Cols[c].fill(slab[c:], nc, n)
	}
	for i := range rows {
		rows[i] = Row(slab[i*nc : (i+1)*nc : (i+1)*nc])
	}
	return rows
}

// MaterializeRowsPad is MaterializeRows with pad extra cells appended to
// every row, carved from the same slab and initialized to the zero
// (null) Value. Streaming routing uses it to materialize rows with the
// source tag column in place, instead of materializing and then copying
// every row into a wider tagged slab.
func (cb *ColBatch) MaterializeRowsPad(pad int) []Row {
	n, nc := cb.n, len(cb.Cols)
	if n == 0 {
		return nil
	}
	w := nc + pad
	rows := make([]Row, n)
	if w == 0 {
		return rows
	}
	slab := make([]Value, n*w)
	for c := range cb.Cols {
		cb.Cols[c].fill(slab[c:], w, n)
	}
	for i := range rows {
		rows[i] = Row(slab[i*w : (i+1)*w : (i+1)*w])
	}
	return rows
}

// fill writes the column's n cells into slab at stride nc (slab is
// offset so index i*nc is row i's cell for this column).
func (v *ColVec) fill(slab []Value, nc, n int) {
	switch {
	case v.Mixed != nil:
		for i := 0; i < n; i++ {
			slab[i*nc] = v.Mixed[i]
		}
	case v.Kind == KindNull:
		// Slab cells are already the zero Value (null).
	case v.Kind == KindInt || v.Kind == KindBool:
		for i := 0; i < n; i++ {
			slab[i*nc] = Value{kind: v.Kind, i: v.Ints[i]}
		}
	case v.Kind == KindFloat:
		for i := 0; i < n; i++ {
			slab[i*nc] = Value{kind: KindFloat, f: v.Floats[i]}
		}
	default: // KindString
		for i := 0; i < n; i++ {
			slab[i*nc] = Value{kind: KindString, s: v.Dict.strs[v.Codes[i]]}
		}
	}
	if v.Nulls != nil {
		for i := 0; i < n; i++ {
			if v.Nulls[i] {
				slab[i*nc] = Null
			}
		}
	}
}

// fillIdx is fill restricted to the rows selected by idx: it writes the
// column's cells for rows idx[0..k) into slab at stride nc, in idx
// order. The fused kernel uses it to materialize only filter survivors.
func (v *ColVec) fillIdx(slab []Value, nc int, idx []int32) {
	switch {
	case v.Mixed != nil:
		for j, i := range idx {
			slab[j*nc] = v.Mixed[i]
		}
	case v.Kind == KindNull:
		// Slab cells are already the zero Value (null).
	case v.Kind == KindInt || v.Kind == KindBool:
		for j, i := range idx {
			slab[j*nc] = Value{kind: v.Kind, i: v.Ints[i]}
		}
	case v.Kind == KindFloat:
		for j, i := range idx {
			slab[j*nc] = Value{kind: KindFloat, f: v.Floats[i]}
		}
	default: // KindString
		for j, i := range idx {
			slab[j*nc] = Value{kind: KindString, s: v.Dict.strs[v.Codes[i]]}
		}
	}
	if v.Nulls != nil {
		for j, i := range idx {
			if v.Nulls[i] {
				slab[j*nc] = Null
			}
		}
	}
}

// MaterializeEvents appends the batch's events to dst and returns it.
// Payload rows come from a fresh MaterializeRows slab, so consumers may
// retain them (operator synopses do). Panics if the batch carries no
// lifetimes.
func (cb *ColBatch) MaterializeEvents(dst []Event) []Event {
	if cb.n > 0 && cb.LE == nil {
		panic("temporal: MaterializeEvents on a lifetime-free batch")
	}
	rows := cb.MaterializeRows()
	for i, r := range rows {
		dst = append(dst, Event{LE: cb.LE[i], RE: cb.RE[i], Payload: r})
	}
	return dst
}

// IntCol returns column c's raw int64 vector when it is a pure non-null
// int column, else nil — the run-key fast path for shuffle routing.
func (cb *ColBatch) IntCol(c int) []int64 {
	v := &cb.Cols[c]
	if v.Kind != KindInt || v.Mixed != nil || v.Nulls != nil {
		return nil
	}
	return v.Ints
}

// IntervalEventView reinterprets a lifetime-free batch whose two leading
// columns are pure int64 lifetimes (the TiMR intermediate row convention
// [LE, RE, payload...]) as an event batch over the remaining columns —
// zero copies, all vectors shared. Returns nil when either leading
// column is not a pure non-null int vector; the caller falls back to row
// materialization.
func (cb *ColBatch) IntervalEventView() *ColBatch {
	if cb.LE != nil || len(cb.Cols) < 2 {
		return nil
	}
	le, re := cb.IntCol(0), cb.IntCol(1)
	if le == nil || re == nil {
		return nil
	}
	return &ColBatch{LE: le, RE: re, Cols: cb.Cols[2:], n: cb.n}
}

// PointEventView reinterprets a lifetime-free batch as point events at
// the times in column timeCol: LE is the column's vector (shared), RE is
// LE + Tick, and the payload keeps every column — the row stays intact,
// matching PointEvent(r[timeCol], r). Returns nil when timeCol is not a
// pure non-null int vector.
func (cb *ColBatch) PointEventView(timeCol int) *ColBatch {
	if cb.LE != nil {
		return nil
	}
	le := cb.IntCol(timeCol)
	if le == nil {
		return nil
	}
	re := make([]Time, len(le))
	for i, t := range le {
		re[i] = t + Tick
	}
	return &ColBatch{LE: le, RE: re, Cols: cb.Cols, n: cb.n}
}

// HashRows computes HashRow(row, cols) for every row, column-at-a-time,
// into dst (grown as needed). String columns fold the per-entry hash
// cached in the dictionary, so each distinct key string is hashed once
// per batch lineage rather than once per row per hop.
func (cb *ColBatch) HashRows(cols []int, dst []uint64) []uint64 {
	n := cb.n
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = HashSeed
	}
	for _, c := range cols {
		cb.Cols[c].hashInto(dst)
	}
	return dst
}

func (v *ColVec) hashInto(dst []uint64) {
	const prime = 1099511628211
	if v.Mixed != nil || v.Nulls != nil {
		// Heterogeneous or nullable columns hash cell-wise (rare path).
		for i := range dst {
			dst[i] = HashCombine(dst[i], v.cell(i).Hash(HashSeed))
		}
		return
	}
	switch v.Kind {
	case KindNull:
		nullHash := Null.Hash(HashSeed)
		for i := range dst {
			dst[i] = HashCombine(dst[i], nullHash)
		}
	case KindInt, KindBool:
		// Inlined Value.Hash for a tag-then-payload FNV-1a chain.
		base := (HashSeed ^ uint64(v.Kind)) * prime
		for i := range dst {
			x := (base ^ uint64(v.Ints[i])) * prime
			dst[i] = HashCombine(dst[i], x)
		}
	case KindFloat:
		base := (HashSeed ^ uint64(v.Kind)) * prime
		for i := range dst {
			x := (base ^ math.Float64bits(v.Floats[i])) * prime
			dst[i] = HashCombine(dst[i], x)
		}
	default: // KindString
		for i := range dst {
			dst[i] = HashCombine(dst[i], v.Dict.hash[v.Codes[i]])
		}
	}
}

// EncodedRowLens computes RowEncodedLen for every row, column-at-a-
// time, into dst (grown as needed). String columns read the per-entry
// encoded length cached in the dictionary.
func (cb *ColBatch) EncodedRowLens(dst []int32) []int32 {
	n := cb.n
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	base := int32(uvarintLen(uint64(len(cb.Cols))))
	for i := range dst {
		dst[i] = base
	}
	for c := range cb.Cols {
		cb.Cols[c].encLenInto(dst)
	}
	return dst
}

func (v *ColVec) encLenInto(dst []int32) {
	if v.Mixed != nil || v.Nulls != nil {
		// Heterogeneous or nullable columns measure cell-wise.
		for i := range dst {
			dst[i] += int32(v.cell(i).EncodedLen())
		}
		return
	}
	switch v.Kind {
	case KindNull:
		for i := range dst {
			dst[i]++
		}
	case KindInt, KindBool:
		for i := range dst {
			dst[i] += int32(1 + varintLen(v.Ints[i]))
		}
	case KindFloat:
		for i := range dst {
			dst[i] += int32(1 + uvarintLen(math.Float64bits(v.Floats[i])))
		}
	default: // KindString
		for i := range dst {
			dst[i] += int32(v.Dict.enc[v.Codes[i]])
		}
	}
}

// ColBatchFromRows builds a columnar batch from plain rows, all of
// width ncols.
func ColBatchFromRows(rows []Row, ncols int) *ColBatch {
	b := NewColBuilder(ncols, false)
	for _, r := range rows {
		b.Append(r)
	}
	return b.Batch()
}

// ColBatchFromEvents builds a columnar batch from events whose payloads
// all have width ncols.
func ColBatchFromEvents(evs []Event, ncols int) *ColBatch {
	b := NewColBuilder(ncols, true)
	for _, e := range evs {
		b.AppendEvent(e)
	}
	return b.Batch()
}
