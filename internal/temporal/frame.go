package temporal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Framed, checksummed file form of the checkpoint codec. Checkpoints and
// replay logs written to disk (internal/dur) are sequences of frames:
//
//	0xFA | uvarint(len(payload)) | payload | crc32c(payload), 4 bytes LE
//
// The CRC is Castagnoli (the iSCSI polynomial, hardware-accelerated on
// every platform Go targets), computed over the payload bytes only: the
// magic and length are structurally validated, so corrupting them fails
// the decode before the checksum is even consulted. Like the value codec
// (codec.go), every length is bounds-checked against the bytes actually
// present — arbitrary input errors cleanly, never panics, never drives an
// attacker-sized allocation (FuzzFrameDecode enforces this).

// FrameMagic is the leading byte of every checkpoint frame.
const FrameMagic byte = 0xFA

// frameCRC is the Castagnoli table shared by encode and decode.
var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// maxFrame caps a single frame payload; a longer length prefix means the
// file is corrupt, and failing beats allocating attacker-sized buffers.
const maxFrame = 1 << 30

// AppendFrame appends payload to dst as one checksummed frame and
// returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	dst = append(dst, FrameMagic)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, frameCRC))
}

// FrameOverhead returns the number of bytes AppendFrame adds around a
// payload of n bytes (magic + length prefix + trailing CRC).
func FrameOverhead(n int) int {
	return 1 + uvarintLen(uint64(n)) + 4
}

// DecodeFrame splits one frame off the front of data, returning its
// payload (aliasing data — callers that outlive data must copy) and the
// remaining bytes. Truncated input, a bad magic, an oversized or
// overrunning length, and a checksum mismatch all return an error; the
// checksum failure is distinguishable via IsChecksum for callers that
// treat bit rot differently from truncation.
func DecodeFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("temporal: frame: empty input")
	}
	if data[0] != FrameMagic {
		return nil, nil, fmt.Errorf("temporal: frame: bad magic 0x%02x", data[0])
	}
	ln, n := binary.Uvarint(data[1:])
	if n <= 0 {
		return nil, nil, fmt.Errorf("temporal: frame: bad length varint")
	}
	if ln > maxFrame {
		return nil, nil, fmt.Errorf("temporal: frame: payload of %d bytes exceeds cap (corrupt frame)", ln)
	}
	body := data[1+n:]
	if uint64(len(body)) < ln+4 {
		return nil, nil, fmt.Errorf("temporal: frame: payload %d + crc overruns remaining %d bytes", ln, len(body))
	}
	payload = body[:ln]
	want := binary.LittleEndian.Uint32(body[ln : ln+4])
	if got := crc32.Checksum(payload, frameCRC); got != want {
		return nil, nil, &frameChecksumError{want: want, got: got}
	}
	return payload, body[ln+4:], nil
}

// frameChecksumError marks a frame whose bytes parsed but whose payload
// failed CRC validation — bit rot or a torn write, rather than a
// structural truncation.
type frameChecksumError struct{ want, got uint32 }

func (e *frameChecksumError) Error() string {
	return fmt.Sprintf("temporal: frame: checksum mismatch (stored %08x, computed %08x)", e.want, e.got)
}

// IsChecksum reports whether err is (or wraps) a frame checksum
// mismatch.
func IsChecksum(err error) bool {
	var ce *frameChecksumError
	return errors.As(err, &ce)
}

// BytesField appends a length-prefixed raw byte slice — how the durable
// store embeds an engine checkpoint image inside a partition record.
func (w *Encoder) BytesField(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// BytesField reads a length-prefixed raw byte slice. The result aliases
// the decoder's input; callers that outlive it must copy.
func (r *Decoder) BytesField() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.fail("bytes field length %d exceeds remaining %d bytes", n, r.remaining())
		return nil
	}
	b := r.data[r.pos : r.pos+int(n) : r.pos+int(n)]
	r.pos += int(n)
	return b
}
