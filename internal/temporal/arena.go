package temporal

// rowArena hands out Row slices carved from large blocks, cutting the
// per-event allocation count on hot operator paths (project, join
// output, group-key prepend, aggregate payloads). Each returned slice is
// full-capacity-clipped so appends by consumers can never bleed into a
// neighbouring row. Arenas are single-goroutine, like the operators that
// own them.
type rowArena struct {
	buf   []Value
	block int
}

const arenaMaxBlock = 8192

func (a *rowArena) alloc(n int) Row {
	if n > arenaMaxBlock {
		return make(Row, n)
	}
	if len(a.buf) < n {
		// Grow blocks geometrically from a tiny start: operators live
		// inside per-group sub-pipelines, so there can be hundreds of
		// thousands of arenas and most see only a handful of rows.
		if a.block < arenaMaxBlock {
			a.block *= 4
			if a.block < 16 {
				a.block = 16
			}
			if a.block > arenaMaxBlock {
				a.block = arenaMaxBlock
			}
		}
		size := a.block
		if size < n {
			size = n
		}
		a.buf = make([]Value, size)
	}
	r := a.buf[:n:n]
	a.buf = a.buf[n:]
	return r
}

// concat allocates l ++ r from the arena.
func (a *rowArena) concat(l, r Row) Row {
	out := a.alloc(len(l) + len(r))
	copy(out, l)
	copy(out[len(l):], r)
	return out
}
