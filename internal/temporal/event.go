package temporal

import (
	"fmt"
	"sort"
)

// Time is application time in milliseconds since an arbitrary epoch. The
// engine is defined purely over application time (the paper's §III-C.1):
// results never depend on wall-clock processing time.
type Time = int64

// Convenient durations in engine ticks (milliseconds).
const (
	Tick   Time = 1 // δ, the smallest representable duration
	Second Time = 1000
	Minute Time = 60 * Second
	Hour   Time = 60 * Minute
	Day    Time = 24 * Hour
)

// MinTime and MaxTime bound event lifetimes. They are kept well inside the
// int64 range so that window arithmetic (LE+w) cannot overflow.
const (
	MinTime Time = -1 << 60
	MaxTime Time = 1 << 60
)

// Event is a payload with a validity lifetime [LE, RE). A point event —
// an instantaneous notification such as a click — has RE = LE + Tick.
type Event struct {
	LE, RE  Time
	Payload Row
}

// PointEvent builds an instantaneous event at time t.
func PointEvent(t Time, payload Row) Event {
	return Event{LE: t, RE: t + Tick, Payload: payload}
}

// IsPoint reports whether e is a point event.
func (e Event) IsPoint() bool { return e.RE == e.LE+Tick }

// Contains reports whether t lies within [LE, RE).
func (e Event) Contains(t Time) bool { return e.LE <= t && t < e.RE }

// Overlaps reports whether the lifetimes of e and o intersect.
func (e Event) Overlaps(o Event) bool { return e.LE < o.RE && o.LE < e.RE }

// String renders the event for debugging.
func (e Event) String() string {
	return fmt.Sprintf("[%d,%d)%v", e.LE, e.RE, e.Payload)
}

// SortEvents orders events by (LE, RE) and, for determinism across runs,
// by payload comparison when lifetimes tie. The engine requires
// nondecreasing-LE input; full ordering makes test assertions and the
// repeatability guarantee (identical output on reducer restart) exact.
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.LE != b.LE {
			return a.LE < b.LE
		}
		if a.RE != b.RE {
			return a.RE < b.RE
		}
		return compareRows(a.Payload, b.Payload) < 0
	})
}

func compareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// EventsEqual reports whether two (already sorted) event slices are
// identical in lifetimes and payloads.
func EventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].LE != b[i].LE || a[i].RE != b[i].RE || !a[i].Payload.Equal(b[i].Payload) {
			return false
		}
	}
	return true
}

// Sink is the per-event push interface every physical operator
// implements. The hot-path operators additionally implement BatchSink
// (batch.go), which carries a whole run of events per call; AsBatchSink
// bridges the two, so per-event and batched producers compose freely.
//
// Contract: OnEvent is called with nondecreasing e.LE; OnCTI(t) promises
// that every later event has LE >= t (a punctuation, used for state
// cleanup and for unblocking merge operators); OnFlush signals end of
// stream and must cascade downstream after final results are emitted.
type Sink interface {
	OnEvent(e Event)
	OnCTI(t Time)
	OnFlush()
}

// Collector is a terminal Sink that accumulates results. It also
// implements BatchSink, so a batched pipeline hands it whole runs, and
// ColBatchSink, so a fused columnar run ending at the collector hands
// it column views without ever transposing to rows on the feed path
// (read them back through Flatten, which materializes once).
type Collector struct {
	Events []Event
	// cols holds deferred columnar output from fused passthrough. Only
	// header copies are kept — the vectors they view are sealed storage
	// (see ColBatchSink), never the caller-owned header itself. Flatten
	// materializes them into Events lazily, off the feed path.
	cols []ColBatch
}

// OnEvent appends the event.
func (c *Collector) OnEvent(e Event) { c.Events = append(c.Events, e) }

// OnBatch appends the batch's events wholesale.
func (c *Collector) OnBatch(b *Batch) { c.Events = append(c.Events, b.Events...) }

// OnColBatch defers a columnar batch: the columns stay columnar until a
// reader calls Flatten. The header is copied (the caller owns and may
// reuse it); retaining the column views is sound because ColBatch
// storage is sealed (immutable after build).
func (c *Collector) OnColBatch(cb *ColBatch) { c.cols = append(c.cols, *cb) }

// OnCTI is a no-op for a collector.
func (c *Collector) OnCTI(Time) {}

// OnFlush is a no-op for a collector.
func (c *Collector) OnFlush() {}

// Flatten materializes any deferred columnar output into Events (in
// arrival order, after previously collected row events) and returns the
// complete event slice. Readers of collected results must go through
// Flatten rather than the Events field whenever the producing pipeline
// may have a fused columnar tail.
func (c *Collector) Flatten() []Event {
	for i := range c.cols {
		c.Events = c.cols[i].MaterializeEvents(c.Events)
	}
	c.cols = c.cols[:0]
	return c.Events
}

// Reset drops collected events but keeps the backing capacity, so one
// collector can be reused across engine runs (benchmark loops, repeated
// partitions) without accumulating unbounded result slices.
func (c *Collector) Reset() {
	c.Events = c.Events[:0]
	c.cols = c.cols[:0]
}

// FuncSink adapts callbacks to the Sink interface; used to stream results
// into application code (e.g. the real-time example and TiMR's blocking
// queue between the embedded engine and the reducer).
type FuncSink struct {
	Event func(Event)
	CTI   func(Time)
	Flush func()
}

// OnEvent invokes the event callback if set.
func (f *FuncSink) OnEvent(e Event) {
	if f.Event != nil {
		f.Event(e)
	}
}

// OnCTI invokes the CTI callback if set.
func (f *FuncSink) OnCTI(t Time) {
	if f.CTI != nil {
		f.CTI(t)
	}
}

// OnFlush invokes the flush callback if set.
func (f *FuncSink) OnFlush() {
	if f.Flush != nil {
		f.Flush()
	}
}
