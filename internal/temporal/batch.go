package temporal

// Batch-at-a-time dataflow. Per-event push pays one interface dispatch
// per operator per event — the dominant cost of StreamInsight-style
// engines once the operators themselves are cheap. A Batch carries a run
// of events (nondecreasing LE, like OnEvent) plus an optional trailing
// punctuation, so a whole run crosses each operator boundary in a single
// call and the operator body runs as a tight loop.
//
// Contract (see DESIGN.md "Batch dataflow"):
//
//   - A batch is equivalent to calling OnEvent for each element of Events
//     in order, then OnCTI(CTI) if HasCTI. Batch boundaries carry no
//     semantics: re-batching a stream differently must produce the exact
//     same downstream call sequence (enforced by TestBatchEquivalence).
//   - The *Batch and its Events slice are owned by the producer and are
//     only valid for the duration of the OnBatch call. Operators reuse
//     their output buffers across batches; a consumer that retains events
//     must copy them (Event values are safe to copy; payload Rows are
//     shared and never mutated, as with OnEvent).
type Batch struct {
	Events []Event
	CTI    Time // trailing punctuation, delivered after Events
	HasCTI bool // whether CTI is meaningful
}

// BatchSink is the batch-granularity operator contract. End-of-stream
// stays a separate signal (it is not a property of any one batch).
type BatchSink interface {
	OnBatch(b *Batch)
	OnFlush()
}

// AsBatchSink returns the batch-capable view of s: s itself when it
// already implements BatchSink (all converted operators and Collector
// do), else an EventAdapter that unrolls batches into per-event calls.
// Resolve once and cache — operators do this lazily on first batch.
func AsBatchSink(s Sink) BatchSink {
	if b, ok := s.(BatchSink); ok {
		return b
	}
	return &EventAdapter{Out: s}
}

// EventAdapter drives a per-event Sink from a batch producer, preserving
// the defining equivalence: events in order, then the trailing CTI. It
// keeps every existing Sink implementation (FuncSink, custom collectors,
// the real-time example's dashboards) working unchanged on the batch path.
type EventAdapter struct {
	Out Sink
}

// OnBatch unrolls the batch into per-event calls.
func (a *EventAdapter) OnBatch(b *Batch) {
	for i := range b.Events {
		a.Out.OnEvent(b.Events[i])
	}
	if b.HasCTI {
		a.Out.OnCTI(b.CTI)
	}
}

// OnFlush forwards end-of-stream.
func (a *EventAdapter) OnFlush() { a.Out.OnFlush() }

// BatchAdapter presents a per-event Sink face over a BatchSink, for
// drivers that still push one event at a time into a batch-only consumer.
// Each call forwards immediately as a one-element batch (no buffering:
// delaying delivery would change when downstream observes events, which
// per-event callers may depend on).
type BatchAdapter struct {
	Out BatchSink
	b   Batch // reused per call; the batch contract permits this
	one [1]Event
}

// OnEvent forwards e as a single-event batch.
func (a *BatchAdapter) OnEvent(e Event) {
	a.one[0] = e
	a.b = Batch{Events: a.one[:]}
	a.Out.OnBatch(&a.b)
}

// OnCTI forwards t as an events-free batch.
func (a *BatchAdapter) OnCTI(t Time) {
	a.b = Batch{CTI: t, HasCTI: true}
	a.Out.OnBatch(&a.b)
}

// OnFlush forwards end-of-stream.
func (a *BatchAdapter) OnFlush() { a.Out.OnFlush() }

// batchOut is the downstream half shared by batch-producing operators:
// the lazily resolved BatchSink, a reusable output event buffer, and a
// reusable Batch header. Single-goroutine, like the operators owning it.
type batchOut struct {
	sink BatchSink
	buf  []Event
	b    Batch
}

// resolve returns the batch view of out, resolving it on first use (the
// compiler wires operators with plain Sinks; most are batch-capable and
// assert through, the rest get one EventAdapter for the pipeline's life).
func (o *batchOut) resolve(out Sink) BatchSink {
	if o.sink == nil {
		o.sink = AsBatchSink(out)
	}
	return o.sink
}

// emit sends events plus an optional trailing CTI downstream as one
// batch, then recycles the buffer. events must be o.buf (possibly grown
// by appends); empty batches with no CTI are elided.
func (o *batchOut) emit(out Sink, events []Event, cti Time, hasCTI bool) {
	o.buf = events[:0]
	if len(events) == 0 && !hasCTI {
		return
	}
	o.b = Batch{Events: events, CTI: cti, HasCTI: hasCTI}
	o.resolve(out).OnBatch(&o.b)
}

// loopBatch implements OnBatch for operators whose per-event logic is
// inherently one-at-a-time (stateful sweeps, merge inputs): the loop
// still amortizes the upstream dispatch and metering to one call per
// batch, which is where the redesign's win comes from.
func loopBatch(s Sink, b *Batch) {
	for i := range b.Events {
		s.OnEvent(b.Events[i])
	}
	if b.HasCTI {
		s.OnCTI(b.CTI)
	}
}
