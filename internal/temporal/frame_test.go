package temporal

import (
	"bytes"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 1000),
		func() []byte { // a realistic checkpoint image
			var w SnapshotWriter
			w.Byte(ckEngine)
			w.Varint(12345)
			w.Events([]Event{PointEvent(7, Row{Int(1), String("k")})})
			return w.Bytes()
		}(),
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	rest := buf
	for i, p := range payloads {
		got, r, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload mismatch: %x vs %x", i, got, p)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after all frames", len(rest))
	}
}

func TestFrameOverheadExact(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 100000} {
		p := make([]byte, n)
		got := len(AppendFrame(nil, p))
		if want := n + FrameOverhead(n); got != want {
			t.Fatalf("payload %d: frame is %d bytes, FrameOverhead predicts %d", n, got, want)
		}
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	payload := []byte("the quick brown checkpoint")
	frame := AppendFrame(nil, payload)

	// Every single-bit flip anywhere in the frame must fail the decode
	// (magic, length, payload, or CRC — no flip may pass silently).
	for i := range frame {
		for b := 0; b < 8; b++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << b
			p, _, err := DecodeFrame(mut)
			if err == nil && bytes.Equal(p, payload) {
				t.Fatalf("bit flip at byte %d bit %d went undetected", i, b)
			}
		}
	}

	// Truncations at every length must error, never panic.
	for n := 0; n < len(frame); n++ {
		if _, _, err := DecodeFrame(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}

	// A payload flip specifically is a checksum error; a magic flip is not.
	mut := append([]byte(nil), frame...)
	mut[len(mut)-5] ^= 0x10 // inside payload
	if _, _, err := DecodeFrame(mut); !IsChecksum(err) {
		t.Fatalf("payload corruption not reported as checksum error: %v", err)
	}
	mut = append(mut[:0:0], frame...)
	mut[0] ^= 0xFF
	if _, _, err := DecodeFrame(mut); err == nil || IsChecksum(err) {
		t.Fatalf("magic corruption misreported: %v", err)
	}
}

func TestFrameOversizedLengthRejected(t *testing.T) {
	// Hand-build a frame whose length prefix claims > maxFrame bytes: the
	// decoder must reject the length before attempting any allocation.
	buf := []byte{FrameMagic}
	buf = appendUvarint(buf, uint64(maxFrame)+1)
	buf = append(buf, make([]byte, 64)...)
	if _, _, err := DecodeFrame(buf); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// FuzzFrameDecode feeds arbitrary bytes to the frame decoder: corrupt
// input must error cleanly — never panic, never over-allocate — and any
// input that does decode must re-encode to a frame whose decode agrees.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, nil))
	f.Add(AppendFrame(nil, []byte("seed payload")))
	f.Add(AppendFrame(AppendFrame(nil, []byte("two")), []byte("frames")))
	f.Add([]byte{FrameMagic, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, rest, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew: %d > %d input bytes", len(rest), len(data))
		}
		re := AppendFrame(nil, payload)
		got, _, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame fails decode: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("re-encode roundtrip mismatch")
		}
	})
}
