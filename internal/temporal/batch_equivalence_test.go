package temporal

import (
	"fmt"
	"math/rand"
	"testing"
)

// Batched delivery must be indistinguishable from per-event delivery: a
// batch is exactly its events in order followed by its trailing CTI, and
// batch boundaries carry no semantics. These property tests drive every
// operator kind with randomized streams, randomized CTI placement and
// randomized batch boundaries, and require the *exact* downstream call
// sequence — each emitted event (lifetime and payload) and each CTI, in
// order — to match the per-event run. This is stronger than comparing
// coalesced results: it pins the contract at the Sink/BatchSink seam.

// feedToken is one delivery step of a randomized input script.
type feedToken struct {
	src   string
	isCTI bool
	t     Time
	ev    Event
}

// seqSink records the exact call sequence it observes.
type seqSink struct {
	tokens []feedToken
}

func (r *seqSink) OnEvent(e Event) { r.tokens = append(r.tokens, feedToken{ev: e}) }
func (r *seqSink) OnCTI(t Time)    { r.tokens = append(r.tokens, feedToken{isCTI: true, t: t}) }
func (r *seqSink) OnFlush()        {}

func tokensEqual(a, b feedToken) bool {
	if a.isCTI != b.isCTI {
		return false
	}
	if a.isCTI {
		return a.t == b.t
	}
	if a.ev.LE != b.ev.LE || a.ev.RE != b.ev.RE || len(a.ev.Payload) != len(b.ev.Payload) {
		return false
	}
	for i := range a.ev.Payload {
		if !a.ev.Payload[i].Equal(b.ev.Payload[i]) {
			return false
		}
	}
	return true
}

func diffTokens(got, want []feedToken) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if !tokensEqual(got[i], want[i]) {
			return fmt.Sprintf("call %d: batched %+v, per-event %+v", i, got[i], want[i])
		}
	}
	if len(got) != len(want) {
		return fmt.Sprintf("call count: batched %d, per-event %d", len(got), len(want))
	}
	return ""
}

// genScript builds a random delivery script over the given sources:
// point events with globally nondecreasing LE (so each source's substream
// is in order), with CTIs injected at random positions at the current
// stream time.
func genScript(rng *rand.Rand, srcs []string, n int) []feedToken {
	t := Time(0)
	var toks []feedToken
	for i := 0; i < n; i++ {
		t += Time(rng.Intn(4))
		src := srcs[rng.Intn(len(srcs))]
		row := Row{Int(int64(t)), String(fmt.Sprintf("k%d", rng.Intn(3))), Int(int64(rng.Intn(11) - 5))}
		toks = append(toks, feedToken{src: src, ev: PointEvent(t, row)})
		if rng.Intn(4) == 0 {
			toks = append(toks, feedToken{src: srcs[rng.Intn(len(srcs))], isCTI: true, t: t})
		}
	}
	return toks
}

func feedPerEvent(p *Pipeline, toks []feedToken, srcs []string) {
	for _, tk := range toks {
		if tk.isCTI {
			p.Input(tk.src).OnCTI(tk.t)
		} else {
			p.Input(tk.src).OnEvent(tk.ev)
		}
	}
	// Flush sources in a fixed order: FlushAll ranges over a map, and a
	// merger's end-of-stream drain order depends on which side ends first.
	for _, src := range srcs {
		p.Input(src).OnFlush()
	}
}

// feedBatched replays the same script through the batch entries, cutting
// batches at source changes, after every trailing CTI, and at random
// extra points.
func feedBatched(rng *rand.Rand, p *Pipeline, toks []feedToken, srcs []string) {
	var b Batch
	cur := ""
	flush := func() {
		if len(b.Events) > 0 || b.HasCTI {
			p.BatchInput(cur).OnBatch(&b)
			b = Batch{Events: b.Events[:0]}
		}
	}
	for _, tk := range toks {
		if tk.src != cur {
			flush()
			cur = tk.src
		}
		if tk.isCTI {
			b.CTI, b.HasCTI = tk.t, true
			flush() // a CTI is always trailing: it ends its batch
			continue
		}
		b.Events = append(b.Events, tk.ev)
		if rng.Intn(3) == 0 {
			flush() // random boundary: must not be observable downstream
		}
	}
	flush()
	for _, src := range srcs {
		p.Input(src).OnFlush()
	}
}

// checkBatchEquivalence compiles the plan twice and compares the exact
// output call sequence of a per-event run against a batched run of the
// same script, across several random seeds.
func checkBatchEquivalence(t *testing.T, name string, mk func() *Plan, srcs []string) {
	t.Helper()
	for seed := int64(0); seed < 8; seed++ {
		toks := genScript(rand.New(rand.NewSource(seed)), srcs, 120)

		ref := &seqSink{}
		p1, err := Compile(mk(), ref)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		feedPerEvent(p1, toks, srcs)

		got := &seqSink{}
		p2, err := Compile(mk(), got)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		feedBatched(rand.New(rand.NewSource(seed+1000)), p2, toks, srcs)

		if d := diffTokens(got.tokens, ref.tokens); d != "" {
			t.Fatalf("%s seed %d: batched run diverged: %s", name, seed, d)
		}
	}
}

// scriptSchema matches genScript's rows: {Time, Key, V}.
func scriptSchema() *Schema {
	return NewSchema(
		Field{Name: "Time", Kind: KindInt},
		Field{Name: "Key", Kind: KindString},
		Field{Name: "V", Kind: KindInt},
	)
}

func TestBatchEquivalenceEveryOperator(t *testing.T) {
	sch := scriptSchema()
	one := []string{"s"}
	two := []string{"l", "r"}
	cases := []struct {
		name string
		srcs []string
		mk   func() *Plan
	}{
		{"Select", one, func() *Plan {
			return Scan("s", sch).Where(ColGtInt("V", 0))
		}},
		{"Project", one, func() *Plan {
			return Scan("s", sch).Project(Keep("Time"), Keep("V"))
		}},
		{"AlterLifetimeWindow", one, func() *Plan {
			return Scan("s", sch).WithWindow(10)
		}},
		{"AlterLifetimeHop", one, func() *Plan {
			return Scan("s", sch).WithHop(10, 4)
		}},
		{"AlterLifetimeShift", one, func() *Plan {
			return Scan("s", sch).WithWindow(6).ShiftLifetime(-3)
		}},
		{"AlterLifetimePoint", one, func() *Plan {
			return Scan("s", sch).WithWindow(5).Count("C").ToPoint()
		}},
		{"Aggregate", one, func() *Plan {
			return Scan("s", sch).WithWindow(10).Sum("V", "S")
		}},
		{"GroupApply", one, func() *Plan {
			return Scan("s", sch).GroupApply([]string{"Key"}, func(g *Plan) *Plan {
				return g.WithWindow(8).Count("C")
			})
		}},
		{"UDO", one, func() *Plan {
			return Scan("s", sch).Apply(UDOSpec{
				Name: "count", Window: 10, Hop: 5,
				Out: NewSchema(Field{Name: "N", Kind: KindInt}),
				Fn: func(ws, we Time, rows []Row) []Row {
					return []Row{{Int(int64(len(rows)))}}
				},
			})
		}},
		{"Union", two, func() *Plan {
			return Scan("l", sch).Union(Scan("r", sch))
		}},
		{"TemporalJoin", two, func() *Plan {
			return Scan("l", sch).Join(Scan("r", sch).WithWindow(12), []string{"Key"}, []string{"Key"}, nil)
		}},
		{"AntiSemiJoin", two, func() *Plan {
			return Scan("l", sch).AntiSemiJoin(Scan("r", sch).WithWindow(12), []string{"Key"}, []string{"Key"})
		}},
		{"Multicast", one, func() *Plan {
			// A shared node compiles to a physical multicast feeding both
			// sides of the union.
			base := Scan("s", sch).Where(ColGtInt("V", -10))
			return base.WithWindow(4).Count("C").Union(base.WithWindow(9).Count("C"))
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			checkBatchEquivalence(t, tc.name, tc.mk, tc.srcs)
		})
	}
}

// reorderOp is not reachable from a Plan (it fronts out-of-order live
// feeds), so its batch path is pinned at operator level: same disordered
// input, same released sequence — including the mid-batch releases forced
// by the advancing watermark.
func TestBatchEquivalenceReorder(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var evs []Event
		tm := Time(50)
		for i := 0; i < 150; i++ {
			tm += Time(rng.Intn(4))
			// Disorder beyond the slack now and then: late events release
			// immediately, which the batch path must reproduce in place.
			le := tm - Time(rng.Intn(12))
			evs = append(evs, PointEvent(le, Row{Int(int64(le))}))
		}
		withCTI := seed%2 == 0 // half the runs end with a punctuation

		ref := &seqSink{}
		r1 := newReorder(5, ref)
		for _, e := range evs {
			r1.OnEvent(e)
		}
		if withCTI {
			r1.OnCTI(tm)
		}
		r1.OnFlush()

		got := &seqSink{}
		r2 := newReorder(5, got)
		var b Batch
		for _, e := range evs {
			b.Events = append(b.Events, e)
			if rng.Intn(3) == 0 {
				r2.OnBatch(&b)
				b = Batch{Events: b.Events[:0]}
			}
		}
		if withCTI {
			b.CTI, b.HasCTI = tm, true
		}
		if len(b.Events) > 0 || b.HasCTI {
			r2.OnBatch(&b)
		}
		r2.OnFlush()

		if d := diffTokens(got.tokens, ref.tokens); d != "" {
			t.Fatalf("reorder seed %d: batched run diverged: %s", seed, d)
		}
	}
}
