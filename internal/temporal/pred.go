package temporal

import (
	"fmt"
	"strings"
)

// Predicate is a declarative filter over rows of some schema. Column names
// are resolved to positions at plan-compile time, so the same predicate
// works wherever the named columns exist. Desc is used when rendering
// plans (and when counting "lines of code" for the Fig. 14 comparison).
//
// MakeCol, when set, is the vectorized twin of Make: the fused columnar
// kernel (op_fused.go) evaluates it over whole ColBatch columns instead
// of row at a time. A predicate without MakeCol still works everywhere —
// the kernel falls back to materializing rows for that batch.
type Predicate struct {
	Cols    []string
	Make    func(idx []int) func(Row) bool
	MakeCol func(idx []int) ColPredicate
	Desc    string
}

// ColPredicate evaluates a predicate over the columns of a batch: it
// clears sel[i] for every row i that fails, leaving passing rows
// untouched, and reports whether the evaluation happened at all. A
// false return means the column shape is not one the vectorized path
// handles exactly (nulls, mixed vectors, unexpected kind) — the caller
// must fall back to the row-at-a-time predicate so results stay
// bit-identical with the interpreted operator chain.
type ColPredicate func(cb *ColBatch, sel []bool) bool

func (p Predicate) compile(s *Schema) func(Row) bool {
	return p.Make(s.Indexes(p.Cols...))
}

func (p Predicate) compileCol(s *Schema) ColPredicate {
	if p.MakeCol == nil {
		return nil
	}
	return p.MakeCol(s.Indexes(p.Cols...))
}

// pureVec returns the column vector at position c if it is a plain
// single-kind vector the vectorized predicates can scan directly — no
// nulls, no mixed spill-over — and nil otherwise.
func pureVec(cb *ColBatch, c int, kind Kind) *ColVec {
	v := &cb.Cols[c]
	if v.Kind != kind || v.Nulls != nil || v.Mixed != nil {
		return nil
	}
	return v
}

// ColEqInt matches rows whose integer column equals v.
func ColEqInt(col string, v int64) Predicate {
	return Predicate{
		Cols: []string{col},
		Make: func(ix []int) func(Row) bool {
			c := ix[0]
			return func(r Row) bool { return r[c].AsInt() == v }
		},
		MakeCol: func(ix []int) ColPredicate {
			c := ix[0]
			return func(cb *ColBatch, sel []bool) bool {
				vec := pureVec(cb, c, KindInt)
				if vec == nil {
					return false
				}
				for i, x := range vec.Ints {
					if x != v {
						sel[i] = false
					}
				}
				return true
			}
		},
		Desc: fmt.Sprintf("%s == %d", col, v),
	}
}

// ColEqString matches rows whose string column equals v.
func ColEqString(col, v string) Predicate {
	return Predicate{
		Cols: []string{col},
		Make: func(ix []int) func(Row) bool {
			c := ix[0]
			return func(r Row) bool { return r[c].AsString() == v }
		},
		MakeCol: func(ix []int) ColPredicate {
			c := ix[0]
			return func(cb *ColBatch, sel []bool) bool {
				vec := pureVec(cb, c, KindString)
				if vec == nil || vec.Dict == nil {
					return false
				}
				// One string compare per distinct dictionary entry, then a
				// code-indexed scan — the dictionary is tiny next to the batch.
				match := -1
				for code, s := range vec.Dict.strs {
					if s == v {
						match = code
						break
					}
				}
				dlen := int32(vec.Dict.Len())
				for i, code := range vec.Codes {
					if code < 0 || code >= dlen {
						return false // corrupt view; row path will panic with context
					}
					if int(code) != match {
						sel[i] = false
					}
				}
				return true
			}
		},
		Desc: fmt.Sprintf("%s == %q", col, v),
	}
}

// ColGtInt matches rows whose integer column is strictly greater than v.
func ColGtInt(col string, v int64) Predicate {
	return Predicate{
		Cols: []string{col},
		Make: func(ix []int) func(Row) bool {
			c := ix[0]
			return func(r Row) bool { return r[c].AsInt() > v }
		},
		MakeCol: func(ix []int) ColPredicate {
			c := ix[0]
			return func(cb *ColBatch, sel []bool) bool {
				vec := pureVec(cb, c, KindInt)
				if vec == nil {
					return false
				}
				for i, x := range vec.Ints {
					if x <= v {
						sel[i] = false
					}
				}
				return true
			}
		},
		Desc: fmt.Sprintf("%s > %d", col, v),
	}
}

// ColLtInt matches rows whose integer column is strictly less than v.
func ColLtInt(col string, v int64) Predicate {
	return Predicate{
		Cols: []string{col},
		Make: func(ix []int) func(Row) bool {
			c := ix[0]
			return func(r Row) bool { return r[c].AsInt() < v }
		},
		MakeCol: func(ix []int) ColPredicate {
			c := ix[0]
			return func(cb *ColBatch, sel []bool) bool {
				vec := pureVec(cb, c, KindInt)
				if vec == nil {
					return false
				}
				for i, x := range vec.Ints {
					if x >= v {
						sel[i] = false
					}
				}
				return true
			}
		},
		Desc: fmt.Sprintf("%s < %d", col, v),
	}
}

// ColGeFloat matches rows whose float column is >= v.
func ColGeFloat(col string, v float64) Predicate {
	return Predicate{
		Cols: []string{col},
		Make: func(ix []int) func(Row) bool {
			c := ix[0]
			return func(r Row) bool { return r[c].AsFloat() >= v }
		},
		MakeCol: func(ix []int) ColPredicate {
			c := ix[0]
			return func(cb *ColBatch, sel []bool) bool {
				vec := pureVec(cb, c, KindFloat)
				if vec == nil {
					return false
				}
				for i, f := range vec.Floats {
					if !(f >= v) { // NaN fails, exactly like the row path
						sel[i] = false
					}
				}
				return true
			}
		},
		Desc: fmt.Sprintf("%s >= %g", col, v),
	}
}

// AbsGeFloat matches rows where |column| >= v (used for z-score thresholds).
func AbsGeFloat(col string, v float64) Predicate {
	return Predicate{
		Cols: []string{col},
		Make: func(ix []int) func(Row) bool {
			c := ix[0]
			return func(r Row) bool {
				f := r[c].AsFloat()
				if f < 0 {
					f = -f
				}
				return f >= v
			}
		},
		MakeCol: func(ix []int) ColPredicate {
			c := ix[0]
			return func(cb *ColBatch, sel []bool) bool {
				vec := pureVec(cb, c, KindFloat)
				if vec == nil {
					return false
				}
				for i, f := range vec.Floats {
					if f < 0 {
						f = -f
					}
					if !(f >= v) {
						sel[i] = false
					}
				}
				return true
			}
		},
		Desc: fmt.Sprintf("|%s| >= %g", col, v),
	}
}

// FnPred wraps an arbitrary row function over the named columns. The
// function receives the values of cols in order.
func FnPred(desc string, fn func(vals []Value) bool, cols ...string) Predicate {
	return Predicate{
		Cols: cols,
		Make: func(ix []int) func(Row) bool {
			return func(r Row) bool {
				vals := make([]Value, len(ix))
				for i, c := range ix {
					vals[i] = r[c]
				}
				return fn(vals)
			}
		},
		Desc: desc,
	}
}

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate {
	cols := []string{}
	descs := make([]string, len(ps))
	for i, p := range ps {
		cols = append(cols, p.Cols...)
		descs[i] = p.Desc
	}
	out := Predicate{
		Cols: cols,
		Make: func(ix []int) func(Row) bool {
			fns := make([]func(Row) bool, len(ps))
			off := 0
			for i, p := range ps {
				fns[i] = p.Make(ix[off : off+len(p.Cols)])
				off += len(p.Cols)
			}
			return func(r Row) bool {
				for _, f := range fns {
					if !f(r) {
						return false
					}
				}
				return true
			}
		},
		Desc: "(" + strings.Join(descs, " AND ") + ")",
	}
	// A conjunction vectorizes iff every member does: intersection of
	// per-member selection masks. (Or does not get a MakeCol — its row
	// form short-circuits, so a cleared-by-one-member mask is not the
	// same computation; the kernel simply falls back for Or.)
	vectorizable := true
	for _, p := range ps {
		if p.MakeCol == nil {
			vectorizable = false
			break
		}
	}
	if vectorizable {
		mem := ps
		out.MakeCol = func(ix []int) ColPredicate {
			cps := make([]ColPredicate, len(mem))
			off := 0
			for i, p := range mem {
				cps[i] = p.MakeCol(ix[off : off+len(p.Cols)])
				off += len(p.Cols)
			}
			return func(cb *ColBatch, sel []bool) bool {
				for _, cp := range cps {
					if !cp(cb, sel) {
						return false
					}
				}
				return true
			}
		}
	}
	return out
}

// Or combines predicates disjunctively.
func Or(ps ...Predicate) Predicate {
	cols := []string{}
	descs := make([]string, len(ps))
	for i, p := range ps {
		cols = append(cols, p.Cols...)
		descs[i] = p.Desc
	}
	return Predicate{
		Cols: cols,
		Make: func(ix []int) func(Row) bool {
			fns := make([]func(Row) bool, len(ps))
			off := 0
			for i, p := range ps {
				fns[i] = p.Make(ix[off : off+len(p.Cols)])
				off += len(p.Cols)
			}
			return func(r Row) bool {
				for _, f := range fns {
					if f(r) {
						return true
					}
				}
				return false
			}
		},
		Desc: "(" + strings.Join(descs, " OR ") + ")",
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	return Predicate{
		Cols: p.Cols,
		Make: func(ix []int) func(Row) bool {
			f := p.Make(ix)
			return func(r Row) bool { return !f(r) }
		},
		Desc: "NOT " + p.Desc,
	}
}

// Projection is one output column of a Project operator: either a direct
// copy/rename of a source column (Source != ""), which preserves
// partitioning lineage for the optimizer, or a computed expression.
type Projection struct {
	Name   string
	Kind   Kind
	Source string // direct copy of this input column if non-empty

	// Computed projection: Make receives positions of Cols.
	Cols []string
	Make func(idx []int) func(Row) Value
	Desc string
}

// Keep projects an input column unchanged.
func Keep(col string) Projection { return Projection{Name: col, Source: col} }

// Rename projects an input column under a new name.
func Rename(col, as string) Projection { return Projection{Name: as, Source: col} }

// ConstInt projects a constant integer column.
func ConstInt(name string, v int64) Projection {
	return Projection{
		Name: name, Kind: KindInt,
		Make: func([]int) func(Row) Value { return func(Row) Value { return Int(v) } },
		Desc: fmt.Sprintf("%d", v),
	}
}

// Compute projects a computed column over the named inputs. fn receives the
// values of cols in order.
func Compute(name string, kind Kind, fn func(vals []Value) Value, cols ...string) Projection {
	return Projection{
		Name: name, Kind: kind, Cols: cols,
		Make: func(ix []int) func(Row) Value {
			return func(r Row) Value {
				vals := make([]Value, len(ix))
				for i, c := range ix {
					vals[i] = r[c]
				}
				return fn(vals)
			}
		},
		Desc: "fn(" + strings.Join(cols, ",") + ")",
	}
}

// JoinPred is an optional residual predicate over a pair of joined rows,
// evaluated after the equality keys match (e.g. "left.power <
// right.power+100" from the paper's Figure 4).
type JoinPred struct {
	LeftCols, RightCols []string
	Make                func(li, ri []int) func(l, r Row) bool
	Desc                string
}
