package temporal

import (
	"container/heap"
	"sort"
)

// The stateless hot-path operators implement both Sink (per-event) and
// BatchSink (batch-at-a-time). The batch methods are the primary path:
// they process a whole run in a tight loop and make one downstream call,
// reusing a per-operator output buffer (see batchOut). The per-event
// methods remain for drivers and operators that have not been converted.

// multicast fans one ordered stream out to several downstream sinks.
type multicast struct {
	outs  []Sink
	bouts []BatchSink // lazily resolved batch views of outs
	b     Batch       // reused header for the events-only sub-batch
}

func (m *multicast) OnEvent(e Event) {
	// The payload slice is shared across branches; operators never mutate
	// input payloads in place, so sharing is safe and allocation-free.
	for _, o := range m.outs {
		o.OnEvent(e)
	}
}

func (m *multicast) OnBatch(b *Batch) {
	if m.bouts == nil {
		m.bouts = make([]BatchSink, len(m.outs))
		for i, o := range m.outs {
			m.bouts[i] = AsBatchSink(o)
		}
	}
	// Events go branch-major (each branch gets the whole run in one
	// call); the trailing punctuation is then delivered branch by branch,
	// exactly as OnCTI would. Branch-major event delivery is safe because
	// event pushes alone never emit punctuations, and a merge operator
	// fed by two branches reaches the same state and releases the same
	// sequence regardless of the interleaving of its ordered inputs.
	if len(b.Events) > 0 {
		m.b = Batch{Events: b.Events}
		for _, o := range m.bouts {
			o.OnBatch(&m.b)
		}
	}
	if b.HasCTI {
		for _, o := range m.outs {
			o.OnCTI(b.CTI)
		}
	}
}

func (m *multicast) OnCTI(t Time) {
	for _, o := range m.outs {
		o.OnCTI(t)
	}
}

func (m *multicast) OnFlush() {
	for _, o := range m.outs {
		o.OnFlush()
	}
}

// filterOp drops events whose payload fails the predicate.
type filterOp struct {
	pred func(Row) bool
	out  Sink
	bo   batchOut
}

func (f *filterOp) OnEvent(e Event) {
	if f.pred(e.Payload) {
		f.out.OnEvent(e)
	}
}

func (f *filterOp) OnBatch(b *Batch) {
	evs := b.Events
	// Fast path: nothing dropped in the prefix scan — forward the
	// producer's batch untouched, with zero copying.
	i := 0
	for i < len(evs) && f.pred(evs[i].Payload) {
		i++
	}
	if i == len(evs) {
		if len(evs) > 0 || b.HasCTI {
			f.bo.resolve(f.out).OnBatch(b)
		}
		return
	}
	kept := append(f.bo.buf[:0], evs[:i]...)
	for i++; i < len(evs); i++ {
		if f.pred(evs[i].Payload) {
			kept = append(kept, evs[i])
		}
	}
	f.bo.emit(f.out, kept, b.CTI, b.HasCTI)
}

func (f *filterOp) OnCTI(t Time) { f.out.OnCTI(t) }
func (f *filterOp) OnFlush()     { f.out.OnFlush() }

// projectOp rewrites payloads. Column resolution happened at compile time;
// each output column is either a direct copy or a computed function.
type projectOp struct {
	fns   []func(Row) Value
	arena rowArena
	out   Sink
	bo    batchOut
}

func (p *projectOp) OnEvent(e Event) {
	e.Payload = p.projectRow(e.Payload)
	p.out.OnEvent(e)
}

func (p *projectOp) OnBatch(b *Batch) {
	outEvs := p.bo.buf[:0]
	for i := range b.Events {
		e := b.Events[i]
		e.Payload = p.projectRow(e.Payload)
		outEvs = append(outEvs, e)
	}
	p.bo.emit(p.out, outEvs, b.CTI, b.HasCTI)
}

func (p *projectOp) projectRow(in Row) Row {
	row := p.arena.alloc(len(p.fns))
	for i, fn := range p.fns {
		row[i] = fn(in)
	}
	return row
}

func (p *projectOp) OnCTI(t Time) { p.out.OnCTI(t) }
func (p *projectOp) OnFlush()     { p.out.OnFlush() }

// alterLifetimeOp adjusts event lifetimes. All supported modes are
// monotone nondecreasing in LE, so input order is preserved; the CTI is
// translated by the worst-case backward shift.
//
// LifePoint is the one event-identity-sensitive mode: its output depends
// on how the input temporal relation is carved into events, and upstream
// aggregates legitimately fragment their output at punctuation
// boundaries. The operator therefore works on the *coalesced* relation:
// an event that merely continues a previous one (abutting lifetime, equal
// payload) produces no new point. This keeps results independent of
// punctuation rate — the repeatability property the whole system leans on.
type alterLifetimeOp struct {
	mode        LifetimeMode
	window, hop Time
	shift       Time
	out         Sink
	bo          batchOut
	// continuation-suppression state for LifePoint
	pending  map[uint64][]pointPending
	npending int // live entries across pending buckets
}

type pointPending struct {
	re      Time
	payload Row
}

func (a *alterLifetimeOp) OnEvent(e Event) {
	if e, ok := a.transform(e); ok {
		a.out.OnEvent(e)
	}
}

func (a *alterLifetimeOp) OnBatch(b *Batch) {
	outEvs := a.bo.buf[:0]
	if a.mode == LifeWindow && a.window > 0 {
		// The dominant mode (WithWindow), with the mode switch and the
		// RE<=LE clamp hoisted out of the loop: window > 0 implies RE > LE.
		for i := range b.Events {
			e := b.Events[i]
			e.RE = e.LE + a.window
			outEvs = append(outEvs, e)
		}
	} else {
		for i := range b.Events {
			if e, ok := a.transform(b.Events[i]); ok {
				outEvs = append(outEvs, e)
			}
		}
	}
	cti := b.CTI
	if b.HasCTI {
		cti = a.shiftCTI(cti)
	}
	a.bo.emit(a.out, outEvs, cti, b.HasCTI)
}

// transform applies the lifetime rewrite; ok=false suppresses the event
// (a LifePoint continuation).
func (a *alterLifetimeOp) transform(e Event) (_ Event, ok bool) {
	switch a.mode {
	case LifeWindow:
		e.RE = e.LE + a.window
	case LifeHop:
		// Event at time s contributes to windows of width w ending at
		// multiples of h in (s, s+w]; each result is valid for one hop.
		s := e.LE
		e.LE = floorDiv(s, a.hop)*a.hop + a.hop
		e.RE = floorDiv(s+a.window, a.hop)*a.hop + a.hop
	case LifeShift:
		e.LE += a.shift
		e.RE += a.shift
	case LifePoint:
		if a.isContinuation(&e) {
			return e, false
		}
		e.RE = e.LE + Tick
	}
	if e.RE <= e.LE {
		e.RE = e.LE + Tick
	}
	return e, true
}

// isContinuation records e's lifetime and reports whether it extends a
// previously seen event (in which case ToPoint already emitted its point).
func (a *alterLifetimeOp) isContinuation(e *Event) bool {
	if a.pending == nil {
		a.pending = make(map[uint64][]pointPending)
	}
	h := HashSeed
	for _, v := range e.Payload {
		h = v.Hash(h)
	}
	bucket := a.pending[h]
	kept := bucket[:0]
	found := false
	for i := range bucket {
		p := bucket[i]
		if !found && p.re == e.LE && p.payload.Equal(e.Payload) {
			// Extend instead of re-emitting.
			p.re = e.RE
			found = true
		}
		if p.re >= e.LE { // can still abut a future event (LE ordered)
			kept = append(kept, p)
		}
	}
	if !found {
		kept = append(kept, pointPending{re: e.RE, payload: e.Payload})
	}
	a.npending += len(kept) - len(bucket)
	if len(kept) == 0 {
		delete(a.pending, h)
	} else {
		a.pending[h] = kept
	}
	return found
}

func (a *alterLifetimeOp) liveState() int { return a.npending }

// Snapshot serializes the LifePoint continuation table in canonical
// (re, payload) order. Bucket-internal order is behavior-neutral: two
// entries can both match a future event only when they are identical, so
// which one gets extended is indistinguishable downstream.
func (a *alterLifetimeOp) Snapshot(w *SnapshotWriter) {
	w.Byte(ckAlterLife)
	ents := make([]pointPending, 0, a.npending)
	for _, bucket := range a.pending {
		ents = append(ents, bucket...)
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].re != ents[j].re {
			return ents[i].re < ents[j].re
		}
		return compareRows(ents[i].payload, ents[j].payload) < 0
	})
	w.Uvarint(uint64(len(ents)))
	for _, p := range ents {
		w.Varint(p.re)
		w.Row(p.payload)
	}
}

func (a *alterLifetimeOp) Restore(r *SnapshotReader) error {
	if err := r.Expect(ckAlterLife, "alter-lifetime"); err != nil {
		return err
	}
	n := r.Count("pending points")
	for i := 0; i < n && r.Err() == nil; i++ {
		re := r.Varint()
		payload := r.Row()
		if r.Err() != nil {
			break
		}
		if a.pending == nil {
			a.pending = make(map[uint64][]pointPending)
		}
		h := HashSeed
		for _, v := range payload {
			h = v.Hash(h)
		}
		a.pending[h] = append(a.pending[h], pointPending{re: re, payload: payload})
		a.npending++
	}
	return r.Err()
}

func (a *alterLifetimeOp) shiftCTI(t Time) Time {
	if a.mode == LifeShift && a.shift < 0 {
		t += a.shift
	}
	return t
}

func (a *alterLifetimeOp) OnCTI(t Time) { a.out.OnCTI(a.shiftCTI(t)) }
func (a *alterLifetimeOp) OnFlush()     { a.out.OnFlush() }

// floorDiv is floor division that is correct for negative operands.
func floorDiv(a, b Time) Time {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// eventHeap orders events by (LE, RE, payload) — the canonical engine
// order, matching SortEvents.
type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].LE != h[j].LE {
		return h[i].LE < h[j].LE
	}
	if h[i].RE != h[j].RE {
		return h[i].RE < h[j].RE
	}
	return compareRows(h[i].Payload, h[j].Payload) < 0
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// reorderOp restores nondecreasing-LE order for a source that may be
// disordered by at most slack time units. Events are buffered and released
// once the high-watermark (max LE seen, or CTI) has passed LE + slack.
type reorderOp struct {
	slack Time
	buf   eventHeap
	wm    Time
	out   Sink
	bo    batchOut
}

func newReorder(slack Time, out Sink) *reorderOp {
	return &reorderOp{slack: slack, wm: MinTime, out: out}
}

func (r *reorderOp) OnEvent(e Event) {
	heap.Push(&r.buf, e)
	if e.LE > r.wm {
		r.wm = e.LE
	}
	r.release(r.wm - r.slack)
}

// OnBatch runs the per-event admit/release cycle over the whole run but
// accumulates released events into one output batch. The release points
// (per event, against the running watermark) match the per-event path
// exactly, so even slack-violating inputs produce identical output.
func (r *reorderOp) OnBatch(b *Batch) {
	released := r.bo.buf[:0]
	for i := range b.Events {
		e := b.Events[i]
		heap.Push(&r.buf, e)
		if e.LE > r.wm {
			r.wm = e.LE
		}
		upto := r.wm - r.slack
		for len(r.buf) > 0 && r.buf[0].LE <= upto {
			released = append(released, heap.Pop(&r.buf).(Event))
		}
	}
	if b.HasCTI {
		// A CTI promises no later event has LE < t: release below t
		// regardless of slack.
		if b.CTI > r.wm {
			r.wm = b.CTI
		}
		for len(r.buf) > 0 && r.buf[0].LE <= b.CTI {
			released = append(released, heap.Pop(&r.buf).(Event))
		}
	}
	r.bo.emit(r.out, released, b.CTI, b.HasCTI)
}

func (r *reorderOp) OnCTI(t Time) {
	// A CTI promises no later event has LE < t, so everything below t can
	// be released regardless of slack.
	if t > r.wm {
		r.wm = t
	}
	r.release(t)
	r.out.OnCTI(t)
}

func (r *reorderOp) OnFlush() {
	r.release(MaxTime)
	r.out.OnFlush()
}

func (r *reorderOp) liveState() int { return len(r.buf) }

// Snapshot serializes the watermark and the buffered events in canonical
// order. A sorted eventHeap slice is itself a valid min-heap, and release
// order is fully determined by the heap's Less, so the rebuilt buffer
// releases the identical sequence.
func (r *reorderOp) Snapshot(w *SnapshotWriter) {
	w.Byte(ckReorder)
	w.Varint(r.wm)
	buf := append([]Event(nil), r.buf...)
	SortEvents(buf)
	w.Events(buf)
}

func (r *reorderOp) Restore(rd *SnapshotReader) error {
	if err := rd.Expect(ckReorder, "reorder"); err != nil {
		return err
	}
	r.wm = rd.Varint()
	r.buf = eventHeap(rd.Events())
	return rd.Err()
}

func (r *reorderOp) release(upto Time) {
	for len(r.buf) > 0 && r.buf[0].LE <= upto {
		r.out.OnEvent(heap.Pop(&r.buf).(Event))
	}
}
