package temporal

import (
	"sort"

	"timr/internal/obs"
)

// Engine hosts a compiled pipeline together with a result collector. It is
// the "embedded DSMS server instance" that TiMR creates inside reducers
// (paper §III-A step 4) and that the real-time example drives directly.
//
// An Engine is single-threaded by design, like one StreamInsight instance;
// parallelism comes from running many engines over partitions (TiMR) —
// exactly the paper's architecture.
type Engine struct {
	pipeline *Pipeline
	collect  *Collector
	sink     Sink
	// CTIPeriod controls automatic punctuation injection by FeedSorted:
	// a CTI is broadcast whenever application time advances by this much.
	// Zero disables automatic CTIs (state is bounded only by Flush).
	CTIPeriod Time
	lastCTI   Time
}

// NewEngine compiles the plan with an internal collector for results.
func NewEngine(plan *Plan) (*Engine, error) { return NewEngineObserved(plan, nil) }

// NewEngineTo compiles the plan delivering results to a caller-supplied
// sink (e.g. a live dashboard in the real-time examples).
func NewEngineTo(plan *Plan, out Sink) (*Engine, error) {
	return NewEngineObservedTo(plan, out, nil)
}

// NewEngineObserved is NewEngine with per-operator instrumentation
// reporting into scope (see CompileObserved). A nil scope disables it.
func NewEngineObserved(plan *Plan, scope *obs.Scope) (*Engine, error) {
	col := &Collector{}
	p, err := CompileObserved(plan, col, scope)
	if err != nil {
		return nil, err
	}
	return &Engine{pipeline: p, collect: col, sink: col, CTIPeriod: Hour, lastCTI: MinTime}, nil
}

// NewEngineObservedTo is NewEngineTo with per-operator instrumentation
// reporting into scope (see CompileObserved). A nil scope disables it.
// Engines for different partitions of the same fragment may share one
// scope: metric handles are shared atomics, so counts aggregate.
func NewEngineObservedTo(plan *Plan, out Sink, scope *obs.Scope) (*Engine, error) {
	p, err := CompileObserved(plan, out, scope)
	if err != nil {
		return nil, err
	}
	return &Engine{pipeline: p, sink: out, CTIPeriod: Hour, lastCTI: MinTime}, nil
}

// Pipeline exposes the compiled pipeline.
func (e *Engine) Pipeline() *Pipeline { return e.pipeline }

// Feed pushes one event into the named source.
func (e *Engine) Feed(source string, ev Event) {
	e.pipeline.Input(source).OnEvent(ev)
	e.maybeCTI(ev.LE)
}

func (e *Engine) maybeCTI(t Time) {
	if e.CTIPeriod <= 0 {
		return
	}
	if e.lastCTI == MinTime {
		e.lastCTI = t
		return
	}
	if t-e.lastCTI >= e.CTIPeriod {
		e.pipeline.AdvanceAll(t)
		e.lastCTI = t
	}
}

// Advance broadcasts a CTI at time t to every source.
func (e *Engine) Advance(t Time) {
	e.pipeline.AdvanceAll(t)
	e.lastCTI = t
}

// Flush ends all inputs, draining buffered state.
func (e *Engine) Flush() { e.pipeline.FlushAll() }

// Results returns the collected output, coalesced and sorted, when the
// engine was built with NewEngine.
func (e *Engine) Results() []Event {
	if e.collect == nil {
		return nil
	}
	return Coalesce(e.collect.Events)
}

// RawResults returns output events as emitted (fragmented at CTI
// boundaries), sorted.
func (e *Engine) RawResults() []Event {
	if e.collect == nil {
		return nil
	}
	out := append([]Event(nil), e.collect.Events...)
	SortEvents(out)
	return out
}

// SourceEvent pairs an event with the source it belongs to, for
// multi-source runs.
type SourceEvent struct {
	Source string
	Event  Event
}

// FeedSorted feeds a batch of source events in global LE order (sorting
// through an index vector if needed, which keeps equal-timestamp order
// stable without shuffling the events themselves), injecting CTIs every
// CTIPeriod of application time.
func (e *Engine) FeedSorted(events []SourceEvent) {
	ordered := sort.SliceIsSorted(events, func(i, j int) bool {
		return events[i].Event.LE < events[j].Event.LE
	})
	if ordered {
		for i := range events {
			e.Feed(events[i].Source, events[i].Event)
		}
		return
	}
	order := make([]int32, len(events))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return events[order[i]].Event.LE < events[order[j]].Event.LE
	})
	for _, ix := range order {
		e.Feed(events[ix].Source, events[ix].Event)
	}
}

// RunPlan compiles and runs a plan over per-source event batches and
// returns coalesced, sorted results. It is the one-call path used
// throughout the tests and examples.
func RunPlan(plan *Plan, inputs map[string][]Event) ([]Event, error) {
	eng, err := NewEngine(plan)
	if err != nil {
		return nil, err
	}
	var all []SourceEvent
	for src, evs := range inputs {
		if _, ok := eng.pipeline.inputs[src]; !ok {
			continue // input not referenced by the plan
		}
		for _, ev := range evs {
			all = append(all, SourceEvent{Source: src, Event: ev})
		}
	}
	eng.FeedSorted(all)
	eng.Flush()
	return eng.Results(), nil
}

// RowsToPointEvents converts rows to point events using the values of the
// given time column (paper §III-A step 4: "sets event lifetime to
// [Time, Time+δ) and the payload to the remaining columns" — we keep the
// time column in the payload, matching the unified schema of Figure 9
// where queries filter on it too).
func RowsToPointEvents(rows []Row, timeCol int) []Event {
	out := make([]Event, len(rows))
	for i, r := range rows {
		out[i] = PointEvent(r[timeCol].AsInt(), r)
	}
	return out
}
