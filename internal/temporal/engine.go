package temporal

import (
	"fmt"
	"sort"

	"timr/internal/obs"
)

// Engine hosts a compiled pipeline together with a result collector. It is
// the "embedded DSMS server instance" that TiMR creates inside reducers
// (paper §III-A step 4) and that the real-time example drives directly.
//
// An Engine is single-threaded by design, like one StreamInsight instance;
// parallelism comes from running many engines over partitions (TiMR) —
// exactly the paper's architecture.
type Engine struct {
	pipeline *Pipeline
	collect  *Collector
	sink     Sink
	// CTIPeriod controls automatic punctuation injection by Feed,
	// FeedBatch and FeedSorted: a CTI is broadcast whenever application
	// time advances past the next period boundary (the schedule is
	// anchored at the first event's time). Zero disables automatic CTIs
	// (state is bounded only by Flush).
	CTIPeriod Time
	lastCTI   Time
	fed       bool    // any input seen; Restore on a fed engine is an error
	feedBuf   []Event // reused run buffer for FeedSorted
	feedBatch Batch   // reused batch header for FeedBatch/FeedSorted
}

// Option configures an Engine at construction.
type Option func(*engineOptions)

type engineOptions struct {
	sink        Sink
	scope       *obs.Scope
	ctiPeriod   Time
	interpreted bool
}

// WithSink delivers results to a caller-supplied sink (e.g. a live
// dashboard) instead of an internal collector. Engines built with a
// custom sink return nil from Results/RawResults.
func WithSink(out Sink) Option { return func(o *engineOptions) { o.sink = out } }

// WithObs enables per-operator instrumentation reporting into scope (see
// CompileObserved). A nil scope disables it. Engines for different
// partitions of the same fragment may share one scope: metric handles are
// shared atomics, so counts aggregate.
func WithObs(scope *obs.Scope) Option { return func(o *engineOptions) { o.scope = scope } }

// WithCTIPeriod sets the automatic punctuation period (see
// Engine.CTIPeriod). Zero disables automatic CTIs. The default is Hour.
func WithCTIPeriod(p Time) Option { return func(o *engineOptions) { o.ctiPeriod = p } }

// WithInterpreted disables the stateless-operator fusion pass (see
// CompileInterpreted): every plan node runs as its own physical
// operator. Used by the fused-vs-interpreted differential gates; output
// and checkpoint bytes are identical either way.
func WithInterpreted() Option { return func(o *engineOptions) { o.interpreted = true } }

// NewEngine compiles the plan into an engine. With no options, results
// accumulate in an internal collector (read them back with Results);
// WithSink, WithObs and WithCTIPeriod configure the output sink,
// instrumentation and automatic punctuation.
func NewEngine(plan *Plan, opts ...Option) (*Engine, error) {
	o := engineOptions{ctiPeriod: Hour}
	for _, opt := range opts {
		opt(&o)
	}
	var collect *Collector
	sink := o.sink
	if sink == nil {
		collect = &Collector{}
		sink = collect
	}
	p, err := compile(plan, sink, o.scope, o.scope == nil && !o.interpreted)
	if err != nil {
		return nil, err
	}
	return &Engine{pipeline: p, collect: collect, sink: sink, CTIPeriod: o.ctiPeriod, lastCTI: MinTime}, nil
}

// NewEngineTo compiles the plan delivering results to a caller-supplied
// sink.
//
// Deprecated: use NewEngine(plan, WithSink(out)).
func NewEngineTo(plan *Plan, out Sink) (*Engine, error) {
	return NewEngine(plan, WithSink(out))
}

// NewEngineObserved is NewEngine with per-operator instrumentation.
//
// Deprecated: use NewEngine(plan, WithObs(scope)).
func NewEngineObserved(plan *Plan, scope *obs.Scope) (*Engine, error) {
	return NewEngine(plan, WithObs(scope))
}

// NewEngineObservedTo is NewEngineTo with per-operator instrumentation.
//
// Deprecated: use NewEngine(plan, WithSink(out), WithObs(scope)).
func NewEngineObservedTo(plan *Plan, out Sink, scope *obs.Scope) (*Engine, error) {
	return NewEngine(plan, WithSink(out), WithObs(scope))
}

// Pipeline exposes the compiled pipeline.
func (e *Engine) Pipeline() *Pipeline { return e.pipeline }

// Feed pushes one event into the named source.
func (e *Engine) Feed(source string, ev Event) {
	e.fed = true
	e.pipeline.Input(source).OnEvent(ev)
	e.maybeCTI(ev.LE)
}

// FeedBatch pushes a run of events (nondecreasing LE) into the named
// source as one batch — the batched counterpart of a Feed loop, with one
// pipeline entry call per run instead of per event. The run is split
// only where the automatic CTI schedule fires, so downstream observes
// exactly the per-event call sequence. An optional trailing CTI on the
// batch punctuates this source after its events.
//
// The batch and its Events slice remain owned by the caller and may be
// reused after the call returns.
func (e *Engine) FeedBatch(source string, b *Batch) {
	e.fed = true
	in := e.pipeline.BatchInput(source)
	// Snapshot the header: b may alias e.feedBatch (FeedSorted does), and
	// mid-run punctuation below reuses that header for sub-batches.
	evs, cti, hasCTI := b.Events, b.CTI, b.HasCTI
	start := 0
	if e.CTIPeriod > 0 && len(evs) > 0 {
		if e.lastCTI == MinTime {
			e.anchorCTI(evs[0].LE)
		}
		// One compare per event against the precomputed next boundary.
		next := e.lastCTI + e.CTIPeriod
		for i := range evs {
			t := evs[i].LE
			if t < next {
				continue
			}
			// Deliver the run up to and including the triggering event,
			// then punctuate — the same order Feed+maybeCTI produces.
			e.feedBatch = Batch{Events: evs[start : i+1]}
			in.OnBatch(&e.feedBatch)
			start = i + 1
			e.pipeline.AdvanceAll(t)
			e.lastCTI += ((t - e.lastCTI) / e.CTIPeriod) * e.CTIPeriod
			next = e.lastCTI + e.CTIPeriod
		}
	}
	if start == 0 {
		// No mid-run punctuation: forward the caller's batch as-is.
		if len(evs) > 0 || hasCTI {
			in.OnBatch(b)
		}
	} else if start < len(evs) || hasCTI {
		e.feedBatch = Batch{Events: evs[start:], CTI: cti, HasCTI: hasCTI}
		in.OnBatch(&e.feedBatch)
	}
	if hasCTI && cti > e.lastCTI {
		e.lastCTI = cti
	}
}

// FeedColBatch pushes a columnar batch of events into the named source.
// When the source's head operator is a fused stateless run, the batch
// (or its Slice views, where the automatic CTI schedule splits it) is
// handed to the kernel's columnar entry directly — no row materialization
// happens until the run's downstream boundary. Otherwise the batch is
// materialized once into a fresh per-call slab and fed through
// FeedBatch; the slab is never reused, so an operator that defers the
// batch (reorder, fan-out buffering) can safely retain it across feeds.
func (e *Engine) FeedColBatch(source string, cb *ColBatch) {
	if cb.Len() == 0 {
		return
	}
	cs := e.pipeline.ColInput(source)
	if cs == nil {
		e.FeedBatch(source, &Batch{Events: cb.MaterializeEvents(nil)})
		return
	}
	if cb.LE == nil {
		panic("temporal: FeedColBatch on a lifetime-free batch")
	}
	e.fed = true
	le := cb.LE
	start := 0
	if e.CTIPeriod > 0 {
		if e.lastCTI == MinTime {
			e.anchorCTI(le[0])
		}
		// Split the batch where the CTI schedule fires, mirroring
		// FeedBatch: deliver through the triggering event, then punctuate.
		next := e.lastCTI + e.CTIPeriod
		for i, t := range le {
			if t < next {
				continue
			}
			cs.OnColBatch(cb.Slice(start, i+1))
			start = i + 1
			e.pipeline.AdvanceAll(t)
			e.lastCTI += ((t - e.lastCTI) / e.CTIPeriod) * e.CTIPeriod
			next = e.lastCTI + e.CTIPeriod
		}
	}
	if start == 0 {
		cs.OnColBatch(cb)
	} else if start < len(le) {
		cs.OnColBatch(cb.Slice(start, len(le)))
	}
}

// anchorCTI anchors the automatic punctuation schedule at the first
// event: lastCTI becomes the last period boundary strictly before t, so
// a first event landing exactly on a boundary punctuates there (the
// caller's d >= CTIPeriod check fires immediately), and a sparse wave
// starting at a boundary is not silently un-punctuated until Flush.
func (e *Engine) anchorCTI(t Time) {
	e.lastCTI = floorDiv(t-1, e.CTIPeriod) * e.CTIPeriod
}

// maybeCTI drives the automatic punctuation schedule: the first event
// anchors it (see anchorCTI), and whenever application time crosses one
// or more period boundaries a CTI is broadcast and the schedule advances
// by whole periods (not to t itself — otherwise sparse sources whose
// events land between boundaries would drift the schedule and
// under-punctuate).
func (e *Engine) maybeCTI(t Time) {
	if e.CTIPeriod <= 0 {
		return
	}
	if e.lastCTI == MinTime {
		e.anchorCTI(t)
	}
	if d := t - e.lastCTI; d >= e.CTIPeriod {
		e.pipeline.AdvanceAll(t)
		e.lastCTI += (d / e.CTIPeriod) * e.CTIPeriod
	}
}

// Advance broadcasts a CTI at time t to every source.
func (e *Engine) Advance(t Time) {
	e.fed = true
	e.pipeline.AdvanceAll(t)
	e.lastCTI = t
}

// Flush ends all inputs, draining buffered state.
func (e *Engine) Flush() {
	e.fed = true
	e.pipeline.FlushAll()
}

// Checkpoint serializes the engine's full operator state — every stateful
// operator in the compiled pipeline, in deterministic plan order, plus the
// CTI clock — into a self-contained byte snapshot. The encoding is
// deterministic: two checkpoints of the same logical state are
// byte-identical. Take checkpoints between input batches (operators are
// quiescent then); the snapshot restores into a fresh engine compiled from
// the same plan via RestoreEngine.
func (e *Engine) Checkpoint() []byte {
	var w SnapshotWriter
	w.Byte(ckEngine)
	w.Varint(e.lastCTI)
	w.Uvarint(uint64(len(e.pipeline.ckpts)))
	for _, ck := range e.pipeline.ckpts {
		ck.Snapshot(&w)
	}
	return w.Bytes()
}

// Restore loads a Checkpoint snapshot into this engine. The engine must be
// freshly built from the same plan and must not have processed any input;
// on error the engine must be discarded.
func (e *Engine) Restore(snap []byte) error {
	if e.fed {
		return fmt.Errorf("temporal: Restore on an engine that has processed input")
	}
	r := NewSnapshotReader(snap)
	if err := r.Expect(ckEngine, "engine"); err != nil {
		return err
	}
	lastCTI := r.Varint()
	n := r.Count("pipeline operators")
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(e.pipeline.ckpts) {
		return r.Failf("pipeline has %d stateful operators, snapshot has %d", len(e.pipeline.ckpts), n)
	}
	for _, ck := range e.pipeline.ckpts {
		if err := ck.Restore(r); err != nil {
			return err
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	e.lastCTI = lastCTI
	return nil
}

// RestoreEngine compiles plan into a fresh engine and loads a Checkpoint
// snapshot taken from another engine compiled from the same plan.
func RestoreEngine(plan *Plan, snap []byte, opts ...Option) (*Engine, error) {
	eng, err := NewEngine(plan, opts...)
	if err != nil {
		return nil, err
	}
	if err := eng.Restore(snap); err != nil {
		return nil, err
	}
	return eng, nil
}

// Results returns the collected output, coalesced and sorted, when the
// engine was built with an internal collector.
func (e *Engine) Results() []Event {
	if e.collect == nil {
		return nil
	}
	return Coalesce(e.collect.Flatten())
}

// RawResults returns output events as emitted (fragmented at CTI
// boundaries), sorted.
func (e *Engine) RawResults() []Event {
	if e.collect == nil {
		return nil
	}
	out := append([]Event(nil), e.collect.Flatten()...)
	SortEvents(out)
	return out
}

// SourceEvent pairs an event with the source it belongs to, for
// multi-source runs.
type SourceEvent struct {
	Source string
	Event  Event
}

// feedRunCap bounds the reused run buffer FeedSorted batches through:
// large enough to amortize per-batch costs to noise, small enough to
// stay cache-resident and to bound the copy buffer.
const feedRunCap = 1024

// FeedSorted feeds a batch of source events in global LE order (sorting
// through an index vector if needed, which keeps equal-timestamp order
// stable without shuffling the events themselves), injecting CTIs every
// CTIPeriod of application time. Maximal same-source runs are pushed
// through FeedBatch, so a single-source feed crosses the pipeline in
// feedRunCap-sized batches.
func (e *Engine) FeedSorted(events []SourceEvent) {
	ordered := sort.SliceIsSorted(events, func(i, j int) bool {
		return events[i].Event.LE < events[j].Event.LE
	})
	if ordered {
		e.feedRuns(events, nil)
		return
	}
	order := make([]int32, len(events))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return events[order[i]].Event.LE < events[order[j]].Event.LE
	})
	e.feedRuns(events, order)
}

// feedRuns feeds events in index order (identity when order is nil),
// batching maximal same-source runs (capped at feedRunCap) into FeedBatch.
func (e *Engine) feedRuns(events []SourceEvent, order []int32) {
	buf := e.feedBuf[:0]
	cur := ""
	flush := func() {
		if len(buf) > 0 {
			e.feedBatch = Batch{Events: buf}
			e.FeedBatch(cur, &e.feedBatch)
			buf = buf[:0]
		}
	}
	for i := range events {
		se := &events[i]
		if order != nil {
			se = &events[order[i]]
		}
		if se.Source != cur || len(buf) >= feedRunCap {
			flush()
			cur = se.Source
		}
		buf = append(buf, se.Event)
	}
	flush()
	e.feedBuf = buf[:0]
}

// RunPlan compiles and runs a plan over per-source event batches and
// returns coalesced, sorted results. It is the one-call path used
// throughout the tests and examples.
func RunPlan(plan *Plan, inputs map[string][]Event) ([]Event, error) {
	eng, err := NewEngine(plan)
	if err != nil {
		return nil, err
	}
	var all []SourceEvent
	for src, evs := range inputs {
		if _, ok := eng.pipeline.inputs[src]; !ok {
			continue // input not referenced by the plan
		}
		for _, ev := range evs {
			all = append(all, SourceEvent{Source: src, Event: ev})
		}
	}
	eng.FeedSorted(all)
	eng.Flush()
	return eng.Results(), nil
}

// RowsToPointEvents converts rows to point events using the values of the
// given time column (paper §III-A step 4: "sets event lifetime to
// [Time, Time+δ) and the payload to the remaining columns" — we keep the
// time column in the payload, matching the unified schema of Figure 9
// where queries filter on it too).
func RowsToPointEvents(rows []Row, timeCol int) []Event {
	out := make([]Event, len(rows))
	for i, r := range rows {
		out[i] = PointEvent(r[timeCol].AsInt(), r)
	}
	return out
}
