package temporal

// Binary operators (Union, TemporalJoin, AntiSemiJoin) receive two
// independently ordered inputs. The engine's order contract requires them
// to process events in a single global LE order, so each binary operator
// is built around a merger that buffers per-side events and releases them
// when the other side can no longer produce anything earlier.
//
// Ties: at equal LE the RIGHT side is processed first. This is the
// documented semantics of AntiSemiJoin (an interval opening at t
// suppresses a left point event at t, as bot elimination requires) and is
// harmless elsewhere.

const (
	sideLeft  = 0
	sideRight = 1
)

// mergedConsumer is the downstream of a merger: events arrive in global
// LE order tagged with their side.
type mergedConsumer interface {
	onMerged(side int, e Event)
	onMergedCTI(t Time)
	onMergedFlush()
}

type merger struct {
	bufs    [2][]Event // FIFO: each side arrives LE-ordered
	heads   [2]int     // consumed prefix of bufs (compacted periodically)
	wm      [2]Time    // promise: future events on side i have LE >= wm[i]
	flushed [2]bool
	lastCTI Time
	cons    mergedConsumer
}

func newMerger(cons mergedConsumer) *merger {
	return &merger{wm: [2]Time{MinTime, MinTime}, lastCTI: MinTime, cons: cons}
}

// input returns the Sink for one side of the merger.
func (m *merger) input(side int) Sink { return &mergerInput{m: m, side: side} }

type mergerInput struct {
	m    *merger
	side int
}

func (in *mergerInput) OnEvent(e Event) { in.m.push(in.side, e) }
func (in *mergerInput) OnCTI(t Time)    { in.m.cti(in.side, t) }
func (in *mergerInput) OnFlush()        { in.m.flush(in.side) }

// OnBatch consumes a whole run for one side in one call. Pushes release
// merged events exactly as the per-event path does; batching amortizes
// the upstream dispatch per side.
func (in *mergerInput) OnBatch(b *Batch) { loopBatch(in, b) }

func (m *merger) push(side int, e Event) {
	m.bufs[side] = append(m.bufs[side], e)
	if e.LE > m.wm[side] {
		m.wm[side] = e.LE
	}
	m.release()
}

func (m *merger) cti(side int, t Time) {
	if t > m.wm[side] {
		m.wm[side] = t
	}
	m.release()
	m.forwardCTI()
}

func (m *merger) flush(side int) {
	m.flushed[side] = true
	m.wm[side] = MaxTime
	m.release()
	if m.flushed[0] && m.flushed[1] {
		m.cons.onMergedFlush()
	} else {
		m.forwardCTI()
	}
}

// bound returns a lower bound on the LE of anything side i can still
// deliver: its buffered head if any, else its watermark promise.
func (m *merger) bound(side int) Time {
	if m.heads[side] < len(m.bufs[side]) {
		return m.bufs[side][m.heads[side]].LE
	}
	return m.wm[side]
}

func (m *merger) release() {
	for {
		l := m.heads[sideLeft] < len(m.bufs[sideLeft])
		r := m.heads[sideRight] < len(m.bufs[sideRight])
		switch {
		case r && m.bufs[sideRight][m.heads[sideRight]].LE <= m.bound(sideLeft):
			// Right head wins ties against the left bound.
			m.pop(sideRight)
		case l && m.bufs[sideLeft][m.heads[sideLeft]].LE < m.bound(sideRight):
			// Left head needs to be strictly earlier than anything the
			// right side can still deliver.
			m.pop(sideLeft)
		default:
			return
		}
	}
}

func (m *merger) pop(side int) {
	e := m.bufs[side][m.heads[side]]
	m.heads[side]++
	// Compact the consumed prefix once it dominates the buffer.
	if m.heads[side] > 64 && m.heads[side]*2 >= len(m.bufs[side]) {
		n := copy(m.bufs[side], m.bufs[side][m.heads[side]:])
		m.bufs[side] = m.bufs[side][:n]
		m.heads[side] = 0
	}
	m.cons.onMerged(side, e)
}

// bufferedLen reports how many events are held awaiting the other side
// (live-state accounting for the observability layer).
func (m *merger) bufferedLen() int {
	return (len(m.bufs[sideLeft]) - m.heads[sideLeft]) +
		(len(m.bufs[sideRight]) - m.heads[sideRight])
}

// snapshot serializes watermarks, flush flags, the unconsumed FIFO
// suffix of each side (verbatim — arrival order is the merge order for
// ties within a side) and the forwarded-CTI clock.
func (m *merger) snapshot(w *SnapshotWriter) {
	for side := 0; side < 2; side++ {
		w.Varint(m.wm[side])
		w.Bool(m.flushed[side])
		w.Events(m.bufs[side][m.heads[side]:])
	}
	w.Varint(m.lastCTI)
}

func (m *merger) restore(r *SnapshotReader) {
	for side := 0; side < 2; side++ {
		m.wm[side] = r.Varint()
		m.flushed[side] = r.Bool()
		m.bufs[side] = r.Events()
		m.heads[side] = 0
	}
	m.lastCTI = r.Varint()
}

func (m *merger) forwardCTI() {
	t := minTime(m.bound(sideLeft), m.bound(sideRight))
	if t > m.lastCTI && t != MaxTime {
		m.lastCTI = t
		m.cons.onMergedCTI(t)
	}
}

// ---- Union ----

// unionOp merges two identically-schemed streams (paper §II-A.2).
type unionOp struct {
	m   *merger
	out Sink
}

func newUnionOp(out Sink) *unionOp {
	u := &unionOp{out: out}
	u.m = newMerger(u)
	return u
}

func (u *unionOp) onMerged(_ int, e Event) { u.out.OnEvent(e) }
func (u *unionOp) onMergedCTI(t Time)      { u.out.OnCTI(t) }
func (u *unionOp) onMergedFlush()          { u.out.OnFlush() }
func (u *unionOp) liveState() int          { return u.m.bufferedLen() }

func (u *unionOp) Snapshot(w *SnapshotWriter) {
	w.Byte(ckUnion)
	u.m.snapshot(w)
}

func (u *unionOp) Restore(r *SnapshotReader) error {
	if err := r.Expect(ckUnion, "union"); err != nil {
		return err
	}
	u.m.restore(r)
	return r.Err()
}

// ---- TemporalJoin ----

// synEntry is one event held in a join synopsis.
type synEntry struct {
	e Event
}

// synopsis is a hash multimap from join-key hash to the active events of
// one side (the "internal join synopsis" of §II-A.2).
type synopsis struct {
	keys    []int
	buckets map[uint64][]synEntry
	size    int
}

func newSynopsis(keys []int) *synopsis {
	return &synopsis{keys: keys, buckets: make(map[uint64][]synEntry)}
}

func (s *synopsis) insert(e Event) {
	h := HashRow(e.Payload, s.keys)
	s.buckets[h] = append(s.buckets[h], synEntry{e: e})
	s.size++
}

// probe invokes fn for every stored event whose key columns equal those of
// r (under this side's key positions vs the probing row's positions).
func (s *synopsis) probe(r Row, probeKeys []int, fn func(Event)) {
	h := HashRow(r, probeKeys)
	for _, ent := range s.buckets[h] {
		if keysMatch(ent.e.Payload, s.keys, r, probeKeys) {
			fn(ent.e)
		}
	}
}

func keysMatch(a Row, ak []int, b Row, bk []int) bool {
	for i := range ak {
		if !a[ak[i]].Equal(b[bk[i]]) {
			return false
		}
	}
	return true
}

// expire drops events whose lifetime ends at or before t: nothing arriving
// later (LE >= t) can overlap them.
func (s *synopsis) expire(t Time) {
	for h, bucket := range s.buckets {
		kept := bucket[:0]
		for _, ent := range bucket {
			if ent.e.RE > t {
				kept = append(kept, ent)
			}
		}
		if len(kept) == 0 {
			delete(s.buckets, h)
		} else {
			s.buckets[h] = kept
		}
		s.size += len(kept) - len(bucket)
	}
}

// snapshot serializes the synopsis contents in canonical event order.
// Restore re-inserts (recomputing hashes), so bucket order may differ
// from the original arrival order — harmless, because probe matches at
// one LE differ only in emission order among equal-LE outputs, which the
// engine's order contract does not distinguish.
func (s *synopsis) snapshot(w *SnapshotWriter) {
	evs := make([]Event, 0, s.size)
	for _, bucket := range s.buckets {
		for _, ent := range bucket {
			evs = append(evs, ent.e)
		}
	}
	SortEvents(evs)
	w.Events(evs)
}

func (s *synopsis) restore(r *SnapshotReader) {
	for _, e := range r.Events() {
		s.insert(e)
	}
}

// temporalJoinOp is a symmetric hash join on equality keys with lifetime
// intersection and an optional residual predicate (paper §II-A.2).
type temporalJoinOp struct {
	m        *merger
	syn      [2]*synopsis
	keys     [2][]int
	cond     func(l, r Row) bool // nil = none
	arena    rowArena
	out      Sink
	lastTidy Time
}

func newTemporalJoinOp(leftKeys, rightKeys []int, cond func(l, r Row) bool, out Sink) *temporalJoinOp {
	j := &temporalJoinOp{
		keys: [2][]int{leftKeys, rightKeys},
		cond: cond,
		out:  out,
	}
	j.syn[sideLeft] = newSynopsis(leftKeys)
	j.syn[sideRight] = newSynopsis(rightKeys)
	j.m = newMerger(j)
	j.lastTidy = MinTime
	return j
}

func (j *temporalJoinOp) onMerged(side int, e Event) {
	other := 1 - side
	j.syn[other].probe(e.Payload, j.keys[side], func(o Event) {
		le := maxTime(e.LE, o.LE)
		re := minTime(e.RE, o.RE)
		if le >= re {
			return
		}
		var l, r Row
		if side == sideLeft {
			l, r = e.Payload, o.Payload
		} else {
			l, r = o.Payload, e.Payload
		}
		if j.cond != nil && !j.cond(l, r) {
			return
		}
		// le == max(e.LE, o.LE) == e.LE since o arrived earlier in merged
		// order, so outputs are emitted in nondecreasing LE.
		j.out.OnEvent(Event{LE: le, RE: re, Payload: j.arena.concat(l, r)})
	})
	j.syn[side].insert(e)
}

func (j *temporalJoinOp) onMergedCTI(t Time) {
	if t > j.lastTidy {
		j.syn[0].expire(t)
		j.syn[1].expire(t)
		j.lastTidy = t
	}
	j.out.OnCTI(t)
}

func (j *temporalJoinOp) onMergedFlush() { j.out.OnFlush() }

func (j *temporalJoinOp) liveState() int {
	return j.m.bufferedLen() + j.syn[sideLeft].size + j.syn[sideRight].size
}

func (j *temporalJoinOp) Snapshot(w *SnapshotWriter) {
	w.Byte(ckJoin)
	j.m.snapshot(w)
	j.syn[sideLeft].snapshot(w)
	j.syn[sideRight].snapshot(w)
	w.Varint(j.lastTidy)
}

func (j *temporalJoinOp) Restore(r *SnapshotReader) error {
	if err := r.Expect(ckJoin, "temporal join"); err != nil {
		return err
	}
	j.m.restore(r)
	j.syn[sideLeft].restore(r)
	j.syn[sideRight].restore(r)
	j.lastTidy = r.Varint()
	return r.Err()
}

// ---- AntiSemiJoin ----

// antiSemiJoinOp emits left point events with no matching right event
// whose lifetime contains them. The merger's right-first tie-break makes a
// right interval opening at t suppress a left point at t. Left inputs must
// be point events (the only form the paper's queries use; the general
// interval form would require lifetime subtraction).
type antiSemiJoinOp struct {
	m        *merger
	syn      *synopsis // right side
	lkey     []int
	out      Sink
	lastTidy Time
}

func newAntiSemiJoinOp(leftKeys, rightKeys []int, out Sink) *antiSemiJoinOp {
	a := &antiSemiJoinOp{syn: newSynopsis(rightKeys), lkey: leftKeys, out: out, lastTidy: MinTime}
	a.m = newMerger(a)
	return a
}

func (a *antiSemiJoinOp) onMerged(side int, e Event) {
	if side == sideRight {
		a.syn.insert(e)
		return
	}
	if !e.IsPoint() {
		panic("temporal: AntiSemiJoin left input must be point events")
	}
	matched := false
	a.syn.probe(e.Payload, a.lkey, func(o Event) {
		if o.Contains(e.LE) {
			matched = true
		}
	})
	if !matched {
		a.out.OnEvent(e)
	}
}

func (a *antiSemiJoinOp) onMergedCTI(t Time) {
	if t > a.lastTidy {
		a.syn.expire(t)
		a.lastTidy = t
	}
	a.out.OnCTI(t)
}

func (a *antiSemiJoinOp) onMergedFlush() { a.out.OnFlush() }
func (a *antiSemiJoinOp) liveState() int { return a.m.bufferedLen() + a.syn.size }

func (a *antiSemiJoinOp) Snapshot(w *SnapshotWriter) {
	w.Byte(ckAntiSemi)
	a.m.snapshot(w)
	a.syn.snapshot(w)
	w.Varint(a.lastTidy)
}

func (a *antiSemiJoinOp) Restore(r *SnapshotReader) error {
	if err := r.Expect(ckAntiSemi, "anti-semi-join"); err != nil {
		return err
	}
	a.m.restore(r)
	a.syn.restore(r)
	a.lastTidy = r.Varint()
	return r.Err()
}
