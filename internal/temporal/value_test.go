package temporal

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Float(2.5), KindFloat, "2.5"},
		{String("abc"), KindString, "abc"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Null, KindNull, "NULL"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 {
		t.Error("AsInt")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("AsFloat should widen ints")
	}
	if String("x").AsString() != "x" {
		t.Error("AsString")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic(t, func() { Int(1).AsString() })
	mustPanic(t, func() { String("a").AsInt() })
	mustPanic(t, func() { Null.AsFloat() })
	mustPanic(t, func() { Int(1).AsBool() })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestValueEqualCompare(t *testing.T) {
	if !Int(5).Equal(Int(5)) || Int(5).Equal(Int(6)) {
		t.Error("Int equality")
	}
	if Int(5).Equal(Float(5)) {
		t.Error("cross-kind values must not be equal")
	}
	if !String("a").Equal(String("a")) || String("a").Equal(String("b")) {
		t.Error("String equality")
	}
	if Int(1).Compare(Int(2)) != -1 || Int(2).Compare(Int(1)) != 1 || Int(2).Compare(Int(2)) != 0 {
		t.Error("Int compare")
	}
	if String("a").Compare(String("b")) != -1 {
		t.Error("String compare")
	}
	if Float(1.5).Compare(Float(2.5)) != -1 {
		t.Error("Float compare")
	}
	if Null.Compare(Null) != 0 {
		t.Error("Null compare")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	// Compare must be antisymmetric across kinds (used by sort-based ops).
	err := quick.Check(func(a, b int64, s1, s2 string) bool {
		vals := []Value{Int(a), Int(b), String(s1), String(s2), Float(float64(a)), Null, Bool(a%2 == 0)}
		for _, x := range vals {
			for _, y := range vals {
				if x.Compare(y) != -y.Compare(x) {
					return false
				}
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestValueHashConsistency(t *testing.T) {
	err := quick.Check(func(a int64, s string, f float64) bool {
		h1 := Int(a).Hash(HashSeed)
		h2 := Int(a).Hash(HashSeed)
		h3 := String(s).Hash(HashSeed)
		h4 := String(s).Hash(HashSeed)
		h5 := Float(f).Hash(HashSeed)
		h6 := Float(f).Hash(HashSeed)
		return h1 == h2 && h3 == h4 && h5 == h6
	}, nil)
	if err != nil {
		t.Error(err)
	}
	// Different kinds with the same bits should (almost surely) differ.
	if Int(1).Hash(HashSeed) == Bool(true).Hash(HashSeed) {
		t.Error("kind not mixed into hash")
	}
}

func TestHashRow(t *testing.T) {
	r1 := Row{Int(1), String("u1"), Int(7)}
	r2 := Row{Int(2), String("u1"), Int(9)}
	if HashRow(r1, []int{1}) != HashRow(r2, []int{1}) {
		t.Error("same key columns must hash equal")
	}
	if HashRow(r1, []int{0, 1}) == HashRow(r2, []int{0, 1}) {
		t.Error("different key columns should hash differently")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(
		Field{Name: "Time", Kind: KindInt},
		Field{Name: "UserId", Kind: KindString},
		Field{Name: "Score", Kind: KindFloat},
	)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i := s.MustIndex("UserId"); i != 1 {
		t.Errorf("MustIndex = %d", i)
	}
	if _, ok := s.Index("Nope"); ok {
		t.Error("Index should miss")
	}
	if !s.Has("Score") || s.Has("score") {
		t.Error("Has is case-sensitive")
	}
	p := s.Project("Score", "Time")
	if p.Len() != 2 || p.Field(0).Name != "Score" || p.Field(1).Name != "Time" {
		t.Errorf("Project = %s", p)
	}
	mustPanic(t, func() { s.MustIndex("Nope") })
	mustPanic(t, func() { NewSchema(Field{Name: "A"}, Field{Name: "A"}) })
}

func TestSchemaConcat(t *testing.T) {
	a := NewSchema(Field{Name: "X", Kind: KindInt}, Field{Name: "Y", Kind: KindString})
	b := NewSchema(Field{Name: "Y", Kind: KindInt}, Field{Name: "Z", Kind: KindFloat})
	c := a.Concat(b, "r.")
	want := []string{"X", "Y", "r.Y", "Z"}
	for i, n := range want {
		if c.Field(i).Name != n {
			t.Errorf("field %d = %s, want %s", i, c.Field(i).Name, n)
		}
	}
}

func TestSchemaEqual(t *testing.T) {
	a := NewSchema(Field{Name: "X", Kind: KindInt})
	b := NewSchema(Field{Name: "X", Kind: KindInt})
	c := NewSchema(Field{Name: "X", Kind: KindFloat})
	if !a.Equal(b) || a.Equal(c) {
		t.Error("schema equality")
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{Int(1), String("a")}
	cl := r.Clone()
	cl[0] = Int(2)
	if r[0].AsInt() != 1 {
		t.Error("Clone must not alias")
	}
	if !r.Equal(Row{Int(1), String("a")}) || r.Equal(Row{Int(1)}) {
		t.Error("Row.Equal")
	}
	cat := ConcatRows(Row{Int(1)}, Row{Int(2), Int(3)})
	if len(cat) != 3 || cat[2].AsInt() != 3 {
		t.Error("ConcatRows")
	}
}
