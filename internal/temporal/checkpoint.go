package temporal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Checkpointing gives every stateful physical operator a compact,
// deterministic byte encoding of its live state, so an engine can be
// snapshotted between input batches and rebuilt elsewhere (a crashed
// streaming partition, a preempted worker). The encoding is stdlib-only
// varints; no reflection, no per-type registries.
//
// Two invariants make the snapshots usable:
//
//   - Determinism: unordered containers (hash synopses, pending maps,
//     heaps) are serialized in a canonical sort order, so snapshotting
//     the same logical state twice yields identical bytes — checkpoint
//     equality is byte equality, which the fuzz target exploits.
//   - Behavioral equivalence, not bit equivalence, of the restored
//     operator: a heap may be rebuilt with a different internal layout
//     and a synopsis bucket in a different order, but every sequence of
//     future inputs produces the same output events. Where physical
//     order does carry meaning (merger FIFOs, UDO row order), the
//     encoding preserves it verbatim.

// Checkpointer is implemented by stateful operators. Stateless operators
// (filter, project, multicast) simply do not implement it and are skipped
// structurally when the pipeline walks its operators.
//
// Restore must be called on a freshly built operator (same plan node,
// zero state) before it has processed any input; on error the operator —
// and the engine hosting it — must be discarded.
type Checkpointer interface {
	Snapshot(w *SnapshotWriter)
	Restore(r *SnapshotReader) error
}

// Per-operator tag bytes, written ahead of each operator's state and
// verified on restore, so a plan/checkpoint mismatch fails loudly instead
// of reading one operator's bytes as another's.
const (
	ckEngine     byte = 0xE7 // engine header
	ckAggregate  byte = 0x01
	ckAlterLife  byte = 0x02
	ckReorder    byte = 0x03
	ckUnion      byte = 0x04
	ckJoin       byte = 0x05
	ckAntiSemi   byte = 0x06
	ckUDO        byte = 0x07
	ckGroupApply byte = 0x08
)

// SnapshotWriter accumulates the checkpoint byte stream. The zero value
// is ready to use.
type SnapshotWriter struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *SnapshotWriter) Bytes() []byte { return w.buf }

// Byte appends a raw byte (operator tags).
func (w *SnapshotWriter) Byte(b byte) { w.buf = append(w.buf, b) }

// Uvarint appends an unsigned varint.
func (w *SnapshotWriter) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends a signed (zig-zag) varint; Time values use this.
func (w *SnapshotWriter) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *SnapshotWriter) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// String appends a length-prefixed string.
func (w *SnapshotWriter) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Value appends one tagged value.
func (w *SnapshotWriter) Value(v Value) {
	w.Byte(byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindFloat:
		w.Uvarint(math.Float64bits(v.f))
	case KindString:
		w.String(v.s)
	default: // int, bool
		w.Varint(v.i)
	}
}

// Row appends a length-prefixed row.
func (w *SnapshotWriter) Row(r Row) {
	w.Uvarint(uint64(len(r)))
	for _, v := range r {
		w.Value(v)
	}
}

// Event appends one event (lifetime + payload).
func (w *SnapshotWriter) Event(e Event) {
	w.Varint(e.LE)
	w.Varint(e.RE)
	w.Row(e.Payload)
}

// Events appends a count-prefixed event slice in the given order.
func (w *SnapshotWriter) Events(evs []Event) {
	w.Uvarint(uint64(len(evs)))
	for _, e := range evs {
		w.Event(e)
	}
}

// SnapshotReader decodes a checkpoint byte stream. Errors are sticky:
// after the first failure every read returns zero values and Err reports
// the failure, so operator restore code can decode straight through and
// check once. Every length and count is bounds-checked against the bytes
// actually remaining, so corrupt (or fuzzed) input fails cleanly instead
// of ballooning allocations.
type SnapshotReader struct {
	data []byte
	pos  int
	err  error
}

// NewSnapshotReader wraps a checkpoint byte stream.
func NewSnapshotReader(data []byte) *SnapshotReader {
	return &SnapshotReader{data: data}
}

// Err returns the first decode error, if any.
func (r *SnapshotReader) Err() error { return r.err }

func (r *SnapshotReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("temporal: checkpoint: "+format, args...)
	}
}

func (r *SnapshotReader) remaining() int { return len(r.data) - r.pos }

// Failf records and returns a decode error; operator Restore methods use
// it for structural mismatches the byte-level reads cannot detect.
func (r *SnapshotReader) Failf(format string, args ...any) error {
	r.fail(format, args...)
	return r.err
}

// Byte reads one raw byte.
func (r *SnapshotReader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail("unexpected end of snapshot")
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// Expect reads one tag byte and fails unless it matches.
func (r *SnapshotReader) Expect(tag byte, what string) error {
	if got := r.Byte(); r.err == nil && got != tag {
		r.fail("expected %s tag 0x%02x, found 0x%02x", what, tag, got)
	}
	return r.err
}

// Uvarint reads an unsigned varint.
func (r *SnapshotReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// Varint reads a signed varint.
func (r *SnapshotReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// Bool reads a one-byte boolean.
func (r *SnapshotReader) Bool() bool { return r.Byte() != 0 }

// Count reads an element count and sanity-checks it against the bytes
// remaining (every element costs at least one byte), so a corrupt count
// cannot drive a huge allocation.
func (r *SnapshotReader) Count(what string) int {
	n := r.Uvarint()
	if r.err == nil && n > uint64(r.remaining()) {
		r.fail("%s count %d exceeds remaining %d bytes", what, n, r.remaining())
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *SnapshotReader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("string length %d exceeds remaining %d bytes", n, r.remaining())
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// Value reads one tagged value.
func (r *SnapshotReader) Value() Value {
	kind := Kind(r.Byte())
	switch kind {
	case KindNull:
		return Null
	case KindFloat:
		return Float(math.Float64frombits(r.Uvarint()))
	case KindString:
		return Value{kind: KindString, s: r.String()}
	case KindInt, KindBool:
		return Value{kind: kind, i: r.Varint()}
	default:
		r.fail("unknown value kind %d", kind)
		return Null
	}
}

// Row reads a length-prefixed row.
func (r *SnapshotReader) Row() Row {
	n := r.Count("row")
	if r.err != nil || n == 0 {
		return nil
	}
	row := make(Row, n)
	for i := range row {
		row[i] = r.Value()
	}
	return row
}

// Event reads one event.
func (r *SnapshotReader) Event() Event {
	le := r.Varint()
	re := r.Varint()
	return Event{LE: le, RE: re, Payload: r.Row()}
}

// Events reads a count-prefixed event slice.
func (r *SnapshotReader) Events() []Event {
	n := r.Count("events")
	if r.err != nil || n == 0 {
		return nil
	}
	evs := make([]Event, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		evs = append(evs, r.Event())
	}
	return evs
}

// Done fails unless the stream was consumed exactly.
func (r *SnapshotReader) Done() error {
	if r.err == nil && r.pos != len(r.data) {
		r.fail("%d trailing bytes", len(r.data)-r.pos)
	}
	return r.err
}
