package temporal

// Checkpointing gives every stateful physical operator a compact,
// deterministic byte encoding of its live state, so an engine can be
// snapshotted between input batches and rebuilt elsewhere (a crashed
// streaming partition, a preempted worker). The encoding is the shared
// binary row codec (codec.go): stdlib-only varints, no reflection, no
// per-type registries.
//
// Two invariants make the snapshots usable:
//
//   - Determinism: unordered containers (hash synopses, pending maps,
//     heaps) are serialized in a canonical sort order, so snapshotting
//     the same logical state twice yields identical bytes — checkpoint
//     equality is byte equality, which the fuzz target exploits.
//   - Behavioral equivalence, not bit equivalence, of the restored
//     operator: a heap may be rebuilt with a different internal layout
//     and a synopsis bucket in a different order, but every sequence of
//     future inputs produces the same output events. Where physical
//     order does carry meaning (merger FIFOs, UDO row order), the
//     encoding preserves it verbatim.

// Checkpointer is implemented by stateful operators. Stateless operators
// (filter, project, multicast) simply do not implement it and are skipped
// structurally when the pipeline walks its operators.
//
// Restore must be called on a freshly built operator (same plan node,
// zero state) before it has processed any input; on error the operator —
// and the engine hosting it — must be discarded.
type Checkpointer interface {
	Snapshot(w *SnapshotWriter)
	Restore(r *SnapshotReader) error
}

// Per-operator tag bytes, written ahead of each operator's state and
// verified on restore, so a plan/checkpoint mismatch fails loudly instead
// of reading one operator's bytes as another's.
const (
	ckEngine     byte = 0xE7 // engine header
	ckAggregate  byte = 0x01
	ckAlterLife  byte = 0x02
	ckReorder    byte = 0x03
	ckUnion      byte = 0x04
	ckJoin       byte = 0x05
	ckAntiSemi   byte = 0x06
	ckUDO        byte = 0x07
	ckGroupApply byte = 0x08
)

// SnapshotWriter accumulates a checkpoint byte stream. It is the shared
// codec Encoder under a checkpoint-flavored name; the alias keeps every
// operator's Snapshot signature stable while spill files reuse the same
// encoding.
type SnapshotWriter = Encoder

// SnapshotReader decodes a checkpoint byte stream (the shared codec
// Decoder; see codec.go for the sticky-error and bounds-checking
// contract).
type SnapshotReader = Decoder

// NewSnapshotReader wraps a checkpoint byte stream.
func NewSnapshotReader(data []byte) *SnapshotReader {
	return NewDecoder(data)
}
