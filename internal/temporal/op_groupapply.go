package temporal

import (
	"container/heap"
	"sort"
)

// groupApplyOp routes each input event to a per-group instance of the
// compiled sub-plan (paper §II-A.2, Figure 4) and re-establishes global
// LE order across group outputs.
//
// Ordering: each group's sub-pipeline emits in nondecreasing LE, but
// different groups progress at different rates, so raw interleaving would
// violate the engine's order contract. Group outputs are therefore staged
// in a heap and released up to the watermark. The watermark only advances
// on CTIs, which are broadcast to every group instance first: after a
// group has seen OnCTI(t), every operator in this engine guarantees that
// its future output has LE >= t (aggregates force-close their open segment
// at t), so releasing staged events with LE < t is safe.
type groupApplyOp struct {
	keys    []int // key column positions in the input schema
	factory func(out Sink) (Sink, []Checkpointer)
	groups  map[uint64][]*groupInstance
	staged  eventHeap
	out     Sink
	// maxExtent bounds how long a group's sub-pipeline can hold state
	// after its last input event (the sub-plan's maximum window). Groups
	// whose state horizon has passed — and that have received a CTI after
	// it, flushing everything — are quiescent and skipped during CTI
	// broadcast; with many groups (e.g. one per user) this turns the
	// broadcast from O(groups) into O(active groups).
	maxExtent Time
	// Punctuations are a physical concern only — results are defined by
	// application time — so the operator is free to thin them. It
	// broadcasts at most once per gap (maxExtent/8): long-window
	// sub-plans whose state never expires would otherwise pay a full
	// O(groups) sweep on every CTI for no cleanup benefit. Swallowed
	// CTIs delay downstream output release, never change it.
	gap           Time
	lastBroadcast Time
	ninst         int // total group instances ever created (never removed)
	arena         rowArena
}

type groupInstance struct {
	key     Row // key column values
	entry   Sink
	ckpts   []Checkpointer // stateful ops of this instance's sub-pipeline
	lastLE  Time           // latest input event routed to this group
	lastCTI Time           // latest punctuation delivered to this group
}

func newGroupApplyOp(keys []int, factory func(out Sink) (Sink, []Checkpointer), maxExtent Time, out Sink) *groupApplyOp {
	return &groupApplyOp{
		keys:          keys,
		factory:       factory,
		groups:        make(map[uint64][]*groupInstance),
		out:           out,
		maxExtent:     maxExtent,
		gap:           maxExtent / 8,
		lastBroadcast: MinTime,
	}
}

// stageSink prepends the group key to sub-plan output rows and stages them.
type stageSink struct {
	op  *groupApplyOp
	key Row
}

func (s *stageSink) OnEvent(e Event) {
	e.Payload = s.op.arena.concat(s.key, e.Payload)
	heap.Push(&s.op.staged, e)
}
func (s *stageSink) OnCTI(Time) {}
func (s *stageSink) OnFlush()   {}

func (g *groupApplyOp) instance(r Row) *groupInstance {
	h := HashRow(r, g.keys)
	for _, inst := range g.groups[h] {
		if rowMatchesKey(r, g.keys, inst.key) {
			return inst
		}
	}
	key := make(Row, len(g.keys))
	for i, c := range g.keys {
		key[i] = r[c]
	}
	inst := &groupInstance{key: key, lastLE: MinTime, lastCTI: MinTime}
	inst.entry, inst.ckpts = g.factory(&stageSink{op: g, key: key})
	g.groups[h] = append(g.groups[h], inst)
	g.ninst++
	return inst
}

// liveState counts group instances plus staged output events. Instances
// are never torn down (quiescent ones are merely skipped), so this is the
// operator's true memory footprint driver.
func (g *groupApplyOp) liveState() int { return g.ninst + len(g.staged) }

// quiescent reports whether the instance can be skipped for punctuation:
// its state horizon (last event + max window extent) has passed and a CTI
// after that horizon has already flushed everything it will ever emit.
func (inst *groupInstance) quiescent(maxExtent Time) bool {
	return inst.lastCTI > inst.lastLE+maxExtent
}

func rowMatchesKey(r Row, cols []int, key Row) bool {
	for i, c := range cols {
		if !r[c].Equal(key[i]) {
			return false
		}
	}
	return true
}

func (g *groupApplyOp) OnEvent(e Event) {
	inst := g.instance(e.Payload)
	if e.LE > inst.lastLE {
		inst.lastLE = e.LE
	}
	inst.entry.OnEvent(e)
}

// OnBatch consumes a whole run in one call, dispatching each event to
// its group's sub-pipeline (see loopBatch).
func (g *groupApplyOp) OnBatch(b *Batch) { loopBatch(g, b) }

func (g *groupApplyOp) OnCTI(t Time) {
	if g.lastBroadcast != MinTime && t < g.lastBroadcast+g.gap {
		return // thinned; see the gap field
	}
	g.lastBroadcast = t
	for _, bucket := range g.groups {
		for _, inst := range bucket {
			if inst.quiescent(g.maxExtent) {
				continue
			}
			inst.entry.OnCTI(t)
			inst.lastCTI = t
		}
	}
	g.release(t)
	g.out.OnCTI(t)
}

func (g *groupApplyOp) OnFlush() {
	for _, bucket := range g.groups {
		for _, inst := range bucket {
			inst.entry.OnFlush()
		}
	}
	g.release(MaxTime)
	g.out.OnFlush()
}

// Snapshot serializes the broadcast clock, the staged output heap (in
// canonical event order; a sorted slice is a valid min-heap), and every
// group instance in key order — each instance being its key, its clocks,
// and the recursive snapshots of its sub-pipeline's stateful operators.
func (g *groupApplyOp) Snapshot(w *SnapshotWriter) {
	w.Byte(ckGroupApply)
	w.Varint(g.lastBroadcast)
	staged := append([]Event(nil), g.staged...)
	SortEvents(staged)
	w.Events(staged)
	insts := make([]*groupInstance, 0, g.ninst)
	for _, bucket := range g.groups {
		insts = append(insts, bucket...)
	}
	sort.Slice(insts, func(i, j int) bool {
		return compareRows(insts[i].key, insts[j].key) < 0
	})
	w.Uvarint(uint64(len(insts)))
	for _, inst := range insts {
		w.Row(inst.key)
		w.Varint(inst.lastLE)
		w.Varint(inst.lastCTI)
		w.Uvarint(uint64(len(inst.ckpts)))
		for _, ck := range inst.ckpts {
			ck.Snapshot(w)
		}
	}
}

func (g *groupApplyOp) Restore(r *SnapshotReader) error {
	if err := r.Expect(ckGroupApply, "group-apply"); err != nil {
		return err
	}
	g.lastBroadcast = r.Varint()
	g.staged = eventHeap(r.Events())
	n := r.Count("group instances")
	for i := 0; i < n && r.Err() == nil; i++ {
		key := r.Row()
		lastLE := r.Varint()
		lastCTI := r.Varint()
		nck := r.Count("group sub-pipeline operators")
		if r.Err() != nil {
			return r.Err()
		}
		inst := &groupInstance{key: key, lastLE: lastLE, lastCTI: lastCTI}
		inst.entry, inst.ckpts = g.factory(&stageSink{op: g, key: key})
		if nck != len(inst.ckpts) {
			return r.Failf("group sub-pipeline has %d stateful operators, snapshot has %d", len(inst.ckpts), nck)
		}
		for _, ck := range inst.ckpts {
			if err := ck.Restore(r); err != nil {
				return err
			}
		}
		// Same fold as instance()'s HashRow over the key columns, applied
		// to the extracted key row — the bucket must match future lookups.
		h := HashSeed
		for _, v := range key {
			h = HashCombine(h, v.Hash(HashSeed))
		}
		g.groups[h] = append(g.groups[h], inst)
		g.ninst++
	}
	return r.Err()
}

// release forwards staged output events with LE < t (future group output
// is guaranteed to have LE >= t once all groups have seen CTI t).
func (g *groupApplyOp) release(t Time) {
	for len(g.staged) > 0 && g.staged[0].LE < t {
		g.out.OnEvent(heap.Pop(&g.staged).(Event))
	}
	if t == MaxTime {
		for len(g.staged) > 0 {
			g.out.OnEvent(heap.Pop(&g.staged).(Event))
		}
	}
}
