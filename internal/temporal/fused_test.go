package temporal

import (
	"bytes"
	"testing"
)

// Differential gates for the operator-fusion pass (op_fused.go): for any
// plan and any feed granularity — per event, row batches, columnar
// batches — a fused engine must produce exactly the output of the
// interpreted engine (every plan node its own physical operator), and
// their checkpoints must be interchangeable. `make fusegate` runs these
// under -race.

// fusedTestCTIPeriod is deliberately tiny and misaligned with the feed
// chunk size, so every multi-batch feed is split by the automatic CTI
// schedule mid-batch.
const fusedTestCTIPeriod = 7

func fusedReadings(n int) []Event {
	ids := []string{"a", "b", "c"}
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, reading(Time(i), ids[i%3], int64(i*7%50)-10))
	}
	return evs
}

// fusedOddReadings carries nulls (every 4th) and out-of-kind ints (every
// 5th) in the ID column, degrading its vector to Nulls/Mixed while the
// Power column stays pure — the filter still vectorizes, and the
// materialization paths (fill/fillIdx) must reproduce the odd cells.
func fusedOddReadings(n int) []Event {
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		id := String("x")
		switch {
		case i%4 == 0:
			id = Null
		case i%5 == 0:
			id = Int(int64(i))
		}
		evs = append(evs, PointEvent(Time(i), Row{Int(int64(i)), id, Int(int64(i%13) - 3)}))
	}
	return evs
}

func floatReadingSchema() *Schema {
	return NewSchema(
		Field{Name: "Time", Kind: KindInt},
		Field{Name: "ID", Kind: KindString},
		Field{Name: "Val", Kind: KindFloat},
	)
}

func fusedFloatReadings(n int) []Event {
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		evs = append(evs, PointEvent(Time(i), Row{Int(int64(i)), String("f"), Float(float64(i%9) - 4.5)}))
	}
	return evs
}

// vetoPred vectorizes, clobbers part of the selection, and then refuses —
// the kernel must discard the partial progress and fall back to the row
// path for the whole batch, bit-identically.
func vetoPred() Predicate {
	return Predicate{
		Cols: []string{"Power"},
		Make: func(ix []int) func(Row) bool {
			c := ix[0]
			return func(r Row) bool { return r[c].AsInt()%2 == 0 }
		},
		MakeCol: func(ix []int) ColPredicate {
			return func(cb *ColBatch, sel []bool) bool {
				for i := range sel {
					if i%3 == 0 {
						sel[i] = false
					}
				}
				return false
			}
		},
		Desc: "even (refuses vectorization mid-scan)",
	}
}

// checkFusedEquivalence requires the same raw output from five engine ×
// feed-path combinations: interpreted per-event (the reference),
// fused per-event, fused row batches, fused columnar batches, and
// interpreted columnar batches (the materialize-and-FeedBatch fallback).
func checkFusedEquivalence(t *testing.T, plan *Plan, evs []Event, ncols int) {
	t.Helper()
	newEng := func(opts ...Option) *Engine {
		eng, err := NewEngine(plan, append([]Option{WithCTIPeriod(fusedTestCTIPeriod)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	feedPerEvent := func(eng *Engine) {
		for _, e := range evs {
			eng.Feed("in", e)
		}
	}
	const chunk = 17 // misaligned with fusedTestCTIPeriod on purpose
	feedRowBatches := func(eng *Engine) {
		for lo := 0; lo < len(evs); lo += chunk {
			hi := lo + chunk
			if hi > len(evs) {
				hi = len(evs)
			}
			eng.FeedBatch("in", &Batch{Events: evs[lo:hi]})
		}
	}
	feedColBatches := func(eng *Engine) {
		for lo := 0; lo < len(evs); lo += chunk {
			hi := lo + chunk
			if hi > len(evs) {
				hi = len(evs)
			}
			eng.FeedColBatch("in", ColBatchFromEvents(evs[lo:hi], ncols))
		}
	}

	ref := newEng(WithInterpreted())
	feedPerEvent(ref)
	ref.Flush()
	want := ref.RawResults()

	cases := []struct {
		name string
		eng  *Engine
		feed func(*Engine)
	}{
		{"fused/per-event", newEng(), feedPerEvent},
		{"fused/row-batch", newEng(), feedRowBatches},
		{"fused/columnar", newEng(), feedColBatches},
		{"interpreted/row-batch", newEng(WithInterpreted()), feedRowBatches},
		{"interpreted/columnar", newEng(WithInterpreted()), feedColBatches},
	}
	for _, c := range cases {
		c.feed(c.eng)
		c.eng.Flush()
		if got := c.eng.RawResults(); !EventsEqual(got, want) {
			t.Errorf("%s: output diverges\n got %v\nwant %v", c.name, got, want)
		}
	}
}

func TestFusedMatchesInterpreted(t *testing.T) {
	sch := readingSchema()
	evs := fusedReadings(120)
	double := Compute("Doubled", KindInt, func(v []Value) Value { return Int(v[0].AsInt() * 2) }, "Power")

	cases := []struct {
		name  string
		plan  *Plan
		evs   []Event
		ncols int
	}{
		{"filter-chain", Scan("in", sch).Where(ColGtInt("Power", -5)).Where(ColLtInt("Power", 35)), evs, 3},
		{"filter-allpass", Scan("in", sch).Where(ColGtInt("Power", -100)), evs, 3},
		{"filter-string", Scan("in", sch).Where(ColEqString("ID", "a")), evs, 3},
		{"filter-and", Scan("in", sch).Where(And(ColGtInt("Power", -5), ColLtInt("Power", 35))), evs, 3},
		{"filter-or-fallback", Scan("in", sch).Where(Or(ColGtInt("Power", 30), ColLtInt("Power", -5))), evs, 3},
		{"filter-veto-fallback", Scan("in", sch).Where(ColGtInt("Power", -5)).Where(vetoPred()), evs, 3},
		{"project-direct", Scan("in", sch).Project(Keep("Time"), Rename("ID", "Meter"), Keep("Power")), evs, 3},
		{"project-computed-fallback", Scan("in", sch).Project(Keep("Time"), double), evs, 3},
		{"filter-project-window", Scan("in", sch).Where(ColGtInt("Power", -5)).Project(Keep("Time"), Keep("Power")).WithWindow(9), evs, 3},
		{"hop", Scan("in", sch).WithHop(8, 4), evs, 3},
		{"shift-negative", Scan("in", sch).WithWindow(6).ShiftLifetime(-3), evs, 3},
		{"agg-boundary", Scan("in", sch).Where(ColGtInt("Power", -5)).WithWindow(9).Count("Cnt"), evs, 3},
		{"shift-agg", Scan("in", sch).Where(ColGtInt("Power", -5)).ShiftLifetime(-4).WithWindow(9).Count("Cnt"), evs, 3},
		{"nulls-off-column", Scan("in", sch).Where(ColGtInt("Power", -2)).Project(Keep("ID"), Keep("Power")), fusedOddReadings(100), 3},
		{"float-filters", Scan("in", floatReadingSchema()).Where(ColGeFloat("Val", -1)).Where(AbsGeFloat("Val", 0.5)), fusedFloatReadings(100), 3},
	}
	// The multicast diamond: a shared scan heading two fused branches.
	src := Scan("in", sch)
	diamond := src.Where(ColGtInt("Power", 20)).Project(Keep("Time"), Keep("ID"), ConstInt("Tag", 1)).
		Union(src.Where(Not(ColGtInt("Power", 20))).Project(Keep("Time"), Keep("ID"), ConstInt("Tag", 0)))
	cases = append(cases, struct {
		name  string
		plan  *Plan
		evs   []Event
		ncols int
	}{"multicast-diamond", diamond, evs, 3})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkFusedEquivalence(t, c.plan, c.evs, c.ncols)
		})
	}
}

// TestFusedColInput pins which compiles expose a columnar entry: fused
// stateless heads do, and so does a bare scan straight into the engine
// collector (the collector itself consumes columns); interpreted
// compiles of operator chains do not.
func TestFusedColInput(t *testing.T) {
	sch := readingSchema()
	fusedHead := Scan("in", sch).Where(ColGtInt("Power", 0)).WithWindow(5).Count("C")
	eng, err := NewEngine(fusedHead)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Pipeline().ColInput("in") == nil {
		t.Error("fused compile: expected a columnar entry for a stateless head run")
	}
	interp, err := NewEngine(fusedHead, WithInterpreted())
	if err != nil {
		t.Fatal(err)
	}
	if interp.Pipeline().ColInput("in") != nil {
		t.Error("interpreted compile: expected no columnar entry")
	}
	bare, err := NewEngine(Scan("in", sch))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Pipeline().ColInput("in") == nil {
		t.Error("bare scan into the collector: expected a columnar entry (sink is columnar-capable)")
	}
}

// TestFusedSnapshotCompatibility is the checkpoint-layout invariant: the
// layout is a pure function of the logical plan, so snapshots move freely
// between fused and interpreted engines — in both directions — and two
// engines fed identical input checkpoint to identical bytes.
func TestFusedSnapshotCompatibility(t *testing.T) {
	plan := Scan("in", readingSchema()).
		Where(ColGtInt("Power", -5)).
		WithWindow(9).
		Count("Cnt").
		ToPoint().
		WithWindow(15).
		Sum("Cnt", "S")
	evs := fusedReadings(120)
	half := len(evs) / 2

	feedCol := func(eng *Engine, part []Event) {
		const chunk = 17
		for lo := 0; lo < len(part); lo += chunk {
			hi := lo + chunk
			if hi > len(part) {
				hi = len(part)
			}
			eng.FeedColBatch("in", ColBatchFromEvents(part[lo:hi], 3))
		}
	}

	// Reference: one uninterrupted interpreted run.
	ref, err := NewEngine(plan, WithInterpreted(), WithCTIPeriod(fusedTestCTIPeriod))
	if err != nil {
		t.Fatal(err)
	}
	feedCol(ref, evs)
	ref.Flush()
	want := ref.RawResults()

	// Byte-identical checkpoints after identical input.
	mk := func(opts ...Option) *Engine {
		eng, err := NewEngine(plan, append([]Option{WithCTIPeriod(fusedTestCTIPeriod)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	fe, ie := mk(), mk(WithInterpreted())
	feedCol(fe, evs[:half])
	feedCol(ie, evs[:half])
	if !bytes.Equal(fe.Checkpoint(), ie.Checkpoint()) {
		t.Fatal("fused and interpreted checkpoints differ after identical input")
	}

	// Cross-restore in both directions and finish the run.
	directions := []struct {
		name         string
		firstOpts    []Option
		restoredOpts []Option
	}{
		{"fused-to-interpreted", nil, []Option{WithInterpreted()}},
		{"interpreted-to-fused", []Option{WithInterpreted()}, nil},
	}
	for _, d := range directions {
		a := mk(d.firstOpts...)
		feedCol(a, evs[:half])
		snap := a.Checkpoint()
		b, err := RestoreEngine(plan, snap,
			append([]Option{WithCTIPeriod(fusedTestCTIPeriod)}, d.restoredOpts...)...)
		if err != nil {
			t.Fatalf("%s: restore: %v", d.name, err)
		}
		feedCol(b, evs[half:])
		b.Flush()
		got := append(a.RawResults(), b.RawResults()...)
		SortEvents(got)
		if !EventsEqual(got, want) {
			t.Errorf("%s: combined output diverges\n got %v\nwant %v", d.name, got, want)
		}
	}
}

// retainingSink defers everything it receives until OnFlush — the most
// aggressive legal form of deferred retention (reorder buffers and
// fan-out queues hold batches across feeds the same way). Its payload
// rows must stay intact however many feeds happen in between.
type retainingSink struct {
	out  Sink
	held []Event
}

func (d *retainingSink) OnEvent(e Event) { d.held = append(d.held, e) }
func (d *retainingSink) OnCTI(Time)      {}
func (d *retainingSink) OnFlush() {
	for _, e := range d.held {
		d.out.OnEvent(e)
	}
	d.out.OnFlush()
}

// TestFusedFeedColBatchAliasing is the feed-buffer aliasing regression:
// FeedColBatch's materializing fallback must carve each batch into a
// fresh slab, never a reused buffer, or an operator that defers events
// across feeds observes later batches' values inside earlier payloads.
func TestFusedFeedColBatchAliasing(t *testing.T) {
	plan := Scan("in", readingSchema())
	eng, err := NewEngine(plan, WithCTIPeriod(0))
	if err != nil {
		t.Fatal(err)
	}
	// Interpose the retaining sink in front of the pipeline entry and drop
	// the cached batch/columnar views so the wrapped entry is re-resolved.
	pl := eng.Pipeline()
	pl.inputs["in"] = &retainingSink{out: pl.inputs["in"]}
	pl.binputs, pl.cinputs = nil, nil
	if pl.ColInput("in") != nil {
		t.Fatal("retaining wrapper must not expose a columnar entry — the test needs the fallback path")
	}

	var want []Event
	for wave := 0; wave < 8; wave++ {
		evs := make([]Event, 0, 16)
		for i := 0; i < 16; i++ {
			evs = append(evs, reading(Time(wave*16+i), "m", int64(wave*1000+i)))
		}
		want = append(want, evs...)
		eng.FeedColBatch("in", ColBatchFromEvents(evs, 3))
	}
	eng.Flush()
	got := eng.RawResults()
	SortEvents(want)
	if !EventsEqual(got, want) {
		t.Fatalf("deferred payloads corrupted by later feeds\n got %v\nwant %v", got, want)
	}
}

// TestFusedColumnarReorderInterleave drives the fused columnar entry with
// interleaved feeds while a downstream reorder operator (slack buffer)
// retains events across calls: the kernel's per-batch output slabs must
// not alias across feeds either.
func TestFusedColumnarReorderInterleave(t *testing.T) {
	plan := Scan("in", readingSchema()).Where(ColGtInt("Power", -1))
	// The reorder (slack 1000) retains every event until flush, sitting
	// right behind the fused kernel as the engine's output sink.
	col := &Collector{}
	sinkEng, err := NewEngine(plan, WithSink(newReorder(1000, col)), WithCTIPeriod(0))
	if err != nil {
		t.Fatal(err)
	}
	if sinkEng.Pipeline().ColInput("in") == nil {
		t.Fatal("expected a fused columnar entry")
	}
	var want []Event
	for wave := 0; wave < 8; wave++ {
		evs := make([]Event, 0, 16)
		for i := 0; i < 16; i++ {
			evs = append(evs, reading(Time(wave*16+i), "m", int64(wave*1000+i)))
		}
		want = append(want, evs...)
		sinkEng.FeedColBatch("in", ColBatchFromEvents(evs, 3))
	}
	sinkEng.Flush()
	got := append([]Event(nil), col.Events...)
	SortEvents(got)
	SortEvents(want)
	if !EventsEqual(got, want) {
		t.Fatalf("reorder-deferred payloads corrupted by later columnar feeds\n got %v\nwant %v", got, want)
	}
}
