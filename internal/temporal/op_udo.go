package temporal

// hoppingUDOOp runs a user-defined function over hopping windows (paper
// §II-A.2 "User-Defined Operators"). Windows end at multiples of the hop;
// the window ending at t covers payload rows of events with LE in
// [t-Window, t), and its output rows are valid for [t, t+Hop) — exactly
// the shape the BT model generator needs (§IV-B.4: "the hop size
// determines the frequency of performing LR, while window size determines
// the amount of training data").
type hoppingUDOOp struct {
	w, h    Time
	fn      func(ws, we Time, rows []Row) []Row
	buf     []Event // LE-ordered, pending rows
	nextEnd Time
	started bool
	lastLE  Time
	out     Sink
}

func newHoppingUDOOp(spec *UDOSpec, out Sink) *hoppingUDOOp {
	return &hoppingUDOOp{w: spec.Window, h: spec.Hop, fn: spec.Fn, out: out}
}

func (u *hoppingUDOOp) liveState() int { return len(u.buf) }

// Snapshot preserves the buffer verbatim: its physical order is the row
// order handed to the user function, which must survive a restore exactly.
func (u *hoppingUDOOp) Snapshot(w *SnapshotWriter) {
	w.Byte(ckUDO)
	w.Events(u.buf)
	w.Varint(u.nextEnd)
	w.Bool(u.started)
	w.Varint(u.lastLE)
}

func (u *hoppingUDOOp) Restore(r *SnapshotReader) error {
	if err := r.Expect(ckUDO, "hopping UDO"); err != nil {
		return err
	}
	u.buf = r.Events()
	u.nextEnd = r.Varint()
	u.started = r.Bool()
	u.lastLE = r.Varint()
	return r.Err()
}

func (u *hoppingUDOOp) OnEvent(e Event) {
	// Windows ending at or before e.LE are complete: any future event has
	// LE >= e.LE and so cannot fall in [t-w, t) for t <= e.LE.
	u.processWindows(e.LE)
	if !u.started || (len(u.buf) == 0 && u.firstEnd(e.LE) > u.nextEnd) {
		// Skip empty windows across idle gaps.
		u.nextEnd = u.firstEnd(e.LE)
		u.started = true
	}
	u.buf = append(u.buf, e)
	u.lastLE = e.LE
}

// firstEnd is the earliest window end whose window contains an event at t:
// the smallest multiple of h strictly greater than t.
func (u *hoppingUDOOp) firstEnd(t Time) Time {
	return floorDiv(t, u.h)*u.h + u.h
}

// OnBatch consumes a whole run in one call (see loopBatch).
func (u *hoppingUDOOp) OnBatch(b *Batch) { loopBatch(u, b) }

func (u *hoppingUDOOp) OnCTI(t Time) {
	u.processWindows(t)
	u.out.OnCTI(t)
}

func (u *hoppingUDOOp) OnFlush() {
	if u.started {
		u.processWindows(u.lastLE + u.w + u.h)
	}
	u.out.OnFlush()
}

func (u *hoppingUDOOp) processWindows(upto Time) {
	if !u.started {
		return
	}
	for u.nextEnd <= upto {
		if len(u.buf) == 0 {
			return // nothing until new events arrive; nextEnd reset then
		}
		end := u.nextEnd
		start := end - u.w
		// Collect rows with LE in [start, end). The buffer is LE-ordered
		// and already evicted below start.
		var rows []Row
		for _, e := range u.buf {
			if e.LE >= end {
				break
			}
			if e.LE >= start {
				rows = append(rows, e.Payload)
			}
		}
		if len(rows) > 0 {
			for _, r := range u.fn(start, end, rows) {
				u.out.OnEvent(Event{LE: end, RE: end + u.h, Payload: r})
			}
		}
		u.nextEnd += u.h
		// Evict rows no future window can see.
		low := u.nextEnd - u.w
		i := 0
		for i < len(u.buf) && u.buf[i].LE < low {
			i++
		}
		if i > 0 {
			u.buf = append(u.buf[:0], u.buf[i:]...)
		}
	}
}
