package temporal

import (
	"fmt"
	"math"
)

// Columnar block codec: one ColBatch encoded column-at-a-time. Spill
// files store shuffle buckets and output partitions as single blocks,
// so a segment is decoded back into vectors in one pass — rows are
// materialized at most once, at the consumer that needs them.
//
// Block layout (all integers varint/uvarint):
//
//	0xCB | n | hasLifetimes [| n×LE | n×RE] | ncols | col...
//
// and each column:
//
//	kindTag | hasNulls [| packed null bitmap, ceil(n/8) bytes] | payload
//
// where kindTag is the Kind byte, or colKindMixed for heterogeneous
// columns, and the payload is n varints (int/bool), n uvarint float
// bits, a compacted dictionary (count + strings) followed by n uvarint
// codes, or n tagged Values (mixed). Null cells write zero
// placeholders; the bitmap is authoritative.
//
// The same two properties as the row codec hold: determinism (the
// dictionary is written in first-use order of the block's own codes, so
// identical logical content yields identical bytes even when a gathered
// bucket shares a larger ingest dictionary) and robustness (every
// count, code and bitmap length is bounds-checked; corrupt blocks
// error, never panic or over-allocate — FuzzColBlockRoundtrip).

// colBlockTag marks the start of a columnar block.
const colBlockTag = 0xCB

// colKindMixed tags a heterogeneous column stored as tagged values.
const colKindMixed = 0xFE

// ColBatch appends one columnar block.
func (w *Encoder) ColBatch(cb *ColBatch) {
	w.Byte(colBlockTag)
	n := cb.Len()
	w.Uvarint(uint64(n))
	w.Bool(cb.LE != nil)
	if cb.LE != nil {
		for _, t := range cb.LE {
			w.Varint(t)
		}
		for _, t := range cb.RE {
			w.Varint(t)
		}
	}
	w.Uvarint(uint64(len(cb.Cols)))
	for c := range cb.Cols {
		w.colVec(&cb.Cols[c], n)
	}
}

func (w *Encoder) colVec(v *ColVec, n int) {
	if v.Mixed != nil {
		w.Byte(colKindMixed)
		w.nullBitmap(nil, n)
		for i := 0; i < n; i++ {
			w.Value(v.Mixed[i])
		}
		return
	}
	w.Byte(byte(v.Kind))
	w.nullBitmap(v.Nulls, n)
	switch v.Kind {
	case KindNull:
	case KindInt, KindBool:
		for i := 0; i < n; i++ {
			w.Varint(v.Ints[i])
		}
	case KindFloat:
		for i := 0; i < n; i++ {
			w.Uvarint(math.Float64bits(v.Floats[i]))
		}
	case KindString:
		w.stringCol(v, n)
	}
}

// nullBitmap writes the hasNulls byte and, when nulls is non-nil, the
// packed LSB-first bitmap.
func (w *Encoder) nullBitmap(nulls []bool, n int) {
	if nulls == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	var acc byte
	for i := 0; i < n; i++ {
		if nulls[i] {
			acc |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			w.Byte(acc)
			acc = 0
		}
	}
	if n&7 != 0 {
		w.Byte(acc)
	}
}

// stringCol writes a string column: the compacted dictionary (only the
// entries this block actually references, in first-use order) followed
// by the remapped codes. Gathered shuffle buckets share their source
// batch's full ingest dictionary, which may be orders of magnitude
// larger than one bucket's working set; compaction keeps block size
// proportional to the bucket. The remap scratch lives on the Encoder
// and is reset entry-by-entry via the used list, not cleared wholesale.
func (w *Encoder) stringCol(v *ColVec, n int) {
	d := v.Dict
	if len(w.dictRemap) < d.Len() {
		grown := make([]int32, d.Len())
		for i := range grown {
			grown[i] = -1
		}
		copy(grown, w.dictRemap)
		w.dictRemap = grown
	}
	used := w.dictUsed[:0]
	for i := 0; i < n; i++ {
		if v.Nulls != nil && v.Nulls[i] {
			continue
		}
		code := v.Codes[i]
		if code < 0 || int(code) >= d.Len() {
			// A code beyond the dictionary means the vector was corrupted
			// (e.g. a view sliced past its backing data); fail loudly with
			// the real cause instead of an opaque index panic below.
			panic(fmt.Sprintf("temporal: string column code %d out of dictionary range %d", code, d.Len()))
		}
		if w.dictRemap[code] < 0 {
			w.dictRemap[code] = int32(len(used))
			used = append(used, code)
		}
	}
	w.Uvarint(uint64(len(used)))
	for _, code := range used {
		w.String(d.strs[code])
	}
	for i := 0; i < n; i++ {
		if v.Nulls != nil && v.Nulls[i] {
			w.Uvarint(0)
			continue
		}
		w.Uvarint(uint64(w.dictRemap[v.Codes[i]]))
	}
	for _, code := range used {
		w.dictRemap[code] = -1
	}
	w.dictUsed = used[:0]
}

// ColBatch reads one columnar block.
func (r *Decoder) ColBatch() *ColBatch {
	if r.Expect(colBlockTag, "columnar block") != nil {
		return nil
	}
	n := r.Count("col block rows")
	hasLifetimes := r.Bool()
	cb := &ColBatch{n: n}
	if hasLifetimes {
		if r.err != nil {
			return nil
		}
		cb.LE = make([]Time, n)
		cb.RE = make([]Time, n)
		for i := 0; i < n; i++ {
			cb.LE[i] = r.Varint()
		}
		for i := 0; i < n; i++ {
			cb.RE[i] = r.Varint()
		}
	}
	ncols := r.Count("col block columns")
	if r.err != nil {
		return nil
	}
	if n > 0 && ncols == 0 && !hasLifetimes {
		// Zero-width lifetime-free rows cost no payload bytes, so n is
		// unconstrained by Count; reject rather than trust it.
		r.fail("col block: %d rows with no columns or lifetimes", n)
		return nil
	}
	cb.Cols = make([]ColVec, ncols)
	for c := 0; c < ncols && r.err == nil; c++ {
		r.colVec(&cb.Cols[c], n)
	}
	if r.err != nil {
		return nil
	}
	return cb
}

func (r *Decoder) colVec(v *ColVec, n int) {
	kind := r.Byte()
	v.Nulls = r.nullBitmap(n)
	if r.err != nil {
		return
	}
	if kind == colKindMixed {
		if n > r.remaining() {
			r.fail("col block: %d mixed cells exceed remaining %d bytes", n, r.remaining())
			return
		}
		v.Mixed = make([]Value, n)
		for i := 0; i < n && r.err == nil; i++ {
			v.Mixed[i] = r.Value()
		}
		return
	}
	v.Kind = Kind(kind)
	switch v.Kind {
	case KindNull:
	case KindInt, KindBool:
		if n > r.remaining() {
			r.fail("col block: %d int cells exceed remaining %d bytes", n, r.remaining())
			return
		}
		v.Ints = make([]int64, n)
		for i := 0; i < n; i++ {
			v.Ints[i] = r.Varint()
		}
	case KindFloat:
		if n > r.remaining() {
			r.fail("col block: %d float cells exceed remaining %d bytes", n, r.remaining())
			return
		}
		v.Floats = make([]float64, n)
		for i := 0; i < n; i++ {
			v.Floats[i] = math.Float64frombits(r.Uvarint())
		}
	case KindString:
		r.stringCol(v, n)
	default:
		r.fail("col block: unknown column kind %d", kind)
	}
}

// nullBitmap reads the hasNulls byte and, if set, the packed bitmap.
func (r *Decoder) nullBitmap(n int) []bool {
	if !r.Bool() || r.err != nil {
		return nil
	}
	nbytes := (n + 7) / 8
	if nbytes > r.remaining() {
		r.fail("col block: null bitmap %d bytes exceeds remaining %d", nbytes, r.remaining())
		return nil
	}
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		nulls[i] = r.data[r.pos+i/8]&(1<<(uint(i)&7)) != 0
	}
	r.pos += nbytes
	return nulls
}

func (r *Decoder) stringCol(v *ColVec, n int) {
	dictLen := r.Count("col block dictionary")
	if r.err != nil {
		return
	}
	d := NewDict()
	for i := 0; i < dictLen && r.err == nil; i++ {
		d.Code(r.String())
	}
	if r.err != nil {
		return
	}
	if d.Len() != dictLen {
		r.fail("col block: dictionary holds duplicate entries")
		return
	}
	if n > r.remaining() {
		r.fail("col block: %d string codes exceed remaining %d bytes", n, r.remaining())
		return
	}
	v.Dict = d
	v.Codes = make([]int32, n)
	for i := 0; i < n && r.err == nil; i++ {
		code := r.Uvarint()
		if v.Nulls != nil && v.Nulls[i] {
			continue // placeholder; bitmap is authoritative
		}
		if code >= uint64(dictLen) {
			r.fail("col block: string code %d out of dictionary range %d", code, dictLen)
			return
		}
		v.Codes[i] = int32(code)
	}
}
