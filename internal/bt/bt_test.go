package bt

import (
	"math"
	"testing"

	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/ml"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// row builds a unified-schema row.
func row(t temporal.Time, stream, user, kwAd int64) temporal.Row {
	return temporal.Row{temporal.Int(t), temporal.Int(stream), temporal.Int(user), temporal.Int(kwAd)}
}

func pointEvents(rows []temporal.Row) []temporal.Event {
	return temporal.RowsToPointEvents(rows, 0)
}

func testParams() Params {
	p := DefaultParams()
	p.T1, p.T2 = 5, 8 // small thresholds for hand-built logs
	p.BotHop = temporal.Minute
	p.Tau = 10 * temporal.Minute
	p.TrainPeriod = temporal.Hour
	p.ZThreshold = 0
	return p
}

const ad1 = workload.AdIDBase // first ad id

func TestBotElimRemovesBots(t *testing.T) {
	p := testParams()
	var rows []temporal.Row
	// User 1: normal — 2 searches, 1 impression.
	rows = append(rows,
		row(1000, workload.StreamKeyword, 1, 10),
		row(2000, workload.StreamKeyword, 1, 11),
		row(3000, workload.StreamImpression, 1, ad1),
	)
	// User 2: bot — 10 clicks within τ (> T1=5).
	for i := 0; i < 10; i++ {
		rows = append(rows, row(temporal.Time(1000+i*100), workload.StreamClick, 2, ad1))
	}
	// Bot's later activity (within the flagged window) must be dropped.
	rows = append(rows, row(70_000, workload.StreamKeyword, 2, 12))

	out, err := temporal.RunPlan(BotElimPlan(p, false), map[string][]temporal.Event{
		SourceEvents: pointEvents(rows),
	})
	if err != nil {
		t.Fatal(err)
	}
	var user1, user2 int
	for _, e := range out {
		switch e.Payload[2].AsInt() {
		case 1:
			user1++
		case 2:
			user2++
		}
	}
	if user1 != 3 {
		t.Errorf("normal user kept %d/3 events", user1)
	}
	// The bot's first few clicks happen before the count crosses the
	// threshold (the bot list updates at hop boundaries), but events in
	// flagged windows must disappear — in particular the one at t=70s.
	if user2 >= 11 {
		t.Errorf("bot events not removed: kept %d", user2)
	}
	for _, e := range out {
		if e.Payload[2].AsInt() == 2 && e.LE == 70_000 {
			t.Error("bot event inside flagged window survived")
		}
	}
}

func TestBotElimSearchThreshold(t *testing.T) {
	p := testParams()
	var rows []temporal.Row
	// User 3 searches 12 times (> T2=8) — flagged via the search branch.
	for i := 0; i < 12; i++ {
		rows = append(rows, row(temporal.Time(1000+i*100), workload.StreamKeyword, 3, int64(20+i)))
	}
	rows = append(rows, row(80_000, workload.StreamImpression, 3, ad1))
	out, err := temporal.RunPlan(BotElimPlan(p, false), map[string][]temporal.Event{
		SourceEvents: pointEvents(rows),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out {
		if e.LE == 80_000 {
			t.Error("search-bot impression survived")
		}
	}
}

func TestLabelPlanSeparatesClicksAndNonClicks(t *testing.T) {
	p := testParams()
	rows := []temporal.Row{
		// Impression at 1000 followed by a click at 60000 (within 5 min)
		// → the impression is NOT a non-click; the click is labeled 1.
		row(1000, workload.StreamImpression, 1, ad1),
		row(60_000, workload.StreamClick, 1, ad1),
		// Impression at 1000 for another ad with no click → non-click.
		row(1000, workload.StreamImpression, 1, ad1+1),
		// Impression by another user, no click → non-click.
		row(2000, workload.StreamImpression, 2, ad1),
	}
	out, err := temporal.RunPlan(LabelPlan(p, false), map[string][]temporal.Event{
		SourceClean: pointEvents(rows),
	})
	if err != nil {
		t.Fatal(err)
	}
	type lab struct {
		t       temporal.Time
		user    int64
		ad      int64
		clicked int64
	}
	var got []lab
	for _, e := range out {
		got = append(got, lab{e.LE, e.Payload[1].AsInt(), e.Payload[2].AsInt(), e.Payload[3].AsInt()})
	}
	want := []lab{
		{1000, 1, ad1 + 1, 0},
		{2000, 2, ad1, 0},
		{60_000, 1, ad1, 1},
	}
	if len(got) != len(want) {
		t.Fatalf("labeled = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("labeled[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLabelPlanClickOutsideWindowIsNonClick(t *testing.T) {
	p := testParams()
	rows := []temporal.Row{
		row(1000, workload.StreamImpression, 1, ad1),
		// Click 20 minutes later — outside d=5min, so the impression
		// stays a non-click (and the click is still labeled 1).
		row(1000+20*temporal.Minute, workload.StreamClick, 1, ad1),
	}
	out, err := temporal.RunPlan(LabelPlan(p, false), map[string][]temporal.Event{
		SourceClean: pointEvents(rows),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Payload[3].AsInt() != 0 || out[1].Payload[3].AsInt() != 1 {
		t.Fatalf("labels = %v", out)
	}
}

func TestUBPCountsWithinTau(t *testing.T) {
	p := testParams() // τ = 10 min
	rows := []temporal.Row{
		row(0, workload.StreamKeyword, 1, 42),
		row(temporal.Minute, workload.StreamKeyword, 1, 42),
		row(30*temporal.Minute, workload.StreamKeyword, 1, 42), // far later
	}
	clean := temporal.Scan(SourceClean, workload.UnifiedSchema())
	out, err := temporal.RunPlan(UBPPlan(p, clean), map[string][]temporal.Event{
		SourceClean: pointEvents(rows),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshots: [1min, 10min) → 2; then decay; isolated 1 at 30min.
	at := func(t0 temporal.Time) int64 {
		for _, e := range out {
			if e.Contains(t0) {
				return e.Payload[2].AsInt()
			}
		}
		return -1
	}
	if got := at(2 * temporal.Minute); got != 2 {
		t.Errorf("count@2min = %d, want 2", got)
	}
	if got := at(11 * temporal.Minute); got > 1 {
		t.Errorf("count@11min = %d, want <=1 after expiry", got)
	}
	if got := at(31 * temporal.Minute); got != 1 {
		t.Errorf("count@31min = %d, want 1", got)
	}
}

func TestTrainDataJoinsUBPAtImpressionTime(t *testing.T) {
	p := testParams()
	labeled := []temporal.Row{
		{temporal.Int(5 * temporal.Minute), temporal.Int(1), temporal.Int(ad1), temporal.Int(1)},
	}
	clean := []temporal.Row{
		row(temporal.Minute, workload.StreamKeyword, 1, 42),
		row(2*temporal.Minute, workload.StreamKeyword, 1, 42),
		row(2*temporal.Minute+1, workload.StreamKeyword, 1, 77),
		row(20*temporal.Minute, workload.StreamKeyword, 1, 99), // after the impression
	}
	out, err := temporal.RunPlan(TrainDataPlan(p, false), map[string][]temporal.Event{
		SourceLabeled: pointEvents(labeled),
		SourceClean:   pointEvents(clean),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expect two training rows: keyword 42 with count 2, keyword 77 with 1.
	if len(out) != 2 {
		t.Fatalf("train rows = %v", out)
	}
	counts := map[int64]int64{}
	for _, e := range out {
		if e.Payload[3].AsInt() != 1 {
			t.Errorf("clicked label lost: %v", e.Payload)
		}
		counts[e.Payload[4].AsInt()] = e.Payload[5].AsInt()
	}
	if counts[42] != 2 || counts[77] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if _, has99 := counts[99]; has99 {
		t.Error("future keyword leaked into the UBP")
	}
}

// buildCorrelatedLog synthesizes labeled+train rows where keyword 100 is
// strongly positive for ad1 and keyword 200 strongly negative.
func buildCorrelatedLog() (labeled, train []temporal.Row) {
	mk := func(i int, clicked int64, kws ...int64) {
		tm := temporal.Time(i) * temporal.Second
		labeled = append(labeled, temporal.Row{
			temporal.Int(tm), temporal.Int(int64(i)), temporal.Int(ad1), temporal.Int(clicked),
		})
		for _, kw := range kws {
			train = append(train, temporal.Row{
				temporal.Int(tm), temporal.Int(int64(i)), temporal.Int(ad1), temporal.Int(clicked),
				temporal.Int(kw), temporal.Int(1),
			})
		}
	}
	i := 0
	// 40 impressions with kw100: 30 clicked.
	for ; i < 40; i++ {
		c := int64(0)
		if i < 30 {
			c = 1
		}
		mk(i, c, 100)
	}
	// 60 impressions with kw200: none clicked.
	for ; i < 100; i++ {
		mk(i, 0, 200)
	}
	// A few clicks with kw200 to give the test support.
	for ; i < 106; i++ {
		mk(i, 1, 200)
	}
	// Background: 200 impressions with kw300 clicking at ~33% — close to
	// the complement's CTR, so the keyword is uncorrelated.
	for ; i < 306; i++ {
		c := int64(0)
		if i%3 == 0 {
			c = 1
		}
		mk(i, c, 300)
	}
	return labeled, train
}

func TestFeatureSelectFindsPlantedCorrelations(t *testing.T) {
	p := testParams()
	labeled, train := buildCorrelatedLog()
	out, err := temporal.RunPlan(FeatureSelectPlan(p, false), map[string][]temporal.Event{
		SourceLabeled: pointEvents(labeled),
		SourceTrain:   pointEvents(train),
	})
	if err != nil {
		t.Fatal(err)
	}
	z := map[int64]float64{}
	for _, e := range out {
		if e.Payload[0].AsInt() != ad1 {
			t.Errorf("unexpected ad id %d", e.Payload[0].AsInt())
		}
		z[e.Payload[1].AsInt()] = e.Payload[2].AsFloat()
	}
	if z[100] <= 2 {
		t.Errorf("z(kw100) = %v, want strongly positive", z[100])
	}
	if z[200] >= -2 {
		t.Errorf("z(kw200) = %v, want strongly negative", z[200])
	}
	if math.Abs(z[300]) > 2 {
		t.Errorf("z(kw300) = %v, want near zero", z[300])
	}
}

func TestFeatureSelectThresholdFilters(t *testing.T) {
	p := testParams()
	p.ZThreshold = 2.5
	labeled, train := buildCorrelatedLog()
	out, err := temporal.RunPlan(FeatureSelectPlan(p, false), map[string][]temporal.Event{
		SourceLabeled: pointEvents(labeled),
		SourceTrain:   pointEvents(train),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out {
		kw := e.Payload[1].AsInt()
		if kw == 300 {
			t.Error("uncorrelated keyword survived the threshold")
		}
	}
	if len(out) < 2 {
		t.Errorf("planted keywords should survive, got %v", out)
	}
}

func TestReducePlanKeepsOnlyScoredKeywords(t *testing.T) {
	p := testParams()
	labeled, train := buildCorrelatedLog()
	p.ZThreshold = 2.5
	scores, err := temporal.RunPlan(FeatureSelectPlan(p, false), map[string][]temporal.Event{
		SourceLabeled: pointEvents(labeled),
		SourceTrain:   pointEvents(train),
	})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := temporal.RunPlan(ReducePlan(p, false), map[string][]temporal.Event{
		SourceTrain:  pointEvents(train),
		SourceScores: scores,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced) == 0 {
		t.Fatal("no reduced rows")
	}
	for _, e := range reduced {
		kw := e.Payload[4].AsInt()
		if kw == 300 {
			t.Error("eliminated keyword still present in reduced data")
		}
	}
	if len(reduced) >= len(train) {
		t.Errorf("reduction did not shrink data: %d -> %d", len(train), len(reduced))
	}
}

func TestModelPlanEmitsUsableModel(t *testing.T) {
	p := testParams()
	labeled, train := buildCorrelatedLog()
	_ = labeled
	models, err := temporal.RunPlan(ModelPlan(p, false), map[string][]temporal.Event{
		SourceReduced: pointEvents(train),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Fatal("no model events")
	}
	e := models[0]
	if e.Payload[0].AsInt() != ad1 {
		t.Errorf("model ad = %d", e.Payload[0].AsInt())
	}
	m, err := ParseModel(e.Payload[1].AsString())
	if err != nil {
		t.Fatal(err)
	}
	pPos := m.Predict([]ml.Feature{{ID: 100, Val: 1}})
	pNeg := m.Predict([]ml.Feature{{ID: 200, Val: 1}})
	if pPos <= pNeg {
		t.Errorf("model did not learn: P(click|kw100)=%v <= P(click|kw200)=%v", pPos, pNeg)
	}
}

func TestSerializeParseModelRoundTrip(t *testing.T) {
	m := &ml.Model{Bias: -1.25, Weights: map[int64]float64{3: 0.5, 1: -2.75}}
	s := SerializeModel(m)
	back, err := ParseModel(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bias != m.Bias || len(back.Weights) != 2 ||
		back.Weights[1] != -2.75 || back.Weights[3] != 0.5 {
		t.Fatalf("round trip: %q -> %+v", s, back)
	}
	if SerializeModel(m) != s {
		t.Error("serialization not deterministic")
	}
	if _, err := ParseModel("garbage"); err == nil {
		t.Error("garbage must not parse")
	}
	if _, err := ParseModel("1.5;bad"); err == nil {
		t.Error("bad term must not parse")
	}
	empty, err := ParseModel("0.5;")
	if err != nil || empty.Bias != 0.5 || len(empty.Weights) != 0 {
		t.Error("empty weight list must parse")
	}
}

func TestRowsToExamples(t *testing.T) {
	rows := []temporal.Row{
		{temporal.Int(10), temporal.Int(1), temporal.Int(ad1), temporal.Int(1), temporal.Int(5), temporal.Int(2)},
		{temporal.Int(10), temporal.Int(1), temporal.Int(ad1), temporal.Int(1), temporal.Int(7), temporal.Int(1)},
		{temporal.Int(20), temporal.Int(2), temporal.Int(ad1), temporal.Int(0), temporal.Int(5), temporal.Int(3)},
	}
	ex := RowsToExamples(rows)
	if len(ex) != 2 {
		t.Fatalf("examples = %d", len(ex))
	}
	if !ex[0].Clicked || len(ex[0].Features) != 2 {
		t.Errorf("ex0 = %+v", ex[0])
	}
	if ex[1].Clicked || ex[1].Features[0].Val != 3 {
		t.Errorf("ex1 = %+v", ex[1])
	}
}

func TestAddEmptyExamples(t *testing.T) {
	labeled := []temporal.Row{
		{temporal.Int(10), temporal.Int(1), temporal.Int(ad1), temporal.Int(0)},
		{temporal.Int(20), temporal.Int(2), temporal.Int(ad1), temporal.Int(1)},
		{temporal.Int(30), temporal.Int(3), temporal.Int(ad1 + 1), temporal.Int(0)}, // other ad
	}
	train := []temporal.Row{
		{temporal.Int(10), temporal.Int(1), temporal.Int(ad1), temporal.Int(0), temporal.Int(5), temporal.Int(1)},
	}
	ex := RowsToExamples(train)
	ex = AddEmptyExamples(ex, labeled, train, ad1)
	if len(ex) != 2 {
		t.Fatalf("examples = %d", len(ex))
	}
	if !ex[1].Clicked || len(ex[1].Features) != 0 {
		t.Errorf("empty example = %+v", ex[1])
	}
}

func TestQueryInventoryCount(t *testing.T) {
	// Figure 14: "end-to-end BT using TiMR uses 20 easy-to-write temporal
	// queries."
	if got := len(QueryInventory()); got != 20 {
		t.Errorf("query inventory = %d, want 20", got)
	}
}

func TestPipelineOnTiMRMatchesSingleNode(t *testing.T) {
	// The whole BT pipeline, executed phase-by-phase on the cluster, must
	// equal the single-node run — over generated data with bots.
	d := workload.Generate(workload.Config{
		Users: 150, Keywords: 300, AdClasses: 3, Days: 1, Seed: 11,
		BotFraction: 0.02,
	})
	p := DefaultParams()
	p.T1, p.T2 = 30, 60
	p.TrainPeriod = 12 * temporal.Hour

	cl := mapreduce.NewCluster(mapreduce.Config{Machines: 4})
	tm := core.New(cl, core.DefaultConfig())
	cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), d.Rows))
	pl := NewPipeline(p, tm)
	if err := pl.Run("events"); err != nil {
		t.Fatal(err)
	}
	if len(pl.Phases) != 7 {
		t.Fatalf("phases = %d", len(pl.Phases))
	}

	single, err := RunSingleNode(p, d.Events())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{DSClean, DSLabeled, DSTrain, DSScores, DSReduced} {
		got, err := pl.Events(ds)
		if err != nil {
			t.Fatal(err)
		}
		if !temporal.EventsEqual(got, single[ds]) {
			t.Errorf("%s: TiMR %d events != single-node %d events", ds, len(got), len(single[ds]))
		}
	}
	// Sanity: bot elimination removed something.
	clean := single[DSClean]
	if len(clean) >= len(d.Rows) {
		t.Error("bot elimination removed nothing")
	}
}

func TestNaivePipelineSameResultMoreShuffle(t *testing.T) {
	// Example 3: the naive annotation gives identical results but
	// strictly more stages/shuffle.
	d := workload.Generate(workload.Config{
		Users: 100, Keywords: 200, AdClasses: 2, Days: 1, Seed: 3,
	})
	p := DefaultParams()
	p.TrainPeriod = 12 * temporal.Hour

	runPipeline := func(naive bool) (*Pipeline, []temporal.Event) {
		cl := mapreduce.NewCluster(mapreduce.Config{Machines: 4})
		tm := core.New(cl, core.DefaultConfig())
		cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), d.Rows))
		pl := NewPipeline(p, tm)
		pl.Naive = naive
		if err := pl.Run("events"); err != nil {
			t.Fatal(err)
		}
		evs, err := pl.Events(DSTrain)
		if err != nil {
			t.Fatal(err)
		}
		return pl, evs
	}
	plGood, evGood := runPipeline(false)
	plNaive, evNaive := runPipeline(true)
	if !temporal.EventsEqual(evGood, evNaive) {
		t.Fatal("annotation choice changed results")
	}
	shuffle := func(pl *Pipeline, phase string) int {
		for _, ph := range pl.Phases {
			if ph.Name == phase {
				n := 0
				for _, st := range ph.Stat.Stages {
					n += st.ShuffleRows
				}
				return n
			}
		}
		return -1
	}
	gs, ns := shuffle(plGood, "TrainData"), shuffle(plNaive, "TrainData")
	if ns <= gs {
		t.Errorf("naive plan should shuffle more: %d vs %d", ns, gs)
	}
}
