package bt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"timr/internal/ml"
	"timr/internal/temporal"
)

// RowsToExamples groups sparse training rows (TrainSchema) into per-
// impression examples: rows sharing (Time, UserId, AdId) form one
// example whose features are its (Keyword, KwCount) pairs.
//
// Rows for impressions whose UBP was empty never appear in the joined
// training data (a TemporalJoin drops them); callers that need them —
// the evaluation does, since empty-profile impressions still count
// against coverage — add them from the labeled stream via
// AddEmptyExamples.
func RowsToExamples(rows []temporal.Row) []ml.Example {
	type key struct {
		t    int64
		user int64
		ad   int64
	}
	order := make([]key, 0, len(rows))
	grouped := make(map[key]*ml.Example)
	for _, r := range rows {
		k := key{r[0].AsInt(), r[1].AsInt(), r[2].AsInt()}
		ex, ok := grouped[k]
		if !ok {
			ex = &ml.Example{Clicked: r[3].AsInt() == 1}
			grouped[k] = ex
			order = append(order, k)
		}
		ex.Features = append(ex.Features, ml.Feature{
			ID:  r[4].AsInt(),
			Val: float64(r[5].AsInt()),
		})
	}
	out := make([]ml.Example, len(order))
	for i, k := range order {
		ex := grouped[k]
		ex.Features = ml.SortFeatures(ex.Features)
		out[i] = *ex
	}
	return out
}

// modelUDO returns the windowed UDO function fitting an LR model on the
// window's training rows and emitting it serialized.
func modelUDO(p Params) func(ws, we temporal.Time, rows []temporal.Row) []temporal.Row {
	return func(ws, we temporal.Time, rows []temporal.Row) []temporal.Row {
		// Inside the GroupApply the AdId column is still present; rows
		// here carry the full TrainSchema.
		examples := RowsToExamples(rows)
		cfg := ml.DefaultLRConfig()
		cfg.Epochs = p.ModelEpochs
		m := ml.TrainLR(examples, cfg)
		return []temporal.Row{{temporal.String(SerializeModel(m))}}
	}
}

// SerializeModel encodes a model as "bias;id:w,id:w,..." with stable
// ordering, so repeated runs produce byte-identical model events (the
// repeatability guarantee extends through the UDO).
func SerializeModel(m *ml.Model) string {
	ids := make([]int64, 0, len(m.Weights))
	for id := range m.Weights {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%.12g", m.Bias)
	b.WriteByte(';')
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%.12g", id, m.Weights[id])
	}
	return b.String()
}

// ParseModel decodes SerializeModel output.
func ParseModel(s string) (*ml.Model, error) {
	semi := strings.IndexByte(s, ';')
	if semi < 0 {
		return nil, fmt.Errorf("bt: malformed model %q", s)
	}
	bias, err := strconv.ParseFloat(s[:semi], 64)
	if err != nil {
		return nil, fmt.Errorf("bt: malformed model bias: %w", err)
	}
	m := &ml.Model{Bias: bias, Weights: make(map[int64]float64)}
	rest := s[semi+1:]
	if rest == "" {
		return m, nil
	}
	for _, part := range strings.Split(rest, ",") {
		colon := strings.IndexByte(part, ':')
		if colon < 0 {
			return nil, fmt.Errorf("bt: malformed model term %q", part)
		}
		id, err := strconv.ParseInt(part[:colon], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bt: malformed model term %q: %w", part, err)
		}
		w, err := strconv.ParseFloat(part[colon+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bt: malformed model term %q: %w", part, err)
		}
		m.Weights[id] = w
	}
	return m, nil
}

// AddEmptyExamples appends an empty-feature example for every labeled
// impression (Time, UserId, AdId, Clicked) of the given ad that produced
// no joined training rows.
func AddEmptyExamples(examples []ml.Example, labeled []temporal.Row, trainRows []temporal.Row, adID int64) []ml.Example {
	type key struct{ t, user int64 }
	have := make(map[key]bool, len(trainRows))
	for _, r := range trainRows {
		if r[2].AsInt() == adID {
			have[key{r[0].AsInt(), r[1].AsInt()}] = true
		}
	}
	for _, r := range labeled {
		if r[2].AsInt() != adID {
			continue
		}
		if have[key{r[0].AsInt(), r[1].AsInt()}] {
			continue
		}
		examples = append(examples, ml.Example{Clicked: r[3].AsInt() == 1})
	}
	return examples
}
