package bt

import (
	"math"
	"sort"
	"strings"
	"testing"

	"timr/internal/core"
)

// costStats is the fixed cost model the golden regression prices plans
// under: round source cardinalities shrinking down the pipeline (bot
// elimination and labeling are selective; reduce joins against a small
// score set) and distinct counts for the partitioning keys the annotated
// plans exchange on.
func costStats() *core.Stats {
	s := core.DefaultStats()
	s.SourceRows = map[string]int64{
		SourceEvents:  1_000_000,
		SourceClean:   900_000,
		SourceLabeled: 600_000,
		SourceTrain:   400_000,
		SourceScores:  5_000,
		SourceReduced: 300_000,
		SourceModels:  200,
	}
	s.Distinct = map[string]int64{
		"UserId":  50_000,
		"AdId":    40,
		"Keyword": 10_000,
	}
	return s
}

// TestEstimateCostGolden pins EstimateCost over every annotated stage
// plan of the DAG (plus the Example-3 naive TrainData strawman) under
// the fixed costStats model. The values are regression anchors, not
// truths: any change to the cost model, the operator factors, or a
// stage's plan shape must show up here as a deliberate golden update.
func TestEstimateCostGolden(t *testing.T) {
	p := DefaultParams()
	golden := map[string]float64{
		"BotElim":        3_036_666.666667,
		"Label":          2_722_080,
		"TrainData":      4_521_700,
		"NaiveTrainData": 5_871_700, // Example 3: the strawman annotation loses
		"FeatureSelect":  4_289_000,
		"Reduce":         1_220_946.666667,
		"Model":          911_250,
		"Score":          929_869.5,
	}
	if golden["NaiveTrainData"] <= golden["TrainData"] {
		t.Fatal("golden table lost Example 3's point: naive must cost more than the optimized annotation")
	}

	plans := map[string]func() float64{}
	for _, st := range Stages(false) {
		spec := st
		plans[spec.Name] = func() float64 {
			return core.NewOptimizer(costStats()).EstimateCost(spec.Plan(p, true))
		}
	}
	plans["NaiveTrainData"] = func() float64 {
		return core.NewOptimizer(costStats()).EstimateCost(NaiveTrainDataPlan(p))
	}

	names := make([]string, 0, len(plans))
	for n := range plans {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) != len(golden) {
		t.Fatalf("golden table covers %d plans, DAG builds %d", len(golden), len(names))
	}
	for _, name := range names {
		got := plans[name]()
		want, ok := golden[name]
		if !ok {
			t.Errorf("%s: no golden cost (got %.6f)", name, got)
			continue
		}
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Errorf("%s: EstimateCost = %.6f, golden %.6f", name, got, want)
		}
	}

	// Every sub-query in the paper's 20-query inventory belongs to a
	// stage priced above — the goldens cover the whole inventory.
	for _, q := range QueryInventory() {
		stage := q[:strings.Index(q, ".")]
		if _, ok := golden[stage]; !ok {
			t.Errorf("inventory query %s: stage %s has no golden cost", q, stage)
		}
	}
}
