package bt

import (
	"fmt"
	"math"
	"sort"
	"time"

	"timr/internal/core"
	"timr/internal/dur"
	"timr/internal/ml"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// Incremental BT refresh (the sliding-window deployment of §IV): the
// pipeline ingests one day of raw log at a time instead of recomputing
// the whole history. The DAG's front stages (FrontStages) reach a
// bounded distance backward and forward in time, so each ingest
// recomputes them over a window of raw history — Lookback(P) behind the
// previous watermark through the new day's end — and finalizes exactly
// the output rows whose Time falls between the old and new watermarks
// (F = dayEnd − D: a row earlier than F can never change, because the
// only forward reach is the non-click detector's d). Everything behind
// the watermark is maintained as mergeable summaries: click counts add,
// z-tests replay exactly on the merged counts, reduced training rows
// concatenate, and frozen-window models are trained once and reused.
//
// Whether an ingest runs the delta path or a full recompute is a cost
// decision (core.Optimizer.PlanRefresh), calibrated from the previous
// ingests' recorded stage timings. Both paths land in byte-identical
// state (RefreshState.SummaryBytes), which the incgate drill asserts
// daily under injected storage faults.

// RefreshMode overrides the cost chooser.
type RefreshMode int

const (
	ModeAuto  RefreshMode = iota // chooser decides
	ModeFull                     // always recompute from full history
	ModeDelta                    // always apply the day's delta
)

// RefreshOptions configure a Refresher.
type RefreshOptions struct {
	Mode RefreshMode

	// RetainHistory keeps every ingested raw row in memory so the full
	// path stays available; without it the chooser is forced onto the
	// delta path (the refresher only retains Lookback history).
	RetainHistory bool

	// AllowWarmStart lets the chooser initialize a partial window's
	// retrain from the previous ingest's model for that window, with
	// WarmEpochs passes instead of ModelEpochs. The result is kept only
	// if its lift-curve area stays within WarmTolerance of the window's
	// previously recorded area; otherwise the exact retrain runs.
	AllowWarmStart bool
	WarmEpochs     int     // default max(3, ModelEpochs/3)
	WarmTolerance  float64 // default 0.05

	// Opt prices full vs delta (nil: core.DefaultStats).
	Opt *core.Optimizer

	// Store persists one generation per ingest (nil: in-memory only).
	Store *dur.Store
}

// Refresher maintains RefreshState across daily ingests.
type Refresher struct {
	State *RefreshState
	Opts  RefreshOptions

	// Choices holds the chooser's verdicts from the newest ingest, and
	// LastDelta whether it ran the delta path.
	Choices   []core.RefreshChoice
	LastDelta bool

	// DurErr is the newest persistence error (nil after a successful
	// commit). Commit failure does not fail the ingest — the previous
	// generation remains a correct, older recovery line.
	DurErr error

	// WarmStarts counts partial-window retrains that kept the warm
	// model; WarmRejects counts warm attempts that failed the parity
	// gate and fell back to the exact retrain.
	WarmStarts  int
	WarmRejects int

	history []temporal.Row // full raw log, kept only with RetainHistory
}

// NewRefresher builds a refresher with empty state.
func NewRefresher(p Params, cfg workload.Config, opts RefreshOptions) *Refresher {
	if opts.Opt == nil {
		opts.Opt = core.NewOptimizer(core.DefaultStats())
	}
	if opts.WarmEpochs <= 0 {
		opts.WarmEpochs = p.ModelEpochs / 3
		if opts.WarmEpochs < 3 {
			opts.WarmEpochs = 3
		}
	}
	if opts.WarmTolerance <= 0 {
		opts.WarmTolerance = 0.05
	}
	return &Refresher{State: NewRefreshState(p, cfg), Opts: opts}
}

// Restore loads the newest intact persisted generation from the
// configured store, replacing the in-memory state. Returns false when
// the store holds none (the refresher starts empty). Raw history is not
// persisted beyond the lookback tail, so a restored refresher runs
// delta-only until RetainHistory re-accumulates.
func (r *Refresher) Restore() (bool, error) {
	if r.Opts.Store == nil {
		return false, fmt.Errorf("bt: refresher has no store to restore from")
	}
	rec, err := r.Opts.Store.LoadState()
	if err != nil || rec == nil {
		return false, err
	}
	st, err := DecodeState(rec.Payload)
	if err != nil {
		return false, err
	}
	if int64(st.Watermark) != int64(rec.Wave) || st.Days != rec.Waves {
		return false, fmt.Errorf("bt: refresh state disagrees with generation header (wave %d/%d, days %d/%d)",
			st.Watermark, rec.Wave, st.Days, rec.Waves)
	}
	r.State = st
	r.history = nil
	return true, nil
}

// IngestDay advances the refresher by one day of raw log rows (Time-
// sorted, all within [previous dayEnd, dayEnd)). The chooser picks full
// vs delta unless the mode forces one; both paths finalize rows up to
// the new watermark dayEnd − D and leave byte-identical SummaryBytes.
func (r *Refresher) IngestDay(dayRows []temporal.Row, dayEnd temporal.Time) error {
	st := r.State
	if newF := dayEnd - st.P.D; newF <= st.Watermark && st.Days > 0 {
		return fmt.Errorf("bt: refresh ingest does not advance the watermark (%d -> %d)", st.Watermark, newF)
	}

	r.Choices = r.planChoices(int64(len(dayRows)))
	delta := core.ChooseDelta(r.Choices)
	switch r.Opts.Mode {
	case ModeFull:
		delta = false
	case ModeDelta:
		delta = true
	}
	if !delta && !r.Opts.RetainHistory {
		if r.Opts.Mode == ModeFull {
			return fmt.Errorf("bt: ModeFull requires RetainHistory")
		}
		delta = true
	}

	var err error
	if delta {
		err = r.ingestDelta(dayRows, dayEnd)
	} else {
		all := make([]temporal.Row, 0, len(r.history)+len(dayRows))
		all = append(all, r.history...)
		all = append(all, dayRows...)
		err = r.fullRecompute(all, dayEnd)
	}
	if err != nil {
		return err
	}
	r.LastDelta = delta
	if r.Opts.RetainHistory {
		r.history = append(r.history, dayRows...)
	}
	return r.persist()
}

func (r *Refresher) persist() error {
	r.DurErr = nil
	if r.Opts.Store == nil {
		return nil
	}
	payload, err := EncodeState(r.State)
	if err != nil {
		return err
	}
	r.DurErr = r.Opts.Store.CommitState(r.State.Watermark, r.State.Days, payload)
	return nil
}

// planChoices builds the chooser's stage descriptions from the current
// state and prices them.
func (r *Refresher) planChoices(dayRows int64) []core.RefreshChoice {
	st := r.State
	tail := int64(len(st.TailRaw))
	finalized := int64(len(st.Labeled) + len(st.Train))
	newPerDay := finalized + dayRows // day-1 guess: front output ~ input
	if st.Days > 0 {
		newPerDay = finalized/int64(st.Days) + 1
	}
	mergeUnits := int64(len(st.Counts.Totals) + len(st.Counts.PerKw))
	var partialRows int64
	frozenCut := int64(st.Watermark)
	for _, row := range st.Train {
		if w := Window(temporal.Time(row[0].AsInt()), st.P.TrainPeriod); (w+1)*int64(st.P.TrainPeriod) > frozenCut {
			partialRows++
		}
	}
	stages := []core.RefreshStage{
		{
			Name:     "Front",
			FullRows: st.RawRows + dayRows, DeltaRows: tail + dayRows,
			Observed: st.Observation("Front"), Factor: 4.0,
			ForceDelta: !r.Opts.RetainHistory,
		},
		{
			Name:     "Counts",
			FullRows: finalized + newPerDay, DeltaRows: newPerDay,
			MergeUnits: mergeUnits,
			Observed:   st.Observation("Counts"), Factor: 0.2,
		},
		{
			Name:     "Model",
			FullRows: finalized/2 + newPerDay, DeltaRows: partialRows + newPerDay,
			Observed: st.Observation("Model"), Factor: 5.0,
		},
	}
	return r.Opts.Opt.PlanRefresh(stages)
}

// rowLess is the canonical row order: column-wise integer compare, Time
// (column 0) first. Both refresh paths sort finalized rows with it, so
// equal row sets serialize identically.
func rowLess(a, b temporal.Row) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		av, bv := a[i].AsInt(), b[i].AsInt()
		if av != bv {
			return av < bv
		}
	}
	return len(a) < len(b)
}

func sortRows(rows []temporal.Row) {
	sort.SliceStable(rows, func(i, j int) bool { return rowLess(rows[i], rows[j]) })
}

// eventRows flattens plan output events to their payload rows.
func eventRows(evs []temporal.Event) []temporal.Row {
	rows := make([]temporal.Row, 0, len(evs))
	for _, e := range evs {
		rows = append(rows, e.Payload)
	}
	return rows
}

// rowsInRange keeps rows with lo <= Time < hi.
func rowsInRange(rows []temporal.Row, lo, hi temporal.Time) []temporal.Row {
	var out []temporal.Row
	for _, row := range rows {
		if t := temporal.Time(row[0].AsInt()); t >= lo && t < hi {
			out = append(out, row)
		}
	}
	return out
}

// runFront executes the front stages single-node over a raw-row window,
// recording one aggregate timing observation, and returns the labeled
// and train output rows.
func (r *Refresher) runFront(st *RefreshState, input []temporal.Row) (labeled, train []temporal.Row, err error) {
	ds := map[string][]temporal.Event{DSEvents: temporal.RowsToPointEvents(input, 0)}
	start := time.Now()
	if err := RunStagesSingleNode(st.P, FrontStages(false), ds); err != nil {
		return nil, nil, err
	}
	st.RecordTiming("Front", int64(len(input)), time.Since(start).Nanoseconds())
	return eventRows(ds[DSLabeled]), eventRows(ds[DSTrain]), nil
}

// finalize folds newly-owned front-stage rows (watermark interval
// [lo, hi)) into the state: rows append in canonical order, counts
// merge.
func (st *RefreshState) finalize(labeled, train []temporal.Row, lo, hi temporal.Time) {
	start := time.Now()
	newLabeled := rowsInRange(labeled, lo, hi)
	newTrain := rowsInRange(train, lo, hi)
	sortRows(newLabeled)
	sortRows(newTrain)
	st.Labeled = append(st.Labeled, newLabeled...)
	st.Train = append(st.Train, newTrain...)
	st.Counts.AddLabeled(newLabeled, st.P.TrainPeriod)
	st.Counts.AddTrain(newTrain, st.P.TrainPeriod)
	st.RecordTiming("Counts", int64(len(newLabeled)+len(newTrain)), time.Since(start).Nanoseconds())
}

// ingestDelta is the incremental path: recompute the front stages over
// the retained tail plus the new day, finalize the watermark interval,
// merge summaries, and retrain only non-frozen windows.
func (r *Refresher) ingestDelta(dayRows []temporal.Row, dayEnd temporal.Time) error {
	st := r.State
	fPrev, fNew := st.Watermark, dayEnd-st.P.D
	input := make([]temporal.Row, 0, len(st.TailRaw)+len(dayRows))
	input = append(input, st.TailRaw...)
	input = append(input, dayRows...)

	labeled, train, err := r.runFront(st, input)
	if err != nil {
		return err
	}
	st.finalize(labeled, train, fPrev, fNew)

	keep := fNew - Lookback(st.P)
	tail := rowsInRange(input, keep, temporal.Time(math.MaxInt64))
	st.TailRaw = append([]temporal.Row(nil), tail...)
	st.Watermark = fNew
	st.Days++
	st.RawRows += int64(len(dayRows))
	r.rebuildModels(st.Models)
	return nil
}

// fullRecompute rebuilds the whole state from complete raw history —
// the reference the delta path must match byte-for-byte.
func (r *Refresher) fullRecompute(allRaw []temporal.Row, dayEnd temporal.Time) error {
	old := r.State
	ns := NewRefreshState(old.P, old.Cfg)
	ns.Timings = old.Timings
	fNew := dayEnd - ns.P.D

	labeled, train, err := r.runFront(ns, allRaw)
	if err != nil {
		return err
	}
	ns.finalize(labeled, train, 0, fNew)
	ns.TailRaw = append([]temporal.Row(nil), rowsInRange(allRaw, fNew-Lookback(ns.P), temporal.Time(math.MaxInt64))...)
	ns.Watermark = fNew
	ns.Days = old.Days + 1
	ns.RawRows = int64(len(allRaw))
	r.State = ns
	r.rebuildModels(nil) // no cache: every window trains from scratch
	return nil
}

type winAd struct{ win, ad int64 }

// rebuildModels recomputes the model cache from the finalized training
// rows: frozen windows reuse their cached model verbatim (their inputs
// can never change), non-frozen windows retrain — exactly, or warm-
// started behind the parity gate.
func (r *Refresher) rebuildModels(prev []WindowModel) {
	st := r.State
	start := time.Now()
	selected := st.Counts.SelectFeatures(st.P)
	reduced := ReduceRows(st.Train, selected, st.P.TrainPeriod)

	groups := make(map[winAd][]temporal.Row)
	for _, row := range reduced {
		k := winAd{Window(temporal.Time(row[0].AsInt()), st.P.TrainPeriod), row[2].AsInt()}
		groups[k] = append(groups[k], row)
	}
	keys := make([]winAd, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].win != keys[j].win {
			return keys[i].win < keys[j].win
		}
		return keys[i].ad < keys[j].ad
	})

	cache := make(map[winAd]WindowModel, len(prev))
	for _, m := range prev {
		cache[winAd{m.Win, m.Ad}] = m
	}
	var trained int64
	models := make([]WindowModel, 0, len(keys))
	for _, k := range keys {
		if pm, ok := cache[k]; ok && pm.Frozen {
			models = append(models, pm)
			continue
		}
		rows := groups[k]
		trained += int64(len(rows))
		pm, hasPrev := cache[k]
		frozen := (k.win+1)*int64(st.P.TrainPeriod) <= int64(st.Watermark)
		models = append(models, r.trainWindow(k, rows, frozen, pm, hasPrev))
	}
	st.Models = models
	st.RecordTiming("Model", trained, time.Since(start).Nanoseconds())
}

// trainWindow fits one (window, ad) model. The warm path runs only when
// allowed, when the window had a previous model to start from, and is
// kept only if its lift-curve area stays within WarmTolerance of the
// previously recorded area.
func (r *Refresher) trainWindow(k winAd, rows []temporal.Row, frozen bool, prev WindowModel, hasPrev bool) WindowModel {
	exs := RowsToExamples(rows)
	cfg := ml.DefaultLRConfig()
	cfg.Epochs = r.State.P.ModelEpochs

	if r.Opts.AllowWarmStart && hasPrev && prev.Model != nil {
		wcfg := cfg
		wcfg.Epochs = r.Opts.WarmEpochs
		wm := ml.TrainLRWarm(exs, wcfg, prev.Model)
		if area := windowArea(wm, exs); math.Abs(area-prev.Area) <= r.Opts.WarmTolerance {
			r.WarmStarts++
			return WindowModel{Win: k.win, Ad: k.ad, Frozen: frozen, Model: wm, Area: area}
		}
		r.WarmRejects++
	}
	m := ml.TrainLR(exs, cfg)
	return WindowModel{Win: k.win, Ad: k.ad, Frozen: frozen, Model: m, Area: windowArea(m, exs)}
}

// windowArea scores a model on its own window's examples and integrates
// the lift-coverage curve — the self-referential quality number the
// warm gate compares across ingests.
func windowArea(m *ml.Model, exs []ml.Example) float64 {
	if len(exs) == 0 {
		return 0
	}
	preds := make([]float64, len(exs))
	labels := make([]bool, len(exs))
	for i, ex := range exs {
		preds[i] = m.Predict(ex.Features)
		labels[i] = ex.Clicked
	}
	return ml.CurveArea(ml.LiftCoverageCurve(preds, labels, 20))
}
