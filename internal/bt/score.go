package bt

import (
	"timr/internal/ml"
	"timr/internal/stats"
	"timr/internal/temporal"
)

// ScoreSchemaOut is the output of ScorePlan: one prediction per scored
// impression.
var ScoreSchemaOut = temporal.NewSchema(
	temporal.Field{Name: "Time", Kind: temporal.KindInt},
	temporal.Field{Name: "UserId", Kind: temporal.KindInt},
	temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	temporal.Field{Name: "Clicked", Kind: temporal.KindInt},
	temporal.Field{Name: "Score", Kind: temporal.KindFloat},
)

// ScorePlan closes the M3 loop (paper §IV-B.4): "The output model weights
// are lodged in the right synopsis of a TemporalJoin operator (for
// scoring), so we can generate a prediction whenever a new UBP is fed on
// its left input."
//
// Left input: per-impression sparse feature rows (SourceReduced, the
// TrainSchema shape — at serving time these are the reduced UBPs of
// incoming impressions). Right input: the serialized per-ad models
// produced by ModelPlan, scanned as SourceModels. Each feature row joins
// the model valid at its instant, contributes w_kw · count, and the
// per-impression contributions are summed by a GroupApply whose key
// includes the model blob (constant per ad), so the final projection can
// apply the bias and the logistic function.
//
// Impressions whose UBP was empty produce no rows here; a deployment
// scores them with the model's bias alone (the evaluation harness does).
func ScorePlan(p Params, annotate bool) *temporal.Plan {
	rows := maybeExchange(temporal.Scan(SourceReduced, TrainSchema), annotate, adKey())
	models := maybeExchange(temporal.Scan(SourceModels, ModelSchema), annotate, adKey())

	// Model events are valid for the hop AFTER their training window; at
	// serving time that alignment is exactly right. For offline
	// back-testing over the same log, the harness feeds test-period rows,
	// which fall inside the models' validity — no shift needed.
	joined := rows.Join(models, []string{"AdId"}, []string{"AdId"}, nil)

	// Per-row partial dot product w_kw * count. Model blobs are parsed
	// once per distinct string through a tiny cache.
	cache := map[string]*ml.Model{}
	lookup := func(blob string) *ml.Model {
		if m, ok := cache[blob]; ok {
			return m
		}
		m, err := ParseModel(blob)
		if err != nil {
			m = &ml.Model{Weights: map[int64]float64{}}
		}
		cache[blob] = m
		return m
	}
	partial := joined.Project(
		temporal.Keep("Time"),
		temporal.Keep("UserId"),
		temporal.Keep("AdId"),
		temporal.Keep("Clicked"),
		temporal.Keep("Model"),
		temporal.Compute("Part", temporal.KindFloat, func(v []temporal.Value) temporal.Value {
			m := lookup(v[0].AsString())
			return temporal.Float(m.Weights[v[1].AsInt()] * float64(v[2].AsInt()))
		}, "Model", "Keyword", "KwCount"),
	)

	// One group per impression: sum the partial contributions. The
	// rows of one impression share a timestamp, so the snapshot Sum over
	// their point lifetimes is exactly the dot product.
	perImpression := partial.GroupApply(
		[]string{"Time", "UserId", "AdId", "Clicked", "Model"},
		func(g *temporal.Plan) *temporal.Plan { return g.Sum("Part", "Dot") },
	)

	return perImpression.Project(
		temporal.Keep("Time"),
		temporal.Keep("UserId"),
		temporal.Keep("AdId"),
		temporal.Keep("Clicked"),
		temporal.Compute("Score", temporal.KindFloat, func(v []temporal.Value) temporal.Value {
			m := lookup(v[0].AsString())
			return temporal.Float(stats.Sigmoid(m.Bias + v[1].AsFloat()))
		}, "Model", "Dot"),
	)
}

// SourceModels is the scan name of the model stream in ScorePlan.
const SourceModels = "models"
