// Package bt implements the paper's end-to-end behavioral-targeting
// solution (§IV) as a set of declarative temporal queries over the
// unified schema of Figure 9 — the "20 temporal queries" of Figure 14.
// The same plans run single-node over live feeds (examples/realtime) and
// scale over offline logs through TiMR (internal/core).
//
// Pipeline phases (paper Figure 10):
//
//	BotElim        events  → clean      (Figure 11)
//	Label          clean   → labeled    (clicks + detected non-clicks)
//	TrainData      labeled + clean → train  (per-impression sparse UBPs, Figure 12)
//	FeatureSelect  labeled + train → scores (two-proportion z-test, Figure 13)
//	Reduce         train + scores  → reduced training data
//	Model          reduced → per-ad LR models (windowed UDO, §IV-B.4)
package bt

import "timr/internal/temporal"

// Params are the knobs of the BT pipeline, defaulted to the paper's
// values.
type Params struct {
	// Bot elimination (§IV-B.1): a user clicking more than T1 ads or
	// searching more than T2 keywords within Tau is a bot. The bot list
	// refreshes every BotHop ("updates the bot list every 15 mins using
	// data from a 6 hour window").
	T1, T2 int64
	BotHop temporal.Time

	// Tau is the UBP history window τ (§IV-A: "we use τ = 6 hours").
	Tau temporal.Time

	// D is the non-click detection window d: an impression not followed
	// by a click within D is a non-click (§IV-B.2, d = 5 minutes).
	D temporal.Time

	// TrainPeriod is the interval over which keyword elimination and
	// model fitting aggregate (the feature-selection window "covering the
	// time interval over which we perform keyword elimination").
	TrainPeriod temporal.Time

	// ZThreshold keeps keywords with |z| >= threshold (0 keeps every
	// keyword with sufficient support — the paper's KE-0).
	ZThreshold float64

	// ModelEpochs bounds the LR iterations inside the model UDO.
	ModelEpochs int
}

// DefaultParams mirrors the paper: T1 = T2 = 100 per 6-hour window,
// 15-minute bot-list refresh, τ = 6h, d = 5min, z at 80% confidence.
func DefaultParams() Params {
	return Params{
		T1: 100, T2: 100,
		BotHop:      15 * temporal.Minute,
		Tau:         6 * temporal.Hour,
		D:           5 * temporal.Minute,
		TrainPeriod: 84 * temporal.Hour, // half of a 7-day log
		ZThreshold:  1.28,               // 80% confidence
		ModelEpochs: 30,
	}
}

// Schemas of the pipeline's intermediate streams. Every dataset keeps a
// leading Time column so each phase can be run as its own TiMR job over
// point events (paper §III-C: "The first column in source, intermediate,
// and output data files is constrained to be Time").
var (
	// LabeledSchema: one row per impression with its outcome.
	LabeledSchema = temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
		temporal.Field{Name: "Clicked", Kind: temporal.KindInt},
	)

	// TrainSchema: the sparse training rows — one per (impression,
	// profile keyword) pair, carrying the keyword's in-window count.
	TrainSchema = temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
		temporal.Field{Name: "Clicked", Kind: temporal.KindInt},
		temporal.Field{Name: "Keyword", Kind: temporal.KindInt},
		temporal.Field{Name: "KwCount", Kind: temporal.KindInt},
	)

	// ScoreSchema: one row per retained (ad, keyword) with its z-score.
	ScoreSchema = temporal.NewSchema(
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
		temporal.Field{Name: "Keyword", Kind: temporal.KindInt},
		temporal.Field{Name: "Z", Kind: temporal.KindFloat},
	)

	// ModelSchema: serialized per-ad LR models.
	ModelSchema = temporal.NewSchema(
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
		temporal.Field{Name: "Model", Kind: temporal.KindString},
	)
)
