package bt

import (
	"sort"

	"timr/internal/stats"
	"timr/internal/temporal"
)

// Mergeable stage summaries for incremental refresh.
//
// The back half of the BT DAG — FeatureSelect, Reduce, Model — consumes
// only tumbling-window aggregates of the front stages' output, and
// tumbling windows are algebraically mergeable: the click/non-click
// counts of a window are sums over disjoint row sets, so counting a new
// day and adding it to yesterday's summary equals recounting history.
// CountSummary is that sufficient statistic: per-(window, ad) totals
// from the labeled stream (Figure 13's left half) and per-(window, ad,
// keyword) counts from the training rows (its right half). Feature
// selection replays the engine's exact arithmetic on it (stats.
// ZFromSummary is the same two-proportion z the ZScore projection
// computes), so a summary-driven refresh reproduces the engine's
// retained keyword set bit-for-bit.

// CountKey identifies one per-ad total: the tumbling training window
// (floor(Time/TrainPeriod)) and the ad.
type CountKey struct {
	Win int64
	Ad  int64
}

// KwKey identifies one per-(ad, keyword) count within a window.
type KwKey struct {
	Win int64
	Ad  int64
	Kw  int64
}

// CountSummary is the mergeable sufficient statistic of the
// FeatureSelect stage.
type CountSummary struct {
	Totals map[CountKey]stats.ClickCounts // from labeled rows (CT/NT)
	PerKw  map[KwKey]stats.ClickCounts    // from train rows (CK/NK)
}

// NewCountSummary returns an empty summary.
func NewCountSummary() *CountSummary {
	return &CountSummary{
		Totals: make(map[CountKey]stats.ClickCounts),
		PerKw:  make(map[KwKey]stats.ClickCounts),
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Window maps an event time to its tumbling training window, matching
// the engine's absolute hop alignment (windows end at multiples of the
// hop).
func Window(t temporal.Time, trainPeriod temporal.Time) int64 {
	return floorDiv(int64(t), int64(trainPeriod))
}

// AddLabeled folds labeled rows (LabeledSchema: Time, UserId, AdId,
// Clicked) into the per-ad totals.
func (s *CountSummary) AddLabeled(rows []temporal.Row, tp temporal.Time) {
	for _, r := range rows {
		k := CountKey{Win: Window(temporal.Time(r[0].AsInt()), tp), Ad: r[2].AsInt()}
		c := s.Totals[k]
		c.Add(r[3].AsInt() == 1)
		s.Totals[k] = c
	}
}

// AddTrain folds training rows (TrainSchema: Time, UserId, AdId,
// Clicked, Keyword, KwCount) into the per-keyword counts.
func (s *CountSummary) AddTrain(rows []temporal.Row, tp temporal.Time) {
	for _, r := range rows {
		k := KwKey{Win: Window(temporal.Time(r[0].AsInt()), tp), Ad: r[2].AsInt(), Kw: r[4].AsInt()}
		c := s.PerKw[k]
		c.Add(r[3].AsInt() == 1)
		s.PerKw[k] = c
	}
}

// Merge folds another summary in. Because both maps key by disjoint row
// provenance (a row lands in exactly one window), merging a day's
// summary into history is exact — identical to summarizing the
// concatenated rows.
func (s *CountSummary) Merge(o *CountSummary) {
	for k, c := range o.Totals {
		s.Totals[k] = s.Totals[k].Merge(c)
	}
	for k, c := range o.PerKw {
		s.PerKw[k] = s.PerKw[k].Merge(c)
	}
}

// SelectFeatures replays FeatureSelectPlan on the summary, returning
// the retained (window, ad, keyword) set with z-scores. The engine's
// eligibility is reproduced exactly: a Count over an empty window emits
// nothing and the temporal join drops the key, so a (window, ad[, kw])
// pair participates only when it saw at least one click AND one
// non-click; survivors then pass the support floor and |z| threshold
// inside TwoProportionZ / zScoreProjection.
func (s *CountSummary) SelectFeatures(p Params) map[KwKey]float64 {
	out := make(map[KwKey]float64)
	for k, kw := range s.PerKw {
		if kw.Clicks < 1 || kw.Non < 1 {
			continue
		}
		tot, ok := s.Totals[CountKey{Win: k.Win, Ad: k.Ad}]
		if !ok || tot.Clicks < 1 || tot.Non < 1 {
			continue
		}
		z, ok := stats.ZFromSummary(kw, tot)
		if !ok {
			continue
		}
		if z < 0 {
			if -z < p.ZThreshold {
				continue
			}
		} else if z < p.ZThreshold {
			continue
		}
		out[k] = z
	}
	return out
}

// ReduceRows filters training rows down to the reduced training data:
// rows whose (window, ad, keyword) is in the selected set — the
// summary-side equivalent of ReducePlan's join against the shifted
// score stream.
func ReduceRows(trainRows []temporal.Row, selected map[KwKey]float64, tp temporal.Time) []temporal.Row {
	var out []temporal.Row
	for _, r := range trainRows {
		k := KwKey{Win: Window(temporal.Time(r[0].AsInt()), tp), Ad: r[2].AsInt(), Kw: r[4].AsInt()}
		if _, ok := selected[k]; ok {
			out = append(out, r)
		}
	}
	return out
}

const tagCountSummary byte = 0x43 // 'C'

// sortedCountKeys returns the totals keys in (Win, Ad) order.
func (s *CountSummary) sortedCountKeys() []CountKey {
	keys := make([]CountKey, 0, len(s.Totals))
	for k := range s.Totals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Win != keys[j].Win {
			return keys[i].Win < keys[j].Win
		}
		return keys[i].Ad < keys[j].Ad
	})
	return keys
}

// sortedKwKeys returns the per-keyword keys in (Win, Ad, Kw) order.
func (s *CountSummary) sortedKwKeys() []KwKey {
	keys := make([]KwKey, 0, len(s.PerKw))
	for k := range s.PerKw {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Win != b.Win {
			return a.Win < b.Win
		}
		if a.Ad != b.Ad {
			return a.Ad < b.Ad
		}
		return a.Kw < b.Kw
	})
	return keys
}

// encode appends the summary's canonical encoding: keys sorted, so
// equal summaries produce equal bytes regardless of map history.
func (s *CountSummary) encode(w *temporal.Encoder) {
	w.Byte(tagCountSummary)
	tks := s.sortedCountKeys()
	w.Uvarint(uint64(len(tks)))
	for _, k := range tks {
		c := s.Totals[k]
		w.Varint(k.Win)
		w.Varint(k.Ad)
		w.Uvarint(uint64(c.Clicks))
		w.Uvarint(uint64(c.Non))
	}
	kks := s.sortedKwKeys()
	w.Uvarint(uint64(len(kks)))
	for _, k := range kks {
		c := s.PerKw[k]
		w.Varint(k.Win)
		w.Varint(k.Ad)
		w.Varint(k.Kw)
		w.Uvarint(uint64(c.Clicks))
		w.Uvarint(uint64(c.Non))
	}
}

// decodeCountSummary reads one summary encoding.
func decodeCountSummary(r *temporal.Decoder) (*CountSummary, error) {
	if err := r.Expect(tagCountSummary, "count summary"); err != nil {
		return nil, err
	}
	s := NewCountSummary()
	nt := r.Count("summary totals")
	for i := 0; i < nt; i++ {
		k := CountKey{Win: r.Varint(), Ad: r.Varint()}
		c := stats.ClickCounts{Clicks: int64(r.Uvarint()), Non: int64(r.Uvarint())}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if _, dup := s.Totals[k]; dup {
			return nil, r.Failf("count summary: duplicate total key %+v", k)
		}
		s.Totals[k] = c
	}
	nk := r.Count("summary per-keyword counts")
	for i := 0; i < nk; i++ {
		k := KwKey{Win: r.Varint(), Ad: r.Varint(), Kw: r.Varint()}
		c := stats.ClickCounts{Clicks: int64(r.Uvarint()), Non: int64(r.Uvarint())}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if _, dup := s.PerKw[k]; dup {
			return nil, r.Failf("count summary: duplicate per-kw key %+v", k)
		}
		s.PerKw[k] = c
	}
	return s, r.Err()
}
