package bt

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"timr/internal/core"
	"timr/internal/ml"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// Durable state of the incremental BT refresher: everything one ingest
// needs from all previous ingests. The encoding is a sequence of
// CRC-framed sections (temporal.AppendFrame — the same framing the
// checkpoint store uses), so a torn or bit-flipped persisted state
// fails section decode instead of resurrecting a half-merged summary.

// WindowModel is one per-(window, ad) LR model in the refresher's
// cache. Frozen windows — those fully below the watermark — never
// change again, so their models are trained once and reused verbatim;
// partial windows are retrained every ingest.
type WindowModel struct {
	Win    int64
	Ad     int64
	Frozen bool
	Model  *ml.Model
	// Area is the model's lift-curve area over its own window examples,
	// recorded at training time — the reference the warm-start parity
	// gate compares against.
	Area float64
}

// StageTiming is the refresher's newest observation of one stage's
// cost, feeding the optimizer's full-vs-delta chooser. Wall-clock
// measurements vary run to run, so timings are excluded from
// SummaryBytes (the canonical state digest) and only ride the
// persisted encoding.
type StageTiming struct {
	Stage string
	Rows  int64
	Ns    int64
}

// RefreshState is the complete refresher state after some number of
// ingested days.
type RefreshState struct {
	P   Params
	Cfg workload.Config // the workload that produced the log (CLI resume)

	Days      int           // days ingested
	RawRows   int64         // total raw rows ever ingested
	Watermark temporal.Time // F: rows with Time < F are final

	// TailRaw retains the raw rows with Time >= F - Lookback(P): exactly
	// the history the next delta ingest's front-stage window needs.
	TailRaw []temporal.Row

	// Finalized front-stage output (Time < F), canonically sorted.
	Labeled []temporal.Row
	Train   []temporal.Row

	Counts *CountSummary

	// Models holds frozen and partial window models, sorted (Win, Ad).
	Models []WindowModel

	Timings []StageTiming
}

// NewRefreshState returns the empty state before any ingest.
func NewRefreshState(p Params, cfg workload.Config) *RefreshState {
	return &RefreshState{P: p, Cfg: cfg, Counts: NewCountSummary()}
}

// Lookback is the raw-history horizon L the delta path must retain
// behind the watermark: bot windows compound with the UBP lookback
// (2τ + BotHop) and the non-click detector reaches d forward from rows
// up to d before the watermark (2d total).
func Lookback(p Params) temporal.Time {
	return 2*p.Tau + p.BotHop + 2*p.D
}

// Observation returns the newest recorded timing for a stage as the
// chooser's StageObs (zero-valued when never observed).
func (st *RefreshState) Observation(stage string) core.StageObs {
	for _, t := range st.Timings {
		if t.Stage == stage {
			return core.StageObs{Rows: t.Rows, Ns: t.Ns}
		}
	}
	return core.StageObs{}
}

// RecordTiming replaces the stage's observation with a newer one.
func (st *RefreshState) RecordTiming(stage string, rows, ns int64) {
	for i := range st.Timings {
		if st.Timings[i].Stage == stage {
			st.Timings[i] = StageTiming{Stage: stage, Rows: rows, Ns: ns}
			return
		}
	}
	st.Timings = append(st.Timings, StageTiming{Stage: stage, Rows: rows, Ns: ns})
}

const (
	tagRefreshHeader byte = 0x52 // 'R'
	tagRowSection    byte = 0x72 // 'r'
	tagModelSection  byte = 0x6D // 'm'
	tagTimingSection byte = 0x74 // 't'
	refreshVersion        = 1
)

func putF64(w *temporal.Encoder, f float64) { w.Uvarint(math.Float64bits(f)) }
func getF64(r *temporal.Decoder) float64    { return math.Float64frombits(r.Uvarint()) }

func encodeRowSection(w *temporal.Encoder, rows []temporal.Row) {
	w.Byte(tagRowSection)
	w.Uvarint(uint64(len(rows)))
	for _, r := range rows {
		w.Row(r)
	}
}

func decodeRowSection(r *temporal.Decoder, what string) ([]temporal.Row, error) {
	if err := r.Expect(tagRowSection, what); err != nil {
		return nil, err
	}
	n := r.Count(what)
	rows := make([]temporal.Row, 0, n)
	for i := 0; i < n; i++ {
		row := r.Row()
		if r.Err() != nil {
			return nil, r.Err()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// appendSection encodes one state section and appends it as a CRC frame.
func appendSection(dst []byte, fn func(w *temporal.Encoder)) []byte {
	var w temporal.Encoder
	fn(&w)
	return temporal.AppendFrame(dst, w.Bytes())
}

func (st *RefreshState) encode(withTimings bool) ([]byte, error) {
	pj, err := json.Marshal(st.P)
	if err != nil {
		return nil, fmt.Errorf("bt: encode refresh params: %w", err)
	}
	cj, err := json.Marshal(st.Cfg)
	if err != nil {
		return nil, fmt.Errorf("bt: encode refresh workload config: %w", err)
	}
	var out []byte
	out = appendSection(out, func(w *temporal.Encoder) {
		w.Byte(tagRefreshHeader)
		w.Uvarint(refreshVersion)
		w.Uvarint(uint64(st.Days))
		w.Uvarint(uint64(st.RawRows))
		w.Varint(int64(st.Watermark))
		w.BytesField(pj)
		w.BytesField(cj)
	})
	out = appendSection(out, func(w *temporal.Encoder) { encodeRowSection(w, st.TailRaw) })
	out = appendSection(out, func(w *temporal.Encoder) { encodeRowSection(w, st.Labeled) })
	out = appendSection(out, func(w *temporal.Encoder) { encodeRowSection(w, st.Train) })
	out = appendSection(out, func(w *temporal.Encoder) { st.Counts.encode(w) })
	out = appendSection(out, func(w *temporal.Encoder) {
		w.Byte(tagModelSection)
		w.Uvarint(uint64(len(st.Models)))
		for _, m := range st.Models {
			w.Varint(m.Win)
			w.Varint(m.Ad)
			w.Bool(m.Frozen)
			putF64(w, m.Area)
			m.Model.Snapshot(w)
		}
	})
	if withTimings {
		out = appendSection(out, func(w *temporal.Encoder) {
			w.Byte(tagTimingSection)
			w.Uvarint(uint64(len(st.Timings)))
			for _, t := range st.Timings {
				w.String(t.Stage)
				w.Uvarint(uint64(t.Rows))
				w.Varint(t.Ns)
			}
		})
	}
	return out, nil
}

// EncodeState serializes the full state (timings included) for the
// durable store.
func EncodeState(st *RefreshState) ([]byte, error) {
	return st.encode(true)
}

// SummaryBytes is the canonical digest of the refresher's semantic
// state: everything EncodeState carries except the wall-clock stage
// timings. Two refresh paths are equivalent iff their SummaryBytes are
// byte-identical — the full-vs-delta drill's comparison key.
func (st *RefreshState) SummaryBytes() ([]byte, error) {
	return st.encode(false)
}

// takeSection pops one CRC frame off data and returns a decoder over it.
func takeSection(data []byte, what string) (*temporal.Decoder, []byte, error) {
	payload, rest, err := temporal.DecodeFrame(data)
	if err != nil {
		return nil, nil, fmt.Errorf("bt: refresh state %s section: %w", what, err)
	}
	return temporal.NewDecoder(payload), rest, nil
}

func sectionDone(r *temporal.Decoder, what string) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("bt: refresh state %s section: %w", what, err)
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("bt: refresh state %s section: %w", what, err)
	}
	return nil
}

// DecodeState parses a persisted refresh state. The timings section is
// optional (SummaryBytes output omits it), trailing bytes are an error.
func DecodeState(data []byte) (*RefreshState, error) {
	st := &RefreshState{}

	r, rest, err := takeSection(data, "header")
	if err != nil {
		return nil, err
	}
	if err := r.Expect(tagRefreshHeader, "refresh state header"); err != nil {
		return nil, err
	}
	if v := r.Uvarint(); r.Err() == nil && v != refreshVersion {
		return nil, fmt.Errorf("bt: refresh state version %d (want %d)", v, refreshVersion)
	}
	st.Days = int(r.Uvarint())
	st.RawRows = int64(r.Uvarint())
	st.Watermark = temporal.Time(r.Varint())
	pj := append([]byte(nil), r.BytesField()...)
	cj := append([]byte(nil), r.BytesField()...)
	if err := sectionDone(r, "header"); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(pj, &st.P); err != nil {
		return nil, fmt.Errorf("bt: refresh state params: %w", err)
	}
	if err := json.Unmarshal(cj, &st.Cfg); err != nil {
		return nil, fmt.Errorf("bt: refresh state workload config: %w", err)
	}

	for _, sec := range []struct {
		what string
		dst  *[]temporal.Row
	}{{"tail-raw", &st.TailRaw}, {"labeled", &st.Labeled}, {"train", &st.Train}} {
		r, rest, err = takeSection(rest, sec.what)
		if err != nil {
			return nil, err
		}
		rows, err := decodeRowSection(r, sec.what+" rows")
		if err != nil {
			return nil, fmt.Errorf("bt: refresh state %s section: %w", sec.what, err)
		}
		if err := sectionDone(r, sec.what); err != nil {
			return nil, err
		}
		*sec.dst = rows
	}

	r, rest, err = takeSection(rest, "counts")
	if err != nil {
		return nil, err
	}
	if st.Counts, err = decodeCountSummary(r); err != nil {
		return nil, fmt.Errorf("bt: refresh state counts section: %w", err)
	}
	if err := sectionDone(r, "counts"); err != nil {
		return nil, err
	}

	r, rest, err = takeSection(rest, "models")
	if err != nil {
		return nil, err
	}
	if err := r.Expect(tagModelSection, "refresh model section"); err != nil {
		return nil, err
	}
	nm := r.Count("window models")
	for i := 0; i < nm; i++ {
		wm := WindowModel{Win: r.Varint(), Ad: r.Varint(), Frozen: r.Bool(), Area: getF64(r)}
		if r.Err() != nil {
			return nil, fmt.Errorf("bt: refresh state models section: %w", r.Err())
		}
		m, err := ml.RestoreModel(r)
		if err != nil {
			return nil, fmt.Errorf("bt: refresh state model %d: %w", i, err)
		}
		wm.Model = m
		st.Models = append(st.Models, wm)
	}
	if err := sectionDone(r, "models"); err != nil {
		return nil, err
	}
	if !sort.SliceIsSorted(st.Models, func(i, j int) bool {
		if st.Models[i].Win != st.Models[j].Win {
			return st.Models[i].Win < st.Models[j].Win
		}
		return st.Models[i].Ad < st.Models[j].Ad
	}) {
		return nil, fmt.Errorf("bt: refresh state models section: entries not sorted")
	}

	if len(rest) > 0 {
		r, rest, err = takeSection(rest, "timings")
		if err != nil {
			return nil, err
		}
		if err := r.Expect(tagTimingSection, "refresh timing section"); err != nil {
			return nil, err
		}
		ntm := r.Count("stage timings")
		for i := 0; i < ntm; i++ {
			t := StageTiming{Stage: r.String(), Rows: int64(r.Uvarint()), Ns: r.Varint()}
			if r.Err() != nil {
				return nil, fmt.Errorf("bt: refresh state timings section: %w", r.Err())
			}
			st.Timings = append(st.Timings, t)
		}
		if err := sectionDone(r, "timings"); err != nil {
			return nil, err
		}
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("bt: refresh state: %d trailing bytes", len(rest))
	}
	if st.Counts == nil {
		st.Counts = NewCountSummary()
	}
	return st, nil
}
