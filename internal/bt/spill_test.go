package bt

import (
	"testing"

	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// TestPipelineLowBudgetMatchesResident is the out-of-core gate run by
// `make check` under -race: the full BT pipeline (BotElim through Score)
// with the memory budget squeezed to a few KB — and with spilling forced
// outright — must produce every phase output bit-identical to the
// all-resident run.
func TestPipelineLowBudgetMatchesResident(t *testing.T) {
	d := workload.Generate(workload.Config{
		Users: 150, Keywords: 300, AdClasses: 3, Days: 1, Seed: 11,
		BotFraction: 0.02,
	})
	p := DefaultParams()
	p.T1, p.T2 = 30, 60
	p.TrainPeriod = 12 * temporal.Hour

	run := func(budget int64) (map[string][]temporal.Event, int) {
		cl := mapreduce.NewCluster(mapreduce.Config{
			Machines: 4, MemoryBudget: budget, SpillDir: t.TempDir(),
		})
		tm := core.New(cl, core.DefaultConfig())
		cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), d.Rows))
		pl := NewPipeline(p, tm)
		if err := pl.Run("events"); err != nil {
			t.Fatal(err)
		}
		// Read every output before Close: spilled result segments live in
		// the cluster's spill dir.
		out := make(map[string][]temporal.Event, len(pl.Phases))
		spilled := 0
		for _, ph := range pl.Phases {
			evs, err := pl.Events(ph.Output)
			if err != nil {
				t.Fatalf("%s: %v", ph.Name, err)
			}
			out[ph.Output] = evs
			spilled += ph.SpillSegments
		}
		if err := cl.Close(); err != nil {
			t.Fatal(err)
		}
		return out, spilled
	}

	want, residentSpills := run(0)
	if residentSpills != 0 {
		t.Fatalf("unlimited budget spilled %d segments", residentSpills)
	}
	for _, budget := range []int64{mapreduce.SpillAll, 4 << 10} {
		got, spilled := run(budget)
		if spilled == 0 {
			t.Errorf("budget=%d: pipeline recorded no spill activity", budget)
		}
		for ds, evs := range want {
			if !temporal.EventsEqual(got[ds], evs) {
				t.Errorf("budget=%d: %s diverges from resident run (%d vs %d events)",
					budget, ds, len(got[ds]), len(evs))
			}
		}
	}
}
