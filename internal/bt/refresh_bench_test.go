package bt

import (
	"testing"

	"timr/internal/core"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// The refresh benchmark pair prices day 7 of the sliding window both
// ways: Refresh_Delta applies the day as a delta on top of six days of
// accumulated state (front stages over the lookback tail only, counts
// merged, frozen models reused), Refresh_Full recomputes the whole
// seven-day history from scratch — the work the full path performs at
// the same point. The BENCH trajectory tracks the ratio; the incgate
// tests separately prove both land on byte-identical state.

// benchSetup ingests the first six days on the delta path and returns
// the encoded state plus the seventh day's rows.
func benchSetup(b *testing.B) (Params, workload.Config, []byte, *workload.Dataset) {
	b.Helper()
	p, cfg := refreshWorkload()
	data := workload.Generate(cfg)
	r := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta})
	for day := 0; day < 6; day++ {
		if err := r.IngestDay(data.DayRows(day), temporal.Time(day+1)*temporal.Day); err != nil {
			b.Fatal(err)
		}
	}
	enc, err := EncodeState(r.State)
	if err != nil {
		b.Fatal(err)
	}
	return p, cfg, enc, data
}

func BenchmarkRefresh_Delta(b *testing.B) {
	p, cfg, enc, data := benchSetup(b)
	day7 := data.DayRows(6)
	var trainRows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := DecodeState(enc)
		if err != nil {
			b.Fatal(err)
		}
		r := &Refresher{State: st, Opts: RefreshOptions{Mode: ModeDelta, Opt: core.NewOptimizer(core.DefaultStats())}}
		b.StartTimer()
		if err := r.IngestDay(day7, 7*temporal.Day); err != nil {
			b.Fatal(err)
		}
		trainRows = len(r.State.Train)
	}
	_ = p
	_ = cfg
	b.ReportMetric(float64(trainRows), "train_rows")
}

func BenchmarkRefresh_Full(b *testing.B) {
	p, cfg, _, data := benchSetup(b)
	var trainRows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A delta ingest of the full history onto empty state runs the
		// exact work of the full path: front stages over every raw row,
		// counts from zero, every window model trained from scratch.
		r := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta})
		if err := r.IngestDay(data.Rows, 7*temporal.Day); err != nil {
			b.Fatal(err)
		}
		trainRows = len(r.State.Train)
	}
	b.ReportMetric(float64(trainRows), "train_rows")
}
