package bt

import (
	"timr/internal/stats"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// Scan-source names used by the pipeline phases. Each phase's output
// dataset is the next phase's source.
const (
	SourceEvents  = "events"
	SourceClean   = "clean"
	SourceLabeled = "labeled"
	SourceTrain   = "train"
	SourceScores  = "scores"
	SourceReduced = "reduced"
)

func userKey() temporal.PartitionBy {
	return temporal.PartitionBy{Cols: []string{"UserId"}}
}

func adKey() temporal.PartitionBy {
	return temporal.PartitionBy{Cols: []string{"AdId"}}
}

func adKwKey() temporal.PartitionBy {
	return temporal.PartitionBy{Cols: []string{"AdId", "Keyword"}}
}

func maybeExchange(p *temporal.Plan, annotate bool, key temporal.PartitionBy) *temporal.Plan {
	if annotate {
		return p.Exchange(key)
	}
	return p
}

// BotElimPlan is the paper's Figure 11: flag any user who clicks more
// than T1 ads or searches more than T2 keywords within τ (refreshed every
// BotHop) and AntiSemiJoin the composite stream against the flagged
// intervals. annotate adds the paper's {UserId} partitioning.
func BotElimPlan(p Params, annotate bool) *temporal.Plan {
	src := temporal.Scan(SourceEvents, workload.UnifiedSchema())
	in := maybeExchange(src, annotate, userKey())
	bots := in.GroupApply([]string{"UserId"}, func(g *temporal.Plan) *temporal.Plan {
		clicks := g.Where(temporal.ColEqInt("StreamId", workload.StreamClick)).
			WithHop(p.Tau, p.BotHop).
			Count("Cnt").
			Where(temporal.ColGtInt("Cnt", p.T1))
		searches := g.Where(temporal.ColEqInt("StreamId", workload.StreamKeyword)).
			WithHop(p.Tau, p.BotHop).
			Count("Cnt").
			Where(temporal.ColGtInt("Cnt", p.T2))
		return clicks.Union(searches)
	})
	return in.AntiSemiJoin(bots, []string{"UserId"}, []string{"UserId"})
}

// LabelPlan derives the labeled impression stream S1 of Figure 12: ad
// clicks (Clicked=1) unioned with non-clicks — impressions that are NOT
// followed by a click by the same user on the same ad within d, detected
// by AntiSemiJoining impressions against click lifetimes moved d into the
// past.
func LabelPlan(p Params, annotate bool) *temporal.Plan {
	src := temporal.Scan(SourceClean, workload.UnifiedSchema())
	in := maybeExchange(src, annotate, userKey())

	toLabeled := func(s *temporal.Plan, clicked int64) *temporal.Plan {
		return s.Project(
			temporal.Keep("Time"),
			temporal.Keep("UserId"),
			temporal.Rename("KwAdId", "AdId"),
			temporal.ConstInt("Clicked", clicked),
		)
	}
	impressions := in.Where(temporal.ColEqInt("StreamId", workload.StreamImpression))
	clicks := in.Where(temporal.ColEqInt("StreamId", workload.StreamClick))
	// A click at time c covers [c-d, c): exactly the impressions it
	// "answers" ("AlterLifetime LE = OldLE - 5", Figure 12).
	clickCover := clicks.WithWindow(p.D).ShiftLifetime(-p.D)
	nonClicks := impressions.AntiSemiJoin(clickCover,
		[]string{"UserId", "KwAdId"}, []string{"UserId", "KwAdId"})
	return toLabeled(nonClicks, 0).Union(toLabeled(clicks, 1))
}

// UBPPlan computes sparse user behavior profiles (Definition 1): for each
// (user, keyword), the count of searches/pageviews within the last τ,
// "refreshed each time there is user activity".
func UBPPlan(p Params, clean *temporal.Plan) *temporal.Plan {
	return clean.Where(temporal.ColEqInt("StreamId", workload.StreamKeyword)).
		GroupApply([]string{"UserId", "KwAdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(p.Tau).Count("KwCount")
		}).
		Project(
			temporal.Keep("UserId"),
			temporal.Rename("KwAdId", "Keyword"),
			temporal.Keep("KwCount"),
		)
}

// TrainDataPlan is the heart of Figure 12: whenever there is a click or
// non-click for a user, join it with that user's UBP at that instant,
// emitting one sparse training row per profile keyword. The paper's
// Example 3 applies: the UBP GroupApply keys {UserId, Keyword} but the
// plan is annotated {UserId} only, so everything is one fragment.
func TrainDataPlan(p Params, annotate bool) *temporal.Plan {
	labeled := maybeExchange(temporal.Scan(SourceLabeled, LabeledSchema), annotate, userKey())
	clean := maybeExchange(temporal.Scan(SourceClean, workload.UnifiedSchema()), annotate, userKey())
	ubp := UBPPlan(p, clean)
	return labeled.Join(ubp, []string{"UserId"}, []string{"UserId"}, nil).
		Project(
			temporal.Keep("Time"),
			temporal.Keep("UserId"),
			temporal.Keep("AdId"),
			temporal.Keep("Clicked"),
			temporal.Keep("Keyword"),
			temporal.Keep("KwCount"),
		)
}

// NaiveTrainDataPlan is the strawman annotation of Example 3: UBP
// generation partitioned by {UserId, Keyword}, repartitioned to {UserId}
// for the join. Used by the fragment-optimization experiment (§V-B).
func NaiveTrainDataPlan(p Params) *temporal.Plan {
	labeled := temporal.Scan(SourceLabeled, LabeledSchema).Exchange(userKey())
	clean := temporal.Scan(SourceClean, workload.UnifiedSchema()).
		Exchange(temporal.PartitionBy{Cols: []string{"UserId", "KwAdId"}})
	ubp := UBPPlan(p, clean).Exchange(userKey())
	return labeled.Join(ubp, []string{"UserId"}, []string{"UserId"}, nil).
		Project(
			temporal.Keep("Time"),
			temporal.Keep("UserId"),
			temporal.Keep("AdId"),
			temporal.Keep("Clicked"),
			temporal.Keep("Keyword"),
			temporal.Keep("KwCount"),
		)
}

// clickNonClickCounts builds the windowed click/non-click Count pair used
// by both halves of Figure 13.
func clickNonClickCounts(p Params, g *temporal.Plan, clickName, nonClickName string) *temporal.Plan {
	clicks := g.Where(temporal.ColEqInt("Clicked", 1)).
		WithHop(p.TrainPeriod, p.TrainPeriod).
		Count(clickName)
	nonClicks := g.Where(temporal.ColEqInt("Clicked", 0)).
		WithHop(p.TrainPeriod, p.TrainPeriod).
		Count(nonClickName)
	return clicks.Join(nonClicks, nil, nil, nil)
}

// TotalCountPlan is Figure 13's left half: per-ad total clicks (CT) and
// non-clicks (NT) over the training period, partitionable by {AdId}.
func TotalCountPlan(p Params, annotate bool) *temporal.Plan {
	labeled := maybeExchange(temporal.Scan(SourceLabeled, LabeledSchema), annotate, adKey())
	return labeled.GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
		return clickNonClickCounts(p, g, "CT", "NT")
	})
}

// PerKeywordCountPlan is Figure 13's right half: per-(ad, keyword) clicks
// (CK) and non-clicks (NK), partitionable by {AdId, Keyword}.
func PerKeywordCountPlan(p Params, annotate bool) *temporal.Plan {
	train := maybeExchange(temporal.Scan(SourceTrain, TrainSchema), annotate, adKwKey())
	return train.GroupApply([]string{"AdId", "Keyword"}, func(g *temporal.Plan) *temporal.Plan {
		return clickNonClickCounts(p, g, "CK", "NK")
	})
}

// zScoreProjection computes the unpooled two-proportion z-score (§IV-B.3)
// from the joined count columns; Sup is false when the support floor (5
// observations each way) is not met.
func zScoreProjection() []temporal.Projection {
	return []temporal.Projection{
		temporal.Keep("AdId"),
		temporal.Keep("Keyword"),
		temporal.Compute("Z", temporal.KindFloat, func(v []temporal.Value) temporal.Value {
			z, _ := zFromCounts(v)
			return temporal.Float(z)
		}, "CK", "NK", "CT", "NT"),
		temporal.Compute("Sup", temporal.KindBool, func(v []temporal.Value) temporal.Value {
			_, ok := zFromCounts(v)
			return temporal.Bool(ok)
		}, "CK", "NK", "CT", "NT"),
	}
}

// zFromCounts derives the test inputs: clicks/impressions with the
// keyword (CK, CK+NK) and without it (CT−CK, (CT+NT)−(CK+NK)).
func zFromCounts(v []temporal.Value) (float64, bool) {
	ck, nk := v[0].AsInt(), v[1].AsInt()
	ct, nt := v[2].AsInt(), v[3].AsInt()
	return stats.TwoProportionZ(ck, ck+nk, ct-ck, (ct+nt)-(ck+nk))
}

// FeatureSelectPlan is the full Figure 13 (CalcScore): join per-keyword
// and total counts, compute z, and keep supported keywords with
// |z| >= ZThreshold. A threshold of 0 is the paper's KE-0 (support only).
func FeatureSelectPlan(p Params, annotate bool) *temporal.Plan {
	perKw := PerKeywordCountPlan(p, annotate)
	if annotate {
		// Repartition the per-keyword counts from {AdId,Keyword} to
		// {AdId} for the join with the totals.
		perKw = perKw.Exchange(adKey())
	}
	totals := TotalCountPlan(p, annotate)
	scored := perKw.Join(totals, []string{"AdId"}, []string{"AdId"}, nil).
		Project(zScoreProjection()...)
	return scored.
		Where(temporal.And(
			temporal.FnPred("Sup", func(v []temporal.Value) bool { return v[0].AsBool() }, "Sup"),
			temporal.AbsGeFloat("Z", p.ZThreshold),
		)).
		Project(temporal.Keep("AdId"), temporal.Keep("Keyword"), temporal.Keep("Z"))
}

// ReducePlan joins the training data with the retained keyword stream to
// produce reduced training data (end of §IV-B.3). Scores are learned over
// a period and joined back onto it by shifting their validity to the
// period they summarize.
func ReducePlan(p Params, annotate bool) *temporal.Plan {
	train := maybeExchange(temporal.Scan(SourceTrain, TrainSchema), annotate, adKwKey())
	scores := maybeExchange(temporal.Scan(SourceScores, ScoreSchema), annotate, adKwKey()).
		ShiftLifetime(-p.TrainPeriod)
	return train.Join(scores, []string{"AdId", "Keyword"}, []string{"AdId", "Keyword"}, nil).
		Project(
			temporal.Keep("Time"),
			temporal.Keep("UserId"),
			temporal.Keep("AdId"),
			temporal.Keep("Clicked"),
			temporal.Keep("Keyword"),
			temporal.Keep("KwCount"),
		)
}

// ModelPlan fits one logistic-regression model per ad over hopping
// windows of the reduced training data, using a windowed UDO (§IV-B.4:
// "the hop size determines the frequency of performing LR, while window
// size determines the amount of training data"). Models are emitted as
// serialized weight vectors valid for one hop.
func ModelPlan(p Params, annotate bool) *temporal.Plan {
	reduced := maybeExchange(temporal.Scan(SourceReduced, TrainSchema), annotate, adKey())
	return reduced.GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
		return g.Apply(temporal.UDOSpec{
			Name:   "LogisticRegression",
			Window: p.TrainPeriod,
			Hop:    p.TrainPeriod,
			Out:    temporal.NewSchema(temporal.Field{Name: "Model", Kind: temporal.KindString}),
			Fn:     modelUDO(p),
		})
	})
}

// QueryInventory names the pipeline's temporal sub-queries — the unit the
// paper counts in Figure 14 ("end-to-end BT using TiMR uses 20
// easy-to-write temporal queries").
func QueryInventory() []string {
	return []string{
		"BotElim.ClickCount", "BotElim.ClickThreshold",
		"BotElim.SearchCount", "BotElim.SearchThreshold",
		"BotElim.BotUnion", "BotElim.AntiSemiJoin",
		"Label.ClickCover", "Label.NonClickASJ", "Label.Labeled",
		"TrainData.UBP", "TrainData.Join",
		"FeatureSelect.TotalClickCount", "FeatureSelect.TotalNonClickCount",
		"FeatureSelect.PerKwClickCount", "FeatureSelect.PerKwNonClickCount",
		"FeatureSelect.CountJoin", "FeatureSelect.ZScore", "FeatureSelect.Threshold",
		"Reduce.Join",
		"Model.LRWindow",
	}
}
