package bt

// Fusegate for the end-to-end BT pipeline: every phase, compiled fused
// and interpreted over the same feed, must produce bit-identical raw
// (uncoalesced, unsorted-by-coalescer) results. Phases chain like
// RunSingleNode so each differential runs over the real intermediate
// streams — bot-eliminated logs, labeled impressions, reduced training
// data — not synthetic inputs.

import (
	"testing"

	"timr/internal/temporal"
	"timr/internal/workload"
)

// runPhaseBoth runs one phase's plan on a fused and an interpreted
// engine over the same source feed, requires bit-identical raw results,
// and returns the coalesced fused output for chaining.
func runPhaseBoth(t *testing.T, name string, plan func() *temporal.Plan, inputs map[string][]temporal.Event) []temporal.Event {
	t.Helper()
	var all []temporal.SourceEvent
	for src, evs := range inputs {
		for _, ev := range evs {
			all = append(all, temporal.SourceEvent{Source: src, Event: ev})
		}
	}
	run := func(opts ...temporal.Option) *temporal.Engine {
		eng, err := temporal.NewEngine(plan(), opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Each engine gets its own copy: FeedSorted may sort in place,
		// and both engines must see the identical initial order.
		eng.FeedSorted(append([]temporal.SourceEvent(nil), all...))
		eng.Flush()
		return eng
	}
	fe, ie := run(), run(temporal.WithInterpreted())
	if !temporal.EventsEqual(fe.RawResults(), ie.RawResults()) {
		t.Fatalf("%s: fused %d raw events != interpreted %d", name, len(fe.RawResults()), len(ie.RawResults()))
	}
	return fe.Results()
}

func TestFusedBTPipelineMatchesInterpreted(t *testing.T) {
	d := workload.Generate(workload.Config{
		Users: 150, Keywords: 300, AdClasses: 3, Days: 1, Seed: 11,
		BotFraction: 0.02,
	})
	p := DefaultParams()
	p.T1, p.T2 = 30, 60
	p.TrainPeriod = 12 * temporal.Hour
	events := d.Events()

	clean := runPhaseBoth(t, "BotElim", func() *temporal.Plan { return BotElimPlan(p, false) },
		map[string][]temporal.Event{SourceEvents: events})
	labeled := runPhaseBoth(t, "Label", func() *temporal.Plan { return LabelPlan(p, false) },
		map[string][]temporal.Event{SourceClean: clean})
	train := runPhaseBoth(t, "TrainData", func() *temporal.Plan { return TrainDataPlan(p, false) },
		map[string][]temporal.Event{SourceLabeled: labeled, SourceClean: clean})
	scores := runPhaseBoth(t, "FeatureSelect", func() *temporal.Plan { return FeatureSelectPlan(p, false) },
		map[string][]temporal.Event{SourceLabeled: labeled, SourceTrain: train})
	reduced := runPhaseBoth(t, "Reduce", func() *temporal.Plan { return ReducePlan(p, false) },
		map[string][]temporal.Event{SourceTrain: train, SourceScores: scores})
	models := runPhaseBoth(t, "Model", func() *temporal.Plan { return ModelPlan(p, false) },
		map[string][]temporal.Event{SourceReduced: reduced})
	preds := runPhaseBoth(t, "Score", func() *temporal.Plan { return ScorePlan(p, false) },
		map[string][]temporal.Event{SourceReduced: reduced, SourceModels: models})

	// The differential is only meaningful if the chain stayed live all
	// the way down.
	for _, phase := range []struct {
		name string
		evs  []temporal.Event
	}{{"clean", clean}, {"labeled", labeled}, {"train", train}, {"scores", scores},
		{"reduced", reduced}, {"models", models}, {"predictions", preds}} {
		if len(phase.evs) == 0 {
			t.Errorf("%s output empty; pipeline differential is vacuous", phase.name)
		}
	}
}
