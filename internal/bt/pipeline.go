package bt

import (
	"fmt"
	"time"

	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/temporal"
)

// Dataset names produced by the pipeline in the cluster FS.
const (
	DSClean       = "bt.clean"
	DSLabeled     = "bt.labeled"
	DSTrain       = "bt.train"
	DSScores      = "bt.scores"
	DSReduced     = "bt.reduced"
	DSModels      = "bt.models"
	DSPredictions = "bt.predictions"
)

// StageSpec is one node of the BT pipeline DAG: a named temporal query
// reading one or more upstream datasets and producing one. The same
// specs drive the TiMR batch pipeline (Run), the single-node reference
// (RunSingleNode), and the incremental refresher (internal/bt/refresh),
// which recomputes the FrontStages prefix over a sliding window and
// maintains the back stages from mergeable summaries instead.
type StageSpec struct {
	Name   string
	Output string

	// Inputs maps each of the stage plan's scan sources to the dataset
	// holding it. The raw-events source maps to DSEvents, bound to the
	// caller-provided dataset at run time.
	Inputs map[string]string

	// Plan builds the stage's temporal query; annotate adds the paper's
	// partitioning annotations for cluster execution.
	Plan func(p Params, annotate bool) *temporal.Plan
}

// DSEvents is the sentinel input dataset of the DAG's root stage,
// rebound to the concrete events dataset by each runner.
const DSEvents = "bt.events"

// Stages returns the pipeline DAG (paper Figure 10) in topological
// order. naive switches TrainData to the strawman {UserId, Keyword}
// annotation of Example 3 (used by the fragment-optimization
// experiment).
func Stages(naive bool) []StageSpec {
	trainPlan := TrainDataPlan
	if naive {
		trainPlan = func(p Params, annotate bool) *temporal.Plan { return NaiveTrainDataPlan(p) }
	}
	return []StageSpec{
		{Name: "BotElim", Output: DSClean,
			Inputs: map[string]string{SourceEvents: DSEvents}, Plan: BotElimPlan},
		{Name: "Label", Output: DSLabeled,
			Inputs: map[string]string{SourceClean: DSClean}, Plan: LabelPlan},
		{Name: "TrainData", Output: DSTrain,
			Inputs: map[string]string{SourceLabeled: DSLabeled, SourceClean: DSClean}, Plan: trainPlan},
		{Name: "FeatureSelect", Output: DSScores,
			Inputs: map[string]string{SourceLabeled: DSLabeled, SourceTrain: DSTrain}, Plan: FeatureSelectPlan},
		{Name: "Reduce", Output: DSReduced,
			Inputs: map[string]string{SourceTrain: DSTrain, SourceScores: DSScores}, Plan: ReducePlan},
		{Name: "Model", Output: DSModels,
			Inputs: map[string]string{SourceReduced: DSReduced}, Plan: ModelPlan},
		// Scoring closes the M3 loop: each period's impressions are
		// scored by the model learned from the previous period (a row at
		// time t joins the model valid at t).
		{Name: "Score", Output: DSPredictions,
			Inputs: map[string]string{SourceReduced: DSReduced, SourceModels: DSModels}, Plan: ScorePlan},
	}
}

// FrontStages is the DAG prefix computed directly from raw events —
// BotElim, Label, TrainData. These are the stages whose operators reach
// backward (bot windows, UBPs) and forward (non-click detection) in
// time, so the incremental refresher recomputes them over a bounded
// sliding window; every later stage is maintained from mergeable
// summaries of their finalized output instead.
func FrontStages(naive bool) []StageSpec {
	return Stages(naive)[:3]
}

// PhaseResult records one stage's execution.
type PhaseResult struct {
	Name     string
	Output   string
	Rows     int
	Stat     *mapreduce.JobStat
	Duration time.Duration

	// Out-of-core activity summed over the phase's stages: how many
	// segments left memory and how much codec-encoded data they carried.
	SpillSegments int
	SpillBytes    int64
}

// Pipeline runs the end-to-end BT solution (paper Figure 10) as a chain
// of TiMR jobs, one per DAG stage, each a handful of declarative
// temporal queries.
type Pipeline struct {
	P Params
	T *core.TiMR
	// Naive switches TrainData to the strawman {UserId,Keyword} plan of
	// Example 3 (used by the fragment-optimization experiment).
	Naive bool

	Phases []PhaseResult
}

// NewPipeline builds a pipeline over a TiMR instance.
func NewPipeline(p Params, t *core.TiMR) *Pipeline {
	return &Pipeline{P: p, T: t}
}

// Run executes every DAG stage over the events dataset already in the FS.
func (pl *Pipeline) Run(eventsDataset string) error {
	pl.Phases = pl.Phases[:0]
	for _, st := range Stages(pl.Naive) {
		sources := make(map[string]string, len(st.Inputs))
		for src, ds := range st.Inputs {
			if ds == DSEvents {
				ds = eventsDataset
			}
			sources[src] = ds
		}
		start := time.Now()
		stat, err := pl.T.Run(st.Plan(pl.P, true), sources, st.Output)
		if err != nil {
			return fmt.Errorf("bt: phase %s: %w", st.Name, err)
		}
		ds, err := pl.T.Cluster.FS.Read(st.Output)
		if err != nil {
			return fmt.Errorf("bt: phase %s output: %w", st.Name, err)
		}
		res := PhaseResult{
			Name: st.Name, Output: st.Output, Rows: ds.Rows(),
			Stat: stat, Duration: time.Since(start),
		}
		for _, s := range stat.Stages {
			res.SpillSegments += s.SpillSegments
			res.SpillBytes += s.SpillBytes
		}
		pl.Phases = append(pl.Phases, res)
	}
	return nil
}

// Events reads a phase output as coalesced events.
func (pl *Pipeline) Events(dataset string) ([]temporal.Event, error) {
	return pl.T.ResultEvents(dataset)
}

// RunStagesSingleNode executes a slice of DAG stages on one embedded
// engine, reading and writing the datasets map (the raw-events input is
// datasets[DSEvents]). Outputs are added in place, so callers can run a
// prefix, inspect it, and continue.
func RunStagesSingleNode(p Params, stages []StageSpec, datasets map[string][]temporal.Event) error {
	for _, st := range stages {
		inputs := make(map[string][]temporal.Event, len(st.Inputs))
		for src, ds := range st.Inputs {
			inputs[src] = datasets[ds]
		}
		evs, err := temporal.RunPlan(st.Plan(p, false), inputs)
		if err != nil {
			return fmt.Errorf("bt: single-node %s: %w", st.Name, err)
		}
		datasets[st.Output] = evs
	}
	return nil
}

// RunSingleNode executes the whole DAG on one embedded engine, feeding
// each stage's output events to the next — the configuration a real-time
// deployment would use, and the reference the TiMR tests compare against.
// It returns the coalesced output events of every stage keyed by dataset
// name.
func RunSingleNode(p Params, events []temporal.Event) (map[string][]temporal.Event, error) {
	out := map[string][]temporal.Event{DSEvents: events}
	if err := RunStagesSingleNode(p, Stages(false), out); err != nil {
		return nil, err
	}
	delete(out, DSEvents)
	return out, nil
}
