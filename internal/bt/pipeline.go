package bt

import (
	"fmt"
	"time"

	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/temporal"
)

// Dataset names produced by the pipeline in the cluster FS.
const (
	DSClean       = "bt.clean"
	DSLabeled     = "bt.labeled"
	DSTrain       = "bt.train"
	DSScores      = "bt.scores"
	DSReduced     = "bt.reduced"
	DSModels      = "bt.models"
	DSPredictions = "bt.predictions"
)

// PhaseResult records one phase's execution.
type PhaseResult struct {
	Name     string
	Output   string
	Rows     int
	Stat     *mapreduce.JobStat
	Duration time.Duration

	// Out-of-core activity summed over the phase's stages: how many
	// segments left memory and how much codec-encoded data they carried.
	SpillSegments int
	SpillBytes    int64
}

// Pipeline runs the end-to-end BT solution (paper Figure 10) as a chain
// of TiMR jobs, one per phase, each a handful of declarative temporal
// queries.
type Pipeline struct {
	P Params
	T *core.TiMR
	// Naive switches TrainData to the strawman {UserId,Keyword} plan of
	// Example 3 (used by the fragment-optimization experiment).
	Naive bool

	Phases []PhaseResult
}

// NewPipeline builds a pipeline over a TiMR instance.
func NewPipeline(p Params, t *core.TiMR) *Pipeline {
	return &Pipeline{P: p, T: t}
}

// Run executes every phase over the events dataset already in the FS.
func (pl *Pipeline) Run(eventsDataset string) error {
	type phase struct {
		name    string
		plan    *temporal.Plan
		sources map[string]string
		output  string
	}
	trainPlan := TrainDataPlan(pl.P, true)
	if pl.Naive {
		trainPlan = NaiveTrainDataPlan(pl.P)
	}
	phases := []phase{
		{"BotElim", BotElimPlan(pl.P, true), map[string]string{SourceEvents: eventsDataset}, DSClean},
		{"Label", LabelPlan(pl.P, true), map[string]string{SourceClean: DSClean}, DSLabeled},
		{"TrainData", trainPlan, map[string]string{SourceLabeled: DSLabeled, SourceClean: DSClean}, DSTrain},
		{"FeatureSelect", FeatureSelectPlan(pl.P, true), map[string]string{SourceLabeled: DSLabeled, SourceTrain: DSTrain}, DSScores},
		{"Reduce", ReducePlan(pl.P, true), map[string]string{SourceTrain: DSTrain, SourceScores: DSScores}, DSReduced},
		{"Model", ModelPlan(pl.P, true), map[string]string{SourceReduced: DSReduced}, DSModels},
		// Scoring closes the M3 loop: each period's impressions are
		// scored by the model learned from the previous period (a row at
		// time t joins the model valid at t).
		{"Score", ScorePlan(pl.P, true), map[string]string{SourceReduced: DSReduced, SourceModels: DSModels}, DSPredictions},
	}
	pl.Phases = pl.Phases[:0]
	for _, ph := range phases {
		start := time.Now()
		stat, err := pl.T.Run(ph.plan, ph.sources, ph.output)
		if err != nil {
			return fmt.Errorf("bt: phase %s: %w", ph.name, err)
		}
		ds, err := pl.T.Cluster.FS.Read(ph.output)
		if err != nil {
			return fmt.Errorf("bt: phase %s output: %w", ph.name, err)
		}
		res := PhaseResult{
			Name: ph.name, Output: ph.output, Rows: ds.Rows(),
			Stat: stat, Duration: time.Since(start),
		}
		for _, st := range stat.Stages {
			res.SpillSegments += st.SpillSegments
			res.SpillBytes += st.SpillBytes
		}
		pl.Phases = append(pl.Phases, res)
	}
	return nil
}

// Events reads a phase output as coalesced events.
func (pl *Pipeline) Events(dataset string) ([]temporal.Event, error) {
	return pl.T.ResultEvents(dataset)
}

// RunSingleNode executes the same phases on one embedded engine, feeding
// each phase's output events to the next — the configuration a real-time
// deployment would use, and the reference the TiMR tests compare against.
// It returns the coalesced output events of every phase keyed by dataset
// name.
func RunSingleNode(p Params, events []temporal.Event) (map[string][]temporal.Event, error) {
	out := make(map[string][]temporal.Event)
	run := func(plan *temporal.Plan, inputs map[string][]temporal.Event, name string) ([]temporal.Event, error) {
		evs, err := temporal.RunPlan(plan, inputs)
		if err != nil {
			return nil, fmt.Errorf("bt: single-node %s: %w", name, err)
		}
		out[name] = evs
		return evs, nil
	}
	clean, err := run(BotElimPlan(p, false), map[string][]temporal.Event{SourceEvents: events}, DSClean)
	if err != nil {
		return nil, err
	}
	labeled, err := run(LabelPlan(p, false), map[string][]temporal.Event{SourceClean: clean}, DSLabeled)
	if err != nil {
		return nil, err
	}
	train, err := run(TrainDataPlan(p, false), map[string][]temporal.Event{
		SourceLabeled: labeled, SourceClean: clean,
	}, DSTrain)
	if err != nil {
		return nil, err
	}
	scores, err := run(FeatureSelectPlan(p, false), map[string][]temporal.Event{
		SourceLabeled: labeled, SourceTrain: train,
	}, DSScores)
	if err != nil {
		return nil, err
	}
	reduced, err := run(ReducePlan(p, false), map[string][]temporal.Event{
		SourceTrain: train, SourceScores: scores,
	}, DSReduced)
	if err != nil {
		return nil, err
	}
	models, err := run(ModelPlan(p, false), map[string][]temporal.Event{
		SourceReduced: reduced,
	}, DSModels)
	if err != nil {
		return nil, err
	}
	if _, err := run(ScorePlan(p, false), map[string][]temporal.Event{
		SourceReduced: reduced, SourceModels: models,
	}, DSPredictions); err != nil {
		return nil, err
	}
	return out, nil
}
