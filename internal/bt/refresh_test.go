package bt

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"timr/internal/dur"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// refreshWorkload is the 7-day sliding-window drill setup: small enough
// to run both refresh paths daily, with amplified CTR structure so
// feature selection and models have real signal, and a short τ so the
// delta window is a small fraction of a day.
func refreshWorkload() (Params, workload.Config) {
	cfg := workload.Config{
		Users: 220, Keywords: 180, AdClasses: 5, Days: 7, Seed: 5,
		SearchesPerUserDay: 12, ImpressionsPerUserDay: 8,
		BaseCTR: 0.18, PosLift: 3, NegDamp: 0.5,
		PosKeywordsPerAd: 6, NegKeywordsPerAd: 6,
		InterestKeywordsPerUser: 5,
		BotFraction:             0.01, BotRateMultiplier: 30,
		Tau: 2 * temporal.Hour,
	}
	p := Params{
		T1: 60, T2: 60,
		BotHop:      30 * temporal.Minute,
		Tau:         2 * temporal.Hour,
		D:           5 * temporal.Minute,
		TrainPeriod: temporal.Day,
		ZThreshold:  0,
		ModelEpochs: 6,
	}
	return p, cfg
}

func summaryBytes(t *testing.T, r *Refresher) []byte {
	t.Helper()
	b, err := r.State.SummaryBytes()
	if err != nil {
		t.Fatalf("SummaryBytes: %v", err)
	}
	return b
}

func ingestAllDays(t *testing.T, r *Refresher, d *workload.Dataset, onDay func(day int)) {
	t.Helper()
	for day := 0; day < d.Cfg.Days; day++ {
		end := temporal.Time(day+1) * temporal.Day
		if err := r.IngestDay(d.DayRows(day), end); err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if onDay != nil {
			onDay(day)
		}
	}
}

// The tentpole invariant: every day's delta refresh lands in state
// byte-identical to a from-scratch full recompute over complete raw
// history — counts, z-selected features, train rows, tail, and every
// window model.
func TestRefreshDeltaMatchesFull(t *testing.T) {
	p, cfg := refreshWorkload()
	d := workload.Generate(cfg)

	deltaR := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta})
	fullR := NewRefresher(p, cfg, RefreshOptions{Mode: ModeFull, RetainHistory: true})

	for day := 0; day < cfg.Days; day++ {
		end := temporal.Time(day+1) * temporal.Day
		rows := d.DayRows(day)
		if err := deltaR.IngestDay(rows, end); err != nil {
			t.Fatalf("delta day %d: %v", day, err)
		}
		if err := fullR.IngestDay(rows, end); err != nil {
			t.Fatalf("full day %d: %v", day, err)
		}
		db, fb := summaryBytes(t, deltaR), summaryBytes(t, fullR)
		if !bytes.Equal(db, fb) {
			t.Fatalf("day %d: delta state diverged from full recompute (%d vs %d bytes)", day, len(db), len(fb))
		}
		if !deltaR.LastDelta || fullR.LastDelta {
			t.Fatalf("day %d: forced modes not honored (delta=%v full=%v)", day, deltaR.LastDelta, fullR.LastDelta)
		}
	}
	st := deltaR.State
	if st.Days != cfg.Days || len(st.Train) == 0 || len(st.Models) == 0 {
		t.Fatalf("implausible final state: days=%d train=%d models=%d", st.Days, len(st.Train), len(st.Models))
	}
	frozen := 0
	for _, m := range st.Models {
		if m.Frozen {
			frozen++
		}
	}
	if frozen == 0 {
		t.Fatal("a 7-day run with daily training windows must freeze some windows")
	}
}

// Pins the summary path to the engine: with the watermark pushed past
// the horizon, the refresher's finalized train rows equal the engine
// pipeline's train dataset, and its z-selected feature set equals the
// engine's score stream (window w scores are valid during period w+1),
// z values bit-identical.
func TestRefreshSummaryMatchesEnginePipeline(t *testing.T) {
	p, cfg := refreshWorkload()
	d := workload.Generate(cfg)

	r := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta})
	// One ingest covering the whole log, with dayEnd beyond the horizon
	// so F = Horizon and every row finalizes.
	if err := r.IngestDay(d.Rows, d.Horizon+p.D); err != nil {
		t.Fatal(err)
	}

	phases, err := RunSingleNode(p, d.Events())
	if err != nil {
		t.Fatal(err)
	}
	engineTrain := make([]temporal.Row, 0, len(phases[DSTrain]))
	for _, e := range phases[DSTrain] {
		engineTrain = append(engineTrain, e.Payload)
	}
	sortRows(engineTrain)
	if len(engineTrain) != len(r.State.Train) {
		t.Fatalf("train rows: summary %d vs engine %d", len(r.State.Train), len(engineTrain))
	}
	for i := range engineTrain {
		if rowLess(engineTrain[i], r.State.Train[i]) || rowLess(r.State.Train[i], engineTrain[i]) {
			t.Fatalf("train row %d differs: %v vs %v", i, r.State.Train[i], engineTrain[i])
		}
	}

	selected := r.State.Counts.SelectFeatures(p)
	engineSel := make(map[KwKey]float64)
	for _, e := range phases[DSScores] {
		win := int64(e.LE)/int64(p.TrainPeriod) - 1
		k := KwKey{Win: win, Ad: e.Payload[0].AsInt(), Kw: e.Payload[1].AsInt()}
		engineSel[k] = e.Payload[2].AsFloat()
	}
	if len(engineSel) == 0 {
		t.Fatal("engine selected no features; workload too weak to pin against")
	}
	if len(selected) != len(engineSel) {
		t.Fatalf("selected features: summary %d vs engine %d", len(selected), len(engineSel))
	}
	for k, z := range engineSel {
		sz, ok := selected[k]
		if !ok {
			t.Fatalf("engine selected %+v (z=%v) but summary did not", k, z)
		}
		if sz != z {
			t.Fatalf("z mismatch for %+v: summary %v vs engine %v", k, sz, z)
		}
	}
}

// The chooser: with history retained and per-row costs observed, small
// daily deltas against a growing history must flip the decision to the
// delta path; without history the decision is forced.
func TestRefreshCostChooser(t *testing.T) {
	p, cfg := refreshWorkload()
	cfg.Days = 4
	d := workload.Generate(cfg)

	auto := NewRefresher(p, cfg, RefreshOptions{RetainHistory: true})
	ingestAllDays(t, auto, d, nil)
	if len(auto.Choices) == 0 {
		t.Fatal("chooser recorded no decisions")
	}
	if !auto.LastDelta {
		t.Fatalf("day %d of a growing history should choose the delta path: %+v", cfg.Days, auto.Choices)
	}
	for _, c := range auto.Choices {
		if c.PerRow <= 0 || c.FullCost < 0 || c.DeltaCost < 0 {
			t.Fatalf("implausible choice pricing: %+v", c)
		}
	}
	front := auto.Choices[0]
	if front.Stage != "Front" || !front.Delta || front.DeltaCost >= front.FullCost {
		t.Fatalf("front stage should be cheaper as delta by day 4: %+v", front)
	}
	if obs := auto.State.Observation("Front"); obs.PerRow() == 0 {
		t.Fatal("front stage timings were never recorded")
	}

	noHist := NewRefresher(p, cfg, RefreshOptions{})
	if err := noHist.IngestDay(d.DayRows(0), temporal.Day); err != nil {
		t.Fatal(err)
	}
	if !noHist.LastDelta || !noHist.Choices[0].Forced {
		t.Fatalf("without retained history the front stage must force delta: %+v", noHist.Choices[0])
	}
	if err := NewRefresher(p, cfg, RefreshOptions{Mode: ModeFull}).IngestDay(d.DayRows(0), temporal.Day); err == nil {
		t.Fatal("ModeFull without RetainHistory must error")
	}
}

// Refresh state survives kill -9 between ingests: reopen the store,
// restore the newest intact generation, keep going — final state
// byte-identical to the uninterrupted run, under 30% injected I/O
// faults, including a fallback past a deliberately corrupted newest
// generation.
func TestRefreshDurableResume(t *testing.T) {
	p, cfg := refreshWorkload()
	cfg.Users = 150
	cfg.Days = 5
	d := workload.Generate(cfg)

	ref := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta})
	ingestAllDays(t, ref, d, nil)
	want := summaryBytes(t, ref)

	for _, killAfter := range []int{1, 3} {
		dir := t.TempDir()
		open := func(seed int64) *dur.Store {
			fs := dur.NewFaultFS(dur.OS{}, dur.FaultConfig{Rate: 0.3, Seed: seed})
			st, err := dur.OpenStore(dir, dur.Options{FS: fs, Retries: 16})
			if err != nil {
				t.Fatalf("open store: %v", err)
			}
			return st
		}

		r1 := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta, Store: open(int64(killAfter))})
		for day := 0; day < killAfter; day++ {
			if err := r1.IngestDay(d.DayRows(day), temporal.Time(day+1)*temporal.Day); err != nil {
				t.Fatalf("pre-kill day %d: %v", day, err)
			}
			if r1.DurErr != nil {
				t.Fatalf("commit day %d: %v", day, r1.DurErr)
			}
		}
		// kill -9: r1 is abandoned mid-flight; a new process reopens.
		r2 := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta, Store: open(int64(killAfter) + 100)})
		resumed, err := r2.Restore()
		if err != nil || !resumed {
			t.Fatalf("restore after kill at day %d: resumed=%v err=%v", killAfter, resumed, err)
		}
		if r2.State.Days != killAfter {
			t.Fatalf("restored %d ingested days, want %d", r2.State.Days, killAfter)
		}
		for day := r2.State.Days; day < cfg.Days; day++ {
			if err := r2.IngestDay(d.DayRows(day), temporal.Time(day+1)*temporal.Day); err != nil {
				t.Fatalf("post-resume day %d: %v", day, err)
			}
		}
		if got := summaryBytes(t, r2); !bytes.Equal(got, want) {
			t.Fatalf("kill at day %d: resumed final state diverged from uninterrupted run", killAfter)
		}
	}
}

func TestRefreshQuarantineFallback(t *testing.T) {
	p, cfg := refreshWorkload()
	cfg.Users = 120
	cfg.Days = 3
	d := workload.Generate(cfg)
	dir := t.TempDir()

	st, err := dur.OpenStore(dir, dur.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta, Store: st})
	ingestAllDays(t, r1, d, nil)

	// Corrupt the newest generation's checkpoint payload.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts []string
	for _, n := range names {
		if strings.HasSuffix(n.Name(), ".ckpt") {
			ckpts = append(ckpts, n.Name())
		}
	}
	sort.Strings(ckpts)
	victim := filepath.Join(dir, ckpts[len(ckpts)-1])
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := dur.OpenStore(dir, dur.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta, Store: st2})
	resumed, err := r2.Restore()
	if err != nil || !resumed {
		t.Fatalf("restore past corruption: resumed=%v err=%v", resumed, err)
	}
	if r2.State.Days != cfg.Days-1 {
		t.Fatalf("fallback restored %d days, want %d (the predecessor generation)", r2.State.Days, cfg.Days-1)
	}
	// Re-ingest the lost day; the refresher must converge to the same
	// final state as the uninterrupted run.
	if err := r2.IngestDay(d.DayRows(cfg.Days-1), temporal.Time(cfg.Days)*temporal.Day); err != nil {
		t.Fatal(err)
	}
	if got, want := summaryBytes(t, r2), summaryBytes(t, r1); !bytes.Equal(got, want) {
		t.Fatal("state after quarantine fallback + re-ingest diverged")
	}
}

// Warm start: enabled, it must actually fire, every kept warm model has
// passed the parity gate, and the final models stay close in quality to
// the exact refresher's.
func TestRefreshWarmStartParity(t *testing.T) {
	p, cfg := refreshWorkload()
	cfg.Days = 5
	d := workload.Generate(cfg)

	exact := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta})
	warm := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta, AllowWarmStart: true, WarmTolerance: 0.1})
	ingestAllDays(t, exact, d, nil)
	ingestAllDays(t, warm, d, nil)

	if warm.WarmStarts == 0 {
		t.Fatalf("warm start never fired (rejects=%d)", warm.WarmRejects)
	}
	exactAreas := make(map[winAd]float64)
	for _, m := range exact.State.Models {
		exactAreas[winAd{m.Win, m.Ad}] = m.Area
	}
	compared := 0
	for _, m := range warm.State.Models {
		ea, ok := exactAreas[winAd{m.Win, m.Ad}]
		if !ok {
			continue
		}
		compared++
		if diff := math.Abs(m.Area - ea); diff > 3*warm.Opts.WarmTolerance {
			t.Fatalf("window (%d,%d): warm area %v drifted %v from exact %v", m.Win, m.Ad, m.Area, diff, ea)
		}
	}
	if compared == 0 {
		t.Fatal("no overlapping window models to compare")
	}
}

func TestRefreshStateRoundtrip(t *testing.T) {
	p, cfg := refreshWorkload()
	cfg.Users = 120
	cfg.Days = 2
	d := workload.Generate(cfg)
	r := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta})
	ingestAllDays(t, r, d, nil)

	enc, err := EncodeState(r.State)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := DecodeState(enc)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r.State.SummaryBytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := st2.SummaryBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("state round-trip changed SummaryBytes")
	}
	enc2, err := EncodeState(st2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("state round-trip changed full encoding (timings included)")
	}
	if st2.P != r.State.P || st2.Cfg != r.State.Cfg || st2.Days != r.State.Days {
		t.Fatal("state round-trip changed header fields")
	}
}

// FuzzSummaryRoundtrip: DecodeState must never panic on arbitrary
// bytes, and any state it accepts must re-encode and re-decode to the
// same canonical bytes (both with and without timings).
func FuzzSummaryRoundtrip(f *testing.F) {
	p, cfg := refreshWorkload()
	cfg.Users = 12
	cfg.Days = 1
	d := workload.Generate(cfg)
	r := NewRefresher(p, cfg, RefreshOptions{Mode: ModeDelta})
	if err := r.IngestDay(d.DayRows(0), temporal.Day); err != nil {
		f.Fatal(err)
	}
	if seed, err := EncodeState(r.State); err == nil {
		f.Add(seed)
	}
	if seed, err := r.State.SummaryBytes(); err == nil {
		f.Add(seed)
	}
	empty, err := EncodeState(NewRefreshState(p, cfg))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(data)
		if err != nil {
			return
		}
		enc, err := EncodeState(st)
		if err != nil {
			t.Fatalf("re-encode of accepted state failed: %v", err)
		}
		st2, err := DecodeState(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		enc2, err := EncodeState(st2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding not a fixed point")
		}
		s1, err1 := st.SummaryBytes()
		s2, err2 := st2.SummaryBytes()
		if err1 != nil || err2 != nil || !bytes.Equal(s1, s2) {
			t.Fatal("SummaryBytes not stable across round-trip")
		}
	})
}
