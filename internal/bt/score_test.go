package bt

import (
	"math"
	"testing"

	"timr/internal/ml"
	"timr/internal/stats"
	"timr/internal/temporal"
)

func TestScorePlanMatchesDirectPrediction(t *testing.T) {
	p := testParams()
	// Model trained in window 0 is valid for window 1 ([P, 2P)).
	m := &ml.Model{Bias: -0.5, Weights: map[int64]float64{100: 1.5, 200: -2.0}}
	blob := SerializeModel(m)
	models := []temporal.Event{{
		LE: int64(p.TrainPeriod), RE: 2 * int64(p.TrainPeriod),
		Payload: temporal.Row{temporal.Int(ad1), temporal.String(blob)},
	}}

	// Two test impressions inside the model's validity window.
	base := int64(p.TrainPeriod)
	mkRow := func(t int64, user int64, kw int64, cnt int64) temporal.Row {
		return temporal.Row{
			temporal.Int(t), temporal.Int(user), temporal.Int(ad1),
			temporal.Int(0), temporal.Int(kw), temporal.Int(cnt),
		}
	}
	rows := []temporal.Row{
		mkRow(base+1000, 1, 100, 2), // features {100: 2}
		mkRow(base+2000, 2, 100, 1), // features {100: 1, 200: 3}
		mkRow(base+2000, 2, 200, 3),
	}
	out, err := temporal.RunPlan(ScorePlan(p, false), map[string][]temporal.Event{
		SourceReduced: pointEvents(rows),
		SourceModels:  models,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("scored %d impressions, want 2: %v", len(out), out)
	}
	want1 := stats.Sigmoid(-0.5 + 1.5*2)
	want2 := stats.Sigmoid(-0.5 + 1.5*1 - 2.0*3)
	got := map[int64]float64{}
	for _, e := range out {
		got[e.Payload[1].AsInt()] = e.Payload[4].AsFloat()
	}
	if math.Abs(got[1]-want1) > 1e-9 {
		t.Errorf("user 1 score = %v, want %v", got[1], want1)
	}
	if math.Abs(got[2]-want2) > 1e-9 {
		t.Errorf("user 2 score = %v, want %v", got[2], want2)
	}
	// Direct prediction agreement.
	direct := m.Predict([]ml.Feature{{ID: 100, Val: 1}, {ID: 200, Val: 3}})
	if math.Abs(got[2]-direct) > 1e-9 {
		t.Errorf("CQ score %v != model.Predict %v", got[2], direct)
	}
}

func TestScorePlanIgnoresRowsOutsideModelValidity(t *testing.T) {
	p := testParams()
	m := &ml.Model{Bias: 0, Weights: map[int64]float64{100: 1}}
	models := []temporal.Event{{
		LE: int64(p.TrainPeriod), RE: 2 * int64(p.TrainPeriod),
		Payload: temporal.Row{temporal.Int(ad1), temporal.String(blobOf(m))},
	}}
	rows := []temporal.Row{{
		temporal.Int(10), temporal.Int(1), temporal.Int(ad1), // before validity
		temporal.Int(0), temporal.Int(100), temporal.Int(1),
	}}
	out, err := temporal.RunPlan(ScorePlan(p, false), map[string][]temporal.Event{
		SourceReduced: pointEvents(rows),
		SourceModels:  models,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("rows outside model validity must not be scored: %v", out)
	}
}

func blobOf(m *ml.Model) string { return SerializeModel(m) }

func TestEndToEndModelAndScore(t *testing.T) {
	// Train on window 0 (via ModelPlan) and score window-1 rows (via
	// ScorePlan): the full M3 loop in CQs.
	p := testParams()
	p.TrainPeriod = 200 * temporal.Second
	_, train := buildCorrelatedLog() // all rows within [0, 306s)... spread over window 0 and 1

	models, err := temporal.RunPlan(ModelPlan(p, false), map[string][]temporal.Event{
		SourceReduced: pointEvents(train),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Fatal("no models")
	}
	// Score the rows of the second window with the first window's model.
	// The fixture's second window carries a single keyword, so vary the
	// counts to get distinguishable feature vectors.
	var testRows []temporal.Row
	for i, r := range train {
		if r[0].AsInt() >= int64(p.TrainPeriod) {
			r = r.Clone()
			r[5] = temporal.Int(int64(i%3) + 1)
			testRows = append(testRows, r)
		}
	}
	if len(testRows) == 0 {
		t.Fatal("no test rows")
	}
	out, err := temporal.RunPlan(ScorePlan(p, false), map[string][]temporal.Event{
		SourceReduced: pointEvents(testRows),
		SourceModels:  models,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no scores")
	}
	// Higher scores should skew toward clicked impressions (kw100 was
	// planted positive in the fixture's first window... the second window
	// of the fixture is the kw300 background, so just check scores are
	// within (0,1) and vary).
	lo, hi := 1.0, 0.0
	for _, e := range out {
		s := e.Payload[4].AsFloat()
		if s <= 0 || s >= 1 {
			t.Fatalf("score %v out of range", s)
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if lo == hi {
		t.Error("all scores identical; model carries no signal")
	}
}
