// Package dur is the durable checkpoint store: it persists a streaming
// job's per-partition wave checkpoints and replay logs to disk as
// versioned, resumable generations, so a process killed mid-wave —
// `kill -9`, no shutdown hook — restarts bit-identically to the
// in-memory crash-recovery path (internal/core crash()+replay, the PR 4
// invariant).
//
// Three layers:
//
//   - FS/File (this file): the I/O seam. Every byte the store reads or
//     writes goes through this interface, so the deterministic
//     fault-injecting implementation (faultfs.go) can exercise torn
//     writes, short reads, bit flips, ENOSPC, and failed rename/fsync
//     against the exact production code paths.
//   - Store (store.go): the atomic commit protocol. Each generation is
//     written as temp file → CRC32-checksummed, length-prefixed frames
//     (internal/temporal frame.go) → fsync → rename, then a manifest the
//     same way; a generation exists only once its manifest does. Loads
//     walk generations newest-first, quarantine anything that fails
//     validation, and fall back to the previous intact one.
//   - The retry supervisor (store.go retry): transient I/O faults are
//     retried with bounded backoff before the store either skips a
//     commit (the previous generation stays the recovery line) or
//     declares a generation corrupt.
package dur

import (
	"io"
	"os"
	"sort"
)

// FS is the file-system seam the store writes through. Implementations
// must make Rename atomic with respect to Open (the POSIX rename
// contract) — that is the property the commit protocol rides on.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// CreateTemp creates a new unique file in dir with a name built from
	// pattern (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// RemoveAll deletes path and everything under it.
	RemoveAll(path string) error
	// ReadDir lists the file names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Size returns the byte size of a file.
	Size(name string) (int64, error)
}

// File is one open file of an FS: sequential writes while building,
// random-access reads after sealing, plus the fsync and close that the
// commit protocol orders explicitly.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file's contents to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// OS is the real file system. The zero value is ready to use.
type OS struct{}

var _ FS = OS{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// RemoveAll implements FS.
func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Size implements FS.
func (OS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
