package dur

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"timr/internal/obs"
	"timr/internal/temporal"
)

// Store is the durable checkpoint store: a directory of committed
// generations, each one wave's full recovery state (every partition's
// engine checkpoint + replay log, plus the delivered-output record).
//
// Commit protocol, per generation g:
//
//  1. gen-g.ckpt.tmp is written as a sequence of CRC32-checksummed,
//     length-prefixed frames (temporal.AppendFrame), fsynced, closed,
//     and renamed to gen-g.ckpt;
//  2. gen-g.manifest.tmp — one frame recording g, the wave, the ckpt
//     file name and its exact byte size — is written, fsynced, and
//     renamed to gen-g.manifest.
//
// The manifest rename is the commit point: a generation exists iff its
// manifest does, so a `kill -9` at any instant leaves either the
// previous committed generation (plus ignorable *.tmp debris) or the new
// one — never a half state. Load walks generations newest-first,
// validates every frame against its checksum and the manifest's recorded
// size, quarantines anything that fails (renamed to corrupt-*, counted
// as corrupt_detected) and falls back to the previous intact generation;
// the caller then replays forward from that older wave (extended
// replay).
//
// Every I/O bundle runs under the retry supervisor: transient faults
// (FaultFS's torn writes, short reads, failed fsync/rename, ENOSPC) are
// retried with bounded backoff. A commit that still fails is skipped —
// counted as commit_failures — leaving the previous generation as the
// recovery line, so durability degrades to a longer replay rather than
// an outage.
type Store struct {
	dir     string
	fs      FS
	keep    int
	retries int
	backoff func(attempt int)

	mu      sync.Mutex
	nextGen uint64

	bytes     *obs.Counter // dur_bytes: bytes committed (ckpt + manifest)
	gens      *obs.Counter // generations: successful commits
	corrupt   *obs.Counter // corrupt_detected: generations quarantined
	retriesC  *obs.Counter // retries: I/O bundles re-attempted
	skips     *obs.Counter // commit_failures: commits abandoned after retries
	transferB *obs.Counter // transfer_bytes: migration bytes round-tripped
}

// Options tunes OpenStore. Zero fields take defaults.
type Options struct {
	// FS is the I/O implementation (default: the real OS file system).
	// Tests substitute a FaultFS.
	FS FS
	// Keep bounds how many committed generations are retained (default
	// 3, floor 2 — fallback needs a predecessor).
	Keep int
	// Retries bounds attempts per I/O bundle (default 12).
	Retries int
	// Backoff, when set, runs between attempts (attempt counts from 0).
	// Nil means no delay — tests and fault injection want speed; real
	// deployments pass a sleep.
	Backoff func(attempt int)
	// Obs receives the store's counters (dur_bytes, generations,
	// corrupt_detected, retries, commit_failures, transfer_bytes). Nil
	// disables instrumentation.
	Obs *obs.Scope
}

// PartitionState is one streaming partition's recovery record: the
// engine checkpoint taken at the wave, and the replay log of events
// admitted but not yet consumed.
type PartitionState struct {
	Frag string
	Part int
	Ckpt []byte
	Log  []temporal.Event
}

// SourceOffset records one ingest source's schedule position at the
// committed wave: how many schedule entries the driver had consumed when
// the wave was committed. Recovery seeks the input to Pos instead of
// re-walking the schedule from the start.
type SourceOffset struct {
	Name string
	Pos  int64
}

// Snapshot is one wave's full recovery state — exactly what the
// in-memory crash path reconstructs from, plus the job-level output
// record a process restart additionally needs.
type Snapshot struct {
	Wave  temporal.Time // punctuation time of the committed wave
	Waves int           // completed waves (the crash-draw clock)
	Parts []PartitionState
	// Results are the output events delivered so far; Pending are output
	// events buffered behind the final barrier (LE at or beyond Wave).
	Results []temporal.Event
	Pending []temporal.Event
	// Offsets are the durable input positions of every source whose
	// driver published one (Feeder.SetPosition), sorted by name.
	Offsets []SourceOffset
}

// Offset returns the recorded input position for a source, if any.
func (s *Snapshot) Offset(name string) (int64, bool) {
	for _, o := range s.Offsets {
		if o.Name == name {
			return o.Pos, true
		}
	}
	return 0, false
}

// Recovery is the outcome of a successful Load.
type Recovery struct {
	Gen  uint64
	Snap *Snapshot
}

// Record tags inside checkpoint-file frames.
const (
	recHeader    byte = 0xD0
	recPartition byte = 0xD1
	recOut       byte = 0xD2
	recManifest  byte = 0xD3
	recState     byte = 0xD4
)

// OpenStore opens (creating if needed) a durable store rooted at dir.
// Leftover temp files from a killed commit are swept; quarantined
// generations are left in place for inspection but never reused.
func OpenStore(dir string, o Options) (*Store, error) {
	if o.FS == nil {
		o.FS = OS{}
	}
	if o.Keep <= 0 {
		o.Keep = 3
	}
	if o.Keep < 2 {
		o.Keep = 2
	}
	if o.Retries <= 0 {
		o.Retries = 12
	}
	s := &Store{
		dir: dir, fs: o.FS, keep: o.Keep, retries: o.Retries, backoff: o.Backoff,
		bytes:     o.Obs.Counter("dur_bytes"),
		gens:      o.Obs.Counter("generations"),
		corrupt:   o.Obs.Counter("corrupt_detected"),
		retriesC:  o.Obs.Counter("retries"),
		skips:     o.Obs.Counter("commit_failures"),
		transferB: o.Obs.Counter("transfer_bytes"),
	}
	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("dur: open store: %w", err)
	}
	names, err := s.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dur: open store: %w", err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			// A torn commit from a killed process; safe to sweep — the
			// commit point is the manifest rename, which never happened.
			_ = s.fs.Remove(filepath.Join(dir, n))
			continue
		}
		if g, ok := parseGen(n); ok && g >= s.nextGen {
			s.nextGen = g + 1
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// parseGen extracts the generation number from gen-*/corrupt-* file
// names (quarantined generations still reserve their number).
func parseGen(name string) (uint64, bool) {
	var g uint64
	for _, pat := range []string{"gen-%08d.manifest", "gen-%08d.ckpt", "corrupt-%08d.manifest", "corrupt-%08d.ckpt"} {
		if _, err := fmt.Sscanf(name, pat, &g); err == nil {
			return g, true
		}
	}
	return 0, false
}

// retry runs one I/O bundle under the supervisor: up to s.retries
// attempts, counting re-attempts and applying backoff between them.
func (s *Store) retry(op func() error) error {
	var err error
	for attempt := 0; attempt < s.retries; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt < s.retries-1 {
			s.retriesC.Inc()
			if s.backoff != nil {
				s.backoff(attempt)
			}
		}
	}
	return err
}

// writeFileAtomic writes data as path via temp file → fsync → rename,
// retrying the whole bundle on any fault (a retry restarts from a fresh
// temp file, so torn writes never leave a partial committed file).
func (s *Store) writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	return s.retry(func() error {
		err := func() error {
			f, err := s.fs.Create(tmp)
			if err != nil {
				return err
			}
			_, werr := f.Write(data)
			var serr error
			if werr == nil {
				serr = f.Sync()
			}
			cerr := f.Close()
			switch {
			case werr != nil:
				return werr
			case serr != nil:
				return serr
			case cerr != nil:
				return cerr
			}
			return s.fs.Rename(tmp, path)
		}()
		if err != nil {
			_ = s.fs.Remove(tmp)
		}
		return err
	})
}

// readFile reads a whole file through the FS seam (single ReadAt of the
// stat'ed size, so short reads and bit flips surface to the caller).
func (s *Store) readFile(path string) ([]byte, error) {
	size, err := s.fs.Size(path)
	if err != nil {
		return nil, err
	}
	f, err := s.fs.Open(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	var rerr error
	if size > 0 {
		_, rerr = f.ReadAt(buf, 0)
	}
	cerr := f.Close()
	if rerr != nil {
		return nil, rerr
	}
	if cerr != nil {
		return nil, cerr
	}
	return buf, nil
}

func (s *Store) ckptName(gen uint64) string     { return fmt.Sprintf("gen-%08d.ckpt", gen) }
func (s *Store) manifestName(gen uint64) string { return fmt.Sprintf("gen-%08d.manifest", gen) }

// Commit writes snap as the next generation. On failure the store is
// unchanged (the previous generation remains the recovery line), the
// skip is counted, and the error is returned for the caller to surface
// or tolerate.
func (s *Store) Commit(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.nextGen
	s.nextGen++ // never reuse a number, even for a failed commit
	return s.commitFiles(gen, snap.Wave, snap.Waves, encodeSnapshot(gen, snap))
}

// CommitState commits an opaque state payload as the next generation,
// under the same atomic protocol (ckpt write+fsync+rename, then manifest
// rename as the commit point) and the same retry supervisor. The
// incremental BT refresh persists one ingested day per generation this
// way: wave carries the refresh watermark and waves the ingested-day
// count. A store directory holds either streaming snapshots or state
// generations, never both — a mismatched load treats the generation as
// corrupt.
func (s *Store) CommitState(wave temporal.Time, waves int, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.nextGen
	s.nextGen++
	var w temporal.Encoder
	w.Byte(recState)
	w.Uvarint(gen)
	w.Varint(int64(wave))
	w.Uvarint(uint64(waves))
	w.BytesField(payload)
	return s.commitFiles(gen, wave, waves, temporal.AppendFrame(nil, w.Bytes()))
}

// commitFiles is the shared tail of Commit/CommitState: the atomic
// ckpt-then-manifest write of one already-encoded generation. Callers
// hold s.mu.
func (s *Store) commitFiles(gen uint64, wave temporal.Time, waves int, data []byte) error {
	ckpt := s.ckptName(gen)
	if err := s.writeFileAtomic(filepath.Join(s.dir, ckpt), data); err != nil {
		s.skips.Inc()
		return fmt.Errorf("dur: commit gen %d: %w", gen, err)
	}

	var mw temporal.Encoder
	mw.Byte(recManifest)
	mw.Uvarint(gen)
	mw.Varint(int64(wave))
	mw.Uvarint(uint64(waves))
	mw.String(ckpt)
	mw.Uvarint(uint64(len(data)))
	manData := temporal.AppendFrame(nil, mw.Bytes())
	if err := s.writeFileAtomic(filepath.Join(s.dir, s.manifestName(gen)), manData); err != nil {
		s.skips.Inc()
		_ = s.fs.Remove(filepath.Join(s.dir, ckpt)) // orphan without a manifest
		return fmt.Errorf("dur: commit gen %d manifest: %w", gen, err)
	}
	s.bytes.Add(int64(len(data) + len(manData)))
	s.gens.Inc()
	s.prune(gen)
	return nil
}

// prune removes committed generations older than the keep window (and
// any orphaned ckpt files below it). Quarantined corrupt-* files are
// kept for inspection.
func (s *Store) prune(latest uint64) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	var committed []uint64
	for _, n := range names {
		var g uint64
		if _, err := fmt.Sscanf(n, "gen-%08d.manifest", &g); err == nil {
			committed = append(committed, g)
		}
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i] > committed[j] })
	if len(committed) <= s.keep {
		return
	}
	floor := committed[s.keep-1]
	for _, n := range names {
		var g uint64
		isMan, isCkpt := false, false
		if _, err := fmt.Sscanf(n, "gen-%08d.manifest", &g); err == nil {
			isMan = true
		} else if _, err := fmt.Sscanf(n, "gen-%08d.ckpt", &g); err == nil {
			isCkpt = true
		}
		if (isMan || isCkpt) && g < floor && g != latest {
			_ = s.fs.Remove(filepath.Join(s.dir, n))
		}
	}
}

// Load returns the newest intact generation, or (nil, nil) when the
// store holds none (fresh directory, or every generation corrupt —
// the caller then starts clean and replays everything). Generations
// that fail validation after retries are quarantined and skipped.
func (s *Store) Load() (*Recovery, error) {
	var rec *Recovery
	err := s.loadNewest(func(gen uint64, wave temporal.Time, waves int, data []byte) error {
		snap, err := decodeSnapshot(gen, wave, waves, data)
		if err != nil {
			return err
		}
		rec = &Recovery{Gen: gen, Snap: snap}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// StateRecovery is the outcome of a successful LoadState.
type StateRecovery struct {
	Gen     uint64
	Wave    temporal.Time
	Waves   int
	Payload []byte
}

// LoadState returns the newest intact state generation (CommitState),
// or (nil, nil) when the store holds none. Corrupt generations are
// quarantined with fallback, exactly like Load.
func (s *Store) LoadState() (*StateRecovery, error) {
	var rec *StateRecovery
	err := s.loadNewest(func(gen uint64, wave temporal.Time, waves int, data []byte) error {
		payload, err := decodeState(gen, wave, waves, data)
		if err != nil {
			return err
		}
		rec = &StateRecovery{Gen: gen, Wave: wave, Waves: waves, Payload: payload}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// loadNewest walks committed generations newest-first, fully validating
// each through decode until one succeeds; failed generations are
// quarantined. decode receives the manifest-verified checkpoint bytes.
func (s *Store) loadNewest(decode func(gen uint64, wave temporal.Time, waves int, data []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	if err := s.retry(func() error {
		var err error
		names, err = s.fs.ReadDir(s.dir)
		return err
	}); err != nil {
		return fmt.Errorf("dur: load: %w", err)
	}
	var gens []uint64
	for _, n := range names {
		var g uint64
		if _, err := fmt.Sscanf(n, "gen-%08d.manifest", &g); err == nil {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, g := range gens {
		err := s.retry(func() error {
			wave, waves, data, err := s.readGen(g)
			if err != nil {
				return err
			}
			return decode(g, wave, waves, data)
		})
		if err == nil {
			return nil
		}
		// Persistent failure across retries: the generation is corrupt on
		// disk, not transiently unreadable. Quarantine it and fall back.
		s.corrupt.Inc()
		s.quarantine(g)
	}
	return nil
}

// readGen reads one generation's checkpoint bytes after validating them
// against its manifest.
func (s *Store) readGen(gen uint64) (temporal.Time, int, []byte, error) {
	manData, err := s.readFile(filepath.Join(s.dir, s.manifestName(gen)))
	if err != nil {
		return 0, 0, nil, err
	}
	payload, rest, err := temporal.DecodeFrame(manData)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("manifest: %w", err)
	}
	if len(rest) != 0 {
		return 0, 0, nil, fmt.Errorf("manifest: %d trailing bytes", len(rest))
	}
	mr := temporal.NewDecoder(payload)
	if err := mr.Expect(recManifest, "manifest"); err != nil {
		return 0, 0, nil, err
	}
	mgen := mr.Uvarint()
	wave := temporal.Time(mr.Varint())
	waves := int(mr.Uvarint())
	ckptName := mr.String()
	ckptSize := mr.Uvarint()
	if err := mr.Done(); err != nil {
		return 0, 0, nil, err
	}
	if mgen != gen {
		return 0, 0, nil, fmt.Errorf("manifest records gen %d, file named %d", mgen, gen)
	}

	data, err := s.readFile(filepath.Join(s.dir, ckptName))
	if err != nil {
		return 0, 0, nil, err
	}
	if uint64(len(data)) != ckptSize {
		return 0, 0, nil, fmt.Errorf("checkpoint file is %d bytes, manifest records %d", len(data), ckptSize)
	}
	return wave, waves, data, nil
}

// quarantine renames a corrupt generation's files to corrupt-* so they
// are never loaded again but stay inspectable. Best effort: a rename
// that fails falls back to removal.
func (s *Store) quarantine(gen uint64) {
	for _, pair := range [][2]string{
		{s.manifestName(gen), fmt.Sprintf("corrupt-%08d.manifest", gen)},
		{s.ckptName(gen), fmt.Sprintf("corrupt-%08d.ckpt", gen)},
	} {
		from := filepath.Join(s.dir, pair[0])
		to := filepath.Join(s.dir, pair[1])
		if err := s.retry(func() error { return s.fs.Rename(from, to) }); err != nil {
			_ = s.fs.Remove(from)
		}
	}
}

// Transfer round-trips a migration's checkpoint bytes through the store:
// the bytes are committed as a framed transfer artifact (same atomic
// protocol as generations), read back, verified, and returned — so a
// shard migration's "byte copy" is a genuine durable transport, with the
// same retry/verification behavior checkpoint commits get.
func (s *Store) Transfer(frag string, shard int, ckpt []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, fmt.Sprintf("transfer-%s-%d.bin", sanitizeName(frag), shard))
	if err := s.writeFileAtomic(path, temporal.AppendFrame(nil, ckpt)); err != nil {
		return nil, fmt.Errorf("dur: transfer %s/%d: %w", frag, shard, err)
	}
	var out []byte
	err := s.retry(func() error {
		data, err := s.readFile(path)
		if err != nil {
			return err
		}
		payload, rest, err := temporal.DecodeFrame(data)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("transfer artifact: %d trailing bytes", len(rest))
		}
		out = payload
		return nil
	})
	_ = s.fs.Remove(path)
	if err != nil {
		return nil, fmt.Errorf("dur: transfer %s/%d read-back: %w", frag, shard, err)
	}
	s.transferB.Add(int64(len(out)))
	return out, nil
}

func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
}

// ---- snapshot encoding ----

// encodeSnapshot lays snap out as frames: a header record, one record
// per partition, and the output record. Everything inside a frame uses
// the shared checkpoint codec, so the file form is the checkpoint codec
// plus framing — one encoding, two persistence layers.
func encodeSnapshot(gen uint64, snap *Snapshot) []byte {
	var buf []byte
	var w temporal.Encoder
	w.Byte(recHeader)
	w.Uvarint(gen)
	w.Varint(int64(snap.Wave))
	w.Uvarint(uint64(snap.Waves))
	w.Uvarint(uint64(len(snap.Parts)))
	w.Uvarint(uint64(len(snap.Offsets)))
	for _, o := range snap.Offsets {
		w.String(o.Name)
		w.Varint(o.Pos)
	}
	buf = temporal.AppendFrame(buf, w.Bytes())
	for _, p := range snap.Parts {
		w.Reset()
		w.Byte(recPartition)
		w.String(p.Frag)
		w.Varint(int64(p.Part))
		w.BytesField(p.Ckpt)
		w.Events(p.Log)
		buf = temporal.AppendFrame(buf, w.Bytes())
	}
	w.Reset()
	w.Byte(recOut)
	w.Events(snap.Results)
	w.Events(snap.Pending)
	return temporal.AppendFrame(buf, w.Bytes())
}

// decodeSnapshot validates and decodes a checkpoint file. Every frame's
// checksum, every count and length, and the cross-checks against the
// manifest (gen, wave, waves, partition count) must agree.
func decodeSnapshot(gen uint64, wave temporal.Time, waves int, data []byte) (*Snapshot, error) {
	payload, rest, err := temporal.DecodeFrame(data)
	if err != nil {
		return nil, fmt.Errorf("header frame: %w", err)
	}
	hr := temporal.NewDecoder(payload)
	if err := hr.Expect(recHeader, "snapshot header"); err != nil {
		return nil, err
	}
	hgen := hr.Uvarint()
	hwave := temporal.Time(hr.Varint())
	hwaves := int(hr.Uvarint())
	nparts := int(hr.Uvarint())
	noffs := hr.Count("source offsets")
	snap := &Snapshot{Wave: wave, Waves: waves}
	for i := 0; i < noffs; i++ {
		snap.Offsets = append(snap.Offsets, SourceOffset{Name: hr.String(), Pos: hr.Varint()})
	}
	if err := hr.Done(); err != nil {
		return nil, err
	}
	if hgen != gen || hwave != wave || hwaves != waves {
		return nil, fmt.Errorf("header (gen %d wave %d waves %d) disagrees with manifest (gen %d wave %d waves %d)",
			hgen, hwave, hwaves, gen, wave, waves)
	}
	for i := 0; i < nparts; i++ {
		payload, rest, err = temporal.DecodeFrame(rest)
		if err != nil {
			return nil, fmt.Errorf("partition frame %d: %w", i, err)
		}
		pr := temporal.NewDecoder(payload)
		if err := pr.Expect(recPartition, "partition record"); err != nil {
			return nil, err
		}
		ps := PartitionState{
			Frag: pr.String(),
			Part: int(pr.Varint()),
			Ckpt: pr.BytesField(),
			Log:  pr.Events(),
		}
		if err := pr.Done(); err != nil {
			return nil, err
		}
		snap.Parts = append(snap.Parts, ps)
	}
	payload, rest, err = temporal.DecodeFrame(rest)
	if err != nil {
		return nil, fmt.Errorf("output frame: %w", err)
	}
	or := temporal.NewDecoder(payload)
	if err := or.Expect(recOut, "output record"); err != nil {
		return nil, err
	}
	snap.Results = or.Events()
	snap.Pending = or.Events()
	if err := or.Done(); err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after output frame", len(rest))
	}
	return snap, nil
}

// decodeState validates a state generation (CommitState) and returns its
// payload. The frame checksum, record tag, and manifest cross-checks must
// all agree — a streaming snapshot in the same slot fails here and is
// quarantined, enforcing the one-kind-per-directory contract.
func decodeState(gen uint64, wave temporal.Time, waves int, data []byte) ([]byte, error) {
	payload, rest, err := temporal.DecodeFrame(data)
	if err != nil {
		return nil, fmt.Errorf("state frame: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("state frame: %d trailing bytes", len(rest))
	}
	r := temporal.NewDecoder(payload)
	if err := r.Expect(recState, "state record"); err != nil {
		return nil, err
	}
	hgen := r.Uvarint()
	hwave := temporal.Time(r.Varint())
	hwaves := int(r.Uvarint())
	body := r.BytesField()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if hgen != gen || hwave != wave || hwaves != waves {
		return nil, fmt.Errorf("state record (gen %d wave %d waves %d) disagrees with manifest (gen %d wave %d waves %d)",
			hgen, hwave, hwaves, gen, wave, waves)
	}
	return body, nil
}
