package dur

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"timr/internal/obs"
	"timr/internal/temporal"
)

func testSnapshot(wave temporal.Time, waves int) *Snapshot {
	return &Snapshot{
		Wave:  wave,
		Waves: waves,
		Parts: []PartitionState{
			{
				Frag: "counts", Part: 0,
				Ckpt: []byte{0xE7, 0x01, 0x02, byte(wave)},
				Log: []temporal.Event{
					temporal.PointEvent(wave+1, temporal.Row{temporal.Int(int64(wave)), temporal.String("k")}),
				},
			},
			{Frag: "counts", Part: 1, Ckpt: []byte{0xE7, byte(waves)}},
			{Frag: "joins", Part: 0, Ckpt: nil, Log: nil},
		},
		Results: []temporal.Event{
			temporal.PointEvent(wave-1, temporal.Row{temporal.String("out"), temporal.Float(1.5)}),
		},
		Pending: []temporal.Event{
			temporal.PointEvent(wave+2, temporal.Row{temporal.Bool(true)}),
		},
		Offsets: []SourceOffset{
			{Name: "clicks", Pos: int64(wave) * 3},
			{Name: "reduced", Pos: int64(waves)},
		},
	}
}

// eqSnapshot compares snapshots by their canonical encoding, which is
// the equality the restart drill actually depends on.
func eqSnapshot(a, b *Snapshot) bool {
	return bytes.Equal(encodeSnapshot(0, a), encodeSnapshot(0, b))
}

func TestDurableStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	sc := obs.New("dur")
	st, err := OpenStore(dir, Options{Obs: sc})
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := st.Load(); err != nil || rec != nil {
		t.Fatalf("empty store: Load = %v, %v; want nil, nil", rec, err)
	}
	want := testSnapshot(100, 3)
	if err := st.Commit(want); err != nil {
		t.Fatal(err)
	}
	// Reopen cold, as a restarted process would.
	st2, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("Load found no generation after a successful commit")
	}
	if rec.Snap.Wave != 100 || rec.Snap.Waves != 3 {
		t.Fatalf("recovered wave %d/waves %d, want 100/3", rec.Snap.Wave, rec.Snap.Waves)
	}
	if !eqSnapshot(rec.Snap, want) {
		t.Fatal("recovered snapshot differs from committed one")
	}
	if got := sc.Counter("generations").Value(); got != 1 {
		t.Fatalf("generations counter = %d, want 1", got)
	}
	if got := sc.Counter("dur_bytes").Value(); got <= 0 {
		t.Fatalf("dur_bytes counter = %d, want > 0", got)
	}
}

func TestDurableStoreOffsetsRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(testSnapshot(100, 3)); err != nil {
		t.Fatal(err)
	}
	rec, err := st.Load()
	if err != nil || rec == nil {
		t.Fatalf("Load = %v, %v", rec, err)
	}
	if pos, ok := rec.Snap.Offset("reduced"); !ok || pos != 3 {
		t.Fatalf("Offset(reduced) = %d, %v; want 3, true", pos, ok)
	}
	if pos, ok := rec.Snap.Offset("clicks"); !ok || pos != 300 {
		t.Fatalf("Offset(clicks) = %d, %v; want 300, true", pos, ok)
	}
	if _, ok := rec.Snap.Offset("nope"); ok {
		t.Fatal("Offset on an unrecorded source must report absence")
	}
}

func TestDurableStoreStateRoundtrip(t *testing.T) {
	dir := t.TempDir()
	sc := obs.New("dur")
	st, err := OpenStore(dir, Options{Obs: sc})
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := st.LoadState(); err != nil || rec != nil {
		t.Fatalf("empty store: LoadState = %v, %v; want nil, nil", rec, err)
	}
	for day := 1; day <= 3; day++ {
		payload := []byte(fmt.Sprintf("refresh-state-day-%d", day))
		if err := st.CommitState(temporal.Time(day*1000), day, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen cold, as a restarted process would.
	st2, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st2.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("LoadState found no generation after successful commits")
	}
	if rec.Wave != 3000 || rec.Waves != 3 || string(rec.Payload) != "refresh-state-day-3" {
		t.Fatalf("recovered (wave %d, waves %d, %q); want newest day", rec.Wave, rec.Waves, rec.Payload)
	}
}

func TestDurableStoreStateQuarantineFallback(t *testing.T) {
	dir := t.TempDir()
	sc := obs.New("dur")
	st, err := OpenStore(dir, Options{Obs: sc})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CommitState(10, 1, []byte("day-1")); err != nil {
		t.Fatal(err)
	}
	if err := st.CommitState(20, 2, []byte("day-2")); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the newest generation's checkpoint file.
	names, _ := OS{}.ReadDir(dir)
	var newest string
	for _, n := range names {
		if strings.HasSuffix(n, ".ckpt") && n > newest {
			newest = n
		}
	}
	path := filepath.Join(dir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := st.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || string(rec.Payload) != "day-1" {
		t.Fatalf("LoadState after corruption = %v; want fallback to day-1", rec)
	}
	if got := sc.Counter("corrupt_detected").Value(); got != 1 {
		t.Fatalf("corrupt_detected = %d, want 1", got)
	}
	names, _ = OS{}.ReadDir(dir)
	quarantined := false
	for _, n := range names {
		if strings.HasPrefix(n, "corrupt-") {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("corrupt generation not quarantined (files: %v)", names)
	}
}

func TestDurableStoreStateRejectsSnapshotGeneration(t *testing.T) {
	// A streaming snapshot in a directory read as a state store must be
	// detected as the wrong kind (quarantined), never misparsed.
	dir := t.TempDir()
	st, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(testSnapshot(100, 3)); err != nil {
		t.Fatal(err)
	}
	rec, err := st.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("LoadState parsed a streaming snapshot: %v", rec)
	}
}

func TestDurableStoreLoadsNewestAndPrunes(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, Options{Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 6; w++ {
		if err := st.Commit(testSnapshot(temporal.Time(w*10), w)); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Snap.Wave != 60 {
		t.Fatalf("Load returned wave %v, want newest (60)", rec)
	}
	names, _ := OS{}.ReadDir(dir)
	manifests := 0
	for _, n := range names {
		if strings.HasSuffix(n, ".manifest") {
			manifests++
		}
	}
	if manifests != 3 {
		t.Fatalf("%d manifests on disk after prune, want Keep=3 (files: %v)", manifests, names)
	}
}

func TestDurableStoreQuarantinesCorruptGeneration(t *testing.T) {
	dir := t.TempDir()
	sc := obs.New("dur")
	st, err := OpenStore(dir, Options{Obs: sc})
	if err != nil {
		t.Fatal(err)
	}
	older := testSnapshot(10, 1)
	newer := testSnapshot(20, 2)
	if err := st.Commit(older); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(newer); err != nil {
		t.Fatal(err)
	}
	// Rot one byte in the newest generation's checkpoint file, inside a
	// frame payload.
	path := filepath.Join(dir, st.ckptName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("Load found nothing despite an intact older generation")
	}
	if rec.Gen != 0 || rec.Snap.Wave != 10 {
		t.Fatalf("Load returned gen %d wave %d, want fallback to gen 0 wave 10", rec.Gen, rec.Snap.Wave)
	}
	if !eqSnapshot(rec.Snap, older) {
		t.Fatal("fallback snapshot differs from the older commit")
	}
	if got := sc.Counter("corrupt_detected").Value(); got != 1 {
		t.Fatalf("corrupt_detected = %d, want 1", got)
	}
	names, _ := OS{}.ReadDir(dir)
	quarantined := false
	for _, n := range names {
		if strings.HasPrefix(n, "corrupt-") {
			quarantined = true
		}
		if n == st.manifestName(1) {
			t.Fatalf("corrupt generation's manifest still live: %v", names)
		}
	}
	if !quarantined {
		t.Fatalf("no corrupt-* files after quarantine: %v", names)
	}

	// A store reopened over the quarantined dir must never reuse gen 1.
	st2, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Commit(testSnapshot(30, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, st2.ckptName(2))); err != nil {
		t.Fatalf("post-quarantine commit did not use gen 2: %v", err)
	}
}

func TestDurableStoreSweepsTempDebris(t *testing.T) {
	dir := t.TempDir()
	// Simulate a kill -9 mid-commit: a temp file exists, no manifest.
	if err := os.WriteFile(filepath.Join(dir, "gen-00000000.ckpt.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gen-00000000.ckpt.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp debris survived OpenStore")
	}
	if rec, err := st.Load(); err != nil || rec != nil {
		t.Fatalf("Load over debris-only dir = %v, %v; want nil, nil", rec, err)
	}
}

func TestDurableStoreSurvivesInjectedFaults(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			sc := obs.New("dur")
			ffs := NewFaultFS(OS{}, FaultConfig{Rate: 0.3, Seed: seed})
			st, err := OpenStore(dir, Options{FS: ffs, Obs: sc, Retries: 16})
			if err != nil {
				t.Fatal(err)
			}
			var last *Snapshot
			committed := 0
			for w := 1; w <= 8; w++ {
				snap := testSnapshot(temporal.Time(w*10), w)
				if err := st.Commit(snap); err == nil {
					last = snap
					committed++
				}
			}
			if committed == 0 {
				t.Fatal("no commit succeeded at 30% fault rate with 16 retries")
			}
			rec, err := st.Load()
			if err != nil {
				t.Fatalf("Load under faults: %v", err)
			}
			if rec == nil {
				t.Fatal("Load found nothing despite successful commits")
			}
			// The recovery line must be the last successful commit, or an
			// earlier committed wave if later generations rotted — never a
			// wave that was not committed, never corrupt bytes.
			if rec.Snap.Wave > last.Wave {
				t.Fatalf("recovered wave %d beyond last committed %d", rec.Snap.Wave, last.Wave)
			}
			if rec.Snap.Wave == last.Wave && !eqSnapshot(rec.Snap, last) {
				t.Fatal("recovered snapshot differs from the committed one")
			}
			if ffs.Injected() == 0 {
				t.Fatal("fault injector never fired; test exercised nothing")
			}
			if sc.Counter("retries").Value() == 0 {
				t.Fatal("retry supervisor never engaged despite injected faults")
			}
		})
	}
}

func TestDurableStoreENOSPCSurfaces(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS{}, FaultConfig{Rate: 1, Seed: 42, Kinds: []string{FaultENOSPC}})
	st, err := OpenStore(dir, Options{FS: ffs, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = st.Commit(testSnapshot(10, 1))
	if err == nil {
		t.Fatal("commit succeeded on a permanently full disk")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("full-disk commit error not errors.Is ENOSPC: %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected fault lost its ErrInjected mark: %v", err)
	}
}

func TestDurableStoreTransferRoundtrip(t *testing.T) {
	dir := t.TempDir()
	sc := obs.New("dur")
	ffs := NewFaultFS(OS{}, FaultConfig{Rate: 0.25, Seed: 7})
	st, err := OpenStore(dir, Options{FS: ffs, Obs: sc, Retries: 16})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := bytes.Repeat([]byte{0xE7, 0x55, 0x01}, 300)
	got, err := st.Transfer("counts", 2, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ckpt) {
		t.Fatal("transferred checkpoint bytes differ")
	}
	if got := sc.Counter("transfer_bytes").Value(); got != int64(len(ckpt)) {
		t.Fatalf("transfer_bytes = %d, want %d", got, len(ckpt))
	}
	names, _ := OS{}.ReadDir(dir)
	for _, n := range names {
		if strings.HasPrefix(n, "transfer-") && !strings.HasSuffix(n, ".tmp") {
			t.Fatalf("transfer artifact not cleaned up: %v", names)
		}
	}
}

func TestFaultFSDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		dir := t.TempDir()
		ffs := NewFaultFS(OS{}, FaultConfig{Rate: 0.5, Seed: seed})
		var outcomes []string
		for i := 0; i < 20; i++ {
			f, err := ffs.Create(filepath.Join(dir, fmt.Sprintf("f%d", i)))
			if err != nil {
				outcomes = append(outcomes, "create:"+err.Error())
				continue
			}
			if _, err := f.Write([]byte("payload payload payload")); err != nil {
				outcomes = append(outcomes, "write:"+err.Error())
			} else if err := f.Sync(); err != nil {
				outcomes = append(outcomes, "sync:"+err.Error())
			} else {
				outcomes = append(outcomes, "ok")
			}
			f.Close()
		}
		return outcomes
	}
	a, b := run(9), run(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: same seed diverged: %q vs %q", i, a[i], b[i])
		}
	}
	c := run(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestFaultFSBitFlipIsSilent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frame.bin")
	payload := bytes.Repeat([]byte{0x5A}, 128)
	if err := os.WriteFile(path, temporal.AppendFrame(nil, payload), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS{}, FaultConfig{Rate: 1, Seed: 3, Kinds: []string{FaultBitFlip}})
	f, err := ffs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, _ := ffs.Size(path)
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("bit flip must be silent, got error %v", err)
	}
	if _, _, err := temporal.DecodeFrame(buf); err == nil {
		t.Fatal("flipped frame passed checksum validation")
	}
}
