package dur

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"syscall"

	"timr/internal/temporal"
)

// Deterministic I/O fault injection. FaultFS wraps another FS and makes
// each primitive operation — write, fsync, rename, read, open — draw its
// fate from a pure function of (seed, operation ordinal), mirroring the
// hash-chain draw of core.CrashConfig and Cluster.injectedFailure: the
// same seed over the same operation sequence injects exactly the same
// faults, so a chaotic durability run is exactly reproducible.
//
// The menu is the classic storage fault model:
//
//   - torn write: a prefix of the buffer reaches the file, then the
//     write errors — what a crash mid-write leaves behind;
//   - ENOSPC: the write errors having written nothing (the error wraps
//     syscall.ENOSPC, so errors.Is sees a full disk);
//   - failed fsync / failed rename: the commit protocol's ordering
//     points break individually;
//   - short read: ReadAt returns a prefix and an error;
//   - bit flip: ReadAt succeeds but one bit of the returned buffer is
//     inverted — silent corruption only checksums can catch.
//
// Every injected error wraps ErrInjected. Errors are transient in the
// retry sense: a retried operation draws a fresh ordinal and usually
// succeeds, which is exactly the behavior the store's retry supervisor
// is built against. Bit flips return no error at all; they surface (if
// ever) as frame checksum failures downstream.

// ErrInjected marks every error produced by FaultFS, so tests and the
// retry supervisor can tell injected faults from real I/O failures.
var ErrInjected = errors.New("dur: injected fault")

// Fault kinds, selectable via FaultConfig.Kinds.
const (
	FaultTornWrite = "torn-write"
	FaultENOSPC    = "enospc"
	FaultSync      = "sync"
	FaultRename    = "rename"
	FaultShortRead = "short-read"
	FaultBitFlip   = "bit-flip"
	FaultOpen      = "open"
)

// AllFaults lists every fault kind, the default injection menu.
var AllFaults = []string{
	FaultTornWrite, FaultENOSPC, FaultSync, FaultRename,
	FaultShortRead, FaultBitFlip, FaultOpen,
}

// FaultConfig tunes a FaultFS.
type FaultConfig struct {
	// Rate is the per-operation fault probability (0 disables).
	Rate float64
	// Seed makes the injection sequence reproducible.
	Seed int64
	// Kinds restricts the faults injected; nil means AllFaults.
	Kinds []string
}

// FaultFS wraps an FS with deterministic fault injection. It is safe for
// concurrent use (the operation ordinal is mutex-protected), though the
// injection sequence is only reproducible when the operation order is.
type FaultFS struct {
	inner FS
	cfg   FaultConfig
	kinds map[string]bool

	mu       sync.Mutex
	op       int64 // operation ordinal, the draw input
	injected int64 // faults injected so far
}

var _ FS = (*FaultFS)(nil)

// NewFaultFS wraps inner with deterministic fault injection.
func NewFaultFS(inner FS, cfg FaultConfig) *FaultFS {
	kinds := cfg.Kinds
	if kinds == nil {
		kinds = AllFaults
	}
	set := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return &FaultFS{inner: inner, cfg: cfg, kinds: set}
}

// Injected returns the number of faults injected so far.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// draw decides the fate of one operation: among the candidate kinds that
// the config enables, either none (no fault) or one chosen uniformly.
// The draw is a pure function of (Seed, ordinal) — see CrashConfig.
func (f *FaultFS) draw(candidates ...string) string {
	if f.cfg.Rate <= 0 {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	op := f.op
	f.op++
	enabled := candidates[:0:0]
	for _, k := range candidates {
		if f.kinds[k] {
			enabled = append(enabled, k)
		}
	}
	if len(enabled) == 0 {
		return ""
	}
	h := temporal.HashSeed
	h = temporal.Int(f.cfg.Seed).Hash(h)
	h = temporal.Int(op).Hash(h)
	r := rand.New(rand.NewSource(int64(h)))
	if r.Float64() >= f.cfg.Rate {
		return ""
	}
	f.injected++
	return enabled[r.Intn(len(enabled))]
}

func injected(kind string) error {
	if kind == FaultENOSPC {
		return fmt.Errorf("%w: %s: %w", ErrInjected, kind, syscall.ENOSPC)
	}
	return fmt.Errorf("%w: %s", ErrInjected, kind)
}

// MkdirAll implements FS (never fault-injected: directory creation
// happens once at open, not on the commit path).
func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if kind := f.draw(FaultOpen, FaultENOSPC); kind != "" {
		return nil, injected(kind)
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// CreateTemp implements FS.
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if kind := f.draw(FaultOpen, FaultENOSPC); kind != "" {
		return nil, injected(kind)
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if kind := f.draw(FaultOpen); kind != "" {
		return nil, injected(kind)
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if kind := f.draw(FaultRename); kind != "" {
		return injected(kind)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS (never fault-injected: cleanup failing would only
// mask the interesting faults with leftover-file noise).
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// RemoveAll implements FS.
func (f *FaultFS) RemoveAll(path string) error { return f.inner.RemoveAll(path) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// Size implements FS.
func (f *FaultFS) Size(name string) (int64, error) { return f.inner.Size(name) }

// faultFile threads per-call fault draws through a File's data plane.
type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	switch kind := ff.fs.draw(FaultTornWrite, FaultENOSPC); kind {
	case FaultTornWrite:
		n := len(p) / 2
		if n > 0 {
			if wn, err := ff.File.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, injected(kind)
	case FaultENOSPC:
		return 0, injected(kind)
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if kind := ff.fs.draw(FaultSync); kind != "" {
		return injected(kind)
	}
	return ff.File.Sync()
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	switch kind := ff.fs.draw(FaultShortRead, FaultBitFlip); kind {
	case FaultShortRead:
		n := len(p) / 2
		if n > 0 {
			if rn, err := ff.File.ReadAt(p[:n], off); err != nil {
				return rn, err
			}
		}
		return n, injected(kind)
	case FaultBitFlip:
		n, err := ff.File.ReadAt(p, off)
		if n > 0 {
			// Flip one deterministic bit of the returned buffer: silent
			// corruption that only the frame checksum can catch.
			h := temporal.Int(off).Hash(temporal.HashSeed)
			p[int(h%uint64(n))] ^= 1 << (h % 8)
		}
		return n, err
	}
	return ff.File.ReadAt(p, off)
}
