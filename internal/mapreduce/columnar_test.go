package mapreduce

import (
	"reflect"
	"testing"

	"timr/internal/temporal"
)

func columnarTestSchema() *Schema {
	return temporal.NewSchema(
		temporal.Field{Name: "T", Kind: temporal.KindInt},
		temporal.Field{Name: "K", Kind: temporal.KindInt},
		temporal.Field{Name: "U", Kind: temporal.KindString},
	)
}

// columnarTestRows is time-ordered on column 0 (the run key), keyed on
// column 1, with a dictionary-friendly string column 2.
func columnarTestRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			temporal.Int(int64(i)),
			temporal.Int(int64(i % 13)),
			temporal.String([]string{"adv-a", "adv-b", "adv-c"}[i%3]),
		}
	}
	return rows
}

// columnarStage partitions by K with the declared-columns fast path and
// emits every input row verbatim in segment order — so output bytes pin
// routing, run order, and run sortedness, not just multiset equality.
func columnarStage(in, out string, nparts int) Stage {
	return Stage{
		Name: "colshuffle", Inputs: []string{in}, Output: out, OutSchema: columnarTestSchema(),
		NumPartitions: nparts,
		PartitionCols: [][]int{{1}},
		RunKey:        func(r Row, src int) int64 { return r[0].AsInt() },
		RunKeyCols:    []int{0},
		ReduceSegments: func(part int, in [][]Segment, emit func(Row)) error {
			for _, segs := range in {
				rd := NewRowReader(segs...)
				for {
					r, ok, err := rd.Next()
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					emit(r)
				}
			}
			return nil
		},
	}
}

// TestColumnarInputMatchesRowInput pins the tentpole equivalence: a
// stage fed the same data as a columnar batch and as plain rows emits
// bit-identical output, across resident, partially spilled, and
// fully spilled budgets, serial and parallel map phases.
func TestColumnarInputMatchesRowInput(t *testing.T) {
	rows := columnarTestRows(5000)
	run := func(columnar bool, budget int64, workers int) ([]Row, *JobStat) {
		c := NewCluster(Config{Machines: 4, MemoryBudget: budget, MapWorkers: workers})
		defer c.Close()
		if columnar {
			cb := temporal.ColBatchFromRows(rows, 3)
			c.FS.Write("in", SingleColumnarPartition(columnarTestSchema(), cb, true))
		} else {
			c.FS.Write("in", SinglePartition(columnarTestSchema(), rows))
		}
		stat, err := c.Run(columnarStage("in", "out", 4))
		if err != nil {
			t.Fatal(err)
		}
		return c.FS.MustRead("out").Flatten(), stat
	}
	want, _ := run(false, 0, 1)
	if len(want) != len(rows) {
		t.Fatalf("reference emitted %d rows, want %d", len(want), len(rows))
	}
	for _, budget := range []int64{0, 512, SpillAll} {
		for _, workers := range []int{1, 4} {
			got, _ := run(true, budget, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("columnar budget=%d workers=%d differs from resident row run", budget, workers)
			}
			gotRows, _ := run(false, budget, workers)
			if !reflect.DeepEqual(gotRows, want) {
				t.Fatalf("row budget=%d workers=%d differs from resident row run", budget, workers)
			}
		}
	}
}

// TestColumnarFastPathSortednessAnnotation checks the columnar map path
// annotates run sortedness from the run-key column exactly like the row
// path does from the RunKey closure.
func TestColumnarFastPathSortednessAnnotation(t *testing.T) {
	ordered := columnarTestRows(300)
	reversed := make([]Row, len(ordered))
	for i := range ordered {
		reversed[i] = ordered[len(ordered)-1-i]
	}
	run := func(rows []Row) (sorted, total int) {
		c := NewCluster(Config{Machines: 2, MemoryBudget: SpillAll})
		defer c.Close()
		cb := temporal.ColBatchFromRows(rows, 3)
		c.FS.Write("in", SingleColumnarPartition(columnarTestSchema(), cb, true))
		st := columnarStage("in", "out", 2)
		st.ReduceSegments = func(part int, in [][]Segment, emit func(Row)) error {
			for _, segs := range in {
				for i := range segs {
					total++
					if segs[i].Sorted() {
						sorted++
					}
				}
			}
			return nil
		}
		if _, err := c.Run(st); err != nil {
			t.Fatal(err)
		}
		return sorted, total
	}
	if sorted, total := run(ordered); total == 0 || sorted != total {
		t.Fatalf("ordered columnar input: %d/%d runs marked sorted", sorted, total)
	}
	if sorted, total := run(reversed); total == 0 || sorted != 0 {
		t.Fatalf("reversed columnar input: %d/%d runs marked sorted", sorted, total)
	}
}

// TestPartitionColsExclusiveWithPartition pins the Stage-validation
// contract: declaring both the closure and the columns is a config bug.
func TestPartitionColsExclusiveWithPartition(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	defer c.Close()
	c.FS.Write("in", SinglePartition(columnarTestSchema(), columnarTestRows(10)))
	st := columnarStage("in", "out", 2)
	st.Partition = PartitionByCols([][]int{{1}})
	if _, err := c.Run(st); err == nil {
		t.Fatal("stage with both Partition and PartitionCols must be rejected")
	}
}
