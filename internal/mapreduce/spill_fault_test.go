package mapreduce

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"timr/internal/dur"
	"timr/internal/temporal"
)

func spillRow(i int) Row {
	return Row{temporal.Int(int64(i)), temporal.String("payload")}
}

func TestSpillWriteENOSPCSurfaces(t *testing.T) {
	// A full disk during segment writes must surface as a distinct,
	// errors.Is-able write error — not vanish into Close/Remove handling.
	// The fault draw is per operation, so at rate 0.9 some seeds let the
	// creation through and fail the writes; assert the write path on the
	// first such seed (deterministic: same seeds, same draws, every run).
	rows := make([]Row, 0, 8192)
	for i := 0; i < 8192; i++ {
		rows = append(rows, spillRow(i))
	}
	for seed := int64(1); seed <= 20; seed++ {
		ffs := dur.NewFaultFS(dur.OS{}, dur.FaultConfig{Rate: 0.9, Seed: seed, Kinds: []string{dur.FaultENOSPC}})
		sf, err := createSpillFile(ffs, t.TempDir(), &spillIO{})
		if err != nil {
			continue // this seed fills the disk at creation; try the next
		}
		// A run larger than the 64KB bufio layer forces real file writes,
		// which hit the injected ENOSPC.
		_, werr := sf.writeSegment(rows, false)
		if werr == nil {
			werr = sf.seal()
		}
		sf.close()
		if werr == nil {
			continue // the ~10% pass rate let every write through; next seed
		}
		if !errors.Is(werr, syscall.ENOSPC) {
			t.Fatalf("seed %d: spill error not errors.Is ENOSPC: %v", seed, werr)
		}
		if !strings.Contains(werr.Error(), "spill") {
			t.Fatalf("seed %d: spill error lost its path context: %v", seed, werr)
		}
		return
	}
	t.Fatal("no seed exercised the write-side ENOSPC path")
}

func TestSpillSealSurfacesSyncFailure(t *testing.T) {
	ffs := dur.NewFaultFS(dur.OS{}, dur.FaultConfig{Rate: 1, Seed: 2, Kinds: []string{dur.FaultSync}})
	sf, err := createSpillFile(ffs, t.TempDir(), &spillIO{})
	if err != nil {
		t.Fatal(err)
	}
	defer sf.close()
	if _, err := sf.writeSegment([]Row{spillRow(1)}, false); err != nil {
		t.Fatal(err)
	}
	err = sf.seal()
	if err == nil {
		t.Fatal("seal swallowed the fsync failure")
	}
	if !strings.Contains(err.Error(), "spill sync") {
		t.Fatalf("sync failure not distinctly wrapped: %v", err)
	}
	if !errors.Is(err, dur.ErrInjected) {
		t.Fatalf("injected fault lost its mark: %v", err)
	}
}

func TestSpillClusterENOSPC(t *testing.T) {
	// The same through the cluster seam: Config.SpillFS threads the
	// fault-injecting FS into production spill paths, and a full disk
	// fails the job with a diagnosable error instead of corrupt output.
	ffs := dur.NewFaultFS(dur.OS{}, dur.FaultConfig{Rate: 1, Seed: 3, Kinds: []string{dur.FaultENOSPC}})
	c := NewCluster(Config{Machines: 2, MemoryBudget: SpillAll, SpillDir: t.TempDir(), SpillFS: ffs})
	defer c.Close()
	if _, err := c.newSpillFile(); err == nil {
		t.Fatal("spill file creation on a full disk did not error")
	} else if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("cluster spill error not errors.Is ENOSPC: %v", err)
	}
}

func TestSweepStaleSpillDirs(t *testing.T) {
	base := t.TempDir()
	stale1, err := os.MkdirTemp(base, "timr-spill-")
	if err != nil {
		t.Fatal(err)
	}
	stale2, err := os.MkdirTemp(base, "timr-spill-")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale1, "seg-1.spill"), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-matching dir and a plain file matching the pattern: untouched.
	keepDir := filepath.Join(base, "keep-me")
	if err := os.Mkdir(keepDir, 0o755); err != nil {
		t.Fatal(err)
	}
	keepFile := filepath.Join(base, "timr-spill-notadir")
	if err := os.WriteFile(keepFile, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := SweepStaleSpillDirs(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("swept %d dirs (%v), want 2", len(removed), removed)
	}
	for _, d := range []string{stale1, stale2} {
		if _, err := os.Stat(d); !os.IsNotExist(err) {
			t.Fatalf("stale dir %s survived the sweep", d)
		}
	}
	if _, err := os.Stat(keepDir); err != nil {
		t.Fatal("sweep removed a non-matching directory")
	}
	if _, err := os.Stat(keepFile); err != nil {
		t.Fatal("sweep removed a plain file")
	}

	// Idempotent on a clean parent.
	removed, err = SweepStaleSpillDirs(base)
	if err != nil || len(removed) != 0 {
		t.Fatalf("second sweep = %v, %v; want none", removed, err)
	}
}
