package mapreduce

import (
	"fmt"
	"os"
	"path/filepath"
)

// SweepStaleSpillDirs removes leftover "timr-spill-*" directories under
// parent (the OS temp dir when parent is empty) and returns the paths
// removed. A process killed mid-job — kill -9, OOM — leaks its lazily
// created spill directory, since Cluster.Close never runs; this is the
// opt-in startup sweep that reclaims them.
//
// Opt-in because it is process-blind: a sweep while another timr job is
// live on the same SpillDir would delete that job's active spill files.
// Callers own that exclusion (the timr CLI gates it behind a flag).
func SweepStaleSpillDirs(parent string) ([]string, error) {
	if parent == "" {
		parent = os.TempDir()
	}
	matches, err := filepath.Glob(filepath.Join(parent, "timr-spill-*"))
	if err != nil {
		return nil, fmt.Errorf("mapreduce: sweep spill dirs: %w", err)
	}
	var removed []string
	for _, m := range matches {
		fi, err := os.Lstat(m)
		if err != nil || !fi.IsDir() {
			continue // gone already, or a stray file we did not create
		}
		if err := os.RemoveAll(m); err != nil {
			return removed, fmt.Errorf("mapreduce: sweep spill dirs: %w", err)
		}
		removed = append(removed, m)
	}
	return removed, nil
}
