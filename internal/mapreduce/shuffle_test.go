package mapreduce

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"timr/internal/temporal"
)

// identityStage routes everything to one partition and emits rows in the
// order received — output row order is exactly the shuffled row order, so
// determinism tests can compare shuffles through the FS.
func identityStage(in, out string) Stage {
	return Stage{
		Name: "identity", Inputs: []string{in}, Output: out, OutSchema: kvSchema(),
		NumPartitions: 1,
		Partition:     func(Row, int) uint64 { return 0 },
		Reduce: func(part int, in [][]Row, emit func(Row)) error {
			for _, rows := range in {
				for _, r := range rows {
					emit(r)
				}
			}
			return nil
		},
	}
}

// multiPartitionInput builds a dataset with several partitions so the map
// phase produces several tasks even below the chunking threshold.
func multiPartitionInput(nparts, rowsPer int) *Dataset {
	ds := NewDataset(kvSchema(), nparts)
	v := 0
	for p := 0; p < nparts; p++ {
		rows := make([]Row, rowsPer)
		for i := range rows {
			rows[i] = Row{temporal.Int(int64(v % 13)), temporal.Int(int64(v))}
			v++
		}
		ds.Append(p, rows)
	}
	return ds
}

func TestParallelMapByteIdenticalToSerial(t *testing.T) {
	// The shuffled row order — and therefore every downstream dataset —
	// must not depend on the map worker count.
	run := func(workers int) *Dataset {
		c := NewCluster(Config{Machines: 8, MapWorkers: workers})
		c.FS.Write("in", multiPartitionInput(7, 500))
		if _, err := c.Run(identityStage("in", "out")); err != nil {
			t.Fatal(err)
		}
		return c.FS.MustRead("out")
	}
	serial := run(1)
	for _, workers := range []int{2, 3, 8} {
		if got := run(workers); !reflect.DeepEqual(serial, got) {
			t.Fatalf("MapWorkers=%d shuffle differs from serial", workers)
		}
	}
}

func TestMapDeterministicAcrossGOMAXPROCS(t *testing.T) {
	// Same job under different GOMAXPROCS must produce byte-identical FS
	// datasets (the default worker count follows GOMAXPROCS).
	run := func(procs int) *Dataset {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		c := NewCluster(Config{Machines: 8})
		c.FS.Write("in", multiPartitionInput(6, 700))
		if _, err := c.Run(sumStage("in", "out", 4), identityStage("out", "final")); err != nil {
			t.Fatal(err)
		}
		return c.FS.MustRead("final")
	}
	ref := run(1)
	for _, procs := range []int{2, 4} {
		if got := run(procs); !reflect.DeepEqual(ref, got) {
			t.Fatalf("GOMAXPROCS=%d produced a different dataset", procs)
		}
	}
}

func TestShuffleThreadsRunBoundaries(t *testing.T) {
	// Each input partition arrives at the reducer as one run (below the
	// chunking threshold), in input-partition order.
	c := NewCluster(Config{Machines: 4})
	in := NewDataset(kvSchema(), 4)
	in.Append(0, []Row{{temporal.Int(1), temporal.Int(10)}, {temporal.Int(2), temporal.Int(20)}})
	in.Append(1, []Row{{temporal.Int(3), temporal.Int(30)}})
	// partition 2 stays empty: empty partitions contribute no run
	in.Append(3, []Row{{temporal.Int(4), temporal.Int(40)}, {temporal.Int(5), temporal.Int(50)}, {temporal.Int(6), temporal.Int(60)}})
	c.FS.Write("in", in)
	var gotRuns [][]int
	var gotRows []Row
	st := Stage{
		Name: "runs", Inputs: []string{"in"}, Output: "out", OutSchema: kvSchema(),
		NumPartitions: 1,
		Partition:     func(Row, int) uint64 { return 0 },
		ReduceRuns: func(part int, in [][]Row, runs [][]int, emit func(Row)) error {
			gotRuns = append([][]int(nil), runs...)
			gotRows = append([]Row(nil), in[0]...)
			return nil
		},
	}
	if _, err := c.Run(st); err != nil {
		t.Fatal(err)
	}
	if want := [][]int{{2, 1, 3}}; !reflect.DeepEqual(gotRuns, want) {
		t.Fatalf("runs = %v, want %v", gotRuns, want)
	}
	if !reflect.DeepEqual(gotRows, in.Flatten()) {
		t.Fatalf("reducer input order differs from input-partition order")
	}
}

func TestMapChunkingSplitsLargePartitions(t *testing.T) {
	// A partition larger than mapChunkRows must become several map tasks,
	// several runs — and still shuffle in the original order.
	n := mapChunkRows + mapChunkRows/2
	rows := kvRows(n)
	c := NewCluster(Config{Machines: 4})
	c.FS.Write("in", SinglePartition(kvSchema(), rows))
	var gotRuns []int
	st := Stage{
		Name: "chunks", Inputs: []string{"in"}, Output: "out", OutSchema: kvSchema(),
		NumPartitions: 1,
		Partition:     func(Row, int) uint64 { return 0 },
		ReduceRuns: func(part int, in [][]Row, runs [][]int, emit func(Row)) error {
			gotRuns = append([]int(nil), runs[0]...)
			for _, r := range in[0] {
				emit(r)
			}
			return nil
		},
	}
	stat, err := c.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{mapChunkRows, mapChunkRows / 2}; !reflect.DeepEqual(gotRuns, want) {
		t.Fatalf("runs = %v, want %v", gotRuns, want)
	}
	if got := len(stat.Stages[0].Maps); got != 2 {
		t.Fatalf("map tasks = %d, want 2", got)
	}
	if !reflect.DeepEqual(c.FS.MustRead("out").Flatten(), rows) {
		t.Fatal("chunked shuffle reordered rows")
	}
}

func TestParallelMapSpeedup(t *testing.T) {
	// The tentpole claim: >= 2x wall-clock on the map phase at 1M rows
	// with 4+ cores. Only measurable where real parallelism exists; the
	// byte-identity of the two paths is checked unconditionally above.
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs GOMAXPROCS >= 4 (have %d)", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("1M-row timing test")
	}
	ds, _ := benchShuffleInput()
	st := Stage{
		Name: "speedup", Inputs: []string{"in"}, Output: "out", OutSchema: ds.Schema,
		NumPartitions: 64,
		Partition:     PartitionByCols([][]int{{0, 2}}),
		Reduce:        func(part int, in [][]Row, emit func(Row)) error { return nil },
	}
	wall := func(workers int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			c := NewCluster(Config{Machines: 64, MapWorkers: workers})
			c.FS.Write("in", ds)
			t0 := time.Now()
			if _, err := c.Run(st); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	serial, parallel := wall(1), wall(0)
	t.Logf("serial %v, parallel %v (%.2fx)", serial, parallel, float64(serial)/float64(parallel))
	if float64(serial) < 2*float64(parallel) {
		t.Errorf("parallel map %.2fx over serial, want >= 2x", float64(serial)/float64(parallel))
	}
}

func TestMakespanEdgeCases(t *testing.T) {
	// Zero tasks: only the shuffle charge remains.
	empty := &StageStat{ShuffleRows: 1000}
	if got, want := empty.Makespan(10, time.Microsecond), 100*time.Microsecond; got != want {
		t.Errorf("shuffle-only makespan = %v, want %v", got, want)
	}
	// m <= 0 clamps to one machine.
	one := &StageStat{Tasks: []TaskStat{{Duration: time.Second}, {Duration: time.Second}}}
	if got, want := one.Makespan(0, 0), 2*time.Second; got != want {
		t.Errorf("m=0 makespan = %v, want %v", got, want)
	}
	// One machine serializes everything, including the map phase.
	full := &StageStat{
		Maps:  []TaskStat{{Duration: 100 * time.Millisecond}, {Duration: 200 * time.Millisecond}},
		Tasks: []TaskStat{{Duration: time.Second}, {Duration: 2 * time.Second}},
	}
	if got, want := full.Makespan(1, 0), 3300*time.Millisecond; got != want {
		t.Errorf("1-machine makespan = %v, want %v", got, want)
	}
	// Two machines: map LPT = 200ms, reduce LPT = 2s; phases are barriers.
	if got, want := full.Makespan(2, 0), 2200*time.Millisecond; got != want {
		t.Errorf("2-machine makespan = %v, want %v", got, want)
	}
	// Retry-heavy: a single task dominated by retries gates the stage on
	// any machine count.
	retry := &StageStat{Tasks: []TaskStat{
		{Duration: 10 * time.Millisecond, RetryTime: 5 * time.Second},
		{Duration: 20 * time.Millisecond},
		{Duration: 30 * time.Millisecond},
	}}
	if got := retry.Makespan(3, 0); got < 5*time.Second {
		t.Errorf("retry-heavy makespan = %v, want >= 5s", got)
	}
}

func TestRowSkewEdgeCases(t *testing.T) {
	if got := (&StageStat{}).RowSkew(); got != 0 {
		t.Errorf("skew of empty stage = %v, want 0", got)
	}
	zeroRows := &StageStat{Tasks: []TaskStat{{Rows: 0}, {Rows: 0}}}
	if got := zeroRows.RowSkew(); got != 0 {
		t.Errorf("skew with zero mean = %v, want 0", got)
	}
	balanced := &StageStat{Tasks: []TaskStat{{Rows: 10}, {Rows: 10}, {Rows: 10}}}
	if got := balanced.RowSkew(); got != 1.0 {
		t.Errorf("balanced skew = %v, want 1.0", got)
	}
	skewed := &StageStat{Tasks: []TaskStat{{Rows: 30}, {Rows: 0}, {Rows: 0}}}
	if got := skewed.RowSkew(); got != 3.0 {
		t.Errorf("skewed RowSkew = %v, want 3.0", got)
	}
}

func TestMapPhaseAccounting(t *testing.T) {
	c := NewCluster(Config{Machines: 4})
	c.FS.Write("in", multiPartitionInput(3, 100))
	stat, err := c.Run(sumStage("in", "out", 4))
	if err != nil {
		t.Fatal(err)
	}
	st := stat.Stages[0]
	if got, want := len(st.Maps), 3; got != want {
		t.Fatalf("map tasks = %d, want %d (one per input partition)", got, want)
	}
	rows := 0
	for _, m := range st.Maps {
		if m.Attempts != 1 || m.RetryTime != 0 {
			t.Errorf("map task %+v: maps never retry", m)
		}
		rows += m.Rows
	}
	if rows != st.InputRows || rows != 300 {
		t.Errorf("map rows = %d, InputRows = %d, want 300", rows, st.InputRows)
	}
	if st.TotalMapTime() <= 0 {
		t.Error("TotalMapTime must be positive after a real run")
	}
}
