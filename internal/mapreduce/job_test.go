package mapreduce

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"timr/internal/obs"
	"timr/internal/temporal"
)

func kvSchema() *Schema {
	return temporal.NewSchema(
		temporal.Field{Name: "K", Kind: temporal.KindInt},
		temporal.Field{Name: "V", Kind: temporal.KindInt},
	)
}

func kvRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{temporal.Int(int64(i % 7)), temporal.Int(int64(i))}
	}
	return rows
}

// sumStage groups by K and sums V — the canonical word-count-shaped job.
func sumStage(in, out string, nparts int) Stage {
	return Stage{
		Name: "sum", Inputs: []string{in}, Output: out, OutSchema: kvSchema(),
		NumPartitions: nparts,
		Partition:     PartitionByCols([][]int{{0}}),
		Reduce: func(part int, in [][]Row, emit func(Row)) error {
			sums := map[int64]int64{}
			for _, r := range in[0] {
				sums[r[0].AsInt()] += r[1].AsInt()
			}
			keys := make([]int64, 0, len(sums))
			for k := range sums {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				emit(Row{temporal.Int(k), temporal.Int(sums[k])})
			}
			return nil
		},
	}
}

func expectSums(t *testing.T, fs *FS, name string, n int) {
	t.Helper()
	got := map[int64]int64{}
	for _, r := range fs.MustRead(name).Flatten() {
		got[r[0].AsInt()] = r[1].AsInt()
	}
	want := map[int64]int64{}
	for i := 0; i < n; i++ {
		want[int64(i%7)] += int64(i)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d: got %d, want %d", k, got[k], v)
		}
	}
}

func TestFSBasics(t *testing.T) {
	fs := NewFS()
	if _, err := fs.Read("nope"); err == nil {
		t.Error("Read of missing dataset must error")
	}
	ds := SinglePartition(kvSchema(), kvRows(10))
	fs.Write("a", ds)
	fs.Write("b", ds)
	if got := fs.List(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("List = %v", got)
	}
	if fs.MustRead("a").Rows() != 10 {
		t.Error("Rows")
	}
	fs.Delete("a")
	if _, err := fs.Read("a"); err == nil {
		t.Error("deleted dataset still readable")
	}
}

func TestDatasetFlatten(t *testing.T) {
	d := NewDataset(kvSchema(), 2)
	d.Append(0, kvRows(3))
	d.Append(1, kvRows(2))
	if d.Rows() != 5 || len(d.Flatten()) != 5 {
		t.Errorf("Rows/Flatten mismatch")
	}
}

func TestSimpleJob(t *testing.T) {
	c := NewCluster(Config{Machines: 4})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(100)))
	stat, err := c.Run(sumStage("in", "out", 4))
	if err != nil {
		t.Fatal(err)
	}
	expectSums(t, c.FS, "out", 100)
	st := stat.Stages[0]
	if st.InputRows != 100 || st.ShuffleRows != 100 {
		t.Errorf("accounting: %+v", st)
	}
	if st.OutputRows != 7 {
		t.Errorf("OutputRows = %d", st.OutputRows)
	}
}

func TestPartitionGrouping(t *testing.T) {
	// Rows with the same key must always land in the same reducer call.
	c := NewCluster(Config{Machines: 8})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(200)))
	seen := map[int64]int{} // key -> partition
	stage := Stage{
		Name: "check", Inputs: []string{"in"}, Output: "out", OutSchema: kvSchema(),
		NumPartitions: 5,
		Partition:     PartitionByCols([][]int{{0}}),
		Reduce: func(part int, in [][]Row, emit func(Row)) error {
			for _, r := range in[0] {
				emit(Row{r[0], temporal.Int(int64(part))})
			}
			return nil
		},
	}
	if _, err := c.Run(stage); err != nil {
		t.Fatal(err)
	}
	for _, r := range c.FS.MustRead("out").Flatten() {
		k, p := r[0].AsInt(), int(r[1].AsInt())
		if prev, ok := seen[k]; ok && prev != p {
			t.Fatalf("key %d split across partitions %d and %d", k, prev, p)
		}
		seen[k] = p
	}
}

func TestMultiStageJob(t *testing.T) {
	c := NewCluster(Config{Machines: 4})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(50)))
	// Stage 1: identity repartition; stage 2: sum.
	ident := Stage{
		Name: "ident", Inputs: []string{"in"}, Output: "mid", OutSchema: kvSchema(),
		Partition: PartitionByCols([][]int{{1}}),
		Reduce: func(part int, in [][]Row, emit func(Row)) error {
			for _, r := range in[0] {
				emit(r)
			}
			return nil
		},
	}
	stat, err := c.Run(ident, sumStage("mid", "out", 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(stat.Stages) != 2 {
		t.Fatalf("stages = %d", len(stat.Stages))
	}
	expectSums(t, c.FS, "out", 50)
}

func TestMultipleInputs(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	c.FS.Write("a", SinglePartition(kvSchema(), kvRows(10)))
	c.FS.Write("b", SinglePartition(kvSchema(), kvRows(20)))
	stage := Stage{
		Name: "join", Inputs: []string{"a", "b"}, Output: "out", OutSchema: kvSchema(),
		NumPartitions: 3,
		Partition:     PartitionByCols([][]int{{0}, {0}}),
		Reduce: func(part int, in [][]Row, emit func(Row)) error {
			emit(Row{temporal.Int(int64(len(in[0]))), temporal.Int(int64(len(in[1])))})
			return nil
		},
	}
	if _, err := c.Run(stage); err != nil {
		t.Fatal(err)
	}
	var a, b int64
	for _, r := range c.FS.MustRead("out").Flatten() {
		a += r[0].AsInt()
		b += r[1].AsInt()
	}
	if a != 10 || b != 20 {
		t.Errorf("per-source rows: %d, %d", a, b)
	}
}

func TestFailureInjectionRetriesToSameOutput(t *testing.T) {
	// The repeatability property: with deterministic reducers, output
	// under failures+restarts must equal the failure-free output.
	run := func(failRate float64, seed int64) map[int64]int64 {
		c := NewCluster(Config{Machines: 4, FailureRate: failRate, Seed: seed, MaxAttempts: 50})
		c.FS.Write("in", SinglePartition(kvSchema(), kvRows(100)))
		stat, err := c.Run(sumStage("in", "out", 4))
		if err != nil {
			t.Fatal(err)
		}
		if failRate > 0 {
			total := 0
			for _, s := range stat.Stages {
				total += s.Failures
			}
			if total == 0 {
				t.Log("warning: no failures injected at rate", failRate)
			}
		}
		out := map[int64]int64{}
		for _, r := range c.FS.MustRead("out").Flatten() {
			out[r[0].AsInt()] = r[1].AsInt()
		}
		return out
	}
	clean := run(0, 1)
	for seed := int64(1); seed <= 5; seed++ {
		faulty := run(0.5, seed)
		if len(faulty) != len(clean) {
			t.Fatalf("seed %d: divergent output size", seed)
		}
		for k, v := range clean {
			if faulty[k] != v {
				t.Fatalf("seed %d: key %d: %d != %d", seed, k, faulty[k], v)
			}
		}
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(10)))
	stage := Stage{
		Name: "boom", Inputs: []string{"in"}, Output: "out", OutSchema: kvSchema(),
		NumPartitions: 1,
		Partition:     func(Row, int) uint64 { return 0 },
		Reduce: func(int, [][]Row, func(Row)) error {
			return fmt.Errorf("kaput")
		},
	}
	if _, err := c.Run(stage); err == nil {
		t.Fatal("reducer error must fail the job")
	}
}

func TestPanickingReducerIsolated(t *testing.T) {
	// A reducer that panics on its first attempts must be retried like an
	// injected machine failure — output intact, failure surfaced in
	// StageStat.Failures with RetryTime charged — not crash the process.
	c := NewCluster(Config{Machines: 2, MaxAttempts: 5})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(20)))
	attempts := 0
	base := sumStage("in", "out", 1)
	inner := base.Reduce
	base.Reduce = func(part int, in [][]Row, emit func(Row)) error {
		attempts++
		if attempts <= 2 {
			panic("poison row")
		}
		return inner(part, in, emit)
	}
	stat, err := c.Run(base)
	if err != nil {
		t.Fatalf("recoverable panics must not fail the job: %v", err)
	}
	expectSums(t, c.FS, "out", 20)
	failures := 0
	var retry time.Duration
	for _, s := range stat.Stages {
		failures += s.Failures
		retry += s.TotalRetryTime()
	}
	if failures != 2 {
		t.Fatalf("Failures = %d, want 2 (one per panicked attempt)", failures)
	}
	if retry <= 0 {
		t.Fatal("panicked attempts must be charged RetryTime")
	}
}

func TestAlwaysPanickingReducerFailsJob(t *testing.T) {
	c := NewCluster(Config{Machines: 1, MaxAttempts: 3})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(5)))
	stage := Stage{
		Name: "boom", Inputs: []string{"in"}, Output: "out", OutSchema: kvSchema(),
		NumPartitions: 1,
		Partition:     func(Row, int) uint64 { return 0 },
		Reduce: func(int, [][]Row, func(Row)) error {
			panic("always")
		},
	}
	_, err := c.Run(stage)
	if err == nil {
		t.Fatal("an always-panicking reducer must exhaust attempts and fail the job")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("job error should carry the panic message, got: %v", err)
	}
}

func TestPanickingPartitionFnFailsJobCleanly(t *testing.T) {
	c := NewCluster(Config{Machines: 2})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(10)))
	stage := sumStage("in", "out", 2)
	stage.Partition = func(r Row, src int) uint64 {
		if r[1].AsInt() == 7 {
			panic("poison row in map")
		}
		return uint64(r[0].AsInt())
	}
	_, err := c.Run(stage)
	if err == nil {
		t.Fatal("a panicking partition fn must fail the job with an error")
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("job error should carry the panic message, got: %v", err)
	}
}

func TestPersistentFailureExhaustsAttempts(t *testing.T) {
	c := NewCluster(Config{Machines: 1, FailureRate: 1.0, MaxAttempts: 3, Seed: 7})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(5)))
	_, err := c.Run(sumStage("in", "out", 1))
	if err == nil {
		t.Fatal("always-failing reducer must exhaust attempts")
	}
}

func TestMissingInputErrors(t *testing.T) {
	c := NewCluster(Config{Machines: 1})
	if _, err := c.Run(sumStage("ghost", "out", 1)); err == nil {
		t.Fatal("missing input must error")
	}
}

func TestEmptyPartitionsSkipped(t *testing.T) {
	c := NewCluster(Config{Machines: 4})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(3))) // keys 0,1,2 only
	stat, err := c.Run(sumStage("in", "out", 64))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(stat.Stages[0].Tasks); got > 3 {
		t.Errorf("expected <= 3 reducer tasks, got %d", got)
	}
}

func TestMakespanScaling(t *testing.T) {
	st := StageStat{ShuffleRows: 0}
	for i := 0; i < 16; i++ {
		st.Tasks = append(st.Tasks, TaskStat{Duration: time.Second})
	}
	if got := st.Makespan(1, 0); got != 16*time.Second {
		t.Errorf("1 machine: %v", got)
	}
	if got := st.Makespan(4, 0); got != 4*time.Second {
		t.Errorf("4 machines: %v", got)
	}
	if got := st.Makespan(16, 0); got != time.Second {
		t.Errorf("16 machines: %v", got)
	}
	if got := st.Makespan(100, 0); got != time.Second {
		t.Errorf("more machines than tasks: %v", got)
	}
}

func TestMakespanShuffleCost(t *testing.T) {
	st := StageStat{ShuffleRows: 1000}
	st.Tasks = append(st.Tasks, TaskStat{Duration: time.Millisecond})
	with := st.Makespan(2, time.Microsecond)
	without := st.Makespan(2, 0)
	if with <= without {
		t.Error("shuffle cost not charged")
	}
	if with-without != 500*time.Microsecond {
		t.Errorf("shuffle charge = %v", with-without)
	}
}

// Failed attempts occupy the machine that runs them, so a nonzero
// failure rate must strictly increase the modeled makespan. This is the
// regression test for the failure-accounting bug where retry time was
// measured and then thrown away, making 0% and 50% failure rates report
// identical makespans.
func TestMakespanChargesRetryTime(t *testing.T) {
	clean := StageStat{Tasks: []TaskStat{
		{Duration: time.Second}, {Duration: time.Second},
	}}
	faulty := StageStat{Tasks: []TaskStat{
		{Duration: time.Second, RetryTime: 500 * time.Millisecond},
		{Duration: time.Second},
	}}
	if got, want := faulty.Makespan(1, 0), 2500*time.Millisecond; got != want {
		t.Errorf("faulty makespan on 1 machine = %v, want %v", got, want)
	}
	if faulty.Makespan(1, 0) <= clean.Makespan(1, 0) {
		t.Error("retry time not charged: faulty makespan <= clean makespan")
	}
	// On 2 machines LPT puts each task on its own machine; the retried
	// task still gates the stage.
	if got, want := faulty.Makespan(2, 0), 1500*time.Millisecond; got != want {
		t.Errorf("faulty makespan on 2 machines = %v, want %v", got, want)
	}
}

// End to end: run a real job under injected failures and check the
// retry time is measured and strictly increases the makespan over the
// stage's successful work alone. On one simulated machine the makespan
// is exactly Σ(duration+retry), so the comparison is deterministic even
// though individual timings are not.
func TestFailureRateIncreasesMakespan(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := NewCluster(Config{Machines: 4, FailureRate: 0.5, Seed: seed, MaxAttempts: 50})
		c.FS.Write("in", SinglePartition(kvSchema(), kvRows(200)))
		stat, err := c.Run(sumStage("in", "out", 4))
		if err != nil {
			t.Fatal(err)
		}
		st := stat.Stages[0]
		if st.Failures == 0 {
			continue // this seed happened to inject nothing; try the next
		}
		if st.TotalRetryTime() <= 0 {
			t.Fatalf("seed %d: %d failures but TotalRetryTime = %v", seed, st.Failures, st.TotalRetryTime())
		}
		if got, want := st.Makespan(1, 0), st.TotalMapTime()+st.TotalTaskTime()+st.TotalRetryTime(); got != want {
			t.Fatalf("seed %d: makespan(1) = %v, want map+work+retry = %v", seed, got, want)
		}
		if st.Makespan(1, 0) <= st.TotalMapTime()+st.TotalTaskTime() {
			t.Fatalf("seed %d: makespan does not exceed failure-free work", seed)
		}
		return
	}
	t.Fatal("no seed in 1..10 injected a failure at rate 0.5")
}

func TestStageSkewAndShuffleBytes(t *testing.T) {
	c := NewCluster(Config{Machines: 4})
	rows := kvRows(100)
	c.FS.Write("in", SinglePartition(kvSchema(), rows))
	// Route everything to partition 0 except key 1: maximal skew.
	stage := sumStage("in", "out", 2)
	stage.Partition = func(r Row, src int) uint64 {
		if r[0].AsInt() == 1 {
			return 1
		}
		return 0
	}
	stat, err := c.Run(stage)
	if err != nil {
		t.Fatal(err)
	}
	st := stat.Stages[0]
	wantBytes := 0
	for _, r := range rows {
		wantBytes += RowBytes(r)
	}
	if st.ShuffleBytes != wantBytes {
		t.Errorf("ShuffleBytes = %d, want %d", st.ShuffleBytes, wantBytes)
	}
	// kvRows(100) has 15 rows with key 1 and 85 with other keys:
	// max/mean = 85/50.
	if got, want := st.RowSkew(), 85.0/50.0; got != want {
		t.Errorf("RowSkew = %v, want %v", got, want)
	}
	if st.MaxTaskRows() != 85 {
		t.Errorf("MaxTaskRows = %d, want 85", st.MaxTaskRows())
	}
}

// TestRowBytes pins the satellite bugfix: RowBytes is not an estimate
// but the exact encoded size of the row in the shared codec — budget
// keep/spill decisions charge precisely what spilling would write.
func TestRowBytes(t *testing.T) {
	rows := []Row{
		nil,
		{},
		{temporal.Int(1), temporal.String("hello"), temporal.Float(2.5)},
		{temporal.Null, temporal.Bool(true), temporal.Bool(false)},
		{temporal.Float(math.NaN()), temporal.Float(math.Inf(-1)), temporal.Float(0)},
		{temporal.String(""), temporal.String(strings.Repeat("x", 1<<14))},
		{temporal.Int(math.MaxInt64), temporal.Int(math.MinInt64), temporal.Int(-1)},
		{temporal.String("embedded\x00nul"), temporal.Null, temporal.Int(0)},
	}
	var enc temporal.Encoder
	for i, r := range rows {
		enc.Reset()
		enc.Row(r)
		if got, want := RowBytes(r), enc.Len(); got != want {
			t.Errorf("row %d: RowBytes = %d, encoder wrote %d bytes", i, got, want)
		}
	}
	// Property: agreement holds for arbitrary generated rows.
	cells := func(seed int64) Row {
		rng := rand.New(rand.NewSource(seed))
		r := make(Row, rng.Intn(6))
		for i := range r {
			switch rng.Intn(5) {
			case 0:
				r[i] = temporal.Null
			case 1:
				r[i] = temporal.Int(rng.Int63() - rng.Int63())
			case 2:
				r[i] = temporal.Float(rng.NormFloat64())
			case 3:
				r[i] = temporal.String(strings.Repeat("s", rng.Intn(200)))
			default:
				r[i] = temporal.Bool(rng.Intn(2) == 0)
			}
		}
		return r
	}
	for seed := int64(0); seed < 500; seed++ {
		r := cells(seed)
		enc.Reset()
		enc.Row(r)
		if got, want := RowBytes(r), enc.Len(); got != want {
			t.Fatalf("seed %d: RowBytes = %d, encoder wrote %d bytes (row %v)", seed, got, want, r)
		}
	}
}

func TestClusterEmitsStageMetrics(t *testing.T) {
	c := NewCluster(Config{Machines: 4})
	c.Obs = obs.New("cluster")
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(100)))
	if _, err := c.Run(sumStage("in", "out", 4)); err != nil {
		t.Fatal(err)
	}
	sc := c.Obs.Child("stage.sum")
	if got := sc.Counter("input_rows").Value(); got != 100 {
		t.Errorf("input_rows = %d, want 100", got)
	}
	if got := sc.Counter("output_rows").Value(); got != 7 {
		t.Errorf("output_rows = %d, want 7", got)
	}
	if sc.Counter("shuffle_bytes").Value() <= 0 {
		t.Error("shuffle_bytes not emitted")
	}
	if got := sc.Histogram("task_time").Count(); got <= 0 {
		t.Error("task_time histogram empty")
	}
}

func TestJobMakespanSumsStages(t *testing.T) {
	j := JobStat{Stages: []StageStat{
		{Tasks: []TaskStat{{Duration: time.Second}}},
		{Tasks: []TaskStat{{Duration: 2 * time.Second}}},
	}}
	if got := j.Makespan(4, 0); got != 3*time.Second {
		t.Errorf("job makespan = %v", got)
	}
}

func TestMultiPartitionReplication(t *testing.T) {
	// A row replicated into two partitions must be seen by both reducers,
	// and ShuffleRows must account for the duplication.
	c := NewCluster(Config{Machines: 2})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(10)))
	stage := Stage{
		Name: "dup", Inputs: []string{"in"}, Output: "out", OutSchema: kvSchema(),
		NumPartitions: 2,
		MultiPartition: func(r Row, src, nparts int) []int {
			return []int{0, 1} // every row goes everywhere
		},
		Reduce: func(part int, in [][]Row, emit func(Row)) error {
			emit(Row{temporal.Int(int64(part)), temporal.Int(int64(len(in[0])))})
			return nil
		},
	}
	stat, err := c.Run(stage)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Stages[0].ShuffleRows != 20 {
		t.Errorf("ShuffleRows = %d, want 20", stat.Stages[0].ShuffleRows)
	}
	for _, r := range c.FS.MustRead("out").Flatten() {
		if r[1].AsInt() != 10 {
			t.Errorf("partition %d saw %d rows, want 10", r[0].AsInt(), r[1].AsInt())
		}
	}
}

func TestPropertyPartitioningIsDeterministic(t *testing.T) {
	err := quick.Check(func(k, v int64) bool {
		r := Row{temporal.Int(k), temporal.Int(v)}
		f := PartitionByCols([][]int{{0}})
		return f(r, 0) == f(r, 0)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyJobEquivalentAcrossPartitionCounts(t *testing.T) {
	// The sum job's result must be independent of the partition count.
	err := quick.Check(func(nRaw uint8, partsRaw uint8) bool {
		n := int(nRaw)%200 + 1
		nparts := int(partsRaw)%16 + 1
		c := NewCluster(Config{Machines: 4})
		c.FS.Write("in", SinglePartition(kvSchema(), kvRows(n)))
		if _, err := c.Run(sumStage("in", "out", nparts)); err != nil {
			return false
		}
		got := map[int64]int64{}
		for _, r := range c.FS.MustRead("out").Flatten() {
			got[r[0].AsInt()] = r[1].AsInt()
		}
		want := map[int64]int64{}
		for i := 0; i < n; i++ {
			want[int64(i%7)] += int64(i)
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
