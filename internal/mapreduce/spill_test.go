package mapreduce

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"timr/internal/temporal"
)

func spillTestRows(n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			temporal.Int(int64(i)),
			temporal.Float(float64(i) * 1.5),
			temporal.String("payload"),
			temporal.Bool(i%2 == 0),
		}
	}
	return rows
}

func TestSpilledSegmentRoundtrip(t *testing.T) {
	rows := spillTestRows(137)
	seg, release, err := SpillRows(t.TempDir(), rows, true)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if !seg.Spilled() || !seg.Sorted() || seg.Len() != len(rows) {
		t.Fatalf("segment meta: spilled=%v sorted=%v len=%d", seg.Spilled(), seg.Sorted(), seg.Len())
	}
	got, err := seg.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatal("spill roundtrip changed rows")
	}
	// Reader path must deliver the same sequence.
	rd := seg.Open()
	for i := 0; ; i++ {
		r, ok, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i != len(rows) {
				t.Fatalf("reader stopped at %d of %d", i, len(rows))
			}
			break
		}
		if !reflect.DeepEqual(r, rows[i]) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestRowReaderMixedSegments(t *testing.T) {
	a := spillTestRows(10)
	b := spillTestRows(7)
	seg, release, err := SpillRows(t.TempDir(), b, false)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	rd := NewRowReader(ResidentSegment(a, false), seg, ResidentSegment(a[:3], false))
	want := append(append(append([]Row{}, a...), b...), a[:3]...)
	var got []Row
	for {
		r, ok, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mixed-segment reader order mismatch")
	}
}

// budgetJob is a two-stage job (repartition by key, then funnel to one
// partition) so a spilled stage-1 output becomes spilled *input* to
// stage 2's map phase.
func budgetJob(c *Cluster, t *testing.T) *JobStat {
	t.Helper()
	stat, err := c.Run(
		sumStage("in", "mid", 8),
		identityStage("mid", "out"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return stat
}

func TestMemoryBudgetOutputEquivalence(t *testing.T) {
	// The core out-of-core contract: job output is bit-identical whether
	// nothing, something, or everything spills.
	rows := kvRows(5000)
	run := func(budget int64) ([]Row, *JobStat) {
		c := NewCluster(Config{Machines: 8, MemoryBudget: budget})
		defer c.Close()
		c.FS.Write("in", SinglePartition(kvSchema(), rows))
		stat := budgetJob(c, t)
		return append([]Row(nil), c.FS.MustRead("out").Flatten()...), stat
	}
	want, residentStat := run(0)
	if len(want) == 0 {
		t.Fatal("empty reference output")
	}
	if residentStat.Stages[0].SpillSegments != 0 {
		t.Fatalf("unlimited budget spilled %d segments", residentStat.Stages[0].SpillSegments)
	}
	for _, budget := range []int64{SpillAll, 1, 512, 16 << 10} {
		got, stat := run(budget)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("budget=%d output differs from resident run", budget)
		}
		if budget == SpillAll || budget == 1 {
			spilled := 0
			for _, st := range stat.Stages {
				spilled += st.SpillSegments
			}
			if spilled == 0 {
				t.Fatalf("budget=%d: expected spill activity", budget)
			}
		}
	}
}

func TestSpillMetricsAccounting(t *testing.T) {
	c := NewCluster(Config{Machines: 4, MemoryBudget: SpillAll})
	defer c.Close()
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(1000)))
	stat := budgetJob(c, t)
	s1 := stat.Stages[0]
	if s1.SpillSegments == 0 || s1.SpillBytes == 0 {
		t.Fatalf("stage 1 spill write accounting empty: %+v", s1)
	}
	// Stage 1's reducers read its spilled shuffle runs back.
	if s1.SpillReadBytes == 0 {
		t.Fatal("stage 1 recorded no spill reads")
	}
	// Stage 2 reads stage 1's spilled output in its map phase.
	s2 := stat.Stages[1]
	if s2.SpillReadBytes == 0 {
		t.Fatal("stage 2 map phase read no spilled input")
	}
}

func TestSpillRunSortednessAnnotation(t *testing.T) {
	// With a RunKey, shuffle runs from a key-ordered input partition are
	// marked sorted; from a shuffled one, unsorted.
	sortedRows := kvRows(100) // kvRows is ordered by its second column
	unsorted := append([]Row(nil), sortedRows...)
	for i, j := 0, len(unsorted)-1; i < j; i, j = i+1, j-1 {
		unsorted[i], unsorted[j] = unsorted[j], unsorted[i]
	}
	run := func(rows []Row) (sortedSegs, totalSegs int) {
		c := NewCluster(Config{Machines: 2, MemoryBudget: SpillAll})
		defer c.Close()
		c.FS.Write("in", SinglePartition(kvSchema(), rows))
		st := Stage{
			Name: "runkey", Inputs: []string{"in"}, Output: "out", OutSchema: kvSchema(),
			NumPartitions: 1,
			Partition:     func(Row, int) uint64 { return 0 },
			RunKey:        func(r Row, src int) int64 { return r[1].AsInt() },
			ReduceSegments: func(part int, in [][]Segment, emit func(Row)) error {
				for _, segs := range in {
					for i := range segs {
						totalSegs++
						if segs[i].Sorted() {
							sortedSegs++
						}
						if !segs[i].Spilled() {
							t.Error("SpillAll left a resident segment")
						}
					}
				}
				return nil
			},
		}
		if _, err := c.Run(st); err != nil {
			t.Fatal(err)
		}
		return sortedSegs, totalSegs
	}
	if sorted, total := run(sortedRows); total == 0 || sorted != total {
		t.Fatalf("ordered input: %d/%d runs marked sorted", sorted, total)
	}
	if sorted, total := run(unsorted); total == 0 || sorted != 0 {
		t.Fatalf("reversed input: %d/%d runs marked sorted", sorted, total)
	}
}

func TestClusterCloseRemovesSpillDir(t *testing.T) {
	base := t.TempDir()
	c := NewCluster(Config{Machines: 2, MemoryBudget: SpillAll, SpillDir: base})
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(100)))
	budgetJob(c, t)
	dirs, err := filepath.Glob(filepath.Join(base, "timr-spill-*"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no spill dir created under %s (err=%v)", base, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if _, err := os.Stat(d); !os.IsNotExist(err) {
			t.Fatalf("spill dir %s survived Close", d)
		}
	}
}

// TestFailedStageReleasesSpillFiles pins the temp-file leak fix: a
// stage that spills its shuffle and then fails (every reducer attempt
// exhausted) must leave nothing behind in the spill directory — the
// stage owns its files and releases them on the error path, not only on
// the success path.
func TestFailedStageReleasesSpillFiles(t *testing.T) {
	base := t.TempDir()
	c := NewCluster(Config{
		Machines: 2, MemoryBudget: SpillAll, SpillDir: base,
		FailureRate: 1.0, MaxAttempts: 2, Seed: 42,
	})
	defer c.Close()
	c.FS.Write("in", SinglePartition(kvSchema(), kvRows(500)))
	if _, err := c.Run(sumStage("in", "out", 4)); err == nil {
		t.Fatal("expected the fully-failing stage to error")
	}
	dirs, err := filepath.Glob(filepath.Join(base, "timr-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("stage never spilled — the leak check is vacuous")
	}
	for _, d := range dirs {
		left, err := filepath.Glob(filepath.Join(d, "*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(left) != 0 {
			t.Fatalf("failed stage leaked %d spill file(s): %v", len(left), left)
		}
	}
}

// TestFlattenCopiesAndBorrowLends pins the satellite bugfix: Flatten
// and ReadAll hand back a slice the caller owns — mutating it must not
// corrupt the dataset — while Borrow is the explicit zero-copy variant
// for callers that promise immutability.
func TestFlattenCopiesAndBorrowLends(t *testing.T) {
	rows := kvRows(64)
	ds := SinglePartition(kvSchema(), rows)
	got := ds.Flatten()
	if len(got) != len(rows) || &got[0] == &rows[0] {
		t.Fatal("single-segment Flatten must copy the row-header slice")
	}
	// Mutating the returned slice must leave the dataset intact.
	for i := range got {
		got[i] = Row{temporal.String("clobbered")}
	}
	again := ds.Flatten()
	for i, r := range again {
		if len(r) != len(rows[i]) || !r[0].Equal(rows[i][0]) {
			t.Fatalf("row %d changed after mutating a Flatten result", i)
		}
	}
	// Borrow is the zero-copy path, single resident row segment only.
	lent, ok := ds.Borrow()
	if !ok || &lent[0] != &rows[0] {
		t.Fatal("Borrow must lend the underlying slice of a single resident segment")
	}
	ds2 := NewDataset(kvSchema(), 1)
	ds2.Append(0, rows[:32])
	ds2.Append(0, rows[32:])
	if _, ok := ds2.Borrow(); ok {
		t.Fatal("Borrow must refuse multi-segment datasets")
	}
	got2 := ds2.Flatten()
	if len(got2) != len(rows) || &got2[0] == &rows[0] {
		t.Fatal("multi-segment Flatten must build a fresh slice")
	}
	cds := SingleColumnarPartition(kvSchema(), temporal.ColBatchFromRows(rows, 2), false)
	if _, ok := cds.Borrow(); ok {
		t.Fatal("Borrow must refuse columnar datasets")
	}
	crows := cds.Flatten()
	if len(crows) != len(rows) {
		t.Fatalf("columnar Flatten returned %d rows, want %d", len(crows), len(rows))
	}
}

// BenchmarkFlattenResident pins the satellite claim: reading the common
// single-segment resident dataset through Borrow allocates nothing.
func BenchmarkFlattenResident(b *testing.B) {
	ds := SinglePartition(kvSchema(), kvRows(1<<16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, ok := ds.Borrow()
		if !ok || len(rows) != 1<<16 {
			b.Fatal("bad length")
		}
	}
}
