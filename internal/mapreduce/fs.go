// Package mapreduce is a deterministic, in-process simulation of the
// map-reduce substrate the paper runs on (Dryad/SCOPE over Cosmos,
// equivalently Hadoop over HDFS): a distributed file system holding
// partitioned datasets, and jobs made of stages that partition ("map")
// rows by key and apply a reducer to every partition in parallel.
//
// The simulator reproduces the properties TiMR depends on:
//
//   - stages read and write named, partitioned datasets in a shared FS;
//   - the reducer is a black box invoked once per partition (§II-B);
//   - failed reducers are restarted from scratch, so reducers must be
//     deterministic functions of their input partition (§III-C.1) —
//     failure injection lets tests verify TiMR's repeatability guarantee;
//   - cluster cost is accounted per reducer task, and a job's makespan on
//     M machines is computed by list scheduling, so scaling experiments
//     (paper Figures 15 and 16) are meaningful regardless of how many
//     physical cores the host has.
package mapreduce

import (
	"fmt"
	"sort"
	"sync"

	"timr/internal/temporal"
)

// Row and Schema alias the engine's row model; datasets and streams share
// one representation, which is what lets TiMR hand M-R rows to the
// embedded DSMS without conversion cost.
type (
	Row    = temporal.Row
	Schema = temporal.Schema
)

// Dataset is a partitioned, schema-carrying table in the simulated DFS.
type Dataset struct {
	Schema     *Schema
	Partitions [][]Row
}

// Rows returns the total row count across partitions.
func (d *Dataset) Rows() int {
	n := 0
	for _, p := range d.Partitions {
		n += len(p)
	}
	return n
}

// Flatten returns all rows of the dataset in partition order.
func (d *Dataset) Flatten() []Row {
	out := make([]Row, 0, d.Rows())
	for _, p := range d.Partitions {
		out = append(out, p...)
	}
	return out
}

// SinglePartition builds a dataset with all rows in one partition — the
// shape of freshly ingested logs before any repartitioning.
func SinglePartition(schema *Schema, rows []Row) *Dataset {
	return &Dataset{Schema: schema, Partitions: [][]Row{rows}}
}

// FS is the simulated distributed file system (Cosmos/HDFS/GFS stand-in).
// It is safe for concurrent use.
type FS struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
}

// NewFS returns an empty file system.
func NewFS() *FS { return &FS{datasets: make(map[string]*Dataset)} }

// Write stores (or replaces) a named dataset.
func (fs *FS) Write(name string, d *Dataset) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.datasets[name] = d
}

// Read fetches a named dataset.
func (fs *FS) Read(name string) (*Dataset, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, ok := fs.datasets[name]
	if !ok {
		return nil, fmt.Errorf("mapreduce: no dataset %q", name)
	}
	return d, nil
}

// MustRead fetches a dataset, panicking on missing names (used by tests
// and experiment harness code where absence is a bug).
func (fs *FS) MustRead(name string) *Dataset {
	d, err := fs.Read(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Delete removes a dataset (intermediate cleanup between stages).
func (fs *FS) Delete(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.datasets, name)
}

// List returns the stored dataset names, sorted.
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.datasets))
	for n := range fs.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
