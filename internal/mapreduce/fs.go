// Package mapreduce is a deterministic, in-process simulation of the
// map-reduce substrate the paper runs on (Dryad/SCOPE over Cosmos,
// equivalently Hadoop over HDFS): a distributed file system holding
// partitioned datasets, and jobs made of stages that partition ("map")
// rows by key and apply a reducer to every partition in parallel.
//
// The simulator reproduces the properties TiMR depends on:
//
//   - stages read and write named, partitioned datasets in a shared FS;
//   - the reducer is a black box invoked once per partition (§II-B);
//   - failed reducers are restarted from scratch, so reducers must be
//     deterministic functions of their input partition (§III-C.1) —
//     failure injection lets tests verify TiMR's repeatability guarantee;
//   - cluster cost is accounted per reducer task, and a job's makespan on
//     M machines is computed by list scheduling, so scaling experiments
//     (paper Figures 15 and 16) are meaningful regardless of how many
//     physical cores the host has;
//   - datasets larger than memory spill to disk in segments (spill.go)
//     and stream back through pull iterators, so a stage's working set
//     is bounded by the cluster's MemoryBudget, not its input size.
package mapreduce

import (
	"fmt"
	"sort"
	"sync"

	"timr/internal/temporal"
)

// Row and Schema alias the engine's row model; datasets and streams share
// one representation, which is what lets TiMR hand M-R rows to the
// embedded DSMS without conversion cost.
type (
	Row    = temporal.Row
	Schema = temporal.Schema
)

// Dataset is a partitioned, schema-carrying table in the simulated DFS.
// Each partition is an ordered list of segments, resident or spilled;
// consumers iterate rows through Reader (or Flatten for whole-dataset
// materialization) rather than indexing raw slices.
type Dataset struct {
	Schema *Schema
	parts  [][]Segment
}

// NewDataset builds an empty dataset with nparts partitions.
func NewDataset(schema *Schema, nparts int) *Dataset {
	return &Dataset{Schema: schema, parts: make([][]Segment, nparts)}
}

// SinglePartition builds a dataset with all rows resident in one
// partition — the shape of freshly ingested logs before any
// repartitioning. The rows are borrowed, not copied.
func SinglePartition(schema *Schema, rows []Row) *Dataset {
	d := NewDataset(schema, 1)
	d.Append(0, rows)
	return d
}

// SingleColumnarPartition builds a dataset whose one partition holds a
// columnar batch (borrowed, not copied) — the decode-once ingest shape.
// sorted declares the batch ordered by the consuming stage's run key.
func SingleColumnarPartition(schema *Schema, cb *temporal.ColBatch, sorted bool) *Dataset {
	d := NewDataset(schema, 1)
	d.AppendColumnar(0, cb, sorted)
	return d
}

// NumPartitions returns the partition count.
func (d *Dataset) NumPartitions() int { return len(d.parts) }

// Append adds rows (borrowed, not copied) as a resident segment of
// partition p. Empty appends are dropped.
func (d *Dataset) Append(p int, rows []Row) {
	d.AppendSegment(p, ResidentSegment(rows, false))
}

// AppendColumnar adds a columnar batch (borrowed, not copied) as a
// resident segment of partition p. Empty appends are dropped.
func (d *Dataset) AppendColumnar(p int, cb *temporal.ColBatch, sorted bool) {
	d.AppendSegment(p, ColumnarSegment(cb, sorted))
}

// AppendSegment adds a segment to partition p. Empty segments are
// dropped so partitions never carry zero-length runs.
func (d *Dataset) AppendSegment(p int, seg Segment) {
	if seg.Len() == 0 {
		return
	}
	d.parts[p] = append(d.parts[p], seg)
}

// Partition returns partition p's segment list (borrowed; callers must
// not mutate).
func (d *Dataset) Partition(p int) []Segment { return d.parts[p] }

// Rows returns the total row count across partitions. It never touches
// disk: spilled segments carry their row count.
func (d *Dataset) Rows() int {
	n := 0
	for _, segs := range d.parts {
		for i := range segs {
			n += segs[i].Len()
		}
	}
	return n
}

// Reader returns a pull iterator over partition p's rows in segment
// order.
func (d *Dataset) Reader(p int) *RowReader {
	return NewRowReader(d.parts[p]...)
}

// Borrow returns the dataset's rows without copying when it is a single
// resident row segment (the common fully-in-memory shape): the backing
// slice itself, zero copies, zero allocations. ok is false otherwise —
// spilled, columnar, or multi-segment datasets have no single slice to
// lend. Callers must treat the result as immutable: appending to or
// mutating it corrupts the dataset for every other reader.
func (d *Dataset) Borrow() ([]Row, bool) {
	var only *Segment
	nseg := 0
	for _, segs := range d.parts {
		for i := range segs {
			nseg++
			only = &segs[i]
		}
	}
	if nseg != 1 || only.Spilled() || only.Resident() == nil {
		return nil, false
	}
	return only.Resident(), true
}

// ReadAll returns all rows of the dataset in partition order. The
// result is always the caller's to keep: the row-header slice is fresh
// (rows themselves stay shared-immutable, as everywhere), so appending
// to or reordering it cannot corrupt the dataset — the bug that
// borrowing the backing slice of single-segment datasets used to allow.
// Callers that need the zero-copy path use Borrow.
func (d *Dataset) ReadAll() ([]Row, error) {
	total := 0
	for _, segs := range d.parts {
		for i := range segs {
			total += segs[i].Len()
		}
	}
	if total == 0 {
		return nil, nil
	}
	out := make([]Row, 0, total)
	for p := range d.parts {
		rd := d.Reader(p)
		for {
			r, ok, err := rd.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Flatten returns all rows of the dataset in partition order, always
// copied (see ReadAll). It panics if a spilled segment cannot be read —
// callers that need to handle spill I/O errors use ReadAll.
func (d *Dataset) Flatten() []Row {
	rows, err := d.ReadAll()
	if err != nil {
		panic(err)
	}
	return rows
}

// FS is the simulated distributed file system (Cosmos/HDFS/GFS stand-in).
// It is safe for concurrent use.
type FS struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
}

// NewFS returns an empty file system.
func NewFS() *FS { return &FS{datasets: make(map[string]*Dataset)} }

// Write stores (or replaces) a named dataset.
func (fs *FS) Write(name string, d *Dataset) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.datasets[name] = d
}

// Read fetches a named dataset.
func (fs *FS) Read(name string) (*Dataset, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, ok := fs.datasets[name]
	if !ok {
		return nil, fmt.Errorf("mapreduce: no dataset %q", name)
	}
	return d, nil
}

// MustRead fetches a dataset, panicking on missing names (used by tests
// and experiment harness code where absence is a bug).
func (fs *FS) MustRead(name string) *Dataset {
	d, err := fs.Read(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Delete removes a dataset (intermediate cleanup between stages). Any
// spill files backing its segments stay on disk until the owning
// cluster is closed — other datasets may share them.
func (fs *FS) Delete(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.datasets, name)
}

// List returns the stored dataset names, sorted.
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.datasets))
	for n := range fs.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
