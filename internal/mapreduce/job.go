package mapreduce

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"timr/internal/obs"
	"timr/internal/temporal"
)

// Reducer is the per-partition computation of a stage (paper §II-B: "a
// reducer method that accepts all rows belonging to the same partition,
// and returns result rows"). in holds the partition's rows, one slice per
// stage input. Reducers must be deterministic in their input: the cluster
// restarts failed attempts and verifies repeatability.
type Reducer func(part int, in [][]Row, emit func(Row)) error

// Stage is one map-reduce stage: a partitioning function (the "map" side)
// plus a reducer applied to every partition.
type Stage struct {
	Name      string
	Inputs    []string
	Output    string
	OutSchema *Schema
	// NumPartitions defaults to the cluster's machine count — the paper's
	// hash(key) mod #machines scheme (§III-C.3).
	NumPartitions int
	// Partition maps a row (from input src) to a partition key hash.
	// Rows with equal hashes meet in the same reducer invocation.
	Partition func(r Row, src int) uint64
	// MultiPartition, when set, supersedes Partition and may replicate a
	// row into several partitions (given directly as partition indexes in
	// [0, NumPartitions)). TiMR's temporal partitioning uses this: events
	// in a span-overlap region belong to both adjacent spans (§III-B).
	MultiPartition func(r Row, src int, nparts int) []int
	Reduce         Reducer
	// ReduceRuns, when set, supersedes Reduce and additionally receives
	// the shuffle's run structure: runs[src] lists the lengths of the
	// consecutive row runs that make up in[src]. Each run is a contiguous
	// chunk of one input partition in its original order, so it is
	// time-sorted whenever that input partition was — which lets
	// order-sensitive reducers merge runs instead of re-sorting the whole
	// partition (TiMR's reducer P exploits this).
	ReduceRuns func(part int, in [][]Row, runs [][]int, emit func(Row)) error
}

// Config describes the simulated cluster.
type Config struct {
	Machines    int     // parallel reducer slots (paper: ~150)
	FailureRate float64 // probability that a reducer attempt fails
	MaxAttempts int     // per reducer task (default 4)
	Seed        int64   // seed for failure injection
	// ShufflePerRow is the modeled cost of repartitioning one row over
	// the network (write + transfer + read), charged to the makespan
	// accounting; it does not slow real execution.
	ShufflePerRow time.Duration
	// MapWorkers caps the worker pool of every stage phase (map,
	// concatenate, reduce). Zero (the default) uses min(Machines,
	// GOMAXPROCS); 1 forces the serial reference path that the shuffle
	// benchmark and determinism tests compare against. The shuffled row
	// order is identical for every setting.
	MapWorkers int
}

// DefaultConfig is a 150-machine failure-free cluster, mirroring the
// paper's experimental setup. The 5µs/row shuffle charge models writing,
// transferring and re-reading a ~100-byte row through 2012-era disks and
// interconnect — roughly the per-row CPU cost of the engine, as on real
// clusters where repartitioning a dataset costs about as much as one
// processing pass over it.
func DefaultConfig() Config {
	return Config{Machines: 150, MaxAttempts: 4, ShufflePerRow: 5 * time.Microsecond}
}

// TaskStat records one reducer task's accounting.
type TaskStat struct {
	Stage     string
	Partition int
	Rows      int
	Attempts  int
	Duration  time.Duration // successful attempt only
	// RetryTime is the time burned by failed attempts of this task. The
	// cluster really runs those attempts (and discards their output), so
	// their cost must appear in the load model: a machine that spends 3
	// attempts on a partition is occupied for all 3, and with a nonzero
	// failure rate the makespan must grow accordingly.
	RetryTime time.Duration
}

// StageStat aggregates a stage's accounting.
type StageStat struct {
	Name         string
	InputRows    int
	ShuffleRows  int
	ShuffleBytes int // estimated repartitioned volume (see RowBytes)
	OutputRows   int
	Partitions   int
	Failures     int
	// Maps records one entry per map task (a contiguous chunk of one
	// input partition, see mapChunkRows): rows scanned and the real time
	// spent partitioning them. Map tasks never fail in the simulator
	// (partitioning is deterministic and side-effect free), so Attempts
	// is always 1 and RetryTime zero.
	Maps     []TaskStat
	Tasks    []TaskStat
	WallTime time.Duration // real elapsed time of the stage
}

// TotalTaskTime sums successful reducer durations (the "work").
func (s *StageStat) TotalTaskTime() time.Duration {
	var d time.Duration
	for _, t := range s.Tasks {
		d += t.Duration
	}
	return d
}

// TotalMapTime sums map task durations (the partitioning work).
func (s *StageStat) TotalMapTime() time.Duration {
	var d time.Duration
	for _, t := range s.Maps {
		d += t.Duration
	}
	return d
}

// TotalRetryTime sums time spent in failed attempts across tasks.
func (s *StageStat) TotalRetryTime() time.Duration {
	var d time.Duration
	for _, t := range s.Tasks {
		d += t.RetryTime
	}
	return d
}

// MaxTaskRows returns the largest reducer input (rows) across tasks.
func (s *StageStat) MaxTaskRows() int {
	max := 0
	for _, t := range s.Tasks {
		if t.Rows > max {
			max = t.Rows
		}
	}
	return max
}

// RowSkew is the per-partition skew of the stage: max reducer input over
// mean reducer input (1.0 = perfectly balanced). Skew bounds speedup —
// the slowest reducer gates the stage — which is why the paper's
// temporal partitioning matters for keyless queries.
func (s *StageStat) RowSkew() float64 {
	if len(s.Tasks) == 0 {
		return 0
	}
	total := 0
	for _, t := range s.Tasks {
		total += t.Rows
	}
	mean := float64(total) / float64(len(s.Tasks))
	if mean == 0 {
		return 0
	}
	return float64(s.MaxTaskRows()) / mean
}

// Makespan computes the simulated completion time of the stage on m
// machines: the map phase (partitioning chunks, LPT list scheduling),
// then the modeled shuffle cost (perfectly parallel across machines),
// then the reduce phase (LPT again). The phases are sequential barriers,
// as in the basic M-R model.
func (s *StageStat) Makespan(m int, shufflePerRow time.Duration) time.Duration {
	if m <= 0 {
		m = 1
	}
	shuffle := time.Duration(s.ShuffleRows) * shufflePerRow / time.Duration(m)
	return lptMakespan(s.Maps, m) + shuffle + lptMakespan(s.Tasks, m)
}

// lptMakespan schedules tasks onto m machines by longest-processing-time
// list scheduling and returns the finishing time of the last machine. A
// task occupies its machine for the failed attempts too; M-R restarts a
// failed reducer from scratch on the same input.
func lptMakespan(tasks []TaskStat, m int) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	durs := make([]time.Duration, len(tasks))
	for i, t := range tasks {
		durs[i] = t.Duration + t.RetryTime
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] > durs[j] })
	loads := make([]time.Duration, m)
	for _, d := range durs {
		// Assign to the least-loaded machine.
		min := 0
		for i := 1; i < m; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += d
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// JobStat aggregates a whole job.
type JobStat struct {
	Stages []StageStat
}

// Makespan sums per-stage makespans (stages are sequential barriers, as in
// the basic M-R model).
func (j *JobStat) Makespan(m int, shufflePerRow time.Duration) time.Duration {
	var d time.Duration
	for i := range j.Stages {
		d += j.Stages[i].Makespan(m, shufflePerRow)
	}
	return d
}

// Cluster executes jobs against an FS under a Config.
type Cluster struct {
	FS  *FS
	Cfg Config
	// Obs, when set, receives per-stage metrics under a "stage.<name>"
	// child scope: row/byte counters, failure and retry accounting, task
	// duration histograms, and skew gauges. Nil disables emission.
	Obs *obs.Scope
}

// NewCluster builds a cluster over a fresh FS.
func NewCluster(cfg Config) *Cluster {
	if cfg.Machines <= 0 {
		cfg.Machines = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	return &Cluster{FS: NewFS(), Cfg: cfg}
}

// Run executes the stages in order, returning accounting for the job.
func (c *Cluster) Run(stages ...Stage) (*JobStat, error) {
	job := &JobStat{}
	for i := range stages {
		st, err := c.runStage(&stages[i])
		if err != nil {
			return job, fmt.Errorf("stage %s: %w", stages[i].Name, err)
		}
		job.Stages = append(job.Stages, *st)
	}
	return job, nil
}

// injectedFailure implements deterministic failure injection: whether
// attempt a of (stage, partition) fails is a pure function of the seed.
func (c *Cluster) injectedFailure(stage string, part, attempt int) bool {
	if c.Cfg.FailureRate <= 0 {
		return false
	}
	h := temporal.HashSeed
	h = temporal.String(stage).Hash(h)
	h = temporal.Int(int64(part)).Hash(h)
	h = temporal.Int(int64(attempt)).Hash(h)
	h = temporal.Int(c.Cfg.Seed).Hash(h)
	r := rand.New(rand.NewSource(int64(h)))
	return r.Float64() < c.Cfg.FailureRate
}

// mapChunkRows is the map-task granule: each map task partitions one
// contiguous chunk of at most this many rows from one input partition.
// Small enough to load-balance skewed inputs across workers, large enough
// that per-task bookkeeping is noise.
const mapChunkRows = 64 << 10

// mapTask is one unit of map-phase work: a chunk of rows from one input,
// partitioned into local per-destination buckets. Tasks execute on any
// worker in any order; determinism comes from concatenating buckets in
// task-creation order afterwards.
type mapTask struct {
	src     int
	rows    []Row
	buckets [][]Row // per destination partition, filled by the worker
	bytes   int     // shuffle bytes produced (RowBytes per destination copy)
	dups    int     // shuffle rows produced (>= len(rows) under MultiPartition)
	stat    TaskStat
	err     error // user partition-fn panic, isolated by the worker
}

// workers resolves the worker-pool size for a phase with n parallel
// tasks: MapWorkers when set, otherwise min(Machines, GOMAXPROCS),
// clamped to [1, n]. All three phases of runStage (map, concatenate,
// reduce) share this derivation so MapWorkers applies uniformly.
func (c *Cluster) workers(n int) int {
	w := c.Cfg.MapWorkers
	if w <= 0 {
		w = c.Cfg.Machines
		if max := runtime.GOMAXPROCS(0); w > max {
			w = max
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (c *Cluster) runStage(s *Stage) (*StageStat, error) {
	start := time.Now()
	nparts := s.NumPartitions
	if nparts <= 0 {
		nparts = c.Cfg.Machines
	}
	stat := &StageStat{Name: s.Name, Partitions: nparts}
	if s.Reduce == nil && s.ReduceRuns == nil {
		return stat, fmt.Errorf("stage %s: no reducer", s.Name)
	}

	// ---- Map phase: read inputs, partition rows in parallel ----
	// Chunk every input partition into map tasks in (src, partition, chunk)
	// order; that fixed order is what the concatenation below replays, so
	// the shuffled row order is identical no matter how many workers run or
	// how they interleave.
	var tasks []*mapTask
	for src, name := range s.Inputs {
		ds, err := c.FS.Read(name)
		if err != nil {
			return stat, err
		}
		for _, partition := range ds.Partitions {
			for off := 0; off < len(partition); off += mapChunkRows {
				end := off + mapChunkRows
				if end > len(partition) {
					end = len(partition)
				}
				tasks = append(tasks, &mapTask{src: src, rows: partition[off:end]})
			}
		}
	}
	workers := c.workers(len(tasks))
	var next atomic.Int64
	var mwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				t0 := time.Now()
				// Isolate user partition-fn panics: one poisoned row must
				// fail the job with a diagnosable error, not kill the
				// process (and every other in-flight task) with it.
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							t.err = fmt.Errorf("mapreduce: stage %s: map task %d panicked: %v", s.Name, i, rec)
						}
					}()
					t.buckets = make([][]Row, nparts)
					for _, r := range t.rows {
						b := RowBytes(r)
						if s.MultiPartition != nil {
							for _, p := range s.MultiPartition(r, t.src, nparts) {
								t.buckets[p] = append(t.buckets[p], r)
								t.dups++
								t.bytes += b
							}
							continue
						}
						p := int(s.Partition(r, t.src) % uint64(nparts))
						t.buckets[p] = append(t.buckets[p], r)
						t.dups++
						t.bytes += b
					}
				}()
				t.stat = TaskStat{
					Stage:     s.Name,
					Partition: i,
					Rows:      len(t.rows),
					Attempts:  1,
					Duration:  time.Since(t0),
				}
			}
		}()
	}
	mwg.Wait()
	for _, t := range tasks {
		if t.err != nil {
			return stat, t.err
		}
	}

	// Deterministic concatenation: parts[p][src] is the tasks' buckets for
	// (p, src) joined in task-creation order — byte-identical to the serial
	// single-pass shuffle. runs[p][src] records each non-empty bucket's
	// length; every run is a contiguous slice of one input partition in its
	// original order, which ReduceRuns reducers exploit.
	parts := make([][][]Row, nparts)
	runs := make([][][]int, nparts)
	var cwg sync.WaitGroup
	var nextPart atomic.Int64
	cworkers := c.workers(nparts)
	for w := 0; w < cworkers; w++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				p := int(nextPart.Add(1)) - 1
				if p >= nparts {
					return
				}
				parts[p] = make([][]Row, len(s.Inputs))
				runs[p] = make([][]int, len(s.Inputs))
				for src := range s.Inputs {
					n := 0
					for _, t := range tasks {
						if t.src == src {
							n += len(t.buckets[p])
						}
					}
					if n == 0 {
						continue
					}
					rows := make([]Row, 0, n)
					for _, t := range tasks {
						if t.src != src || len(t.buckets[p]) == 0 {
							continue
						}
						rows = append(rows, t.buckets[p]...)
						runs[p][src] = append(runs[p][src], len(t.buckets[p]))
					}
					parts[p][src] = rows
				}
			}
		}()
	}
	cwg.Wait()
	for _, t := range tasks {
		stat.InputRows += len(t.rows)
		stat.ShuffleRows += t.dups
		stat.ShuffleBytes += t.bytes
		stat.Maps = append(stat.Maps, t.stat)
		t.buckets = nil // release before the reduce phase
	}

	// ---- Reduce phase: run reducers on a bounded worker pool ----
	workers = c.workers(nparts)
	type result struct {
		part int
		rows []Row
		stat TaskStat
		err  error
	}
	sem := make(chan struct{}, workers)
	results := make([]result, nparts)
	var wg sync.WaitGroup
	for p := 0; p < nparts; p++ {
		n := 0
		for _, rows := range parts[p] {
			n += len(rows)
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(p, n int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := result{part: p, stat: TaskStat{Stage: s.Name, Partition: p, Rows: n}}
			succeeded := false
			var lastPanic any
			for attempt := 1; attempt <= c.Cfg.MaxAttempts; attempt++ {
				res.stat.Attempts = attempt
				var out []Row
				t0 := time.Now()
				fail := c.injectedFailure(s.Name, p, attempt)
				emit := func(r Row) { out = append(out, r) }
				var err error
				panicked := false
				// Isolate user reducer panics: a panicking reducer is a
				// failed attempt — output discarded, time charged, task
				// restarted — exactly like an injected machine failure,
				// instead of taking down the whole process.
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							panicked = true
							lastPanic = rec
						}
					}()
					if s.ReduceRuns != nil {
						err = s.ReduceRuns(p, parts[p], runs[p], emit)
					} else {
						err = s.Reduce(p, parts[p], emit)
					}
				}()
				if fail || panicked {
					// The attempt's partial output is discarded, exactly
					// as M-R discards output of failed reducers; the task
					// is then restarted from scratch (§III-C.1). The time
					// it burned is real machine occupancy, though — charge
					// it, or makespans would be blind to the failure rate.
					res.stat.RetryTime += time.Since(t0)
					continue
				}
				if err != nil {
					res.err = err
					break
				}
				res.stat.Duration = time.Since(t0)
				res.rows = out
				succeeded = true
				break
			}
			if !succeeded && res.err == nil {
				if lastPanic != nil {
					res.err = fmt.Errorf("partition %d failed after %d attempts (last panic: %v)", p, c.Cfg.MaxAttempts, lastPanic)
				} else {
					res.err = fmt.Errorf("partition %d failed after %d attempts", p, c.Cfg.MaxAttempts)
				}
			}
			results[p] = res
		}(p, n)
	}
	wg.Wait()

	out := &Dataset{Schema: s.OutSchema, Partitions: make([][]Row, nparts)}
	for p := range results {
		res := &results[p]
		if res.stat.Rows == 0 {
			continue
		}
		if res.err != nil {
			return stat, res.err
		}
		stat.Failures += res.stat.Attempts - 1
		stat.Tasks = append(stat.Tasks, res.stat)
		out.Partitions[p] = res.rows
		stat.OutputRows += len(res.rows)
	}
	if s.Output != "" {
		c.FS.Write(s.Output, out)
	}
	stat.WallTime = time.Since(start)
	c.emitStageMetrics(stat)
	return stat, nil
}

// emitStageMetrics publishes a completed stage's accounting into the
// cluster's obs scope (no-op when Obs is nil). Counters accumulate across
// jobs run on the same cluster; gauges are high watermarks.
func (c *Cluster) emitStageMetrics(stat *StageStat) {
	if c.Obs == nil {
		return
	}
	sc := c.Obs.Child("stage." + stat.Name)
	sc.Counter("input_rows").Add(int64(stat.InputRows))
	sc.Counter("shuffle_rows").Add(int64(stat.ShuffleRows))
	sc.Counter("shuffle_bytes").Add(int64(stat.ShuffleBytes))
	sc.Counter("output_rows").Add(int64(stat.OutputRows))
	sc.Counter("tasks").Add(int64(len(stat.Tasks)))
	sc.Counter("map_tasks").Add(int64(len(stat.Maps)))
	sc.Counter("map_ns").Add(int64(stat.TotalMapTime()))
	sc.Counter("failures").Add(int64(stat.Failures))
	sc.Counter("retry_ns").Add(int64(stat.TotalRetryTime()))
	sc.Gauge("max_task_rows").SetMax(int64(stat.MaxTaskRows()))
	// Skew ×100 so the integer gauge keeps two decimals of resolution.
	sc.Gauge("row_skew_x100").SetMax(int64(stat.RowSkew() * 100))
	h := sc.Histogram("task_time")
	for _, t := range stat.Tasks {
		h.Observe(t.Duration + t.RetryTime)
	}
	mh := sc.Histogram("map_time")
	for _, t := range stat.Maps {
		mh.Observe(t.Duration)
	}
}

// RowBytes estimates the serialized size of a row for shuffle-volume
// accounting: 8 bytes per fixed-width value (int/float/bool/null tag)
// plus string payload bytes. The estimate prices relative stage volume,
// not any particular wire format.
func RowBytes(r Row) int {
	n := 8 * len(r)
	for _, v := range r {
		if v.Kind() == temporal.KindString {
			n += len(v.AsString())
		}
	}
	return n
}

// PartitionByCols builds a Partition function hashing the given column
// positions (per input source).
func PartitionByCols(colsPerSrc [][]int) func(Row, int) uint64 {
	return func(r Row, src int) uint64 {
		return temporal.HashRow(r, colsPerSrc[src])
	}
}
