package mapreduce

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"timr/internal/dur"
	"timr/internal/obs"
	"timr/internal/temporal"
)

// Reducer is the per-partition computation of a stage (paper §II-B: "a
// reducer method that accepts all rows belonging to the same partition,
// and returns result rows"). in holds the partition's rows, one slice per
// stage input. Reducers must be deterministic in their input: the cluster
// restarts failed attempts and verifies repeatability.
type Reducer func(part int, in [][]Row, emit func(Row)) error

// Stage is one map-reduce stage: a partitioning function (the "map" side)
// plus a reducer applied to every partition.
type Stage struct {
	Name      string
	Inputs    []string
	Output    string
	OutSchema *Schema
	// NumPartitions defaults to the cluster's machine count — the paper's
	// hash(key) mod #machines scheme (§III-C.3).
	NumPartitions int
	// Partition maps a row (from input src) to a partition key hash.
	// Rows with equal hashes meet in the same reducer invocation.
	Partition func(r Row, src int) uint64
	// PartitionCols, when set instead of Partition, declares the key
	// columns per input source (hash = temporal.HashRow over them).
	// Declaring columns rather than a function is what enables the
	// columnar map fast path: columnar input segments are hashed
	// column-at-a-time (dictionary entries hashed once, not once per
	// row) and routed by index permutation instead of materializing
	// rows. Row-backed inputs behave exactly as with
	// PartitionByCols(PartitionCols).
	PartitionCols [][]int
	// RunKeyCols, set alongside RunKey, names per source the int64
	// column RunKey reads (-1 for none), so the columnar path can check
	// run order against the raw column vector. RunKeyCols[src] must
	// agree with RunKey(r, src) == r[RunKeyCols[src]].AsInt().
	RunKeyCols []int
	// MultiPartition, when set, supersedes Partition and may replicate a
	// row into several partitions (given directly as partition indexes in
	// [0, NumPartitions)). TiMR's temporal partitioning uses this: events
	// in a span-overlap region belong to both adjacent spans (§III-B).
	MultiPartition func(r Row, src int, nparts int) []int
	Reduce         Reducer
	// ReduceRuns, when set, supersedes Reduce and additionally receives
	// the shuffle's run structure: runs[src] lists the lengths of the
	// consecutive row runs that make up in[src]. Each run is a contiguous
	// chunk of one input partition in its original order, so it is
	// time-sorted whenever that input partition was — which lets
	// order-sensitive reducers merge runs instead of re-sorting the whole
	// partition. Inputs are materialized in memory before the reducer
	// runs; out-of-core reducers use ReduceSegments instead.
	ReduceRuns func(part int, in [][]Row, runs [][]int, emit func(Row)) error
	// ReduceSegments, when set, supersedes Reduce and ReduceRuns: the
	// reducer receives the shuffle output as per-source segment lists
	// (each segment one shuffle run, resident or spilled) and pulls rows
	// through RowReaders instead of receiving whole row slices — the
	// out-of-core path TiMR's reducer P runs on.
	ReduceSegments func(part int, in [][]Segment, emit func(Row)) error
	// RunKey, when set, extracts the sort key each input partition is
	// ordered by (per source). The map phase uses it to annotate every
	// shuffle run's Segment.Sorted flag inline, which is the only moment
	// sortedness can be established without re-reading a spilled run.
	// When nil, runs are conservatively marked unsorted.
	RunKey func(r Row, src int) int64
}

// SpillAll, as a MemoryBudget, forces every shuffle run and output
// partition to disk — the "spill everything" end of the equivalence
// sweep.
const SpillAll int64 = -1

// Config describes the simulated cluster.
type Config struct {
	Machines    int     // parallel reducer slots (paper: ~150)
	FailureRate float64 // probability that a reducer attempt fails
	MaxAttempts int     // per reducer task (default 4)
	Seed        int64   // seed for failure injection
	// ShufflePerRow is the modeled cost of repartitioning one row over
	// the network (write + transfer + read), charged to the makespan
	// accounting; it does not slow real execution.
	ShufflePerRow time.Duration
	// MapWorkers caps the worker pool of every stage phase (map,
	// reduce). Zero (the default) uses min(Machines, GOMAXPROCS); 1
	// forces the serial reference path that the shuffle benchmark and
	// determinism tests compare against. The shuffled row order is
	// identical for every setting.
	MapWorkers int
	// MemoryBudget bounds the estimated resident bytes (see RowBytes) a
	// stage may hold for shuffle runs, and separately for its output
	// partitions. 0 (the zero value) means unlimited — everything stays
	// resident, byte-for-byte the pre-spill behavior. A negative value
	// (SpillAll) spills every run and output segment. A positive value
	// keeps runs resident in deterministic (partition, source, map-task)
	// order until the budget is spent, then spills the rest, so the
	// spill set is a pure function of the input — never of goroutine
	// scheduling.
	MemoryBudget int64
	// SpillDir roots the cluster's spill directory (default: the OS temp
	// dir). Created lazily on first spill; removed by Cluster.Close.
	SpillDir string
	// SpillFS is the file-system seam spill files are created through
	// (default: the real OS, dur.OS{}). Tests substitute dur.FaultFS to
	// exercise full disks, torn writes and failed fsyncs against the
	// production spill paths.
	SpillFS dur.FS
}

// DefaultConfig is a 150-machine failure-free cluster, mirroring the
// paper's experimental setup. The 5µs/row shuffle charge models writing,
// transferring and re-reading a ~100-byte row through 2012-era disks and
// interconnect — roughly the per-row CPU cost of the engine, as on real
// clusters where repartitioning a dataset costs about as much as one
// processing pass over it.
func DefaultConfig() Config {
	return Config{Machines: 150, MaxAttempts: 4, ShufflePerRow: 5 * time.Microsecond}
}

// TaskStat records one reducer task's accounting.
type TaskStat struct {
	Stage     string
	Partition int
	Rows      int
	Attempts  int
	Duration  time.Duration // successful attempt only
	// RetryTime is the time burned by failed attempts of this task. The
	// cluster really runs those attempts (and discards their output), so
	// their cost must appear in the load model: a machine that spends 3
	// attempts on a partition is occupied for all 3, and with a nonzero
	// failure rate the makespan must grow accordingly.
	RetryTime time.Duration
}

// StageStat aggregates a stage's accounting.
type StageStat struct {
	Name         string
	InputRows    int
	ShuffleRows  int
	ShuffleBytes int // estimated repartitioned volume (see RowBytes)
	OutputRows   int
	Partitions   int
	Failures     int
	// Spill accounting: segments and encoded bytes this stage wrote to
	// spill files, and the bytes/wall-time it spent reading spilled
	// segments back (its own shuffle runs plus any spilled input from
	// upstream stages).
	SpillSegments  int
	SpillBytes     int64
	SpillReadBytes int64
	SpillReadNs    int64
	// Maps records one entry per map task (a contiguous chunk of one
	// input partition, see mapChunkRows): rows scanned and the real time
	// spent partitioning them. Map tasks never fail in the simulator
	// (partitioning is deterministic and side-effect free), so Attempts
	// is always 1 and RetryTime zero.
	Maps     []TaskStat
	Tasks    []TaskStat
	WallTime time.Duration // real elapsed time of the stage
}

// TotalTaskTime sums successful reducer durations (the "work").
func (s *StageStat) TotalTaskTime() time.Duration {
	var d time.Duration
	for _, t := range s.Tasks {
		d += t.Duration
	}
	return d
}

// TotalMapTime sums map task durations (the partitioning work).
func (s *StageStat) TotalMapTime() time.Duration {
	var d time.Duration
	for _, t := range s.Maps {
		d += t.Duration
	}
	return d
}

// TotalRetryTime sums time spent in failed attempts across tasks.
func (s *StageStat) TotalRetryTime() time.Duration {
	var d time.Duration
	for _, t := range s.Tasks {
		d += t.RetryTime
	}
	return d
}

// MaxTaskRows returns the largest reducer input (rows) across tasks.
func (s *StageStat) MaxTaskRows() int {
	max := 0
	for _, t := range s.Tasks {
		if t.Rows > max {
			max = t.Rows
		}
	}
	return max
}

// RowSkew is the per-partition skew of the stage: max reducer input over
// mean reducer input (1.0 = perfectly balanced). Skew bounds speedup —
// the slowest reducer gates the stage — which is why the paper's
// temporal partitioning matters for keyless queries.
func (s *StageStat) RowSkew() float64 {
	if len(s.Tasks) == 0 {
		return 0
	}
	total := 0
	for _, t := range s.Tasks {
		total += t.Rows
	}
	mean := float64(total) / float64(len(s.Tasks))
	if mean == 0 {
		return 0
	}
	return float64(s.MaxTaskRows()) / mean
}

// Makespan computes the simulated completion time of the stage on m
// machines: the map phase (partitioning chunks, LPT list scheduling),
// then the modeled shuffle cost (perfectly parallel across machines),
// then the reduce phase (LPT again). The phases are sequential barriers,
// as in the basic M-R model.
func (s *StageStat) Makespan(m int, shufflePerRow time.Duration) time.Duration {
	if m <= 0 {
		m = 1
	}
	shuffle := time.Duration(s.ShuffleRows) * shufflePerRow / time.Duration(m)
	return lptMakespan(s.Maps, m) + shuffle + lptMakespan(s.Tasks, m)
}

// lptMakespan schedules tasks onto m machines by longest-processing-time
// list scheduling and returns the finishing time of the last machine. A
// task occupies its machine for the failed attempts too; M-R restarts a
// failed reducer from scratch on the same input.
func lptMakespan(tasks []TaskStat, m int) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	durs := make([]time.Duration, len(tasks))
	for i, t := range tasks {
		durs[i] = t.Duration + t.RetryTime
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] > durs[j] })
	loads := make([]time.Duration, m)
	for _, d := range durs {
		// Assign to the least-loaded machine.
		min := 0
		for i := 1; i < m; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += d
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// JobStat aggregates a whole job.
type JobStat struct {
	Stages []StageStat
}

// Makespan sums per-stage makespans (stages are sequential barriers, as in
// the basic M-R model).
func (j *JobStat) Makespan(m int, shufflePerRow time.Duration) time.Duration {
	var d time.Duration
	for i := range j.Stages {
		d += j.Stages[i].Makespan(m, shufflePerRow)
	}
	return d
}

// Cluster executes jobs against an FS under a Config.
type Cluster struct {
	FS  *FS
	Cfg Config
	// Obs, when set, receives per-stage metrics under a "stage.<name>"
	// child scope: row/byte counters, failure and retry accounting, task
	// duration histograms, skew gauges, and spill traffic. Nil disables
	// emission.
	Obs *obs.Scope

	spillMu    sync.Mutex
	spillDir   string
	spillFiles []*spillFile
	spillAcct  spillIO
}

// NewCluster builds a cluster over a fresh FS.
func NewCluster(cfg Config) *Cluster {
	if cfg.Machines <= 0 {
		cfg.Machines = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	return &Cluster{FS: NewFS(), Cfg: cfg}
}

// newSpillFile opens a fresh spill file in the cluster's (lazily
// created) spill directory.
func (c *Cluster) newSpillFile() (*spillFile, error) {
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	if c.spillDir == "" {
		dir, err := os.MkdirTemp(c.Cfg.SpillDir, "timr-spill-")
		if err != nil {
			return nil, fmt.Errorf("mapreduce: create spill dir: %w", err)
		}
		c.spillDir = dir
	}
	sf, err := createSpillFile(c.Cfg.SpillFS, c.spillDir, &c.spillAcct)
	if err != nil {
		return nil, err
	}
	c.spillFiles = append(c.spillFiles, sf)
	return sf, nil
}

// releaseSpillFile closes and deletes one spill file (a stage's shuffle
// runs, dead once its reducers finish).
func (c *Cluster) releaseSpillFile(sf *spillFile) {
	c.spillMu.Lock()
	for i, f := range c.spillFiles {
		if f == sf {
			c.spillFiles = append(c.spillFiles[:i], c.spillFiles[i+1:]...)
			break
		}
	}
	c.spillMu.Unlock()
	sf.close()
}

// Close deletes every spill file the cluster created. Spilled segments
// of datasets still in the FS become unreadable; call it when done with
// the cluster's outputs. A cluster that never spilled needs no Close.
func (c *Cluster) Close() error {
	c.spillMu.Lock()
	defer c.spillMu.Unlock()
	var first error
	for _, sf := range c.spillFiles {
		if err := sf.close(); err != nil && first == nil {
			first = err
		}
	}
	c.spillFiles = nil
	if c.spillDir != "" {
		if err := os.RemoveAll(c.spillDir); err != nil && first == nil {
			first = err
		}
		c.spillDir = ""
	}
	return first
}

// Run executes the stages in order, returning accounting for the job.
func (c *Cluster) Run(stages ...Stage) (*JobStat, error) {
	job := &JobStat{}
	for i := range stages {
		st, err := c.runStage(&stages[i])
		if err != nil {
			return job, fmt.Errorf("stage %s: %w", stages[i].Name, err)
		}
		job.Stages = append(job.Stages, *st)
	}
	return job, nil
}

// injectedFailure implements deterministic failure injection: whether
// attempt a of (stage, partition) fails is a pure function of the seed.
func (c *Cluster) injectedFailure(stage string, part, attempt int) bool {
	if c.Cfg.FailureRate <= 0 {
		return false
	}
	h := temporal.HashSeed
	h = temporal.String(stage).Hash(h)
	h = temporal.Int(int64(part)).Hash(h)
	h = temporal.Int(int64(attempt)).Hash(h)
	h = temporal.Int(c.Cfg.Seed).Hash(h)
	r := rand.New(rand.NewSource(int64(h)))
	return r.Float64() < c.Cfg.FailureRate
}

// mapChunkRows is the map-task granule: each map task partitions one
// contiguous chunk of at most this many rows from one input partition.
// Small enough to load-balance skewed inputs across workers, large enough
// that per-task bookkeeping is noise. Spilled output segments are capped
// at the same row count, so a spilled segment always maps to exactly one
// map task downstream.
const mapChunkRows = 64 << 10

// mapTask is one unit of map-phase work: a chunk of rows (or a columnar
// slice) from one input, partitioned into local per-destination
// buckets. Tasks execute on any worker in any order; determinism comes
// from walking buckets in task-creation order afterwards.
type mapTask struct {
	src  int
	rows []Row              // resident input chunk …
	cb   *temporal.ColBatch // … or a resident columnar slice …
	seg  Segment            // … or a spilled segment, decoded by the worker

	buckets      [][]Row              // per destination partition, filled by the worker
	colBuckets   []*temporal.ColBatch // columnar fast path: gathered per-destination batches
	bucketBytes  []int                // RowBytes per bucket (budget accounting)
	bucketSorted []bool               // per-bucket RunKey order, nil when RunKey unset
	bytes        int                  // shuffle bytes produced (RowBytes per destination copy)
	dups         int                  // shuffle rows produced (>= input rows under MultiPartition)
	stat         TaskStat
	err          error // user partition-fn panic or spill I/O, isolated by the worker
}

// workers resolves the worker-pool size for a phase with n parallel
// tasks: MapWorkers when set, otherwise min(Machines, GOMAXPROCS),
// clamped to [1, n]. The map and reduce phases share this derivation so
// MapWorkers applies uniformly.
func (c *Cluster) workers(n int) int {
	w := c.Cfg.MapWorkers
	if w <= 0 {
		w = c.Cfg.Machines
		if max := runtime.GOMAXPROCS(0); w > max {
			w = max
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// colRunKeys resolves the raw run-key vector for a columnar chunk, or
// nil (with ok=false) when the stage's run key cannot be read off a
// column vector — in which case the task falls back to the row path so
// sortedness metadata matches the row plan exactly.
func colRunKeys(s *Stage, cb *temporal.ColBatch, src int) ([]int64, bool) {
	if s.RunKey == nil {
		return nil, true
	}
	if src >= len(s.RunKeyCols) || s.RunKeyCols[src] < 0 {
		return nil, false
	}
	keys := cb.IntCol(s.RunKeyCols[src])
	return keys, keys != nil
}

// runMapTaskColumnar is the columnar map fast path: per-row partition
// hashes and encoded byte lengths come from vectorized column passes
// (dictionary entries hashed and measured once per batch, not once per
// row), and each destination bucket is a Gather of row indexes — no Row
// headers, no cell copies. Hashes and byte sums agree bit for bit with
// the row path, so partition assignment and budget keep/spill decisions
// are identical whichever representation carries a chunk.
func runMapTaskColumnar(s *Stage, t *mapTask, nparts int, cb *temporal.ColBatch, keys []int64) error {
	n := cb.Len()
	t.stat.Rows = n
	t.bucketBytes = make([]int, nparts)
	hashes := cb.HashRows(s.PartitionCols[t.src], nil)
	lens := cb.EncodedRowLens(nil)
	idx := make([][]int32, nparts)
	var bucketLast []int64
	if s.RunKey != nil {
		t.bucketSorted = make([]bool, nparts)
		for i := range t.bucketSorted {
			t.bucketSorted[i] = true
		}
		bucketLast = make([]int64, nparts)
	}
	for i := 0; i < n; i++ {
		p := int(hashes[i] % uint64(nparts))
		if keys != nil {
			if len(idx[p]) > 0 && keys[i] < bucketLast[p] {
				t.bucketSorted[p] = false
			}
			bucketLast[p] = keys[i]
		}
		idx[p] = append(idx[p], int32(i))
		b := int(lens[i])
		t.bucketBytes[p] += b
		t.dups++
		t.bytes += b
	}
	t.colBuckets = make([]*temporal.ColBatch, nparts)
	for p, list := range idx {
		if len(list) > 0 {
			t.colBuckets[p] = cb.Gather(list)
		}
	}
	return nil
}

// runMapTask partitions one task's rows into per-destination buckets,
// tracking per-bucket byte volume and (when the stage declares a
// RunKey) whether each bucket remains sorted by it — the only moment
// run sortedness can be recorded without re-reading the run.
func runMapTask(s *Stage, t *mapTask, nparts int) error {
	cb := t.cb
	if cb == nil && t.rows == nil && t.seg.Len() > 0 {
		var err error
		if cb, err = t.seg.ColBatch(); err != nil {
			return err
		}
	}
	if cb != nil && s.PartitionCols != nil && s.MultiPartition == nil {
		if keys, ok := colRunKeys(s, cb, t.src); ok {
			return runMapTaskColumnar(s, t, nparts, cb, keys)
		}
	}
	rows := t.rows
	if rows == nil {
		if cb != nil {
			rows = cb.MaterializeRows()
		} else if t.seg.Len() > 0 {
			var err error
			if rows, err = t.seg.Materialize(); err != nil {
				return err
			}
		}
	}
	t.stat.Rows = len(rows)
	t.buckets = make([][]Row, nparts)
	t.bucketBytes = make([]int, nparts)
	var bucketLast []int64
	if s.RunKey != nil {
		t.bucketSorted = make([]bool, nparts)
		for i := range t.bucketSorted {
			t.bucketSorted[i] = true
		}
		bucketLast = make([]int64, nparts)
	}
	route := func(p int, r Row, b int, key int64) {
		if bucketLast != nil {
			if len(t.buckets[p]) > 0 && key < bucketLast[p] {
				t.bucketSorted[p] = false
			}
			bucketLast[p] = key
		}
		t.buckets[p] = append(t.buckets[p], r)
		t.bucketBytes[p] += b
		t.dups++
		t.bytes += b
	}
	for _, r := range rows {
		b := RowBytes(r)
		var key int64
		if s.RunKey != nil {
			key = s.RunKey(r, t.src)
		}
		if s.MultiPartition != nil {
			for _, p := range s.MultiPartition(r, t.src, nparts) {
				route(p, r, b, key)
			}
			continue
		}
		p := int(s.Partition(r, t.src) % uint64(nparts))
		route(p, r, b, key)
	}
	return nil
}

// stageFiles is the single owner of the spill files one stage creates.
// Every file is registered here at creation; when the stage ends the
// shuffle file (consumed only by this stage's reducers) is always
// released, and on failure the output file is too — a failed stage
// publishes no dataset, so segments pointing into that file are
// unreachable and its bytes would otherwise sit on disk until
// Cluster.Close (or leak entirely if the caller never got that far).
type stageFiles struct {
	c       *Cluster
	shuffle *spillFile
	out     *spillFile
}

func (f *stageFiles) shuffleFile() (*spillFile, error) {
	if f.shuffle == nil {
		sf, err := f.c.newSpillFile()
		if err != nil {
			return nil, err
		}
		f.shuffle = sf
	}
	return f.shuffle, nil
}

func (f *stageFiles) outFile() (*spillFile, error) {
	if f.out == nil {
		sf, err := f.c.newSpillFile()
		if err != nil {
			return nil, err
		}
		f.out = sf
	}
	return f.out, nil
}

func (f *stageFiles) finish(failed bool) {
	if f.shuffle != nil {
		f.c.releaseSpillFile(f.shuffle)
		f.shuffle = nil
	}
	if failed && f.out != nil {
		f.c.releaseSpillFile(f.out)
		f.out = nil
	}
}

func (c *Cluster) runStage(s *Stage) (*StageStat, error) {
	files := &stageFiles{c: c}
	stat, err := c.runStageFiles(s, files)
	files.finish(err != nil)
	return stat, err
}

func (c *Cluster) runStageFiles(s *Stage, files *stageFiles) (*StageStat, error) {
	start := time.Now()
	ioStart := c.spillAcct.snapshot()
	nparts := s.NumPartitions
	if nparts <= 0 {
		nparts = c.Cfg.Machines
	}
	stat := &StageStat{Name: s.Name, Partitions: nparts}
	if s.Reduce == nil && s.ReduceRuns == nil && s.ReduceSegments == nil {
		return stat, fmt.Errorf("stage %s: no reducer", s.Name)
	}
	if s.PartitionCols != nil {
		if s.Partition != nil {
			return stat, fmt.Errorf("stage %s: set Partition or PartitionCols, not both", s.Name)
		}
		s.Partition = PartitionByCols(s.PartitionCols)
	}

	// ---- Map phase: read inputs, partition rows in parallel ----
	// Chunk every input partition into map tasks in (src, partition,
	// segment, chunk) order; that fixed order is what the shuffle-run walk
	// below replays, so the shuffled row order is identical no matter how
	// many workers run or how they interleave. A spilled input segment is
	// one map task (its writer capped it at mapChunkRows); resident
	// segments are sliced zero-copy.
	var tasks []*mapTask
	for src, name := range s.Inputs {
		ds, err := c.FS.Read(name)
		if err != nil {
			return stat, err
		}
		for p := 0; p < ds.NumPartitions(); p++ {
			for _, seg := range ds.Partition(p) {
				if seg.Spilled() {
					tasks = append(tasks, &mapTask{src: src, seg: seg})
					continue
				}
				if cb := seg.ResidentColumnar(); cb != nil {
					for off := 0; off < cb.Len(); off += mapChunkRows {
						end := off + mapChunkRows
						if end > cb.Len() {
							end = cb.Len()
						}
						tasks = append(tasks, &mapTask{src: src, cb: cb.Slice(off, end)})
					}
					continue
				}
				rows := seg.Resident()
				for off := 0; off < len(rows); off += mapChunkRows {
					end := off + mapChunkRows
					if end > len(rows) {
						end = len(rows)
					}
					tasks = append(tasks, &mapTask{src: src, rows: rows[off:end]})
				}
			}
		}
	}
	workers := c.workers(len(tasks))
	var next atomic.Int64
	var mwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				t0 := time.Now()
				// Isolate user partition-fn panics: one poisoned row must
				// fail the job with a diagnosable error, not kill the
				// process (and every other in-flight task) with it.
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							t.err = fmt.Errorf("mapreduce: stage %s: map task %d panicked: %v", s.Name, i, rec)
						}
					}()
					t.err = runMapTask(s, t, nparts)
				}()
				t.stat.Stage = s.Name
				t.stat.Partition = i
				t.stat.Attempts = 1
				t.stat.Duration = time.Since(t0)
			}
		}()
	}
	mwg.Wait()
	for _, t := range tasks {
		if t.err != nil {
			return stat, t.err
		}
	}

	// ---- Shuffle-run walk: assemble per-partition segment lists ----
	// parts[p][src] lists the non-empty (p, src) buckets in task-creation
	// order — row-identical to the serial single-pass shuffle, each bucket
	// one run. The walk is sequential and deterministic, which makes the
	// budget decision deterministic too: runs stay resident in (partition,
	// source, task) order until MemoryBudget is spent, the rest spill as
	// (possibly sorted) runs to one stage-lifetime spill file.
	budget := c.Cfg.MemoryBudget
	parts := make([][][]Segment, nparts)
	var resident int64
	for p := 0; p < nparts; p++ {
		parts[p] = make([][]Segment, len(s.Inputs))
		for src := range s.Inputs {
			for _, t := range tasks {
				if t.src != src {
					continue
				}
				var colb *temporal.ColBatch
				nrows := 0
				if t.colBuckets != nil {
					if colb = t.colBuckets[p]; colb != nil {
						nrows = colb.Len()
					}
				} else if t.buckets != nil {
					nrows = len(t.buckets[p])
				}
				if nrows == 0 {
					continue
				}
				sorted := t.bucketSorted != nil && t.bucketSorted[p]
				keep := budget == 0 || (budget > 0 && resident+int64(t.bucketBytes[p]) <= budget)
				if keep {
					resident += int64(t.bucketBytes[p])
					if colb != nil {
						parts[p][src] = append(parts[p][src], ColumnarSegment(colb, sorted))
					} else {
						parts[p][src] = append(parts[p][src], ResidentSegment(t.buckets[p], sorted))
					}
					continue
				}
				// Shuffle runs are consumed only by this stage's reducers;
				// the file is released by stageFiles when the stage ends.
				sf, err := files.shuffleFile()
				if err != nil {
					return stat, err
				}
				var seg Segment
				if colb != nil {
					seg, err = sf.writeColSegment(colb, sorted)
					t.colBuckets[p] = nil // evicted
				} else {
					seg, err = sf.writeSegment(t.buckets[p], sorted)
					t.buckets[p] = nil // evicted
				}
				if err != nil {
					return stat, err
				}
				parts[p][src] = append(parts[p][src], seg)
			}
		}
	}
	for _, t := range tasks {
		stat.InputRows += t.stat.Rows
		stat.ShuffleRows += t.dups
		stat.ShuffleBytes += t.bytes
		stat.Maps = append(stat.Maps, t.stat)
		// Resident runs stay referenced by their segments.
		t.buckets, t.colBuckets = nil, nil
	}

	// ---- Reduce phase: run reducers on a bounded worker pool ----
	workers = c.workers(nparts)
	type result struct {
		part int
		rows []Row
		stat TaskStat
		err  error
	}
	sem := make(chan struct{}, workers)
	results := make([]result, nparts)
	var wg sync.WaitGroup
	for p := 0; p < nparts; p++ {
		n := 0
		for _, segs := range parts[p] {
			for i := range segs {
				n += segs[i].Len()
			}
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(p, n int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := result{part: p, stat: TaskStat{Stage: s.Name, Partition: p, Rows: n}}
			// The materialized-input compat paths (Reduce, ReduceRuns)
			// decode spilled runs once, before the attempt loop: retried
			// attempts rerun on the same input, as before.
			var in [][]Row
			var runs [][]int
			if s.ReduceSegments == nil {
				var err error
				if in, runs, err = materializeRuns(parts[p]); err != nil {
					res.err = err
					results[p] = res
					return
				}
			}
			succeeded := false
			var lastPanic any
			for attempt := 1; attempt <= c.Cfg.MaxAttempts; attempt++ {
				res.stat.Attempts = attempt
				var out []Row
				t0 := time.Now()
				fail := c.injectedFailure(s.Name, p, attempt)
				emit := func(r Row) { out = append(out, r) }
				var err error
				panicked := false
				// Isolate user reducer panics: a panicking reducer is a
				// failed attempt — output discarded, time charged, task
				// restarted — exactly like an injected machine failure,
				// instead of taking down the whole process.
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							panicked = true
							lastPanic = rec
						}
					}()
					switch {
					case s.ReduceSegments != nil:
						err = s.ReduceSegments(p, parts[p], emit)
					case s.ReduceRuns != nil:
						err = s.ReduceRuns(p, in, runs, emit)
					default:
						err = s.Reduce(p, in, emit)
					}
				}()
				if fail || panicked {
					// The attempt's partial output is discarded, exactly
					// as M-R discards output of failed reducers; the task
					// is then restarted from scratch (§III-C.1). The time
					// it burned is real machine occupancy, though — charge
					// it, or makespans would be blind to the failure rate.
					res.stat.RetryTime += time.Since(t0)
					continue
				}
				if err != nil {
					res.err = err
					break
				}
				res.stat.Duration = time.Since(t0)
				res.rows = out
				succeeded = true
				break
			}
			if !succeeded && res.err == nil {
				if lastPanic != nil {
					res.err = fmt.Errorf("partition %d failed after %d attempts (last panic: %v)", p, c.Cfg.MaxAttempts, lastPanic)
				} else {
					res.err = fmt.Errorf("partition %d failed after %d attempts", p, c.Cfg.MaxAttempts)
				}
			}
			results[p] = res
		}(p, n)
	}
	wg.Wait()

	// ---- Output assembly: resident up to the budget, spilled beyond ----
	// Output keeps its own budget pass (the shuffle runs are dead by now).
	// Spilled output segments are capped at mapChunkRows so a downstream
	// map phase gets bounded tasks.
	out := NewDataset(s.OutSchema, nparts)
	var outResident int64
	for p := range results {
		res := &results[p]
		if res.stat.Rows == 0 {
			continue
		}
		if res.err != nil {
			return stat, res.err
		}
		stat.Failures += res.stat.Attempts - 1
		stat.Tasks = append(stat.Tasks, res.stat)
		stat.OutputRows += len(res.rows)
		if budget == 0 {
			out.Append(p, res.rows)
			continue
		}
		for off := 0; off < len(res.rows); off += mapChunkRows {
			end := off + mapChunkRows
			if end > len(res.rows) {
				end = len(res.rows)
			}
			chunk := res.rows[off:end]
			var chunkBytes int64
			for _, r := range chunk {
				chunkBytes += int64(RowBytes(r))
			}
			if budget > 0 && outResident+chunkBytes <= budget {
				outResident += chunkBytes
				out.Append(p, chunk)
				continue
			}
			of, err := files.outFile()
			if err != nil {
				return stat, err
			}
			seg, err := of.writeSegment(chunk, false)
			if err != nil {
				return stat, err
			}
			out.AppendSegment(p, seg)
		}
	}
	if s.Output != "" {
		c.FS.Write(s.Output, out)
	}
	ioEnd := c.spillAcct.snapshot()
	stat.SpillSegments = int(ioEnd.segments - ioStart.segments)
	stat.SpillBytes = ioEnd.bytes - ioStart.bytes
	stat.SpillReadBytes = ioEnd.readBytes - ioStart.readBytes
	stat.SpillReadNs = ioEnd.readNs - ioStart.readNs
	stat.WallTime = time.Since(start)
	c.emitStageMetrics(stat)
	return stat, nil
}

// materializeRuns builds the contiguous per-source row slices (and run
// lengths) the materialized reducer signatures expect, decoding spilled
// runs as needed.
func materializeRuns(segs [][]Segment) (in [][]Row, runs [][]int, err error) {
	in = make([][]Row, len(segs))
	runs = make([][]int, len(segs))
	for src, list := range segs {
		total := 0
		for i := range list {
			total += list[i].Len()
		}
		if total == 0 {
			continue
		}
		rows := make([]Row, 0, total)
		for i := range list {
			mat, err := list[i].Materialize()
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, mat...)
			runs[src] = append(runs[src], list[i].Len())
		}
		in[src] = rows
	}
	return in, runs, nil
}

// emitStageMetrics publishes a completed stage's accounting into the
// cluster's obs scope (no-op when Obs is nil). Counters accumulate across
// jobs run on the same cluster; gauges are high watermarks.
func (c *Cluster) emitStageMetrics(stat *StageStat) {
	if c.Obs == nil {
		return
	}
	sc := c.Obs.Child("stage." + stat.Name)
	sc.Counter("input_rows").Add(int64(stat.InputRows))
	sc.Counter("shuffle_rows").Add(int64(stat.ShuffleRows))
	sc.Counter("shuffle_bytes").Add(int64(stat.ShuffleBytes))
	sc.Counter("output_rows").Add(int64(stat.OutputRows))
	sc.Counter("tasks").Add(int64(len(stat.Tasks)))
	sc.Counter("map_tasks").Add(int64(len(stat.Maps)))
	sc.Counter("map_ns").Add(int64(stat.TotalMapTime()))
	sc.Counter("failures").Add(int64(stat.Failures))
	sc.Counter("retry_ns").Add(int64(stat.TotalRetryTime()))
	sc.Counter("spill_segments").Add(int64(stat.SpillSegments))
	sc.Counter("spill_bytes").Add(stat.SpillBytes)
	sc.Counter("spill_read_bytes").Add(stat.SpillReadBytes)
	sc.Counter("spill_read_ns").Add(stat.SpillReadNs)
	sc.Gauge("max_task_rows").SetMax(int64(stat.MaxTaskRows()))
	// Skew ×100 so the integer gauge keeps two decimals of resolution.
	sc.Gauge("row_skew_x100").SetMax(int64(stat.RowSkew() * 100))
	h := sc.Histogram("task_time")
	for _, t := range stat.Tasks {
		h.Observe(t.Duration + t.RetryTime)
	}
	mh := sc.Histogram("map_time")
	for _, t := range stat.Maps {
		mh.Observe(t.Duration)
	}
}

// RowBytes returns the exact serialized size of a row in the shared
// binary row codec — the same bytes one row occupies in a spill frame.
// MemoryBudget keep/spill accounting charges this, so a "4KB" budget
// really bounds 4KB of encoded rows; the old 8-bytes-per-value estimate
// drifted from the varint encoding and let budgeted partitions hold
// arbitrarily more than their nominal limit.
func RowBytes(r Row) int {
	return temporal.RowEncodedLen(r)
}

// PartitionByCols builds a Partition function hashing the given column
// positions (per input source).
func PartitionByCols(colsPerSrc [][]int) func(Row, int) uint64 {
	return func(r Row, src int) uint64 {
		return temporal.HashRow(r, colsPerSrc[src])
	}
}
