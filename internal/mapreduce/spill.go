package mapreduce

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"timr/internal/dur"
	"timr/internal/temporal"
)

// Out-of-core data plane. A partition of a Dataset — and the shuffle
// output handed to a reducer — is an ordered list of Segments, each
// either resident (a []Row) or spilled to a temp file. Spilled segments
// are streams of length-prefixed rows in the shared binary row codec
// (internal/temporal/codec.go), the same encoding operator checkpoints
// use, so one codec serves both persistence layers.
//
// Spill is a budget decision, not a correctness one: the row order a
// consumer observes through a RowReader is identical whether a segment
// is resident or spilled, which is what makes pipeline output
// bit-identical across every MemoryBudget setting.

// maxSpillFrame caps a single row frame; a longer length prefix means
// the file is corrupt, and failing beats allocating attacker-sized
// buffers.
const maxSpillFrame = 1 << 30

// spillIO aggregates spill traffic. Cluster-owned files share the
// cluster's accumulator, so a stage's spill activity is the
// before/after delta; standalone files (tests) get their own.
type spillIO struct {
	segments  atomic.Int64
	bytes     atomic.Int64
	readBytes atomic.Int64
	readNs    atomic.Int64
}

// spillCounts is a point-in-time copy of a spillIO.
type spillCounts struct {
	segments, bytes, readBytes, readNs int64
}

func (s *spillIO) snapshot() spillCounts {
	return spillCounts{
		segments:  s.segments.Load(),
		bytes:     s.bytes.Load(),
		readBytes: s.readBytes.Load(),
		readNs:    s.readNs.Load(),
	}
}

// spillFile is one temp file holding many segments back to back. Writes
// are buffered and serialized under mu; the first read seals the file
// (flushes the buffer), after which concurrent readers use ReadAt
// through independent SectionReaders.
type spillFile struct {
	path string
	io   *spillIO
	fs   dur.FS

	mu  sync.Mutex
	f   dur.File
	w   *bufio.Writer // non-nil until sealed
	off int64
	// enc is reused across columnar block writes (under mu): its
	// dictionary-compaction scratch amortizes across the many buckets
	// that share one ingest dictionary.
	enc temporal.Encoder
}

// createSpillFile opens a fresh spill file through the given FS seam
// (dur.OS{} in production; tests substitute a fault-injecting FS to
// exercise full disks and failed fsyncs against the real spill paths).
func createSpillFile(fs dur.FS, dir string, acct *spillIO) (*spillFile, error) {
	if fs == nil {
		fs = dur.OS{}
	}
	f, err := fs.CreateTemp(dir, "seg-*.spill")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: create spill file: %w", err)
	}
	return &spillFile{
		path: f.Name(),
		io:   acct,
		fs:   fs,
		f:    f,
		w:    bufio.NewWriterSize(f, 64<<10),
	}, nil
}

// writeSegment appends rows as one spilled segment and returns it.
func (sf *spillFile) writeSegment(rows []Row, sorted bool) (Segment, error) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.w == nil {
		return Segment{}, fmt.Errorf("mapreduce: spill file %s already sealed for reading", sf.path)
	}
	start := sf.off
	var enc temporal.Encoder
	var hdr [binary.MaxVarintLen64]byte
	for _, r := range rows {
		enc.Reset()
		enc.Row(r)
		n := binary.PutUvarint(hdr[:], uint64(enc.Len()))
		if _, err := sf.w.Write(hdr[:n]); err != nil {
			return Segment{}, fmt.Errorf("mapreduce: spill write: %w", err)
		}
		if _, err := sf.w.Write(enc.Bytes()); err != nil {
			return Segment{}, fmt.Errorf("mapreduce: spill write: %w", err)
		}
		sf.off += int64(n) + int64(enc.Len())
	}
	size := sf.off - start
	sf.io.segments.Add(1)
	sf.io.bytes.Add(size)
	return Segment{file: sf, off: start, size: size, n: len(rows), sorted: sorted}, nil
}

// writeColSegment appends a columnar batch as one spilled segment: a
// single columnar block (colcodec.go) occupying the segment's whole
// byte range — no per-row framing, decoded back into vectors in one
// pass by Segment.ColBatch.
func (sf *spillFile) writeColSegment(cb *temporal.ColBatch, sorted bool) (Segment, error) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.w == nil {
		return Segment{}, fmt.Errorf("mapreduce: spill file %s already sealed for reading", sf.path)
	}
	sf.enc.Reset()
	sf.enc.ColBatch(cb)
	if _, err := sf.w.Write(sf.enc.Bytes()); err != nil {
		return Segment{}, fmt.Errorf("mapreduce: spill write: %w", err)
	}
	start := sf.off
	size := int64(sf.enc.Len())
	sf.off += size
	sf.io.segments.Add(1)
	sf.io.bytes.Add(size)
	return Segment{file: sf, off: start, size: size, n: cb.Len(), sorted: sorted, columnar: true}, nil
}

// seal flushes buffered writes, fsyncs the file, and switches it to
// read mode. The sync matters: a sealed segment may be re-read long
// after the writing stage finished, and an OS crash in between must not
// be able to feed a reducer a hole where its shuffle run was. Flush and
// sync failures are wrapped distinctly so callers can tell a full
// buffer drain from a storage-layer refusal.
func (sf *spillFile) seal() error {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.w != nil {
		if err := sf.w.Flush(); err != nil {
			return fmt.Errorf("mapreduce: spill flush: %w", err)
		}
		if err := sf.f.Sync(); err != nil {
			return fmt.Errorf("mapreduce: spill sync: %w", err)
		}
		sf.w = nil
	}
	return nil
}

// close releases the handle and deletes the file; segments pointing at
// it become unreadable. A close failure (the write side's last chance
// to report an error) and a remove failure are distinct problems —
// both are surfaced, separately wrapped, rather than the first being
// folded into the second.
func (sf *spillFile) close() error {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	sf.w = nil
	var errs []error
	if err := sf.f.Close(); err != nil {
		errs = append(errs, fmt.Errorf("mapreduce: spill close: %w", err))
	}
	if err := sf.fs.Remove(sf.path); err != nil {
		errs = append(errs, fmt.Errorf("mapreduce: spill remove: %w", err))
	}
	return errors.Join(errs...)
}

// countingReader charges read bytes and wall time to the file's spillIO.
type countingReader struct {
	r  io.Reader
	io *spillIO
}

func (c *countingReader) Read(p []byte) (int, error) {
	t0 := time.Now()
	n, err := c.r.Read(p)
	c.io.readBytes.Add(int64(n))
	c.io.readNs.Add(int64(time.Since(t0)))
	return n, err
}

// Segment is one contiguous chunk of a partition: resident rows, a
// resident columnar batch, or a byte range of a spill file (per-row
// frames, or one columnar block when columnar is set). Segments are
// immutable once built; copying the struct is cheap and safe.
type Segment struct {
	rows     []Row
	cb       *temporal.ColBatch
	file     *spillFile
	off      int64
	size     int64
	n        int
	sorted   bool
	columnar bool // spilled segment holds one columnar block
}

// ResidentSegment wraps rows (borrowed, not copied) as an in-memory
// segment. sorted declares that the rows are ordered by the stage's run
// key (see Stage.RunKey) — callers that cannot vouch for it must pass
// false.
func ResidentSegment(rows []Row, sorted bool) Segment {
	return Segment{rows: rows, n: len(rows), sorted: sorted}
}

// ColumnarSegment wraps a columnar batch (borrowed, not copied) as an
// in-memory segment; sorted as in ResidentSegment.
func ColumnarSegment(cb *temporal.ColBatch, sorted bool) Segment {
	return Segment{cb: cb, n: cb.Len(), sorted: sorted}
}

// Len returns the row count.
func (s *Segment) Len() int { return s.n }

// Spilled reports whether the segment lives in a spill file.
func (s *Segment) Spilled() bool { return s.file != nil }

// Sorted reports whether the rows are ordered by the producing stage's
// run key. Unsorted spilled segments must be materialized and sorted by
// the consumer; sorted ones can stream through a k-way merge.
func (s *Segment) Sorted() bool { return s.sorted }

// Resident returns the in-memory rows (borrowed), or nil for spilled
// and columnar segments.
func (s *Segment) Resident() []Row { return s.rows }

// ResidentColumnar returns the in-memory columnar batch (borrowed), or
// nil for row-backed and spilled segments.
func (s *Segment) ResidentColumnar() *temporal.ColBatch { return s.cb }

// ColBatch returns the segment's columnar batch: the resident batch
// (borrowed), or a one-pass decode of a spilled columnar block. It
// returns (nil, nil) for row-backed segments — callers fall back to
// Materialize or a RowReader.
func (s *Segment) ColBatch() (*temporal.ColBatch, error) {
	if s.cb != nil {
		return s.cb, nil
	}
	if s.file == nil || !s.columnar {
		return nil, nil
	}
	if err := s.file.seal(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	buf := make([]byte, s.size)
	if _, err := s.file.f.ReadAt(buf, s.off); err != nil {
		return nil, fmt.Errorf("mapreduce: spill read: %w", err)
	}
	s.file.io.readBytes.Add(s.size)
	s.file.io.readNs.Add(int64(time.Since(t0)))
	dec := temporal.NewDecoder(buf)
	cb := dec.ColBatch()
	if err := dec.Done(); err != nil {
		return nil, err
	}
	if cb.Len() != s.n {
		return nil, fmt.Errorf("mapreduce: columnar block holds %d rows, segment expects %d", cb.Len(), s.n)
	}
	return cb, nil
}

// SpilledBytes returns the on-disk size of a spilled segment (0 when
// resident).
func (s *Segment) SpilledBytes() int64 { return s.size }

// Materialize returns all rows of the segment: the underlying slice
// (borrowed — callers must not mutate) when resident, a fresh decode of
// the spill file range otherwise. Columnar segments materialize a fresh
// slab-backed row view.
func (s *Segment) Materialize() ([]Row, error) {
	if s.cb != nil || s.columnar {
		cb, err := s.ColBatch()
		if err != nil {
			return nil, err
		}
		return cb.MaterializeRows(), nil
	}
	if s.file == nil {
		return s.rows, nil
	}
	out := make([]Row, 0, s.n)
	rd := NewRowReader(*s)
	for {
		r, ok, err := rd.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// Open returns a pull iterator over the segment's rows.
func (s *Segment) Open() *RowReader { return NewRowReader(*s) }

// SpillRows writes rows as one spilled segment into a fresh temp file
// under dir, returning the segment and a release func that closes and
// deletes the file. It exists for tests that need spilled segments
// without running a Cluster; production spill goes through the
// cluster's MemoryBudget machinery.
func SpillRows(dir string, rows []Row, sorted bool) (Segment, func() error, error) {
	sf, err := createSpillFile(dur.OS{}, dir, &spillIO{})
	if err != nil {
		return Segment{}, nil, err
	}
	seg, err := sf.writeSegment(rows, sorted)
	if err != nil {
		sf.close()
		return Segment{}, nil, err
	}
	return seg, sf.close, nil
}

// RowReader is a pull iterator over the rows of a segment list, in
// order. Resident segments are walked in place (no copies, no decode);
// spilled segments stream through a buffered reader one row frame at a
// time, so a reducer's working set stays bounded no matter how large
// its input partition is.
//
// A RowReader is single-goroutine; open one reader per consumer.
type RowReader struct {
	segs []Segment
	i    int // next segment
	err  error

	// current resident segment
	rows []Row
	ri   int

	// current spilled segment
	br  *bufio.Reader
	rem int
	buf []byte
	dec temporal.Decoder
}

// NewRowReader returns a reader over the given segments in order.
func NewRowReader(segs ...Segment) *RowReader {
	return &RowReader{segs: segs}
}

// Next returns the next row. ok is false when the input is exhausted.
// After an error, every subsequent call returns the same error.
func (r *RowReader) Next() (row Row, ok bool, err error) {
	for {
		if r.err != nil {
			return nil, false, r.err
		}
		if r.rows != nil {
			if r.ri < len(r.rows) {
				row = r.rows[r.ri]
				r.ri++
				return row, true, nil
			}
			r.rows = nil
		}
		if r.br != nil {
			if r.rem > 0 {
				row, r.err = r.readFrame()
				if r.err != nil {
					return nil, false, r.err
				}
				r.rem--
				return row, true, nil
			}
			r.br = nil
		}
		if r.i >= len(r.segs) {
			return nil, false, nil
		}
		seg := &r.segs[r.i]
		r.i++
		if seg.cb != nil || seg.columnar {
			// Columnar segments materialize per segment (bounded by the
			// producer's chunking) and are then walked like resident rows.
			rows, err := seg.Materialize()
			if err != nil {
				r.err = err
				return nil, false, r.err
			}
			r.rows, r.ri = rows, 0
			continue
		}
		if seg.file == nil {
			r.rows, r.ri = seg.rows, 0
			continue
		}
		if err := seg.file.seal(); err != nil {
			r.err = err
			return nil, false, r.err
		}
		src := io.NewSectionReader(seg.file.f, seg.off, seg.size)
		r.br = bufio.NewReaderSize(&countingReader{r: src, io: seg.file.io}, 32<<10)
		r.rem = seg.n
	}
}

func (r *RowReader) readFrame() (Row, error) {
	ln, err := binary.ReadUvarint(r.br)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: spill read: %w", err)
	}
	if ln > maxSpillFrame {
		return nil, fmt.Errorf("mapreduce: spill frame of %d bytes exceeds cap (corrupt spill file)", ln)
	}
	if uint64(cap(r.buf)) < ln {
		r.buf = make([]byte, ln)
	}
	buf := r.buf[:ln]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, fmt.Errorf("mapreduce: spill read: %w", err)
	}
	r.dec.Reset(buf)
	row := r.dec.Row()
	if err := r.dec.Done(); err != nil {
		return nil, err
	}
	return row, nil
}
