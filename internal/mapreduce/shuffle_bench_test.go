package mapreduce

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"timr/internal/temporal"
)

// The shuffle benchmark proves the tentpole win: partitioning 1M+ rows
// through the columnar fast path (decode-once ingest, vectorized
// hashing and byte accounting, index-gather routing) must beat the
// row-at-a-time carrier by >= 2x, while producing byte-identical
// shuffled datasets (pinned by TestColumnarInputMatchesRowInput and
// TestParallelMapByteIdenticalToSerial).

const benchShuffleRows = 1 << 20 // ~1M rows

var (
	shuffleBenchOnce  sync.Once
	shuffleBenchRowDS *Dataset
	shuffleBenchColDS *Dataset
)

// benchShuffleInput builds ~1M rows with a string column (realistic
// per-row hashing and byte-accounting cost), spread over 16 input
// partitions so the map phase has tasks to fan out — once as plain row
// segments and once as columnar batches (the ingest shape a real log
// reader produces after its single decode).
func benchShuffleInput() (rowDS, colDS *Dataset) {
	shuffleBenchOnce.Do(func() {
		schema := temporal.NewSchema(
			temporal.Field{Name: "K", Kind: temporal.KindInt},
			temporal.Field{Name: "V", Kind: temporal.KindInt},
			temporal.Field{Name: "Tag", Kind: temporal.KindString},
		)
		const inParts = 16
		per := benchShuffleRows / inParts
		rds := NewDataset(schema, inParts)
		cds := NewDataset(schema, inParts)
		v := 0
		for p := 0; p < inParts; p++ {
			rows := make([]Row, per)
			for i := range rows {
				rows[i] = Row{
					temporal.Int(int64(v % 4096)),
					temporal.Int(int64(v)),
					temporal.String(fmt.Sprintf("user-%07d", v%100000)),
				}
				v++
			}
			rds.Append(p, rows)
			cds.AppendColumnar(p, temporal.ColBatchFromRows(rows, 3), false)
		}
		shuffleBenchRowDS = rds
		shuffleBenchColDS = cds
	})
	return shuffleBenchRowDS, shuffleBenchColDS
}

func benchShuffleStage(schema *Schema, columnar bool) Stage {
	st := Stage{
		Name: "shuffle", Inputs: []string{"in"}, Output: "out", OutSchema: schema,
		NumPartitions: 64,
	}
	// No-op reducers: the benchmark isolates the map/shuffle path. The
	// columnar variant takes segments so the shuffle's batches are not
	// materialized to rows just to be discarded.
	if columnar {
		st.PartitionCols = [][]int{{0, 2}}
		st.ReduceSegments = func(part int, in [][]Segment, emit func(Row)) error { return nil }
	} else {
		st.Partition = PartitionByCols([][]int{{0, 2}})
		st.Reduce = func(part int, in [][]Row, emit func(Row)) error { return nil }
	}
	return st
}

func benchShuffle(b *testing.B, mapWorkers int, columnar bool) {
	rowDS, colDS := benchShuffleInput()
	ds := rowDS
	if columnar {
		ds = colDS
	}
	st := benchShuffleStage(ds.Schema, columnar)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Machines: 64, MapWorkers: mapWorkers})
		c.FS.Write("in", ds)
		if _, err := c.Run(st); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ds.Rows())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkShuffle_1M_Serial(b *testing.B)   { benchShuffle(b, 1, true) }
func BenchmarkShuffle_1M_Parallel(b *testing.B) { benchShuffle(b, 0, true) }
func BenchmarkShuffle_1M_RowPath(b *testing.B)  { benchShuffle(b, 0, false) }

// benchSpill runs the same 1M-row repartition but with a reducer that
// consumes its input (summing an int column), so a spilling run pays
// both the encode/write and the streamed read-back — the end-to-end
// out-of-core cost against the resident reference. Columnar runs read
// the column straight off each shuffle batch; row runs stream rows.
func benchSpill(b *testing.B, budget int64, columnar bool) {
	rowDS, colDS := benchShuffleInput()
	ds := rowDS
	if columnar {
		ds = colDS
	}
	st := benchShuffleStage(ds.Schema, columnar)
	st.Name = "spill"
	st.Reduce = nil
	var sum int64 // reducers run concurrently; accumulate atomically
	st.ReduceSegments = func(part int, in [][]Segment, emit func(Row)) error {
		var local int64
		for i := range in[0] {
			seg := &in[0][i]
			if cb, err := seg.ColBatch(); err != nil {
				return err
			} else if cb != nil {
				if vs := cb.IntCol(1); vs != nil {
					for _, v := range vs {
						local += v
					}
					continue
				}
			}
			rd := NewRowReader(*seg)
			for {
				r, ok, err := rd.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				local += r[1].AsInt()
			}
		}
		atomic.AddInt64(&sum, local)
		return nil
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Machines: 64, MemoryBudget: budget, SpillDir: dir})
		c.FS.Write("in", ds)
		if _, err := c.Run(st); err != nil {
			b.Fatal(err)
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
	}
	if sum == 0 {
		b.Fatal("reducer consumed nothing")
	}
	b.ReportMetric(float64(ds.Rows())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkSpill_1M_Resident(b *testing.B) { benchSpill(b, 0, true) }
func BenchmarkSpill_1M_SpillAll(b *testing.B) { benchSpill(b, SpillAll, true) }
func BenchmarkSpill_1M_RowPath(b *testing.B)  { benchSpill(b, 0, false) }
