package mapreduce

import (
	"fmt"
	"sync"
	"testing"

	"timr/internal/temporal"
)

// The shuffle benchmark proves the tentpole win: partitioning 1M+ rows in
// parallel must beat the serial reference by >= 2x on a 4+ core host,
// while producing byte-identical shuffled datasets (pinned by
// TestParallelMapByteIdenticalToSerial).

const benchShuffleRows = 1 << 20 // ~1M rows

var (
	shuffleBenchOnce sync.Once
	shuffleBenchDS   *Dataset
)

// benchShuffleInput builds ~1M rows with a string column (realistic
// per-row hashing and byte-accounting cost), spread over 16 input
// partitions so the map phase has tasks to fan out.
func benchShuffleInput() *Dataset {
	shuffleBenchOnce.Do(func() {
		schema := temporal.NewSchema(
			temporal.Field{Name: "K", Kind: temporal.KindInt},
			temporal.Field{Name: "V", Kind: temporal.KindInt},
			temporal.Field{Name: "Tag", Kind: temporal.KindString},
		)
		const inParts = 16
		per := benchShuffleRows / inParts
		ds := NewDataset(schema, inParts)
		v := 0
		for p := 0; p < inParts; p++ {
			rows := make([]Row, per)
			for i := range rows {
				rows[i] = Row{
					temporal.Int(int64(v % 4096)),
					temporal.Int(int64(v)),
					temporal.String(fmt.Sprintf("user-%07d", v%100000)),
				}
				v++
			}
			ds.Append(p, rows)
		}
		shuffleBenchDS = ds
	})
	return shuffleBenchDS
}

func benchShuffle(b *testing.B, mapWorkers int) {
	ds := benchShuffleInput()
	st := Stage{
		Name: "shuffle", Inputs: []string{"in"}, Output: "out", OutSchema: ds.Schema,
		NumPartitions: 64,
		Partition:     PartitionByCols([][]int{{0, 2}}),
		// No-op reducer: the benchmark isolates the map/shuffle path.
		Reduce: func(part int, in [][]Row, emit func(Row)) error { return nil },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Machines: 64, MapWorkers: mapWorkers})
		c.FS.Write("in", ds)
		if _, err := c.Run(st); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ds.Rows())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkShuffle_1M_Serial(b *testing.B)   { benchShuffle(b, 1) }
func BenchmarkShuffle_1M_Parallel(b *testing.B) { benchShuffle(b, 0) }

// benchSpill runs the same 1M-row repartition but with a reducer that
// consumes its input, so a spilling run pays both the encode/write and
// the streamed read-back — the end-to-end out-of-core cost against the
// resident reference.
func benchSpill(b *testing.B, budget int64) {
	ds := benchShuffleInput()
	st := Stage{
		Name: "spill", Inputs: []string{"in"}, Output: "out", OutSchema: ds.Schema,
		NumPartitions: 64,
		Partition:     PartitionByCols([][]int{{0, 2}}),
		ReduceSegments: func(part int, in [][]Segment, emit func(Row)) error {
			rd := NewRowReader(in[0]...)
			for {
				_, ok, err := rd.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
		},
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCluster(Config{Machines: 64, MemoryBudget: budget, SpillDir: dir})
		c.FS.Write("in", ds)
		if _, err := c.Run(st); err != nil {
			b.Fatal(err)
		}
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ds.Rows())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkSpill_1M_Resident(b *testing.B) { benchSpill(b, 0) }
func BenchmarkSpill_1M_SpillAll(b *testing.B) { benchSpill(b, SpillAll) }
