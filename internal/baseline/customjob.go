package baseline

import (
	"fmt"
	"sort"
	"strings"

	"timr/internal/mapreduce"
	"timr/internal/ml"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// serializeCustomModel encodes a model deterministically (the custom
// pipeline's own copy of bt.SerializeModel, as with everything else here).
func serializeCustomModel(m *ml.Model) string {
	ids := make([]int64, 0, len(m.Weights))
	for id := range m.Weights {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "%.12g", m.Bias)
	b.WriteByte(';')
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%.12g", id, m.Weights[id])
	}
	return b.String()
}

func sortInt64s(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Dataset names written by the custom M-R pipeline.
const (
	CustomDSClean   = "custom.clean"
	CustomDSLabeled = "custom.labeled"
	CustomDSTrain   = "custom.train"
	CustomDSScores  = "custom.scores"
	CustomDSReduced = "custom.reduced"
	CustomDSModels  = "custom.models"
)

var (
	customLabeledSchema = temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
		temporal.Field{Name: "Clicked", Kind: temporal.KindInt},
	)
	customTrainSchema = temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
		temporal.Field{Name: "Clicked", Kind: temporal.KindInt},
		temporal.Field{Name: "Keyword", Kind: temporal.KindInt},
		temporal.Field{Name: "KwCount", Kind: temporal.KindInt},
	)
	customScoreSchema = temporal.NewSchema(
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
		temporal.Field{Name: "Keyword", Kind: temporal.KindInt},
		temporal.Field{Name: "Win", Kind: temporal.KindInt},
		temporal.Field{Name: "Z", Kind: temporal.KindFloat},
	)
	customModelSchema = temporal.NewSchema(
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
		temporal.Field{Name: "Model", Kind: temporal.KindString},
	)
)

// CustomBTJob runs the hand-written BT pipeline as six map-reduce stages
// on the cluster — the configuration the paper times against TiMR in
// Figure 14 (right). Unlike TiMR, every reducer is query-specific code.
func CustomBTJob(c *mapreduce.Cluster, input string, p CustomParams) (*mapreduce.JobStat, error) {
	userCol := func(col int) func(temporal.Row, int) uint64 {
		return mapreduce.PartitionByCols([][]int{{col}})
	}
	stages := []mapreduce.Stage{
		{
			Name: "custom-botelim", Inputs: []string{input}, Output: CustomDSClean,
			OutSchema: workload.UnifiedSchema(), Partition: userCol(2),
			Reduce: func(part int, in [][]mapreduce.Row, emit func(mapreduce.Row)) error {
				for _, r := range CustomBotElim(in[0], p) {
					emit(r)
				}
				return nil
			},
		},
		{
			Name: "custom-label", Inputs: []string{CustomDSClean}, Output: CustomDSLabeled,
			OutSchema: customLabeledSchema, Partition: userCol(2),
			Reduce: func(part int, in [][]mapreduce.Row, emit func(mapreduce.Row)) error {
				for _, r := range CustomLabel(in[0], p) {
					emit(r)
				}
				return nil
			},
		},
		{
			Name:   "custom-traindata",
			Inputs: []string{CustomDSLabeled, CustomDSClean}, Output: CustomDSTrain,
			OutSchema: customTrainSchema,
			Partition: mapreduce.PartitionByCols([][]int{{1}, {2}}), // UserId in each schema
			Reduce: func(part int, in [][]mapreduce.Row, emit func(mapreduce.Row)) error {
				for _, r := range CustomTrainData(in[0], in[1], p) {
					emit(r)
				}
				return nil
			},
		},
		{
			Name:   "custom-featureselect",
			Inputs: []string{CustomDSLabeled, CustomDSTrain}, Output: CustomDSScores,
			OutSchema: customScoreSchema,
			Partition: mapreduce.PartitionByCols([][]int{{2}, {2}}), // AdId in each schema
			Reduce: func(part int, in [][]mapreduce.Row, emit func(mapreduce.Row)) error {
				for _, s := range CustomFeatureSelect(in[0], in[1], p) {
					emit(temporal.Row{
						temporal.Int(s.AdID), temporal.Int(s.Keyword),
						temporal.Int(s.Win), temporal.Float(s.Z),
					})
				}
				return nil
			},
		},
		{
			Name:   "custom-reduce",
			Inputs: []string{CustomDSTrain, CustomDSScores}, Output: CustomDSReduced,
			OutSchema: customTrainSchema,
			Partition: mapreduce.PartitionByCols([][]int{{2}, {0}}), // AdId
			Reduce: func(part int, in [][]mapreduce.Row, emit func(mapreduce.Row)) error {
				scores := make([]KeywordScore, len(in[1]))
				for i, r := range in[1] {
					scores[i] = KeywordScore{
						AdID: r[0].AsInt(), Keyword: r[1].AsInt(),
						Win: r[2].AsInt(), Z: r[3].AsFloat(),
					}
				}
				for _, r := range CustomReduce(in[0], scores, p.TrainPeriod) {
					emit(r)
				}
				return nil
			},
		},
		{
			Name:   "custom-models",
			Inputs: []string{CustomDSReduced}, Output: CustomDSModels,
			OutSchema: customModelSchema,
			Partition: mapreduce.PartitionByCols([][]int{{2}}), // AdId
			Reduce: func(part int, in [][]mapreduce.Row, emit func(mapreduce.Row)) error {
				models := CustomModels(in[0], p)
				ads := make([]int64, 0, len(models))
				for ad := range models {
					ads = append(ads, ad)
				}
				sortInt64s(ads)
				for _, ad := range ads {
					emit(temporal.Row{temporal.Int(ad), temporal.String(serializeCustomModel(models[ad]))})
				}
				return nil
			},
		},
	}
	return c.Run(stages...)
}
