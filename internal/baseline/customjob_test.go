package baseline

import (
	"testing"

	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/ml"
	"timr/internal/temporal"
	"timr/internal/workload"
)

func TestCustomBTJobMatchesTiMRPipeline(t *testing.T) {
	// The full Figure-14 comparison is only fair if the staged custom job
	// computes the same result as TiMR's pipeline on the same cluster.
	d := workload.Generate(workload.Config{
		Users: 300, Keywords: 150, AdClasses: 2, Days: 2, Seed: 9,
		BotFraction: 0.02, BaseCTR: 0.1,
	})
	p := bt.DefaultParams()
	p.T1, p.T2 = 25, 50
	p.TrainPeriod = 24 * temporal.Hour
	p.ZThreshold = 0
	cp := CustomParams{
		T1: p.T1, T2: p.T2, BotHop: p.BotHop, Tau: p.Tau, D: p.D,
		TrainPeriod: p.TrainPeriod, ZThreshold: p.ZThreshold, ModelEpochs: p.ModelEpochs,
	}

	// Custom staged job.
	cl1 := mapreduce.NewCluster(mapreduce.Config{Machines: 4})
	cl1.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), d.Rows))
	stat, err := CustomBTJob(cl1, "events", cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(stat.Stages) != 6 {
		t.Fatalf("stages = %d", len(stat.Stages))
	}

	// TiMR pipeline.
	cl2 := mapreduce.NewCluster(mapreduce.Config{Machines: 4})
	tm := core.New(cl2, core.DefaultConfig())
	cl2.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), d.Rows))
	pipe := bt.NewPipeline(p, tm)
	if err := pipe.Run("events"); err != nil {
		t.Fatal(err)
	}

	// Compare the train datasets (the richest intermediate) as multisets.
	timrTrain, err := pipe.Events(bt.DSTrain)
	if err != nil {
		t.Fatal(err)
	}
	customTrain := cl1.FS.MustRead(CustomDSTrain).Flatten()
	sameRowMultiset(t, "train", customTrain, eventPayloadRows(timrTrain))

	// And the reduced datasets.
	timrReduced, err := pipe.Events(bt.DSReduced)
	if err != nil {
		t.Fatal(err)
	}
	customReduced := cl1.FS.MustRead(CustomDSReduced).Flatten()
	sameRowMultiset(t, "reduced", customReduced, eventPayloadRows(timrReduced))

	// Models from the staged job must parse and carry weights.
	models := cl1.FS.MustRead(CustomDSModels).Flatten()
	if len(models) == 0 {
		t.Fatal("no models")
	}
	for _, r := range models {
		m, err := bt.ParseModel(r[1].AsString())
		if err != nil {
			t.Fatal(err)
		}
		if m == nil {
			t.Fatal("nil model")
		}
	}
}

func TestCustomBTJobDeterministicUnderFailures(t *testing.T) {
	d := workload.Generate(workload.Config{
		Users: 150, Keywords: 100, AdClasses: 2, Days: 1, Seed: 4, BaseCTR: 0.1,
	})
	cp := CustomParams{
		T1: 25, T2: 50, BotHop: 15 * temporal.Minute, Tau: 6 * temporal.Hour,
		D: 5 * temporal.Minute, TrainPeriod: 12 * temporal.Hour, ModelEpochs: 5,
	}
	var ref []temporal.Row
	for seed := int64(0); seed < 3; seed++ {
		cl := mapreduce.NewCluster(mapreduce.Config{
			Machines: 3, FailureRate: 0.3, MaxAttempts: 50, Seed: seed,
		})
		cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), d.Rows))
		if _, err := CustomBTJob(cl, "events", cp); err != nil {
			t.Fatal(err)
		}
		got := cl.FS.MustRead(CustomDSTrain).Flatten()
		if ref == nil {
			ref = got
		} else {
			sameRowMultiset(t, "train-under-failures", ref, got)
		}
	}
}

func TestSerializeCustomModel(t *testing.T) {
	m := &ml.Model{Bias: 0.25, Weights: map[int64]float64{7: -1, 3: 2}}
	s := serializeCustomModel(m)
	back, err := bt.ParseModel(s) // wire format is shared
	if err != nil {
		t.Fatal(err)
	}
	if back.Bias != 0.25 || back.Weights[7] != -1 || back.Weights[3] != 2 {
		t.Fatalf("round trip: %q -> %+v", s, back)
	}
}

func TestCustomRunningClickCountStageOnCluster(t *testing.T) {
	cl := mapreduce.NewCluster(mapreduce.Config{Machines: 4})
	schema := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
	var rows []temporal.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, clickRow(temporal.Time(i), int64(i), int64(i%3)))
	}
	cl.FS.Write("clicks", mapreduce.SinglePartition(schema, rows))
	if _, err := cl.Run(CustomRunningClickCountStage("clicks", "out", 10)); err != nil {
		t.Fatal(err)
	}
	out := cl.FS.MustRead("out")
	if out.Rows() != 100 {
		t.Fatalf("rows = %d, want one per click", out.Rows())
	}
}
