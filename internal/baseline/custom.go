package baseline

import (
	"sort"

	"timr/internal/mapreduce"
	"timr/internal/ml"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// This file is the paper's "custom reducers" alternative (§II-C, §V-B):
// every BT phase hand-written against raw rows, with bespoke in-memory
// data structures instead of declarative temporal queries. It produces
// bit-identical results to the CQ pipeline (the tests enforce it), which
// is exactly the paper's point: this took the most code and care of
// anything in this repository, is specific to these queries, makes
// multiple passes over the data, and cannot be reused over live streams.

// CustomParams mirrors bt.Params for the hand-written pipeline (duplicated
// here because a custom implementation would not share the framework's
// types — and so LoC comparisons stay honest).
type CustomParams struct {
	T1, T2      int64
	BotHop      temporal.Time
	Tau         temporal.Time
	D           temporal.Time
	TrainPeriod temporal.Time
	ZThreshold  float64
	ModelEpochs int
}

// ---------------------------------------------------------------------
// RunningClickCount (Example 1), the strawman's "practical alternative":
// partition by AdId and keep a linked-list window per ad.
// ---------------------------------------------------------------------

// CustomRunningClickCount processes one AdId partition: rows sorted by
// time, a FIFO window of click timestamps, one output per click with the
// refreshed count of clicks in (t-window, t].
func CustomRunningClickCount(rows []temporal.Row, window temporal.Time) []temporal.Row {
	sorted := append([]temporal.Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i][0].AsInt() < sorted[j][0].AsInt() })
	type entry struct{ t temporal.Time }
	perAd := make(map[int64][]entry) // ad -> FIFO of timestamps in window
	var out []temporal.Row
	for _, r := range sorted {
		t, ad := r[0].AsInt(), r[2].AsInt()
		q := perAd[ad]
		// Expire entries that left the window.
		lo := 0
		for lo < len(q) && q[lo].t <= t-window {
			lo++
		}
		q = append(q[lo:], entry{t})
		perAd[ad] = q
		out = append(out, temporal.Row{temporal.Int(t), temporal.Int(ad), temporal.Int(int64(len(q)))})
	}
	return out
}

// CustomRunningClickCountStage wraps the reducer for the M-R cluster,
// partitioned by AdId — the full strawman solution.
func CustomRunningClickCountStage(input, output string, window temporal.Time) mapreduce.Stage {
	outSchema := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
		temporal.Field{Name: "Count", Kind: temporal.KindInt},
	)
	return mapreduce.Stage{
		Name: "custom-rcc", Inputs: []string{input}, Output: output, OutSchema: outSchema,
		Partition: mapreduce.PartitionByCols([][]int{{2}}),
		Reduce: func(part int, in [][]mapreduce.Row, emit func(mapreduce.Row)) error {
			for _, r := range CustomRunningClickCount(in[0], window) {
				emit(r)
			}
			return nil
		},
	}
}

// ---------------------------------------------------------------------
// Custom BT phase 1: bot elimination.
// ---------------------------------------------------------------------

// userEvents is a user's activity split by stream, time-sorted.
type userEvents struct {
	all      []temporal.Row
	clicks   []temporal.Time
	searches []temporal.Time
}

func groupByUser(rows []temporal.Row) map[int64]*userEvents {
	users := make(map[int64]*userEvents)
	for _, r := range rows {
		u := r[2].AsInt()
		ue := users[u]
		if ue == nil {
			ue = &userEvents{}
			users[u] = ue
		}
		ue.all = append(ue.all, r)
		switch r[1].AsInt() {
		case workload.StreamClick:
			ue.clicks = append(ue.clicks, r[0].AsInt())
		case workload.StreamKeyword:
			ue.searches = append(ue.searches, r[0].AsInt())
		}
	}
	for _, ue := range users {
		sort.SliceStable(ue.all, func(i, j int) bool { return ue.all[i][0].AsInt() < ue.all[j][0].AsInt() })
		sort.Slice(ue.clicks, func(i, j int) bool { return ue.clicks[i] < ue.clicks[j] })
		sort.Slice(ue.searches, func(i, j int) bool { return ue.searches[i] < ue.searches[j] })
	}
	return users
}

// countIn counts sorted timestamps in [lo, hi).
func countIn(ts []temporal.Time, lo, hi temporal.Time) int64 {
	a := sort.Search(len(ts), func(i int) bool { return ts[i] >= lo })
	b := sort.Search(len(ts), func(i int) bool { return ts[i] >= hi })
	return int64(b - a)
}

// CustomBotElim drops every event that falls inside a flagged bot
// interval: the user is a bot during [b, b+hop) when their clicks exceed
// T1 or searches exceed T2 within [b-τ, b), b a hop boundary.
func CustomBotElim(rows []temporal.Row, p CustomParams) []temporal.Row {
	users := groupByUser(rows)
	var out []temporal.Row
	for _, ue := range users {
		for _, r := range ue.all {
			t := r[0].AsInt()
			b := (t / p.BotHop) * p.BotHop // hop boundary owning t
			bot := countIn(ue.clicks, b-p.Tau, b) > p.T1 ||
				countIn(ue.searches, b-p.Tau, b) > p.T2
			if !bot {
				out = append(out, r)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i][0].AsInt() < out[j][0].AsInt() })
	return out
}

// ---------------------------------------------------------------------
// Custom BT phase 2: click / non-click labeling.
// ---------------------------------------------------------------------

// CustomLabel emits (Time, UserId, AdId, Clicked): clicks as-is, plus
// impressions with no same-user same-ad click in (t, t+d].
func CustomLabel(clean []temporal.Row, p CustomParams) []temporal.Row {
	type key struct{ user, ad int64 }
	clicks := make(map[key][]temporal.Time)
	for _, r := range clean {
		if r[1].AsInt() == workload.StreamClick {
			k := key{r[2].AsInt(), r[3].AsInt()}
			clicks[k] = append(clicks[k], r[0].AsInt())
		}
	}
	for _, ts := range clicks {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}
	var out []temporal.Row
	for _, r := range clean {
		t, u, ka := r[0].AsInt(), r[2].AsInt(), r[3].AsInt()
		switch r[1].AsInt() {
		case workload.StreamClick:
			out = append(out, temporal.Row{temporal.Int(t), temporal.Int(u), temporal.Int(ka), temporal.Int(1)})
		case workload.StreamImpression:
			if countIn(clicks[key{u, ka}], t+1, t+p.D+1) == 0 {
				out = append(out, temporal.Row{temporal.Int(t), temporal.Int(u), temporal.Int(ka), temporal.Int(0)})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i][0].AsInt() < out[j][0].AsInt() })
	return out
}

// ---------------------------------------------------------------------
// Custom BT phase 3: training-data generation (UBP join).
// ---------------------------------------------------------------------

// CustomTrainData emits one row per (labeled impression, profile keyword):
// (Time, UserId, AdId, Clicked, Keyword, KwCount) with KwCount the number
// of times the user searched the keyword in (t-τ, t].
func CustomTrainData(labeled, clean []temporal.Row, p CustomParams) []temporal.Row {
	// Per-user keyword searches, sorted.
	type ks struct {
		t  temporal.Time
		kw int64
	}
	perUser := make(map[int64][]ks)
	for _, r := range clean {
		if r[1].AsInt() == workload.StreamKeyword {
			u := r[2].AsInt()
			perUser[u] = append(perUser[u], ks{r[0].AsInt(), r[3].AsInt()})
		}
	}
	for _, s := range perUser {
		sort.SliceStable(s, func(i, j int) bool { return s[i].t < s[j].t })
	}
	// Per-user labeled impressions, sorted, then a sliding multiset.
	byUser := make(map[int64][]temporal.Row)
	for _, r := range labeled {
		u := r[1].AsInt()
		byUser[u] = append(byUser[u], r)
	}
	var out []temporal.Row
	for u, imps := range byUser {
		sort.SliceStable(imps, func(i, j int) bool { return imps[i][0].AsInt() < imps[j][0].AsInt() })
		searches := perUser[u]
		lo, hi := 0, 0
		window := make(map[int64]int64)
		for _, r := range imps {
			t := r[0].AsInt()
			for hi < len(searches) && searches[hi].t <= t {
				window[searches[hi].kw]++
				hi++
			}
			for lo < hi && searches[lo].t <= t-p.Tau {
				if window[searches[lo].kw]--; window[searches[lo].kw] == 0 {
					delete(window, searches[lo].kw)
				}
				lo++
			}
			kws := make([]int64, 0, len(window))
			for kw := range window {
				kws = append(kws, kw)
			}
			sort.Slice(kws, func(i, j int) bool { return kws[i] < kws[j] })
			for _, kw := range kws {
				out = append(out, temporal.Row{
					r[0], r[1], r[2], r[3], temporal.Int(kw), temporal.Int(window[kw]),
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i][0].AsInt() < out[j][0].AsInt() })
	return out
}

// ---------------------------------------------------------------------
// Custom BT phase 4: feature selection via the two-proportion z-test.
// ---------------------------------------------------------------------

// KeywordScore is one retained (ad, keyword) with its z-score, per
// tumbling TrainPeriod window.
type KeywordScore struct {
	AdID    int64
	Keyword int64
	Win     int64 // window index floor(Time / TrainPeriod)
	Z       float64
}

// CustomFeatureSelect aggregates clicks/non-clicks per ad and per
// (ad, keyword) within each tumbling TrainPeriod window and applies the
// z-test with the support floor, keeping |z| >= threshold.
func CustomFeatureSelect(labeled, train []temporal.Row, p CustomParams) []KeywordScore {
	type adWin struct {
		ad  int64
		win int64
	}
	type kwWin struct {
		ad, kw, win int64
	}
	adClicks := make(map[adWin]int64)
	adNon := make(map[adWin]int64)
	for _, r := range labeled {
		k := adWin{r[2].AsInt(), r[0].AsInt() / int64(p.TrainPeriod)}
		if r[3].AsInt() == 1 {
			adClicks[k]++
		} else {
			adNon[k]++
		}
	}
	kwClicks := make(map[kwWin]int64)
	kwNon := make(map[kwWin]int64)
	for _, r := range train {
		k := kwWin{r[2].AsInt(), r[4].AsInt(), r[0].AsInt() / int64(p.TrainPeriod)}
		if r[3].AsInt() == 1 {
			kwClicks[k]++
		} else {
			kwNon[k]++
		}
	}
	// Like the CQ plan's inner join of the two count streams (Figure 13),
	// a keyword is tested only when it has both clicks and non-clicks in
	// the window (the support floor would reject one-sided keywords
	// anyway).
	var out []KeywordScore
	for k, ck := range kwClicks {
		nk, ok := kwNon[k]
		if !ok {
			continue
		}
		ct := adClicks[adWin{k.ad, k.win}]
		nt := adNon[adWin{k.ad, k.win}]
		z, valid := twoProportionZ(ck, ck+nk, ct-ck, (ct+nt)-(ck+nk))
		if !valid || abs(z) < p.ZThreshold {
			continue
		}
		out = append(out, KeywordScore{AdID: k.ad, Keyword: k.kw, Win: k.win, Z: z})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.AdID != b.AdID {
			return a.AdID < b.AdID
		}
		if a.Keyword != b.Keyword {
			return a.Keyword < b.Keyword
		}
		return a.Win < b.Win
	})
	return out
}

// twoProportionZ is re-implemented here (rather than imported) for the
// same reason CustomParams exists: the custom pipeline carries its own
// copies of everything, as custom pipelines do.
func twoProportionZ(cw, iw, cwo, iwo int64) (float64, bool) {
	const minSupport = 5
	if cw < minSupport || iw < minSupport || cwo < minSupport || iwo < minSupport {
		return 0, false
	}
	p1 := float64(cw) / float64(iw)
	p2 := float64(cwo) / float64(iwo)
	v := p1*(1-p1)/float64(iw) + p2*(1-p2)/float64(iwo)
	if v <= 0 {
		return 0, false
	}
	return (p1 - p2) / sqrt(v), true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sqrt by Newton's method — the custom pipeline's author avoided a math
// import for exactly as long as it took to write this.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 64; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// ---------------------------------------------------------------------
// Custom BT phase 5+6: reduction and per-ad model fitting.
// ---------------------------------------------------------------------

// CustomReduce filters training rows to the keywords retained in the
// row's own training window (matching the CQ ReducePlan, which shifts
// each window's scores back over the period they summarize).
func CustomReduce(train []temporal.Row, scores []KeywordScore, period temporal.Time) []temporal.Row {
	keep := make(map[[3]int64]bool, len(scores))
	for _, s := range scores {
		keep[[3]int64{s.AdID, s.Keyword, s.Win}] = true
	}
	var out []temporal.Row
	for _, r := range train {
		win := r[0].AsInt() / int64(period)
		if keep[[3]int64{r[2].AsInt(), r[4].AsInt(), win}] {
			out = append(out, r)
		}
	}
	return out
}

// CustomModels fits one LR model per ad from reduced training rows.
func CustomModels(reduced []temporal.Row, p CustomParams) map[int64]*ml.Model {
	byAd := make(map[int64][]temporal.Row)
	for _, r := range reduced {
		byAd[r[2].AsInt()] = append(byAd[r[2].AsInt()], r)
	}
	cfg := ml.DefaultLRConfig()
	if p.ModelEpochs > 0 {
		cfg.Epochs = p.ModelEpochs
	}
	models := make(map[int64]*ml.Model, len(byAd))
	for ad, rows := range byAd {
		models[ad] = ml.TrainLR(customExamples(rows), cfg)
	}
	return models
}

// customExamples groups sparse rows into per-impression examples.
func customExamples(rows []temporal.Row) []ml.Example {
	type key struct{ t, user int64 }
	idx := make(map[key]int)
	var out []ml.Example
	var order []key
	for _, r := range rows {
		k := key{r[0].AsInt(), r[1].AsInt()}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			order = append(order, k)
			out = append(out, ml.Example{Clicked: r[3].AsInt() == 1})
		}
		out[i].Features = append(out[i].Features, ml.Feature{
			ID: r[4].AsInt(), Val: float64(r[5].AsInt()),
		})
	}
	for i := range out {
		out[i].Features = ml.SortFeatures(out[i].Features)
	}
	_ = order
	return out
}

// CustomBTPipeline runs every custom phase in sequence, single-node —
// the end-to-end hand-written solution measured in Figure 14.
func CustomBTPipeline(rows []temporal.Row, p CustomParams) (clean, labeled, train []temporal.Row, scores []KeywordScore, models map[int64]*ml.Model) {
	clean = CustomBotElim(rows, p)
	labeled = CustomLabel(clean, p)
	train = CustomTrainData(labeled, clean, p)
	scores = CustomFeatureSelect(labeled, train, p)
	reduced := CustomReduce(train, scores, p.TrainPeriod)
	models = CustomModels(reduced, p)
	return clean, labeled, train, scores, models
}
