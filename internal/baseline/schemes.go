package baseline

import (
	"fmt"
	"sort"

	"timr/internal/ml"
)

// Scheme is a data-reduction strategy applied to UBP feature vectors
// before model training/scoring — the axis of comparison in the paper's
// Figures 20–23.
type Scheme interface {
	Name() string
	// Transform rewrites a sparse feature vector into the scheme's
	// reduced feature space.
	Transform(fs []ml.Feature) []ml.Feature
	// Dims is the dimensionality of the reduced space (retained keywords
	// or category count).
	Dims() int
}

// TransformExamples applies a scheme to every example.
func TransformExamples(s Scheme, examples []ml.Example) []ml.Example {
	out := make([]ml.Example, len(examples))
	for i, e := range examples {
		out[i] = ml.Example{Features: s.Transform(e.Features), Clicked: e.Clicked}
	}
	return out
}

// ---- Identity (no reduction) ----

type identity struct{}

// Identity is the no-reduction scheme (the paper's "All" rows).
func Identity() Scheme { return identity{} }

func (identity) Name() string { return "None" }
func (identity) Transform(fs []ml.Feature) []ml.Feature {
	return fs
}
func (identity) Dims() int { return -1 }

// ---- KE-z: keyword elimination by z-score (the paper's contribution) ----

type kez struct {
	keep   map[int64]bool
	thresh float64
}

// NewKEZ retains keywords whose |z| meets the threshold. scores maps
// keyword id to its z-score for the ad class under study (keywords
// without a score were unsupported and are dropped).
func NewKEZ(scores map[int64]float64, thresh float64) Scheme {
	keep := make(map[int64]bool)
	for kw, z := range scores {
		if z >= thresh || z <= -thresh {
			keep[kw] = true
		}
	}
	return &kez{keep: keep, thresh: thresh}
}

func (k *kez) Name() string { return fmt.Sprintf("KE-%.2f", k.thresh) }
func (k *kez) Transform(fs []ml.Feature) []ml.Feature {
	var out []ml.Feature
	for _, f := range fs {
		if k.keep[f.ID] {
			out = append(out, f)
		}
	}
	return out
}
func (k *kez) Dims() int { return len(k.keep) }

// ---- KE-pop: popularity-based selection (Chen et al. [7]) ----

type kepop struct {
	keep map[int64]bool
	n    int
}

// NewKEPop retains the topN keywords by popularity — "the most popular
// keywords in terms of total ad clicks or rejects with that keyword in
// the user history" — which famously keeps google/facebook/msn while
// missing the predictive tail (§V-C).
func NewKEPop(popularity map[int64]int64, topN int) Scheme {
	type kv struct {
		kw  int64
		pop int64
	}
	all := make([]kv, 0, len(popularity))
	for kw, p := range popularity {
		all = append(all, kv{kw, p})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pop != all[j].pop {
			return all[i].pop > all[j].pop
		}
		return all[i].kw < all[j].kw
	})
	if topN > len(all) {
		topN = len(all)
	}
	keep := make(map[int64]bool, topN)
	for _, e := range all[:topN] {
		keep[e.kw] = true
	}
	return &kepop{keep: keep, n: topN}
}

func (k *kepop) Name() string { return fmt.Sprintf("KE-pop(%d)", k.n) }
func (k *kepop) Transform(fs []ml.Feature) []ml.Feature {
	var out []ml.Feature
	for _, f := range fs {
		if k.keep[f.ID] {
			out = append(out, f)
		}
	}
	return out
}
func (k *kepop) Dims() int { return len(k.keep) }

// ---- F-Ex: static feature extraction into a concept hierarchy ----

// CategoryBase offsets category feature ids above keyword and ad ids.
const CategoryBase int64 = 1 << 41

type fex struct {
	cats int
}

// NewFEx maps every keyword to 1–3 of cats categories via a fixed hash —
// a stand-in for the production content-categorization engine over an
// ODP-like hierarchy ("this number is always around 2000 due to the
// static mapping to a pre-defined concept hierarchy", §V-C). The mapping
// is data-independent, which is precisely its weakness: it cannot adapt
// to new keywords or interest variations.
func NewFEx(cats int) Scheme {
	if cats <= 0 {
		cats = 2000
	}
	return &fex{cats: cats}
}

func (f *fex) Name() string { return "F-Ex" }

// categoriesOf deterministically assigns a keyword its 1-3 categories.
func (f *fex) categoriesOf(kw int64) []int64 {
	h := uint64(kw)*2654435761 + 0x9e3779b97f4a7c15
	n := int(h%3) + 1
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		out = append(out, CategoryBase+int64(h%uint64(f.cats)))
	}
	return out
}

func (f *fex) Transform(fs []ml.Feature) []ml.Feature {
	var out []ml.Feature
	for _, kf := range fs {
		for _, cat := range f.categoriesOf(kf.ID) {
			out = append(out, ml.Feature{ID: cat, Val: kf.Val})
		}
	}
	return ml.SortFeatures(out)
}
func (f *fex) Dims() int { return f.cats }
