package baseline

import (
	"math"
	"sort"
	"testing"

	"timr/internal/bt"
	"timr/internal/ml"
	"timr/internal/temporal"
	"timr/internal/workload"
)

func clickRow(t temporal.Time, user, ad int64) temporal.Row {
	return temporal.Row{temporal.Int(t), temporal.Int(user), temporal.Int(ad)}
}

func TestScopeSelfJoinMatchesOracle(t *testing.T) {
	rows := []temporal.Row{
		clickRow(10, 1, 100),
		clickRow(15, 2, 100),
		clickRow(30, 3, 100),
		clickRow(12, 4, 200),
	}
	out, ok, err := ScopeRunningClickCount(SliceSource(rows), 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("aborted")
	}
	// ad 100: t=10 → {10}; t=15 → {10,15}; t=30 → {30} (others expired).
	cases := map[[2]int64]int64{
		{10, 100}: 1, {15, 100}: 2, {30, 100}: 1, {12, 200}: 1,
	}
	for k, want := range cases {
		if out[k] != want {
			t.Errorf("count%v = %d, want %d", k, out[k], want)
		}
	}
}

func TestScopeSelfJoinIntractable(t *testing.T) {
	// A dense single-ad log: join output grows quadratically and blows
	// the cap — the paper's "prohibitively expensive" outcome.
	var rows []temporal.Row
	for i := 0; i < 2000; i++ {
		rows = append(rows, clickRow(temporal.Time(i), int64(i), 1))
	}
	if _, ok, err := ScopeRunningClickCount(SliceSource(rows), 10_000, 100_000); err != nil || ok {
		t.Fatalf("expected the self-join to exceed the output cap (ok=%v err=%v)", ok, err)
	}
	if n, err := ScopeJoinOutputSize(SliceSource(rows), 10_000); err != nil || n < 1_000_000 {
		t.Errorf("predicted join size %d, want ~2M (err=%v)", n, err)
	}
}

func TestScopeJoinSizePredictionMatches(t *testing.T) {
	var rows []temporal.Row
	for i := 0; i < 300; i++ {
		rows = append(rows, clickRow(temporal.Time(i*3%101), int64(i), int64(i%5)))
	}
	out, ok, err := ScopeRunningClickCount(SliceSource(rows), 50, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("unexpected abort")
	}
	var materialized int64
	for _, c := range out {
		materialized += c
	}
	if predicted, err := ScopeJoinOutputSize(SliceSource(rows), 50); err != nil || predicted != materialized {
		t.Errorf("predicted %d != materialized %d (err=%v)", predicted, materialized, err)
	}
}

func TestCustomRunningClickCountMatchesCQ(t *testing.T) {
	// The custom linked-list reducer must agree with the declarative
	// windowed count at every click instant.
	var rows []temporal.Row
	for i := 0; i < 500; i++ {
		rows = append(rows, clickRow(temporal.Time(i*7%997), int64(i), int64(i%3)))
	}
	w := temporal.Time(100)
	custom := CustomRunningClickCount(rows, w)

	schema := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
	plan := temporal.Scan("clicks", schema).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(w).Count("C")
		})
	events, err := temporal.RunPlan(plan, map[string][]temporal.Event{
		"clicks": temporal.RowsToPointEvents(rows, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	cqAt := func(ad int64, tm temporal.Time) int64 {
		for _, e := range events {
			if e.Payload[0].AsInt() == ad && e.Contains(tm) {
				return e.Payload[1].AsInt()
			}
		}
		return -1
	}
	for _, r := range custom {
		tm, ad, cnt := r[0].AsInt(), r[1].AsInt(), r[2].AsInt()
		if got := cqAt(ad, tm); got != cnt {
			t.Fatalf("ad %d @%d: custom %d, CQ %d", ad, tm, cnt, got)
		}
	}
}

// rowsKey flattens a row for multiset comparison.
func rowsKey(r temporal.Row) string {
	s := ""
	for _, v := range r {
		s += v.String() + "|"
	}
	return s
}

func sameRowMultiset(t *testing.T, name string, a, b []temporal.Row) {
	t.Helper()
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i, r := range a {
		ka[i] = rowsKey(r)
	}
	for i, r := range b {
		kb[i] = rowsKey(r)
	}
	sort.Strings(ka)
	sort.Strings(kb)
	if len(ka) != len(kb) {
		t.Fatalf("%s: %d rows vs %d rows", name, len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: multiset differs at %d: %s vs %s", name, i, ka[i], kb[i])
		}
	}
}

func eventPayloadRows(evs []temporal.Event) []temporal.Row {
	out := make([]temporal.Row, len(evs))
	for i, e := range evs {
		out[i] = e.Payload
	}
	return out
}

func TestCustomBTPipelineMatchesCQPipeline(t *testing.T) {
	// The headline §V-B comparison is only meaningful if both pipelines
	// compute the same thing. Verify phase by phase on generated data.
	d := workload.Generate(workload.Config{
		Users: 400, Keywords: 120, AdClasses: 2, Days: 2, Seed: 5,
		BotFraction: 0.03, BaseCTR: 0.08,
	})
	p := bt.DefaultParams()
	p.T1, p.T2 = 20, 40
	p.TrainPeriod = 24 * temporal.Hour
	p.ZThreshold = 0
	cp := CustomParams{
		T1: p.T1, T2: p.T2, BotHop: p.BotHop, Tau: p.Tau, D: p.D,
		TrainPeriod: p.TrainPeriod, ZThreshold: p.ZThreshold, ModelEpochs: p.ModelEpochs,
	}

	cq, err := bt.RunSingleNode(p, d.Events())
	if err != nil {
		t.Fatal(err)
	}
	clean, labeled, train, scores, models := CustomBTPipeline(d.Rows, cp)

	sameRowMultiset(t, "clean", clean, eventPayloadRows(cq[bt.DSClean]))
	sameRowMultiset(t, "labeled", labeled, eventPayloadRows(cq[bt.DSLabeled]))
	sameRowMultiset(t, "train", train, eventPayloadRows(cq[bt.DSTrain]))

	// Scores: compare (ad, keyword, window, z) sets.
	type sk struct {
		ad, kw, win int64
	}
	cqScores := map[sk]float64{}
	for _, e := range cq[bt.DSScores] {
		win := e.LE/int64(p.TrainPeriod) - 1 // scores valid one period later
		cqScores[sk{e.Payload[0].AsInt(), e.Payload[1].AsInt(), win}] = e.Payload[2].AsFloat()
	}
	if len(cqScores) == 0 {
		t.Fatal("fixture produced no scored keywords; the comparison is vacuous")
	}
	if len(scores) != len(cqScores) {
		t.Fatalf("scores: custom %d vs CQ %d", len(scores), len(cqScores))
	}
	for _, s := range scores {
		z, ok := cqScores[sk{s.AdID, s.Keyword, s.Win}]
		if !ok {
			t.Fatalf("CQ missing score for %+v", s)
		}
		if math.Abs(z-s.Z) > 1e-6 {
			t.Fatalf("z mismatch for %+v: %v vs %v", s, s.Z, z)
		}
	}

	// Reduced data must agree too.
	reduced := CustomReduce(train, scores, p.TrainPeriod)
	sameRowMultiset(t, "reduced", reduced, eventPayloadRows(cq[bt.DSReduced]))

	if len(models) == 0 {
		t.Error("custom pipeline produced no models")
	}
}

func TestSchemesKEZ(t *testing.T) {
	s := NewKEZ(map[int64]float64{1: 3.0, 2: -2.5, 3: 0.5}, 1.28)
	fs := []ml.Feature{{ID: 1, Val: 1}, {ID: 2, Val: 2}, {ID: 3, Val: 3}, {ID: 4, Val: 4}}
	out := s.Transform(fs)
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 2 {
		t.Fatalf("out = %v", out)
	}
	if s.Dims() != 2 {
		t.Errorf("Dims = %d", s.Dims())
	}
	if s.Name() != "KE-1.28" {
		t.Errorf("Name = %s", s.Name())
	}
}

func TestSchemesKEPop(t *testing.T) {
	pop := map[int64]int64{10: 100, 20: 50, 30: 200, 40: 1}
	s := NewKEPop(pop, 2)
	out := s.Transform([]ml.Feature{{ID: 10, Val: 1}, {ID: 20, Val: 1}, {ID: 30, Val: 1}})
	if len(out) != 2 { // 30 and 10 are the top 2
		t.Fatalf("out = %v", out)
	}
	if s.Dims() != 2 {
		t.Errorf("Dims = %d", s.Dims())
	}
	// topN larger than vocabulary clamps.
	if NewKEPop(pop, 100).Dims() != 4 {
		t.Error("clamp failed")
	}
}

func TestSchemesFEx(t *testing.T) {
	s := NewFEx(2000)
	fs := []ml.Feature{{ID: 42, Val: 2}, {ID: 99, Val: 1}}
	out := s.Transform(fs)
	if len(out) == 0 {
		t.Fatal("no categories")
	}
	for _, f := range out {
		if f.ID < CategoryBase || f.ID >= CategoryBase+2000 {
			t.Fatalf("category id %d out of range", f.ID)
		}
	}
	// Deterministic mapping.
	out2 := s.Transform(fs)
	if len(out) != len(out2) {
		t.Fatal("mapping not deterministic")
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("mapping not deterministic")
		}
	}
	// Every keyword maps to 1..3 categories.
	for kw := int64(0); kw < 200; kw++ {
		n := len(s.Transform([]ml.Feature{{ID: kw, Val: 1}}))
		if n < 1 || n > 3 {
			t.Fatalf("keyword %d maps to %d categories", kw, n)
		}
	}
	if s.Dims() != 2000 || s.Name() != "F-Ex" {
		t.Error("metadata")
	}
}

func TestSchemeIdentityAndTransformExamples(t *testing.T) {
	ex := []ml.Example{
		{Features: []ml.Feature{{ID: 1, Val: 1}}, Clicked: true},
		{Features: []ml.Feature{{ID: 2, Val: 1}}, Clicked: false},
	}
	out := TransformExamples(Identity(), ex)
	if len(out) != 2 || !out[0].Clicked || len(out[0].Features) != 1 {
		t.Fatalf("out = %+v", out)
	}
	drop := NewKEZ(nil, 1.0)
	out = TransformExamples(drop, ex)
	if len(out[0].Features) != 0 || out[1].Clicked {
		t.Fatal("labels/features mishandled")
	}
}

func TestCustomModelsLearn(t *testing.T) {
	// Reuse the bt test fixture idea: keyword 100 positive, 200 negative.
	var train []temporal.Row
	ad := workload.AdIDBase
	mk := func(i int, clicked int64, kw int64) {
		train = append(train, temporal.Row{
			temporal.Int(int64(i) * 1000), temporal.Int(int64(i)), temporal.Int(ad),
			temporal.Int(clicked), temporal.Int(kw), temporal.Int(1),
		})
	}
	for i := 0; i < 60; i++ {
		c := int64(0)
		if i%2 == 0 {
			c = 1
		}
		if i < 30 {
			mk(i, c|boolToInt(i%4 != 3), 100) // mostly clicked with kw100
		} else {
			mk(i, c&boolToInt(i%4 == 0), 200) // mostly not clicked with kw200
		}
	}
	models := CustomModels(train, CustomParams{ModelEpochs: 40})
	m := models[ad]
	if m == nil {
		t.Fatal("no model")
	}
	if m.Predict([]ml.Feature{{ID: 100, Val: 1}}) <= m.Predict([]ml.Feature{{ID: 200, Val: 1}}) {
		t.Error("model failed to learn the planted signal")
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
