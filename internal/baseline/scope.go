// Package baseline implements everything the paper compares TiMR and its
// BT solution against:
//
//   - the SCOPE-style set-oriented strawman for RunningClickCount whose
//     self-join plan is intractable (§II-C);
//   - hand-written, carefully optimized custom reducers for
//     RunningClickCount and every BT phase — the "360 lines of code"
//     alternative of Figure 14;
//   - the production data-reduction baselines of §V-C: F-Ex (static
//     feature extraction into a ~2000-category concept hierarchy) and
//     KE-pop (popularity-based keyword selection, Chen et al.).
package baseline

import (
	"sort"

	"timr/internal/temporal"
)

// ScopeRunningClickCount executes the paper's §II-C SCOPE query pair
// literally:
//
//	OUT1 = SELECT a.Time, a.AdId, b.Time FROM ClickLog a JOIN ClickLog b
//	       ON a.AdId = b.AdId AND b.Time > a.Time - 6h AND b.Time <= a.Time
//	OUT2 = SELECT Time, AdId, COUNT(*) FROM OUT1 GROUP BY Time, AdId
//
// as a set-oriented (non-sequential) plan: a per-AdId self equi-join
// followed by a grouped count. Its cost is Θ(Σ_ad n_ad · w_ad) — the
// self-join materializes one row per (click, earlier-click-in-window)
// pair, which is why the paper calls the query intractable at log scale.
// maxOutput caps the materialized join size; exceeding it aborts with
// ok=false (the "intractable" outcome, observable at small scale).
//
// Rows follow the click-log schema (Time, UserId, AdId); the result maps
// (Time, AdId) to the count of clicks in (Time-window, Time].
func ScopeRunningClickCount(rows []temporal.Row, window temporal.Time, maxOutput int) (map[[2]int64]int64, bool) {
	// Group rows by AdId (the equi-join key), as a relational engine's
	// hash join would.
	byAd := make(map[int64][]temporal.Time)
	for _, r := range rows {
		ad := r[2].AsInt()
		byAd[ad] = append(byAd[ad], r[0].AsInt())
	}
	out := make(map[[2]int64]int64)
	produced := 0
	for ad, times := range byAd {
		// The set-oriented join has no order to exploit: every pair is
		// tested (a sort-merge band join is exactly the kind of
		// sequential processing SCOPE's model does not express).
		for _, ta := range times {
			for _, tb := range times {
				if tb > ta-window && tb <= ta {
					produced++
					if produced > maxOutput {
						return nil, false
					}
					out[[2]int64{ta, ad}]++
				}
			}
		}
	}
	return out, true
}

// ScopeJoinOutputSize predicts the strawman's intermediate-result size
// without materializing it (used to report the blow-up factor).
func ScopeJoinOutputSize(rows []temporal.Row, window temporal.Time) int64 {
	byAd := make(map[int64][]temporal.Time)
	for _, r := range rows {
		ad := r[2].AsInt()
		byAd[ad] = append(byAd[ad], r[0].AsInt())
	}
	var total int64
	for _, times := range byAd {
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		lo := 0
		for i, ta := range times {
			for times[lo] <= ta-window {
				lo++
			}
			total += int64(i - lo + 1)
		}
	}
	return total
}
