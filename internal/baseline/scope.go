// Package baseline implements everything the paper compares TiMR and its
// BT solution against:
//
//   - the SCOPE-style set-oriented strawman for RunningClickCount whose
//     self-join plan is intractable (§II-C);
//   - hand-written, carefully optimized custom reducers for
//     RunningClickCount and every BT phase — the "360 lines of code"
//     alternative of Figure 14;
//   - the production data-reduction baselines of §V-C: F-Ex (static
//     feature extraction into a ~2000-category concept hierarchy) and
//     KE-pop (popularity-based keyword selection, Chen et al.).
package baseline

import (
	"sort"

	"timr/internal/temporal"
)

// RowSource is a pull iterator over rows — the contract of
// (*mapreduce.RowReader).Next — so baselines scan datasets (resident or
// spilled) one row at a time instead of requiring a materialized slice.
type RowSource = func() (temporal.Row, bool, error)

// SliceSource adapts an in-memory row slice to a RowSource.
func SliceSource(rows []temporal.Row) RowSource {
	i := 0
	return func() (temporal.Row, bool, error) {
		if i >= len(rows) {
			return nil, false, nil
		}
		r := rows[i]
		i++
		return r, true, nil
	}
}

// scanByAd drains src grouping click times by AdId — the build side of
// the strawman's hash join. Only (Time, AdId) survive the scan, so even
// a spilled input costs one streaming pass, not a resident copy.
func scanByAd(src RowSource) (map[int64][]temporal.Time, error) {
	byAd := make(map[int64][]temporal.Time)
	for {
		r, ok, err := src()
		if err != nil {
			return nil, err
		}
		if !ok {
			return byAd, nil
		}
		ad := r[2].AsInt()
		byAd[ad] = append(byAd[ad], r[0].AsInt())
	}
}

// ScopeRunningClickCount executes the paper's §II-C SCOPE query pair
// literally:
//
//	OUT1 = SELECT a.Time, a.AdId, b.Time FROM ClickLog a JOIN ClickLog b
//	       ON a.AdId = b.AdId AND b.Time > a.Time - 6h AND b.Time <= a.Time
//	OUT2 = SELECT Time, AdId, COUNT(*) FROM OUT1 GROUP BY Time, AdId
//
// as a set-oriented (non-sequential) plan: a per-AdId self equi-join
// followed by a grouped count. Its cost is Θ(Σ_ad n_ad · w_ad) — the
// self-join materializes one row per (click, earlier-click-in-window)
// pair, which is why the paper calls the query intractable at log scale.
// maxOutput caps the materialized join size; exceeding it aborts with
// ok=false (the "intractable" outcome, observable at small scale).
//
// Rows follow the click-log schema (Time, UserId, AdId); the result maps
// (Time, AdId) to the count of clicks in (Time-window, Time].
func ScopeRunningClickCount(src RowSource, window temporal.Time, maxOutput int) (map[[2]int64]int64, bool, error) {
	byAd, err := scanByAd(src)
	if err != nil {
		return nil, false, err
	}
	out := make(map[[2]int64]int64)
	produced := 0
	for ad, times := range byAd {
		// The set-oriented join has no order to exploit: every pair is
		// tested (a sort-merge band join is exactly the kind of
		// sequential processing SCOPE's model does not express).
		for _, ta := range times {
			for _, tb := range times {
				if tb > ta-window && tb <= ta {
					produced++
					if produced > maxOutput {
						return nil, false, nil
					}
					out[[2]int64{ta, ad}]++
				}
			}
		}
	}
	return out, true, nil
}

// ScopeJoinOutputSize predicts the strawman's intermediate-result size
// without materializing it (used to report the blow-up factor).
func ScopeJoinOutputSize(src RowSource, window temporal.Time) (int64, error) {
	byAd, err := scanByAd(src)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, times := range byAd {
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		lo := 0
		for i, ta := range times {
			for times[lo] <= ta-window {
				lo++
			}
			total += int64(i - lo + 1)
		}
	}
	return total, nil
}
