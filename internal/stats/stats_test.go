package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTwoProportionZSupport(t *testing.T) {
	if _, ok := TwoProportionZ(4, 100, 100, 1000); ok {
		t.Error("insufficient clicks-with must fail support")
	}
	if _, ok := TwoProportionZ(5, 4, 100, 1000); ok {
		t.Error("insufficient impressions-with must fail support")
	}
	if _, ok := TwoProportionZ(50, 100, 4, 1000); ok {
		t.Error("insufficient clicks-without must fail support")
	}
	if _, ok := TwoProportionZ(50, 100, 100, 4); ok {
		t.Error("insufficient impressions-without must fail support")
	}
	if _, ok := TwoProportionZ(50, 100, 100, 1000); !ok {
		t.Error("sufficient support must pass")
	}
}

func TestTwoProportionZSign(t *testing.T) {
	// CTR with keyword 50% vs 10% without → strongly positive.
	z, ok := TwoProportionZ(50, 100, 100, 1000)
	if !ok || z <= 0 {
		t.Errorf("z = %v, ok = %v; want positive", z, ok)
	}
	// Reversed → strongly negative, same magnitude.
	z2, ok := TwoProportionZ(100, 1000, 50, 100)
	if !ok || z2 >= 0 {
		t.Errorf("z2 = %v", z2)
	}
	if math.Abs(z+z2) > 1e-9 {
		t.Errorf("antisymmetry violated: %v vs %v", z, z2)
	}
}

func TestTwoProportionZNoEffect(t *testing.T) {
	// Identical CTRs → z == 0.
	z, ok := TwoProportionZ(10, 100, 100, 1000)
	if !ok || math.Abs(z) > 1e-9 {
		t.Errorf("z = %v", z)
	}
}

func TestTwoProportionZDegenerate(t *testing.T) {
	// Both proportions 1.0 → zero variance → no valid test.
	if _, ok := TwoProportionZ(100, 100, 1000, 1000); ok {
		t.Error("degenerate variance must fail")
	}
}

func TestTwoProportionZKnownValue(t *testing.T) {
	// Hand-computed example: pK=0.2 (20/100), pK'=0.1 (100/1000).
	// se = sqrt(0.2*0.8/100 + 0.1*0.9/1000) = sqrt(0.0016+0.00009)
	z, ok := TwoProportionZ(20, 100, 100, 1000)
	if !ok {
		t.Fatal("support")
	}
	want := 0.1 / math.Sqrt(0.0016+0.00009)
	if math.Abs(z-want) > 1e-9 {
		t.Errorf("z = %v, want %v", z, want)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{1.28, 0.8997},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 0.001 {
			t.Errorf("Φ(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestZForConfidence(t *testing.T) {
	if z := ZForConfidence(0.95); math.Abs(z-1.9600) > 0.001 {
		t.Errorf("z95 = %v", z)
	}
	if z := ZForConfidence(0.80); math.Abs(z-1.2816) > 0.001 {
		t.Errorf("z80 = %v", z)
	}
	if ZForConfidence(0) != 0 {
		t.Error("conf 0")
	}
	if !math.IsInf(ZForConfidence(1), 1) {
		t.Error("conf 1")
	}
	if math.Abs(Z80-1.2816) > 0.001 || math.Abs(Z95-1.96) > 0.001 {
		t.Error("package-level thresholds wrong")
	}
}

func TestPropertyZConfidenceRoundTrip(t *testing.T) {
	err := quick.Check(func(cRaw uint16) bool {
		conf := 0.01 + 0.98*float64(cRaw)/65535
		z := ZForConfidence(conf)
		back := 2*NormalCDF(z) - 1
		return math.Abs(back-conf) < 1e-6
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("σ(0) = %v", s)
	}
	if s := Sigmoid(100); s <= 0.999 || s > 1 {
		t.Errorf("σ(100) = %v", s)
	}
	if s := Sigmoid(-100); s < 0 || s >= 0.001 {
		t.Errorf("σ(-100) = %v", s)
	}
	// Stability: no NaN at extremes.
	for _, x := range []float64{-1e9, 1e9} {
		if math.IsNaN(Sigmoid(x)) {
			t.Errorf("σ(%v) is NaN", x)
		}
	}
}

func TestPropertySigmoidSymmetry(t *testing.T) {
	err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return math.Abs(Sigmoid(x)+Sigmoid(-x)-1) < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestClickCountsMergeExact(t *testing.T) {
	// Partitioned tallies merged must give the same z as one global tally
	// — bit-for-bit, since the merged counts are identical integers.
	err := quick.Check(func(obs []bool, cut uint8) bool {
		var whole, left, right ClickCounts
		split := 0
		if n := len(obs); n > 0 {
			split = int(cut) % (n + 1)
		}
		for i, clicked := range obs {
			whole.Add(clicked)
			if i < split {
				left.Add(clicked)
			} else {
				right.Add(clicked)
			}
		}
		merged := left.Merge(right)
		if merged != whole {
			return false
		}
		total := ClickCounts{Clicks: whole.Clicks + 40, Non: whole.Non + 400}
		zw, okw := ZFromSummary(whole, total)
		zm, okm := ZFromSummary(merged, total)
		return okw == okm && zw == zm
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestZFromSummaryMatchesTwoProportionZ(t *testing.T) {
	kw := ClickCounts{Clicks: 20, Non: 80}
	total := ClickCounts{Clicks: 120, Non: 980}
	z, ok := ZFromSummary(kw, total)
	want, wok := TwoProportionZ(20, 100, 100, 1000)
	if ok != wok || z != want {
		t.Errorf("ZFromSummary = (%v, %v), want (%v, %v)", z, ok, want, wok)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
}
