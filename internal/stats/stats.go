// Package stats provides the statistical machinery of the paper's BT
// feature-selection stage: the unpooled two-proportion z-test (§IV-B.3),
// normal-distribution helpers for choosing thresholds, and small
// utilities shared by the workload generator.
package stats

import "math"

// MinSupport is the paper's support floor: "given that we have at least 5
// independent observations of clicks and impressions with and without
// keyword K".
const MinSupport = 5

// TwoProportionZ computes the unpooled two-proportion z-score of the
// paper's equation:
//
//	z = (pK − pK') / sqrt(pK(1−pK)/IK + pK'(1−pK')/IK')
//
// where pK = CK/IK is the CTR with keyword K in the user's profile and
// pK' = CK'/IK' the CTR without it. Highly positive (negative) scores
// indicate positive (negative) correlation between the keyword and clicks
// on the ad. ok is false when the test lacks support (fewer than
// MinSupport observations on either side, or a degenerate denominator).
func TwoProportionZ(clicksWith, imprWith, clicksWithout, imprWithout int64) (z float64, ok bool) {
	if clicksWith < MinSupport || imprWith < MinSupport ||
		clicksWithout < MinSupport || imprWithout < MinSupport {
		return 0, false
	}
	pk := float64(clicksWith) / float64(imprWith)
	pk2 := float64(clicksWithout) / float64(imprWithout)
	v := pk*(1-pk)/float64(imprWith) + pk2*(1-pk2)/float64(imprWithout)
	if v <= 0 {
		return 0, false
	}
	return (pk - pk2) / math.Sqrt(v), true
}

// ClickCounts is the mergeable sufficient statistic of the BT count
// stages: clicks and non-clicks observed for one key within one training
// window. Two partitions of the same window merge by addition, and the
// z-test over the merged counts equals the z-test over the union of the
// underlying observations — the algebraic exactness the incremental
// refresh path relies on.
type ClickCounts struct {
	Clicks int64
	Non    int64
}

// Add tallies one observation.
func (c *ClickCounts) Add(clicked bool) {
	if clicked {
		c.Clicks++
	} else {
		c.Non++
	}
}

// Merge returns the sum of two partial counts.
func (c ClickCounts) Merge(o ClickCounts) ClickCounts {
	return ClickCounts{Clicks: c.Clicks + o.Clicks, Non: c.Non + o.Non}
}

// Total returns the number of observations behind the statistic.
func (c ClickCounts) Total() int64 { return c.Clicks + c.Non }

// ZFromSummary computes the pipeline's two-proportion z-test from merged
// sufficient statistics: kw counts observations with the keyword in the
// profile, total counts every observation of the ad. The arithmetic is
// exactly TwoProportionZ over (CK, CK+NK, CT−CK, (CT+NT)−(CK+NK)), the
// derivation bt.FeatureSelectPlan applies to its joined count columns.
func ZFromSummary(kw, total ClickCounts) (z float64, ok bool) {
	return TwoProportionZ(kw.Clicks, kw.Total(), total.Clicks-kw.Clicks, total.Total()-kw.Total())
}

// NormalCDF is Φ(x), the standard normal CDF.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ZForConfidence returns the two-sided z threshold for a confidence level
// (e.g. 0.95 → 1.96, 0.80 → 1.28), via bisection on the normal CDF.
func ZForConfidence(conf float64) float64 {
	if conf <= 0 {
		return 0
	}
	if conf >= 1 {
		return math.Inf(1)
	}
	target := 0.5 + conf/2
	lo, hi := 0.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if NormalCDF(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Common confidence thresholds used throughout the paper's evaluation
// (80%, 95% and the doubled variants swept in Figure 20).
var (
	Z80 = ZForConfidence(0.80) // ≈ 1.28
	Z95 = ZForConfidence(0.95) // ≈ 1.96
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sigmoid is the logistic function 1/(1+e^-x), numerically stable on both
// tails.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
