package experiments

import (
	"bytes"
	"fmt"
	"time"

	"timr/internal/bt"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// refreshWorkload scales the sliding-window drill: always a 7-day log
// (one ingest per day), with the user population shrunk under Quick.
func refreshWorkload(o Options) (workload.Config, bt.Params) {
	w := o.Workload
	w.Days = 7
	if o.Quick {
		w.Users = 220
		w.Keywords = 180
		w.SearchesPerUserDay = 12
		w.ImpressionsPerUserDay = 8
	}
	p := o.Params
	p.TrainPeriod = temporal.Day
	if p.D <= 0 || p.D >= temporal.Day {
		p.D = 5 * temporal.Minute
	}
	return w, p
}

// Refresh runs the incremental-maintenance drill: the BT pipeline
// slides over a 7-day log one day at a time, once on the delta path
// (mergeable summaries, frozen-window model cache) and once as a full
// recompute of all history, asserting after every day that both leave
// byte-identical state (RefreshState.SummaryBytes). A third refresher
// runs in auto mode so the table also shows what the cost chooser —
// calibrated from the recorded stage timings — actually picks.
func Refresh(c *Context) (*Table, error) {
	w, p := refreshWorkload(c.Opt)
	data := workload.Generate(w)

	delta := bt.NewRefresher(p, w, bt.RefreshOptions{Mode: bt.ModeDelta})
	full := bt.NewRefresher(p, w, bt.RefreshOptions{Mode: bt.ModeFull, RetainHistory: true})
	auto := bt.NewRefresher(p, w, bt.RefreshOptions{Mode: bt.ModeAuto, RetainHistory: true})

	t := &Table{
		Title:  "incremental refresh: delta vs full recompute over a 7-day sliding window",
		Header: []string{"day", "raw rows", "delta", "full", "speedup", "chooser", "state", "equal"},
	}
	var totDelta, totFull time.Duration
	for day := 0; day < w.Days; day++ {
		rows := data.DayRows(day)
		dayEnd := temporal.Time(day+1) * temporal.Day

		start := time.Now()
		if err := delta.IngestDay(rows, dayEnd); err != nil {
			return nil, fmt.Errorf("refresh drill: delta day %d: %w", day, err)
		}
		dDelta := time.Since(start)

		start = time.Now()
		if err := full.IngestDay(rows, dayEnd); err != nil {
			return nil, fmt.Errorf("refresh drill: full day %d: %w", day, err)
		}
		dFull := time.Since(start)

		if err := auto.IngestDay(rows, dayEnd); err != nil {
			return nil, fmt.Errorf("refresh drill: auto day %d: %w", day, err)
		}

		db, err := delta.State.SummaryBytes()
		if err != nil {
			return nil, err
		}
		fb, err := full.State.SummaryBytes()
		if err != nil {
			return nil, err
		}
		ab, err := auto.State.SummaryBytes()
		if err != nil {
			return nil, err
		}
		equal := bytes.Equal(db, fb) && bytes.Equal(ab, fb)
		if !equal {
			return nil, fmt.Errorf("refresh drill: day %d state diverged (delta %d bytes, full %d, auto %d)", day, len(db), len(fb), len(ab))
		}

		choice := "full"
		if auto.LastDelta {
			choice = "delta"
		}
		totDelta += dDelta
		totFull += dFull
		t.AddRow(fi(int64(day)), fi(int64(len(rows))),
			dDelta.Round(time.Millisecond).String(), dFull.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(dFull)/float64(dDelta)),
			choice, fmt.Sprintf("%dKB", len(fb)/1024), "yes")
	}

	frozen := 0
	for _, m := range delta.State.Models {
		if m.Frozen {
			frozen++
		}
	}
	t.AddNote("all %d days byte-identical across delta, full, and auto paths", w.Days)
	t.AddNote("cumulative: delta %s vs full %s — %.2fx; %d/%d window models frozen (trained once, reused)",
		totDelta.Round(time.Millisecond), totFull.Round(time.Millisecond),
		float64(totFull)/float64(totDelta), frozen, len(delta.State.Models))
	return t, nil
}
