package experiments

import (
	"fmt"
	"sort"
)

// Fig17to19 reproduces Figures 17, 18 and 19: for the deodorant, laptop
// and cellphone ad classes, the keywords with the most positive and most
// negative z-scores. The workload plants the paper's keyword sets (e.g.
// icarly/celebrity/exam positive for deodorant; jobless/credit negative),
// and the table reports how many planted keywords the z-test recovered.
func Fig17to19(c *Context) (*Table, error) {
	r, err := c.BT()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figures 17-19: highest/lowest z-score keywords per ad class",
		Header: []string{"ad class", "rank", "positive keyword", "z", "negative keyword", "z"},
	}
	classes := []string{"deodorant", "laptop", "cellphone"}
	const topK = 8
	for _, name := range classes {
		ad, err := r.adOrFail(name)
		if err != nil {
			return nil, err
		}
		scores := r.Scores[ad.ID]
		type kz struct {
			kw int64
			z  float64
		}
		var all []kz
		for kw, z := range scores {
			all = append(all, kz{kw, z})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].z != all[j].z {
				return all[i].z > all[j].z
			}
			return all[i].kw < all[j].kw
		})
		plantedPos := map[int64]bool{}
		for _, k := range ad.Pos {
			plantedPos[k] = true
		}
		plantedNeg := map[int64]bool{}
		for _, k := range ad.Neg {
			plantedNeg[k] = true
		}
		hitPos, hitNeg := 0, 0
		for i := 0; i < topK; i++ {
			posName, posZ, negName, negZ := "-", "", "-", ""
			if i < len(all) && all[i].z > 0 {
				posName = r.Data.KeywordNames[all[i].kw]
				posZ = f(all[i].z)
				if plantedPos[all[i].kw] {
					hitPos++
					posName += " *"
				}
			}
			j := len(all) - 1 - i
			if j > i && all[j].z < 0 {
				negName = r.Data.KeywordNames[all[j].kw]
				negZ = f(all[j].z)
				if plantedNeg[all[j].kw] {
					hitNeg++
					negName += " *"
				}
			}
			t.AddRow(name, fi(int64(i+1)), posName, posZ, negName, negZ)
		}
		t.AddNote(fmt.Sprintf("%s: %d/%d top-positive and %d/%d top-negative keywords are planted ground truth (*)",
			name, hitPos, topK, hitNeg, topK))
	}
	t.AddNote("paper examples: deodorant + celebrity 11.0, icarly 6.7 ... jobless -1.9, credit -3.6")
	return t, nil
}
