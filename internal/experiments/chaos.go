package experiments

import (
	"fmt"
	"time"

	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/obs"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// StreamingChaos exercises the fault-tolerant streaming path: the BotElim
// fragment DAG runs as a live streaming job while partitions are crashed
// deterministically mid-wave, recovering each from its last punctuation
// checkpoint plus the bounded replay log. The table reports, per crash
// rate, how many crashes were injected and recovered, how much state was
// checkpointed and replayed, and — the paper's repeatability claim carried
// over to streaming — whether the output is bit-identical to the
// crash-free run.
func StreamingChaos(c *Context) (*Table, error) {
	cfg := c.Opt.Workload
	cfg.Users /= 4 // repeated chaotic runs; keep each cheap
	data := workload.Generate(cfg)
	events := temporal.RowsToPointEvents(data.Rows, 0)
	p := c.Opt.Params
	schemas := map[string]*temporal.Schema{bt.SourceEvents: workload.UnifiedSchema()}
	period := 15 * temporal.Minute

	run := func(rate float64, seed int64) ([]temporal.Event, *obs.Scope, time.Duration, error) {
		scope := obs.New("chaos")
		ccfg := core.DefaultConfig()
		ccfg.Obs = scope
		job, err := core.NewStreamingJob(bt.BotElimPlan(p, true), schemas,
			core.WithMachines(c.Opt.Machines),
			core.WithConfig(ccfg),
			core.WithCrash(core.CrashConfig{Rate: rate, Seed: seed}))
		if err != nil {
			return nil, nil, 0, err
		}
		src, err := job.Source(bt.SourceEvents)
		if err != nil {
			return nil, nil, 0, err
		}
		start := time.Now()
		last := temporal.Time(temporal.MinTime)
		for _, e := range events {
			if last == temporal.MinTime {
				last = e.LE
			} else if e.LE-last >= period {
				if err := job.Advance(e.LE); err != nil {
					return nil, nil, 0, err
				}
				last = e.LE
			}
			if err := src.Feed(e); err != nil {
				return nil, nil, 0, err
			}
		}
		job.Flush()
		res, err := job.Results()
		return res, scope, time.Since(start), err
	}

	total := func(sc *obs.Scope, name string) int64 {
		var n int64
		for _, pt := range sc.Snapshot() {
			if pt.Name == name {
				n += pt.Value
			}
		}
		return n
	}

	ref, refScope, refWall, err := run(0, 0)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "streaming chaos: checkpoint/replay recovery under injected partition crashes (BotElim DAG)",
		Header: []string{"crash rate", "crashes", "recoveries", "ckpt bytes", "replayed events", "output identical", "wall time vs clean"},
	}
	t.AddRow("0%", "0", "0",
		fmt.Sprintf("%d", total(refScope, "checkpoint_bytes")), "0", "-",
		refWall.Round(time.Millisecond).String())
	for _, rate := range []float64{0.1, 0.3, 0.5} {
		events, scope, wall, err := run(rate, 7)
		if err != nil {
			return nil, err
		}
		identical := temporal.EventsEqual(events, ref)
		t.AddRow(
			pct(rate),
			fmt.Sprintf("%d", total(scope, "crashes")),
			fmt.Sprintf("%d", total(scope, "recoveries")),
			fmt.Sprintf("%d", total(scope, "checkpoint_bytes")),
			fmt.Sprintf("%d", total(scope, "replayed_events")),
			fmt.Sprintf("%v", identical),
			fmt.Sprintf("%s (%.2fx)", wall.Round(time.Millisecond), float64(wall)/float64(refWall)),
		)
		if !identical {
			t.AddNote("REPRODUCTION FAILURE at rate %.0f%%: chaotic output diverged from crash-free run", rate*100)
		}
	}
	t.AddNote("recovery is lossless because checkpoints align with punctuation waves: between waves the engine state equals the checkpoint and the pending barrier input equals the replay log")
	return t, nil
}
