package experiments

import (
	"fmt"
	"time"

	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// FailureRecovery exercises §III-C.1: "TiMR works well with M-R's failure
// handling strategy of restarting failed reducers — the newly generated
// output is guaranteed to be identical when we re-process the same input
// partition." The experiment runs the BotElim phase under rising injected
// reducer-failure rates, checks output identity against the failure-free
// run, and reports the recovery cost (extra attempts and wall time).
func FailureRecovery(c *Context) (*Table, error) {
	cfg := c.Opt.Workload
	cfg.Users /= 2 // keep the repeated runs cheap
	data := workload.Generate(cfg)
	p := c.Opt.Params
	plan := bt.BotElimPlan(p, true)

	run := func(failRate float64, seed int64) ([]temporal.Event, *mapreduce.JobStat, time.Duration, error) {
		cl := mapreduce.NewCluster(mapreduce.Config{
			Machines: c.Opt.Machines, FailureRate: failRate, MaxAttempts: 100, Seed: seed,
		})
		tm := core.New(cl, core.DefaultConfig())
		cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), data.Rows))
		start := time.Now()
		stat, err := tm.Run(plan, map[string]string{bt.SourceEvents: "events"}, "out")
		if err != nil {
			return nil, nil, 0, err
		}
		events, err := tm.ResultEvents("out")
		return events, stat, time.Since(start), err
	}

	ref, refStat, refWall, err := run(0, 0)
	if err != nil {
		return nil, err
	}
	refAttempts := 0
	for _, st := range refStat.Stages {
		refAttempts += len(st.Tasks)
	}

	t := &Table{
		Title:  "§III-C.1: repeatability and cost under reducer failures (BotElim phase)",
		Header: []string{"failure rate", "failed attempts", "retry time", "output identical", "wall time vs clean"},
	}
	t.AddRow("0%", "0", "0s", "-", refWall.Round(time.Millisecond).String())
	for _, rate := range []float64{0.1, 0.3, 0.5} {
		events, stat, wall, err := run(rate, 7)
		if err != nil {
			return nil, err
		}
		failures := 0
		var retry time.Duration
		for _, st := range stat.Stages {
			failures += st.Failures
			retry += st.TotalRetryTime()
		}
		identical := temporal.EventsEqual(events, ref)
		t.AddRow(
			pct(rate),
			fmt.Sprintf("%d (of %d tasks)", failures, refAttempts),
			retry.Round(time.Millisecond).String(),
			fmt.Sprintf("%v", identical),
			fmt.Sprintf("%s (%.2fx)", wall.Round(time.Millisecond), float64(wall)/float64(refWall)),
		)
		if !identical {
			t.AddNote("REPRODUCTION FAILURE at rate %.0f%%: output diverged", rate*100)
		}
	}
	t.AddNote("restart safety comes from the temporal algebra: reducers are pure functions of their input partition")
	return t, nil
}
