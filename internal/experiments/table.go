// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on synthetic data: each experiment returns a Table that
// prints the same rows/series the paper reports, and EXPERIMENTS.md
// records paper-vs-measured for each. Experiments are exposed through a
// registry used by cmd/experiments and the root bench suite.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3g", v) }

// fi formats an int.
func fi(v int64) string { return fmt.Sprintf("%d", v) }

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
