package experiments

import (
	"strings"
	"testing"

	"timr/internal/ml"
	"timr/internal/stats"
)

// sharedCtx caches one quick-scale BT run across the experiment tests.
var sharedCtx = NewContext(QuickOptions())

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 42)
	s := tab.String()
	for _, want := range []string{"== demo ==", "a", "bb", "note: hello 42"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(All()) < 9 {
		t.Errorf("registry has %d experiments", len(All()))
	}
	if _, err := ByName("fig16"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name must error")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
}

func TestBTRunShape(t *testing.T) {
	r, err := sharedCtx.BT()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labeled) == 0 || len(r.Train) == 0 {
		t.Fatal("empty pipeline outputs")
	}
	if len(r.Scores) == 0 {
		t.Fatal("no scored ads")
	}
	// Every ad with scores must be a real ad id.
	for ad := range r.Scores {
		found := false
		for _, a := range r.Data.Ads {
			if a.ID == ad {
				found = true
			}
		}
		if !found {
			t.Errorf("scores for unknown ad %d", ad)
		}
	}
}

func TestAdExamplesSplit(t *testing.T) {
	r, err := sharedCtx.BT()
	if err != nil {
		t.Fatal(err)
	}
	ad := r.Data.Ads[0]
	train, test := r.AdExamples(ad.ID)
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("train=%d test=%d", len(train), len(test))
	}
	// Both sets must contain clicks and non-clicks.
	hasClick := func(ex []ml.Example) bool {
		for _, e := range ex {
			if e.Clicked {
				return true
			}
		}
		return false
	}
	if !hasClick(train) || !hasClick(test) {
		t.Error("splits lack positive examples")
	}
}

func TestPlantedKeywordsRecovered(t *testing.T) {
	// The headline feature-selection claim: the z-test recovers planted
	// correlations with the right signs (Figures 17-19 ground truth).
	r, err := sharedCtx.BT()
	if err != nil {
		t.Fatal(err)
	}
	var posRight, posWrong, negRight, negWrong int
	for _, ad := range r.Data.Ads {
		scores := r.Scores[ad.ID]
		for _, kw := range ad.Pos {
			if z, ok := scores[kw]; ok {
				if z > 0 {
					posRight++
				} else if z < -stats.Z80 {
					posWrong++
				}
			}
		}
		for _, kw := range ad.Neg {
			if z, ok := scores[kw]; ok {
				if z < 0 {
					negRight++
				} else if z > stats.Z80 {
					negWrong++
				}
			}
		}
	}
	if posRight == 0 {
		t.Fatal("no planted positive keyword scored positive")
	}
	if posWrong > posRight/4 {
		t.Errorf("planted positives misclassified: %d right, %d confidently wrong", posRight, posWrong)
	}
	if negRight == 0 {
		t.Fatal("no planted negative keyword scored negative")
	}
	if negWrong > negRight/4 {
		t.Errorf("planted negatives misclassified: %d right, %d confidently wrong", negRight, negWrong)
	}
}

func TestEvaluateSchemeSanity(t *testing.T) {
	r, err := sharedCtx.BT()
	if err != nil {
		t.Fatal(err)
	}
	ad := r.Data.Ads[0]
	train, test := r.AdExamples(ad.ID)
	res := EvaluateScheme(schemesFor(r, ad.ID)[0], train, test, 10)
	if res.Dims <= 0 {
		t.Errorf("dims = %d", res.Dims)
	}
	if len(res.Curve) == 0 {
		t.Fatal("no curve")
	}
	last := res.Curve[len(res.Curve)-1]
	if last.Coverage != 1 {
		t.Errorf("curve must reach full coverage, got %v", last.Coverage)
	}
}

func TestExperimentsRunAtQuickScale(t *testing.T) {
	// Every registered experiment must produce a non-empty table.
	if testing.Short() {
		t.Skip("quick experiments still take ~a minute")
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tab, err := e.Run(sharedCtx)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("empty table")
			}
			t.Logf("\n%s", tab)
		})
	}
}
