package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"timr/internal/mapreduce"
	"timr/internal/temporal"
)

// Shuffle measures the simulator's parallel map/shuffle path against the
// serial reference (MapWorkers=1) on a synthetic repartitioning job, and
// checks the two produce identical datasets — the determinism contract
// that makes the parallel path safe for TiMR's repeatability guarantee.
// Wall-clock speedup tracks the host's core count; on a single-core host
// the rows are the same and only the accounting differs.
func Shuffle(c *Context) (*Table, error) {
	const totalRows = 1 << 18
	const inParts = 8
	schema := temporal.NewSchema(
		temporal.Field{Name: "K", Kind: temporal.KindInt},
		temporal.Field{Name: "V", Kind: temporal.KindInt},
		temporal.Field{Name: "Tag", Kind: temporal.KindString},
	)
	ds := mapreduce.NewDataset(schema, inParts)
	v := 0
	for p := 0; p < inParts; p++ {
		rows := make([]mapreduce.Row, totalRows/inParts)
		for i := range rows {
			rows[i] = mapreduce.Row{
				temporal.Int(int64(v % 4096)),
				temporal.Int(int64(v)),
				temporal.String(fmt.Sprintf("user-%07d", v%50000)),
			}
			v++
		}
		ds.Append(p, rows)
	}
	st := mapreduce.Stage{
		Name: "repartition", Inputs: []string{"in"}, Output: "out", OutSchema: schema,
		NumPartitions: 64,
		Partition:     mapreduce.PartitionByCols([][]int{{0, 2}}),
		Reduce: func(part int, in [][]mapreduce.Row, emit func(mapreduce.Row)) error {
			for _, r := range in[0] {
				emit(r)
			}
			return nil
		},
	}
	runOnce := func(workers int) (time.Duration, *mapreduce.StageStat, *mapreduce.Dataset, error) {
		cl := mapreduce.NewCluster(mapreduce.Config{Machines: c.Opt.Machines, MapWorkers: workers})
		cl.FS.Write("in", ds)
		start := time.Now()
		stat, err := cl.Run(st)
		if err != nil {
			return 0, nil, nil, err
		}
		return time.Since(start), &stat.Stages[0], cl.FS.MustRead("out"), nil
	}
	// Best of three timed runs per path: the simulation is fast enough
	// that scheduler and GC noise would otherwise dominate the comparison.
	run := func(workers int) (time.Duration, *mapreduce.StageStat, *mapreduce.Dataset, error) {
		var bestWall time.Duration
		var bestStat *mapreduce.StageStat
		var bestOut *mapreduce.Dataset
		for i := 0; i < 3; i++ {
			wall, stat, out, err := runOnce(workers)
			if err != nil {
				return 0, nil, nil, err
			}
			if bestStat == nil || wall < bestWall {
				bestWall, bestStat, bestOut = wall, stat, out
			}
		}
		return bestWall, bestStat, bestOut, nil
	}

	serialWall, serialStat, serialOut, err := run(1)
	if err != nil {
		return nil, err
	}
	parWall, parStat, parOut, err := run(0)
	if err != nil {
		return nil, err
	}
	identical := reflect.DeepEqual(serialOut, parOut)

	t := &Table{
		Title:  "Parallel shuffle: map-phase fan-out vs serial reference (256k rows)",
		Header: []string{"path", "map tasks", "map time (sum)", "wall time", "output identical"},
	}
	t.AddRow("serial (MapWorkers=1)",
		fmt.Sprintf("%d", len(serialStat.Maps)),
		serialStat.TotalMapTime().Round(time.Microsecond).String(),
		serialWall.Round(time.Microsecond).String(), "-")
	t.AddRow(fmt.Sprintf("parallel (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		fmt.Sprintf("%d", len(parStat.Maps)),
		parStat.TotalMapTime().Round(time.Microsecond).String(),
		parWall.Round(time.Microsecond).String(),
		fmt.Sprintf("%v", identical))
	t.AddRow("speedup", "-", "-",
		fmt.Sprintf("%.2fx", float64(serialWall)/float64(parWall)), "-")
	t.AddNote("Shuffled row order is deterministic by construction: per-task buckets are concatenated in (input, partition, chunk) order.")
	if !identical {
		return t, fmt.Errorf("parallel shuffle diverged from serial reference")
	}
	return t, nil
}
