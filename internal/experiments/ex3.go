package experiments

import (
	"time"

	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// Example3 reproduces paper Example 3 / the §V-B "Fragment Optimization"
// result: GenTrainData annotated as a single fragment partitioned by
// {UserId} vs the naive plan that partitions UBP generation by
// {UserId, Keyword} and repartitions to {UserId} for the join. The paper
// measured 1.35h vs 3.06h — a 2.27× speedup — and the cost-based
// optimizer picks the single-fragment plan.
func Example3(c *Context) (*Table, error) {
	data := workload.Generate(c.Opt.Workload)
	p := c.Opt.Params

	// Prepare the phase inputs (clean + labeled) once.
	cl := mapreduce.NewCluster(mapreduce.Config{Machines: c.Opt.Machines})
	tm := core.New(cl, core.DefaultConfig())
	cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), data.Rows))
	if _, err := tm.Run(bt.BotElimPlan(p, true), map[string]string{bt.SourceEvents: "events"}, bt.DSClean); err != nil {
		return nil, err
	}
	if _, err := tm.Run(bt.LabelPlan(p, true), map[string]string{bt.SourceClean: bt.DSClean}, bt.DSLabeled); err != nil {
		return nil, err
	}
	sources := map[string]string{bt.SourceLabeled: bt.DSLabeled, bt.SourceClean: bt.DSClean}

	run := func(plan *temporal.Plan, out string) (time.Duration, int, int, error) {
		stat, err := tm.Run(plan, sources, out)
		if err != nil {
			return 0, 0, 0, err
		}
		shuffle := 0
		for _, st := range stat.Stages {
			shuffle += st.ShuffleRows
		}
		return stat.Makespan(c.Opt.Machines, cl.Cfg.ShufflePerRow), len(stat.Stages), shuffle, nil
	}

	goodSpan, goodStages, goodShuffle, err := run(bt.TrainDataPlan(p, true), "ex3.good")
	if err != nil {
		return nil, err
	}
	naiveSpan, naiveStages, naiveShuffle, err := run(bt.NaiveTrainDataPlan(p), "ex3.naive")
	if err != nil {
		return nil, err
	}

	// The optimizer must reach the same conclusion from the cost model.
	stats := core.DefaultStats()
	stats.SourceRows[bt.SourceClean] = int64(cl.FS.MustRead(bt.DSClean).Rows())
	stats.SourceRows[bt.SourceLabeled] = int64(cl.FS.MustRead(bt.DSLabeled).Rows())
	stats.Distinct["UserId"] = int64(c.Opt.Workload.Users)
	stats.Distinct["KwAdId"] = int64(c.Opt.Workload.Keywords)
	stats.Machines = int64(c.Opt.Machines)
	opt := core.NewOptimizer(stats)
	optimized, optCost, err := opt.Optimize(bt.TrainDataPlan(p, false))
	if err != nil {
		return nil, err
	}
	naiveCost := core.NewOptimizer(stats).EstimateCost(bt.NaiveTrainDataPlan(p))
	optKeys := 0
	optimized.Walk(func(n *temporal.Plan) {
		if n.Kind == temporal.OpExchange {
			optKeys++
		}
	})

	t := &Table{
		Title:  "Example 3 / §V-B: fragment optimization on GenTrainData",
		Header: []string{"annotated plan", "M-R stages", "shuffled rows", "makespan"},
	}
	t.AddRow("naive {UserId,Keyword} then {UserId}", fi(int64(naiveStages)), fi(int64(naiveShuffle)), naiveSpan.Round(time.Microsecond).String())
	t.AddRow("optimized single fragment {UserId}", fi(int64(goodStages)), fi(int64(goodShuffle)), goodSpan.Round(time.Microsecond).String())
	t.AddNote("paper: 1.35h vs 3.06h — 2.27x; measured speedup: %.2fx", float64(naiveSpan)/float64(goodSpan))
	t.AddNote("cost-based optimizer picks the single-fragment plan (%d source exchanges; estimated cost %.3g vs naive %.3g)", optKeys, optCost, naiveCost)
	return t, nil
}
