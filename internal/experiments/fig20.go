package experiments

import (
	"fmt"

	"timr/internal/stats"
)

// Fig20 reproduces Figure 20: the number of keywords retained per ad
// class as the z-score threshold grows, against F-Ex's constant ~2000
// categories. KE-0 (support only) already removes the overwhelming
// majority of the vocabulary; higher thresholds cut another order of
// magnitude.
func Fig20(c *Context) (*Table, error) {
	r, err := c.BT()
	if err != nil {
		return nil, err
	}
	thresholds := []float64{0, stats.Z80, stats.Z95, 2.56, 5.12}
	t := &Table{
		Title:  "Figure 20: keywords retained per ad class vs z-score threshold",
		Header: []string{"scheme", "avg keywords/ad", "max keywords/ad", "reduction vs vocabulary"},
	}
	vocab := float64(c.Opt.Workload.Keywords)
	for _, th := range thresholds {
		var total, max int
		for _, scores := range r.Scores {
			n := 0
			for _, z := range scores {
				if z >= th || z <= -th {
					n++
				}
			}
			total += n
			if n > max {
				max = n
			}
		}
		avg := float64(total) / float64(len(r.Scores))
		t.AddRow(
			fmt.Sprintf("KE-%.2f", th),
			fmt.Sprintf("%.1f", avg),
			fi(int64(max)),
			fmt.Sprintf("%.0fx", vocab/maxf(avg, 0.1)),
		)
	}
	t.AddRow("F-Ex", "2000", "2000", fmt.Sprintf("%.1fx", vocab/2000))
	t.AddNote("vocabulary: %d keywords; paper: support floor (KE-0) alone reduces dimensionality dramatically, F-Ex is pinned near 2000", c.Opt.Workload.Keywords)
	t.AddNote("KE-pop omitted, as in the paper: its retained count is whatever the popularity threshold dials in")
	return t, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
