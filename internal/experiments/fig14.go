package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"timr/internal/baseline"
	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/workload"
)

// repoRoot locates the repository root from this source file's path, so
// the LoC measurement reads the actual code being compared.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// countCodeLines counts non-blank, non-comment lines of a Go file — the
// proxy for development effort (the paper uses "lines (semicolons) of
// code").
func countCodeLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case line == "", strings.HasPrefix(line, "//"):
		case strings.HasPrefix(line, "/*"):
			inBlock = !strings.Contains(line, "*/")
		default:
			n++
		}
	}
	return n, sc.Err()
}

// Fig14 reproduces both halves of the paper's Figure 14: development
// effort (queries / LoC) and end-to-end BT processing time for the
// hand-written custom pipeline vs TiMR on the same simulated cluster.
func Fig14(c *Context) (*Table, error) {
	root := repoRoot()
	queryLoC, err := countCodeLines(filepath.Join(root, "internal", "bt", "plans.go"))
	if err != nil {
		return nil, err
	}
	customLoC := 0
	for _, f := range []string{"custom.go", "customjob.go"} {
		n, err := countCodeLines(filepath.Join(root, "internal", "baseline", f))
		if err != nil {
			return nil, err
		}
		customLoC += n
	}

	// ---- Processing time on the same data and cluster size ----
	data := workload.Generate(c.Opt.Workload)
	p := c.Opt.Params
	cp := baseline.CustomParams{
		T1: p.T1, T2: p.T2, BotHop: p.BotHop, Tau: p.Tau, D: p.D,
		TrainPeriod: p.TrainPeriod, ZThreshold: p.ZThreshold, ModelEpochs: p.ModelEpochs,
	}

	runTiMR := func() (time.Duration, time.Duration, error) {
		cl := mapreduce.NewCluster(mapreduce.Config{Machines: c.Opt.Machines})
		tm := core.New(cl, core.DefaultConfig())
		cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), data.Rows))
		pipe := bt.NewPipeline(p, tm)
		start := time.Now()
		if err := pipe.Run("events"); err != nil {
			return 0, 0, err
		}
		wall := time.Since(start)
		var makespan time.Duration
		for _, ph := range pipe.Phases {
			makespan += ph.Stat.Makespan(c.Opt.Machines, cl.Cfg.ShufflePerRow)
		}
		return wall, makespan, nil
	}
	runCustom := func() (time.Duration, time.Duration, error) {
		cl := mapreduce.NewCluster(mapreduce.Config{Machines: c.Opt.Machines})
		cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), data.Rows))
		start := time.Now()
		stat, err := baseline.CustomBTJob(cl, "events", cp)
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start), stat.Makespan(c.Opt.Machines, cl.Cfg.ShufflePerRow), nil
	}

	timrWall, timrSpan, err := runTiMR()
	if err != nil {
		return nil, err
	}
	customWall, customSpan, err := runCustom()
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Figure 14: development effort and processing time (custom vs TiMR)",
		Header: []string{"solution", "queries", "LoC", "wall time", "cluster makespan"},
	}
	t.AddRow("Custom reducers", "-", fi(int64(customLoC)), customWall.Round(time.Millisecond).String(), customSpan.Round(time.Microsecond).String())
	t.AddRow("TiMR", fi(int64(len(bt.QueryInventory()))), fi(int64(queryLoC)), timrWall.Round(time.Millisecond).String(), timrSpan.Round(time.Microsecond).String())
	overhead := float64(timrSpan)/float64(customSpan) - 1
	t.AddNote("paper: 20 temporal queries vs 360 LoC custom; TiMR 4.07h vs custom 3.73h (<10%% overhead)")
	t.AddNote("measured TiMR makespan overhead vs custom: %+.1f%%", overhead*100)
	t.AddNote("LoC counted from internal/bt/plans.go (queries) and internal/baseline/custom*.go (custom)")
	t.AddNote(fmt.Sprintf("workload: %d rows, %d users, %d machines", len(data.Rows), c.Opt.Workload.Users, c.Opt.Machines))
	return t, nil
}
