package experiments

import (
	"fmt"

	"timr/internal/bt"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// BotStats reproduces the §IV-B.1 observation: "In a one week dataset, we
// found that 0.5% of users are classified as bots using a threshold of
// 100, but these users contribute to 13% of overall clicks and searches.
// Thus, it is important to detect and eliminate bots quickly; otherwise,
// the actual correlation between user behavior and ad click activities
// will be diluted." The table reports the bot population, its activity
// share, the eliminator's effect, and the signal dilution with and
// without bot elimination (measured as the mean |z| of planted keywords).
func BotStats(c *Context) (*Table, error) {
	cfg := c.Opt.Workload
	// The dilution measurement runs the pipeline on UNCLEANED data, where
	// each bot generates ~40x the training rows of a human; cap the
	// workload so the with-bots run stays in memory (the shape is
	// scale-free).
	if cfg.Users > 1500 {
		cfg.Users = 1500
	}
	if cfg.Days > 2 {
		cfg.Days = 2
	}
	p := c.Opt.Params
	if p.TrainPeriod > temporal.Time(cfg.Days)*temporal.Day/2 {
		p.TrainPeriod = temporal.Time(cfg.Days) * temporal.Day / 2
	}
	data := workload.Generate(cfg)

	var total, botEvents, clicks, botClicks, searches, botSearches int
	for _, r := range data.Rows {
		u := r[2].AsInt()
		isBot := data.Bots[u]
		total++
		if isBot {
			botEvents++
		}
		switch r[1].AsInt() {
		case workload.StreamClick:
			clicks++
			if isBot {
				botClicks++
			}
		case workload.StreamKeyword:
			searches++
			if isBot {
				botSearches++
			}
		}
	}

	// Run bot elimination and measure what it removed, per ground truth.
	clean, err := temporal.RunPlan(bt.BotElimPlan(p, false), map[string][]temporal.Event{
		bt.SourceEvents: data.Events(),
	})
	if err != nil {
		return nil, err
	}
	keptBot, keptHuman := 0, 0
	for _, e := range clean {
		if data.Bots[e.Payload[2].AsInt()] {
			keptBot++
		} else {
			keptHuman++
		}
	}
	humanEvents := total - botEvents

	// Signal dilution: mean |z| of planted keywords, with and without
	// bot elimination feeding the rest of the pipeline.
	meanPlantedZ := func(events []temporal.Event) (float64, error) {
		labeled, err := temporal.RunPlan(bt.LabelPlan(p, false), map[string][]temporal.Event{bt.SourceClean: events})
		if err != nil {
			return 0, err
		}
		train, err := temporal.RunPlan(bt.TrainDataPlan(p, false), map[string][]temporal.Event{
			bt.SourceLabeled: labeled, bt.SourceClean: events,
		})
		if err != nil {
			return 0, err
		}
		scores, err := temporal.RunPlan(bt.FeatureSelectPlan(p, false), map[string][]temporal.Event{
			bt.SourceLabeled: labeled, bt.SourceTrain: train,
		})
		if err != nil {
			return 0, err
		}
		zOf := map[[2]int64]float64{}
		for _, e := range scores {
			if e.LE/int64(p.TrainPeriod) != 1 {
				continue
			}
			zOf[[2]int64{e.Payload[0].AsInt(), e.Payload[1].AsInt()}] = e.Payload[2].AsFloat()
		}
		var sum float64
		var n int
		for _, ad := range data.Ads {
			for _, kw := range append(append([]int64{}, ad.Pos...), ad.Neg...) {
				if z, ok := zOf[[2]int64{ad.ID, kw}]; ok {
					if z < 0 {
						z = -z
					}
					sum += z
					n++
				}
			}
		}
		if n == 0 {
			return 0, nil
		}
		return sum / float64(n), nil
	}
	zClean, err := meanPlantedZ(clean)
	if err != nil {
		return nil, err
	}
	zDirty, err := meanPlantedZ(data.Events())
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "§IV-B.1: bot population, activity share and signal dilution",
		Header: []string{"metric", "value"},
	}
	t.AddRow("bot users", fmt.Sprintf("%d / %d (%s)", len(data.Bots), cfg.Users,
		pct(float64(len(data.Bots))/float64(cfg.Users))))
	t.AddRow("bot share of clicks", pct(float64(botClicks)/float64(clicks)))
	t.AddRow("bot share of searches", pct(float64(botSearches)/float64(searches)))
	t.AddRow("bot events removed by BotElim", pct(1-float64(keptBot)/float64(botEvents)))
	t.AddRow("human events removed by BotElim", pct(1-float64(keptHuman)/float64(humanEvents)))
	t.AddRow("mean |z| of planted keywords (with BotElim)", f(zClean))
	t.AddRow("mean |z| of planted keywords (bots left in)", f(zDirty))
	t.AddNote("paper: 0.5%% of users are bots yet contribute 13%% of clicks and searches; leaving them in dilutes behavior-click correlations")
	return t, nil
}
