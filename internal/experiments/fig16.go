package experiments

import (
	"fmt"
	"time"

	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// Fig16 reproduces Figure 16: a 30-minute sliding-window count query with
// no payload partitioning key, scaled out via temporal partitioning. Small
// span widths duplicate work at the overlaps; large span widths starve the
// cluster of parallelism; the optimum sits in between, and the best span
// is compared against single-task execution (the paper reports ≈18×).
func Fig16(c *Context) (*Table, error) {
	data := workload.Generate(c.Opt.Workload)
	window := 30 * temporal.Minute

	runWidth := func(width temporal.Time) (time.Duration, int, error) {
		plan := temporal.Scan("events", workload.UnifiedSchema()).
			Exchange(temporal.PartitionBy{Temporal: true, SpanWidth: width}).
			WithWindow(window).
			Count("C")
		cl := mapreduce.NewCluster(mapreduce.Config{Machines: c.Opt.Machines})
		tm := core.New(cl, core.DefaultConfig())
		cl.FS.Write("ds", mapreduce.SinglePartition(workload.UnifiedSchema(), data.Rows))
		stat, err := tm.Run(plan, map[string]string{"events": "ds"}, "out")
		if err != nil {
			return 0, 0, err
		}
		return stat.Makespan(c.Opt.Machines, cl.Cfg.ShufflePerRow), stat.Stages[0].Partitions, nil
	}
	runSingle := func() (time.Duration, error) {
		plan := temporal.Scan("events", workload.UnifiedSchema()).
			WithWindow(window).
			Count("C")
		cl := mapreduce.NewCluster(mapreduce.Config{Machines: c.Opt.Machines})
		tm := core.New(cl, core.DefaultConfig())
		cl.FS.Write("ds", mapreduce.SinglePartition(workload.UnifiedSchema(), data.Rows))
		stat, err := tm.Run(plan, map[string]string{"events": "ds"}, "out")
		if err != nil {
			return 0, err
		}
		return stat.Makespan(c.Opt.Machines, cl.Cfg.ShufflePerRow), nil
	}

	single, err := runSingle()
	if err != nil {
		return nil, err
	}
	widths := []temporal.Time{
		2 * temporal.Minute,
		5 * temporal.Minute,
		10 * temporal.Minute,
		20 * temporal.Minute,
		45 * temporal.Minute,
		90 * temporal.Minute,
		3 * temporal.Hour,
		6 * temporal.Hour,
		12 * temporal.Hour,
		24 * temporal.Hour,
		3 * temporal.Day,
	}
	if c.Opt.Quick {
		widths = widths[4:9]
	}

	t := &Table{
		Title:  "Figure 16: temporal partitioning — runtime vs span width (30-min sliding count)",
		Header: []string{"span width", "spans", "makespan", "speedup vs single task"},
	}
	best := time.Duration(1<<62 - 1)
	for _, w := range widths {
		span, parts, err := runWidth(w)
		if err != nil {
			return nil, err
		}
		if span < best {
			best = span
		}
		t.AddRow(
			(time.Duration(w) * time.Millisecond).String(),
			fi(int64(parts)),
			span.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", float64(single)/float64(span)),
		)
	}
	t.AddRow("single task", "1", single.Round(time.Microsecond).String(), "1.0x")
	t.AddNote("paper: optimal span width is ~18x faster than single-node; small spans pay overlap duplication, large spans lose parallelism")
	t.AddNote("best speedup measured: %.1fx", float64(single)/float64(best))
	return t, nil
}
