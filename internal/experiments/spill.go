package experiments

import (
	"fmt"
	"time"

	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// Spill measures the out-of-core data plane: the BotElim query (the
// pipeline's widest shuffle) runs under a shrinking MemoryBudget, from
// fully resident down to spill-everything, reporting wall time and
// spill I/O — and checking the results stay bit-identical, which is the
// whole contract that makes spilling transparent to TiMR.
func Spill(c *Context) (*Table, error) {
	data := workload.Generate(c.Opt.Workload)
	plan := bt.BotElimPlan(c.Opt.Params, true)

	budgets := []struct {
		name   string
		budget int64
	}{
		{"unlimited (resident)", 0},
		{"1 MiB", 1 << 20},
		{"64 KiB", 64 << 10},
		{"spill everything", mapreduce.SpillAll},
	}

	t := &Table{
		Title: "Out-of-core data plane: BotElim under shrinking memory budgets",
		Header: []string{"budget", "wall time", "spilled segs", "spilled",
			"spill reads", "output identical"},
	}
	var ref []temporal.Event
	for _, b := range budgets {
		cl := mapreduce.NewCluster(mapreduce.Config{
			Machines: c.Opt.Machines, MemoryBudget: b.budget,
		})
		tm := core.New(cl, core.DefaultConfig())
		cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), data.Rows))
		start := time.Now()
		stat, err := tm.Run(plan, map[string]string{bt.SourceEvents: "events"}, "out")
		if err != nil {
			cl.Close()
			return nil, err
		}
		wall := time.Since(start)
		evs, err := tm.ResultEvents("out")
		if err != nil {
			cl.Close()
			return nil, err
		}
		var segs int
		var written, read int64
		for _, st := range stat.Stages {
			segs += st.SpillSegments
			written += st.SpillBytes
			read += st.SpillReadBytes
		}
		identical := "-"
		if ref == nil {
			ref = evs
		} else if temporal.EventsEqual(evs, ref) {
			identical = "true"
		} else {
			identical = "FALSE"
		}
		t.AddRow(b.name, wall.Round(time.Millisecond).String(),
			fi(int64(segs)), mb(written), mb(read), identical)
		if err := cl.Close(); err != nil {
			return nil, err
		}
		if identical == "FALSE" {
			return t, fmt.Errorf("budget %s diverged from the resident run", b.name)
		}
	}
	t.AddNote("input: %d events; budget bounds resident shuffle bytes per reduce partition — overflow spills as sorted runs streamed back through the k-way merge", len(data.Rows))
	return t, nil
}

// mb formats a byte count as MB with two decimals.
func mb(n int64) string {
	return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
}
