package experiments

import (
	"fmt"

	"timr/internal/ml"
	"timr/internal/stats"
)

// Fig21 reproduces Figure 21: on the test half, the CTR of impression
// subsets chosen by the presence of positively/negatively scored keywords
// (z at 80% confidence) in the user's profile, for two ad classes. The
// paper's finding: positive-keyword examples show large CTR lift,
// only-negative examples negative lift — keywords are a good CTR signal.
func Fig21(c *Context) (*Table, error) {
	r, err := c.BT()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 21: keyword elimination and CTR (test half, z at 80% confidence)",
		Header: []string{"ad class", "examples chosen", "#click", "#impr", "CTR", "lift"},
	}
	for _, name := range []string{"laptop", "cellphone"} {
		ad, err := r.adOrFail(name)
		if err != nil {
			return nil, err
		}
		scores := r.Scores[ad.ID]
		pos := map[int64]bool{}
		neg := map[int64]bool{}
		for kw, z := range scores {
			if z >= stats.Z80 {
				pos[kw] = true
			} else if z <= -stats.Z80 {
				neg[kw] = true
			}
		}
		_, test := r.AdExamples(ad.ID)

		kind := func(e ml.Example) (hasPos, hasNeg bool) {
			for _, f := range e.Features {
				if pos[f.ID] {
					hasPos = true
				}
				if neg[f.ID] {
					hasNeg = true
				}
			}
			return hasPos, hasNeg
		}
		sets := []struct {
			name   string
			member func(e ml.Example) bool
		}{
			{"All", func(ml.Example) bool { return true }},
			{">=1 pos kw", func(e ml.Example) bool { p, _ := kind(e); return p }},
			{">=1 neg kw", func(e ml.Example) bool { _, n := kind(e); return n }},
			{"Only pos kws", func(e ml.Example) bool { p, n := kind(e); return p && !n }},
			{"Only neg kws", func(e ml.Example) bool { p, n := kind(e); return n && !p }},
		}
		var v0 float64
		for _, set := range sets {
			var clicks, imprs int64
			for _, e := range test {
				if set.member(e) {
					imprs++
					if e.Clicked {
						clicks++
					}
				}
			}
			ctr := 0.0
			if imprs > 0 {
				ctr = float64(clicks) / float64(imprs)
			}
			if set.name == "All" {
				v0 = ctr
			}
			lift := "-"
			if v0 > 0 && set.name != "All" {
				lift = fmt.Sprintf("%+.0f%%", (ctr/v0-1)*100)
			}
			t.AddRow(name, set.name, fi(clicks), fi(imprs), pct(ctr), lift)
		}
	}
	t.AddNote("paper: positive-keyword subsets lift CTR by 28-53%%; only-negative subsets have negative lift")
	return t, nil
}
