package experiments

import (
	"fmt"
	"time"

	"timr/internal/baseline"
	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// Strawman reproduces the §II-C comparison on RunningClickCount
// (Example 1): the SCOPE-style set-oriented self-join (whose intermediate
// result explodes), the hand-written linked-list reducer, and the TiMR
// temporal query — all over the click log of the generated dataset.
func Strawman(c *Context) (*Table, error) {
	data := workload.Generate(c.Opt.Workload)
	window := 6 * temporal.Hour

	// Click log (Time, UserId, AdId), the schema of paper Figure 1(b).
	clickSchema := temporal.NewSchema(
		temporal.Field{Name: "Time", Kind: temporal.KindInt},
		temporal.Field{Name: "UserId", Kind: temporal.KindInt},
		temporal.Field{Name: "AdId", Kind: temporal.KindInt},
	)
	var clicks []temporal.Row
	for _, r := range data.Rows {
		if r[1].AsInt() == workload.StreamClick {
			clicks = append(clicks, temporal.Row{r[0], r[2], r[3]})
		}
	}
	clickDS := mapreduce.SinglePartition(clickSchema, clicks)

	t := &Table{
		Title:  "§II-C strawman comparison: RunningClickCount (6h window)",
		Header: []string{"solution", "status", "intermediate rows", "wall time"},
	}

	// ---- SCOPE self-join ----
	// The baseline scans the dataset through the pull iterator — the same
	// path a spilled click log would stream through.
	cap := 20_000_000
	predicted, err := baseline.ScopeJoinOutputSize(clickDS.Reader(0).Next, window)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	_, ok, err := baseline.ScopeRunningClickCount(clickDS.Reader(0).Next, window, cap)
	if err != nil {
		return nil, err
	}
	scopeTime := time.Since(start)
	status := "completed"
	if !ok {
		status = fmt.Sprintf("ABORTED (join > %d rows)", cap)
	}
	t.AddRow("SCOPE self-join", status, fi(predicted), scopeTime.Round(time.Millisecond).String())

	// ---- Custom linked-list reducer on the cluster ----
	cl := mapreduce.NewCluster(mapreduce.Config{Machines: c.Opt.Machines})
	cl.FS.Write("clicks", clickDS)
	start = time.Now()
	if _, err := cl.Run(baseline.CustomRunningClickCountStage("clicks", "out.custom", window)); err != nil {
		return nil, err
	}
	customTime := time.Since(start)
	t.AddRow("Custom reducer (linked list)", "completed", fi(int64(len(clicks))), customTime.Round(time.Millisecond).String())

	// ---- TiMR temporal query ----
	plan := temporal.Scan("clicks", clickSchema).
		Exchange(temporal.PartitionBy{Cols: []string{"AdId"}}).
		GroupApply([]string{"AdId"}, func(g *temporal.Plan) *temporal.Plan {
			return g.WithWindow(window).Count("ClickCount")
		})
	cl2 := mapreduce.NewCluster(mapreduce.Config{Machines: c.Opt.Machines})
	tm := core.New(cl2, core.DefaultConfig())
	cl2.FS.Write("clicks", clickDS)
	start = time.Now()
	if _, err := tm.Run(plan, map[string]string{"clicks": "clicks"}, "out.timr"); err != nil {
		return nil, err
	}
	timrTime := time.Since(start)
	t.AddRow("TiMR temporal query", "completed", fi(int64(len(clicks))), timrTime.Round(time.Millisecond).String())

	t.AddNote("clicks in log: %d; the self-join materializes %.1fx the input before grouping", len(clicks), float64(predicted)/float64(len(clicks)))
	t.AddNote("paper: the SCOPE query is intractable at log scale; the custom reducer works but is query-specific code; the TiMR query is 4 lines of LINQ")
	return t, nil
}
