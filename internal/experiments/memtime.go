package experiments

import (
	"fmt"
	"time"

	"timr/internal/baseline"
	"timr/internal/stats"
)

// MemTime reproduces the §V-D "Memory and Learning Time" result: the
// average number of entries in the sparse UBP representation per training
// example under each data-reduction scheme (paper: 3.7 raw, ~1 for
// KE-1.28, ~8 for F-Ex since each keyword maps to up to 3 categories) and
// the LR learning time per scheme (paper, diet ad: F-Ex 31s > KE-1.28 18s
// > KE-2.56 5s).
func MemTime(c *Context) (*Table, error) {
	r, err := c.BT()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "§V-D: UBP memory footprint and LR learning time per scheme",
		Header: []string{"ad class", "scheme", "dims", "avg UBP entries", "LR time"},
	}
	for _, name := range []string{"laptop", "dieting"} {
		ad, err := r.adOrFail(name)
		if err != nil {
			return nil, err
		}
		train, test := r.AdExamples(ad.ID)
		schemes := []baseline.Scheme{
			baseline.Identity(),
			baseline.NewKEZ(r.Scores[ad.ID], stats.Z80),
			baseline.NewKEZ(r.Scores[ad.ID], 2.56),
			baseline.NewFEx(2000),
		}
		for _, s := range schemes {
			res := EvaluateScheme(s, train, test, c.Opt.Params.ModelEpochs)
			t.AddRow(name, res.Scheme,
				fi(int64(res.Dims)),
				fmt.Sprintf("%.2f", res.AvgUBPSize),
				res.TrainTime.Round(time.Microsecond).String(),
			)
		}
	}
	t.AddNote("paper (laptop): 3.7 entries raw -> ~1 with KE-1.28, ~8 with F-Ex; LR time F-Ex > KE-1.28 > KE-2.56")
	return t, nil
}
