package experiments

import (
	"fmt"

	"timr/internal/baseline"
	"timr/internal/ml"
	"timr/internal/stats"
)

// schemesFor builds the data-reduction schemes compared in Figures 22/23
// for one ad class: the paper's KE-z at two confidence levels, the
// production F-Ex baseline and Chen et al.'s KE-pop.
func schemesFor(r *BTRun, adID int64) []baseline.Scheme {
	scores := r.Scores[adID]
	pop := r.Popularity()
	// KE-pop keeps as many keywords as KE-1.28 retains, so the comparison
	// isolates *which* keywords are kept, not how many.
	keCount := 0
	for _, z := range scores {
		if z >= stats.Z80 || z <= -stats.Z80 {
			keCount++
		}
	}
	if keCount == 0 {
		keCount = 50
	}
	return []baseline.Scheme{
		baseline.NewKEZ(scores, stats.Z80),
		baseline.NewKEZ(scores, 2.56),
		baseline.NewFEx(2000),
		baseline.NewKEPop(pop, keCount),
	}
}

// Fig22and23 reproduces Figures 22 and 23: CTR lift vs coverage for each
// data-reduction scheme on the movies and dieting ad classes. The paper's
// result: KE-z gives several times the lift of F-Ex and KE-pop at low
// coverage (<= 20%), where ad selection actually operates.
func Fig22and23(c *Context) (*Table, error) {
	r, err := c.BT()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figures 22-23: CTR lift vs coverage per data-reduction scheme",
		Header: []string{"ad class", "scheme", "dims", "lift@5%", "lift@10%", "lift@20%", "lift@50%", "curve area"},
	}
	for _, name := range []string{"movies", "dieting"} {
		ad, err := r.adOrFail(name)
		if err != nil {
			return nil, err
		}
		train, test := r.AdExamples(ad.ID)
		for _, s := range schemesFor(r, ad.ID) {
			res := EvaluateScheme(s, train, test, c.Opt.Params.ModelEpochs)
			t.AddRow(
				name, res.Scheme, fi(int64(res.Dims)),
				liftStr(res.Curve, 0.05), liftStr(res.Curve, 0.10),
				liftStr(res.Curve, 0.20), liftStr(res.Curve, 0.50),
				f(res.Area),
			)
		}
	}
	t.AddNote("lift = (CTR - V0)/V0 on test impressions above the prediction threshold; paper: KE-z several times better than F-Ex/KE-pop at 0-20%% coverage")
	t.AddNote("KE-pop retains as many keywords as KE-%.2f, isolating selection quality from dimensionality", stats.Z80)
	return t, nil
}

func liftStr(curve []ml.LiftPoint, cov float64) string {
	return fmt.Sprintf("%+.0f%%", ml.LiftAtCoverage(curve, cov)*100)
}
