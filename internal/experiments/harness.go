package experiments

import (
	"fmt"
	"time"

	"timr/internal/baseline"
	"timr/internal/bt"
	"timr/internal/core"
	"timr/internal/mapreduce"
	"timr/internal/ml"
	"timr/internal/obs"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// Options scope an experiment run.
type Options struct {
	Workload workload.Config
	Params   bt.Params
	Machines int
	// Quick shrinks workloads for fast CI runs; the full configuration is
	// used by cmd/experiments and the benchmarks.
	Quick bool
	// Obs collects cluster- and engine-level metrics for the run. Every
	// experiment gets one (DefaultOptions attaches a fresh root), so
	// figures can report observed counters — e.g. retry time in the
	// failure experiment — instead of re-deriving them.
	Obs *obs.Scope
}

// DefaultOptions is the full-scale configuration: a 7-day log split into
// equal training and test halves (paper §V-A), 150 simulated machines.
func DefaultOptions() Options {
	w := workload.DefaultConfig()
	p := bt.DefaultParams()
	p.TrainPeriod = temporal.Time(w.Days) * temporal.Day / 2
	p.ZThreshold = 0 // keep all supported scores; schemes threshold later
	return Options{Workload: w, Params: p, Machines: 150, Obs: obs.New("experiment")}
}

// QuickOptions is a scaled-down configuration for tests.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Workload.Users = 1200
	o.Workload.Keywords = 600
	o.Workload.Days = 2
	o.Workload.AdClasses = 5
	// Laptop-scale support substitution (see DESIGN.md): with two orders
	// of magnitude fewer users than the paper's logs, the z-test's
	// support floor is only reachable with amplified click rates.
	o.Workload.BaseCTR = 0.18
	o.Workload.NegDamp = 0.5
	o.Workload.PosLift = 3
	o.Params.TrainPeriod = temporal.Day
	o.Machines = 8
	o.Quick = true
	return o
}

// BTRun holds the shared state most experiments start from: the generated
// log and the BT pipeline's outputs on the TiMR cluster.
type BTRun struct {
	Opt     Options
	Data    *workload.Dataset
	Cluster *mapreduce.Cluster
	TiMR    *core.TiMR
	Pipe    *bt.Pipeline

	Labeled []temporal.Row // payload rows of bt.labeled
	Train   []temporal.Row // payload rows of bt.train
	// Scores: ad -> keyword -> z, from the first training window.
	Scores map[int64]map[int64]float64
}

// RunBT generates data and executes the full BT pipeline over TiMR.
func RunBT(opt Options) (*BTRun, error) {
	data := workload.Generate(opt.Workload)
	cl := mapreduce.NewCluster(mapreduce.Config{Machines: opt.Machines})
	cl.Obs = opt.Obs.Child("cluster")
	cfg := core.DefaultConfig()
	cfg.Obs = opt.Obs.Child("engine")
	tm := core.New(cl, cfg)
	cl.FS.Write("events", mapreduce.SinglePartition(workload.UnifiedSchema(), data.Rows))

	pipe := bt.NewPipeline(opt.Params, tm)
	if err := pipe.Run("events"); err != nil {
		return nil, err
	}
	r := &BTRun{Opt: opt, Data: data, Cluster: cl, TiMR: tm, Pipe: pipe}
	if err := r.load(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *BTRun) load() error {
	labeled, err := r.Pipe.Events(bt.DSLabeled)
	if err != nil {
		return err
	}
	train, err := r.Pipe.Events(bt.DSTrain)
	if err != nil {
		return err
	}
	scores, err := r.Pipe.Events(bt.DSScores)
	if err != nil {
		return err
	}
	for _, e := range labeled {
		r.Labeled = append(r.Labeled, e.Payload)
	}
	for _, e := range train {
		r.Train = append(r.Train, e.Payload)
	}
	r.Scores = make(map[int64]map[int64]float64)
	period := int64(r.Opt.Params.TrainPeriod)
	for _, e := range scores {
		// Keep scores learned from the first training window only (they
		// are valid during the second window: LE/period == 1).
		if e.LE/period != 1 {
			continue
		}
		ad, kw, z := e.Payload[0].AsInt(), e.Payload[1].AsInt(), e.Payload[2].AsFloat()
		m := r.Scores[ad]
		if m == nil {
			m = make(map[int64]float64)
			r.Scores[ad] = m
		}
		m[kw] = z
	}
	return nil
}

// splitRows partitions rows into before/after the training period
// boundary using the Time column at position timeCol.
func splitRows(rows []temporal.Row, boundary temporal.Time, timeCol int) (before, after []temporal.Row) {
	for _, r := range rows {
		if r[timeCol].AsInt() < int64(boundary) {
			before = append(before, r)
		} else {
			after = append(after, r)
		}
	}
	return before, after
}

// filterAd keeps rows of one ad (column adCol).
func filterAd(rows []temporal.Row, adID int64, adCol int) []temporal.Row {
	var out []temporal.Row
	for _, r := range rows {
		if r[adCol].AsInt() == adID {
			out = append(out, r)
		}
	}
	return out
}

// AdExamples assembles per-impression examples for one ad, split into
// training (first period) and test (second period) sets, including
// empty-profile impressions.
func (r *BTRun) AdExamples(adID int64) (train, test []ml.Example) {
	boundary := r.Opt.Params.TrainPeriod
	labTrain, labTest := splitRows(filterAd(r.Labeled, adID, 2), boundary, 0)
	rowTrain, rowTest := splitRows(filterAd(r.Train, adID, 2), boundary, 0)

	train = bt.RowsToExamples(rowTrain)
	train = bt.AddEmptyExamples(train, labTrain, rowTrain, adID)
	test = bt.RowsToExamples(rowTest)
	test = bt.AddEmptyExamples(test, labTest, rowTest, adID)
	return train, test
}

// Popularity tallies KE-pop's selection signal over the first-period
// training rows: "the most popular keywords in terms of total ad clicks
// or rejects with that keyword in the user history" (Chen et al. [7]) —
// a global frequency ranking, which is exactly why it retains
// google/facebook/msn-style head keywords that predict nothing (§V-C).
func (r *BTRun) Popularity() map[int64]int64 {
	rows, _ := splitRows(r.Train, r.Opt.Params.TrainPeriod, 0)
	pop := make(map[int64]int64)
	for _, row := range rows {
		pop[row[4].AsInt()]++
	}
	return pop
}

// SchemeResult summarizes one data-reduction scheme on one ad class.
type SchemeResult struct {
	Scheme     string
	Dims       int
	AvgUBPSize float64 // average retained entries per training example
	TrainTime  time.Duration
	Curve      []ml.LiftPoint
	Area       float64
}

// EvaluateScheme trains an LR model on scheme-transformed training
// examples (with an 80/20 fit/calibration split), scores the test set and
// computes the lift/coverage curve (paper §V-D).
func EvaluateScheme(s baseline.Scheme, trainEx, testEx []ml.Example, epochs int) SchemeResult {
	res := SchemeResult{Scheme: s.Name(), Dims: s.Dims()}
	txTrain := baseline.TransformExamples(s, trainEx)
	txTest := baseline.TransformExamples(s, testEx)

	var entries int
	for _, e := range txTrain {
		entries += len(e.Features)
	}
	if len(txTrain) > 0 {
		res.AvgUBPSize = float64(entries) / float64(len(txTrain))
	}

	// Deterministic 80/20 interleaved split for fit vs calibration.
	var fit, val []ml.Example
	for i, e := range txTrain {
		if i%5 == 4 {
			val = append(val, e)
		} else {
			fit = append(fit, e)
		}
	}
	cfg := ml.DefaultLRConfig()
	if epochs > 0 {
		cfg.Epochs = epochs
	}
	start := time.Now()
	model := ml.TrainLR(fit, cfg)
	res.TrainTime = time.Since(start)

	valPreds := make([]float64, len(val))
	valLabels := make([]bool, len(val))
	for i, e := range val {
		valPreds[i] = model.Predict(e.Features)
		valLabels[i] = e.Clicked
	}
	cal := ml.NewCalibrator(valPreds, valLabels, 50)

	preds := make([]float64, len(txTest))
	labels := make([]bool, len(txTest))
	for i, e := range txTest {
		preds[i] = cal.CTR(model.Predict(e.Features))
		labels[i] = e.Clicked
	}
	res.Curve = ml.LiftCoverageCurve(preds, labels, 20)
	res.Area = ml.CurveArea(res.Curve)
	return res
}

// adOrFail resolves a named ad class.
func (r *BTRun) adOrFail(name string) (workload.AdClass, error) {
	ad, ok := r.Data.AdByName(name)
	if !ok {
		return workload.AdClass{}, fmt.Errorf("experiments: no ad class %q", name)
	}
	return ad, nil
}
