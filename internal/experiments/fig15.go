package experiments

import (
	"fmt"
	"time"

	"timr/internal/bt"
	"timr/internal/temporal"
	"timr/internal/workload"
)

// Fig15 reproduces Figure 15: per-machine engine event rates for each BT
// sub-query. A single embedded engine (one "machine") processes its
// phase's input events; throughput is input events per second of engine
// time. Since every query is partitionable, cluster throughput scales
// with the machine count (§V-B).
func Fig15(c *Context) (*Table, error) {
	data := workload.Generate(c.Opt.Workload)
	p := c.Opt.Params
	events := data.Events()

	// Phase inputs are produced by a preparatory single-node run.
	phases, err := bt.RunSingleNode(p, events)
	if err != nil {
		return nil, err
	}

	type subQuery struct {
		name   string
		plan   *temporal.Plan
		inputs map[string][]temporal.Event
	}
	queries := []subQuery{
		{"BotElim", bt.BotElimPlan(p, false), map[string][]temporal.Event{bt.SourceEvents: events}},
		{"Label", bt.LabelPlan(p, false), map[string][]temporal.Event{bt.SourceClean: phases[bt.DSClean]}},
		{"GenTrainData", bt.TrainDataPlan(p, false), map[string][]temporal.Event{
			bt.SourceLabeled: phases[bt.DSLabeled], bt.SourceClean: phases[bt.DSClean],
		}},
		{"FeatureSelect", bt.FeatureSelectPlan(p, false), map[string][]temporal.Event{
			bt.SourceLabeled: phases[bt.DSLabeled], bt.SourceTrain: phases[bt.DSTrain],
		}},
		{"Reduce", bt.ReducePlan(p, false), map[string][]temporal.Event{
			bt.SourceTrain: phases[bt.DSTrain], bt.SourceScores: phases[bt.DSScores],
		}},
		{"ModelGen", bt.ModelPlan(p, false), map[string][]temporal.Event{
			bt.SourceReduced: phases[bt.DSReduced],
		}},
	}

	t := &Table{
		Title:  "Figure 15: single-engine event throughput per BT sub-query",
		Header: []string{"sub-query", "input events", "engine time", "events/sec"},
	}
	for _, q := range queries {
		n := 0
		for _, evs := range q.inputs {
			n += len(evs)
		}
		start := time.Now()
		if _, err := temporal.RunPlan(q.plan, q.inputs); err != nil {
			return nil, fmt.Errorf("%s: %w", q.name, err)
		}
		d := time.Since(start)
		rate := float64(n) / d.Seconds()
		t.AddRow(q.name, fi(int64(n)), d.Round(time.Millisecond).String(), fmt.Sprintf("%.0f", rate))
	}
	t.AddNote("paper reports per-machine DSMS event rates; all sub-queries are partitionable, so cluster throughput scales with machines")
	return t, nil
}
