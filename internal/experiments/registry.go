package experiments

import (
	"fmt"
	"sort"
)

// Context carries shared state across experiments so that one BT pipeline
// run feeds all the figures derived from it.
type Context struct {
	Opt   Options
	btRun *BTRun
}

// NewContext builds a context.
func NewContext(opt Options) *Context { return &Context{Opt: opt} }

// NewContextWithRun builds a context around an existing BT run (used by
// the benchmark suite to share one pipeline execution).
func NewContextWithRun(r *BTRun) *Context { return &Context{Opt: r.Opt, btRun: r} }

// BT lazily runs (and caches) the BT pipeline over TiMR.
func (c *Context) BT() (*BTRun, error) {
	if c.btRun == nil {
		r, err := RunBT(c.Opt)
		if err != nil {
			return nil, err
		}
		c.btRun = r
	}
	return c.btRun, nil
}

// Experiment is one reproducible table/figure of the paper.
type Experiment struct {
	Name    string // registry key, e.g. "fig16"
	Caption string // what the paper reports
	Run     func(*Context) (*Table, error)
}

var registry = []Experiment{
	{"strawman", "§II-C strawman: SCOPE self-join vs custom reducer vs TiMR on RunningClickCount", Strawman},
	{"fig14", "Figure 14: development effort and end-to-end BT processing time, custom vs TiMR", Fig14},
	{"fig15", "Figure 15: per-machine engine throughput for each BT sub-query", Fig15},
	{"fig16", "Figure 16: temporal partitioning — runtime vs span width", Fig16},
	{"ex3", "Example 3 / §V-B: fragment optimization, naive vs optimized annotation", Example3},
	{"fig17", "Figures 17-19: highest/lowest z-score keywords per ad class", Fig17to19},
	{"fig20", "Figure 20: dimensionality reduction vs z-score threshold (and F-Ex)", Fig20},
	{"fig21", "Figure 21: keyword elimination and CTR lift on example subsets", Fig21},
	{"fig22", "Figures 22-23: CTR lift vs coverage per data-reduction scheme", Fig22and23},
	{"memtime", "§V-D: UBP memory footprint and LR learning time per scheme", MemTime},
	{"botstats", "§IV-B.1: bot population, activity share and signal dilution", BotStats},
	{"failures", "§III-C.1: repeatability and cost under reducer failures", FailureRecovery},
	{"shuffle", "parallel map/shuffle path vs serial reference: speedup and determinism", Shuffle},
	{"chaos", "fault-tolerant streaming: checkpoint/replay recovery under injected partition crashes", StreamingChaos},
	{"spill", "out-of-core data plane: BotElim wall time and spill I/O vs memory budget", Spill},
	{"refresh", "incremental maintenance: delta vs full recompute over a 7-day sliding window", Refresh},
}

// All returns every experiment in presentation order.
func All() []Experiment { return append([]Experiment(nil), registry...) }

// Names lists registry keys.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	sort.Strings(out)
	return out
}

// ByName finds one experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range registry {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}
